package capgpu_test

import (
	"fmt"

	capgpu "repro"
)

// Example demonstrates the full CapGPU flow: build the simulated
// testbed, identify the power model, and cap the server at 900 W.
func Example() {
	// Identification twin (identification perturbs frequencies).
	twin, err := capgpu.NewServer(capgpu.DefaultTestbed(100))
	if err != nil {
		panic(err)
	}
	if err := capgpu.AttachStandardWorkloads(twin, 100); err != nil {
		panic(err)
	}
	model, err := capgpu.Identify(twin)
	if err != nil {
		panic(err)
	}

	srv, err := capgpu.NewServer(capgpu.DefaultTestbed(1))
	if err != nil {
		panic(err)
	}
	if err := capgpu.AttachStandardWorkloads(srv, 1); err != nil {
		panic(err)
	}
	ctrl, err := capgpu.New(model, srv, nil, capgpu.Options{})
	if err != nil {
		panic(err)
	}
	h, err := capgpu.NewHarness(srv, ctrl, capgpu.FixedSetpoint(900))
	if err != nil {
		panic(err)
	}
	records, err := h.Run(60)
	if err != nil {
		panic(err)
	}
	sum := capgpu.Summarize(capgpu.PowerSeries(records), 900, 48)
	fmt.Printf("tracked the cap within 10 W: %v\n", sum.RMSE < 10)
	// Output: tracked the cap within 10 W: true
}

// ExampleNewFixedStep shows running a baseline controller through the
// identical harness.
func ExampleNewFixedStep() {
	srv, err := capgpu.NewServer(capgpu.DefaultTestbed(2))
	if err != nil {
		panic(err)
	}
	if err := capgpu.AttachStandardWorkloads(srv, 2); err != nil {
		panic(err)
	}
	ctrl, err := capgpu.NewFixedStep(srv, 1, 25) // Safe Fixed-Step
	if err != nil {
		panic(err)
	}
	h, err := capgpu.NewHarness(srv, ctrl, capgpu.FixedSetpoint(900))
	if err != nil {
		panic(err)
	}
	records, err := h.Run(100)
	if err != nil {
		panic(err)
	}
	sum := capgpu.Summarize(capgpu.PowerSeries(records), 900, 80)
	fmt.Printf("Safe Fixed-Step sits below the cap: %v\n", sum.Mean < 900)
	// Output: Safe Fixed-Step sits below the cap: true
}

// ExampleModelZoo shows the latency law behind the SLO constraints.
func ExampleModelZoo() {
	prof := capgpu.ModelZoo()["resnet50"]
	at := func(mhz float64) float64 { return prof.ModelBatchLatency(mhz, 1350) }
	fmt.Printf("batch latency grows as the clock drops: %v\n", at(675) > at(1350))
	// Output: batch latency grows as the clock drops: true
}
