// Package capgpu is a from-scratch Go reproduction of "Power Capping of
// GPU Servers for Machine Learning Inference Optimization" (CapGPU,
// ICPP 2025): a server-level power-capping framework for machines that
// run ML inference on multiple GPUs plus a host CPU.
//
// CapGPU couples three ideas:
//
//   - a MIMO model-predictive power controller that jointly actuates CPU
//     DVFS and every GPU's core clock against a server-level power cap
//     (the paper's Eq. 9/10 formulation, solved as a strictly convex QP);
//   - a throughput-driven weight-assignment algorithm: each device's
//     control penalty is its normalized throughput, inverted, so busy
//     devices are granted frequency headroom and idle ones are parked;
//   - per-task inference-latency SLOs folded into the optimization as
//     GPU frequency floors via the latency law e = e_min·(f_max/f_g)^γ.
//
// Because the paper's physical testbed (Xeon Gold 5215 + 3× Tesla V100,
// ACPI power meter, nvidia-smi/cpupower actuators, PyTorch workloads) is
// not portable, this library ships a behaviorally calibrated simulated
// testbed; every hardware-facing component has a simulator stand-in with
// matching interfaces. See DESIGN.md for the substitution table and
// EXPERIMENTS.md for paper-vs-measured results on every table and
// figure.
//
// # Quick start
//
//	srv, _ := capgpu.NewServer(capgpu.DefaultTestbed(1))
//	capgpu.AttachStandardWorkloads(srv, 1)
//	model, _ := capgpu.Identify(srv)         // system identification
//	ctrl, _ := capgpu.New(model, srv, nil, capgpu.Options{})
//	h, _ := capgpu.NewHarness(srv, ctrl, capgpu.FixedSetpoint(900))
//	records, _ := h.Run(100)                  // 100 control periods
//
// The package is a facade over the internal implementation packages; all
// exported names below are stable API.
package capgpu

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/mpc"
	"repro/internal/sim"
	"repro/internal/sysid"
	"repro/internal/workload"
)

// Simulated-testbed types (see internal/sim).
type (
	// Server is the simulated GPU server: CPU + GPUs + power model.
	Server = sim.Server
	// ServerConfig assembles a Server.
	ServerConfig = sim.Config
	// CPUSpec describes a host CPU's DVFS range and power behavior.
	CPUSpec = sim.CPUSpec
	// GPUSpec describes one GPU's clock range and power behavior.
	GPUSpec = sim.GPUSpec
	// Sample is one power-meter tick's observable state.
	Sample = sim.Sample
)

// Workload types (see internal/workload).
type (
	// Pipeline is one GPU's inference pipeline (CPU preprocessing →
	// shared queue → batched GPU inference).
	Pipeline = workload.Pipeline
	// PipelineConfig parameterizes a Pipeline.
	PipelineConfig = workload.PipelineConfig
	// ModelProfile describes a DNN's latency/batching behavior.
	ModelProfile = workload.ModelProfile
	// CPUWorkload is the host-CPU batch job (exhaustive feature
	// selection in the paper).
	CPUWorkload = workload.CPUWorkload
	// CPUWorkloadConfig parameterizes a CPUWorkload.
	CPUWorkloadConfig = workload.CPUWorkloadConfig
	// PipelineStats is a Pipeline step's observable behavior.
	PipelineStats = workload.Stats
)

// Modeling types (see internal/sysid).
type (
	// PowerModel is the identified linear power model p = A·F + C.
	PowerModel = sysid.Model
	// LatencyModel is the frequency-latency law e = e_min(f_max/f)^γ.
	LatencyModel = sysid.LatencyModel
	// IdentifyConfig tunes the excitation schedule.
	IdentifyConfig = sysid.ExciteConfig
)

// Controller types (see internal/core, internal/mpc).
type (
	// Controller is the CapGPU power controller.
	Controller = core.CapGPU
	// Options tunes the controller.
	Options = core.Options
	// MPCConfig tunes the underlying MPC (horizons, weights, solver).
	MPCConfig = mpc.Config
	// Harness runs any PowerController in the measure→decide→actuate
	// loop.
	Harness = core.Harness
	// PeriodRecord is one control period's log entry.
	PeriodRecord = core.PeriodRecord
	// Observation is the controller's per-period input.
	Observation = core.Observation
	// Decision is a controller's frequency targets.
	Decision = core.Decision
	// PowerController is the interface all capping schemes implement.
	PowerController = core.PowerController
	// Summary bundles steady-state power statistics.
	Summary = metrics.Summary
)

// Baseline controller types (see internal/baselines).
type (
	// FixedStep is the heuristic one-level-per-period baseline.
	FixedStep = baselines.FixedStep
	// GPUOnly is the proportional shared-GPU-clock baseline.
	GPUOnly = baselines.GPUOnly
	// CPUOnly is the traditional CPU-DVFS-only baseline.
	CPUOnly = baselines.CPUOnly
	// CPUPlusGPU is the fixed-budget-split two-loop baseline.
	CPUPlusGPU = baselines.CPUPlusGPU
)

// DefaultTestbed returns the paper's evaluation server configuration:
// one Intel Xeon Gold 5215 and three NVIDIA Tesla V100s (§5).
func DefaultTestbed(seed int64) ServerConfig { return sim.DefaultTestbed(seed) }

// MotivationTestbed returns the §3.2 rig: a desktop CPU and one RTX 3090
// clamped to its 495–810 MHz window.
func MotivationTestbed(seed int64) ServerConfig { return sim.MotivationTestbed(seed) }

// NewServer builds a simulated server.
func NewServer(cfg ServerConfig) (*Server, error) { return sim.NewServer(cfg) }

// ModelZoo returns the DNN profiles used across the paper's experiments
// (ResNet50, Swin-T, VGG16, GoogLeNet).
func ModelZoo() map[string]ModelProfile { return workload.Zoo() }

// NewPipeline builds an inference pipeline.
func NewPipeline(cfg PipelineConfig) (*Pipeline, error) { return workload.NewPipeline(cfg) }

// NewCPUWorkload builds the host-CPU batch workload.
func NewCPUWorkload(cfg CPUWorkloadConfig) (*CPUWorkload, error) {
	return workload.NewCPUWorkload(cfg)
}

// AttachStandardWorkloads wires the paper's §6.1 workload assignment
// onto a 3-GPU server: ResNet50 on GPU 0, Swin-T on GPU 1, VGG16 on
// GPU 2, and exhaustive feature selection on the CPU.
func AttachStandardWorkloads(s *Server, seed int64) error {
	if s.NumGPUs() < 3 {
		return fmt.Errorf("capgpu: standard workloads need 3 GPUs, server has %d", s.NumGPUs())
	}
	zoo := workload.Zoo()
	cfgs := []workload.PipelineConfig{
		{Model: zoo["resnet50"], Workers: 2, PreLatencyBase: 0.004, PreLatencyExp: 0.4,
			ArrivalRateMax: 250, ArrivalExp: 0.5, QueueCap: 60, FcMax: 2.4, FgMax: 1350, Seed: seed + 1},
		{Model: zoo["swin_t"], Workers: 2, PreLatencyBase: 0.010, PreLatencyExp: 0.4,
			ArrivalRateMax: 100, ArrivalExp: 0.5, QueueCap: 60, FcMax: 2.4, FgMax: 1350, Seed: seed + 2},
		{Model: zoo["vgg16"], Workers: 2, PreLatencyBase: 0.008, PreLatencyExp: 0.4,
			ArrivalRateMax: 130, ArrivalExp: 0.5, QueueCap: 60, FcMax: 2.4, FgMax: 1350, Seed: seed + 3},
	}
	for i, cfg := range cfgs {
		p, err := workload.NewPipeline(cfg)
		if err != nil {
			return err
		}
		if err := s.AttachPipeline(i, p); err != nil {
			return err
		}
	}
	w, err := workload.NewCPUWorkload(workload.CPUWorkloadConfig{
		RateAtMax: 40, RateExp: 1, FcMax: 2.4, NoiseStd: 0.02, Seed: seed + 4})
	if err != nil {
		return err
	}
	s.AttachCPUWorkload(w)
	return nil
}

// Identify runs the §4.2 system-identification procedure against a
// server with its workloads attached and returns the linear power model.
// It perturbs the server's frequencies; run it before starting control,
// or on a twin server.
func Identify(s *Server) (*PowerModel, error) {
	m, _, err := sysid.Identify(s, sysid.ExciteConfig{})
	return m, err
}

// IdentifyWithConfig is Identify with a custom excitation schedule; it
// also returns the raw excitation records.
func IdentifyWithConfig(s *Server, cfg IdentifyConfig) (*PowerModel, []sysid.Record, error) {
	return sysid.Identify(s, cfg)
}

// FitLatencyModel fits the frequency-latency law to (frequency, latency)
// samples, as in the paper's Fig. 2b.
func FitLatencyModel(freqsMHz, latenciesS []float64, fMax float64) (*LatencyModel, error) {
	return sysid.FitLatency(freqsMHz, latenciesS, fMax)
}

// New builds the CapGPU controller from an identified power model.
// latencyModels (one per GPU, nil entries allowed, or nil entirely)
// enable SLO enforcement.
func New(model *PowerModel, s *Server, latencyModels []*LatencyModel, opts Options) (*Controller, error) {
	return core.NewCapGPU(model, s, latencyModels, opts)
}

// NewHarness wires the control loop: ACPI-style power meter, delta-sigma
// frequency modulators, and the given controller against the server.
func NewHarness(s *Server, ctrl PowerController, setpoint func(period int) float64) (*Harness, error) {
	return core.NewHarness(s, ctrl, setpoint)
}

// FixedSetpoint is a constant set-point schedule for NewHarness.
func FixedSetpoint(capW float64) func(int) float64 {
	return func(int) float64 { return capW }
}

// Baseline constructors (§6.1). pole is the desired closed-loop pole of
// the proportional designs, in (0, 1); 0.45 matches the evaluation.

// NewFixedStep builds the Fixed-Step heuristic baseline (marginW > 0
// yields Safe Fixed-Step).
func NewFixedStep(s *Server, stepMult int, marginW float64) (*FixedStep, error) {
	return baselines.NewFixedStep(s, stepMult, marginW)
}

// NewGPUOnly builds the GPU-Only proportional baseline.
func NewGPUOnly(model *PowerModel, s *Server, pole float64) (*GPUOnly, error) {
	return baselines.NewGPUOnly(model, s, pole)
}

// NewCPUOnly builds the CPU-Only proportional baseline.
func NewCPUOnly(model *PowerModel, s *Server, pole float64) (*CPUOnly, error) {
	return baselines.NewCPUOnly(model, s, pole)
}

// NewCPUPlusGPU builds the fixed-split two-loop baseline; gpuShare is
// the budget fraction assigned to the GPU group.
func NewCPUPlusGPU(model *PowerModel, s *Server, gpuShare, baseW, pole float64) (*CPUPlusGPU, error) {
	return baselines.NewCPUPlusGPU(model, s, gpuShare, baseW, pole)
}

// Summarize computes steady-state statistics of a per-period power trace
// against a set point, using the paper's last-80-of-100 convention when
// steady is 80.
func Summarize(powerW []float64, setpointW float64, steady int) Summary {
	return metrics.Summarize(powerW, setpointW, steady, 0.02*setpointW, 0.01*setpointW)
}

// PowerSeries extracts per-period average power from harness records.
func PowerSeries(records []PeriodRecord) []float64 {
	out := make([]float64, len(records))
	for i, r := range records {
		out[i] = r.AvgPowerW
	}
	return out
}
