package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeneratePAIShape(t *testing.T) {
	tr, err := GeneratePAI(PAIConfig{Rows: 100, Features: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.X) != 100 || len(tr.Y) != 100 {
		t.Fatalf("rows: %d/%d", len(tr.X), len(tr.Y))
	}
	if len(tr.FeatureNames) != 8 {
		t.Fatalf("feature names: %d", len(tr.FeatureNames))
	}
	for i, row := range tr.X {
		if len(row) != 8 {
			t.Fatalf("row %d has %d features", i, len(row))
		}
	}
}

func TestGeneratePAIDeterministic(t *testing.T) {
	a, err := GeneratePAI(PAIConfig{Rows: 50, Features: 6, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GeneratePAI(PAIConfig{Rows: 50, Features: 6, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			t.Fatalf("row %d target differs: %g vs %g", i, a.Y[i], b.Y[i])
		}
		for j := range a.X[i] {
			if a.X[i][j] != b.X[i][j] {
				t.Fatalf("row %d feature %d differs", i, j)
			}
		}
	}
	c, err := GeneratePAI(PAIConfig{Rows: 50, Features: 6, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Y {
		if a.Y[i] != c.Y[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGeneratePAIValidation(t *testing.T) {
	if _, err := GeneratePAI(PAIConfig{Features: 2}); err == nil {
		t.Fatal("expected error for too few features")
	}
	if _, err := GeneratePAI(PAIConfig{Features: 99}); err == nil {
		t.Fatal("expected error for too many features")
	}
}

func TestTrueSubsetIndices(t *testing.T) {
	tr, err := GeneratePAI(PAIConfig{Rows: 20, Features: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	idx := TrueSubset(tr.FeatureNames)
	if len(idx) == 0 {
		t.Fatal("no true features found")
	}
	for _, i := range idx {
		name := tr.FeatureNames[i]
		switch name {
		case "plan_gpu", "inst_num", "duration_est", "plan_cpu":
		default:
			t.Fatalf("unexpected true feature %q", name)
		}
	}
}

func TestTargetDependsOnPlanGPU(t *testing.T) {
	// Correlation between plan_gpu and the target should be strongly
	// positive; between a pure-noise column and the target, near zero.
	tr, err := GeneratePAI(PAIConfig{Rows: 2000, Features: 9, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var gpuIdx, noiseIdx int = -1, -1
	for i, n := range tr.FeatureNames {
		if n == "plan_gpu" {
			gpuIdx = i
		}
		if n == "queue_len" {
			noiseIdx = i
		}
	}
	if gpuIdx < 0 || noiseIdx < 0 {
		t.Fatalf("columns not found: %v", tr.FeatureNames)
	}
	if c := corr(col(tr.X, gpuIdx), tr.Y); c < 0.6 {
		t.Fatalf("corr(plan_gpu, y) = %g, want > 0.6", c)
	}
	if c := math.Abs(corr(col(tr.X, noiseIdx), tr.Y)); c > 0.1 {
		t.Fatalf("corr(queue_len, y) = %g, want ~0", c)
	}
}

func col(x [][]float64, j int) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i][j]
	}
	return out
}

func corr(a, b []float64) float64 {
	n := float64(len(a))
	ma, mb := 0.0, 0.0
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var sab, sa, sb float64
	for i := range a {
		sab += (a[i] - ma) * (b[i] - mb)
		sa += (a[i] - ma) * (a[i] - ma)
		sb += (b[i] - mb) * (b[i] - mb)
	}
	return sab / math.Sqrt(sa*sb)
}

func TestGenerateImages(t *testing.T) {
	imgs := GenerateImages(200, 5)
	if len(imgs) != 200 {
		t.Fatalf("got %d images", len(imgs))
	}
	for _, im := range imgs {
		if im.Width < 64 || im.Height < 64 || im.Channels != 3 {
			t.Fatalf("degenerate image %+v", im)
		}
	}
	if MeanPixels(imgs) < 640*480 {
		t.Fatalf("mean pixels suspiciously low: %g", MeanPixels(imgs))
	}
	if MeanPixels(nil) != 0 {
		t.Fatal("MeanPixels(nil) != 0")
	}
}

func TestGenerateImagesDeterministic(t *testing.T) {
	a := GenerateImages(50, 9)
	b := GenerateImages(50, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("image %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// Property: targets are finite and features non-degenerate for any seed.
func TestQuickPAIWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		tr, err := GeneratePAI(PAIConfig{Rows: 64, Features: 8, Seed: seed})
		if err != nil {
			return false
		}
		for i := range tr.Y {
			if math.IsNaN(tr.Y[i]) || math.IsInf(tr.Y[i], 0) {
				return false
			}
			for _, v := range tr.X[i] {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr, err := GeneratePAI(PAIConfig{Rows: 40, Features: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.X) != len(tr.X) || len(got.FeatureNames) != len(tr.FeatureNames) {
		t.Fatalf("shape mismatch: %dx%d vs %dx%d",
			len(got.X), len(got.FeatureNames), len(tr.X), len(tr.FeatureNames))
	}
	for i := range tr.X {
		if got.Y[i] != tr.Y[i] {
			t.Fatalf("row %d target %g != %g", i, got.Y[i], tr.Y[i])
		}
		for j := range tr.X[i] {
			if got.X[i][j] != tr.X[i][j] {
				t.Fatalf("row %d col %d differs", i, j)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                  // no header
		"only_target\n1\n",  // too few columns
		"a,target\nx,1\n",   // bad feature value
		"a,target\n1,x\n",   // bad target
		"a,target\n",        // no data rows
		"a,b,target\n1,2\n", // short row (csv pkg catches)
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Fatalf("expected error for %q", c)
		}
	}
}
