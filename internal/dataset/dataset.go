// Package dataset generates the synthetic datasets that stand in for the
// paper's proprietary inputs: a resource-usage trace shaped like the
// Alibaba PAI trace (used by the exhaustive-feature-selection CPU
// workload) and a wildlife-image workload descriptor stream (used by the
// motivation experiment's preprocessing pipeline).
//
// Real traces are not redistributable; what the experiments need from
// them is only (a) a regression task with correlated features of varying
// usefulness, so that exhaustive feature selection has a non-trivial
// optimum, and (b) a stream of image sizes for preprocessing-cost
// modeling. Both generators are deterministic given a seed.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
)

// PAITrace is a synthetic stand-in for the Alibaba PAI machine-learning
// trace: per-task resource requests/usages with a target column
// (e.g. actual GPU utilization) to be predicted from the features.
type PAITrace struct {
	FeatureNames []string
	X            [][]float64 // rows of feature values
	Y            []float64   // regression target
}

// PAIConfig controls trace generation.
type PAIConfig struct {
	Rows     int   // number of task records (default 512)
	Features int   // number of candidate features (default 8)
	Seed     int64 // RNG seed
	// NoiseStd is the observation noise on the target (default 0.05).
	NoiseStd float64
}

func (c *PAIConfig) defaults() PAIConfig {
	out := *c
	if out.Rows == 0 {
		out.Rows = 512
	}
	if out.Features == 0 {
		out.Features = 8
	}
	if out.NoiseStd == 0 {
		out.NoiseStd = 0.05
	}
	return out
}

// paiFeatureNames mirror the columns a PAI-style task trace exposes.
var paiFeatureNames = []string{
	"plan_cpu", "plan_mem", "plan_gpu", "cap_cpu",
	"cap_mem", "inst_num", "duration_est", "gpu_type_score",
	"queue_len", "wait_time", "group_load", "user_prio",
}

// GeneratePAI builds a synthetic PAI-like trace. The target (actual GPU
// utilization) depends strongly on a small subset of the features
// (plan_gpu, inst_num, duration_est), weakly on one more (plan_cpu), and
// not at all on the rest; several useless features are correlated with
// useful ones so that naive single-feature ranking is misleading and the
// exhaustive subset search in internal/fsel has real work to do.
func GeneratePAI(cfg PAIConfig) (*PAITrace, error) {
	c := cfg.defaults()
	if c.Features < 4 {
		return nil, fmt.Errorf("dataset: need at least 4 features, got %d", c.Features)
	}
	if c.Features > len(paiFeatureNames) {
		return nil, fmt.Errorf("dataset: at most %d features supported, got %d", len(paiFeatureNames), c.Features)
	}
	rng := rand.New(rand.NewSource(c.Seed))
	tr := &PAITrace{
		FeatureNames: append([]string(nil), paiFeatureNames[:c.Features]...),
		X:            make([][]float64, c.Rows),
		Y:            make([]float64, c.Rows),
	}
	for i := 0; i < c.Rows; i++ {
		row := make([]float64, c.Features)
		planGPU := 0.1 + 0.9*rng.Float64()            // fraction of a GPU requested
		instNum := float64(1 + rng.Intn(8))           // task instances
		durEst := math.Exp(rng.NormFloat64()*0.5 + 2) // minutes, log-normal
		planCPU := 2 + 14*rng.Float64()               // vCPUs

		for j := 0; j < c.Features; j++ {
			switch paiFeatureNames[j] {
			case "plan_cpu":
				row[j] = planCPU
			case "plan_mem":
				// Correlated with plan_cpu but useless for the target.
				row[j] = planCPU*4 + 8*rng.NormFloat64()
			case "plan_gpu":
				row[j] = planGPU
			case "cap_cpu":
				row[j] = planCPU * (1 + 0.25*rng.NormFloat64())
			case "cap_mem":
				row[j] = 32 + 96*rng.Float64()
			case "inst_num":
				row[j] = instNum
			case "duration_est":
				row[j] = durEst
			case "gpu_type_score":
				// Correlated with plan_gpu, adds no signal of its own.
				row[j] = planGPU*2 + 0.3*rng.NormFloat64()
			default:
				row[j] = rng.Float64()
			}
		}
		// Ground-truth response (actual GPU utilization proxy).
		y := 0.55*planGPU + 0.06*instNum + 0.015*durEst
		if c.Features > 0 {
			y += 0.004 * planCPU
		}
		y += c.NoiseStd * rng.NormFloat64()
		tr.X[i] = row
		tr.Y[i] = y
	}
	return tr, nil
}

// TrueSubset returns the indices of features that genuinely drive the
// target in a trace produced by GeneratePAI (used by tests to verify
// that feature selection recovers them).
func TrueSubset(featureNames []string) []int {
	want := map[string]bool{"plan_gpu": true, "inst_num": true, "duration_est": true, "plan_cpu": true}
	var idx []int
	for i, n := range featureNames {
		if want[n] {
			idx = append(idx, i)
		}
	}
	return idx
}

// Image describes one input of the wildlife-image classification
// workload: enough metadata to model preprocessing cost (decode + resize
// + normalize scale with pixel count).
type Image struct {
	ID            int
	Width, Height int
	Channels      int
}

// Pixels returns the pixel count of the image.
func (im Image) Pixels() int { return im.Width * im.Height }

// GenerateImages produces n image descriptors with sizes distributed
// like a consumer photo dataset (mixture of common camera resolutions
// with jitter). Deterministic for a given seed.
func GenerateImages(n int, seed int64) []Image {
	rng := rand.New(rand.NewSource(seed))
	base := [][2]int{{640, 480}, {1024, 768}, {1920, 1080}, {2048, 1536}, {3264, 2448}}
	out := make([]Image, n)
	for i := range out {
		b := base[rng.Intn(len(base))]
		jitter := func(v int) int {
			j := v + int(float64(v)*0.05*rng.NormFloat64())
			if j < 64 {
				j = 64
			}
			return j
		}
		out[i] = Image{ID: i, Width: jitter(b[0]), Height: jitter(b[1]), Channels: 3}
	}
	return out
}

// MeanPixels returns the average pixel count of a batch of images.
func MeanPixels(imgs []Image) float64 {
	if len(imgs) == 0 {
		return 0
	}
	s := 0.0
	for _, im := range imgs {
		s += float64(im.Pixels())
	}
	return s / float64(len(imgs))
}
