package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV serializes a trace as CSV: a header of feature names plus a
// final "target" column, one row per record. The format round-trips
// through ReadCSV and matches how published resource traces (including
// the Alibaba PAI release) ship, so users can substitute real data for
// the synthetic generator.
func (t *PAITrace) WriteCSV(w io.Writer) error {
	if len(t.X) != len(t.Y) {
		return fmt.Errorf("dataset: %d rows but %d targets", len(t.X), len(t.Y))
	}
	cw := csv.NewWriter(w)
	header := append(append([]string{}, t.FeatureNames...), "target")
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(t.FeatureNames)+1)
	for i, xs := range t.X {
		if len(xs) != len(t.FeatureNames) {
			return fmt.Errorf("dataset: row %d has %d features, want %d", i, len(xs), len(t.FeatureNames))
		}
		for j, v := range xs {
			row[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		row[len(row)-1] = strconv.FormatFloat(t.Y[i], 'g', -1, 64)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV (or any CSV whose last
// column is the regression target and whose first row is a header).
func ReadCSV(r io.Reader) (*PAITrace, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading header: %w", err)
	}
	if len(header) < 2 {
		return nil, fmt.Errorf("dataset: need at least one feature column plus the target, got %d columns", len(header))
	}
	d := len(header) - 1
	tr := &PAITrace{FeatureNames: append([]string{}, header[:d]...)}
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		if len(rec) != d+1 {
			return nil, fmt.Errorf("dataset: line %d has %d columns, want %d", line, len(rec), d+1)
		}
		xs := make([]float64, d)
		for j := 0; j < d; j++ {
			v, err := strconv.ParseFloat(rec[j], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d column %q: %w", line, header[j], err)
			}
			xs[j] = v
		}
		y, err := strconv.ParseFloat(rec[d], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d target: %w", line, err)
		}
		tr.X = append(tr.X, xs)
		tr.Y = append(tr.Y, y)
	}
	if len(tr.X) == 0 {
		return nil, fmt.Errorf("dataset: no data rows")
	}
	return tr, nil
}
