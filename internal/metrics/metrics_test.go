package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean = %g", m)
	}
	if s := Std(xs); math.Abs(s-2) > 1e-12 {
		t.Fatalf("std = %g, want 2", s)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Std(nil)) {
		t.Fatal("empty input should be NaN")
	}
}

func TestRMSE(t *testing.T) {
	if r := RMSE([]float64{3, 5}, 4); math.Abs(r-1) > 1e-12 {
		t.Fatalf("rmse = %g", r)
	}
	if r := RMSE([]float64{4, 4}, 4); r != 0 {
		t.Fatalf("rmse = %g", r)
	}
	if !math.IsNaN(RMSE(nil, 0)) {
		t.Fatal("empty RMSE should be NaN")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for _, tc := range []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5},
	} {
		got, err := Percentile(xs, tc.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("p%g = %g, want %g", tc.p, got, tc.want)
		}
	}
	if got, _ := Percentile([]float64{1, 2}, 50); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("interpolated median = %g", got)
	}
	if got, _ := Percentile([]float64{7}, 99); got != 7 {
		t.Fatalf("single-element percentile = %g", got)
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Fatal("expected empty error")
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Fatal("expected range error")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Fatal("expected range error")
	}
}

// TestPercentileEdgeCases pins the corner semantics the telemetry
// histogram cross-check depends on: empty input errors at every p,
// a single element is every percentile of itself, and p=0 / p=100 are
// the min and max regardless of input order.
func TestPercentileEdgeCases(t *testing.T) {
	for _, p := range []float64{0, 50, 100} {
		if _, err := Percentile(nil, p); err == nil {
			t.Fatalf("empty input at p=%g should error", p)
		}
		if _, err := Percentile([]float64{}, p); err == nil {
			t.Fatalf("zero-length input at p=%g should error", p)
		}
	}
	for _, p := range []float64{0, 37.5, 100} {
		got, err := Percentile([]float64{42}, p)
		if err != nil {
			t.Fatal(err)
		}
		if got != 42 {
			t.Fatalf("single element at p=%g = %g, want 42", p, got)
		}
	}
	unsorted := []float64{930, 850, 1120, 901, 877}
	if got, err := Percentile(unsorted, 0); err != nil || got != 850 {
		t.Fatalf("p=0 = %g, %v; want the minimum 850", got, err)
	}
	if got, err := Percentile(unsorted, 100); err != nil || got != 1120 {
		t.Fatalf("p=100 = %g, %v; want the maximum 1120", got, err)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestSettlingTime(t *testing.T) {
	xs := []float64{0, 50, 90, 99, 100, 101, 100}
	if s := SettlingTime(xs, 100, 2); s != 3 {
		t.Fatalf("settling = %d, want 3", s)
	}
	// With a 0.5 band, 99 and 101 fall outside but the final 100 is in:
	// the strict notion settles only at the last sample.
	if s := SettlingTime(xs, 100, 0.5); s != 6 {
		t.Fatalf("tight band settling = %d, want 6", s)
	}
	if s := SettlingTime([]float64{100, 100, 101}, 100, 0.5); s != -1 {
		t.Fatalf("trailing excursion settling = %d, want -1", s)
	}
	if s := SettlingTime(nil, 100, 1); s != -1 {
		t.Fatal("empty should be -1")
	}
	// Late excursion resets the strict notion.
	bad := []float64{100, 100, 100, 50, 100}
	if s := SettlingTime(bad, 100, 2); s != 4 {
		t.Fatalf("strict settling = %d, want 4", s)
	}
}

func TestSettlingTimeWindow(t *testing.T) {
	xs := []float64{0, 100, 100, 100, 50, 100, 100}
	if s := SettlingTimeWindow(xs, 100, 1, 3); s != 1 {
		t.Fatalf("windowed settling = %d, want 1", s)
	}
	if s := SettlingTimeWindow(xs, 100, 1, 4); s != -1 {
		t.Fatalf("window 4 settling = %d, want -1", s)
	}
	if s := SettlingTimeWindow(xs, 100, 1, 0); s != 1 {
		t.Fatalf("window 0 should behave as 1, got %d", s)
	}
	if s := SettlingTimeWindow([]float64{100}, 100, 1, 5); s != -1 {
		t.Fatal("short series should be -1")
	}
}

func TestOvershootViolations(t *testing.T) {
	xs := []float64{95, 105, 110, 98}
	if o := Overshoot(xs, 100); o != 10 {
		t.Fatalf("overshoot = %g", o)
	}
	if o := Overshoot([]float64{90}, 100); o != 0 {
		t.Fatalf("no-overshoot = %g", o)
	}
	if v := Violations(xs, 100, 4); v != 2 {
		t.Fatalf("violations = %d, want 2", v)
	}
	if v := Violations(xs, 100, 20); v != 0 {
		t.Fatalf("violations = %d, want 0", v)
	}
}

func TestMissRate(t *testing.T) {
	if m := MissRate([]bool{true, false, true, false}); m != 0.5 {
		t.Fatalf("miss rate = %g", m)
	}
	if !math.IsNaN(MissRate(nil)) {
		t.Fatal("empty should be NaN")
	}
}

func TestSteadyState(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ss := SteadyState(xs, 2)
	if len(ss) != 2 || ss[0] != 4 {
		t.Fatalf("steady state = %v", ss)
	}
	if got := SteadyState(xs, 10); len(got) != 5 {
		t.Fatal("over-long window should return all")
	}
	if got := SteadyState(xs, 0); len(got) != 5 {
		t.Fatal("zero window should return all")
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 900
	}
	xs[0] = 700 // transient
	xs[50] = 912
	s := Summarize(xs, 900, 80, 18, 9)
	if math.Abs(s.Mean-900.15) > 0.01 {
		t.Fatalf("mean = %g", s.Mean)
	}
	if s.Violations != 1 {
		t.Fatalf("violations = %d", s.Violations)
	}
	if s.MaxW != 912 {
		t.Fatalf("max = %g", s.MaxW)
	}
	if s.Settling != 1 {
		t.Fatalf("settling = %d", s.Settling)
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v, err := Percentile(xs, p)
			if err != nil {
				return false
			}
			if v < prev-1e-9 || v < sorted[0]-1e-9 || v > sorted[n-1]+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Std is translation-invariant and scales with |a|.
func TestQuickStdAffine(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		a := 1 + rng.Float64()*3
		b := rng.NormFloat64() * 10
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = a*xs[i] + b
		}
		return math.Abs(Std(ys)-a*Std(xs)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
