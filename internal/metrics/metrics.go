// Package metrics computes the summary statistics the paper's evaluation
// reports: steady-state mean and standard deviation of power (Fig. 6),
// settling time and overshoot (Fig. 3/10), cap violations (Fig. 5),
// throughput/latency aggregates (Fig. 7), SLO deadline miss rates
// (Fig. 8/9), and latency percentiles for the tail-latency SLO levels of
// §6.4.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation (NaN for empty input).
func Std(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// RMSE returns the root mean squared error of xs against the target.
func RMSE(xs []float64, target float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		d := x - target
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0..100) by linear
// interpolation between order statistics.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("metrics: percentile of empty slice")
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("metrics: percentile %g outside [0, 100]", p)
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo], nil
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// SettlingTime returns the first period index after which the series
// stays within ±band of target through the end, or -1 if it never
// settles. This is the strict settling-time notion of §4's control
// objective ("converges back to its set point within a finite settling
// time"); with stochastic plants prefer SettlingTimeWindow.
func SettlingTime(xs []float64, target, band float64) int {
	if len(xs) == 0 {
		return -1
	}
	settled := -1
	for i, x := range xs {
		if math.Abs(x-target) <= band {
			if settled < 0 {
				settled = i
			}
		} else {
			settled = -1
		}
	}
	return settled
}

// SettlingTimeWindow returns the first index i such that xs[i..i+window)
// all lie within ±band of target, or -1 if no such window exists. This
// tolerates later noise/drift excursions that the strict notion counts
// as "never settled".
func SettlingTimeWindow(xs []float64, target, band float64, window int) int {
	if window <= 0 {
		window = 1
	}
	if len(xs) < window {
		return -1
	}
	run := 0
	for i, x := range xs {
		if math.Abs(x-target) <= band {
			run++
			if run >= window {
				return i - window + 1
			}
		} else {
			run = 0
		}
	}
	return -1
}

// RecoveryTime measures how many periods after index `from` (the first
// period after a fault cleared) the series takes to re-enter ±band of
// the target and stay there for 3 consecutive periods. It returns the
// count of periods from `from` to the start of that window, 0 if the
// series is already inside the band, and -1 if it never recovers.
func RecoveryTime(xs []float64, from int, target, band float64) int {
	if from < 0 {
		from = 0
	}
	if from >= len(xs) {
		return -1
	}
	const sustain = 3
	if i := SettlingTimeWindow(xs[from:], target, band, sustain); i >= 0 {
		return i
	}
	return -1
}

// Overshoot returns the largest excursion above the target (0 if the
// series never exceeds it).
func Overshoot(xs []float64, target float64) float64 {
	over := 0.0
	for _, x := range xs {
		if d := x - target; d > over {
			over = d
		}
	}
	return over
}

// Violations counts samples strictly above target + slack.
func Violations(xs []float64, target, slack float64) int {
	n := 0
	for _, x := range xs {
		if x > target+slack {
			n++
		}
	}
	return n
}

// MissRate returns the fraction of true values (e.g. SLO misses).
func MissRate(misses []bool) float64 {
	if len(misses) == 0 {
		return math.NaN()
	}
	n := 0
	for _, m := range misses {
		if m {
			n++
		}
	}
	return float64(n) / float64(len(misses))
}

// SteadyState extracts the last-N window of a series; the paper's Fig. 6
// statistics use the final 80 of 100 control periods.
func SteadyState(xs []float64, lastN int) []float64 {
	if lastN <= 0 || lastN >= len(xs) {
		return xs
	}
	return xs[len(xs)-lastN:]
}

// Summary bundles the steady-state statistics the comparison tables use.
type Summary struct {
	Mean       float64
	Std        float64
	RMSE       float64 // against the set point
	MaxW       float64
	Violations int
	Settling   int // periods; -1 if never settled
}

// Summarize computes a Summary of a power trace against a set point,
// using the last `steady` periods for the statistics, a ±band settling
// criterion over the full trace, and `slack` Watts of violation grace.
func Summarize(powerW []float64, setpointW float64, steady int, band, slack float64) Summary {
	ss := SteadyState(powerW, steady)
	max := math.Inf(-1)
	for _, x := range powerW {
		if x > max {
			max = x
		}
	}
	return Summary{
		Mean:       Mean(ss),
		Std:        Std(ss),
		RMSE:       RMSE(ss, setpointW),
		MaxW:       max,
		Violations: Violations(powerW, setpointW, slack),
		Settling:   SettlingTimeWindow(powerW, setpointW, band, 5),
	}
}

// ApproxEqual reports whether a and b are equal within eps, the
// comparison the floatsafety lint rule points computed-value equality
// at. eps is absolute: power and latency values in this codebase live
// in well-scaled natural units (W, S, MHz), so a relative tolerance
// buys nothing but corner cases near zero.
func ApproxEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}
