package telemetry

// Buffer is a Sink that stages Emit and Period calls for ordered
// replay into an inner sink. It exists for parallel fan-out with a
// deterministic merge: each concurrent producer (a rack node's control
// loop) gets its own Buffer, and the coordinator flushes the buffers
// in node-index order at the barrier, so the inner hub's event stream,
// JSONL, and derived metrics come out byte-identical to a sequential
// run regardless of goroutine completion order.
//
// BeginPhase/EndPhase pass straight through: phase spans are timed at
// call time (buffering them would charge the queue wait to the phase),
// the hub serializes them internally, and the per-phase duration
// histogram is commutative across nodes — in seeded contexts the zero
// clock makes every span 0 s, so the exposition stays byte-identical.
//
// A Buffer is owned by one producer goroutine; only the flushing
// goroutine may call Flush/Discard, and only after the producers have
// stopped (the coordinator's WaitGroup barrier provides that edge).
// It is not safe for concurrent use on its own.
type Buffer struct {
	inner Sink
	ops   []bufferedOp
}

// bufferedOp is one staged Emit (event) or Period (sample) call.
type bufferedOp struct {
	isPeriod bool
	event    Event
	sample   PeriodSample
}

// NewBuffer stages Emit/Period calls for replay into inner.
func NewBuffer(inner Sink) *Buffer { return &Buffer{inner: inner} }

// Inner returns the wrapped sink.
func (b *Buffer) Inner() Sink { return b.inner }

// Pending returns the number of staged calls awaiting Flush.
func (b *Buffer) Pending() int { return len(b.ops) }

// Emit implements Sink by staging the event.
func (b *Buffer) Emit(e Event) {
	b.ops = append(b.ops, bufferedOp{event: e})
}

// Period implements Sink by staging the sample.
func (b *Buffer) Period(s PeriodSample) {
	b.ops = append(b.ops, bufferedOp{isPeriod: true, sample: s})
}

// BeginPhase implements Sink; phase spans pass through unbuffered.
func (b *Buffer) BeginPhase(period int, phase string) {
	if b.inner != nil {
		b.inner.BeginPhase(period, phase)
	}
}

// EndPhase implements Sink; phase spans pass through unbuffered.
func (b *Buffer) EndPhase(period int, phase string) {
	if b.inner != nil {
		b.inner.EndPhase(period, phase)
	}
}

// Flush replays the staged calls into the inner sink in the order they
// were made, then clears the stage.
func (b *Buffer) Flush() {
	if b.inner != nil {
		for i := range b.ops {
			if b.ops[i].isPeriod {
				b.inner.Period(b.ops[i].sample)
			} else {
				b.inner.Emit(b.ops[i].event)
			}
		}
	}
	b.Discard()
}

// Discard drops the staged calls without replaying them (the rack
// coordinator uses this when a period fails mid-fan-out: no node's
// partial-period telemetry reaches the hub, matching the record
// commit).
func (b *Buffer) Discard() { b.ops = b.ops[:0] }
