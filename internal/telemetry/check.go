package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// pairings maps every opening event type to its closing type. CheckBalance
// enforces that each open state is closed by end of stream.
var pairings = map[EventType]EventType{
	EventDegradedEnter: EventDegradedExit,
	EventFailSafeEnter: EventFailSafeExit,
	EventNodeDead:      EventNodeRecovered,
	EventFaultActive:   EventFaultCleared,
	EventAlertFiring:   EventAlertResolved,
}

// stateKey identifies one open state: the node plus, for faults and
// alerts, the detail string (a node can hold several faults at once,
// and several alert rules can fire independently).
func stateKey(e Event) string {
	switch e.Type {
	case EventFaultActive, EventFaultCleared, EventAlertFiring, EventAlertResolved:
		return e.Node + "\x00" + e.Detail
	}
	return e.Node
}

// CheckBalance verifies the enter/exit invariant over an event stream:
// every degraded-enter has a degraded-exit, every failsafe-enter a
// failsafe-exit, every fault-active a fault-cleared, every node-dead a
// node-recovered — per node (and per fault), in order, with no exit
// before its enter. It returns nil when the stream is balanced.
//
// node-dead is exempt from the must-close rule: a node that stays dead
// through end of run is a legitimate terminal state, but a recovery
// without a preceding death is still an error.
func CheckBalance(events []Event) error {
	open := map[EventType]map[string]int{}
	for t := range pairings {
		open[t] = map[string]int{}
	}
	for i, e := range events {
		if _, isOpen := pairings[e.Type]; isOpen {
			open[e.Type][stateKey(e)]++
			continue
		}
		for opener, closer := range pairings {
			if e.Type != closer {
				continue
			}
			key := stateKey(e)
			if open[opener][key] == 0 {
				return fmt.Errorf("event %d: %s for %q without matching %s", i, e.Type, key, opener)
			}
			open[opener][key]--
		}
	}
	var unclosed []string
	for opener, byKey := range open {
		if opener == EventNodeDead {
			continue // terminal death is legal
		}
		for key, n := range byKey {
			if n > 0 {
				//lint:ignore determinism findings are sorted immediately below; output order does not depend on map order
				unclosed = append(unclosed, fmt.Sprintf("%s for %q (%d unclosed)", opener, key, n))
			}
		}
	}
	if len(unclosed) > 0 {
		sort.Strings(unclosed)
		return fmt.Errorf("unbalanced event stream: %v", unclosed)
	}
	return nil
}

// ReadEvents parses a JSONL event stream back into events (blank lines
// are skipped). It is the inverse of the Hub's JSONL writer and feeds
// CheckBalance in the telemetry-verify target and the tests.
func ReadEvents(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("events line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("events: %w", err)
	}
	return out, nil
}
