package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one metric dimension.
type Label struct {
	Key, Value string
}

// Labels is an ordered label set. Registration sorts it by key, so two
// sets with the same pairs in any order name the same series.
type Labels []Label

// L builds a Labels from alternating key, value strings. An odd
// argument count drops the dangling key — callers pass literals, so the
// mistake is caught by the tests that read the series back.
func L(kv ...string) Labels {
	out := make(Labels, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		out = append(out, Label{Key: kv[i], Value: kv[i+1]})
	}
	return out
}

// With returns a copy of ls extended by the given pairs.
func (ls Labels) With(kv ...string) Labels {
	out := make(Labels, 0, len(ls)+len(kv)/2)
	out = append(out, ls...)
	return append(out, L(kv...)...)
}

// signature renders the sorted, escaped `{k="v",...}` form — the series
// identity and the exposition label block ("" for no labels).
func (ls Labels) signature() string {
	if len(ls) == 0 {
		return ""
	}
	s := append(Labels(nil), ls...)
	// Stable insertion sort on the typed slice: label sets are tiny,
	// and this keeps sort.SliceStable's interface boxing and comparator
	// closure out of the per-period exposition path.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Key < s[j-1].Key; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range s {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel applies the Prometheus text-format label escapes.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatValue renders a sample value the way the exposition format
// expects (shortest round-trip decimal; deterministic).
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// series is one labeled sample stream inside a family.
type series struct {
	labels Labels
	value  float64 // counter / gauge state

	// histogram state (nil for counters and gauges)
	hist *histState
}

type histState struct {
	bounds []float64 // ascending upper bounds (le), +Inf implicit
	counts []uint64  // one per bound, plus [len(bounds)] for +Inf
	sum    float64
	count  uint64
}

// family is every series sharing one metric name.
type family struct {
	name, help, kind string
	series           map[string]*series // signature → series
}

// Registry holds counters, gauges, and fixed-bucket histograms, and
// renders them in Prometheus text exposition format. All methods are
// safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup returns (creating if needed) the series for name+labels,
// enforcing one metric kind per name. Callers must hold r.mu.
func (r *Registry) lookup(name, help, kind string, labels Labels) *series {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %s registered as %s, requested as %s", name, f.kind, kind))
	}
	sig := labels.signature()
	s, ok := f.series[sig]
	if !ok {
		s = &series{labels: append(Labels(nil), labels...)}
		f.series[sig] = s
	}
	return s
}

// The Hub drives its derived metrics through the locked mutators below,
// so every registry mutation happens under r.mu and a concurrent
// /metrics scrape (WritePrometheus) or accessor read can never observe a
// map or value mid-write. Lock order is always Hub.mu → Registry.mu; the
// Registry never calls back into the Hub.

// counterAdd bumps a counter series, registering it on first use.
func (r *Registry) counterAdd(name, help string, labels Labels, delta float64) {
	r.mu.Lock()
	r.lookup(name, help, "counter", labels).value += delta
	r.mu.Unlock()
}

// gaugeSet replaces a gauge series' value, registering it on first use.
func (r *Registry) gaugeSet(name, help string, labels Labels, v float64) {
	r.mu.Lock()
	r.lookup(name, help, "gauge", labels).value = v
	r.mu.Unlock()
}

// observe records one histogram observation, registering the series on
// first use with the given (already ascending) bucket bounds.
func (r *Registry) observe(name, help string, buckets []float64, labels Labels, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, help, "histogram", labels)
	if s.hist == nil {
		bs := append([]float64(nil), buckets...)
		s.hist = &histState{bounds: bs, counts: make([]uint64, len(bs)+1)}
	}
	s.hist.observe(v)
}

// counterValue reads a counter/gauge series back, 0 if never touched.
func (r *Registry) counterValue(name string, labels Labels) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		return 0
	}
	s, ok := f.series[labels.signature()]
	if !ok {
		return 0
	}
	return s.value
}

// observe folds one value into the bucket counts. Callers hold the
// owning registry's mutex.
func (st *histState) observe(v float64) {
	idx := len(st.bounds) // +Inf bucket
	for i, b := range st.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	st.counts[idx]++
	st.count++
	st.sum += v
}

// Counter is a monotonically increasing sample stream.
type Counter struct {
	r *Registry
	s *series
}

// Counter returns the named counter series, registering it on first use.
func (r *Registry) Counter(name, help string, labels Labels) Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Counter{r: r, s: r.lookup(name, help, "counter", labels)}
}

// Add increases the counter; negative deltas are ignored (counters are
// monotone by definition).
func (c Counter) Add(delta float64) {
	if delta < 0 {
		return
	}
	c.r.mu.Lock()
	c.s.value += delta
	c.r.mu.Unlock()
}

// Inc adds 1.
func (c Counter) Inc() { c.Add(1) }

// Value returns the current total.
func (c Counter) Value() float64 {
	c.r.mu.Lock()
	defer c.r.mu.Unlock()
	return c.s.value
}

// Gauge is a sample stream that can go up and down.
type Gauge struct {
	r *Registry
	s *series
}

// Gauge returns the named gauge series, registering it on first use.
func (r *Registry) Gauge(name, help string, labels Labels) Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Gauge{r: r, s: r.lookup(name, help, "gauge", labels)}
}

// Set replaces the gauge value.
func (g Gauge) Set(v float64) {
	g.r.mu.Lock()
	g.s.value = v
	g.r.mu.Unlock()
}

// Value returns the current value.
func (g Gauge) Value() float64 {
	g.r.mu.Lock()
	defer g.r.mu.Unlock()
	return g.s.value
}

// Histogram is a fixed-bucket cumulative histogram.
type Histogram struct {
	r *Registry
	s *series
}

// Histogram returns the named histogram series, registering it on first
// use with the given ascending bucket upper bounds (+Inf is implicit; a
// nil or unsorted slice is sorted and deduplicated).
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, help, "histogram", labels)
	if s.hist == nil {
		bs := append([]float64(nil), buckets...)
		sort.Float64s(bs)
		dedup := bs[:0]
		for i, b := range bs {
			if i == 0 || b > dedup[len(dedup)-1] {
				dedup = append(dedup, b)
			}
		}
		s.hist = &histState{bounds: dedup, counts: make([]uint64, len(dedup)+1)}
	}
	return Histogram{r: r, s: s}
}

// Observe records one value.
func (h Histogram) Observe(v float64) {
	h.r.mu.Lock()
	defer h.r.mu.Unlock()
	h.s.hist.observe(v)
}

// Count returns the number of observations.
func (h Histogram) Count() uint64 {
	h.r.mu.Lock()
	defer h.r.mu.Unlock()
	return h.s.hist.count
}

// Sum returns the sum of observations.
func (h Histogram) Sum() float64 {
	h.r.mu.Lock()
	defer h.r.mu.Unlock()
	return h.s.hist.sum
}

// Quantile estimates the p-th percentile (0..100) from the bucket
// counts by linear interpolation inside the containing bucket — the
// same estimate a Prometheus histogram_quantile() query produces. The
// first finite bucket interpolates from 0 (the histograms in this
// package hold non-negative quantities); a quantile landing in the +Inf
// bucket returns the highest finite bound. The estimate's error is
// bounded by the containing bucket's width; the cross-check test
// against metrics.Percentile pins that bound.
func (h Histogram) Quantile(p float64) (float64, error) {
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("telemetry: quantile %g outside [0, 100]", p)
	}
	h.r.mu.Lock()
	defer h.r.mu.Unlock()
	st := h.s.hist
	if st.count == 0 {
		return 0, fmt.Errorf("telemetry: quantile of empty histogram")
	}
	if len(st.bounds) == 0 {
		return 0, fmt.Errorf("telemetry: quantile of bucketless histogram")
	}
	rank := p / 100 * float64(st.count)
	cum := 0.0
	for i, b := range st.bounds {
		prev := cum
		cum += float64(st.counts[i])
		if cum >= rank && st.counts[i] > 0 {
			lo := 0.0
			if i > 0 {
				lo = st.bounds[i-1]
			}
			frac := (rank - prev) / float64(st.counts[i])
			if frac < 0 {
				frac = 0
			}
			return lo + (b-lo)*frac, nil
		}
	}
	return st.bounds[len(st.bounds)-1], nil
}

// WritePrometheus renders every family in Prometheus text exposition
// format, families sorted by name and series by label signature, so the
// output is deterministic for a deterministic run.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		//lint:ignore determinism keys are sorted immediately below; output order does not depend on map order
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		f := r.families[name]
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		sigs := make([]string, 0, len(f.series))
		for sig := range f.series {
			//lint:ignore determinism keys are sorted immediately below; output order does not depend on map order
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			s := f.series[sig]
			if f.kind == "histogram" {
				writeHistogram(&b, f.name, s)
				continue
			}
			fmt.Fprintf(&b, "%s%s %s\n", f.name, sig, formatValue(s.value))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram series (_bucket/_sum/_count).
func writeHistogram(b *strings.Builder, name string, s *series) {
	st := s.hist
	cum := uint64(0)
	for i, bound := range st.bounds {
		cum += st.counts[i]
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, s.labels.With("le", formatValue(bound)).signature(), cum)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, s.labels.With("le", "+Inf").signature(), st.count)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, s.labels.signature(), formatValue(st.sum))
	fmt.Fprintf(b, "%s_count%s %d\n", name, s.labels.signature(), st.count)
}
