package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension.
type Label struct {
	Key, Value string
}

// Labels is an ordered label set. Registration sorts it by key, so two
// sets with the same pairs in any order name the same series.
type Labels []Label

// L builds a Labels from alternating key, value strings. An odd
// argument count drops the dangling key — callers pass literals, so the
// mistake is caught by the tests that read the series back.
func L(kv ...string) Labels {
	out := make(Labels, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		out = append(out, Label{Key: kv[i], Value: kv[i+1]})
	}
	return out
}

// With returns a copy of ls extended by the given pairs.
func (ls Labels) With(kv ...string) Labels {
	out := make(Labels, 0, len(ls)+len(kv)/2)
	out = append(out, ls...)
	return append(out, L(kv...)...)
}

// signature renders the sorted, escaped `{k="v",...}` form — the series
// identity and the exposition label block ("" for no labels).
func (ls Labels) signature() string {
	if len(ls) == 0 {
		return ""
	}
	s := append(Labels(nil), ls...)
	// Stable insertion sort on the typed slice: label sets are tiny,
	// and this keeps sort.SliceStable's interface boxing and comparator
	// closure out of the per-period exposition path.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Key < s[j-1].Key; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range s {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel applies the Prometheus text-format label escapes.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatValue renders a sample value the way the exposition format
// expects (shortest round-trip decimal; deterministic).
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// series is one labeled sample stream inside a family. Counter and
// gauge state lives in bits (the float64 image of the value) so the hot
// emit path can mutate it with atomics under the registry's shared read
// lock — the lock-free fast path the sharded hub's contention win rests
// on. Byte-stable exposition is preserved: in deterministic contexts
// every series is written by one ordered replay stream, so the atomic
// adds happen in the same order a mutex would impose.
type series struct {
	labels Labels
	bits   uint64 // counter / gauge state, atomic float64 bits

	// histogram state (nil for counters and gauges). The pointer itself
	// is atomic — installation races with scrape reads that hold only
	// the registry read lock — and the state it points at is guarded by
	// its own mutex, not the registry lock, so concurrent observations
	// of different series never serialize on one registry-wide mutex.
	hist atomic.Pointer[histState]
}

// load reads the counter/gauge value.
func (s *series) load() float64 {
	return math.Float64frombits(atomic.LoadUint64(&s.bits))
}

// store replaces the gauge value.
func (s *series) store(v float64) {
	atomic.StoreUint64(&s.bits, math.Float64bits(v))
}

// add folds delta into the value with a CAS loop (lock-free float add).
func (s *series) add(delta float64) {
	for {
		old := atomic.LoadUint64(&s.bits)
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if atomic.CompareAndSwapUint64(&s.bits, old, nv) {
			return
		}
	}
}

type histState struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds (le), +Inf implicit
	counts []uint64  // one per bound, plus [len(bounds)] for +Inf
	sum    float64
	count  uint64
}

// family is every series sharing one metric name. name, help, and kind
// are immutable after creation; the series map is guarded by the
// registry lock (writes under Lock, reads under RLock).
type family struct {
	name, help, kind string
	series           map[string]*series // signature → series
}

// Registry holds counters, gauges, and fixed-bucket histograms, and
// renders them in Prometheus text exposition format. All methods are
// safe for concurrent use. The families/series maps are guarded by an
// RWMutex so concurrent emitters share a read lock on the steady-state
// path (every series already registered) and only first-touch
// registration takes the write lock; sample values themselves are
// atomics (counters, gauges) or per-series locks (histograms).
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// fetch returns the series for name+labels, creating family and series
// on first touch, and enforcing one metric kind per name. The fast path
// is a shared read lock; only a miss upgrades to the write lock.
func (r *Registry) fetch(name, help, kind string, labels Labels) *series {
	sig := labels.signature()
	r.mu.RLock()
	f := r.families[name]
	var s *series
	if f != nil {
		if f.kind != kind {
			r.mu.RUnlock()
			panic(fmt.Sprintf("telemetry: metric %s registered as %s, requested as %s", name, f.kind, kind))
		}
		s = f.series[sig]
	}
	r.mu.RUnlock()
	if s != nil {
		return s
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %s registered as %s, requested as %s", name, f.kind, kind))
	}
	s, ok = f.series[sig]
	if !ok {
		s = &series{labels: append(Labels(nil), labels...)}
		f.series[sig] = s
	}
	return s
}

// The Hub drives its derived metrics through the mutators below. Lock
// order is always a hub shard lock → Registry.mu (→ histState.mu); the
// Registry never calls back into the Hub.

// counterAdd bumps a counter series, registering it on first use.
func (r *Registry) counterAdd(name, help string, labels Labels, delta float64) {
	r.fetch(name, help, "counter", labels).add(delta)
}

// gaugeSet replaces a gauge series' value, registering it on first use.
func (r *Registry) gaugeSet(name, help string, labels Labels, v float64) {
	r.fetch(name, help, "gauge", labels).store(v)
}

// observe records one histogram observation, registering the series on
// first use with the given (already ascending) bucket bounds.
func (r *Registry) observe(name, help string, buckets []float64, labels Labels, v float64) {
	s := r.fetch(name, help, "histogram", labels)
	st := s.ensureHist(buckets, false)
	st.mu.Lock()
	st.observe(v)
	st.mu.Unlock()
}

// ensureHist installs the histogram state on first use. Creation is
// rare (once per series) and synchronizes through the package-level
// histInit lock so two concurrent first observations cannot both
// install state; the fast path is one atomic load.
func (s *series) ensureHist(buckets []float64, sortBounds bool) *histState {
	if st := s.hist.Load(); st != nil {
		return st
	}
	histInit.Lock()
	defer histInit.Unlock()
	if st := s.hist.Load(); st != nil {
		return st
	}
	bs := append([]float64(nil), buckets...)
	if sortBounds {
		sort.Float64s(bs)
		dedup := bs[:0]
		for i, b := range bs {
			if i == 0 || b > dedup[len(dedup)-1] {
				dedup = append(dedup, b)
			}
		}
		bs = dedup
	}
	st := &histState{bounds: bs, counts: make([]uint64, len(bs)+1)}
	s.hist.Store(st)
	return st
}

// histInit guards first-touch histogram installation across all
// registries (a once-per-series cost, never on the steady-state path).
var histInit sync.Mutex

// counterValue reads a counter/gauge series back, 0 if never touched.
func (r *Registry) counterValue(name string, labels Labels) float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.families[name]
	if !ok {
		return 0
	}
	s, ok := f.series[labels.signature()]
	if !ok {
		return 0
	}
	return s.load()
}

// observe folds one value into the bucket counts. Callers hold st.mu.
func (st *histState) observe(v float64) {
	idx := len(st.bounds) // +Inf bucket
	for i, b := range st.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	st.counts[idx]++
	st.count++
	st.sum += v
}

// Counter is a monotonically increasing sample stream.
type Counter struct {
	r *Registry
	s *series
}

// Counter returns the named counter series, registering it on first use.
func (r *Registry) Counter(name, help string, labels Labels) Counter {
	return Counter{r: r, s: r.fetch(name, help, "counter", labels)}
}

// Add increases the counter; negative deltas are ignored (counters are
// monotone by definition).
func (c Counter) Add(delta float64) {
	if delta < 0 {
		return
	}
	c.s.add(delta)
}

// Inc adds 1.
func (c Counter) Inc() { c.Add(1) }

// Value returns the current total.
func (c Counter) Value() float64 { return c.s.load() }

// Gauge is a sample stream that can go up and down.
type Gauge struct {
	r *Registry
	s *series
}

// Gauge returns the named gauge series, registering it on first use.
func (r *Registry) Gauge(name, help string, labels Labels) Gauge {
	return Gauge{r: r, s: r.fetch(name, help, "gauge", labels)}
}

// Set replaces the gauge value.
func (g Gauge) Set(v float64) { g.s.store(v) }

// Value returns the current value.
func (g Gauge) Value() float64 { return g.s.load() }

// Histogram is a fixed-bucket cumulative histogram.
type Histogram struct {
	r *Registry
	s *series
}

// Histogram returns the named histogram series, registering it on first
// use with the given ascending bucket upper bounds (+Inf is implicit; a
// nil or unsorted slice is sorted and deduplicated).
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) Histogram {
	s := r.fetch(name, help, "histogram", labels)
	s.ensureHist(buckets, true)
	return Histogram{r: r, s: s}
}

// Observe records one value.
func (h Histogram) Observe(v float64) {
	st := h.s.hist.Load()
	st.mu.Lock()
	st.observe(v)
	st.mu.Unlock()
}

// Count returns the number of observations.
func (h Histogram) Count() uint64 {
	st := h.s.hist.Load()
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.count
}

// Sum returns the sum of observations.
func (h Histogram) Sum() float64 {
	st := h.s.hist.Load()
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.sum
}

// Quantile estimates the p-th percentile (0..100) from the bucket
// counts by linear interpolation inside the containing bucket — the
// same estimate a Prometheus histogram_quantile() query produces. The
// first finite bucket interpolates from 0 (the histograms in this
// package hold non-negative quantities); a quantile landing in the +Inf
// bucket returns the highest finite bound. The estimate's error is
// bounded by the containing bucket's width; the cross-check test
// against metrics.Percentile pins that bound.
func (h Histogram) Quantile(p float64) (float64, error) {
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("telemetry: quantile %g outside [0, 100]", p)
	}
	st := h.s.hist.Load()
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.count == 0 {
		return 0, fmt.Errorf("telemetry: quantile of empty histogram")
	}
	if len(st.bounds) == 0 {
		return 0, fmt.Errorf("telemetry: quantile of bucketless histogram")
	}
	rank := p / 100 * float64(st.count)
	cum := 0.0
	for i, b := range st.bounds {
		prev := cum
		cum += float64(st.counts[i])
		if cum >= rank && st.counts[i] > 0 {
			lo := 0.0
			if i > 0 {
				lo = st.bounds[i-1]
			}
			frac := (rank - prev) / float64(st.counts[i])
			if frac < 0 {
				frac = 0
			}
			return lo + (b-lo)*frac, nil
		}
	}
	return st.bounds[len(st.bounds)-1], nil
}

// WritePrometheus renders every family in Prometheus text exposition
// format, families sorted by name and series by label signature, so the
// output is deterministic for a deterministic run.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		//lint:ignore determinism keys are sorted immediately below; output order does not depend on map order
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		f := r.families[name]
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		sigs := make([]string, 0, len(f.series))
		for sig := range f.series {
			//lint:ignore determinism keys are sorted immediately below; output order does not depend on map order
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			s := f.series[sig]
			if f.kind == "histogram" {
				writeHistogram(&b, f.name, s)
				continue
			}
			fmt.Fprintf(&b, "%s%s %s\n", f.name, sig, formatValue(s.load()))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram series (_bucket/_sum/_count).
// A histogram series registered but never observed (hist not yet
// installed) renders nothing — a transient state a concurrent scrape
// can catch between registration and first observation.
func writeHistogram(b *strings.Builder, name string, s *series) {
	st := s.hist.Load()
	if st == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	cum := uint64(0)
	for i, bound := range st.bounds {
		cum += st.counts[i]
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, s.labels.With("le", formatValue(bound)).signature(), cum)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, s.labels.With("le", "+Inf").signature(), st.count)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, s.labels.signature(), formatValue(st.sum))
	fmt.Fprintf(b, "%s_count%s %d\n", name, s.labels.signature(), st.count)
}
