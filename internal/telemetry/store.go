package telemetry

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// The embedded multi-resolution time-series store. Every PeriodSample
// folds a small set of per-node series (power, set point, energy, CPU
// frequency) into a fixed-size full-resolution ring plus deterministic
// downsampled tiers (10× and 100× period aggregation carrying
// min/max/mean/count and violation flags). Memory is bounded by the
// ring and tier capacities regardless of run length, so a day-long soak
// can be analyzed from the store instead of an O(periods) JSONL stream.
//
// All store state lives inside the owning node's hub shard and is
// guarded by the shard lock — the store adds no locks of its own.

// Store field names — the series retained per node.
const (
	SeriesSetpointW  = "setpoint_w"
	SeriesPowerW     = "power_w"      // meter-side period average
	SeriesPowerTrueW = "power_true_w" // breaker-side period average
	SeriesEnergyJ    = "energy_j"
	SeriesCPUGHz     = "cpu_ghz"
)

// storeFields is the fixed retention set, in export order.
var storeFields = []string{
	SeriesCPUGHz, SeriesEnergyJ, SeriesPowerTrueW, SeriesPowerW, SeriesSetpointW,
}

// Flag bits carried by points and OR-folded into downsampled buckets,
// so a 100×-resolution scan still shows whether any covered period
// violated the cap or missed an SLO.
const (
	FlagCapViolation uint8 = 1 << iota
	FlagSLOMiss
	FlagDegraded
	FlagFailSafe
)

// Downsample factors of the two aggregated tiers (full resolution is
// tier 1×).
const (
	TierFactor10  = 10
	TierFactor100 = 100
)

// StoreConfig tunes the time-series store. The zero value enables the
// store with default capacities.
type StoreConfig struct {
	// Disable drops per-period series retention entirely (events and
	// metrics are unaffected).
	Disable bool
	// RingCapacity is the number of full-resolution points kept per
	// series (default 4096). The 10× tier keeps the same number of
	// buckets; the 100× tier keeps a quarter — enough that both
	// downsampled tiers cover a full simulated day with room to spare.
	RingCapacity int
}

// storeSettings is the resolved form held by the Hub.
type storeSettings struct {
	disabled bool
	ringCap  int
	tier10   int
	tier100  int
}

func (c StoreConfig) resolve() storeSettings {
	ringCap := c.RingCapacity
	if ringCap <= 0 {
		ringCap = 4096
	}
	tier100 := ringCap / 4
	if tier100 < 64 {
		tier100 = 64
	}
	return storeSettings{disabled: c.Disable, ringCap: ringCap, tier10: ringCap, tier100: tier100}
}

// Point is one full-resolution sample.
type Point struct {
	Period int
	Value  float64
	Flags  uint8
}

// Bucket is one downsampled aggregate covering Factor consecutive
// periods starting at StartPeriod (the last bucket of a query may be
// partial — Count tells how many periods it folded).
type Bucket struct {
	StartPeriod int
	Count       int
	Min, Max    float64
	Sum         float64
	Flags       uint8
}

// Mean returns the bucket's mean value.
func (b Bucket) Mean() float64 { return b.Sum / float64(b.Count) }

// pointRing is a bounded circular buffer of full-resolution points.
type pointRing struct {
	pts  []Point
	head int
	cap  int
}

func (r *pointRing) push(p Point) {
	if len(r.pts) >= r.cap {
		r.pts[r.head] = p
		r.head = (r.head + 1) % len(r.pts)
		return
	}
	r.pts = append(r.pts, p)
}

// snapshot returns the ring oldest-first.
func (r *pointRing) snapshot() []Point {
	out := make([]Point, 0, len(r.pts))
	out = append(out, r.pts[r.head:]...)
	return append(out, r.pts[:r.head]...)
}

// tierRing aggregates points into factor-wide buckets and keeps the
// most recent sealed buckets in a bounded ring; the open (unsealed)
// bucket is materialized into query results so the freshest data is
// never invisible.
type tierRing struct {
	factor  int
	buckets []Bucket
	head    int
	cap     int
	cur     Bucket
	curOpen bool
}

func (t *tierRing) push(p Point) {
	start := (p.Period / t.factor) * t.factor
	if t.curOpen && t.cur.StartPeriod == start {
		t.cur.Count++
		if p.Value < t.cur.Min {
			t.cur.Min = p.Value
		}
		if p.Value > t.cur.Max {
			t.cur.Max = p.Value
		}
		t.cur.Sum += p.Value
		t.cur.Flags |= p.Flags
		return
	}
	if t.curOpen {
		t.seal()
	}
	t.cur = Bucket{StartPeriod: start, Count: 1, Min: p.Value, Max: p.Value, Sum: p.Value, Flags: p.Flags}
	t.curOpen = true
}

func (t *tierRing) seal() {
	if len(t.buckets) >= t.cap {
		t.buckets[t.head] = t.cur
		t.head = (t.head + 1) % len(t.buckets)
	} else {
		t.buckets = append(t.buckets, t.cur)
	}
	t.curOpen = false
}

// snapshot returns sealed buckets oldest-first plus the open bucket.
func (t *tierRing) snapshot() []Bucket {
	n := len(t.buckets)
	if t.curOpen {
		n++
	}
	out := make([]Bucket, 0, n)
	out = append(out, t.buckets[t.head:]...)
	out = append(out, t.buckets[:t.head]...)
	if t.curOpen {
		out = append(out, t.cur)
	}
	return out
}

// seriesStore is one node-field's multi-resolution retention.
type seriesStore struct {
	full   pointRing
	tier10 tierRing
	t100   tierRing
}

func newSeriesStore(cfg storeSettings) *seriesStore {
	return &seriesStore{
		full:   pointRing{pts: make([]Point, 0, cfg.ringCap), cap: cfg.ringCap},
		tier10: tierRing{factor: TierFactor10, buckets: make([]Bucket, 0, cfg.tier10), cap: cfg.tier10},
		t100:   tierRing{factor: TierFactor100, buckets: make([]Bucket, 0, cfg.tier100), cap: cfg.tier100},
	}
}

func (ss *seriesStore) push(p Point) {
	ss.full.push(p)
	ss.tier10.push(p)
	ss.t100.push(p)
}

// record folds one period sample into the node's series. Callers hold
// the node's shard lock.
func (cfg storeSettings) record(st *nodeState, s PeriodSample, slackFrac float64) {
	if cfg.disabled {
		return
	}
	if st.series == nil {
		st.series = make(map[string]*seriesStore, len(storeFields))
		for _, f := range storeFields {
			st.series[f] = newSeriesStore(cfg)
		}
	}
	var flags uint8
	if s.SetpointW > 0 && s.AvgPowerW > s.SetpointW*(1+slackFrac) {
		flags |= FlagCapViolation
	}
	for _, miss := range s.SLOMiss {
		if miss {
			flags |= FlagSLOMiss
			break
		}
	}
	if s.Degraded {
		flags |= FlagDegraded
	}
	if s.FailSafe {
		flags |= FlagFailSafe
	}
	st.series[SeriesSetpointW].push(Point{Period: s.Period, Value: s.SetpointW, Flags: flags})
	st.series[SeriesPowerW].push(Point{Period: s.Period, Value: s.AvgPowerW, Flags: flags})
	st.series[SeriesPowerTrueW].push(Point{Period: s.Period, Value: s.TruePowerW, Flags: flags})
	st.series[SeriesEnergyJ].push(Point{Period: s.Period, Value: s.EnergyJ, Flags: flags})
	st.series[SeriesCPUGHz].push(Point{Period: s.Period, Value: s.CPUFreqGHz, Flags: flags})
}

// QueryRequest selects a series window from the store.
type QueryRequest struct {
	Node   string
	Series string // one of the Series* field names
	Res    int    // 1 (full), 10, or 100 periods per bucket
	From   int    // first period (inclusive); <0 = unbounded
	To     int    // last period (inclusive); <0 = unbounded
}

// QueryResult is the answer: buckets in ascending period order. At
// Res 1 each bucket covers one period (Count 1, Min = Max = Mean).
// Truncated reports whether the store's bounded retention has dropped
// periods older than the returned window at this resolution.
type QueryResult struct {
	Node      string   `json:"node"`
	Series    string   `json:"series"`
	Res       int      `json:"res"`
	Truncated bool     `json:"truncated"`
	Buckets   []Bucket `json:"buckets"`
}

// StoreNodes returns every node with retained series, sorted.
func (h *Hub) StoreNodes() []string {
	var names []string
	for _, sh := range h.shards {
		sh.mu.Lock()
		for name, st := range sh.nodes {
			if st.series != nil {
				//lint:ignore determinism names are sorted by the caller below; output order does not depend on map order
				names = append(names, name)
			}
		}
		sh.mu.Unlock()
	}
	sort.Strings(names)
	return names
}

// StoreFields returns the retained series names, sorted.
func StoreFields() []string { return append([]string(nil), storeFields...) }

// Query answers a QueryRequest from the store.
func (h *Hub) Query(q QueryRequest) (QueryResult, error) {
	res := QueryResult{Node: q.Node, Series: q.Series, Res: q.Res}
	if h.store.disabled {
		return res, fmt.Errorf("telemetry: time-series store disabled")
	}
	if q.Res != 1 && q.Res != TierFactor10 && q.Res != TierFactor100 {
		return res, fmt.Errorf("telemetry: unsupported resolution %d (want 1, %d, or %d)", q.Res, TierFactor10, TierFactor100)
	}
	sh := h.shardFor(q.Node)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.nodes[q.Node]
	if !ok || st.series == nil {
		return res, fmt.Errorf("telemetry: no series for node %q", q.Node)
	}
	ss, ok := st.series[q.Series]
	if !ok {
		return res, fmt.Errorf("telemetry: unknown series %q", q.Series)
	}
	var all []Bucket
	var total int // entries retained before windowing, to report truncation
	switch q.Res {
	case 1:
		pts := ss.full.snapshot()
		total = ss.full.capDropped(pts)
		all = make([]Bucket, 0, len(pts))
		for _, p := range pts {
			all = append(all, Bucket{StartPeriod: p.Period, Count: 1, Min: p.Value, Max: p.Value, Sum: p.Value, Flags: p.Flags})
		}
	case TierFactor10:
		all = ss.tier10.snapshot()
		total = ss.tier10.dropped()
	default:
		all = ss.t100.snapshot()
		total = ss.t100.dropped()
	}
	res.Truncated = total > 0
	res.Buckets = windowBuckets(all, q.From, q.To)
	return res, nil
}

// capDropped reports whether the full-resolution ring has evicted
// points (the retained window no longer starts at the series origin).
func (r *pointRing) capDropped(snap []Point) int {
	if len(snap) >= r.cap {
		return 1
	}
	return 0
}

// dropped reports whether the tier ring has evicted sealed buckets.
func (t *tierRing) dropped() int {
	if len(t.buckets) >= t.cap {
		return 1
	}
	return 0
}

// windowBuckets filters buckets to [from, to] by covered period range.
func windowBuckets(all []Bucket, from, to int) []Bucket {
	out := all[:0:0]
	for _, b := range all {
		last := b.StartPeriod + b.Count - 1
		if from >= 0 && last < from {
			continue
		}
		if to >= 0 && b.StartPeriod > to {
			continue
		}
		out = append(out, b)
	}
	return out
}

// WriteStoreCSV exports every node's series at the given resolution as
// CSV (node, series, start_period, count, min, max, mean, flags), nodes
// and series sorted — the bounded-size soak artifact that replaces
// O(periods) JSONL for offline analysis.
func (h *Hub) WriteStoreCSV(w io.Writer, res int) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"node", "series", "start_period", "count", "min", "max", "mean", "flags"}); err != nil {
		return err
	}
	for _, node := range h.StoreNodes() {
		for _, field := range storeFields {
			q, err := h.Query(QueryRequest{Node: node, Series: field, Res: res, From: -1, To: -1})
			if err != nil {
				return err
			}
			for _, b := range q.Buckets {
				rec := []string{
					node, field,
					strconv.Itoa(b.StartPeriod),
					strconv.Itoa(b.Count),
					formatValue(b.Min),
					formatValue(b.Max),
					formatValue(b.Mean()),
					strconv.Itoa(int(b.Flags)),
				}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
