package telemetry

import (
	"math"
	"strings"
	"testing"
)

// TestLedgerAttribution: energy lands in the (node, class, state,
// epoch) cell it ran under, states classify by the documented priority,
// and the table comes out sorted with exact Wh totals.
func TestLedgerAttribution(t *testing.T) {
	hub := New(Config{})
	emit := func(node, class string, epoch int, energyJ float64, degraded, failsafe, uncontrolled bool) {
		hub.Period(PeriodSample{
			Node: node, Controller: "capgpu", Period: 0, SetpointW: 900,
			AvgPowerW: 800, TruePowerW: 805, EnergyJ: energyJ,
			Class: class, Epoch: epoch,
			Degraded: degraded, FailSafe: failsafe, Uncontrolled: uncontrolled,
		})
	}
	emit("nB", "heavy", 0, 3600, false, false, false) // 1 Wh normal
	emit("nB", "heavy", 0, 7200, false, false, false) // +2 Wh same cell
	emit("nB", "heavy", 1, 3600, false, false, false) // 1 Wh, epoch 1
	emit("nA", "", 0, 1800, true, false, false)       // 0.5 Wh degraded, default class
	emit("nA", "", 0, 1800, true, true, false)        // failsafe beats degraded
	emit("nA", "", 0, 1800, true, true, true)         // uncontrolled beats both

	rows := hub.LedgerTable()
	if len(rows) != 5 {
		t.Fatalf("got %d rows: %+v", len(rows), rows)
	}
	// Sorted by node, class, epoch, state.
	if rows[0].Node != "nA" || rows[0].Class != DefaultWorkloadClass {
		t.Errorf("row 0 = %+v, want nA/default first", rows[0])
	}
	states := map[string]bool{}
	for _, r := range rows {
		if r.Node == "nA" {
			states[r.State] = true
			if r.Wh != 0.5 {
				t.Errorf("nA %s cell = %v Wh, want 0.5", r.State, r.Wh)
			}
		}
	}
	for _, want := range []string{EnergyStateDegraded, EnergyStateFailSafe, EnergyStateUncontrolled} {
		if !states[want] {
			t.Errorf("missing nA state %s in %v", want, states)
		}
	}
	var nbEpoch0, nbEpoch1 float64
	for _, r := range rows {
		if r.Node == "nB" && r.Epoch == 0 {
			nbEpoch0 = r.Wh
		}
		if r.Node == "nB" && r.Epoch == 1 {
			nbEpoch1 = r.Wh
		}
	}
	if nbEpoch0 != 3 || nbEpoch1 != 1 {
		t.Errorf("nB epochs = %v / %v Wh, want 3 / 1", nbEpoch0, nbEpoch1)
	}
	if total := hub.LedgerTotalWh(); math.Abs(total-5.5) > 1e-12 {
		t.Errorf("total = %v Wh, want 5.5", total)
	}
	if nb := hub.NodeWh("nB"); math.Abs(nb-4) > 1e-12 {
		t.Errorf("nB = %v Wh, want 4", nb)
	}
	// The metric agrees with the cells.
	if v := hub.CounterValue("capgpu_energy_wh_total",
		L("node", "nB", "class", "heavy", "state", EnergyStateNormal)); math.Abs(v-4) > 1e-12 {
		t.Errorf("capgpu_energy_wh_total{nB} = %v, want 4", v)
	}
	table := FormatLedgerTable(rows)
	if !strings.Contains(table, "TOTAL") || !strings.Contains(table, "heavy") {
		t.Errorf("table missing expected rows:\n%s", table)
	}
	if strings.Contains(table, "gCO2") {
		t.Errorf("unweighted table grew carbon columns:\n%s", table)
	}
}

// TestLedgerWeightCurves: carbon and price accrue as kWh × curve(period)
// and surface in both the cells and the metrics.
func TestLedgerWeightCurves(t *testing.T) {
	hub := New(Config{})
	hub.SetEnergyWeights(
		func(k int) float64 { return 400 + float64(k) }, // gCO2/kWh
		func(k int) float64 { return 0.10 },             // cost/kWh
	)
	// 1.8 MJ = 0.5 kWh at period 10 → 0.5 × 410 g, 0.5 × 0.10 units.
	hub.Period(PeriodSample{
		Node: "n0", Controller: "capgpu", Period: 10,
		SetpointW: 900, AvgPowerW: 800, EnergyJ: 1.8e6,
	})
	rows := hub.LedgerTable()
	if len(rows) != 1 {
		t.Fatalf("rows = %+v", rows)
	}
	if g := rows[0].CarbonG; math.Abs(g-205) > 1e-9 {
		t.Errorf("carbon = %v g, want 205", g)
	}
	if u := rows[0].CostU; math.Abs(u-0.05) > 1e-12 {
		t.Errorf("cost = %v, want 0.05", u)
	}
	if v := hub.CounterValue("capgpu_energy_carbon_grams_total",
		L("node", "n0", "class", DefaultWorkloadClass, "state", EnergyStateNormal)); math.Abs(v-205) > 1e-9 {
		t.Errorf("carbon metric = %v, want 205", v)
	}
	table := FormatLedgerTable(rows)
	if !strings.Contains(table, "gCO2") || !strings.Contains(table, "cost") {
		t.Errorf("weighted table missing weight columns:\n%s", table)
	}
}
