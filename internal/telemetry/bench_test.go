package telemetry

import (
	"fmt"
	"sync"
	"testing"
)

// benchPeriodSample is a steady in-band sample: no transitions, so the
// benchmark isolates the shard-lock + registry + store hot path from
// event-stream appends.
func benchPeriodSample(node string, period int) PeriodSample {
	return PeriodSample{
		Node: node, Period: period, TimeS: float64(period) * 4,
		SetpointW: 900, AvgPowerW: 895, TruePowerW: 894,
		EnergyJ: 3580, CPUFreqGHz: 2.2,
	}
}

// BenchmarkHubEmitParallel pins the sharding win: the same per-node
// period stream pushed from W goroutines, against a single-mutex hub
// (Shards=1) and the sharded default. At workers>1 the sharded variant
// must beat the single mutex — capgpu-bench records the same matrix in
// BENCH_<date>.json and the allocation ratchet holds the hot path flat.
func BenchmarkHubEmitParallel(b *testing.B) {
	for _, shards := range []int{1, DefaultShards} {
		for _, workers := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("shards=%d/workers=%d", shards, workers), func(b *testing.B) {
				hub := New(Config{Shards: shards, Store: StoreConfig{RingCapacity: 256}})
				// Warm every node's state so the timed loop never allocates
				// nodeState, series rings, or ledger cells.
				for w := 0; w < workers; w++ {
					hub.Period(benchPeriodSample(fmt.Sprintf("bench%02d", w), 0))
				}
				per := (b.N + workers - 1) / workers
				b.ReportAllocs()
				b.ResetTimer()
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						node := fmt.Sprintf("bench%02d", w)
						for i := 1; i <= per; i++ {
							hub.Period(benchPeriodSample(node, i))
						}
					}(w)
				}
				wg.Wait()
			})
		}
	}
}

// BenchmarkHubEventAppend measures the globally-ordered event stream
// alone (ring append, no JSONL sink): the serialized tail every shard
// shares.
func BenchmarkHubEventAppend(b *testing.B) {
	hub := New(Config{})
	e := Event{Type: EventPeriodStart, Node: "bench00", Period: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hub.Emit(e)
	}
}
