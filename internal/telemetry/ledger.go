package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// The energy accounting ledger. Every PeriodSample's EnergyJ is
// attributed to a (node, workload class, controller state, policy
// epoch) cell; optional carbon and price weight curves — fed from the
// daemon schedule — convert the same energy into grams of CO2 and cost
// units as it accrues. Per-node cells live inside the hub shards (no
// extra locks on the period path); the Ledger itself only holds the
// weight curves and merges cells at read time into the end-of-run
// attribution table and the capgpu_energy_* metrics.

// Controller states an energy cell can be attributed to, from most to
// least exceptional: a period that was both uncontrolled and degraded
// ledgers as uncontrolled.
const (
	EnergyStateUncontrolled = "uncontrolled"
	EnergyStateFailSafe     = "failsafe"
	EnergyStateDegraded     = "degraded"
	EnergyStateNormal       = "normal"
)

// DefaultWorkloadClass is the attribution class for samples that carry
// none.
const DefaultWorkloadClass = "default"

// WeightCurve maps a period index to a weight: grams of CO2 per kWh for
// the carbon curve, cost units per kWh for the price curve. Curves must
// be deterministic functions of the period (the daemon derives them
// from its seeded schedule).
type WeightCurve func(period int) float64

// ledgerKey is one attribution cell's identity.
type ledgerKey struct {
	class string
	state string
	epoch int
}

// ledgerCell accumulates one cell. Guarded by the owning node's shard
// lock. The cached series handles keep the per-period metric updates
// allocation-free; cells differing only in epoch share the same
// underlying series (the metrics drop the epoch dimension to bound
// label cardinality).
type ledgerCell struct {
	periods int
	energyJ float64
	carbonG float64
	costU   float64

	whSeries     *series
	carbonSeries *series // lazily fetched on the first weighted period
	costSeries   *series
}

// Ledger holds the weight curves and reads the per-node cells back out
// of the hub shards.
type Ledger struct {
	mu     sync.RWMutex
	carbon WeightCurve
	price  WeightCurve
}

func newLedger() *Ledger { return &Ledger{} }

// SetWeights installs the carbon and price curves (either may be nil).
// Install before emission starts for a fully-attributed run; swapping
// mid-run is safe and applies to energy accrued from then on.
func (l *Ledger) SetWeights(carbon, price WeightCurve) {
	l.mu.Lock()
	l.carbon = carbon
	l.price = price
	l.mu.Unlock()
}

// SetEnergyWeights forwards to the hub's ledger — the daemon-facing
// hook for feeding schedule-derived carbon/price curves.
func (h *Hub) SetEnergyWeights(carbon, price WeightCurve) {
	h.ledger.SetWeights(carbon, price)
}

// energyState classifies a sample for attribution.
func energyState(s PeriodSample) string {
	switch {
	case s.Uncontrolled:
		return EnergyStateUncontrolled
	case s.FailSafe:
		return EnergyStateFailSafe
	case s.Degraded:
		return EnergyStateDegraded
	default:
		return EnergyStateNormal
	}
}

// record folds one sample into the node's attribution cell and the
// capgpu_energy_* metrics. Callers hold the node's shard lock.
func (l *Ledger) record(h *Hub, st *nodeState, s PeriodSample) {
	class := s.Class
	if class == "" {
		class = DefaultWorkloadClass
	}
	state := energyState(s)
	key := ledgerKey{class: class, state: state, epoch: s.Epoch}
	if st.ledger == nil {
		st.ledger = make(map[ledgerKey]*ledgerCell, 4)
	}
	cell, ok := st.ledger[key]
	if !ok {
		cell = &ledgerCell{
			whSeries: h.reg.fetch("capgpu_energy_wh_total", "Energy drawn in watt-hours, attributed by node, workload class, and controller state.",
				"counter", L("node", s.Node, "class", class, "state", state)),
		}
		st.ledger[key] = cell
	}
	cell.periods++
	cell.energyJ += s.EnergyJ

	kwh := s.EnergyJ / 3.6e6
	l.mu.RLock()
	carbon, price := l.carbon, l.price
	l.mu.RUnlock()

	cell.whSeries.add(s.EnergyJ / 3600)
	if carbon != nil {
		carbonG := kwh * carbon(s.Period)
		cell.carbonG += carbonG
		if cell.carbonSeries == nil {
			cell.carbonSeries = h.reg.fetch("capgpu_energy_carbon_grams_total", "Carbon attributed to drawn energy (grams CO2, schedule weight curve).",
				"counter", L("node", s.Node, "class", class, "state", state))
		}
		cell.carbonSeries.add(carbonG)
	}
	if price != nil {
		costU := kwh * price(s.Period)
		cell.costU += costU
		if cell.costSeries == nil {
			cell.costSeries = h.reg.fetch("capgpu_energy_cost_units_total", "Cost attributed to drawn energy (schedule weight curve units).",
				"counter", L("node", s.Node, "class", class, "state", state))
		}
		cell.costSeries.add(costU)
	}
}

// LedgerRow is one line of the attribution table.
type LedgerRow struct {
	Node    string  `json:"node"`
	Class   string  `json:"class"`
	State   string  `json:"state"`
	Epoch   int     `json:"epoch"`
	Periods int     `json:"periods"`
	Wh      float64 `json:"wh"`
	CarbonG float64 `json:"carbon_g"`
	CostU   float64 `json:"cost_units"`
}

// Table merges every node's cells into sorted attribution rows
// (node, class, epoch, state).
func (h *Hub) LedgerTable() []LedgerRow {
	var rows []LedgerRow
	for _, sh := range h.shards {
		sh.mu.Lock()
		for node, st := range sh.nodes {
			for key, cell := range st.ledger {
				//lint:ignore determinism rows are sorted below; output order does not depend on map order
				rows = append(rows, LedgerRow{
					Node: node, Class: key.class, State: key.state, Epoch: key.epoch,
					Periods: cell.periods, Wh: cell.energyJ / 3600,
					CarbonG: cell.carbonG, CostU: cell.costU,
				})
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if a.Epoch != b.Epoch {
			return a.Epoch < b.Epoch
		}
		return a.State < b.State
	})
	return rows
}

// LedgerTotalWh sums the attributed energy across every cell — the
// number the soak gate compares against an independent integration of
// the per-node power series.
func (h *Hub) LedgerTotalWh() float64 {
	var total float64
	for _, row := range h.LedgerTable() {
		total += row.Wh
	}
	return total
}

// NodeWh sums the attributed energy for one node.
func (h *Hub) NodeWh(node string) float64 {
	var total float64
	for _, row := range h.LedgerTable() {
		if row.Node == node {
			total += row.Wh
		}
	}
	return total
}

// FormatLedgerTable renders the attribution rows as the end-of-run
// table the cmds print. Carbon/cost columns appear only when any row
// carries them.
func FormatLedgerTable(rows []LedgerRow) string {
	var b strings.Builder
	withWeights := false
	for _, r := range rows {
		if r.CarbonG != 0 || r.CostU != 0 {
			withWeights = true
			break
		}
	}
	b.WriteString("energy attribution (node × class × state × epoch):\n")
	if withWeights {
		fmt.Fprintf(&b, "  %-12s %-10s %-12s %5s %8s %12s %12s %12s\n",
			"node", "class", "state", "epoch", "periods", "Wh", "gCO2", "cost")
	} else {
		fmt.Fprintf(&b, "  %-12s %-10s %-12s %5s %8s %12s\n",
			"node", "class", "state", "epoch", "periods", "Wh")
	}
	var totalWh, totalC, totalU float64
	totalP := 0
	for _, r := range rows {
		if withWeights {
			fmt.Fprintf(&b, "  %-12s %-10s %-12s %5d %8d %12.3f %12.3f %12.3f\n",
				r.Node, r.Class, r.State, r.Epoch, r.Periods, r.Wh, r.CarbonG, r.CostU)
		} else {
			fmt.Fprintf(&b, "  %-12s %-10s %-12s %5d %8d %12.3f\n",
				r.Node, r.Class, r.State, r.Epoch, r.Periods, r.Wh)
		}
		totalWh += r.Wh
		totalC += r.CarbonG
		totalU += r.CostU
		totalP += r.Periods
	}
	if withWeights {
		fmt.Fprintf(&b, "  %-12s %-10s %-12s %5s %8d %12.3f %12.3f %12.3f\n",
			"TOTAL", "", "", "", totalP, totalWh, totalC, totalU)
	} else {
		fmt.Fprintf(&b, "  %-12s %-10s %-12s %5s %8d %12.3f\n",
			"TOTAL", "", "", "", totalP, totalWh)
	}
	return b.String()
}
