package telemetry

import (
	"bytes"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("capgpu_test_total", "A test counter.", L("node", "gpu0"))
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotone
	if got := c.Value(); got != 3 {
		t.Fatalf("counter value = %g, want 3", got)
	}
	g := r.Gauge("capgpu_test_watts", "A test gauge.", nil)
	g.Set(912.5)
	h := r.Histogram("capgpu_test_seconds", "A test histogram.", []float64{0.1, 0.2, 0.1}, nil)
	h.Observe(0.05)
	h.Observe(0.15)
	h.Observe(5)

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := strings.Join([]string{
		"# HELP capgpu_test_seconds A test histogram.",
		"# TYPE capgpu_test_seconds histogram",
		`capgpu_test_seconds_bucket{le="0.1"} 1`,
		`capgpu_test_seconds_bucket{le="0.2"} 2`,
		`capgpu_test_seconds_bucket{le="+Inf"} 3`,
		"capgpu_test_seconds_sum 5.2",
		"capgpu_test_seconds_count 3",
		"# HELP capgpu_test_total A test counter.",
		"# TYPE capgpu_test_total counter",
		`capgpu_test_total{node="gpu0"} 3`,
		"# HELP capgpu_test_watts A test gauge.",
		"# TYPE capgpu_test_watts gauge",
		"capgpu_test_watts 912.5",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}

	// Same pairs, different order → same series.
	r.Counter("capgpu_pairs_total", "h", L("a", "1", "b", "2")).Inc()
	r.Counter("capgpu_pairs_total", "h", L("b", "2", "a", "1")).Inc()
	if got := r.Counter("capgpu_pairs_total", "h", L("a", "1", "b", "2")).Value(); got != 2 {
		t.Fatalf("label order should not split series: value = %g, want 2", got)
	}
}

func TestRegistryExpositionDeterministic(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		for _, node := range []string{"zeta", "alpha", "mid"} {
			r.Counter("capgpu_b_total", "b", L("node", node)).Inc()
			r.Gauge("capgpu_a_watts", "a", L("node", node)).Set(5)
		}
		var b bytes.Buffer
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	first := build()
	for i := 0; i < 10; i++ {
		if got := build(); got != first {
			t.Fatalf("exposition not deterministic on rebuild %d:\n%s\nvs\n%s", i, got, first)
		}
	}
	if !strings.Contains(first, "capgpu_a_watts") || strings.Index(first, "capgpu_a_watts") > strings.Index(first, "capgpu_b_total") {
		t.Fatalf("families not sorted by name:\n%s", first)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("capgpu_esc_total", "h", L("detail", "a\"b\\c\nd")).Inc()
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `detail="a\"b\\c\nd"`) {
		t.Fatalf("label not escaped:\n%s", b.String())
	}
}

// Satellite: telemetry histogram quantile estimates must agree with
// metrics.Percentile within a bucket width on shared fixtures.
func TestHistogramQuantileCrossCheck(t *testing.T) {
	// Fixture 1: deterministic power-like values spread over 850–1150 W.
	var powerW []float64
	for i := 0; i < 500; i++ {
		powerW = append(powerW, 850+300*float64(i)/499)
	}
	// Fixture 2: latency-like values with a heavy tail.
	var latencyS []float64
	for i := 0; i < 200; i++ {
		x := float64(i) / 199
		latencyS = append(latencyS, 0.06+0.5*x*x*x)
	}

	cases := []struct {
		name    string
		xs      []float64
		buckets []float64
	}{
		{"power", powerW, DefPowerBuckets},
		{"latency", latencyS, DefLatencyBuckets},
	}
	for _, tc := range cases {
		r := NewRegistry()
		h := r.Histogram("capgpu_x_seconds", "x", tc.buckets, nil)
		for _, v := range tc.xs {
			h.Observe(v)
		}
		for _, p := range []float64{1, 10, 25, 50, 75, 90, 95, 99} {
			exact, err := metrics.Percentile(tc.xs, p)
			if err != nil {
				t.Fatal(err)
			}
			est, err := h.Quantile(p)
			if err != nil {
				t.Fatal(err)
			}
			// The estimate's error bound is the width of the bucket the
			// quantile lands in.
			width := maxBucketWidth(tc.buckets)
			if math.Abs(est-exact) > width {
				t.Errorf("%s p%g: histogram estimate %g vs exact %g (max bucket width %g)",
					tc.name, p, est, exact, width)
			}
		}
	}
}

func maxBucketWidth(bounds []float64) float64 {
	w := bounds[0] // first bucket spans [0, bounds[0]]
	for i := 1; i < len(bounds); i++ {
		if d := bounds[i] - bounds[i-1]; d > w {
			w = d
		}
	}
	return w
}

func TestHistogramQuantileEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("capgpu_q_seconds", "q", []float64{1, 2}, nil)
	if _, err := h.Quantile(50); err == nil {
		t.Fatal("quantile of empty histogram should error")
	}
	h.Observe(1.5)
	if _, err := h.Quantile(-1); err == nil {
		t.Fatal("quantile(-1) should error")
	}
	if _, err := h.Quantile(101); err == nil {
		t.Fatal("quantile(101) should error")
	}
	if v, err := h.Quantile(100); err != nil || v < 1 || v > 2 {
		t.Fatalf("quantile(100) = %g, %v; want inside (1, 2]", v, err)
	}
	// An observation beyond the last bound lands in +Inf; the estimate
	// degrades to the highest finite bound rather than fabricating one.
	h.Observe(50)
	if v, err := h.Quantile(100); err != nil || v != 2 {
		t.Fatalf("quantile(100) with +Inf mass = %g, %v; want 2", v, err)
	}
}

// sample builds a baseline PeriodSample for hub tests.
func sample(node string, period int, avgW float64) PeriodSample {
	return PeriodSample{
		Node: node, Controller: "capgpu", Period: period,
		TimeS: float64(period+1) * 4, SetpointW: 900, AvgPowerW: avgW,
		TruePowerW: avgW, EnergyJ: avgW * 4, CPUFreqGHz: 2.4,
		GPUFreqMHz: []float64{1300, 1350}, GPULatencyS: []float64{0.12, 0.14},
		SLOMiss: []bool{false, false},
	}
}

func TestHubTransitionSynthesis(t *testing.T) {
	var jsonl bytes.Buffer
	h := New(Config{JSONL: &jsonl})

	s0 := sample("n0", 0, 899)
	h.Period(s0)

	s1 := sample("n0", 1, 930) // violation (>909)
	s1.Degraded = true
	s1.MeterStale = 1
	s1.Faults = []string{"meter-dropout@4+3"}
	s1.SLOMiss = []bool{false, true}
	h.Period(s1)

	s2 := sample("n0", 2, 905)
	s2.Degraded = true
	s2.FailSafe = true
	s2.MeterStale = 2
	s2.Faults = []string{"meter-dropout@4+3"}
	h.Period(s2)

	s3 := sample("n0", 3, 880)
	h.Period(s3) // everything clears

	if err := h.Finish(); err != nil {
		t.Fatal(err)
	}

	events := h.Events()
	var types []EventType
	for _, e := range events {
		types = append(types, e.Type)
	}
	want := []EventType{
		EventPeriodEnd,
		EventCapViolation, EventSLOMiss, EventFaultActive, EventDegradedEnter, EventPeriodEnd,
		EventFailSafeEnter, EventPeriodEnd,
		EventFaultCleared, EventDegradedExit, EventFailSafeExit, EventPeriodEnd,
		EventRunEnd,
	}
	if len(types) != len(want) {
		t.Fatalf("event types = %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("event %d = %s, want %s (full: %v)", i, types[i], want[i], types)
		}
	}

	if err := CheckBalance(events); err != nil {
		t.Fatalf("stream should balance: %v", err)
	}

	// Counters derived from the synthesized events.
	if got := h.CounterValue("capgpu_cap_violations_total", L("node", "n0")); got != 1 {
		t.Fatalf("cap violations = %g, want 1", got)
	}
	if got := h.CounterValue("capgpu_slo_misses_total", L("node", "n0", "gpu", "1")); got != 1 {
		t.Fatalf("slo misses gpu1 = %g, want 1", got)
	}
	if got := h.CounterValue("capgpu_degraded_periods_total", L("node", "n0")); got != 2 {
		t.Fatalf("degraded periods = %g, want 2", got)
	}
	if got := h.CounterValue("capgpu_degraded_entries_total", L("node", "n0")); got != 1 {
		t.Fatalf("degraded entries = %g, want 1", got)
	}
	if got := h.CounterValue("capgpu_failsafe_entries_total", L("node", "n0")); got != 1 {
		t.Fatalf("failsafe entries = %g, want 1", got)
	}
	if got := h.CounterValue("capgpu_periods_total", L("controller", "capgpu", "node", "n0")); got != 4 {
		t.Fatalf("periods = %g, want 4", got)
	}

	// JSONL round-trips to the same stream.
	parsed, err := ReadEvents(&jsonl)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(events) {
		t.Fatalf("JSONL has %d events, ring has %d", len(parsed), len(events))
	}
	for i := range parsed {
		if parsed[i] != eventComparable(events[i]) {
			t.Fatalf("JSONL event %d = %+v, ring %+v", i, parsed[i], events[i])
		}
	}
}

// eventComparable is the identity map — Event has no slices/maps, so it
// is directly comparable; the helper documents that assumption where a
// future field addition would break it.
func eventComparable(e Event) Event { return e }

func TestHubFinishClosesOpenStates(t *testing.T) {
	h := New(Config{})
	s := sample("n0", 0, 905)
	s.Degraded = true
	s.FailSafe = true
	s.Faults = []string{"meter-stuck@0+9"}
	h.Period(s)
	if err := h.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := CheckBalance(h.Events()); err != nil {
		t.Fatalf("Finish should close open states: %v", err)
	}
}

func TestCheckBalanceErrors(t *testing.T) {
	if err := CheckBalance([]Event{
		{Type: EventDegradedExit, Node: "n0"},
	}); err == nil {
		t.Fatal("exit without enter should fail")
	}
	if err := CheckBalance([]Event{
		{Type: EventFailSafeEnter, Node: "n0"},
	}); err == nil {
		t.Fatal("unclosed enter should fail")
	}
	if err := CheckBalance([]Event{
		{Type: EventFaultActive, Node: "n0", Detail: "gpu-derate"},
		{Type: EventFaultCleared, Node: "n0", Detail: "other-fault"},
	}); err == nil {
		t.Fatal("fault cleared with mismatched detail should fail")
	}
	// A node that dies and never recovers is a legal terminal state.
	if err := CheckBalance([]Event{
		{Type: EventNodeDead, Node: "n0"},
	}); err != nil {
		t.Fatalf("terminal node death should balance: %v", err)
	}
	if err := CheckBalance([]Event{
		{Type: EventNodeRecovered, Node: "n0"},
	}); err == nil {
		t.Fatal("recovery without death should fail")
	}
}

func TestPhaseSpans(t *testing.T) {
	now := 0.0
	h := New(Config{Clock: func() float64 { return now }})
	sink := h.NodeSink("n0")
	sink.BeginPhase(0, PhaseDecide)
	now = 0.25
	sink.EndPhase(0, PhaseDecide)
	sink.EndPhase(0, PhaseSense) // end without begin: ignored

	hist := h.Registry().Histogram("capgpu_phase_duration_seconds", "", DefPhaseBuckets, L("phase", PhaseDecide))
	if got := hist.Count(); got != 1 {
		t.Fatalf("decide span count = %d, want 1", got)
	}
	if got := hist.Sum(); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("decide span sum = %g, want 0.25", got)
	}
}

func TestZeroClockDefault(t *testing.T) {
	h := New(Config{})
	h.BeginPhase(0, PhaseSense)
	h.EndPhase(0, PhaseSense)
	hist := h.Registry().Histogram("capgpu_phase_duration_seconds", "", DefPhaseBuckets, L("phase", PhaseSense))
	if got := hist.Sum(); got != 0 {
		t.Fatalf("zero clock should observe zero durations, sum = %g", got)
	}
	if got := hist.Count(); got != 1 {
		t.Fatalf("span should still be counted, count = %d", got)
	}
}

// TestConcurrentScrapeDuringEmission pins the locking contract between
// the Hub and the Registry: a /metrics scrape (WritePrometheus) and the
// accessor reads run concurrently with a control loop emitting through
// the Hub. Under -race this fails if any Hub path mutates the registry
// without holding Registry.mu.
func TestConcurrentScrapeDuringEmission(t *testing.T) {
	h := New(Config{EventCapacity: 64})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 300; i++ {
			s := sample("n0", i, 890+float64(i%40))
			s.SLOMiss = []bool{i%7 == 0, false}
			s.Degraded = i%11 < 3
			h.Period(s)
			h.BeginPhase(i, PhaseDecide)
			h.EndPhase(i, PhaseDecide)
		}
	}()
	for scraping := true; scraping; {
		select {
		case <-done:
			scraping = false
		default:
		}
		var b bytes.Buffer
		if err := h.Registry().WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		_ = h.Events()
		_ = h.CounterValue("capgpu_cap_violations_total", L("node", "n0"))
	}
	if got := h.CounterValue("capgpu_periods_total", L("controller", "capgpu", "node", "n0")); got != 300 {
		t.Fatalf("periods counter = %g, want 300", got)
	}
}

func TestEventRingCapacity(t *testing.T) {
	h := New(Config{EventCapacity: 4})
	for i := 0; i < 10; i++ {
		h.Emit(Event{Type: EventPeriodStart, Period: i, Device: -1})
	}
	events := h.Events()
	if len(events) != 4 {
		t.Fatalf("ring holds %d, want 4", len(events))
	}
	for i, e := range events {
		if e.Period != 6+i {
			t.Fatalf("ring[%d].Period = %d, want %d (oldest dropped first)", i, e.Period, 6+i)
		}
	}
	if got := h.EventsTotal(); got != 10 {
		t.Fatalf("EventsTotal = %d, want 10", got)
	}
}

func TestJSONLWriteErrorSticky(t *testing.T) {
	h := New(Config{JSONL: failWriter{}})
	h.Emit(Event{Type: EventPeriodStart, Device: -1})
	if h.Err() == nil {
		t.Fatal("write error should surface through Err")
	}
	if err := h.Finish(); err == nil {
		t.Fatal("Finish should report the sticky JSONL error")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, io.ErrClosedPipe }

func TestHTTPHandler(t *testing.T) {
	h := New(Config{EventCapacity: 8})
	h.Emit(Event{Type: EventPeriodStart, Period: 0, Device: -1, Node: "n0"})
	h.Period(sample("n0", 0, 930)) // violation → counter + events

	srv := httptest.NewServer(Handler(h))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if !strings.Contains(body, `capgpu_cap_violations_total{node="n0"} 1`) {
		t.Fatalf("/metrics missing violation counter:\n%s", body)
	}
	if !strings.Contains(body, "# TYPE capgpu_period_power_watts histogram") {
		t.Fatalf("/metrics missing power histogram:\n%s", body)
	}

	code, body = get("/events?n=2")
	if code != http.StatusOK {
		t.Fatalf("/events status = %d", code)
	}
	if !strings.Contains(body, string(EventPeriodEnd)) {
		t.Fatalf("/events tail missing period-end:\n%s", body)
	}
	if strings.Contains(body, string(EventPeriodStart)) {
		t.Fatalf("/events?n=2 should have dropped the oldest event:\n%s", body)
	}

	code, body = get("/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
}

func TestNopSinkAndNilSafety(t *testing.T) {
	var s Sink = NopSink{}
	s.Emit(Event{})
	s.Period(PeriodSample{})
	s.BeginPhase(0, PhaseSense)
	s.EndPhase(0, PhaseSense)
}
