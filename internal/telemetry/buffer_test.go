package telemetry

import (
	"bytes"
	"testing"
)

// TestBufferOrderedReplay: the buffer replays Emit/Period calls into
// the inner sink in call order at Flush, and a second flush replays
// nothing.
func TestBufferOrderedReplay(t *testing.T) {
	var jsonl bytes.Buffer
	hub := New(Config{JSONL: &jsonl})
	b := NewBuffer(hub.NodeSink("n0"))

	b.Emit(Event{Type: EventPeriodStart, Period: 0, Device: -1})
	b.Period(PeriodSample{Period: 0, Node: "n0", AvgPowerW: 900, SetpointW: 950})
	b.Emit(Event{Type: EventAdaptFrozen, Period: 1, Device: -1})
	if hub.EventsTotal() != 0 {
		t.Fatalf("events reached the hub before Flush: %d", hub.EventsTotal())
	}
	if b.Pending() != 3 {
		t.Fatalf("pending = %d, want 3", b.Pending())
	}
	b.Flush()
	if b.Pending() != 0 {
		t.Fatalf("pending after Flush = %d", b.Pending())
	}
	evs := hub.Events()
	if len(evs) < 3 {
		t.Fatalf("hub has %d events, want the staged 3 (plus synthesized)", len(evs))
	}
	if evs[0].Type != EventPeriodStart || evs[0].Node != "n0" {
		t.Fatalf("first replayed event = %+v", evs[0])
	}
	// The staged sample went through Period: the period-end event the
	// hub synthesizes from it must follow the explicit period-start.
	sawEnd := false
	for _, e := range evs {
		if e.Type == EventPeriodEnd {
			sawEnd = true
		}
	}
	if !sawEnd {
		t.Fatal("staged Period call did not reach the hub")
	}
	before := hub.EventsTotal()
	b.Flush() // empty stage: no-op
	if hub.EventsTotal() != before {
		t.Fatal("second Flush replayed stale ops")
	}
}

// TestBufferPhasePassThrough: phase spans bypass the stage so they are
// timed at call time, not at flush time.
func TestBufferPhasePassThrough(t *testing.T) {
	hub := New(Config{})
	b := NewBuffer(hub.NodeSink("n0"))
	b.BeginPhase(0, PhaseSense)
	b.EndPhase(0, PhaseSense)
	if b.Pending() != 0 {
		t.Fatalf("phase calls were staged: pending = %d", b.Pending())
	}
	var prom bytes.Buffer
	if err := hub.Registry().WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(prom.Bytes(), []byte(`capgpu_phase_duration_seconds_count{phase="sense"} 1`)) {
		t.Fatalf("phase observation missing from exposition:\n%s", prom.String())
	}
}

// TestBufferDiscard drops the stage without replay, and a nil inner
// sink is safe throughout.
func TestBufferDiscard(t *testing.T) {
	hub := New(Config{})
	b := NewBuffer(hub)
	b.Emit(Event{Type: EventCapViolation})
	b.Discard()
	b.Flush()
	if hub.EventsTotal() != 0 {
		t.Fatalf("discarded ops reached the hub: %d events", hub.EventsTotal())
	}

	nb := NewBuffer(nil)
	nb.Emit(Event{Type: EventCapViolation})
	nb.Period(PeriodSample{})
	nb.BeginPhase(0, PhaseSense)
	nb.EndPhase(0, PhaseSense)
	nb.Flush() // must not panic
	if nb.Pending() != 0 {
		t.Fatal("nil-inner flush left staged ops")
	}
}
