// Package telemetry is CapGPU's observability layer: a metrics registry
// with Prometheus text-format exposition, a structured JSONL event
// stream for control-loop lifecycle events, and span-style tracing of
// the control-period phases (sense → condense → decide → actuate →
// verify), so controller overhead itself is measured.
//
// The instrumented packages (core, actuator, cluster, experiments) talk
// to telemetry only through the small Sink interface, and their sink
// fields default to nil — the hot-path cost of disabled telemetry is a
// single nil check per instrumentation point.
//
// Determinism contract: this package is inside the capgpu-lint
// determinism scope. It never reads the wall clock or a global RNG;
// every timestamp is either carried by the emitter (the harness stamps
// events with simulated time) or produced by the Clock injected into
// the Hub. Seeded contexts inject nothing (the zero clock), so the
// seeded-replay golden test produces byte-identical event streams; the
// cmd layer injects a wall clock, which is the only place one exists.
package telemetry

// EventType names one control-loop lifecycle event.
type EventType string

// The event taxonomy. Enter/exit pairs are balanced: every *-enter (and
// node-dead, fault-active) is matched by its closing event, emitted at
// the state transition or synthesized by Hub.Finish at end of run —
// CheckBalance verifies the invariant over a recorded stream.
const (
	EventPeriodStart     EventType = "period-start"
	EventPeriodEnd       EventType = "period-end"
	EventCapViolation    EventType = "cap-violation"
	EventSLOMiss         EventType = "slo-miss"
	EventDegradedEnter   EventType = "degraded-enter"
	EventDegradedExit    EventType = "degraded-exit"
	EventFailSafeEnter   EventType = "failsafe-enter"
	EventFailSafeExit    EventType = "failsafe-exit"
	EventFaultActive     EventType = "fault-active"
	EventFaultCleared    EventType = "fault-cleared"
	EventActuatorDiverge EventType = "actuator-diverged"
	EventNodeDead        EventType = "node-dead"
	EventNodeRecovered   EventType = "node-recovered"
	EventReallocation    EventType = "reallocation"
	EventMPCInfeasible   EventType = "mpc-infeasible"
	EventAdaptFrozen     EventType = "adapt-frozen"
	EventRunEnd          EventType = "run-end"

	// Control-plane lifecycle events (the capgpu-rack daemon). These are
	// point events, not enter/exit pairs: membership transitions are
	// already visible as state (node-dead/node-recovered cover liveness),
	// so CheckBalance imposes no pairing on them.
	EventNodeJoined          EventType = "node-join"
	EventDrainStart          EventType = "drain-start"
	EventNodeReleased        EventType = "node-released"
	EventPolicyApplied       EventType = "policy-applied"
	EventPolicyRejected      EventType = "policy-rejected"
	EventReservationReleased EventType = "reservation-released"
	EventCheckpoint          EventType = "checkpoint"
	EventLoadBurst           EventType = "load-burst"

	// Online alerting lifecycle (the Hub's alert engine, when enabled).
	// Detail carries the rule name; the pair is balanced per (node, rule)
	// and Hub.Finish resolves any alert still firing at end of run.
	EventAlertFiring   EventType = "alert-firing"
	EventAlertResolved EventType = "alert-resolved"
)

// Event is one structured lifecycle record. Device is -1 when the event
// is not device-scoped (0 = CPU, 1.. = GPUs for actuator events; the
// GPU index for SLO misses). Value carries the event's scalar payload:
// Watts over the cap for cap-violation, measured latency for slo-miss,
// reserved Watts for reallocation, consecutive stale periods for
// degraded-enter.
type Event struct {
	TimeS  float64   `json:"time_s"`
	Period int       `json:"period"`
	Type   EventType `json:"type"`
	Node   string    `json:"node,omitempty"`
	Device int       `json:"device"`
	Value  float64   `json:"value,omitempty"`
	Detail string    `json:"detail,omitempty"`
	// Cause is the provenance span ID behind the event (the policy-op
	// span for policy-applied, the reallocation span for reallocation,
	// the death span for node-dead, …). Empty when no tracer is
	// attached, so untraced streams are byte-identical to before.
	Cause string `json:"cause,omitempty"`
}

// PeriodSample is the once-per-control-period snapshot an instrumented
// harness reports. The Hub derives gauges, counters, and histograms
// from it and synthesizes transition events (degraded/fail-safe
// enter+exit, fault activation, cap violation, SLO miss) by diffing
// successive samples per node — so the emitting loop stays free of
// telemetry state.
type PeriodSample struct {
	Node       string
	Controller string
	Period     int
	TimeS      float64 // simulated seconds at period end

	SetpointW  float64
	AvgPowerW  float64 // what the controller was fed
	TruePowerW float64 // breaker-side truth
	EnergyJ    float64 // energy drawn during the period

	CPUFreqGHz  float64
	GPUFreqMHz  []float64
	GPULatencyS []float64
	SLOMiss     []bool

	// GPUPhasePrefill / GPUQueueDepth are the period-average prefill
	// share and admission-queue depth per GPU for LLM workloads; nil on
	// CNN runs, in which case the hub never registers their series (so
	// pre-LLM Prometheus goldens stay byte-identical).
	GPUPhasePrefill []float64
	GPUQueueDepth   []float64

	MeterStale   int
	Degraded     bool
	FailSafe     bool
	Uncontrolled bool

	ActuatorRetries  int
	ActuatorDiverged []bool
	Faults           []string // active injected faults, DSL form

	// Attribution dimensions for the energy ledger. Class is the node's
	// workload class ("" ledgers as "default"); Epoch is the policy epoch
	// the period ran under (0 outside the control-plane daemon).
	Class string
	Epoch int
}

// Sink is the interface instrumented packages emit through. A nil Sink
// means telemetry is disabled; call sites guard with one nil check.
// Implementations must be safe for sequential use from a single control
// loop; the Hub additionally locks so interleaved loops (a rack of
// nodes) can share one sink.
type Sink interface {
	// Emit records one lifecycle event.
	Emit(e Event)
	// Period records the end-of-period snapshot.
	Period(s PeriodSample)
	// BeginPhase opens a control-period phase span.
	BeginPhase(period int, phase string)
	// EndPhase closes the span and observes its duration (measured by
	// the sink's injected clock) into the per-phase histogram.
	EndPhase(period int, phase string)
}

// NopSink is a Sink that discards everything — for tests that need a
// non-nil sink.
type NopSink struct{}

// Emit implements Sink.
func (NopSink) Emit(Event) {}

// Period implements Sink.
func (NopSink) Period(PeriodSample) {}

// BeginPhase implements Sink.
func (NopSink) BeginPhase(int, string) {}

// EndPhase implements Sink.
func (NopSink) EndPhase(int, string) {}

// Phases of one control period, in execution order. The harness opens
// and closes them around the corresponding loop sections; the Hub keys
// the duration histograms by these names.
const (
	PhaseSense    = "sense"    // tick the plant, sample the meter
	PhaseCondense = "condense" // window average + degradation machine
	PhaseDecide   = "decide"   // controller (or fail-safe) decision
	PhaseActuate  = "actuate"  // modulate + deliver commands
	PhaseVerify   = "verify"   // read-back divergence analysis
)

// Clock supplies monotonic timestamps in seconds for span measurement.
// Seeded packages must not construct one from the wall clock; the cmd
// layer does, which is where controller overhead becomes measurable.
type Clock func() float64
