package telemetry

import (
	"testing"
)

func alertHub(cfg AlertConfig) *Hub {
	return New(Config{Alerts: &cfg})
}

// eventsOf filters a stream to the given type.
func eventsOf(events []Event, t EventType) []Event {
	var out []Event
	for _, e := range events {
		if e.Type == t {
			out = append(out, e)
		}
	}
	return out
}

// TestAlertCapSustain: the rule fires only after the configured run of
// consecutive violations and resolves on the first clean period; the
// pair balances under CheckBalance.
func TestAlertCapSustain(t *testing.T) {
	hub := alertHub(AlertConfig{CapSustain: 3})
	emit := func(k int, power float64) {
		hub.Period(storeSample("n0", k, power, false, false))
	}
	emit(0, 950) // violation 1
	emit(1, 950) // violation 2
	if f := eventsOf(hub.Events(), EventAlertFiring); len(f) != 0 {
		t.Fatalf("fired after 2 violations: %+v", f)
	}
	emit(2, 950) // violation 3 → fire
	fired := eventsOf(hub.Events(), EventAlertFiring)
	if len(fired) != 1 || fired[0].Detail != AlertCapSustain || fired[0].Period != 2 {
		t.Fatalf("firing = %+v, want one cap-sustain at period 2", fired)
	}
	if fired[0].Value != 3 {
		t.Errorf("firing value = %v, want the run length 3", fired[0].Value)
	}
	emit(3, 800) // clean → resolve
	resolved := eventsOf(hub.Events(), EventAlertResolved)
	if len(resolved) != 1 || resolved[0].Detail != AlertCapSustain || resolved[0].Period != 3 {
		t.Fatalf("resolved = %+v, want one cap-sustain at period 3", resolved)
	}
	if err := hub.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := CheckBalance(hub.Events()); err != nil {
		t.Errorf("alert stream unbalanced: %v", err)
	}
}

// TestAlertMeterStale: fires at the dwell threshold, resolves when the
// meter is fresh again, and an alert still firing at end of run is
// resolved by Finish.
func TestAlertMeterStale(t *testing.T) {
	hub := alertHub(AlertConfig{StaleDwell: 3})
	emit := func(k, stale int) {
		s := storeSample("n0", k, 800, false, false)
		s.MeterStale = stale
		s.Degraded = stale > 0
		hub.Period(s)
	}
	emit(0, 1)
	emit(1, 2)
	if f := eventsOf(hub.Events(), EventAlertFiring); len(f) != 0 {
		t.Fatalf("fired below the dwell: %+v", f)
	}
	emit(2, 3)
	fired := eventsOf(hub.Events(), EventAlertFiring)
	if len(fired) != 1 || fired[0].Detail != AlertMeterStale || fired[0].Value != 3 {
		t.Fatalf("firing = %+v, want meter-stale value 3", fired)
	}
	// Run ends with the alert (and the degraded state) still open:
	// Finish must close both so the stream balances.
	if err := hub.Finish(); err != nil {
		t.Fatal(err)
	}
	resolved := eventsOf(hub.Events(), EventAlertResolved)
	if len(resolved) != 1 || resolved[0].Detail != AlertMeterStale {
		t.Fatalf("Finish did not resolve the open alert: %+v", resolved)
	}
	if err := CheckBalance(hub.Events()); err != nil {
		t.Errorf("stream unbalanced after Finish: %v", err)
	}
}

// TestAlertSLOBurn: the burn rate needs a full window before firing,
// fires at the threshold, and clears only at the (lower) hysteresis
// threshold.
func TestAlertSLOBurn(t *testing.T) {
	hub := alertHub(AlertConfig{SLOBurnWindow: 4, SLOBurnFire: 0.5, SLOBurnClear: 0.25})
	emit := func(k int, miss bool) {
		hub.Period(storeSample("n0", k, 800, false, miss))
	}
	// Two misses inside the first 3 periods: burn already 0.5 but the
	// window is not warm — must not fire.
	emit(0, true)
	emit(1, true)
	emit(2, false)
	if f := eventsOf(hub.Events(), EventAlertFiring); len(f) != 0 {
		t.Fatalf("fired before the window warmed: %+v", f)
	}
	emit(3, false) // window full: burn = 2/4 = 0.5 → fire
	fired := eventsOf(hub.Events(), EventAlertFiring)
	if len(fired) != 1 || fired[0].Detail != AlertSLOBurn || fired[0].Period != 3 {
		t.Fatalf("firing = %+v, want slo-burn at period 3", fired)
	}
	emit(4, false) // window [miss,_, _, _] → burn 0.25 ≤ clear → resolve
	resolved := eventsOf(hub.Events(), EventAlertResolved)
	if len(resolved) != 1 || resolved[0].Detail != AlertSLOBurn || resolved[0].Period != 4 {
		t.Fatalf("resolved = %+v, want slo-burn at period 4", resolved)
	}
	if err := hub.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := CheckBalance(hub.Events()); err != nil {
		t.Errorf("stream unbalanced: %v", err)
	}
}

// TestAlertBudgetHeadroom: rack-wide power is accumulated per period
// across nodes, the completed period is evaluated when a later one
// arrives, and sustained exhaustion fires on the synthetic rack node.
func TestAlertBudgetHeadroom(t *testing.T) {
	hub := alertHub(AlertConfig{BudgetW: 2000, BudgetFrac: 0.95, BudgetSustain: 2})
	emit := func(k int, perNodeTrueW float64) {
		for _, n := range []string{"n0", "n1"} {
			s := storeSample(n, k, perNodeTrueW, false, false)
			s.TruePowerW = perNodeTrueW
			hub.Period(s)
		}
	}
	emit(0, 980) // rack 1960 ≥ 1900: exhausted 1 (finalized at period 1)
	emit(1, 980) // exhausted 2 → fires when period 2 arrives
	emit(2, 700) // clean → resolves when finalized
	if f := eventsOf(hub.Events(), EventAlertFiring); len(f) != 1 ||
		f[0].Detail != AlertBudgetHeadroom || f[0].Node != AlertRackNode || f[0].Period != 1 {
		t.Fatalf("firing = %+v, want budget-headroom on %q at period 1", f, AlertRackNode)
	}
	if err := hub.Finish(); err != nil { // finalizes period 2 → resolve
		t.Fatal(err)
	}
	resolved := eventsOf(hub.Events(), EventAlertResolved)
	if len(resolved) != 1 || resolved[0].Detail != AlertBudgetHeadroom || resolved[0].Period != 2 {
		t.Fatalf("resolved = %+v, want budget-headroom at period 2", resolved)
	}
	if err := CheckBalance(hub.Events()); err != nil {
		t.Errorf("stream unbalanced: %v", err)
	}
}

// TestAlertBudgetInstalledLater: SetRackBudget arms the rule mid-run
// (the daemon installs the budget after hub construction) and a zero
// budget disables it.
func TestAlertBudgetInstalledLater(t *testing.T) {
	hub := alertHub(AlertConfig{BudgetSustain: 1})
	s := storeSample("n0", 0, 800, false, false)
	s.TruePowerW = 1900
	hub.Period(s)
	s.Period = 1
	hub.Period(s) // finalizes period 0: no budget installed → no alert
	if f := eventsOf(hub.Events(), EventAlertFiring); len(f) != 0 {
		t.Fatalf("budget rule fired without a budget: %+v", f)
	}
	hub.SetRackBudget(1000)
	s.Period = 2
	hub.Period(s) // finalizes period 1 at 1900 ≥ 950 → fire
	if f := eventsOf(hub.Events(), EventAlertFiring); len(f) != 1 || f[0].Detail != AlertBudgetHeadroom {
		t.Fatalf("firing = %+v, want budget-headroom after SetRackBudget", f)
	}
	if err := hub.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := CheckBalance(hub.Events()); err != nil {
		t.Errorf("stream unbalanced: %v", err)
	}
}

// TestAlertsDisabledByDefault: a hub without Alerts never emits alert
// events and SetRackBudget is a no-op — pre-existing event streams are
// untouched.
func TestAlertsDisabledByDefault(t *testing.T) {
	hub := New(Config{})
	if hub.AlertsEnabled() {
		t.Fatal("alerts enabled without config")
	}
	hub.SetRackBudget(100) // must not panic
	for k := 0; k < 10; k++ {
		hub.Period(storeSample("n0", k, 950, true, true))
	}
	if err := hub.Finish(); err != nil {
		t.Fatal(err)
	}
	for _, e := range hub.Events() {
		if e.Type == EventAlertFiring || e.Type == EventAlertResolved {
			t.Fatalf("alert event %+v from an alert-less hub", e)
		}
	}
}

// TestFiredAlerts: the scan helper returns firings in stream order.
func TestFiredAlerts(t *testing.T) {
	events := []Event{
		{Type: EventPeriodEnd},
		{Type: EventAlertFiring, Detail: AlertCapSustain, Node: "a"},
		{Type: EventAlertResolved, Detail: AlertCapSustain, Node: "a"},
		{Type: EventAlertFiring, Detail: AlertMeterStale, Node: "b"},
	}
	got := FiredAlerts(events)
	if len(got) != 2 || got[0].Detail != AlertCapSustain || got[1].Detail != AlertMeterStale {
		t.Errorf("FiredAlerts = %+v", got)
	}
}
