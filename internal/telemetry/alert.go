package telemetry

import "sync"

// The online alerting engine. Rules are deterministic functions of the
// period-sample stream, evaluated at period barriers, so a seeded run
// fires byte-identical alert events at any worker count (samples reach
// the hub in replayed node order; per-node rule state lives in the
// node's shard). Alerts are lifecycle events: alert-firing opens,
// alert-resolved closes, Detail carries the rule name, and Hub.Finish
// resolves anything still firing so CheckBalance holds across the pair.
//
// Rule catalogue:
//
//	slo-burn        — SLO-miss burn rate over a sliding window of
//	                  periods crossed the firing threshold (clears with
//	                  hysteresis at a lower threshold)
//	cap-sustain     — measured power exceeded the set point (plus
//	                  slack) for N consecutive periods
//	meter-stale     — the node's meter has been blind for N consecutive
//	                  periods
//	budget-headroom — rack-wide true power held above the configured
//	                  fraction of the breaker budget for N consecutive
//	                  periods (rack-scoped: fires on the synthetic
//	                  "rack" node and is evaluated when a period's last
//	                  sample has arrived)
const (
	AlertSLOBurn        = "slo-burn"
	AlertCapSustain     = "cap-sustain"
	AlertMeterStale     = "meter-stale"
	AlertBudgetHeadroom = "budget-headroom"
)

// AlertRackNode is the node label rack-scoped alerts fire under — the
// same synthetic node the control-plane coordinator emits as.
const AlertRackNode = "rack"

// AlertConfig tunes the alert rules. Zero fields take the defaults
// noted on each; pass the zero value for an all-defaults engine.
type AlertConfig struct {
	// SLOBurnWindow is the sliding window length in periods (default 20).
	SLOBurnWindow int
	// SLOBurnFire is the window-average miss fraction at which slo-burn
	// fires (default 0.5 — half the GPU-periods in the window missed).
	SLOBurnFire float64
	// SLOBurnClear is the fraction at which a firing slo-burn resolves
	// (default 0.25; must be ≤ SLOBurnFire — the gap is the hysteresis).
	SLOBurnClear float64
	// CapSustain is the consecutive violating periods before cap-sustain
	// fires (default 3).
	CapSustain int
	// CapSlackFrac is the violation slack for cap-sustain (default: the
	// hub's ViolationSlackFrac, so the rule agrees with the event
	// stream; the soak gate widens it to match the doctor's slack).
	CapSlackFrac float64
	// StaleDwell is the consecutive blind periods before meter-stale
	// fires (default 3).
	StaleDwell int
	// BudgetW is the rack breaker budget for budget-headroom; 0 disables
	// the rule until SetRackBudget installs a budget.
	BudgetW float64
	// BudgetFrac is the fraction of BudgetW above which headroom counts
	// as exhausted (default 0.95).
	BudgetFrac float64
	// BudgetSustain is the consecutive exhausted periods before
	// budget-headroom fires (default 5).
	BudgetSustain int
	// Hook, when set, observes every alert lifecycle event the engine
	// emits, right after the event enters the hub — the provenance
	// tracer's attachment point. It runs under the emitting shard's
	// lock (or the rack accumulator's), so it must be fast and must not
	// call back into the hub.
	Hook func(e Event)
}

// DefaultAlertConfig returns the documented defaults.
func DefaultAlertConfig() AlertConfig {
	return AlertConfig{
		SLOBurnWindow: 20, SLOBurnFire: 0.5, SLOBurnClear: 0.25,
		CapSustain: 3, StaleDwell: 3,
		BudgetFrac: 0.95, BudgetSustain: 5,
	}
}

func (c AlertConfig) resolve(hubSlack float64) AlertConfig {
	d := DefaultAlertConfig()
	if c.SLOBurnWindow <= 0 {
		c.SLOBurnWindow = d.SLOBurnWindow
	}
	if c.SLOBurnFire <= 0 {
		c.SLOBurnFire = d.SLOBurnFire
	}
	if c.SLOBurnClear <= 0 {
		c.SLOBurnClear = d.SLOBurnClear
	}
	if c.SLOBurnClear > c.SLOBurnFire {
		c.SLOBurnClear = c.SLOBurnFire
	}
	if c.CapSustain <= 0 {
		c.CapSustain = d.CapSustain
	}
	if c.CapSlackFrac <= 0 {
		c.CapSlackFrac = hubSlack
	}
	if c.StaleDwell <= 0 {
		c.StaleDwell = d.StaleDwell
	}
	if c.BudgetFrac <= 0 {
		c.BudgetFrac = d.BudgetFrac
	}
	if c.BudgetSustain <= 0 {
		c.BudgetSustain = d.BudgetSustain
	}
	return c
}

// nodeAlertState is one node's rule state, guarded by the node's shard
// lock.
type nodeAlertState struct {
	sloWindow []float64 // per-period miss fractions, circular by period index
	sloSeen   int       // samples folded so far (window warms up)
	sloFiring bool

	capRun    int
	capFiring bool

	staleFiring bool
}

// rackAlertState is the cross-node budget-headroom accumulator. A
// period finalizes when the first sample of a later period arrives —
// in replayed (deterministic) order that is exactly the period barrier.
type rackAlertState struct {
	mu sync.Mutex //lint:lockorder before:eventStream.mu

	budgetW   float64
	curPeriod int
	curTime   float64
	curSumW   float64
	havePrev  bool
	sustain   int
	firing    bool
}

// alertEngine evaluates the rules. Per-node state lives in the hub
// shards; only the rack accumulator is engine-owned.
type alertEngine struct {
	cfg  AlertConfig
	rack rackAlertState
}

func newAlertEngine(cfg AlertConfig, hubSlack float64) *alertEngine {
	e := &alertEngine{cfg: cfg.resolve(hubSlack)}
	e.rack.budgetW = e.cfg.BudgetW
	return e
}

// emit forwards one alert lifecycle event to the hub and then to the
// configured hook. The hook is a function value, so the hot-path
// analyzer's reachability walk stops here; Event is a concrete struct
// and the call boxes nothing.
func (e *alertEngine) emit(h *Hub, ev Event) {
	h.Emit(ev)
	if e.cfg.Hook != nil {
		e.cfg.Hook(ev)
	}
}

// SetRackBudget installs (or updates) the breaker budget the
// budget-headroom rule divides against. A no-op when alerting is
// disabled.
func (h *Hub) SetRackBudget(w float64) {
	if h.alerts == nil {
		return
	}
	h.alerts.rack.mu.Lock()
	h.alerts.rack.budgetW = w
	h.alerts.rack.mu.Unlock()
}

// AlertsEnabled reports whether the hub runs the alert engine.
func (h *Hub) AlertsEnabled() bool { return h.alerts != nil }

// onPeriod evaluates every rule against one sample. Callers hold the
// node's shard lock; rules run in a fixed order so the event stream is
// deterministic.
//
//capgpu:hotpath
func (e *alertEngine) onPeriod(h *Hub, st *nodeState, s PeriodSample) {
	if st.alerts == nil {
		st.alerts = &nodeAlertState{sloWindow: make([]float64, e.cfg.SLOBurnWindow)}
	}
	a := st.alerts

	// slo-burn: sliding-window miss fraction with hysteresis. The window
	// sum is recomputed each period (window lengths are tens of entries)
	// so the rate is an exact function of the retained values — no
	// incremental float drift.
	missFrac := 0.0
	if len(s.SLOMiss) > 0 {
		misses := 0
		for _, m := range s.SLOMiss {
			if m {
				misses++
			}
		}
		missFrac = float64(misses) / float64(len(s.SLOMiss))
	}
	a.sloWindow[s.Period%len(a.sloWindow)] = missFrac
	if a.sloSeen < len(a.sloWindow) {
		a.sloSeen++
	}
	var burn float64
	for _, f := range a.sloWindow {
		burn += f
	}
	burn /= float64(len(a.sloWindow))
	warm := a.sloSeen >= len(a.sloWindow)
	switch {
	case !a.sloFiring && warm && burn >= e.cfg.SLOBurnFire:
		a.sloFiring = true
		e.emit(h, Event{TimeS: s.TimeS, Period: s.Period, Type: EventAlertFiring,
			Node: s.Node, Device: -1, Detail: AlertSLOBurn, Value: burn})
	case a.sloFiring && burn <= e.cfg.SLOBurnClear:
		a.sloFiring = false
		e.emit(h, Event{TimeS: s.TimeS, Period: s.Period, Type: EventAlertResolved,
			Node: s.Node, Device: -1, Detail: AlertSLOBurn, Value: burn})
	}

	// cap-sustain: consecutive measured-power violations.
	violating := s.SetpointW > 0 && s.AvgPowerW > s.SetpointW*(1+e.cfg.CapSlackFrac)
	if violating {
		a.capRun++
	} else {
		a.capRun = 0
	}
	switch {
	case !a.capFiring && a.capRun >= e.cfg.CapSustain:
		a.capFiring = true
		e.emit(h, Event{TimeS: s.TimeS, Period: s.Period, Type: EventAlertFiring,
			Node: s.Node, Device: -1, Detail: AlertCapSustain, Value: float64(a.capRun)})
	case a.capFiring && !violating:
		a.capFiring = false
		e.emit(h, Event{TimeS: s.TimeS, Period: s.Period, Type: EventAlertResolved,
			Node: s.Node, Device: -1, Detail: AlertCapSustain})
	}

	// meter-stale: blind-meter dwell.
	switch {
	case !a.staleFiring && s.MeterStale >= e.cfg.StaleDwell:
		a.staleFiring = true
		e.emit(h, Event{TimeS: s.TimeS, Period: s.Period, Type: EventAlertFiring,
			Node: s.Node, Device: -1, Detail: AlertMeterStale, Value: float64(s.MeterStale)})
	case a.staleFiring && s.MeterStale == 0:
		a.staleFiring = false
		e.emit(h, Event{TimeS: s.TimeS, Period: s.Period, Type: EventAlertResolved,
			Node: s.Node, Device: -1, Detail: AlertMeterStale})
	}

	// budget-headroom: rack-wide accumulation; the previous period
	// finalizes when a later period's first sample arrives.
	e.rack.mu.Lock()
	if e.rack.havePrev && s.Period > e.rack.curPeriod {
		e.finalizeRackLocked(h)
	}
	if !e.rack.havePrev || s.Period != e.rack.curPeriod {
		e.rack.havePrev = true
		e.rack.curPeriod = s.Period
		e.rack.curTime = s.TimeS
		e.rack.curSumW = 0
	}
	e.rack.curSumW += s.TruePowerW
	e.rack.mu.Unlock()
}

// finalizeRackLocked evaluates budget-headroom over the completed
// period. Callers hold rack.mu.
func (e *alertEngine) finalizeRackLocked(h *Hub) {
	r := &e.rack
	exhausted := r.budgetW > 0 && r.curSumW >= r.budgetW*e.cfg.BudgetFrac
	if exhausted {
		r.sustain++
	} else {
		r.sustain = 0
	}
	switch {
	case !r.firing && r.sustain >= e.cfg.BudgetSustain:
		r.firing = true
		e.emit(h, Event{TimeS: r.curTime, Period: r.curPeriod, Type: EventAlertFiring,
			Node: AlertRackNode, Device: -1, Detail: AlertBudgetHeadroom, Value: r.curSumW})
	case r.firing && !exhausted:
		r.firing = false
		e.emit(h, Event{TimeS: r.curTime, Period: r.curPeriod, Type: EventAlertResolved,
			Node: AlertRackNode, Device: -1, Detail: AlertBudgetHeadroom, Value: r.curSumW})
	}
}

// finishNode resolves any per-node rule still firing at end of run.
// Callers hold the node's shard lock.
func (e *alertEngine) finishNode(h *Hub, st *nodeState, node string) {
	a := st.alerts
	if a == nil {
		return
	}
	last := st.lastSeen
	if a.sloFiring {
		a.sloFiring = false
		e.emit(h, Event{TimeS: last.TimeS, Period: last.Period, Type: EventAlertResolved,
			Node: node, Device: -1, Detail: AlertSLOBurn})
	}
	if a.capFiring {
		a.capFiring = false
		e.emit(h, Event{TimeS: last.TimeS, Period: last.Period, Type: EventAlertResolved,
			Node: node, Device: -1, Detail: AlertCapSustain})
	}
	if a.staleFiring {
		a.staleFiring = false
		e.emit(h, Event{TimeS: last.TimeS, Period: last.Period, Type: EventAlertResolved,
			Node: node, Device: -1, Detail: AlertMeterStale})
	}
}

// finishRack finalizes the pending rack period and resolves a firing
// budget-headroom alert.
func (e *alertEngine) finishRack(h *Hub) {
	e.rack.mu.Lock()
	defer e.rack.mu.Unlock()
	if e.rack.havePrev {
		e.finalizeRackLocked(h)
	}
	if e.rack.firing {
		e.rack.firing = false
		e.emit(h, Event{TimeS: e.rack.curTime, Period: e.rack.curPeriod, Type: EventAlertResolved,
			Node: AlertRackNode, Device: -1, Detail: AlertBudgetHeadroom})
	}
}

// FiredAlerts scans an event stream for alert firings and returns them
// (in stream order) — the soak gate and doctor cross-check consume
// this.
func FiredAlerts(events []Event) []Event {
	var out []Event
	for _, e := range events {
		if e.Type == EventAlertFiring {
			out = append(out, e)
		}
	}
	return out
}
