package telemetry

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestHandlerMetrics(t *testing.T) {
	hub := New(Config{})
	hub.Period(PeriodSample{Node: "server0", Period: 0, TimeS: 4,
		SetpointW: 900, AvgPowerW: 895, TruePowerW: 893})
	srv := httptest.NewServer(Handler(hub))
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, want := range []string{"# HELP", "capgpu_measured_power_watts", `node="server0"`} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestHandlerEventsTailAndDropped(t *testing.T) {
	// A tiny ring forces eviction so the dropped count is visible.
	hub := New(Config{EventCapacity: 8})
	for k := 0; k < 20; k++ {
		hub.Emit(Event{Type: EventPeriodStart, Period: k, Node: "server0"})
	}
	srv := httptest.NewServer(Handler(hub))
	defer srv.Close()

	code, body := get(t, srv, "/events")
	if code != 200 {
		t.Fatalf("/events status = %d", code)
	}
	var resp EventsResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("/events not valid JSON: %v\n%s", err, body)
	}
	if resp.Total != 20 || resp.Dropped != 12 || len(resp.Events) != 8 {
		t.Fatalf("total/dropped/len = %d/%d/%d, want 20/12/8", resp.Total, resp.Dropped, len(resp.Events))
	}
	// The ring keeps the newest events, oldest first.
	if resp.Events[0].Period != 12 || resp.Events[7].Period != 19 {
		t.Fatalf("ring window = %d..%d, want 12..19", resp.Events[0].Period, resp.Events[7].Period)
	}

	// ?n= narrows the tail further; dropped still reports ring eviction.
	_, body = get(t, srv, "/events?n=3")
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Events) != 3 || resp.Events[0].Period != 17 {
		t.Fatalf("tail = %d events from %d, want 3 from 17", len(resp.Events), resp.Events[0].Period)
	}
	if resp.Dropped != 12 {
		t.Fatalf("dropped = %d with ?n=, want the ring's 12", resp.Dropped)
	}
}

// TestHandlerEventsFilters: ?node= and ?kind= restrict the tail before
// it is cut, and compose with ?n=.
func TestHandlerEventsFilters(t *testing.T) {
	hub := New(Config{})
	for k := 0; k < 10; k++ {
		hub.Emit(Event{Type: EventPeriodStart, Period: k, Node: "a"})
		hub.Emit(Event{Type: EventPeriodEnd, Period: k, Node: "b"})
	}
	srv := httptest.NewServer(Handler(hub))
	defer srv.Close()

	var resp EventsResponse
	_, body := get(t, srv, "/events?node=a")
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Events) != 10 {
		t.Fatalf("?node=a returned %d events, want 10", len(resp.Events))
	}
	for _, e := range resp.Events {
		if e.Node != "a" {
			t.Fatalf("?node=a leaked %+v", e)
		}
	}
	if resp.Total != 20 {
		t.Fatalf("total = %d, want the unfiltered 20", resp.Total)
	}

	_, body = get(t, srv, "/events?kind=period-end")
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Events) != 10 || resp.Events[0].Type != EventPeriodEnd {
		t.Fatalf("?kind=period-end returned %d events (first %+v)", len(resp.Events), resp.Events[0])
	}

	_, body = get(t, srv, "/events?node=b&kind=period-end&n=3")
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Events) != 3 || resp.Events[0].Period != 7 {
		t.Fatalf("composed filters: %d events from %d, want 3 from 7", len(resp.Events), resp.Events[0].Period)
	}

	_, body = get(t, srv, "/events?node=ghost")
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Events) != 0 {
		t.Fatalf("?node=ghost returned %d events", len(resp.Events))
	}
}

// TestHandlerQuery: /query serves store windows as JSON and CSV and
// rejects malformed requests.
func TestHandlerQuery(t *testing.T) {
	hub := New(Config{})
	for k := 0; k < 25; k++ {
		hub.Period(PeriodSample{Node: "server0", Period: k, SetpointW: 900,
			AvgPowerW: 800 + float64(k), TruePowerW: 799})
	}
	srv := httptest.NewServer(Handler(hub))
	defer srv.Close()

	code, body := get(t, srv, "/query?node=server0&series=power_w&res=10")
	if code != 200 {
		t.Fatalf("/query status = %d: %s", code, body)
	}
	var res QueryResult
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatalf("/query not valid JSON: %v\n%s", err, body)
	}
	if len(res.Buckets) != 3 || res.Buckets[0].Count != 10 || res.Buckets[2].Count != 5 {
		t.Fatalf("buckets = %+v, want 10+10+5(open)", res.Buckets)
	}

	code, body = get(t, srv, "/query?node=server0&series=power_w&res=1&from=20&to=22")
	if code != 200 {
		t.Fatalf("windowed /query status = %d", code)
	}
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Buckets) != 3 || res.Buckets[0].StartPeriod != 20 {
		t.Fatalf("windowed buckets = %+v, want periods 20..22", res.Buckets)
	}

	code, body = get(t, srv, "/query?node=server0&series=power_w&res=10&format=csv")
	if code != 200 || !strings.HasPrefix(body, "node,series,start_period") {
		t.Fatalf("CSV /query: %d %q", code, body)
	}
	if !strings.Contains(body, "server0,power_w,0,10,") {
		t.Fatalf("CSV missing first bucket row:\n%s", body)
	}

	for _, bad := range []string{
		"/query?node=server0&series=power_w&res=7",
		"/query?node=ghost&series=power_w",
		"/query?node=server0&series=bogus",
		"/query?node=server0&series=power_w&res=x",
		"/query?node=server0&series=power_w&from=x",
	} {
		if code, _ := get(t, srv, bad); code != 400 {
			t.Errorf("%s status = %d, want 400", bad, code)
		}
	}
}

type brokenWriter struct{}

func (brokenWriter) Write([]byte) (int, error) { return 0, errors.New("stream torn") }

func TestHandlerHealthz(t *testing.T) {
	hub := New(Config{})
	srv := httptest.NewServer(Handler(hub))
	defer srv.Close()
	if code, body := get(t, srv, "/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthy hub: %d %q", code, body)
	}

	sick := New(Config{JSONL: brokenWriter{}})
	sick.Emit(Event{Type: EventPeriodStart, Period: 0})
	srvSick := httptest.NewServer(Handler(sick))
	defer srvSick.Close()
	code, body := get(t, srvSick, "/healthz")
	if code != 503 || !strings.Contains(body, "stream torn") {
		t.Fatalf("broken stream: %d %q, want 503 naming the error", code, body)
	}
}

// TestHandlerScrapeDuringEmission hammers every endpoint while a writer
// goroutine emits — the -race run proves the snapshot locking.
func TestHandlerScrapeDuringEmission(t *testing.T) {
	hub := New(Config{EventCapacity: 64})
	// One synchronous sample so /query has a series before the scrapes
	// race the writer goroutine.
	hub.Period(PeriodSample{Node: "server0", Period: 0, SetpointW: 900,
		AvgPowerW: 900, TruePowerW: 898})
	srv := httptest.NewServer(Handler(hub))
	defer srv.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; ; k++ {
			select {
			case <-done:
				return
			default:
			}
			hub.Emit(Event{Type: EventPeriodStart, Period: k, Node: "server0"})
			hub.Period(PeriodSample{Node: "server0", Period: k, SetpointW: 900,
				AvgPowerW: 900 + float64(k%10), TruePowerW: 898})
		}
	}()
	for i := 0; i < 25; i++ {
		for _, path := range []string{
			"/metrics", "/events?n=16", "/events?node=server0&kind=period-start",
			"/query?node=server0&series=power_w&res=10", "/healthz",
		} {
			if code, _ := get(t, srv, path); code != 200 {
				t.Errorf("%s status = %d during emission", path, code)
			}
		}
	}
	close(done)
	wg.Wait()
}

func TestServeHandlerBindsAndServes(t *testing.T) {
	hub := New(Config{})
	addr, err := Serve(hub, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(addr, "127.0.0.1:") || strings.HasSuffix(addr, ":0") {
		t.Fatalf("bound addr = %q, want a concrete 127.0.0.1 port", addr)
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz over ServeHandler: %d %q", resp.StatusCode, body)
	}
}

func TestHandlerEventsPeriodRange(t *testing.T) {
	hub := New(Config{})
	for k := 0; k < 10; k++ {
		hub.Emit(Event{Type: EventPeriodStart, Period: k, Node: "a"})
	}
	srv := httptest.NewServer(Handler(hub))
	defer srv.Close()

	var resp EventsResponse
	_, body := get(t, srv, "/events?from=3&to=5")
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Events) != 3 || resp.Events[0].Period != 3 || resp.Events[2].Period != 5 {
		t.Fatalf("?from=3&to=5 returned %d events (first %+v)", len(resp.Events), resp.Events[0])
	}

	// Half-open ends: from alone and to alone.
	_, body = get(t, srv, "/events?from=8")
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Events) != 2 {
		t.Fatalf("?from=8 returned %d events, want 2", len(resp.Events))
	}
	_, body = get(t, srv, "/events?to=1")
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Events) != 2 {
		t.Fatalf("?to=1 returned %d events, want 2", len(resp.Events))
	}

	// Range composes with the node filter.
	hub.Emit(Event{Type: EventPeriodStart, Period: 4, Node: "b"})
	_, body = get(t, srv, "/events?node=b&from=0&to=9")
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Events) != 1 || resp.Events[0].Node != "b" {
		t.Fatalf("?node=b&from=0&to=9: %+v", resp.Events)
	}

	if code, _ := get(t, srv, "/events?from=x"); code != http.StatusBadRequest {
		t.Fatalf("?from=x status = %d, want 400", code)
	}
	if code, _ := get(t, srv, "/events?to=x"); code != http.StatusBadRequest {
		t.Fatalf("?to=x status = %d, want 400", code)
	}
}

// fakeTraceSource serves canned span trees and records the range the
// handler parsed out of the query string.
type fakeTraceSource struct {
	from, to int
	err      error
}

func (f *fakeTraceSource) SpanTreesJSON(from, to int) ([]byte, error) {
	f.from, f.to = from, to
	if f.err != nil {
		return nil, f.err
	}
	return []byte(`[{"id":"r1","kind":"reallocation"}]`), nil
}

func TestHandlerTrace(t *testing.T) {
	hub := New(Config{})

	// Without a tracer the endpoint 404s rather than serving nothing.
	srv := httptest.NewServer(HandlerWithTrace(hub, nil))
	code, _ := get(t, srv, "/trace")
	srv.Close()
	if code != http.StatusNotFound {
		t.Fatalf("/trace without tracer = %d, want 404", code)
	}

	ts := &fakeTraceSource{}
	srv = httptest.NewServer(HandlerWithTrace(hub, ts))
	defer srv.Close()

	code, body := get(t, srv, "/trace?from=3&to=9")
	if code != 200 {
		t.Fatalf("/trace status = %d", code)
	}
	if ts.from != 3 || ts.to != 9 {
		t.Fatalf("range passed as [%d,%d], want [3,9]", ts.from, ts.to)
	}
	var trees []map[string]any
	if err := json.Unmarshal([]byte(body), &trees); err != nil {
		t.Fatal(err)
	}
	if len(trees) != 1 || trees[0]["id"] != "r1" {
		t.Fatalf("/trace body %q", body)
	}

	// Defaults: whole run.
	if _, _ = get(t, srv, "/trace"); ts.from != 0 || ts.to != -1 {
		t.Fatalf("default range [%d,%d], want [0,-1]", ts.from, ts.to)
	}

	if code, _ := get(t, srv, "/trace?from=x"); code != http.StatusBadRequest {
		t.Fatalf("/trace?from=x status = %d, want 400", code)
	}
	ts.err = errors.New("render broke")
	if code, _ := get(t, srv, "/trace"); code != http.StatusInternalServerError {
		t.Fatalf("/trace render error status = %d, want 500", code)
	}
}
