package telemetry

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestHandlerMetrics(t *testing.T) {
	hub := New(Config{})
	hub.Period(PeriodSample{Node: "server0", Period: 0, TimeS: 4,
		SetpointW: 900, AvgPowerW: 895, TruePowerW: 893})
	srv := httptest.NewServer(Handler(hub))
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, want := range []string{"# HELP", "capgpu_measured_power_watts", `node="server0"`} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestHandlerEventsTailAndDropped(t *testing.T) {
	// A tiny ring forces eviction so the dropped count is visible.
	hub := New(Config{EventCapacity: 8})
	for k := 0; k < 20; k++ {
		hub.Emit(Event{Type: EventPeriodStart, Period: k, Node: "server0"})
	}
	srv := httptest.NewServer(Handler(hub))
	defer srv.Close()

	code, body := get(t, srv, "/events")
	if code != 200 {
		t.Fatalf("/events status = %d", code)
	}
	var resp EventsResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("/events not valid JSON: %v\n%s", err, body)
	}
	if resp.Total != 20 || resp.Dropped != 12 || len(resp.Events) != 8 {
		t.Fatalf("total/dropped/len = %d/%d/%d, want 20/12/8", resp.Total, resp.Dropped, len(resp.Events))
	}
	// The ring keeps the newest events, oldest first.
	if resp.Events[0].Period != 12 || resp.Events[7].Period != 19 {
		t.Fatalf("ring window = %d..%d, want 12..19", resp.Events[0].Period, resp.Events[7].Period)
	}

	// ?n= narrows the tail further; dropped still reports ring eviction.
	_, body = get(t, srv, "/events?n=3")
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Events) != 3 || resp.Events[0].Period != 17 {
		t.Fatalf("tail = %d events from %d, want 3 from 17", len(resp.Events), resp.Events[0].Period)
	}
	if resp.Dropped != 12 {
		t.Fatalf("dropped = %d with ?n=, want the ring's 12", resp.Dropped)
	}
}

type brokenWriter struct{}

func (brokenWriter) Write([]byte) (int, error) { return 0, errors.New("stream torn") }

func TestHandlerHealthz(t *testing.T) {
	hub := New(Config{})
	srv := httptest.NewServer(Handler(hub))
	defer srv.Close()
	if code, body := get(t, srv, "/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthy hub: %d %q", code, body)
	}

	sick := New(Config{JSONL: brokenWriter{}})
	sick.Emit(Event{Type: EventPeriodStart, Period: 0})
	srvSick := httptest.NewServer(Handler(sick))
	defer srvSick.Close()
	code, body := get(t, srvSick, "/healthz")
	if code != 503 || !strings.Contains(body, "stream torn") {
		t.Fatalf("broken stream: %d %q, want 503 naming the error", code, body)
	}
}

// TestHandlerScrapeDuringEmission hammers every endpoint while a writer
// goroutine emits — the -race run proves the snapshot locking.
func TestHandlerScrapeDuringEmission(t *testing.T) {
	hub := New(Config{EventCapacity: 64})
	srv := httptest.NewServer(Handler(hub))
	defer srv.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; ; k++ {
			select {
			case <-done:
				return
			default:
			}
			hub.Emit(Event{Type: EventPeriodStart, Period: k, Node: "server0"})
			hub.Period(PeriodSample{Node: "server0", Period: k, SetpointW: 900,
				AvgPowerW: 900 + float64(k%10), TruePowerW: 898})
		}
	}()
	for i := 0; i < 25; i++ {
		for _, path := range []string{"/metrics", "/events?n=16", "/healthz"} {
			if code, _ := get(t, srv, path); code != 200 {
				t.Errorf("%s status = %d during emission", path, code)
			}
		}
	}
	close(done)
	wg.Wait()
}

func TestServeHandlerBindsAndServes(t *testing.T) {
	hub := New(Config{})
	addr, err := Serve(hub, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(addr, "127.0.0.1:") || strings.HasSuffix(addr, ":0") {
		t.Fatalf("bound addr = %q, want a concrete 127.0.0.1 port", addr)
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz over ServeHandler: %d %q", resp.StatusCode, body)
	}
}
