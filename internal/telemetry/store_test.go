package telemetry

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// storeSample builds a period sample whose store-visible fields are
// driven by the given values.
func storeSample(node string, period int, power float64, violate, miss bool) PeriodSample {
	s := PeriodSample{
		Node: node, Controller: "capgpu", Period: period,
		TimeS:     float64(period) * 4,
		SetpointW: 900, AvgPowerW: power, TruePowerW: power + 5,
		EnergyJ: power * 4, CPUFreqGHz: 2.0,
	}
	if violate {
		s.AvgPowerW = 950 // > 900 × 1.01
	}
	if miss {
		s.SLOMiss = []bool{true}
		s.GPULatencyS = []float64{0.3}
	}
	return s
}

// TestStorePropertyDownsampleExact: every downsampled tier's
// min/max/mean/count/flags, recomputed from the full-resolution ring,
// match the tier's own aggregation exactly — including the float mean,
// because both sides fold values in the same (ascending period) order.
// Seeded testing/quick drives random emission sequences.
func TestStorePropertyDownsampleExact(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		periods := 150 + rng.Intn(400) // spans several 100× buckets
		hub := New(Config{Shards: 1 + rng.Intn(4)})
		for k := 0; k < periods; k++ {
			hub.Period(storeSample("n0", k, 700+300*rng.Float64(), rng.Intn(7) == 0, rng.Intn(5) == 0))
		}
		full, err := hub.Query(QueryRequest{Node: "n0", Series: SeriesPowerW, Res: 1, From: -1, To: -1})
		if err != nil {
			t.Fatal(err)
		}
		if len(full.Buckets) != periods {
			t.Fatalf("full resolution holds %d of %d points", len(full.Buckets), periods)
		}
		for _, res := range []int{TierFactor10, TierFactor100} {
			got, err := hub.Query(QueryRequest{Node: "n0", Series: SeriesPowerW, Res: res, From: -1, To: -1})
			if err != nil {
				t.Fatal(err)
			}
			want := recomputeTier(full.Buckets, res)
			if len(got.Buckets) != len(want) {
				t.Errorf("res %d: %d buckets, recomputed %d", res, len(got.Buckets), len(want))
				return false
			}
			for i, g := range got.Buckets {
				w := want[i]
				if g.StartPeriod != w.StartPeriod || g.Count != w.Count ||
					g.Min != w.Min || g.Max != w.Max || g.Sum != w.Sum ||
					g.Mean() != w.Mean() || g.Flags != w.Flags {
					t.Errorf("res %d bucket %d: got %+v want %+v", res, i, g, w)
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(42)), MaxCount: 25}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// recomputeTier re-aggregates full-resolution buckets (Count 1 each)
// into factor-wide buckets in ascending period order.
func recomputeTier(full []Bucket, factor int) []Bucket {
	var out []Bucket
	for _, p := range full {
		start := (p.StartPeriod / factor) * factor
		if n := len(out); n > 0 && out[n-1].StartPeriod == start {
			b := &out[n-1]
			b.Count++
			if p.Min < b.Min {
				b.Min = p.Min
			}
			if p.Max > b.Max {
				b.Max = p.Max
			}
			b.Sum += p.Sum
			b.Flags |= p.Flags
			continue
		}
		out = append(out, Bucket{StartPeriod: start, Count: 1, Min: p.Min, Max: p.Max, Sum: p.Sum, Flags: p.Flags})
	}
	return out
}

// TestStoreBoundedMemory: retention stays within the configured
// capacities however many periods run, and eviction is visible as
// Truncated.
func TestStoreBoundedMemory(t *testing.T) {
	hub := New(Config{Store: StoreConfig{RingCapacity: 64}})
	const periods = 5000
	for k := 0; k < periods; k++ {
		hub.Period(storeSample("n0", k, 800, false, false))
	}
	full, err := hub.Query(QueryRequest{Node: "n0", Series: SeriesPowerW, Res: 1, From: -1, To: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Buckets) != 64 {
		t.Errorf("full-res ring holds %d points, want the 64 cap", len(full.Buckets))
	}
	if !full.Truncated {
		t.Error("full-res query over an overflowed ring not marked truncated")
	}
	if first := full.Buckets[0].StartPeriod; first != periods-64 {
		t.Errorf("oldest retained period %d, want %d", first, periods-64)
	}
	t10, err := hub.Query(QueryRequest{Node: "n0", Series: SeriesPowerW, Res: 10, From: -1, To: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(t10.Buckets) > 65 {
		t.Errorf("10× tier holds %d buckets, cap is 64 sealed + 1 open", len(t10.Buckets))
	}
}

// TestStoreQueryWindow: from/to filter by covered period range, the
// open bucket is visible, and bad requests error.
func TestStoreQueryWindow(t *testing.T) {
	hub := New(Config{})
	for k := 0; k < 35; k++ {
		hub.Period(storeSample("n0", k, 800, false, false))
	}
	got, err := hub.Query(QueryRequest{Node: "n0", Series: SeriesPowerW, Res: 10, From: 15, To: 29})
	if err != nil {
		t.Fatal(err)
	}
	// Buckets [10,19] and [20,29] overlap the window; [0,9] and the
	// open [30,34] bucket do not.
	if len(got.Buckets) != 2 || got.Buckets[0].StartPeriod != 10 || got.Buckets[1].StartPeriod != 20 {
		t.Errorf("windowed buckets = %+v, want starts 10 and 20", got.Buckets)
	}
	all, err := hub.Query(QueryRequest{Node: "n0", Series: SeriesPowerW, Res: 10, From: -1, To: -1})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(all.Buckets); n != 4 {
		t.Errorf("unbounded query returned %d buckets, want 4 (3 sealed + open)", n)
	}
	if last := all.Buckets[len(all.Buckets)-1]; last.StartPeriod != 30 || last.Count != 5 {
		t.Errorf("open bucket = %+v, want start 30 count 5", last)
	}
	if _, err := hub.Query(QueryRequest{Node: "n0", Series: SeriesPowerW, Res: 7}); err == nil {
		t.Error("unsupported resolution accepted")
	}
	if _, err := hub.Query(QueryRequest{Node: "ghost", Series: SeriesPowerW, Res: 1}); err == nil {
		t.Error("unknown node accepted")
	}
	if _, err := hub.Query(QueryRequest{Node: "n0", Series: "bogus", Res: 1}); err == nil {
		t.Error("unknown series accepted")
	}
	if _, err := New(Config{Store: StoreConfig{Disable: true}}).Query(QueryRequest{Node: "n0", Series: SeriesPowerW, Res: 1}); err == nil {
		t.Error("disabled store answered a query")
	}
}

// TestStoreCSVExport: the export covers every node and series, sorted,
// with one header row.
func TestStoreCSVExport(t *testing.T) {
	hub := New(Config{})
	for k := 0; k < 12; k++ {
		hub.Period(storeSample("nB", k, 800, false, false))
		hub.Period(storeSample("nA", k, 700, false, false))
	}
	var buf bytes.Buffer
	if err := hub.WriteStoreCSV(&buf, 10); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "node,series,start_period,count,min,max,mean,flags" {
		t.Errorf("header = %q", lines[0])
	}
	// 2 nodes × 5 series × 2 buckets (sealed [0,9] + open [10,11]).
	if want := 1 + 2*5*2; len(lines) != want {
		t.Errorf("export has %d lines, want %d", len(lines), want)
	}
	if !strings.HasPrefix(lines[1], "nA,") {
		t.Errorf("first data row %q not from the lexically-first node", lines[1])
	}
	if nodes := hub.StoreNodes(); len(nodes) != 2 || nodes[0] != "nA" || nodes[1] != "nB" {
		t.Errorf("StoreNodes = %v", nodes)
	}
}
