package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Default histogram bucket layouts. Phase buckets span sub-microsecond
// no-op spans up to a full second of controller overhead; power buckets
// cover the evaluation testbed's 600–1400 W envelope; latency buckets
// cover the 50 ms–1 s batch-latency window of the §6.1 workloads.
var (
	DefPhaseBuckets = []float64{
		1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1,
	}
	DefPowerBuckets = []float64{
		600, 650, 700, 750, 800, 850, 900, 950, 1000,
		1050, 1100, 1150, 1200, 1250, 1300, 1350, 1400,
	}
	DefLatencyBuckets = []float64{
		0.05, 0.075, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.75, 1,
	}
)

// Config tunes a Hub. The zero value is a fully deterministic,
// in-memory hub: zero clock, default ring capacity, 1% violation slack.
type Config struct {
	// Clock measures phase spans. nil means the zero clock (all spans
	// report zero duration) — the deterministic default for seeded runs.
	// The cmd layer injects a wall clock here.
	Clock Clock
	// JSONL, when set, receives every event as one JSON line, in
	// emission order. Write errors are sticky and reported by Err.
	JSONL io.Writer
	// EventCapacity bounds the in-memory event ring the /events endpoint
	// and Events() serve from (default 16384; the JSONL stream is
	// complete regardless).
	EventCapacity int
	// ViolationSlackFrac is the fractional slack above the set point
	// before a period counts as a cap violation (default 0.01 — the same
	// 1% the metrics package summary uses, so the counters agree).
	ViolationSlackFrac float64
	// TrueSlackFrac is the slack for breaker-side (true power)
	// violations (default 0.02, matching the robustness tables).
	TrueSlackFrac float64
}

// nodeState tracks one node's last-seen flags so the Hub can synthesize
// enter/exit transition events by diffing successive period samples.
type nodeState struct {
	degraded  bool
	failSafe  bool
	faults    []string // sorted active fault names
	lastSeen  PeriodSample
	havePrior bool
}

// Hub is the standard Sink: it owns the metrics registry, the event
// ring, the optional JSONL stream, and the per-node transition state.
// All methods lock, so the interleaved loops of a rack can share one
// hub through per-node views (NodeSink). Registry mutations go through
// the registry's own locked mutators (lock order Hub.mu → Registry.mu),
// so a concurrent /metrics scrape never races the control loop.
type Hub struct {
	mu    sync.Mutex //lint:lockorder before:Registry.mu
	reg   *Registry
	clock Clock
	jsonl io.Writer
	jerr  error

	slackFrac     float64
	trueSlackFrac float64

	// events is a circular buffer once len reaches cap: head indexes the
	// oldest entry and new events overwrite in place, so sustained
	// emission stays O(1) per event instead of shifting the whole slice.
	events []Event
	head   int
	cap    int
	total  int // events ever emitted (ring may have dropped early ones)

	nodes      map[string]*nodeState
	phaseStart map[string]float64 // "node\x00phase" → clock() at begin
}

// New builds a Hub from the config.
func New(cfg Config) *Hub {
	clock := cfg.Clock
	if clock == nil {
		clock = func() float64 { return 0 }
	}
	capacity := cfg.EventCapacity
	if capacity <= 0 {
		capacity = 16384
	}
	slack := cfg.ViolationSlackFrac
	if slack == 0 {
		slack = 0.01
	}
	trueSlack := cfg.TrueSlackFrac
	if trueSlack == 0 {
		trueSlack = 0.02
	}
	return &Hub{
		reg:           NewRegistry(),
		clock:         clock,
		jsonl:         cfg.JSONL,
		slackFrac:     slack,
		trueSlackFrac: trueSlack,
		cap:           capacity,
		nodes:         make(map[string]*nodeState),
		phaseStart:    make(map[string]float64),
	}
}

// Registry exposes the hub's metrics registry (for exposition and for
// reading counters back in tests and end-of-run summaries).
func (h *Hub) Registry() *Registry { return h.reg }

// Err returns the first JSONL write error, if any.
func (h *Hub) Err() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.jerr
}

// Events returns a copy of the in-memory event ring, oldest first.
func (h *Hub) Events() []Event {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Event, 0, len(h.events))
	out = append(out, h.events[h.head:]...)
	return append(out, h.events[:h.head]...)
}

// EventsTotal returns how many events were emitted over the hub's
// lifetime (≥ len(Events()) once the ring wraps).
func (h *Hub) EventsTotal() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// EventsSnapshot returns the ring (oldest first) together with the
// lifetime total, read atomically under one lock so a consumer can
// compute how many events the ring has dropped without racing an
// emission between two separate calls.
func (h *Hub) EventsSnapshot() ([]Event, int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Event, 0, len(h.events))
	out = append(out, h.events[h.head:]...)
	out = append(out, h.events[:h.head]...)
	return out, h.total
}

// NodeSink returns a view of the hub that stamps the given node name
// onto events and samples that do not already carry one.
func (h *Hub) NodeSink(node string) Sink {
	return &nodeSink{hub: h, node: node}
}

type nodeSink struct {
	hub  *Hub
	node string
}

func (n *nodeSink) Emit(e Event) {
	if e.Node == "" {
		e.Node = n.node
	}
	n.hub.Emit(e)
}

func (n *nodeSink) Period(s PeriodSample) {
	if s.Node == "" {
		s.Node = n.node
	}
	n.hub.Period(s)
}

func (n *nodeSink) BeginPhase(period int, phase string) {
	n.hub.beginPhase(n.node, period, phase)
}

func (n *nodeSink) EndPhase(period int, phase string) {
	n.hub.endPhase(n.node, period, phase)
}

// Emit implements Sink: the event is logged (ring + JSONL) and folded
// into the derived counters/gauges.
//
//capgpu:hotpath
func (h *Hub) Emit(e Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.emitLocked(e)
}

// emitLocked appends to the ring, streams JSONL, and updates the
// metrics derived from event types.
func (h *Hub) emitLocked(e Event) {
	h.total++
	if len(h.events) >= h.cap {
		h.events[h.head] = e // overwrite the oldest entry in place
		h.head = (h.head + 1) % len(h.events)
	} else {
		h.events = append(h.events, e)
	}
	if h.jsonl != nil && h.jerr == nil {
		//lint:ignore hotalloc Marshal boxes one event per JSONL append; &e would heap-escape every event and cost more than the box on the sink-less path
		b, err := json.Marshal(e)
		if err == nil {
			b = append(b, '\n')
			_, err = h.jsonl.Write(b)
		}
		if err != nil {
			h.jerr = err
		}
	}

	node := L("node", e.Node)
	h.reg.counterAdd("capgpu_events_total", "Telemetry events emitted, by type.",
		L("type", string(e.Type)), 1)
	switch e.Type {
	case EventCapViolation:
		h.count("capgpu_cap_violations_total", "Periods whose measured average power exceeded the set point by more than the slack.", node)
	case EventSLOMiss:
		h.count("capgpu_slo_misses_total", "Per-GPU periods whose measured batch latency exceeded the SLO.",
			node.With("gpu", strconv.Itoa(e.Device)))
	case EventDegradedEnter:
		h.count("capgpu_degraded_entries_total", "Transitions into the last-good-value meter fallback.", node)
	case EventFailSafeEnter:
		h.count("capgpu_failsafe_entries_total", "Transitions into the blind fail-safe descent.", node)
	case EventFaultActive:
		h.count("capgpu_fault_activations_total", "Injected fault activations.",
			node.With("fault", e.Detail))
	case EventActuatorDiverge:
		h.count("capgpu_actuator_divergence_total", "Devices still off their commanded frequency after bounded retry.",
			node.With("device", strconv.Itoa(e.Device)))
	case EventNodeDead:
		h.count("capgpu_node_deaths_total", "Nodes declared dead after consecutive heartbeat misses.", node)
	case EventNodeRecovered:
		h.count("capgpu_node_recoveries_total", "Dead nodes that resumed heartbeating.", node)
	case EventReallocation:
		h.count("capgpu_reallocations_total", "Rack budget reallocation rounds.", node)
		h.reg.gaugeSet("capgpu_rack_reserved_watts", "Breaker budget held back for silent nodes at the last reallocation.", node, e.Value)
	case EventMPCInfeasible:
		h.count("capgpu_mpc_infeasible_total", "Periods the MPC subproblem was infeasible and the controller held its point.", node)
	case EventAdaptFrozen:
		h.count("capgpu_adapt_frozen_periods_total", "Periods RLS adaptation was frozen on a stale meter.", node)
	case EventNodeJoined:
		h.count("capgpu_node_joins_total", "Nodes admitted into the rack membership.", node)
	case EventDrainStart:
		h.count("capgpu_node_drains_total", "Nodes that began a graceful drain.", node)
	case EventNodeReleased:
		h.count("capgpu_node_releases_total", "Nodes released from the rack membership after draining.", node)
	case EventPolicyApplied:
		h.count("capgpu_policy_changes_total", "Policy mutations applied at a period barrier.", node)
		h.reg.gaugeSet("capgpu_policy_epoch", "Monotonic policy epoch; bumps on every applied mutation.", node, e.Value)
	case EventPolicyRejected:
		h.count("capgpu_policy_rejections_total", "Policy mutations rejected as invalid or infeasible.", node)
	case EventReservationReleased:
		h.count("capgpu_reservation_releases_total", "Dead-node budget reservations released after the hold expired.", node)
	case EventCheckpoint:
		h.count("capgpu_checkpoints_total", "Control-plane checkpoints written.", node)
	}
}

// count bumps a derived counter by 1 (under the registry's own lock).
func (h *Hub) count(name, help string, labels Labels) {
	h.reg.counterAdd(name, help, labels, 1)
}

// Period implements Sink: gauges and histograms are updated from the
// snapshot, and transition events are synthesized by diffing against
// the node's previous sample.
//
//capgpu:hotpath
func (h *Hub) Period(s PeriodSample) {
	h.mu.Lock()
	defer h.mu.Unlock()

	st, ok := h.nodes[s.Node]
	if !ok {
		st = &nodeState{}
		h.nodes[s.Node] = st
	}

	// Derived lifecycle events, in a fixed order so the JSONL stream is
	// deterministic: violations, SLO misses, fault diffs, degradation
	// transitions, period end.
	if s.SetpointW > 0 && s.AvgPowerW > s.SetpointW*(1+h.slackFrac) {
		h.emitLocked(Event{TimeS: s.TimeS, Period: s.Period, Type: EventCapViolation,
			Node: s.Node, Device: -1, Value: s.AvgPowerW - s.SetpointW})
	}
	for i, miss := range s.SLOMiss {
		if miss {
			lat := 0.0
			if i < len(s.GPULatencyS) {
				lat = s.GPULatencyS[i]
			}
			h.emitLocked(Event{TimeS: s.TimeS, Period: s.Period, Type: EventSLOMiss,
				Node: s.Node, Device: i, Value: lat})
		}
	}
	h.diffFaults(st, s)
	h.transition(st.degraded, s.Degraded, EventDegradedEnter, EventDegradedExit, s, float64(s.MeterStale))
	st.degraded = s.Degraded
	h.transition(st.failSafe, s.FailSafe, EventFailSafeEnter, EventFailSafeExit, s, float64(s.MeterStale))
	st.failSafe = s.FailSafe
	h.emitLocked(Event{TimeS: s.TimeS, Period: s.Period, Type: EventPeriodEnd,
		Node: s.Node, Device: -1, Value: s.AvgPowerW})

	st.lastSeen = s
	st.havePrior = true

	// Registry updates.
	base := L("controller", s.Controller, "node", s.Node)
	node := L("node", s.Node)
	h.reg.counterAdd("capgpu_periods_total", "Control periods completed.", base, 1)
	if s.Degraded {
		h.count("capgpu_degraded_periods_total", "Periods handled by the last-good-value meter fallback.", node)
	}
	if s.FailSafe {
		h.count("capgpu_failsafe_periods_total", "Periods the harness overrode the controller and descended toward f_min.", node)
	}
	if s.Uncontrolled {
		h.count("capgpu_uncontrolled_periods_total", "Periods run open-loop (node out of rack contact).", node)
	}
	if s.TruePowerW > s.SetpointW*(1+h.trueSlackFrac) && s.SetpointW > 0 {
		h.count("capgpu_true_cap_violations_total", "Periods whose breaker-side true power exceeded the set point by more than the true slack.", node)
	}
	h.reg.counterAdd("capgpu_energy_joules_total", "Energy drawn, accumulated per period.", node, s.EnergyJ)
	h.reg.counterAdd("capgpu_actuator_retries_total", "Frequency command re-deliveries.", node, float64(s.ActuatorRetries))

	h.gauge("capgpu_setpoint_watts", "Power set point for the period.", base, s.SetpointW)
	h.gauge("capgpu_measured_power_watts", "Meter-side period-average power (what the controller saw).", base, s.AvgPowerW)
	h.gauge("capgpu_true_power_watts", "Breaker-side period-average power.", base, s.TruePowerW)
	h.gauge("capgpu_meter_stale_periods", "Consecutive blind periods, 0 when the meter is fresh.", node, float64(s.MeterStale))
	h.gauge("capgpu_cpu_frequency_ghz", "Applied CPU frequency.", node, s.CPUFreqGHz)
	for i, f := range s.GPUFreqMHz {
		h.gauge("capgpu_gpu_frequency_mhz", "Applied GPU core frequency.", node.With("gpu", strconv.Itoa(i)), f)
	}

	h.histObserve("capgpu_period_power_watts", "Distribution of measured period-average power.", DefPowerBuckets, node, s.AvgPowerW)
	for i, lat := range s.GPULatencyS {
		if lat > 0 {
			h.histObserve("capgpu_gpu_batch_latency_seconds", "Distribution of per-GPU period-average batch latency.",
				DefLatencyBuckets, node.With("gpu", strconv.Itoa(i)), lat)
		}
	}
}

// transition emits an enter or exit event when a boolean node flag
// flips between successive samples.
func (h *Hub) transition(prev, cur bool, enter, exit EventType, s PeriodSample, value float64) {
	switch {
	case cur && !prev:
		h.emitLocked(Event{TimeS: s.TimeS, Period: s.Period, Type: enter, Node: s.Node, Device: -1, Value: value})
	case !cur && prev:
		h.emitLocked(Event{TimeS: s.TimeS, Period: s.Period, Type: exit, Node: s.Node, Device: -1})
	}
}

// diffFaults emits fault-active / fault-cleared events for changes in
// the node's active-fault set.
func (h *Hub) diffFaults(st *nodeState, s PeriodSample) {
	cur := append([]string(nil), s.Faults...)
	sort.Strings(cur)
	prev := st.faults
	for _, f := range cur {
		if !containsStr(prev, f) {
			h.emitLocked(Event{TimeS: s.TimeS, Period: s.Period, Type: EventFaultActive,
				Node: s.Node, Device: -1, Detail: f})
		}
	}
	for _, f := range prev {
		if !containsStr(cur, f) {
			h.emitLocked(Event{TimeS: s.TimeS, Period: s.Period, Type: EventFaultCleared,
				Node: s.Node, Device: -1, Detail: f})
		}
	}
	st.faults = cur
}

func containsStr(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

func (h *Hub) gauge(name, help string, labels Labels, v float64) {
	h.reg.gaugeSet(name, help, labels, v)
}

func (h *Hub) histObserve(name, help string, buckets []float64, labels Labels, v float64) {
	h.reg.observe(name, help, buckets, labels, v)
}

// BeginPhase implements Sink (hub-level, unlabeled node).
func (h *Hub) BeginPhase(period int, phase string) { h.beginPhase("", period, phase) }

// EndPhase implements Sink.
func (h *Hub) EndPhase(period int, phase string) { h.endPhase("", period, phase) }

func (h *Hub) beginPhase(node string, _ int, phase string) {
	now := h.clock()
	h.mu.Lock()
	h.phaseStart[node+"\x00"+phase] = now
	h.mu.Unlock()
}

func (h *Hub) endPhase(node string, _ int, phase string) {
	now := h.clock()
	h.mu.Lock()
	defer h.mu.Unlock()
	key := node + "\x00" + phase
	start, ok := h.phaseStart[key]
	if !ok {
		return // EndPhase without BeginPhase: ignore
	}
	delete(h.phaseStart, key)
	d := now - start
	if d < 0 {
		d = 0
	}
	h.histObserve("capgpu_phase_duration_seconds", "Control-period phase durations (sense, condense, decide, actuate, verify).",
		DefPhaseBuckets, L("phase", phase), d)
}

// Finish closes the stream: any node still in a degraded or fail-safe
// state (or with faults still active) gets its matching exit/cleared
// event at its last-seen period, so enter/exit pairs balance even when
// a run ends mid-fault; a final run-end event carries the lifetime
// event count. Finish reports the first JSONL write error.
func (h *Hub) Finish() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	names := make([]string, 0, len(h.nodes))
	for name := range h.nodes {
		//lint:ignore determinism keys are sorted immediately below; output order does not depend on map order
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := h.nodes[name]
		last := st.lastSeen
		if st.degraded {
			h.emitLocked(Event{TimeS: last.TimeS, Period: last.Period, Type: EventDegradedExit,
				Node: name, Device: -1, Detail: "run-end"})
			st.degraded = false
		}
		if st.failSafe {
			h.emitLocked(Event{TimeS: last.TimeS, Period: last.Period, Type: EventFailSafeExit,
				Node: name, Device: -1, Detail: "run-end"})
			st.failSafe = false
		}
		for _, f := range st.faults {
			h.emitLocked(Event{TimeS: last.TimeS, Period: last.Period, Type: EventFaultCleared,
				Node: name, Device: -1, Detail: f})
		}
		st.faults = nil
	}
	h.emitLocked(Event{Type: EventRunEnd, Period: -1, Device: -1, Value: float64(h.total)})
	return h.jerr
}

// CounterValue reads a derived counter back (0 if the series was never
// touched) — the hook end-of-run summaries and the acceptance tests use
// to compare telemetry against the metrics package.
func (h *Hub) CounterValue(name string, labels Labels) float64 {
	return h.reg.counterValue(name, labels)
}
