package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Default histogram bucket layouts. Phase buckets span sub-microsecond
// no-op spans up to a full second of controller overhead; power buckets
// cover the evaluation testbed's 600–1400 W envelope; latency buckets
// cover the 50 ms–1 s batch-latency window of the §6.1 workloads.
var (
	DefPhaseBuckets = []float64{
		1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1,
	}
	DefPowerBuckets = []float64{
		600, 650, 700, 750, 800, 850, 900, 950, 1000,
		1050, 1100, 1150, 1200, 1250, 1300, 1350, 1400,
	}
	DefLatencyBuckets = []float64{
		0.05, 0.075, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.75, 1,
	}
)

// DefaultShards is the hub shard count when Config.Shards is zero: wide
// enough that a rack's worth of concurrently-stepping nodes rarely
// collide on one shard lock, small enough that merge-at-scrape stays
// trivial.
const DefaultShards = 8

// Config tunes a Hub. The zero value is a fully deterministic,
// in-memory hub: zero clock, default ring capacity, 1% violation slack,
// DefaultShards node-state shards, a bounded time-series store, no
// alerting.
type Config struct {
	// Clock measures phase spans. nil means the zero clock (all spans
	// report zero duration) — the deterministic default for seeded runs.
	// The cmd layer injects a wall clock here.
	Clock Clock
	// JSONL, when set, receives every event as one JSON line, in
	// emission order. Write errors are sticky and reported by Err.
	JSONL io.Writer
	// EventCapacity bounds the in-memory event ring the /events endpoint
	// and Events() serve from (default 16384; the JSONL stream is
	// complete regardless).
	EventCapacity int
	// ViolationSlackFrac is the fractional slack above the set point
	// before a period counts as a cap violation (default 0.01 — the same
	// 1% the metrics package summary uses, so the counters agree).
	ViolationSlackFrac float64
	// TrueSlackFrac is the slack for breaker-side (true power)
	// violations (default 0.02, matching the robustness tables).
	TrueSlackFrac float64
	// Shards is the number of node-hash shards the per-node state
	// (transition diffing, phase spans, time-series rings, ledger cells,
	// alert state) is split across. 0 means DefaultShards; 1 is the
	// single-lock baseline the contention benchmark compares against.
	// Sharding never changes observable bytes: the event stream keeps
	// one globally-ordered ring/JSONL writer, and the registry merges
	// at scrape with a global sort.
	Shards int
	// Store tunes the embedded multi-resolution time-series store. The
	// zero value enables it with default capacities; set Disable to
	// drop per-period series retention entirely.
	Store StoreConfig
	// Alerts, when non-nil, enables the online alerting engine with the
	// given rule thresholds (zero fields take defaults; see
	// DefaultAlertConfig). Nil disables alerting — no alert events are
	// ever emitted, keeping pre-existing event streams byte-identical.
	Alerts *AlertConfig
}

// nodeState tracks one node's last-seen flags so the Hub can synthesize
// enter/exit transition events by diffing successive period samples. It
// also anchors the node's shard-local observability state: time-series
// rings, energy-ledger cells, and alert rule state, all guarded by the
// owning shard's lock.
type nodeState struct {
	degraded  bool
	failSafe  bool
	faults    []string // sorted active fault names
	lastSeen  PeriodSample
	havePrior bool

	series  map[string]*seriesStore // store: field → multi-resolution rings
	ledger  map[ledgerKey]*ledgerCell
	alerts  *nodeAlertState
	metrics *nodeMetrics
}

// nodeMetrics caches one node's registry series handles so the
// per-period hot path is pure atomic stores/adds — no label building,
// no signature rendering, no registry map traffic. Conditional series
// (degraded, fail-safe, true violations, per-GPU latency) stay nil
// until their first occurrence, preserving registered-on-first-need
// exposition exactly. Rebuilt when the sample's controller label
// changes (rare: a policy swap).
type nodeMetrics struct {
	controller string
	base, node Labels

	periods, energy, retries *series

	degraded, failSafe, uncontrolled, trueViol *series // lazily fetched

	setpoint, measured, truePower, meterStale, cpuFreq *series
	gpuFreq                                            []*series

	powerHist *histState
	latHist   []*histState // lazily installed per GPU on first positive latency

	// phaseMix / queueDepth are lazily registered per GPU the first
	// time a sample carries LLM phase data, so CNN-only runs never grow
	// these series and their expositions stay byte-identical.
	phaseMix   []*series
	queueDepth []*series
}

// nodeMetricsFor returns (building or extending if needed) the node's
// cached handles. Callers hold the shard lock, so the cache itself
// needs no synchronization; the registry fetches inside are their own
// critical sections.
func (h *Hub) nodeMetricsFor(st *nodeState, s PeriodSample) *nodeMetrics {
	m := st.metrics
	if m == nil || m.controller != s.Controller {
		m = &nodeMetrics{
			controller: s.Controller,
			base:       L("controller", s.Controller, "node", s.Node),
			node:       L("node", s.Node),
		}
		m.periods = h.reg.fetch("capgpu_periods_total", "Control periods completed.", "counter", m.base)
		m.energy = h.reg.fetch("capgpu_energy_joules_total", "Energy drawn, accumulated per period.", "counter", m.node)
		m.retries = h.reg.fetch("capgpu_actuator_retries_total", "Frequency command re-deliveries.", "counter", m.node)
		m.setpoint = h.reg.fetch("capgpu_setpoint_watts", "Power set point for the period.", "gauge", m.base)
		m.measured = h.reg.fetch("capgpu_measured_power_watts", "Meter-side period-average power (what the controller saw).", "gauge", m.base)
		m.truePower = h.reg.fetch("capgpu_true_power_watts", "Breaker-side period-average power.", "gauge", m.base)
		m.meterStale = h.reg.fetch("capgpu_meter_stale_periods", "Consecutive blind periods, 0 when the meter is fresh.", "gauge", m.node)
		m.cpuFreq = h.reg.fetch("capgpu_cpu_frequency_ghz", "Applied CPU frequency.", "gauge", m.node)
		m.powerHist = h.reg.fetch("capgpu_period_power_watts", "Distribution of measured period-average power.", "histogram", m.node).
			ensureHist(DefPowerBuckets, false)
		st.metrics = m
	}
	for i := len(m.gpuFreq); i < len(s.GPUFreqMHz); i++ {
		m.gpuFreq = append(m.gpuFreq, h.reg.fetch("capgpu_gpu_frequency_mhz", "Applied GPU core frequency.", "gauge", m.node.With("gpu", strconv.Itoa(i))))
	}
	for len(m.latHist) < len(s.GPULatencyS) {
		m.latHist = append(m.latHist, nil)
	}
	return m
}

// hubShard owns the per-node state for the nodes that hash to it. The
// shard lock is held for the whole of one node's Period processing, so
// two nodes on different shards fold their samples concurrently; the
// globally-ordered channels (event ring, JSONL) serialize only on the
// much shorter stream lock.
type hubShard struct {
	mu sync.Mutex //lint:lockorder before:eventStream.mu
	// nodes is keyed by node name; phaseStart by "node\x00phase".
	nodes      map[string]*nodeState
	phaseStart map[string]float64
}

// eventStream is the globally-ordered event channel: the bounded ring
// behind /events and the complete JSONL stream. Ordering is preserved
// across the sharded hub because deterministic contexts replay
// emissions serially (telemetry.Buffer at the coordinator barrier);
// live concurrent emission interleaves here exactly as it did under the
// old hub-wide mutex.
type eventStream struct {
	mu    sync.Mutex
	jsonl io.Writer
	jerr  error

	// events is a circular buffer once len reaches cap: head indexes the
	// oldest entry and new events overwrite in place, so sustained
	// emission stays O(1) per event instead of shifting the whole slice.
	events []Event
	head   int
	cap    int
	total  int // events ever emitted (ring may have dropped early ones)
}

// Err surfaces the latched first JSONL write error.
func (st *eventStream) Err() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.jerr
}

// Hub is the standard Sink: it owns the metrics registry, the event
// ring, the optional JSONL stream, and the per-node transition state,
// time-series store, energy ledger, and alert engine. Per-node state is
// sharded by node-name hash; the event ring and JSONL stream stay
// globally ordered behind one short-critical-section lock; the registry
// merges at scrape (its exposition sorts globally, so shard count never
// changes bytes). All methods lock, so the interleaved loops of a rack
// can share one hub through per-node views (NodeSink).
type Hub struct {
	reg   *Registry
	clock Clock

	slackFrac     float64
	trueSlackFrac float64

	shards []*hubShard
	stream eventStream

	store  storeSettings
	ledger *Ledger
	alerts *alertEngine // nil when alerting is disabled

	// evCounters caches the capgpu_events_total series per event type so
	// the per-event fast path is one map read plus one atomic add — no
	// label building, no signature rendering, no registry lock traffic
	// beyond a shared read lock on a tiny fixed-key map.
	evmu       sync.RWMutex
	evCounters map[EventType]*series
}

// New builds a Hub from the config.
func New(cfg Config) *Hub {
	clock := cfg.Clock
	if clock == nil {
		clock = func() float64 { return 0 }
	}
	capacity := cfg.EventCapacity
	if capacity <= 0 {
		capacity = 16384
	}
	slack := cfg.ViolationSlackFrac
	if slack == 0 {
		slack = 0.01
	}
	trueSlack := cfg.TrueSlackFrac
	if trueSlack == 0 {
		trueSlack = 0.02
	}
	nshards := cfg.Shards
	if nshards <= 0 {
		nshards = DefaultShards
	}
	h := &Hub{
		reg:           NewRegistry(),
		clock:         clock,
		slackFrac:     slack,
		trueSlackFrac: trueSlack,
		shards:        make([]*hubShard, nshards),
		store:         cfg.Store.resolve(),
		ledger:        newLedger(),
	}
	h.stream.jsonl = cfg.JSONL
	h.stream.cap = capacity
	h.evCounters = make(map[EventType]*series)
	for i := range h.shards {
		h.shards[i] = &hubShard{
			nodes:      make(map[string]*nodeState),
			phaseStart: make(map[string]float64),
		}
	}
	if cfg.Alerts != nil {
		h.alerts = newAlertEngine(*cfg.Alerts, slack)
	}
	return h
}

// shardFor hashes a node name onto its shard (FNV-1a, the repo's
// stateless-hash idiom — stable across runs and platforms).
func (h *Hub) shardFor(node string) *hubShard {
	if len(h.shards) == 1 {
		return h.shards[0]
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	hash := uint64(offset64)
	for i := 0; i < len(node); i++ {
		hash ^= uint64(node[i])
		hash *= prime64
	}
	return h.shards[hash%uint64(len(h.shards))]
}

// state returns (creating if needed) the node's state. Callers hold the
// shard lock.
func (sh *hubShard) state(node string) *nodeState {
	st, ok := sh.nodes[node]
	if !ok {
		st = &nodeState{}
		sh.nodes[node] = st
	}
	return st
}

// Registry exposes the hub's metrics registry (for exposition and for
// reading counters back in tests and end-of-run summaries).
func (h *Hub) Registry() *Registry { return h.reg }

// Ledger exposes the hub's energy-accounting ledger.
func (h *Hub) Ledger() *Ledger { return h.ledger }

// Err returns the first JSONL write error, if any.
func (h *Hub) Err() error { return h.stream.Err() }

// Events returns a copy of the in-memory event ring, oldest first.
func (h *Hub) Events() []Event {
	h.stream.mu.Lock()
	defer h.stream.mu.Unlock()
	out := make([]Event, 0, len(h.stream.events))
	out = append(out, h.stream.events[h.stream.head:]...)
	return append(out, h.stream.events[:h.stream.head]...)
}

// EventsTotal returns how many events were emitted over the hub's
// lifetime (≥ len(Events()) once the ring wraps).
func (h *Hub) EventsTotal() int {
	h.stream.mu.Lock()
	defer h.stream.mu.Unlock()
	return h.stream.total
}

// EventsSnapshot returns the ring (oldest first) together with the
// lifetime total, read atomically under one lock so a consumer can
// compute how many events the ring has dropped without racing an
// emission between two separate calls.
func (h *Hub) EventsSnapshot() ([]Event, int) {
	h.stream.mu.Lock()
	defer h.stream.mu.Unlock()
	out := make([]Event, 0, len(h.stream.events))
	out = append(out, h.stream.events[h.stream.head:]...)
	out = append(out, h.stream.events[:h.stream.head]...)
	return out, h.stream.total
}

// NodeSink returns a view of the hub that stamps the given node name
// onto events and samples that do not already carry one.
func (h *Hub) NodeSink(node string) Sink {
	return &nodeSink{hub: h, node: node}
}

type nodeSink struct {
	hub  *Hub
	node string
}

func (n *nodeSink) Emit(e Event) {
	if e.Node == "" {
		e.Node = n.node
	}
	n.hub.Emit(e)
}

func (n *nodeSink) Period(s PeriodSample) {
	if s.Node == "" {
		s.Node = n.node
	}
	n.hub.Period(s)
}

func (n *nodeSink) BeginPhase(period int, phase string) {
	n.hub.beginPhase(n.node, period, phase)
}

func (n *nodeSink) EndPhase(period int, phase string) {
	n.hub.endPhase(n.node, period, phase)
}

// Emit implements Sink: the event is logged (ring + JSONL) and folded
// into the derived counters/gauges.
//
//capgpu:hotpath
func (h *Hub) Emit(e Event) {
	h.stream.append(e)
	h.deriveEmit(e)
}

// append pushes one event into the ring and the JSONL stream under the
// stream lock — the only globally-serialized section of the emit path.
func (st *eventStream) append(e Event) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.total++
	if len(st.events) >= st.cap {
		st.events[st.head] = e // overwrite the oldest entry in place
		st.head = (st.head + 1) % len(st.events)
	} else {
		st.events = append(st.events, e)
	}
	if st.jsonl != nil && st.jerr == nil {
		//lint:ignore hotalloc Marshal boxes one event per JSONL append; &e would heap-escape every event and cost more than the box on the sink-less path
		b, err := json.Marshal(e)
		if err == nil {
			b = append(b, '\n')
			_, err = st.jsonl.Write(b)
		}
		if err != nil {
			st.jerr = err
		}
	}
}

// eventTypeCounter returns the cached capgpu_events_total series for
// one event type. The key space is the fixed event-type catalogue, so
// the cache saturates after a handful of misses and the steady path is
// allocation-free.
func (h *Hub) eventTypeCounter(t EventType) *series {
	h.evmu.RLock()
	s := h.evCounters[t]
	h.evmu.RUnlock()
	if s != nil {
		return s
	}
	s = h.reg.fetch("capgpu_events_total", "Telemetry events emitted, by type.",
		"counter", L("type", string(t)))
	h.evmu.Lock()
	h.evCounters[t] = s
	h.evmu.Unlock()
	return s
}

// deriveEmit updates the metrics derived from event types. The registry
// mutators are internally synchronized (shared read lock + atomics), so
// no hub lock is held here. Period-start/-end events — the per-period
// bulk of the stream — fall through the switch and touch nothing beyond
// the cached type counter.
func (h *Hub) deriveEmit(e Event) {
	h.eventTypeCounter(e.Type).add(1)
	if !eventHasDerived(e.Type) {
		return
	}
	node := L("node", e.Node)
	switch e.Type {
	case EventCapViolation:
		h.count("capgpu_cap_violations_total", "Periods whose measured average power exceeded the set point by more than the slack.", node)
	case EventSLOMiss:
		h.count("capgpu_slo_misses_total", "Per-GPU periods whose measured batch latency exceeded the SLO.",
			node.With("gpu", strconv.Itoa(e.Device)))
	case EventDegradedEnter:
		h.count("capgpu_degraded_entries_total", "Transitions into the last-good-value meter fallback.", node)
	case EventFailSafeEnter:
		h.count("capgpu_failsafe_entries_total", "Transitions into the blind fail-safe descent.", node)
	case EventFaultActive:
		h.count("capgpu_fault_activations_total", "Injected fault activations.",
			node.With("fault", e.Detail))
	case EventActuatorDiverge:
		h.count("capgpu_actuator_divergence_total", "Devices still off their commanded frequency after bounded retry.",
			node.With("device", strconv.Itoa(e.Device)))
	case EventNodeDead:
		h.count("capgpu_node_deaths_total", "Nodes declared dead after consecutive heartbeat misses.", node)
	case EventNodeRecovered:
		h.count("capgpu_node_recoveries_total", "Dead nodes that resumed heartbeating.", node)
	case EventReallocation:
		h.count("capgpu_reallocations_total", "Rack budget reallocation rounds.", node)
		h.reg.gaugeSet("capgpu_rack_reserved_watts", "Breaker budget held back for silent nodes at the last reallocation.", node, e.Value)
	case EventMPCInfeasible:
		h.count("capgpu_mpc_infeasible_total", "Periods the MPC subproblem was infeasible and the controller held its point.", node)
	case EventAdaptFrozen:
		h.count("capgpu_adapt_frozen_periods_total", "Periods RLS adaptation was frozen on a stale meter.", node)
	case EventNodeJoined:
		h.count("capgpu_node_joins_total", "Nodes admitted into the rack membership.", node)
	case EventDrainStart:
		h.count("capgpu_node_drains_total", "Nodes that began a graceful drain.", node)
	case EventNodeReleased:
		h.count("capgpu_node_releases_total", "Nodes released from the rack membership after draining.", node)
	case EventPolicyApplied:
		h.count("capgpu_policy_changes_total", "Policy mutations applied at a period barrier.", node)
		h.reg.gaugeSet("capgpu_policy_epoch", "Monotonic policy epoch; bumps on every applied mutation.", node, e.Value)
	case EventPolicyRejected:
		h.count("capgpu_policy_rejections_total", "Policy mutations rejected as invalid or infeasible.", node)
	case EventReservationReleased:
		h.count("capgpu_reservation_releases_total", "Dead-node budget reservations released after the hold expired.", node)
	case EventCheckpoint:
		h.count("capgpu_checkpoints_total", "Control-plane checkpoints written.", node)
	case EventAlertFiring:
		h.count("capgpu_alerts_total", "Alert firings by rule.", node.With("rule", e.Detail))
	}
}

// eventHasDerived reports whether deriveEmit's switch folds this event
// type into a derived metric — the guard that keeps label building off
// the period-start/-end and phase-span fast paths.
func eventHasDerived(t EventType) bool {
	switch t {
	case EventCapViolation, EventSLOMiss, EventDegradedEnter, EventFailSafeEnter,
		EventFaultActive, EventActuatorDiverge, EventNodeDead, EventNodeRecovered,
		EventReallocation, EventMPCInfeasible, EventAdaptFrozen, EventNodeJoined,
		EventDrainStart, EventNodeReleased, EventPolicyApplied, EventPolicyRejected,
		EventReservationReleased, EventCheckpoint, EventAlertFiring:
		return true
	}
	return false
}

// count bumps a derived counter by 1.
func (h *Hub) count(name, help string, labels Labels) {
	h.reg.counterAdd(name, help, labels, 1)
}

// Period implements Sink: gauges and histograms are updated from the
// snapshot, transition events are synthesized by diffing against the
// node's previous sample, the sample is folded into the node's
// time-series rings and energy-ledger cells, and — when alerting is
// enabled — the deterministic alert rules are evaluated.
//
//capgpu:hotpath
func (h *Hub) Period(s PeriodSample) {
	sh := h.shardFor(s.Node)
	sh.mu.Lock()
	defer sh.mu.Unlock()

	st := sh.state(s.Node)

	// Derived lifecycle events, in a fixed order so the JSONL stream is
	// deterministic: violations, SLO misses, fault diffs, degradation
	// transitions, period end.
	if s.SetpointW > 0 && s.AvgPowerW > s.SetpointW*(1+h.slackFrac) {
		h.Emit(Event{TimeS: s.TimeS, Period: s.Period, Type: EventCapViolation,
			Node: s.Node, Device: -1, Value: s.AvgPowerW - s.SetpointW})
	}
	for i, miss := range s.SLOMiss {
		if miss {
			lat := 0.0
			if i < len(s.GPULatencyS) {
				lat = s.GPULatencyS[i]
			}
			h.Emit(Event{TimeS: s.TimeS, Period: s.Period, Type: EventSLOMiss,
				Node: s.Node, Device: i, Value: lat})
		}
	}
	h.diffFaults(st, s)
	h.transition(st.degraded, s.Degraded, EventDegradedEnter, EventDegradedExit, s, float64(s.MeterStale))
	st.degraded = s.Degraded
	h.transition(st.failSafe, s.FailSafe, EventFailSafeEnter, EventFailSafeExit, s, float64(s.MeterStale))
	st.failSafe = s.FailSafe
	h.Emit(Event{TimeS: s.TimeS, Period: s.Period, Type: EventPeriodEnd,
		Node: s.Node, Device: -1, Value: s.AvgPowerW})

	st.lastSeen = s
	st.havePrior = true

	// Registry updates, all through the node's cached handles: pure
	// atomic adds/stores (or a per-series histogram lock), so concurrent
	// shards never serialize on label rendering or registry maps.
	m := h.nodeMetricsFor(st, s)
	m.periods.add(1)
	if s.Degraded {
		if m.degraded == nil {
			m.degraded = h.reg.fetch("capgpu_degraded_periods_total", "Periods handled by the last-good-value meter fallback.", "counter", m.node)
		}
		m.degraded.add(1)
	}
	if s.FailSafe {
		if m.failSafe == nil {
			m.failSafe = h.reg.fetch("capgpu_failsafe_periods_total", "Periods the harness overrode the controller and descended toward f_min.", "counter", m.node)
		}
		m.failSafe.add(1)
	}
	if s.Uncontrolled {
		if m.uncontrolled == nil {
			m.uncontrolled = h.reg.fetch("capgpu_uncontrolled_periods_total", "Periods run open-loop (node out of rack contact).", "counter", m.node)
		}
		m.uncontrolled.add(1)
	}
	if s.TruePowerW > s.SetpointW*(1+h.trueSlackFrac) && s.SetpointW > 0 {
		if m.trueViol == nil {
			m.trueViol = h.reg.fetch("capgpu_true_cap_violations_total", "Periods whose breaker-side true power exceeded the set point by more than the true slack.", "counter", m.node)
		}
		m.trueViol.add(1)
	}
	m.energy.add(s.EnergyJ)
	m.retries.add(float64(s.ActuatorRetries))

	m.setpoint.store(s.SetpointW)
	m.measured.store(s.AvgPowerW)
	m.truePower.store(s.TruePowerW)
	m.meterStale.store(float64(s.MeterStale))
	m.cpuFreq.store(s.CPUFreqGHz)
	for i, f := range s.GPUFreqMHz {
		m.gpuFreq[i].store(f)
	}

	for i, mix := range s.GPUPhasePrefill {
		for len(m.phaseMix) <= i {
			j := len(m.phaseMix)
			m.phaseMix = append(m.phaseMix, h.reg.fetch("capgpu_phase_prefill_ratio", "Period-average prefill share of busy GPU time (LLM serving).", "gauge", m.node.With("gpu", strconv.Itoa(j))))
		}
		m.phaseMix[i].store(mix)
	}
	for i, depth := range s.GPUQueueDepth {
		for len(m.queueDepth) <= i {
			j := len(m.queueDepth)
			m.queueDepth = append(m.queueDepth, h.reg.fetch("capgpu_queue_depth_requests", "Period-average admission-queue depth (LLM serving).", "gauge", m.node.With("gpu", strconv.Itoa(j))))
		}
		m.queueDepth[i].store(depth)
	}

	m.powerHist.mu.Lock()
	m.powerHist.observe(s.AvgPowerW)
	m.powerHist.mu.Unlock()
	for i, lat := range s.GPULatencyS {
		if lat > 0 {
			hs := m.latHist[i]
			if hs == nil {
				hs = h.reg.fetch("capgpu_gpu_batch_latency_seconds", "Distribution of per-GPU period-average batch latency.", "histogram", m.node.With("gpu", strconv.Itoa(i))).
					ensureHist(DefLatencyBuckets, false)
				m.latHist[i] = hs
			}
			hs.mu.Lock()
			hs.observe(lat)
			hs.mu.Unlock()
		}
	}

	// Observability v2: bounded time-series retention, Wh attribution,
	// and the online alert rules — all shard-local state.
	h.store.record(st, s, h.slackFrac)
	h.ledger.record(h, st, s)
	if h.alerts != nil {
		h.alerts.onPeriod(h, st, s)
	}
}

// transition emits an enter or exit event when a boolean node flag
// flips between successive samples.
func (h *Hub) transition(prev, cur bool, enter, exit EventType, s PeriodSample, value float64) {
	switch {
	case cur && !prev:
		h.Emit(Event{TimeS: s.TimeS, Period: s.Period, Type: enter, Node: s.Node, Device: -1, Value: value})
	case !cur && prev:
		h.Emit(Event{TimeS: s.TimeS, Period: s.Period, Type: exit, Node: s.Node, Device: -1})
	}
}

// diffFaults emits fault-active / fault-cleared events for changes in
// the node's active-fault set.
func (h *Hub) diffFaults(st *nodeState, s PeriodSample) {
	cur := append([]string(nil), s.Faults...)
	sort.Strings(cur)
	prev := st.faults
	for _, f := range cur {
		if !containsStr(prev, f) {
			h.Emit(Event{TimeS: s.TimeS, Period: s.Period, Type: EventFaultActive,
				Node: s.Node, Device: -1, Detail: f})
		}
	}
	for _, f := range prev {
		if !containsStr(cur, f) {
			h.Emit(Event{TimeS: s.TimeS, Period: s.Period, Type: EventFaultCleared,
				Node: s.Node, Device: -1, Detail: f})
		}
	}
	st.faults = cur
}

func containsStr(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

func (h *Hub) gauge(name, help string, labels Labels, v float64) {
	h.reg.gaugeSet(name, help, labels, v)
}

func (h *Hub) histObserve(name, help string, buckets []float64, labels Labels, v float64) {
	h.reg.observe(name, help, buckets, labels, v)
}

// BeginPhase implements Sink (hub-level, unlabeled node).
func (h *Hub) BeginPhase(period int, phase string) { h.beginPhase("", period, phase) }

// EndPhase implements Sink.
func (h *Hub) EndPhase(period int, phase string) { h.endPhase("", period, phase) }

func (h *Hub) beginPhase(node string, _ int, phase string) {
	now := h.clock()
	sh := h.shardFor(node)
	sh.mu.Lock()
	sh.phaseStart[node+"\x00"+phase] = now
	sh.mu.Unlock()
}

func (h *Hub) endPhase(node string, _ int, phase string) {
	now := h.clock()
	sh := h.shardFor(node)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	key := node + "\x00" + phase
	start, ok := sh.phaseStart[key]
	if !ok {
		return // EndPhase without BeginPhase: ignore
	}
	delete(sh.phaseStart, key)
	d := now - start
	if d < 0 {
		d = 0
	}
	h.histObserve("capgpu_phase_duration_seconds", "Control-period phase durations (sense, condense, decide, actuate, verify).",
		DefPhaseBuckets, L("phase", phase), d)
}

// nodeNames returns every node name seen by any shard, sorted.
func (h *Hub) nodeNames() []string {
	var names []string
	for _, sh := range h.shards {
		sh.mu.Lock()
		for name := range sh.nodes {
			//lint:ignore determinism names are sorted by the caller; output order does not depend on map order
			names = append(names, name)
		}
		sh.mu.Unlock()
	}
	sort.Strings(names)
	return names
}

// Finish closes the stream: any node still in a degraded or fail-safe
// state (or with faults still active) gets its matching exit/cleared
// event at its last-seen period, any alert still firing gets its
// resolved event, so enter/exit pairs balance even when a run ends
// mid-fault; a final run-end event carries the lifetime event count.
// Finish reports the first JSONL write error.
func (h *Hub) Finish() error {
	for _, name := range h.nodeNames() {
		sh := h.shardFor(name)
		sh.mu.Lock()
		st := sh.nodes[name]
		last := st.lastSeen
		if st.degraded {
			h.Emit(Event{TimeS: last.TimeS, Period: last.Period, Type: EventDegradedExit,
				Node: name, Device: -1, Detail: "run-end"})
			st.degraded = false
		}
		if st.failSafe {
			h.Emit(Event{TimeS: last.TimeS, Period: last.Period, Type: EventFailSafeExit,
				Node: name, Device: -1, Detail: "run-end"})
			st.failSafe = false
		}
		for _, f := range st.faults {
			h.Emit(Event{TimeS: last.TimeS, Period: last.Period, Type: EventFaultCleared,
				Node: name, Device: -1, Detail: f})
		}
		st.faults = nil
		if h.alerts != nil {
			h.alerts.finishNode(h, st, name)
		}
		sh.mu.Unlock()
	}
	if h.alerts != nil {
		h.alerts.finishRack(h)
	}
	h.stream.mu.Lock()
	total := h.stream.total
	h.stream.mu.Unlock()
	h.Emit(Event{Type: EventRunEnd, Period: -1, Device: -1, Value: float64(total)})
	return h.Err()
}

// CounterValue reads a derived counter back (0 if the series was never
// touched) — the hook end-of-run summaries and the acceptance tests use
// to compare telemetry against the metrics package.
func (h *Hub) CounterValue(name string, labels Labels) float64 {
	return h.reg.counterValue(name, labels)
}
