package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
)

// EventsResponse is the /events payload. Dropped counts events evicted
// from the bounded ring (Total − what the ring still holds): nonzero
// means the tail is truncated history, not the full run — consumers
// needing completeness must use the JSONL stream.
type EventsResponse struct {
	Total   int     `json:"total"`
	Dropped int     `json:"dropped"`
	Events  []Event `json:"events"`
}

// Handler serves the hub over HTTP:
//
//	/metrics — Prometheus text exposition of the registry
//	/events  — JSON tail of the event ring (?n= limits, default 256),
//	           wrapped in EventsResponse so ring truncation is visible
//	/healthz — 200 "ok" (503 with the error when the JSONL stream broke)
//
// The cmd layer mounts this on the -metrics-addr listener; nothing in
// the seeded packages touches it.
func Handler(h *Hub) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = h.Registry().WritePrometheus(w)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		n := 256
		if q := r.URL.Query().Get("n"); q != "" {
			if v, err := strconv.Atoi(q); err == nil && v > 0 {
				n = v
			}
		}
		events, total := h.EventsSnapshot()
		resp := EventsResponse{Total: total, Dropped: total - len(events)}
		if len(events) > n {
			events = events[len(events)-n:]
		}
		resp.Events = events
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(resp)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if err := h.Err(); err != nil {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "event stream error: %v\n", err)
			return
		}
		_, _ = w.Write([]byte("ok\n"))
	})
	return mux
}

// Serve binds addr and serves Handler(h) in a background goroutine,
// returning the bound address (useful with ":0") — the server lives for
// the life of the process, which for the cmds is the life of the run.
func Serve(h *Hub, addr string) (string, error) {
	return ServeHandler(Handler(h), addr)
}

// ServeHandler is Serve for an arbitrary handler — the cmd layer uses
// it to mount extras (net/http/pprof) next to the hub endpoints without
// pulling pprof's side-effect import into this deterministic package.
func ServeHandler(handler http.Handler, addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: handler}
	//lint:ignore determinism the HTTP server goroutine only reads hub snapshots; it never writes to the seeded timeline
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
