package telemetry

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
)

// EventsResponse is the /events payload. Dropped counts events evicted
// from the bounded ring (Total − what the ring still holds): nonzero
// means the tail is truncated history, not the full run — consumers
// needing completeness must use the JSONL stream.
type EventsResponse struct {
	Total   int     `json:"total"`
	Dropped int     `json:"dropped"`
	Events  []Event `json:"events"`
}

// TraceSource serves provenance span trees for the /trace endpoint.
// The provenance tracer implements it; the interface lives here so the
// telemetry package does not import provenance.
type TraceSource interface {
	// SpanTreesJSON renders the span forest whose periods overlap
	// [from, to] (to < 0 = no upper bound) as JSON.
	SpanTreesJSON(from, to int) ([]byte, error)
}

// Handler serves the hub over HTTP:
//
//	/metrics — Prometheus text exposition of the registry
//	/events  — JSON tail of the event ring (?n= limits, default 256;
//	           ?node= and ?kind= filter by node label and event type,
//	           ?from= and ?to= by period range, before the tail is
//	           taken, mirroring capgpu-doctor's -node filtering),
//	           wrapped in EventsResponse so ring truncation is visible
//	/query   — one time-series window from the embedded store
//	           (?series=...&node=...&res=1|10|100&from=...&to=...),
//	           as a QueryResult (JSON; &format=csv for CSV rows)
//	/healthz — 200 "ok" (503 with the error when the JSONL stream broke)
//
// The cmd layer mounts this on the -metrics-addr listener; nothing in
// the seeded packages touches it.
func Handler(h *Hub) http.Handler {
	return HandlerWithTrace(h, nil)
}

// HandlerWithTrace is Handler plus a /trace endpoint serving span
// trees from ts (?from=/?to= bound the period range). With ts nil the
// endpoint answers 404, matching a run without a tracer.
func HandlerWithTrace(h *Hub, ts TraceSource) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		if ts == nil {
			http.Error(w, "no tracer attached", http.StatusNotFound)
			return
		}
		from, to, err := periodRange(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		b, err := ts.SpanTreesJSON(from, to)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_, _ = w.Write(b)
		_, _ = w.Write([]byte("\n"))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = h.Registry().WritePrometheus(w)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		n := 256
		if q := r.URL.Query().Get("n"); q != "" {
			if v, err := strconv.Atoi(q); err == nil && v > 0 {
				n = v
			}
		}
		nodeFilter := r.URL.Query().Get("node")
		kindFilter := r.URL.Query().Get("kind")
		from, to, err := periodRange(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		events, total := h.EventsSnapshot()
		if nodeFilter != "" || kindFilter != "" || from > 0 || to >= 0 {
			kept := events[:0:0]
			for _, e := range events {
				if nodeFilter != "" && e.Node != nodeFilter {
					continue
				}
				if kindFilter != "" && string(e.Type) != kindFilter {
					continue
				}
				if e.Period < from || (to >= 0 && e.Period > to) {
					continue
				}
				kept = append(kept, e)
			}
			events = kept
		}
		resp := EventsResponse{Total: total, Dropped: total - len(events)}
		if len(events) > n {
			events = events[len(events)-n:]
		}
		resp.Events = events
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(resp)
	})
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		q := QueryRequest{
			Node:   r.URL.Query().Get("node"),
			Series: r.URL.Query().Get("series"),
			Res:    1,
			From:   -1,
			To:     -1,
		}
		var err error
		if raw := r.URL.Query().Get("res"); raw != "" {
			if q.Res, err = strconv.Atoi(raw); err != nil {
				http.Error(w, "bad res: "+err.Error(), http.StatusBadRequest)
				return
			}
		}
		if raw := r.URL.Query().Get("from"); raw != "" {
			if q.From, err = strconv.Atoi(raw); err != nil {
				http.Error(w, "bad from: "+err.Error(), http.StatusBadRequest)
				return
			}
		}
		if raw := r.URL.Query().Get("to"); raw != "" {
			if q.To, err = strconv.Atoi(raw); err != nil {
				http.Error(w, "bad to: "+err.Error(), http.StatusBadRequest)
				return
			}
		}
		res, err := h.Query(q)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if r.URL.Query().Get("format") == "csv" {
			w.Header().Set("Content-Type", "text/csv; charset=utf-8")
			writeQueryCSV(w, res)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(res)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if err := h.Err(); err != nil {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "event stream error: %v\n", err)
			return
		}
		_, _ = w.Write([]byte("ok\n"))
	})
	return mux
}

// periodRange parses the optional ?from= / ?to= period bounds shared
// by /events and /trace: from defaults to 0, to to -1 (unbounded).
func periodRange(r *http.Request) (from, to int, err error) {
	from, to = 0, -1
	if raw := r.URL.Query().Get("from"); raw != "" {
		if from, err = strconv.Atoi(raw); err != nil {
			return 0, 0, fmt.Errorf("bad from: %w", err)
		}
	}
	if raw := r.URL.Query().Get("to"); raw != "" {
		if to, err = strconv.Atoi(raw); err != nil {
			return 0, 0, fmt.Errorf("bad to: %w", err)
		}
	}
	return from, to, nil
}

// writeQueryCSV renders one query result as CSV rows (the same column
// layout WriteStoreCSV uses, restricted to the queried window).
func writeQueryCSV(w io.Writer, res QueryResult) {
	cw := csv.NewWriter(w)
	_ = cw.Write([]string{"node", "series", "start_period", "count", "min", "max", "mean", "flags"})
	for _, b := range res.Buckets {
		_ = cw.Write([]string{
			res.Node, res.Series,
			strconv.Itoa(b.StartPeriod), strconv.Itoa(b.Count),
			formatValue(b.Min), formatValue(b.Max), formatValue(b.Mean()),
			strconv.Itoa(int(b.Flags)),
		})
	}
	cw.Flush()
}

// Serve binds addr and serves Handler(h) in a background goroutine,
// returning the bound address (useful with ":0") — the server lives for
// the life of the process, which for the cmds is the life of the run.
func Serve(h *Hub, addr string) (string, error) {
	return ServeHandler(Handler(h), addr)
}

// ServeHandler is Serve for an arbitrary handler — the cmd layer uses
// it to mount extras (net/http/pprof) next to the hub endpoints without
// pulling pprof's side-effect import into this deterministic package.
func ServeHandler(handler http.Handler, addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: handler}
	//lint:ignore determinism the HTTP server goroutine only reads hub snapshots; it never writes to the seeded timeline
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
