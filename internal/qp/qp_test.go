package qp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

// randSPD returns a random symmetric positive definite n x n matrix.
func randSPD(rng *rand.Rand, n int) *mat.Mat {
	g := mat.New(n, n)
	for i := range g.Data {
		g.Data[i] = rng.NormFloat64()
	}
	h := g.Mul(g.T())
	for i := 0; i < n; i++ {
		h.Add(i, i, 0.5+rng.Float64())
	}
	return h
}

func TestUnconstrainedMatchesLinearSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(6)
		h := randSPD(rng, n)
		g := make([]float64, n)
		for i := range g {
			g[i] = rng.NormFloat64()
		}
		res, err := Solve(&Problem{H: h, G: g}, make([]float64, n))
		if err != nil {
			t.Fatal(err)
		}
		// Unconstrained minimizer solves H x = -g.
		want, err := mat.Solve(h, mat.ScaleVec(-1, g))
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(res.X[i]-want[i]) > 1e-7 {
				t.Fatalf("trial %d: x[%d]=%g want %g", trial, i, res.X[i], want[i])
			}
		}
	}
}

func TestSimpleBoxActive(t *testing.T) {
	// min (x-3)^2 s.t. x <= 1  => x = 1, lambda = 4.
	h := mat.FromRows([][]float64{{2}})
	g := []float64{-6}
	a := mat.FromRows([][]float64{{1}})
	res, err := Solve(&Problem{H: h, G: g, A: a, B: []float64{1}}, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-8 {
		t.Fatalf("x = %g, want 1", res.X[0])
	}
	if math.Abs(res.Lambda[0]-4) > 1e-6 {
		t.Fatalf("lambda = %g, want 4", res.Lambda[0])
	}
	if len(res.Active) != 1 || res.Active[0] != 0 {
		t.Fatalf("active set = %v", res.Active)
	}
}

func TestInactiveConstraintIgnored(t *testing.T) {
	// min (x-3)^2 s.t. x <= 10 => unconstrained optimum x = 3.
	h := mat.FromRows([][]float64{{2}})
	res, err := Solve(&Problem{
		H: h, G: []float64{-6},
		A: mat.FromRows([][]float64{{1}}), B: []float64{10},
	}, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-3) > 1e-8 {
		t.Fatalf("x = %g, want 3", res.X[0])
	}
	if res.Lambda[0] != 0 {
		t.Fatalf("lambda = %g, want 0", res.Lambda[0])
	}
}

func TestTwoDimensionalCorner(t *testing.T) {
	// min x1^2 + x2^2 - 4x1 - 4x2 s.t. x1 <= 1, x2 <= 1 => corner (1,1).
	h := mat.Diag([]float64{2, 2})
	g := []float64{-4, -4}
	a := mat.FromRows([][]float64{{1, 0}, {0, 1}})
	res, err := Solve(&Problem{H: h, G: g, A: a, B: []float64{1, 1}}, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.X {
		if math.Abs(res.X[i]-1) > 1e-8 {
			t.Fatalf("x = %v, want (1,1)", res.X)
		}
	}
}

func TestHalfspaceDiagonal(t *testing.T) {
	// min ||x||^2 s.t. x1 + x2 >= 2 (i.e. -x1 - x2 <= -2) => x = (1,1).
	h := mat.Diag([]float64{2, 2})
	a := mat.FromRows([][]float64{{-1, -1}})
	res, err := Solve(&Problem{H: h, G: []float64{0, 0}, A: a, B: []float64{-2}}, []float64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-7 || math.Abs(res.X[1]-1) > 1e-7 {
		t.Fatalf("x = %v, want (1,1)", res.X)
	}
}

func TestInfeasibleDetected(t *testing.T) {
	// x <= 0 and -x <= -1 (x >= 1) cannot both hold.
	a := mat.FromRows([][]float64{{1}, {-1}})
	_, err := Solve(&Problem{
		H: mat.Diag([]float64{2}), G: []float64{0},
		A: a, B: []float64{0, -1},
	}, nil)
	if err == nil {
		t.Fatal("expected infeasibility error")
	}
}

func TestValidation(t *testing.T) {
	h := mat.Diag([]float64{1, 1})
	if _, err := Solve(&Problem{H: h, G: []float64{1}}, nil); err == nil {
		t.Fatal("expected dimension error H vs g")
	}
	if _, err := Solve(&Problem{
		H: mat.Diag([]float64{1}), G: []float64{0},
		A: mat.FromRows([][]float64{{1, 2}}), B: []float64{0},
	}, nil); err == nil {
		t.Fatal("expected dimension error A cols")
	}
	if _, err := Solve(&Problem{
		H: mat.Diag([]float64{1}), G: []float64{0},
		A: mat.FromRows([][]float64{{1}}), B: []float64{0, 1},
	}, nil); err == nil {
		t.Fatal("expected dimension error b")
	}
	if _, err := Solve(&Problem{H: mat.Diag([]float64{1}), G: []float64{0}}, []float64{1, 2}); err == nil {
		t.Fatal("expected dimension error x0")
	}
}

func TestInfeasibleStartRepaired(t *testing.T) {
	// Start outside the box; solver must repair and still find the optimum.
	h := mat.Diag([]float64{2})
	a := mat.FromRows([][]float64{{1}, {-1}})
	res, err := Solve(&Problem{H: h, G: []float64{-10}, A: a, B: []float64{2, 0}}, []float64{50})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-2) > 1e-7 {
		t.Fatalf("x = %g, want 2", res.X[0])
	}
}

// kktSatisfied checks stationarity, feasibility, complementary slackness
// and dual feasibility of a candidate solution.
func kktSatisfied(p *Problem, r *Result, tol float64) bool {
	// Stationarity: Hx + g + A^T lambda = 0.
	grad := p.gradient(r.X)
	if p.A != nil {
		for i := 0; i < p.A.Rows; i++ {
			mat.Axpy(r.Lambda[i], p.A.Row(i), grad)
		}
	}
	if mat.Norm2(grad) > tol*(1+mat.Norm2(r.X)) {
		return false
	}
	for i := 0; i < p.numConstraints(); i++ {
		res := mat.Dot(p.A.Row(i), r.X) - p.B[i]
		if res > tol { // primal feasibility
			return false
		}
		if r.Lambda[i] < -tol { // dual feasibility
			return false
		}
		if r.Lambda[i]*res < -tol && math.Abs(r.Lambda[i]*res) > tol { // complementary slackness
			return false
		}
	}
	return true
}

func TestQuickKKTOnRandomBoxQPs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		h := randSPD(rng, n)
		g := make([]float64, n)
		lo := make([]float64, n)
		hi := make([]float64, n)
		for i := range g {
			g[i] = 3 * rng.NormFloat64()
			lo[i] = -1 - rng.Float64()
			hi[i] = 1 + rng.Float64()
		}
		bp := &BoxProblem{H: h, G: g, Lo: lo, Hi: hi}
		p := bp.ToGeneral()
		res, err := Solve(p, make([]float64, n))
		if err != nil {
			return false
		}
		return kktSatisfied(p, res, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestActiveSetAgreesWithProjectedGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(5)
		h := randSPD(rng, n)
		g := make([]float64, n)
		lo := make([]float64, n)
		hi := make([]float64, n)
		for i := range g {
			g[i] = 3 * rng.NormFloat64()
			lo[i] = -1 - rng.Float64()
			hi[i] = lo[i] + 0.5 + 2*rng.Float64()
		}
		bp := &BoxProblem{H: h, G: g, Lo: lo, Hi: hi}
		asRes, err := Solve(bp.ToGeneral(), make([]float64, n))
		if err != nil {
			t.Fatalf("trial %d active-set: %v", trial, err)
		}
		pgRes, err := SolveBox(bp, make([]float64, n))
		if err != nil {
			t.Fatalf("trial %d projected-gradient: %v", trial, err)
		}
		if math.Abs(asRes.Obj-pgRes.Obj) > 1e-5*(1+math.Abs(asRes.Obj)) {
			t.Fatalf("trial %d objective mismatch: active-set %g vs pg %g",
				trial, asRes.Obj, pgRes.Obj)
		}
	}
}

func TestSolveBoxRespectsBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		bp := &BoxProblem{
			H:  randSPD(rng, n),
			G:  make([]float64, n),
			Lo: make([]float64, n),
			Hi: make([]float64, n),
		}
		for i := 0; i < n; i++ {
			bp.G[i] = 5 * rng.NormFloat64()
			bp.Lo[i] = -rng.Float64()
			bp.Hi[i] = rng.Float64()
		}
		res, err := SolveBox(bp, nil)
		if err != nil {
			return false
		}
		for i, x := range res.X {
			if x < bp.Lo[i]-1e-9 || x > bp.Hi[i]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveBoxValidation(t *testing.T) {
	bp := &BoxProblem{
		H:  mat.Diag([]float64{1}),
		G:  []float64{0},
		Lo: []float64{1},
		Hi: []float64{0}, // inverted
	}
	if _, err := SolveBox(bp, nil); err == nil {
		t.Fatal("expected inverted-bounds error")
	}
}

func TestFindFeasibleBox(t *testing.T) {
	bp := &BoxProblem{
		H:  mat.Diag([]float64{1, 1}),
		G:  []float64{0, 0},
		Lo: []float64{0, 0},
		Hi: []float64{1, 1},
	}
	p := bp.ToGeneral()
	x, err := FindFeasible(p.A, p.B, []float64{10, -10})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if v < -1e-6 || v > 1+1e-6 {
			t.Fatalf("x[%d]=%g outside box", i, v)
		}
	}
}

func TestObjectiveValue(t *testing.T) {
	p := &Problem{H: mat.Diag([]float64{2, 2}), G: []float64{1, -1}}
	got := p.Objective([]float64{1, 2})
	// ½(2·1 + 2·4) + (1 - 2) = 5 - 1 = 4.
	if math.Abs(got-4) > 1e-12 {
		t.Fatalf("objective = %g, want 4", got)
	}
}

func BenchmarkActiveSetMPCSized(b *testing.B) {
	// Same shape as the paper's controller subproblem: 1 CPU + 3 GPUs,
	// control horizon 2 -> 8 variables, 16 bound rows + 3 SLO rows.
	rng := rand.New(rand.NewSource(5))
	n := 8
	h := randSPD(rng, n)
	g := make([]float64, n)
	lo := make([]float64, n)
	hi := make([]float64, n)
	for i := range g {
		g[i] = rng.NormFloat64()
		lo[i] = -0.5
		hi[i] = 0.5
	}
	bp := &BoxProblem{H: h, G: g, Lo: lo, Hi: hi}
	p := bp.ToGeneral()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p, make([]float64, n)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProjectedGradientMPCSized(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	n := 8
	bp := &BoxProblem{
		H:  randSPD(rng, n),
		G:  make([]float64, n),
		Lo: make([]float64, n),
		Hi: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		bp.G[i] = rng.NormFloat64()
		bp.Lo[i] = -0.5
		bp.Hi[i] = 0.5
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveBox(bp, nil); err != nil {
			b.Fatal(err)
		}
	}
}
