// Package qp solves the strictly convex quadratic programs that arise
// from the CapGPU model-predictive controller:
//
//	minimize   ½ xᵀHx + gᵀx
//	subject to A x ≤ b
//
// with H symmetric positive definite. The primary solver is a primal
// active-set method (Nocedal & Wright, Algorithm 16.3), which solves the
// small MPC subproblems (≤ ~20 variables for an 8-GPU server with a
// control horizon of 2) exactly in a handful of iterations. A projected
// gradient solver for pure box constraints is provided as a fallback and
// as a cross-check in tests.
package qp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mat"
)

// Problem describes a convex QP. H must be symmetric positive definite.
// The constraint set is {x : A x ≤ b}; A may be nil for an unconstrained
// problem.
type Problem struct {
	H *mat.Mat  // n x n, symmetric positive definite
	G []float64 // n, linear term
	A *mat.Mat  // m x n inequality matrix (may be nil)
	B []float64 // m inequality bounds
}

// Result reports the solution of a QP.
type Result struct {
	X          []float64 // minimizer
	Obj        float64   // objective value at X
	Iterations int       // active-set iterations used
	Active     []int     // indices of constraints active at the solution
	Lambda     []float64 // Lagrange multipliers (per constraint; 0 if inactive)
}

// ErrInfeasible is returned when no point satisfies the constraints.
var ErrInfeasible = errors.New("qp: constraints are infeasible")

// ErrMaxIterations is returned when the active-set loop fails to
// terminate; for strictly convex problems this indicates degenerate
// constraint geometry beyond the solver's cycling guard.
var ErrMaxIterations = errors.New("qp: active-set iteration limit exceeded")

const (
	featol  = 1e-9 // constraint feasibility tolerance
	opttol  = 1e-10
	maxIter = 500
)

// Objective evaluates ½ xᵀHx + gᵀx.
func (p *Problem) Objective(x []float64) float64 {
	hx := p.H.MulVec(x)
	return 0.5*mat.Dot(x, hx) + mat.Dot(p.G, x)
}

// gradient returns Hx + g.
func (p *Problem) gradient(x []float64) []float64 {
	grad := p.H.MulVec(x)
	mat.Axpy(1, p.G, grad)
	return grad
}

// numConstraints returns the number of inequality rows.
func (p *Problem) numConstraints() int {
	if p.A == nil {
		return 0
	}
	return p.A.Rows
}

func (p *Problem) validate() error {
	n := len(p.G)
	if p.H == nil || p.H.Rows != n || p.H.Cols != n {
		return fmt.Errorf("qp: H must be %dx%d", n, n)
	}
	if p.A != nil {
		if p.A.Cols != n {
			return fmt.Errorf("qp: A has %d cols, want %d", p.A.Cols, n)
		}
		if len(p.B) != p.A.Rows {
			return fmt.Errorf("qp: b has %d entries, want %d", len(p.B), p.A.Rows)
		}
	}
	return nil
}

// Solve minimizes the QP starting from x0, which must be feasible. If x0
// is nil, Solve first computes a feasible point with FindFeasible.
func Solve(p *Problem, x0 []float64) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	n := len(p.G)
	m := p.numConstraints()

	var x []float64
	if x0 != nil {
		if len(x0) != n {
			return nil, fmt.Errorf("qp: x0 has %d entries, want %d", len(x0), n)
		}
		x = append([]float64(nil), x0...)
		if viol := maxViolation(p, x); viol > 1e-6 {
			// Repair rather than reject: callers hand in the previous
			// period's operating point, which can drift infeasible when
			// SLO bounds tighten between periods.
			fp, err := FindFeasible(p.A, p.B, x)
			if err != nil {
				return nil, err
			}
			x = fp
		}
	} else {
		fp, err := FindFeasible(p.A, p.B, make([]float64, n))
		if err != nil {
			return nil, err
		}
		x = fp
	}

	// Working set: indices of constraints treated as equalities.
	working := make([]int, 0, m)
	inWorking := make([]bool, m)
	for i := 0; i < m; i++ {
		if math.Abs(residual(p, x, i)) <= featol {
			working = append(working, i)
			inWorking[i] = true
		}
	}
	// Guard against an over-determined initial working set.
	if len(working) > n {
		working = working[:n]
		for i := range inWorking {
			inWorking[i] = false
		}
		for _, idx := range working {
			inWorking[idx] = true
		}
	}

	lambda := make([]float64, m)
	for iter := 1; iter <= maxIter; iter++ {
		step, lam, err := eqpStep(p, x, working)
		if err != nil {
			return nil, err
		}
		// Treat the step as null when it is tiny OR when it cannot
		// reduce the objective beyond rounding noise; the latter guards
		// against stagnation loops on ill-conditioned Hessians (the MPC
		// tracking term has condition numbers ~1e7).
		predDecrease := -(mat.Dot(p.gradient(x), step) + 0.5*mat.Dot(step, p.H.MulVec(step)))
		if mat.Norm2(step) <= opttol*(1+mat.Norm2(x)) ||
			predDecrease <= 1e-12*(1+math.Abs(p.Objective(x))) {
			// No progress possible on the working set: check multipliers.
			minLam, minIdx := 0.0, -1
			for k, wi := range working {
				if lam[k] < minLam {
					minLam, minIdx = lam[k], wi
				}
			}
			if minIdx < 0 {
				// KKT conditions hold; done.
				for i := range lambda {
					lambda[i] = 0
				}
				for k, wi := range working {
					lambda[wi] = lam[k]
				}
				return &Result{
					X:          x,
					Obj:        p.Objective(x),
					Iterations: iter,
					Active:     append([]int(nil), working...),
					Lambda:     lambda,
				}, nil
			}
			// Drop the most negative multiplier's constraint.
			working = removeIndex(working, minIdx)
			inWorking[minIdx] = false
			continue
		}
		// Line search to the nearest blocking constraint.
		alpha, blocking := 1.0, -1
		for i := 0; i < m; i++ {
			if inWorking[i] {
				continue
			}
			as := mat.Dot(p.A.Row(i), step)
			if as <= featol {
				continue // moving away from or parallel to this face
			}
			room := p.B[i] - mat.Dot(p.A.Row(i), x)
			if room < 0 {
				room = 0
			}
			if a := room / as; a < alpha {
				alpha, blocking = a, i
			}
		}
		mat.Axpy(alpha, step, x)
		if blocking >= 0 {
			working = append(working, blocking)
			inWorking[blocking] = true
		}
	}
	return nil, ErrMaxIterations
}

// eqpStep solves the equality-constrained subproblem
//
//	min ½(x+s)ᵀH(x+s) + gᵀ(x+s)  s.t.  A_w s = 0
//
// returning the step s and the Lagrange multipliers of the working-set
// rows, via the KKT system.
func eqpStep(p *Problem, x []float64, working []int) (step, lam []float64, err error) {
	n := len(p.G)
	w := len(working)
	grad := p.gradient(x)
	kkt := mat.New(n+w, n+w)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			kkt.Set(i, j, p.H.At(i, j))
		}
	}
	for k, ci := range working {
		row := p.A.Row(ci)
		for j := 0; j < n; j++ {
			kkt.Set(n+k, j, row[j])
			kkt.Set(j, n+k, row[j])
		}
	}
	rhs := make([]float64, n+w)
	for i := 0; i < n; i++ {
		rhs[i] = -grad[i]
	}
	sol, err := mat.Solve(kkt, rhs)
	if err != nil {
		// A degenerate working set (linearly dependent rows) can make the
		// KKT matrix singular; perturb with tiny regularization.
		for k := 0; k < w; k++ {
			kkt.Add(n+k, n+k, -1e-10)
		}
		sol, err = mat.Solve(kkt, rhs)
		if err != nil {
			return nil, nil, fmt.Errorf("qp: KKT system singular: %w", err)
		}
	}
	step = sol[:n]
	lam = make([]float64, w)
	for k := 0; k < w; k++ {
		lam[k] = sol[n+k]
	}
	return step, lam, nil
}

func residual(p *Problem, x []float64, i int) float64 {
	return mat.Dot(p.A.Row(i), x) - p.B[i]
}

func maxViolation(p *Problem, x []float64) float64 {
	v := 0.0
	for i := 0; i < p.numConstraints(); i++ {
		if r := residual(p, x, i); r > v {
			v = r
		}
	}
	return v
}

func removeIndex(s []int, val int) []int {
	out := s[:0]
	for _, v := range s {
		if v != val {
			out = append(out, v)
		}
	}
	return out
}

// FindFeasible returns a point satisfying A x ≤ b, starting the search
// at hint, using the Agmon–Motzkin relaxation method: repeated cyclic
// projection onto the half-spaces of violated rows. For feasible systems
// with nonempty interior (the MPC's frequency polytopes) convergence is
// geometric.
func FindFeasible(a *mat.Mat, b []float64, hint []float64) ([]float64, error) {
	x := append([]float64(nil), hint...)
	if a == nil || a.Rows == 0 {
		return x, nil
	}
	norms := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		norms[i] = mat.Dot(a.Row(i), a.Row(i))
	}
	const relax = 1.5 // over-relaxation accelerates convergence
	for pass := 0; pass < 1000; pass++ {
		worst := 0.0
		for i := 0; i < a.Rows; i++ {
			if norms[i] == 0 {
				if b[i] < -featol {
					return nil, ErrInfeasible // 0·x ≤ negative
				}
				continue
			}
			r := mat.Dot(a.Row(i), x) - b[i]
			if r > featol {
				mat.Axpy(-relax*r/norms[i], a.Row(i), x)
				if r > worst {
					worst = r
				}
			}
		}
		if worst <= featol {
			return x, nil
		}
	}
	if maxViol(a, b, x) <= 1e-6 {
		return x, nil
	}
	return nil, ErrInfeasible
}

func maxViol(a *mat.Mat, b, x []float64) float64 {
	v := 0.0
	for i := 0; i < a.Rows; i++ {
		if r := mat.Dot(a.Row(i), x) - b[i]; r > v {
			v = r
		}
	}
	return v
}
