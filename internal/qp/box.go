package qp

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// BoxProblem is the special case of a QP whose only constraints are
// per-coordinate bounds lo ≤ x ≤ hi. The MPC subproblem reduces to this
// form when the SLO constraints are folded into the bounds, and the
// projected-gradient solver below is used as an independent cross-check
// of the active-set method in tests and ablations.
type BoxProblem struct {
	H      *mat.Mat
	G      []float64
	Lo, Hi []float64
}

// ToGeneral converts the box problem to the general inequality form
// (A x ≤ b) accepted by Solve.
func (bp *BoxProblem) ToGeneral() *Problem {
	n := len(bp.G)
	a := mat.New(2*n, n)
	b := make([]float64, 2*n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1) //  x_i ≤ hi_i
		b[i] = bp.Hi[i]
		a.Set(n+i, i, -1) // -x_i ≤ -lo_i
		b[n+i] = -bp.Lo[i]
	}
	return &Problem{H: bp.H, G: bp.G, A: a, B: b}
}

func (bp *BoxProblem) validate() error {
	n := len(bp.G)
	if bp.H == nil || bp.H.Rows != n || bp.H.Cols != n {
		return fmt.Errorf("qp: box H must be %dx%d", n, n)
	}
	if len(bp.Lo) != n || len(bp.Hi) != n {
		return fmt.Errorf("qp: box bounds length mismatch (%d, %d) vs %d", len(bp.Lo), len(bp.Hi), n)
	}
	for i := range bp.Lo {
		if bp.Lo[i] > bp.Hi[i] {
			return fmt.Errorf("qp: box bound %d inverted: lo=%g > hi=%g", i, bp.Lo[i], bp.Hi[i])
		}
	}
	return nil
}

// Clamp projects x onto the box in place.
func (bp *BoxProblem) Clamp(x []float64) {
	for i := range x {
		x[i] = math.Min(math.Max(x[i], bp.Lo[i]), bp.Hi[i])
	}
}

// SolveBox minimizes ½ xᵀHx + gᵀx over the box via projected gradient
// descent with a spectral (Barzilai–Borwein) step and a monotone
// safeguard. Convergence for strictly convex H over a convex set is
// standard; the iteration caps below are generous for the tiny systems
// at hand.
func SolveBox(bp *BoxProblem, x0 []float64) (*Result, error) {
	if err := bp.validate(); err != nil {
		return nil, err
	}
	n := len(bp.G)
	x := make([]float64, n)
	if x0 != nil {
		copy(x, x0)
	}
	bp.Clamp(x)

	p := &Problem{H: bp.H, G: bp.G}
	grad := p.gradient(x)
	// Initial step from the diagonal of H.
	step := 0.0
	for i := 0; i < n; i++ {
		step = math.Max(step, bp.H.At(i, i))
	}
	if step <= 0 {
		return nil, fmt.Errorf("qp: box Hessian has non-positive diagonal")
	}
	step = 1 / step

	prevX := append([]float64(nil), x...)
	prevGrad := append([]float64(nil), grad...)
	const tol = 1e-11
	for iter := 1; iter <= 5000; iter++ {
		trial := append([]float64(nil), x...)
		mat.Axpy(-step, grad, trial)
		bp.Clamp(trial)

		diff := mat.SubVec(trial, x)
		if mat.Norm2(diff) <= tol*(1+mat.Norm2(x)) {
			return &Result{X: x, Obj: p.Objective(x), Iterations: iter}, nil
		}
		// Monotone safeguard: halve until the objective decreases.
		fx := p.Objective(x)
		for mat.Norm2(diff) > 0 && p.Objective(trial) > fx+1e-14 {
			step *= 0.5
			if step < 1e-18 {
				return &Result{X: x, Obj: fx, Iterations: iter}, nil
			}
			trial = append([]float64(nil), x...)
			mat.Axpy(-step, grad, trial)
			bp.Clamp(trial)
			diff = mat.SubVec(trial, x)
		}
		copy(prevX, x)
		copy(prevGrad, grad)
		x = trial
		grad = p.gradient(x)

		// Barzilai–Borwein step for the next iteration.
		s := mat.SubVec(x, prevX)
		yv := mat.SubVec(grad, prevGrad)
		sy := mat.Dot(s, yv)
		if sy > 1e-16 {
			step = mat.Dot(s, s) / sy
		}
		step = math.Min(math.Max(step, 1e-12), 1e6)
	}
	return &Result{X: x, Obj: p.Objective(x), Iterations: 5000}, nil
}
