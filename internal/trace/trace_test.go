package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSetAddGetNames(t *testing.T) {
	var s Set
	s.Add("power", []float64{1, 2, 3})
	s.Add("setpoint", []float64{9, 9, 9})
	if names := s.Names(); len(names) != 2 || names[0] != "power" {
		t.Fatalf("names = %v", names)
	}
	got := s.Get("power")
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("get = %v", got)
	}
	if s.Get("missing") != nil {
		t.Fatal("missing series should be nil")
	}
	// Add must copy.
	src := []float64{5}
	s.Add("copy", src)
	src[0] = -1
	if s.Get("copy")[0] != 5 {
		t.Fatal("Add aliased the input slice")
	}
}

func TestWriteCSV(t *testing.T) {
	var s Set
	s.Add("a", []float64{1, 2})
	s.Add("b", []float64{3})
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "period,a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 3 {
		t.Fatalf("rows = %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "0,1.0000,3.0000") {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if !strings.HasSuffix(lines[2], ",") {
		t.Fatalf("short series should pad: %q", lines[2])
	}
	var empty Set
	if err := empty.WriteCSV(&buf); err == nil {
		t.Fatal("empty set should error")
	}
}

func TestAddPadsAndWarnsOnLengthMismatch(t *testing.T) {
	var s Set
	s.Add("power", []float64{900, 910, 905})
	if w := s.Warnings(); w != nil {
		t.Fatalf("first series should not warn: %v", w)
	}
	s.Add("short", []float64{1})
	s.AddFlags("degraded", []bool{true, false})
	warns := s.Warnings()
	if len(warns) != 2 {
		t.Fatalf("warnings = %v, want 2", warns)
	}
	if !strings.Contains(warns[0], `"short"`) || !strings.Contains(warns[0], "1 values") ||
		!strings.Contains(warns[0], "period axis has 3") {
		t.Fatalf("warning text = %q", warns[0])
	}
	if !strings.Contains(warns[1], `"degraded"`) {
		t.Fatalf("warning text = %q", warns[1])
	}
	// Every series is padded to the common axis with NaN.
	for _, name := range []string{"short", "degraded"} {
		vals := s.Get(name)
		if len(vals) != 3 {
			t.Fatalf("%s padded to %d values, want 3", name, len(vals))
		}
		if !math.IsNaN(vals[2]) {
			t.Fatalf("%s pad cell = %g, want NaN", name, vals[2])
		}
	}
	// Padding renders as empty CSV cells, not "NaN".
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("rows = %d", len(lines))
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Fatalf("CSV leaked NaN:\n%s", buf.String())
	}
	if lines[3] != "2,905.0000,," {
		t.Fatalf("padded row = %q", lines[3])
	}
	// A longer series stretches the axis and back-fills earlier ones.
	s.Add("long", []float64{1, 2, 3, 4})
	if vals := s.Get("power"); len(vals) != 4 || !math.IsNaN(vals[3]) {
		t.Fatalf("axis growth did not back-fill: %v", vals)
	}
}

func TestAddStrictRejectsLengthMismatch(t *testing.T) {
	var s Set
	if err := s.AddStrict("power", []float64{900, 910}); err != nil {
		t.Fatalf("first series should be accepted: %v", err)
	}
	if err := s.AddStrict("setpoint", []float64{900, 900}); err != nil {
		t.Fatalf("matching series should be accepted: %v", err)
	}
	err := s.AddStrict("short", []float64{1})
	if err == nil || !strings.Contains(err.Error(), `"short"`) {
		t.Fatalf("mismatch error = %v", err)
	}
	if err := s.AddFlagsStrict("degraded", []bool{true, false}); err != nil {
		t.Fatalf("matching flags should be accepted: %v", err)
	}
	if err := s.AddFlagsStrict("failsafe", []bool{true}); err == nil {
		t.Fatal("mismatched flags should be rejected")
	}
	// Rejected series are not appended and leave no warnings behind.
	if names := s.Names(); len(names) != 3 {
		t.Fatalf("names = %v", names)
	}
	if w := s.Warnings(); w != nil {
		t.Fatalf("strict rejection should not warn: %v", w)
	}
}

func TestChartSkipsNaNPadding(t *testing.T) {
	out := Chart([]Series{
		{Name: "full", Values: []float64{700, 800, 900, 850}},
		{Name: "padded", Values: []float64{750, 780, math.NaN(), math.NaN()}},
	}, 40, 10, 900, "padded chart")
	if out == "" || strings.Contains(out, "NaN") {
		t.Fatalf("NaN leaked into chart:\n%s", out)
	}
	if !strings.Contains(out, "o = padded") {
		t.Fatalf("missing legend:\n%s", out)
	}
}

func TestChartRendersAllSeriesAndReference(t *testing.T) {
	out := Chart([]Series{
		{Name: "capgpu", Values: []float64{700, 800, 900, 900}},
		{Name: "fixed", Values: []float64{700, 950, 850, 920}},
	}, 40, 10, 900, "Fig 3")
	if !strings.Contains(out, "Fig 3") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "* = capgpu") || !strings.Contains(out, "o = fixed") {
		t.Fatalf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "reference (900)") {
		t.Fatal("missing reference legend")
	}
	if !strings.Contains(out, "-") {
		t.Fatal("missing reference line")
	}
}

func TestChartDegenerateInputs(t *testing.T) {
	if out := Chart(nil, 40, 10, math.NaN(), "empty"); !strings.Contains(out, "no data") {
		t.Fatalf("empty chart = %q", out)
	}
	// Constant series must not divide by zero.
	out := Chart([]Series{{Name: "flat", Values: []float64{5, 5, 5}}}, 0, 0, math.NaN(), "")
	if out == "" || strings.Contains(out, "NaN") {
		t.Fatalf("flat chart broken:\n%s", out)
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"name", "value"}, [][]string{{"alpha", "1"}, {"b", "22"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Fatalf("separator = %q", lines[1])
	}
}

func TestMarkdownTable(t *testing.T) {
	out := MarkdownTable([]string{"a", "b"}, [][]string{{"1", "2"}})
	want := "| a | b |\n| --- | --- |\n| 1 | 2 |\n"
	if out != want {
		t.Fatalf("markdown = %q", out)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"z": 1, "a": 2, "m": 3}
	keys := SortedKeys(m)
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "z" {
		t.Fatalf("keys = %v", keys)
	}
}
