package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSetAddGetNames(t *testing.T) {
	var s Set
	s.Add("power", []float64{1, 2, 3})
	s.Add("setpoint", []float64{9, 9, 9})
	if names := s.Names(); len(names) != 2 || names[0] != "power" {
		t.Fatalf("names = %v", names)
	}
	got := s.Get("power")
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("get = %v", got)
	}
	if s.Get("missing") != nil {
		t.Fatal("missing series should be nil")
	}
	// Add must copy.
	src := []float64{5}
	s.Add("copy", src)
	src[0] = -1
	if s.Get("copy")[0] != 5 {
		t.Fatal("Add aliased the input slice")
	}
}

func TestWriteCSV(t *testing.T) {
	var s Set
	s.Add("a", []float64{1, 2})
	s.Add("b", []float64{3})
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "period,a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 3 {
		t.Fatalf("rows = %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "0,1.0000,3.0000") {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if !strings.HasSuffix(lines[2], ",") {
		t.Fatalf("short series should pad: %q", lines[2])
	}
	var empty Set
	if err := empty.WriteCSV(&buf); err == nil {
		t.Fatal("empty set should error")
	}
}

func TestChartRendersAllSeriesAndReference(t *testing.T) {
	out := Chart([]Series{
		{Name: "capgpu", Values: []float64{700, 800, 900, 900}},
		{Name: "fixed", Values: []float64{700, 950, 850, 920}},
	}, 40, 10, 900, "Fig 3")
	if !strings.Contains(out, "Fig 3") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "* = capgpu") || !strings.Contains(out, "o = fixed") {
		t.Fatalf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "reference (900)") {
		t.Fatal("missing reference legend")
	}
	if !strings.Contains(out, "-") {
		t.Fatal("missing reference line")
	}
}

func TestChartDegenerateInputs(t *testing.T) {
	if out := Chart(nil, 40, 10, math.NaN(), "empty"); !strings.Contains(out, "no data") {
		t.Fatalf("empty chart = %q", out)
	}
	// Constant series must not divide by zero.
	out := Chart([]Series{{Name: "flat", Values: []float64{5, 5, 5}}}, 0, 0, math.NaN(), "")
	if out == "" || strings.Contains(out, "NaN") {
		t.Fatalf("flat chart broken:\n%s", out)
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"name", "value"}, [][]string{{"alpha", "1"}, {"b", "22"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Fatalf("separator = %q", lines[1])
	}
}

func TestMarkdownTable(t *testing.T) {
	out := MarkdownTable([]string{"a", "b"}, [][]string{{"1", "2"}})
	want := "| a | b |\n| --- | --- |\n| 1 | 2 |\n"
	if out != want {
		t.Fatalf("markdown = %q", out)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"z": 1, "a": 2, "m": 3}
	keys := SortedKeys(m)
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "z" {
		t.Fatalf("keys = %v", keys)
	}
}
