// Package trace records experiment time series and renders them as CSV
// (for plotting elsewhere) and as ASCII charts (so the cmd tools can
// show the paper's figures directly in a terminal).
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one named time series sampled at control-period granularity.
type Series struct {
	Name   string
	Values []float64
}

// Set is a collection of aligned series (same period axis).
type Set struct {
	series   []Series
	warnings []string
}

// Add appends a series. A series whose length differs from the set's
// existing period axis is padded (on whichever side is shorter) with
// NaN — rendered as an empty CSV cell — and the mismatch is recorded in
// Warnings, instead of silently producing a ragged CSV. Use AddStrict
// to reject mismatches outright.
func (s *Set) Add(name string, values []float64) {
	s.checkLength(name, len(values))
	s.series = append(s.series, Series{Name: name, Values: append([]float64(nil), values...)})
	s.normalize()
}

// AddStrict is Add that returns an error instead of padding when the
// series length does not match the set's period axis.
func (s *Set) AddStrict(name string, values []float64) error {
	if axis := s.axisLen(); axis >= 0 && len(values) != axis {
		return fmt.Errorf("trace: series %q has %d values, period axis has %d", name, len(values), axis)
	}
	s.series = append(s.series, Series{Name: name, Values: append([]float64(nil), values...)})
	return nil
}

// AddFlags appends a boolean series as 0/1 values, so per-period state
// flags (degraded, fail-safe, uncontrolled) land in the same CSV as the
// power traces they annotate. Length mismatches pad and warn like Add.
func (s *Set) AddFlags(name string, flags []bool) {
	s.checkLength(name, len(flags))
	s.series = append(s.series, Series{Name: name, Values: flagValues(flags)})
	s.normalize()
}

// AddFlagsStrict is AddFlags that rejects a length mismatch.
func (s *Set) AddFlagsStrict(name string, flags []bool) error {
	if axis := s.axisLen(); axis >= 0 && len(flags) != axis {
		return fmt.Errorf("trace: series %q has %d values, period axis has %d", name, len(flags), axis)
	}
	s.series = append(s.series, Series{Name: name, Values: flagValues(flags)})
	return nil
}

func flagValues(flags []bool) []float64 {
	vals := make([]float64, len(flags))
	for i, f := range flags {
		if f {
			vals[i] = 1
		}
	}
	return vals
}

// Warnings returns the length-mismatch warnings accumulated by Add and
// AddFlags, in occurrence order (nil when every series aligned).
func (s *Set) Warnings() []string { return s.warnings }

// axisLen returns the set's current period-axis length (-1 when empty).
func (s *Set) axisLen() int {
	if len(s.series) == 0 {
		return -1
	}
	n := 0
	for _, sr := range s.series {
		if len(sr.Values) > n {
			n = len(sr.Values)
		}
	}
	return n
}

// checkLength records a warning when a new series disagrees with the
// existing axis.
func (s *Set) checkLength(name string, n int) {
	if axis := s.axisLen(); axis >= 0 && n != axis {
		s.warnings = append(s.warnings,
			fmt.Sprintf("trace: series %q has %d values, period axis has %d; padding with empty cells", name, n, axis))
	}
}

// normalize pads every series to the common axis length with NaN, which
// WriteCSV renders as an empty cell.
func (s *Set) normalize() {
	axis := s.axisLen()
	for i := range s.series {
		for len(s.series[i].Values) < axis {
			s.series[i].Values = append(s.series[i].Values, math.NaN())
		}
	}
}

// Names returns the series names in insertion order.
func (s *Set) Names() []string {
	out := make([]string, len(s.series))
	for i, sr := range s.series {
		out[i] = sr.Name
	}
	return out
}

// Get returns the named series' values (nil if absent).
func (s *Set) Get(name string) []float64 {
	for _, sr := range s.series {
		if sr.Name == name {
			return sr.Values
		}
	}
	return nil
}

// WriteCSV emits `period,<name1>,<name2>,...` rows. Shorter series pad
// with empty cells.
func (s *Set) WriteCSV(w io.Writer) error {
	if len(s.series) == 0 {
		return fmt.Errorf("trace: empty set")
	}
	header := append([]string{"period"}, s.Names()...)
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	maxLen := 0
	for _, sr := range s.series {
		if len(sr.Values) > maxLen {
			maxLen = len(sr.Values)
		}
	}
	for i := 0; i < maxLen; i++ {
		row := make([]string, 0, len(s.series)+1)
		row = append(row, fmt.Sprintf("%d", i))
		for _, sr := range s.series {
			if i < len(sr.Values) && !math.IsNaN(sr.Values[i]) {
				row = append(row, fmt.Sprintf("%.4f", sr.Values[i]))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Chart renders series as an ASCII line chart of the given size. A
// horizontal reference line (e.g. the power set point) is drawn when
// refLine is non-NaN.
func Chart(series []Series, width, height int, refLine float64, title string) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	maxLen := 0
	for _, sr := range series {
		for _, v := range sr.Values {
			if math.IsNaN(v) {
				continue // padding cells carry no data
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if len(sr.Values) > maxLen {
			maxLen = len(sr.Values)
		}
	}
	if !math.IsNaN(refLine) {
		lo = math.Min(lo, refLine)
		hi = math.Max(hi, refLine)
	}
	if maxLen == 0 || math.IsInf(lo, 1) {
		return title + "\n(no data)\n"
	}
	if hi-lo < 1e-12 {
		hi = lo + 1
	}
	pad := 0.05 * (hi - lo)
	lo -= pad
	hi += pad

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	rowOf := func(v float64) int {
		r := int(math.Round((hi - v) / (hi - lo) * float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	if !math.IsNaN(refLine) {
		r := rowOf(refLine)
		for c := 0; c < width; c++ {
			grid[r][c] = '-'
		}
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}
	for si, sr := range series {
		g := glyphs[si%len(glyphs)]
		for c := 0; c < width; c++ {
			idx := c * (maxLen - 1) / maxInt(width-1, 1)
			if idx >= len(sr.Values) || math.IsNaN(sr.Values[idx]) {
				continue
			}
			grid[rowOf(sr.Values[idx])][c] = g
		}
	}

	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for r, row := range grid {
		v := hi - (hi-lo)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%9.1f |%s\n", v, string(row))
	}
	b.WriteString(strings.Repeat(" ", 10) + "+" + strings.Repeat("-", width) + "\n")
	// Legend.
	for si, sr := range series {
		fmt.Fprintf(&b, "%10s %c = %s\n", "", glyphs[si%len(glyphs)], sr.Name)
	}
	if !math.IsNaN(refLine) {
		fmt.Fprintf(&b, "%10s - = reference (%.0f)\n", "", refLine)
	}
	return b.String()
}

// Table renders rows as an aligned text table with a header.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// MarkdownTable renders rows as a GitHub-flavored markdown table.
func MarkdownTable(header []string, rows [][]string) string {
	var b strings.Builder
	b.WriteString("| " + strings.Join(header, " | ") + " |\n")
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// SortedKeys returns map keys in sorted order (deterministic output for
// tables built from maps).
func SortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
