package workload

import (
	"math"
	"strings"
	"testing"
)

// FuzzParseLLMSpec hammers the serving-mix DSL parser with arbitrary
// input: it must never panic, and every spec it accepts must be
// well-formed — a known model, finite in-range rate, token counts and
// expert counts inside their caps, a round trip through LLMSpec.String
// that re-parses to the same spec, and a config that NewLLMPipeline
// accepts (an accepted spec must always be runnable).
func FuzzParseLLMSpec(f *testing.F) {
	seeds := []string{
		"llama7b@6:512+160",
		"mixtral@2.2:640+192*8",
		"llama70b@1:448+224",
		"llama70b@0.25:2048+1",
		" llama7b@6:512+160 ",
		"",
		"@:+",
		"llama7b",
		"llama7b@6",
		"llama7b@6:512",
		"llama7b@6:512+",
		"bogus@6:512+160",
		"llama7b@NaN:512+160",
		"llama7b@+Inf:512+160",
		"llama7b@-1:512+160",
		"llama7b@1e309:512+160",
		"llama7b@6:0+160",
		"llama7b@6:512+0",
		"llama7b@6:-512+160",
		"llama7b@6:1048577+160",
		"llama7b@6:512+9223372036854775808",
		"llama7b@6:512+160*0",
		"llama7b@6:512+160*4097",
		"llama7b@6:512+160*NaN",
		"llama7b@6:512+160*8*8",
		"a@b:c+d*e",
		strings.Repeat("llama7b@1:1+1;", 50),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		spec, err := ParseLLMSpec(in)
		if err != nil {
			return
		}
		if math.IsNaN(spec.RateReqPerS) || math.IsInf(spec.RateReqPerS, 0) || spec.RateReqPerS <= 0 || spec.RateReqPerS > maxSpecRate {
			t.Fatalf("accepted out-of-range rate: %+v", spec)
		}
		for _, n := range []int{spec.PromptTokens, spec.OutputTokens} {
			if n <= 0 || n > maxSpecTokens {
				t.Fatalf("accepted out-of-range token count: %+v", spec)
			}
		}
		if spec.Experts < 0 || spec.Experts > maxSpecExperts {
			t.Fatalf("accepted out-of-range expert count: %+v", spec)
		}
		prof, ok := LLMZoo()[spec.Model]
		if !ok {
			t.Fatalf("accepted unknown model: %+v", spec)
		}
		// Round trip: the canonical rendering must re-parse identically.
		back, err := ParseLLMSpec(spec.String())
		if err != nil {
			t.Fatalf("%q does not re-parse: %v", spec.String(), err)
		}
		if back != spec {
			t.Fatalf("round trip changed %+v into %+v", spec, back)
		}
		// Every accepted spec must build a runnable pipeline.
		if spec.Experts > 0 {
			prof.Experts = spec.Experts
			if prof.MoEPowerStd == 0 {
				prof.MoEPowerStd = 0.06
			}
		}
		p, err := NewLLMPipeline(LLMConfig{Profile: prof, Spec: spec, FgMax: 1350, Seed: 1})
		if err != nil {
			t.Fatalf("accepted spec %+v does not build: %v", spec, err)
		}
		st := p.Step(4, 2.4, 900)
		if math.IsNaN(st.GPUUtil) || math.IsNaN(st.FreqPowerExp) || math.IsNaN(st.Throughput) {
			t.Fatalf("first step produced NaN stats for %+v: %+v", spec, st)
		}
	})
}
