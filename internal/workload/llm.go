// LLM serving workload family: a token-level continuous-batching queue
// in which prefill and decode phases coexist inside one batch, with a
// phase-dependent power law. Prefill is compute-bound and strongly
// frequency-responsive; decode is memory-bandwidth-bound and barely
// responds to core-clock caps ("The Illusion of Power Capping in LLM
// Decode"). Mixture-of-experts profiles add seeded expert-activation
// power variance (PALS). The pipeline reports the phase mix and the
// blended power-vs-frequency exponent through Stats so the simulator
// can bend its device power law per step, which is exactly the
// regime-switching that stresses the controller's RLS/MPC loop.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
)

// GPUWorkload is the surface the simulator needs from anything attached
// to a GPU slot: the CNN Pipeline and the LLMPipeline both implement
// it. A nil slot means the GPU idles.
type GPUWorkload interface {
	// Step advances the workload by dt seconds at CPU frequency fc
	// (GHz) and GPU frequency fg (MHz) and reports the step's stats.
	Step(dt, fc, fg float64) Stats
	// Last returns the stats of the most recent step.
	Last() Stats
	// Reset restores the initial seeded state (bit-identical replay).
	Reset()
	// MaxThroughput is the best-case sustained throughput used for
	// normalization (images/s for CNNs, tokens/s for LLMs).
	MaxThroughput() float64
	// SetArrivalScale scales the offered load (1 = nominal).
	SetArrivalScale(scale float64)
	// ArrivalScale reports the current load scale.
	ArrivalScale() float64
	// SetExternalLatencyFactor imposes a slowdown factor >= 1 (the
	// simulator's memory-throttle penalty).
	SetExternalLatencyFactor(f float64)
}

// Interface conformance for both families.
var (
	_ GPUWorkload = (*Pipeline)(nil)
	_ GPUWorkload = (*LLMPipeline)(nil)
)

// LLMProfile describes one language model's serving behavior on a GPU
// class. Token rates are referenced to the GPU's maximum core clock;
// the Gamma exponents describe how throughput scales with frequency
// per phase and the Alpha exponents describe how *power* scales with
// frequency per phase (prefill near-linear, decode nearly flat).
type LLMProfile struct {
	Name string
	// PrefillTokPerS is the aggregate prompt-processing rate at f_max
	// (compute-bound, batches well).
	PrefillTokPerS float64
	// DecodeTokPerS is the aggregate decode rate at f_max across the
	// whole running batch (memory-bound).
	DecodeTokPerS float64
	// GammaPrefill/GammaDecode: throughput ~ (f/f_max)^gamma per phase.
	GammaPrefill float64
	GammaDecode  float64
	// AlphaPrefill/AlphaDecode: dynamic power ~ (f/f_max)^alpha per
	// phase. Decode's small alpha is the Illusion paper's flat cap
	// response.
	AlphaPrefill float64
	AlphaDecode  float64
	// Experts > 0 marks a mixture-of-experts model; MoEPowerStd is the
	// std of the seeded multiplicative power variance from uneven
	// expert activation (PALS).
	Experts     int
	MoEPowerStd float64
	// NoiseStd is the multiplicative observation noise on the reported
	// time-per-output-token.
	NoiseStd float64
}

// llmZooNames lists the profiles in LLMZoo in a fixed order (kept as a
// slice so error messages and docs never iterate the map).
var llmZooNames = []string{"llama7b", "llama70b", "mixtral"}

// LLMZoo returns the LLM profiles used across the experiments, scaled
// to a V100-class device at 1350 MHz. Prefill exponents sit near the
// CNN law (compute-bound); decode exponents are an order of magnitude
// smaller (memory-bound).
func LLMZoo() map[string]LLMProfile {
	return map[string]LLMProfile{
		"llama7b":  {Name: "llama7b", PrefillTokPerS: 24000, DecodeTokPerS: 2600, GammaPrefill: 0.92, GammaDecode: 0.14, AlphaPrefill: 1.12, AlphaDecode: 0.12, NoiseStd: 0.02},
		"llama70b": {Name: "llama70b", PrefillTokPerS: 5200, DecodeTokPerS: 640, GammaPrefill: 0.95, GammaDecode: 0.10, AlphaPrefill: 1.20, AlphaDecode: 0.08, NoiseStd: 0.02},
		"mixtral":  {Name: "mixtral", PrefillTokPerS: 11000, DecodeTokPerS: 1500, GammaPrefill: 0.93, GammaDecode: 0.12, AlphaPrefill: 1.15, AlphaDecode: 0.10, Experts: 8, MoEPowerStd: 0.06, NoiseStd: 0.02},
	}
}

// LLMSpec is the parsed form of one workload-spec entry in the DSL
//
//	model@rate:prompt+output[*experts]
//
// e.g. "llama7b@3.5:512+128" — 3.5 requests/s with ~512-token prompts
// and ~128-token outputs — or "mixtral@2:640+192*8" to pin the expert
// count. Entries for multiple GPUs join with ';'.
type LLMSpec struct {
	Model        string
	RateReqPerS  float64
	PromptTokens int
	OutputTokens int
	Experts      int // 0 = the profile's default
}

// String renders the spec back into the DSL; ParseLLMSpec round-trips
// it.
func (s LLMSpec) String() string {
	out := s.Model + "@" + strconv.FormatFloat(s.RateReqPerS, 'g', -1, 64) +
		":" + strconv.Itoa(s.PromptTokens) + "+" + strconv.Itoa(s.OutputTokens)
	if s.Experts > 0 {
		out += "*" + strconv.Itoa(s.Experts)
	}
	return out
}

// Token-count and rate bounds accepted by the spec parser. The caps
// reject overflowed or absurd values before they reach float math.
const (
	maxSpecTokens  = 1 << 20 // 1Mi tokens per prompt/output
	maxSpecRate    = 1e6     // requests/s
	maxSpecExperts = 4096
)

// ParseLLMSpec parses one DSL entry. It rejects unknown models,
// non-finite or non-positive rates, and token counts that are
// non-integer, non-positive, or overflow the accepted range.
func ParseLLMSpec(in string) (LLMSpec, error) {
	var spec LLMSpec
	s := strings.TrimSpace(in)
	if s == "" {
		return spec, fmt.Errorf("workload: empty llm spec")
	}
	model, rest, ok := strings.Cut(s, "@")
	if !ok {
		return spec, fmt.Errorf("workload: llm spec %q: missing '@rate'", in)
	}
	model = strings.TrimSpace(model)
	if _, known := LLMZoo()[model]; !known {
		return spec, fmt.Errorf("workload: llm spec %q: unknown model %q (have %s)", in, model, strings.Join(llmZooNames, ", "))
	}
	rateStr, tok, ok := strings.Cut(rest, ":")
	if !ok {
		return spec, fmt.Errorf("workload: llm spec %q: missing ':prompt+output'", in)
	}
	rate, err := strconv.ParseFloat(strings.TrimSpace(rateStr), 64)
	if err != nil {
		return spec, fmt.Errorf("workload: llm spec %q: bad rate %q: %v", in, rateStr, err)
	}
	if math.IsNaN(rate) || math.IsInf(rate, 0) {
		return spec, fmt.Errorf("workload: llm spec %q: rate must be finite", in)
	}
	if rate <= 0 || rate > maxSpecRate {
		return spec, fmt.Errorf("workload: llm spec %q: rate %g out of range (0, %g]", in, rate, float64(maxSpecRate))
	}
	if strings.Contains(tok, "*") {
		var expStr string
		tok, expStr, _ = strings.Cut(tok, "*")
		experts, err := strconv.Atoi(strings.TrimSpace(expStr))
		if err != nil {
			return spec, fmt.Errorf("workload: llm spec %q: bad expert count %q", in, expStr)
		}
		if experts <= 0 || experts > maxSpecExperts {
			return spec, fmt.Errorf("workload: llm spec %q: expert count %d out of range [1, %d]", in, experts, maxSpecExperts)
		}
		spec.Experts = experts
	}
	promptStr, outStr, ok := strings.Cut(tok, "+")
	if !ok {
		return spec, fmt.Errorf("workload: llm spec %q: token counts must be 'prompt+output'", in)
	}
	prompt, err := parseTokenCount(promptStr)
	if err != nil {
		return spec, fmt.Errorf("workload: llm spec %q: prompt tokens: %v", in, err)
	}
	output, err := parseTokenCount(outStr)
	if err != nil {
		return spec, fmt.Errorf("workload: llm spec %q: output tokens: %v", in, err)
	}
	spec.Model = model
	spec.RateReqPerS = rate
	spec.PromptTokens = prompt
	spec.OutputTokens = output
	return spec, nil
}

// parseTokenCount parses a strictly positive integer token count,
// rejecting floats, NaN/Inf spellings, negatives, and overflow.
func parseTokenCount(s string) (int, error) {
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return 0, fmt.Errorf("bad count %q (integer required)", s)
	}
	if n <= 0 || n > maxSpecTokens {
		return 0, fmt.Errorf("count %d out of range [1, %d]", n, maxSpecTokens)
	}
	return n, nil
}

// ParseLLMSpecs parses a ';'-joined list of spec entries (one per GPU).
func ParseLLMSpecs(in string) ([]LLMSpec, error) {
	parts := strings.Split(in, ";")
	specs := make([]LLMSpec, 0, len(parts))
	for _, p := range parts {
		if strings.TrimSpace(p) == "" {
			continue
		}
		spec, err := ParseLLMSpec(p)
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("workload: llm spec list %q is empty", in)
	}
	return specs, nil
}

// LLMConfig configures one GPU's serving pipeline.
type LLMConfig struct {
	Profile LLMProfile
	Spec    LLMSpec
	// MaxBatch is the continuous-batching concurrency limit (running
	// sequences). Defaults to 32.
	MaxBatch int
	// QueueCap bounds the admission queue in requests; arrivals beyond
	// it are shed. Defaults to 96.
	QueueCap int
	// TokenJitter is the ± uniform fractional jitter applied to each
	// request's prompt/output draw. Defaults to 0.25; negative = none.
	TokenJitter float64
	// FgMax is the reference maximum GPU core clock (MHz).
	FgMax float64
	Seed  int64
}

// llmSeq is one request's remaining token work.
type llmSeq struct {
	prefill float64 // prompt tokens left to prefill
	decode  float64 // output tokens left to generate
}

// LLMPipeline is the discrete-time state of one continuous-batching
// serving pipeline. Requests arrive by a seeded Poisson process, wait
// in a bounded admission queue, then join the running batch where
// chunked prefill and batched decode share each step's GPU time.
// Conservation invariant, pinned by tests: offered = admitted + shed
// and admitted = completed + in-flight.
type LLMPipeline struct {
	cfg LLMConfig
	rng *rand.Rand

	arrScale float64
	outScale float64 // regime lever: scales output-token draws
	extLat   float64

	// Seeded unit-rate arrival clock: unitNext advances by Exp(1)
	// draws, unitClock by rate·dt, so arrival-rate changes mid-run stay
	// deterministic.
	unitClock float64
	unitNext  float64

	pending  []llmSeq // admission queue; head compacted lazily
	pendHead int
	running  []llmSeq

	offered   int64
	admitted  int64
	completed int64
	shed      int64

	last Stats
}

// NewLLMPipeline validates the config and returns a pipeline.
func NewLLMPipeline(cfg LLMConfig) (*LLMPipeline, error) {
	p := cfg.Profile
	if p.PrefillTokPerS <= 0 || p.DecodeTokPerS <= 0 {
		return nil, fmt.Errorf("workload: llm profile %q: token rates must be positive", p.Name)
	}
	if p.GammaPrefill <= 0 || p.GammaDecode <= 0 || p.AlphaPrefill <= 0 || p.AlphaDecode <= 0 {
		return nil, fmt.Errorf("workload: llm profile %q: phase exponents must be positive", p.Name)
	}
	if cfg.Spec.PromptTokens <= 0 || cfg.Spec.OutputTokens <= 0 {
		return nil, fmt.Errorf("workload: llm spec: token counts must be positive")
	}
	if cfg.Spec.RateReqPerS < 0 || math.IsNaN(cfg.Spec.RateReqPerS) || math.IsInf(cfg.Spec.RateReqPerS, 0) {
		return nil, fmt.Errorf("workload: llm spec: arrival rate must be finite and non-negative")
	}
	if cfg.FgMax <= 0 {
		return nil, fmt.Errorf("workload: llm config: FgMax must be positive")
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 32
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 96
	}
	if cfg.TokenJitter == 0 {
		cfg.TokenJitter = 0.25
	}
	if cfg.TokenJitter < 0 {
		cfg.TokenJitter = 0
	}
	if cfg.TokenJitter > 0.9 {
		cfg.TokenJitter = 0.9
	}
	lp := &LLMPipeline{cfg: cfg, arrScale: 1, outScale: 1, extLat: 1}
	lp.reseed()
	return lp, nil
}

// reseed restores the seeded arrival state shared by New and Reset.
func (p *LLMPipeline) reseed() {
	p.rng = rand.New(rand.NewSource(p.cfg.Seed))
	p.unitClock = 0
	p.unitNext = p.rng.ExpFloat64()
}

// Config returns the validated configuration.
func (p *LLMPipeline) Config() LLMConfig { return p.cfg }

// Last implements GPUWorkload.
func (p *LLMPipeline) Last() Stats { return p.last }

// SetArrivalScale implements GPUWorkload (clamped at 0).
func (p *LLMPipeline) SetArrivalScale(scale float64) {
	p.arrScale = math.Max(0, scale)
}

// ArrivalScale implements GPUWorkload.
func (p *LLMPipeline) ArrivalScale() float64 { return p.arrScale }

// SetOutputScale scales every subsequent request's output-token draw
// (clamped at 0). Regime schedules drive it: small values make the
// workload prefill-heavy, large values decode-heavy.
func (p *LLMPipeline) SetOutputScale(scale float64) {
	p.outScale = math.Max(0, scale)
}

// OutputScale reports the current output-token scale.
func (p *LLMPipeline) OutputScale() float64 { return p.outScale }

// SetExternalLatencyFactor implements GPUWorkload: a slowdown >= 1
// divides both phase token rates (memory throttling hurts decode too).
func (p *LLMPipeline) SetExternalLatencyFactor(f float64) {
	p.extLat = math.Max(1, f)
}

// Counters reports the conservation ledger: requests offered by the
// arrival process, admitted into the system, completed, and shed at the
// full queue. offered == admitted+shed and admitted == completed+
// InFlight() always hold.
func (p *LLMPipeline) Counters() (offered, admitted, completed, shed int64) {
	return p.offered, p.admitted, p.completed, p.shed
}

// InFlight reports requests inside the system: pending admission plus
// running.
func (p *LLMPipeline) InFlight() int {
	return len(p.pending) - p.pendHead + len(p.running)
}

// QueueDepth reports requests pending admission.
func (p *LLMPipeline) QueueDepth() int { return len(p.pending) - p.pendHead }

// MaxThroughput implements GPUWorkload: the token throughput at f_max
// for the spec's prompt/output mix (the harmonic blend of the two
// phase rates).
func (p *LLMPipeline) MaxThroughput() float64 {
	prompt := float64(p.cfg.Spec.PromptTokens)
	output := float64(p.cfg.Spec.OutputTokens)
	per := prompt/p.cfg.Profile.PrefillTokPerS + output/p.cfg.Profile.DecodeTokPerS
	if per <= 0 {
		return 0
	}
	return (prompt + output) / per
}

// Inject enqueues one request with explicit token counts, bypassing
// the arrival process (subject to the same queue cap and shedding).
// It reports whether the request was admitted. Tests and load replay
// use it.
func (p *LLMPipeline) Inject(promptTokens, outputTokens int) (bool, error) {
	if promptTokens <= 0 || outputTokens <= 0 || promptTokens > maxSpecTokens || outputTokens > maxSpecTokens {
		return false, fmt.Errorf("workload: inject: token counts out of range [1, %d]", maxSpecTokens)
	}
	return p.accept(llmSeq{prefill: float64(promptTokens), decode: float64(outputTokens)}), nil
}

// accept offers one request to the admission queue, shedding at cap.
func (p *LLMPipeline) accept(s llmSeq) bool {
	p.offered++
	if p.QueueDepth()+len(p.running) >= p.cfg.QueueCap {
		p.shed++
		return false
	}
	if p.pendHead > 64 && p.pendHead*2 >= len(p.pending) {
		n := copy(p.pending, p.pending[p.pendHead:])
		p.pending = p.pending[:n]
		p.pendHead = 0
	}
	p.pending = append(p.pending, s)
	p.admitted++
	return true
}

// spawn draws one arrival's token counts from the seeded stream.
func (p *LLMPipeline) spawn() {
	j := p.cfg.TokenJitter
	prompt := float64(p.cfg.Spec.PromptTokens) * (1 + j*(2*p.rng.Float64()-1))
	output := float64(p.cfg.Spec.OutputTokens) * p.outScale * (1 + j*(2*p.rng.Float64()-1))
	p.accept(llmSeq{
		prefill: math.Max(1, math.Round(prompt)),
		decode:  math.Max(1, math.Round(output)),
	})
}

// Reset implements GPUWorkload: bit-identical replay from the seed.
func (p *LLMPipeline) Reset() {
	p.reseed()
	p.pending = p.pending[:0]
	p.pendHead = 0
	p.running = p.running[:0]
	p.offered, p.admitted, p.completed, p.shed = 0, 0, 0, 0
	p.last = Stats{}
}

// Step implements GPUWorkload: advance dt seconds at GPU frequency fg
// (MHz). The CPU frequency shapes only the light tokenizer/feeder load
// reported through CPUUtil. Within the step, admission, chunked
// prefill, and batched decode share the GPU time budget in continuous-
// batching fashion: prefill chunks preempt decode iterations, so a
// prefill burst starves decode and inflates the observed time per
// output token, exactly as in real chunked-prefill servers.
func (p *LLMPipeline) Step(dt, fc, fg float64) Stats {
	if dt <= 0 {
		return p.last
	}
	_ = fc

	// Arrivals over [t, t+dt) from the unit-rate exponential clock.
	rate := p.cfg.Spec.RateReqPerS * p.arrScale
	if rate > 0 {
		p.unitClock += rate * dt
		for p.unitNext <= p.unitClock {
			p.spawn()
			p.unitNext += p.rng.ExpFloat64()
		}
	}

	// Phase token rates at this clock. FgMax is validated positive; the
	// guard keeps the ratio sane if a caller hands a zero frequency.
	fgMax := p.cfg.FgMax
	if fgMax <= 0 {
		fgMax = 1
	}
	fr := fg / fgMax
	if fr < 0.05 {
		fr = 0.05
	}
	if fr > 1.5 {
		fr = 1.5
	}
	pRate := p.cfg.Profile.PrefillTokPerS * math.Pow(fr, p.cfg.Profile.GammaPrefill) / p.extLat
	dRate := p.cfg.Profile.DecodeTokPerS * math.Pow(fr, p.cfg.Profile.GammaDecode) / p.extLat

	const eps = 1e-9
	budget := dt
	var tP, tD, pTok, dTok float64
	activePeak := 0
	for budget > eps {
		progress := false
		// Admit while batch slots are free.
		for len(p.running) < p.cfg.MaxBatch && p.QueueDepth() > 0 {
			p.running = append(p.running, p.pending[p.pendHead])
			p.pendHead++
			progress = true
		}
		if p.pendHead == len(p.pending) {
			p.pending = p.pending[:0]
			p.pendHead = 0
		}
		// Chunked prefill: drain remaining prompt tokens FIFO, capped
		// by the time budget.
		grant := budget * pRate
		var consumed float64
		for i := range p.running {
			if grant <= eps {
				break
			}
			take := math.Min(p.running[i].prefill, grant)
			if take > 0 {
				p.running[i].prefill -= take
				grant -= take
				consumed += take
			}
		}
		if consumed > 0 {
			use := consumed / pRate
			tP += use
			pTok += consumed
			budget -= use
			progress = true
		}
		// Batched decode: every prefilled sequence generates in fair
		// shares of the aggregate decode rate; one redistribution pass
		// hands short sequences' leftovers to long ones.
		if budget > eps {
			active := 0
			for i := range p.running {
				if p.running[i].prefill <= eps && p.running[i].decode > 0 {
					active++
				}
			}
			if active > activePeak {
				activePeak = active
			}
			if active > 0 {
				avail := budget * dRate
				share := avail / float64(active)
				var done float64
				for i := range p.running {
					if p.running[i].prefill > eps || p.running[i].decode <= 0 {
						continue
					}
					take := math.Min(p.running[i].decode, share)
					p.running[i].decode -= take
					done += take
				}
				if left := avail - done; left > eps {
					for i := range p.running {
						if left <= eps {
							break
						}
						if p.running[i].prefill > eps || p.running[i].decode <= 0 {
							continue
						}
						take := math.Min(p.running[i].decode, left)
						p.running[i].decode -= take
						left -= take
						done += take
					}
				}
				if done > 0 {
					use := done / dRate
					tD += use
					dTok += done
					budget -= use
					progress = true
				}
			}
		}
		// Retire finished sequences, freeing batch slots.
		kept := p.running[:0]
		for _, s := range p.running {
			if s.prefill <= eps && s.decode <= eps {
				p.completed++
				continue
			}
			kept = append(kept, s)
		}
		p.running = kept
		if !progress {
			break
		}
	}

	// Seeded draws happen every step in a fixed order so the stream
	// stays aligned regardless of what the scheduler did.
	moe := 1.0
	if p.cfg.Profile.Experts > 0 {
		draw := 1 + p.cfg.Profile.MoEPowerStd*p.rng.NormFloat64()
		moe = math.Min(1.25, math.Max(0.75, draw))
	}
	noise := 1 + p.cfg.Profile.NoiseStd*p.rng.NormFloat64()
	if noise < 0.5 {
		noise = 0.5
	}

	busy := tP + tD
	util := busy / dt
	if util > 1 {
		util = 1
	}
	mix := 0.0
	if busy > 0 {
		mix = tP / busy
	}
	// Phase-blended power exponent; an idle step falls back to the
	// classic linear law (no inference running, no phase to blend).
	exp := 1.0
	if busy > eps {
		exp = mix*p.cfg.Profile.AlphaPrefill + (1-mix)*p.cfg.Profile.AlphaDecode
	} else {
		moe = 1
	}

	// Observed time per output token: batch share over the decode rate,
	// inflated when prefill starves decode of step time (capped 20x).
	var tpot float64
	switch {
	case dTok > 0:
		starve := dt / math.Max(tD, 0.05*dt)
		tpot = float64(max(activePeak, 1)) / dRate * starve
	case p.decodeWaiting() > 0:
		tpot = float64(p.decodeWaiting()) / dRate * 20
	default:
		tpot = 1 / dRate
	}

	depth := float64(p.QueueDepth())
	prompt := float64(p.cfg.Spec.PromptTokens)
	output := float64(p.cfg.Spec.OutputTokens)
	perReq := prompt/pRate + output/dRate
	st := Stats{
		Throughput:       (pTok + dTok) / dt,
		GPUBatchLatencyS: tpot * noise,
		QueueDelayS:      depth * prompt / pRate,
		GPUUtil:          util,
		CPUUtil:          math.Min(1, 0.08+0.3*util),
		QueueLen:         depth,
		ArrivalRate:      rate * (prompt + output*p.outScale),
		ServiceRate:      (prompt + output) / perReq,
		LLM:              true,
		PrefillShare:     mix,
		QueueDepth:       depth,
		FreqPowerExp:     exp,
		MoEPowerFactor:   moe,
	}
	p.last = st
	return st
}

// decodeWaiting counts running sequences with decode work left (used
// for the starved-TPOT fallback when a step produced no tokens).
func (p *LLMPipeline) decodeWaiting() int {
	n := 0
	for i := range p.running {
		if p.running[i].decode > 0 {
			n++
		}
	}
	return n
}
