package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func googlenetPipeline(t *testing.T) *Pipeline {
	t.Helper()
	p, err := NewPipeline(PipelineConfig{
		Model:           Zoo()["googlenet"],
		Workers:         10,
		PreLatencyBase:  0.13,
		PreLatencyExp:   0.3,
		ArrivalRateMax:  7.3,
		ArrivalExp:      0.5,
		QueueCap:        8,
		ServiceBatchEff: 11.8,
		FcMax:           2.1,
		FgMax:           810,
		Seed:            1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestZooProfiles(t *testing.T) {
	z := Zoo()
	for _, name := range []string{"resnet50", "swin_t", "vgg16", "googlenet"} {
		m, ok := z[name]
		if !ok {
			t.Fatalf("missing profile %q", name)
		}
		if m.EMinBatch <= 0 || m.Gamma <= 0 || m.BatchSize <= 0 {
			t.Fatalf("degenerate profile %+v", m)
		}
	}
}

func TestLatencyLawMonotoneDecreasing(t *testing.T) {
	m := Zoo()["resnet50"]
	prev := math.Inf(1)
	for f := 435.0; f <= 1350; f += 15 {
		e := m.ModelBatchLatency(f, 1350)
		if e >= prev {
			t.Fatalf("latency not decreasing at f=%g: %g >= %g", f, e, prev)
		}
		prev = e
	}
	if got := m.ModelBatchLatency(1350, 1350); math.Abs(got-m.EMinBatch) > 1e-12 {
		t.Fatalf("latency at fmax = %g, want EMin %g", got, m.EMinBatch)
	}
}

func TestTrueLatencyAboveModelAwayFromMax(t *testing.T) {
	// The residual term only adds latency (kappa > 0), and vanishes at fmax.
	m := Zoo()["swin_t"]
	if got, want := m.TrueBatchLatency(1350, 1350), m.EMinBatch; math.Abs(got-want) > 1e-12 {
		t.Fatalf("true latency at fmax = %g, want %g", got, want)
	}
	for f := 435.0; f < 1350; f += 45 {
		if m.TrueBatchLatency(f, 1350) <= m.ModelBatchLatency(f, 1350) {
			t.Fatalf("residual should increase latency at f=%g", f)
		}
	}
}

func TestFreqForLatencyInvertsModel(t *testing.T) {
	m := Zoo()["vgg16"]
	for _, target := range []float64{0.2, 0.3, 0.5, 1.0} {
		f := m.FreqForLatency(target, 1350)
		if f > 1350+1e-9 {
			t.Fatalf("inverted frequency %g above fmax", f)
		}
		e := m.ModelBatchLatency(f, 1350)
		if math.Abs(e-target) > 1e-9*target && f < 1350 {
			t.Fatalf("target %g: freq %g gives latency %g", target, f, e)
		}
	}
	// Unreachable target (below EMin) clamps at fmax.
	if f := m.FreqForLatency(m.EMinBatch/2, 1350); f != 1350 {
		t.Fatalf("unreachable target should clamp to fmax, got %g", f)
	}
	if f := m.FreqForLatency(-1, 1350); f != 1350 {
		t.Fatalf("nonpositive target should clamp to fmax, got %g", f)
	}
}

func TestLatencyDegenerateInputs(t *testing.T) {
	m := Zoo()["resnet50"]
	if !math.IsInf(m.TrueBatchLatency(0, 1350), 1) {
		t.Fatal("zero frequency should give infinite latency")
	}
	if !math.IsInf(m.ModelBatchLatency(-5, 1350), 1) {
		t.Fatal("negative frequency should give infinite latency")
	}
}

func TestPipelineValidation(t *testing.T) {
	base := PipelineConfig{
		Model: Zoo()["resnet50"], Workers: 1, PreLatencyBase: 0.1,
		ArrivalRateMax: 10, FcMax: 2.4, FgMax: 1350,
	}
	bad := base
	bad.Model.BatchSize = 0
	if _, err := NewPipeline(bad); err == nil {
		t.Fatal("expected batch-size error")
	}
	bad = base
	bad.Workers = 0
	if _, err := NewPipeline(bad); err == nil {
		t.Fatal("expected worker error")
	}
	bad = base
	bad.ArrivalRateMax = 0
	if _, err := NewPipeline(bad); err == nil {
		t.Fatal("expected arrival-rate error")
	}
	bad = base
	bad.FgMax = 0
	if _, err := NewPipeline(bad); err == nil {
		t.Fatal("expected fgmax error")
	}
}

func TestPipelineThroughputCPUvsGPUBound(t *testing.T) {
	p := googlenetPipeline(t)
	// Warm up to steady state at (low CPU, high GPU): CPU-bound.
	var cpuBound Stats
	for i := 0; i < 60; i++ {
		cpuBound = p.Step(1, 1.1, 810)
	}
	p.Reset()
	var gpuBound Stats
	for i := 0; i < 60; i++ {
		gpuBound = p.Step(1, 2.1, 495)
	}
	if cpuBound.ArrivalRate >= cpuBound.ServiceRate {
		t.Fatalf("CPU-only config should starve the GPU: arrival %g vs service %g",
			cpuBound.ArrivalRate, cpuBound.ServiceRate)
	}
	if gpuBound.ArrivalRate <= gpuBound.ServiceRate {
		t.Fatalf("GPU-only config should saturate the GPU: arrival %g vs service %g",
			gpuBound.ArrivalRate, gpuBound.ServiceRate)
	}
	// Throughput equals the bottleneck rate (within a few percent).
	if math.Abs(cpuBound.Throughput-cpuBound.ArrivalRate) > 0.15*cpuBound.ArrivalRate {
		t.Fatalf("CPU-bound throughput %g should track arrival %g", cpuBound.Throughput, cpuBound.ArrivalRate)
	}
	if math.Abs(gpuBound.Throughput-gpuBound.ServiceRate) > 0.15*gpuBound.ServiceRate {
		t.Fatalf("GPU-bound throughput %g should track service %g", gpuBound.Throughput, gpuBound.ServiceRate)
	}
}

func TestPipelineMidpointBeatsExtremes(t *testing.T) {
	// The Table-1 shape: balanced mid frequencies outperform both
	// one-sided configurations.
	run := func(fc, fg float64) float64 {
		p := googlenetPipeline(t)
		sum := 0.0
		for i := 0; i < 100; i++ {
			st := p.Step(1, fc, fg)
			if i >= 20 {
				sum += st.Throughput
			}
		}
		return sum / 80
	}
	cpuOnly := run(1.1, 810)
	gpuOnly := run(2.1, 495)
	mid := run(1.6, 660)
	if mid <= cpuOnly || mid <= gpuOnly {
		t.Fatalf("midpoint throughput %g should beat CPU-only %g and GPU-only %g",
			mid, cpuOnly, gpuOnly)
	}
}

func TestPipelineQueueConservation(t *testing.T) {
	// Images are conserved: queue length never negative, never above cap.
	p := googlenetPipeline(t)
	for i := 0; i < 500; i++ {
		fc := 1.1 + 1.0*math.Abs(math.Sin(float64(i)/13))
		fg := 495 + 315*math.Abs(math.Cos(float64(i)/7))
		st := p.Step(1, fc, fg)
		if st.QueueLen < -1e-9 || st.QueueLen > p.Config().QueueCap+1e-9 {
			t.Fatalf("queue length %g outside [0, %g]", st.QueueLen, p.Config().QueueCap)
		}
		if st.Throughput < 0 {
			t.Fatalf("negative throughput %g", st.Throughput)
		}
	}
}

func TestPipelineUtilizationBounds(t *testing.T) {
	f := func(seed int64) bool {
		p, err := NewPipeline(PipelineConfig{
			Model: Zoo()["resnet50"], Workers: 3, PreLatencyBase: 0.01,
			PreLatencyExp: 0.5, ArrivalRateMax: 150, ArrivalExp: 0.6,
			QueueCap: 40, FcMax: 2.4, FgMax: 1350, Seed: seed,
		})
		if err != nil {
			return false
		}
		for i := 0; i < 50; i++ {
			st := p.Step(1, 1.0+1.4*float64(i%7)/6, 435+915*float64(i%5)/4)
			if st.GPUUtil < 0 || st.GPUUtil > 1 || st.CPUUtil < 0 || st.CPUUtil > 1 {
				return false
			}
			if st.QueueDelayS < 0 || math.IsNaN(st.QueueDelayS) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineResetReproducible(t *testing.T) {
	p := googlenetPipeline(t)
	first := make([]float64, 20)
	for i := range first {
		first[i] = p.Step(1, 1.6, 660).GPUBatchLatencyS
	}
	p.Reset()
	for i := range first {
		if got := p.Step(1, 1.6, 660).GPUBatchLatencyS; got != first[i] {
			t.Fatalf("step %d after reset: %g, want %g", i, got, first[i])
		}
	}
}

func TestPipelineZeroDtReturnsLast(t *testing.T) {
	p := googlenetPipeline(t)
	want := p.Step(1, 1.6, 660)
	got := p.Step(0, 2.1, 810)
	if got != want {
		t.Fatal("zero-dt step should return previous stats unchanged")
	}
}

func TestMaxThroughputIsBottleneckAtMax(t *testing.T) {
	p := googlenetPipeline(t)
	mt := p.MaxThroughput()
	service := 11.8 / Zoo()["googlenet"].TrueBatchLatency(810, 810)
	want := math.Min(7.3, service)
	if math.Abs(mt-want) > 1e-9 {
		t.Fatalf("MaxThroughput = %g, want %g", mt, want)
	}
	// Observed steady-state throughput never exceeds it (beyond noise).
	for i := 0; i < 50; i++ {
		st := p.Step(1, 2.1, 810)
		if st.Throughput > mt*1.1 {
			t.Fatalf("throughput %g exceeds max %g", st.Throughput, mt)
		}
	}
}

func TestCPUWorkload(t *testing.T) {
	w, err := NewCPUWorkload(CPUWorkloadConfig{RateAtMax: 40, FcMax: 2.4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	full := w.Step(1, 2.4)
	half := w.Step(1, 1.2)
	if full.Throughput <= half.Throughput {
		t.Fatalf("throughput should rise with frequency: %g vs %g", full.Throughput, half.Throughput)
	}
	if math.Abs(full.LatencyS*full.Throughput-1) > 1e-9 {
		t.Fatalf("latency should be 1/throughput: %g * %g", full.LatencyS, full.Throughput)
	}
	if w.MaxThroughput() != 40 {
		t.Fatalf("MaxThroughput = %g", w.MaxThroughput())
	}
	if w.Last() != half {
		t.Fatal("Last() should return most recent stats")
	}
}

func TestCPUWorkloadLinearScaling(t *testing.T) {
	w, err := NewCPUWorkload(CPUWorkloadConfig{RateAtMax: 100, RateExp: 1, FcMax: 2.0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// With zero noise configured std, scaling is exactly linear.
	got := w.Step(1, 1.0).Throughput
	if math.Abs(got-50) > 1e-9 {
		t.Fatalf("half frequency should halve rate: %g", got)
	}
}

func TestCPUWorkloadValidation(t *testing.T) {
	if _, err := NewCPUWorkload(CPUWorkloadConfig{RateAtMax: 0, FcMax: 2}); err == nil {
		t.Fatal("expected rate error")
	}
	if _, err := NewCPUWorkload(CPUWorkloadConfig{RateAtMax: 10, FcMax: 0}); err == nil {
		t.Fatal("expected fcmax error")
	}
}

func TestCPUWorkloadResetReproducible(t *testing.T) {
	w, err := NewCPUWorkload(CPUWorkloadConfig{RateAtMax: 40, FcMax: 2.4, NoiseStd: 0.05, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	a := w.Step(1, 2.0).Throughput
	w.Reset()
	b := w.Step(1, 2.0).Throughput
	if a != b {
		t.Fatalf("reset not reproducible: %g vs %g", a, b)
	}
}

func BenchmarkPipelineStep(b *testing.B) {
	p, err := NewPipeline(PipelineConfig{
		Model: Zoo()["resnet50"], Workers: 4, PreLatencyBase: 0.02,
		PreLatencyExp: 0.5, ArrivalRateMax: 200, ArrivalExp: 0.5,
		QueueCap: 40, FcMax: 2.4, FgMax: 1350, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Step(1, 2.0, 1000)
	}
}
