package workload

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// llmPipeline builds a standard serving pipeline for tests: the given
// model at the given request rate, seeded.
func llmPipeline(t testing.TB, model string, rate float64, prompt, output int, seed int64) *LLMPipeline {
	t.Helper()
	p, err := NewLLMPipeline(LLMConfig{
		Profile: LLMZoo()[model],
		Spec:    LLMSpec{Model: model, RateReqPerS: rate, PromptTokens: prompt, OutputTokens: output},
		FgMax:   1350,
		Seed:    seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// settle steps the pipeline to a phase steady state and returns the
// mean stats over the last third of the window.
func settle(p *LLMPipeline, periods int, fg float64) (meanExp, meanMix, meanUtil float64) {
	n := 0
	for i := 0; i < periods; i++ {
		st := p.Step(4, 2.4, fg)
		if i >= periods*2/3 {
			meanExp += st.FreqPowerExp
			meanMix += st.PrefillShare
			meanUtil += st.GPUUtil
			n++
		}
	}
	return meanExp / float64(n), meanMix / float64(n), meanUtil / float64(n)
}

// --- Spec parser ---

func TestParseLLMSpecRoundTrip(t *testing.T) {
	for _, in := range []string{
		"llama7b@6:512+160",
		"mixtral@2.2:640+192*8",
		"llama70b@0.5:448+224",
	} {
		spec, err := ParseLLMSpec(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		back, err := ParseLLMSpec(spec.String())
		if err != nil {
			t.Fatalf("%q does not re-parse: %v", spec.String(), err)
		}
		if back != spec {
			t.Fatalf("round trip changed %+v into %+v", spec, back)
		}
	}
}

func TestParseLLMSpecRejects(t *testing.T) {
	for _, in := range []string{
		"",
		"llama7b",
		"llama7b@6",
		"llama7b@6:512",
		"unknownmodel@6:512+160",
		"llama7b@NaN:512+160",
		"llama7b@+Inf:512+160",
		"llama7b@-3:512+160",
		"llama7b@0:512+160",
		"llama7b@1e300:512+160",
		"llama7b@6:0+160",
		"llama7b@6:-5+160",
		"llama7b@6:512+0",
		"llama7b@6:9999999999+160",
		"llama7b@6:512+160*0",
		"llama7b@6:512+160*-2",
		"llama7b@6:512+160*99999",
		"llama7b@6:512+160*NaN",
	} {
		if _, err := ParseLLMSpec(in); err == nil {
			t.Errorf("ParseLLMSpec(%q) accepted", in)
		}
	}
	// Blank entries are tolerated (trailing ';'), an all-blank list is not.
	if _, err := ParseLLMSpecs("llama7b@6:512+160;;"); err != nil {
		t.Errorf("trailing empty entry rejected: %v", err)
	}
	if _, err := ParseLLMSpecs(";"); err == nil {
		t.Error("all-empty list accepted")
	}
}

func TestParseLLMSpecsList(t *testing.T) {
	specs, err := ParseLLMSpecs(" llama7b@6:512+160 ; mixtral@2.2:640+192*8 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].Model != "llama7b" || specs[1].Experts != 8 {
		t.Fatalf("got %+v", specs)
	}
}

// --- Phase-dependent power law (the R2 tentpole property) ---

// TestLLMPhasePowerLawQuick pins the phase-dependent power law over
// random clocks and seeds: the blended frequency-power exponent must
// stay inside [AlphaDecode, AlphaPrefill], a decode-heavy steady state
// must sit near the flat decode exponent (bounded power response to a
// cap step), and a prefill burst must sit near the steep prefill
// exponent (strong response).
func TestLLMPhasePowerLawQuick(t *testing.T) {
	prof := LLMZoo()["llama7b"]
	f := func(seed int64, frRaw float64) bool {
		fg := 435 + math.Mod(math.Abs(frRaw), 1)*(1350-435)

		// Decode-heavy: short prompts, long generations, modest rate.
		dec := llmPipeline(t, "llama7b", 2, 64, 512, seed%1000+1)
		expD, mixD, _ := settle(dec, 30, fg)
		if expD < prof.AlphaDecode-1e-9 || expD > prof.AlphaPrefill+1e-9 {
			t.Logf("decode exponent %g outside [%g, %g]", expD, prof.AlphaDecode, prof.AlphaPrefill)
			return false
		}
		if mixD > 0.35 || expD > 0.45 {
			t.Logf("decode-heavy run not decode-dominated: mix=%g exp=%g", mixD, expD)
			return false
		}

		// Prefill-heavy: long prompts, near-zero generations, high rate.
		pre := llmPipeline(t, "llama7b", 8, 2048, 1, seed%1000+1)
		expP, mixP, _ := settle(pre, 30, fg)
		if mixP < 0.9 || expP < 0.9*prof.AlphaPrefill {
			t.Logf("prefill-heavy run not prefill-dominated: mix=%g exp=%g", mixP, expP)
			return false
		}
		return expP > expD
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestLLMPowerExponentMonotoneInMix: for one profile, the blended
// exponent observed across runs is monotone in the observed prefill
// share — more prefill, steeper power-frequency response.
func TestLLMPowerExponentMonotoneInMix(t *testing.T) {
	type pt struct{ mix, exp float64 }
	var pts []pt
	for _, output := range []int{1, 32, 96, 256, 512, 1024} {
		p := llmPipeline(t, "llama7b", 3, 512, output, 7)
		exp, mix, _ := settle(p, 30, 1350)
		pts = append(pts, pt{mix, exp})
	}
	for i := 1; i < len(pts); i++ {
		a, b := pts[i-1], pts[i]
		if (a.mix-b.mix)*(a.exp-b.exp) < 0 {
			t.Fatalf("exponent not monotone in prefill share: %+v then %+v", a, b)
		}
	}
	if pts[0].mix <= pts[len(pts)-1].mix {
		t.Fatalf("output-length sweep did not sweep the phase mix: %+v", pts)
	}
}

// TestLLMDecodePowerResponseBounded quantifies the two regimes through
// the effective-clock bend the simulator applies (feff/fmax =
// (f/fmax)^exp): halving the clock in a decode-heavy steady state must
// move the effective clock by only a few percent, while the same cap
// step in a prefill burst must move it nearly proportionally.
func TestLLMDecodePowerResponseBounded(t *testing.T) {
	bend := func(exp float64) float64 { return math.Pow(0.5, exp) }

	dec := llmPipeline(t, "llama7b", 2, 64, 512, 3)
	expD, _, _ := settle(dec, 30, 675)
	if r := bend(expD); r < 0.85 {
		t.Fatalf("decode-heavy effective clock fell to %.3f of max on a half-clock step (exp %.3f); want bounded response > 0.85", r, expD)
	}

	pre := llmPipeline(t, "llama7b", 8, 2048, 1, 3)
	expP, _, _ := settle(pre, 30, 675)
	if r := bend(expP); r > 0.6 {
		t.Fatalf("prefill-heavy effective clock only fell to %.3f of max (exp %.3f); want strong response < 0.6", r, expP)
	}
}

// --- Queue conservation (continuous batching) ---

// TestLLMQueueConservationQuick drives random arrival schedules and
// clock trajectories and checks the token-queue ledger every step:
// offered = admitted + shed, admitted = completed + in-flight, and the
// pending queue never exceeds its cap.
func TestLLMQueueConservationQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		models := []string{"llama7b", "mixtral", "llama70b"}
		p := llmPipeline(t, models[rng.Intn(len(models))],
			0.5+6*rng.Float64(), 64+rng.Intn(1024), 1+rng.Intn(512), seed)
		for i := 0; i < 200; i++ {
			if rng.Intn(17) == 0 {
				p.SetArrivalScale(4 * rng.Float64())
			}
			if rng.Intn(23) == 0 {
				p.SetOutputScale(0.05 + rng.Float64())
			}
			fg := 435 + rng.Float64()*(1350-435)
			p.Step(0.5+4*rng.Float64(), 2.4, fg)

			offered, admitted, completed, shed := p.Counters()
			if offered != admitted+shed {
				t.Logf("step %d: offered %d != admitted %d + shed %d", i, offered, admitted, shed)
				return false
			}
			if admitted != completed+int64(p.InFlight()) {
				t.Logf("step %d: admitted %d != completed %d + in-flight %d", i, admitted, completed, p.InFlight())
				return false
			}
			if d := p.QueueDepth(); d < 0 || d > p.Config().QueueCap {
				t.Logf("step %d: queue depth %d outside [0, %d]", i, d, p.Config().QueueCap)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// --- Queue edge cases ---

func TestLLMEmptyQueueIdles(t *testing.T) {
	p := llmPipeline(t, "llama7b", 5, 512, 160, 1)
	p.SetArrivalScale(0)
	st := p.Step(4, 2.4, 1350)
	if st.GPUUtil != 0 || st.Throughput != 0 || st.PrefillShare != 0 {
		t.Fatalf("idle pipeline reported work: %+v", st)
	}
	// An idle step has no phase to blend: the exponent falls back to
	// the classic linear law and MoE variance is pinned to dense.
	if st.FreqPowerExp != 1 || st.MoEPowerFactor != 1 {
		t.Fatalf("idle step law: exp=%g moe=%g, want 1/1", st.FreqPowerExp, st.MoEPowerFactor)
	}
}

func TestLLMSingleGiantPrompt(t *testing.T) {
	p := llmPipeline(t, "llama70b", 1, 512, 64, 1)
	p.SetArrivalScale(0)
	ok, err := p.Inject(maxSpecTokens, 1)
	if err != nil || !ok {
		t.Fatalf("inject giant prompt: ok=%v err=%v", ok, err)
	}
	st := p.Step(4, 2.4, 1350)
	if st.PrefillShare != 1 || st.GPUUtil != 1 {
		t.Fatalf("giant prompt did not saturate prefill: mix=%g util=%g", st.PrefillShare, st.GPUUtil)
	}
	// Keep stepping: the sequence must eventually retire and the ledger
	// must close.
	for i := 0; i < 10000 && p.InFlight() > 0; i++ {
		p.Step(4, 2.4, 1350)
	}
	offered, admitted, completed, shed := p.Counters()
	if p.InFlight() != 0 || offered != 1 || admitted != 1 || completed != 1 || shed != 0 {
		t.Fatalf("giant prompt never drained: in-flight %d, counters %d/%d/%d/%d",
			p.InFlight(), offered, admitted, completed, shed)
	}

	if _, err := p.Inject(0, 1); err == nil {
		t.Fatal("Inject(0, 1) accepted")
	}
	if _, err := p.Inject(1, maxSpecTokens+1); err == nil {
		t.Fatal("Inject over token cap accepted")
	}
}

func TestLLMBurstPastCapacitySheds(t *testing.T) {
	p := llmPipeline(t, "llama7b", 5, 512, 160, 1)
	p.SetArrivalScale(0)
	// Admission capacity counts pending plus running; nothing has run,
	// so the whole cap is queue.
	capTotal := p.Config().QueueCap
	accepted := 0
	for i := 0; i < capTotal+50; i++ {
		ok, err := p.Inject(512, 160)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			accepted++
		}
	}
	offered, admitted, _, shed := p.Counters()
	if shed != 50 || admitted != int64(capTotal) || accepted != capTotal {
		t.Fatalf("burst ledger: offered %d admitted %d shed %d accepted %d (capacity %d)",
			offered, admitted, shed, accepted, capTotal)
	}
	if d := p.QueueDepth(); d != p.Config().QueueCap {
		t.Fatalf("queue depth %d, want full cap %d", d, p.Config().QueueCap)
	}
}

func TestLLMDrainToEmpty(t *testing.T) {
	// Saturate at a low clock so a backlog builds before the drain.
	p := llmPipeline(t, "mixtral", 8, 640, 192, 9)
	for i := 0; i < 40; i++ {
		p.Step(4, 2.4, 500)
	}
	if p.InFlight() == 0 {
		t.Fatal("warmup left no work in flight")
	}
	p.SetArrivalScale(0)
	drained := false
	for i := 0; i < 2000; i++ {
		st := p.Step(4, 2.4, 1350)
		if p.InFlight() == 0 && p.QueueDepth() == 0 {
			if st.QueueDepth != 0 {
				t.Fatalf("stats queue depth %g after drain", st.QueueDepth)
			}
			drained = true
			break
		}
	}
	if !drained {
		t.Fatal("pipeline never drained after arrivals stopped")
	}
	offered, admitted, completed, shed := p.Counters()
	if admitted != completed || offered != admitted+shed {
		t.Fatalf("drained ledger does not close: %d/%d/%d/%d", offered, admitted, completed, shed)
	}
}

func TestLLMZeroLengthStep(t *testing.T) {
	p := llmPipeline(t, "llama7b", 5, 512, 160, 1)
	st1 := p.Step(4, 2.4, 1000)
	st2 := p.Step(0, 2.4, 500)
	if st1 != st2 {
		t.Fatalf("zero-dt step changed stats: %+v vs %+v", st1, st2)
	}
	if st3 := p.Step(-1, 2.4, 500); st3 != st1 {
		t.Fatalf("negative-dt step changed stats: %+v", st3)
	}
}

func TestLLMResetReproducible(t *testing.T) {
	run := func(p *LLMPipeline) []Stats {
		out := make([]Stats, 60)
		for i := range out {
			fg := 435 + 915*math.Abs(math.Sin(float64(i)/5))
			out[i] = p.Step(4, 2.4, fg)
		}
		return out
	}
	p := llmPipeline(t, "mixtral", 3, 640, 192, 42)
	a := run(p)
	p.Reset()
	b := run(p)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d diverged after Reset: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestLLMConfigValidation(t *testing.T) {
	base := LLMConfig{
		Profile: LLMZoo()["llama7b"],
		Spec:    LLMSpec{Model: "llama7b", RateReqPerS: 5, PromptTokens: 512, OutputTokens: 160},
		FgMax:   1350,
	}
	if _, err := NewLLMPipeline(base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := base
	bad.FgMax = 0
	if _, err := NewLLMPipeline(bad); err == nil {
		t.Error("FgMax 0 accepted")
	}
	bad = base
	bad.Spec.RateReqPerS = math.NaN()
	if _, err := NewLLMPipeline(bad); err == nil {
		t.Error("NaN rate accepted")
	}
	bad = base
	bad.Profile.PrefillTokPerS = 0
	if _, err := NewLLMPipeline(bad); err == nil {
		t.Error("zero prefill rate accepted")
	}
}

func TestLLMZooWellFormed(t *testing.T) {
	zoo := LLMZoo()
	if len(zoo) < 3 {
		t.Fatalf("zoo has %d profiles", len(zoo))
	}
	for name, prof := range zoo {
		if !strings.EqualFold(prof.Name, name) {
			t.Errorf("%s: profile name %q", name, prof.Name)
		}
		if prof.AlphaPrefill <= prof.AlphaDecode {
			t.Errorf("%s: prefill exponent %g not above decode %g — the phase law would not separate regimes",
				name, prof.AlphaPrefill, prof.AlphaDecode)
		}
		if prof.PrefillTokPerS <= prof.DecodeTokPerS {
			t.Errorf("%s: prefill rate %g not above decode rate %g", name, prof.PrefillTokPerS, prof.DecodeTokPerS)
		}
		if prof.Experts > 0 && prof.MoEPowerStd <= 0 {
			t.Errorf("%s: MoE profile without power variance", name)
		}
	}
}

// --- Benchmarks (ratcheted in BENCH_FLOORS.json as llm-step / llm-queue) ---

func BenchmarkLLMStep(b *testing.B) {
	p := llmPipeline(b, "llama7b", 6, 512, 160, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Step(4, 2.4, 900)
	}
}

func BenchmarkLLMQueueOps(b *testing.B) {
	p := llmPipeline(b, "llama7b", 0.001, 64, 8, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Inject(64, 8)
		p.Step(4, 2.4, 1350)
	}
}
