// Package workload models the ML inference pipelines that run on the
// simulated GPU server: CPU preprocessing workers feeding a shared queue
// consumed by a GPU running batched inference, plus the CPU-side
// exhaustive-feature-selection workload.
//
// The GPU batch latency follows the paper's frequency-scaling law
// (Eq. 8/10b):
//
//	e(f_g) = e_min · (f_{g,max}/f_g)^γ,  γ ≈ 0.91
//
// with a deliberate unmodeled residual and noise so that fitting the
// pure law against "measured" latencies yields R² ≈ 0.91 as in Fig. 2b.
// The queue model reproduces the motivation experiment's structure
// (Table 1): the delay an image sees is batch-fill waiting (dominant
// when the CPU is the bottleneck and the GPU starves) plus queueing
// (dominant when the GPU is the bottleneck and the queue saturates).
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// ModelProfile describes one deep-learning inference model's behavior on
// a given GPU class. EMinBatch is the batch latency at the GPU's maximum
// core clock; Gamma is the latency-scaling exponent; ResidualKappa bends
// the *true* latency away from the pure power law (the controller's
// model never sees this term, mirroring real model error).
type ModelProfile struct {
	Name          string
	EMinBatch     float64 // seconds per batch at f_g = f_{g,max}
	Gamma         float64 // frequency-scaling exponent (paper: 0.91)
	ResidualKappa float64 // curvature of the unmodeled residual
	BatchSize     int     // images per inference batch
	NoiseStd      float64 // multiplicative latency noise std
}

// Zoo returns the model profiles used across the experiments. e_min
// values are scaled to a V100-16GB class device at 1350 MHz with batch
// size 20 (t1–t3 of §6.1); GoogLeNet is scaled to the RTX-3090 rig of
// the motivation experiment (§3.2), whose usable clock window in the
// paper is 495–810 MHz.
func Zoo() map[string]ModelProfile {
	return map[string]ModelProfile{
		"resnet50": {Name: "resnet50", EMinBatch: 0.090, Gamma: 0.91, ResidualKappa: 0.06, BatchSize: 20, NoiseStd: 0.02},
		"swin_t":   {Name: "swin_t", EMinBatch: 0.240, Gamma: 0.91, ResidualKappa: 0.08, BatchSize: 20, NoiseStd: 0.02},
		"vgg16":    {Name: "vgg16", EMinBatch: 0.180, Gamma: 0.91, ResidualKappa: 0.05, BatchSize: 20, NoiseStd: 0.02},
		// GoogLeNet profile referenced to f_max = 810 MHz (Table 1 rig).
		"googlenet": {Name: "googlenet", EMinBatch: 1.30, Gamma: 0.91, ResidualKappa: 0.04, BatchSize: 20, NoiseStd: 0.015},
	}
}

// EMinForBatch returns the best-case (f = f_max) batch latency at an
// arbitrary batch size: a fixed launch/assembly overhead plus a
// per-image term, calibrated so EMinForBatch(BatchSize) == EMinBatch.
// This is the latency-vs-batch trade the dynamic-batching literature
// (Nabavinejad et al., Khan et al.) exploits: smaller batches cut
// latency but waste overhead.
func (m ModelProfile) EMinForBatch(batch int) float64 {
	if batch <= 0 {
		return math.Inf(1)
	}
	overhead := 0.2 * m.EMinBatch
	perImage := 0.8 * m.EMinBatch / float64(m.BatchSize)
	return overhead + perImage*float64(batch)
}

// TrueBatchLatency returns the simulator's ground-truth batch latency at
// GPU frequency fg (MHz) given the profile's reference clock fgMax. The
// residual term is what system identification cannot capture.
func (m ModelProfile) TrueBatchLatency(fg, fgMax float64) float64 {
	return m.TrueBatchLatencyAt(fg, fgMax, m.BatchSize)
}

// TrueBatchLatencyAt is TrueBatchLatency at an arbitrary batch size.
func (m ModelProfile) TrueBatchLatencyAt(fg, fgMax float64, batch int) float64 {
	if fg <= 0 || fgMax <= 0 || batch <= 0 {
		return math.Inf(1)
	}
	ratio := fgMax / fg
	base := m.EMinForBatch(batch) * math.Pow(ratio, m.Gamma)
	resid := 1 + m.ResidualKappa*(ratio-1)*(ratio-1)
	return base * resid
}

// ModelBatchLatency returns the latency the *controller's* model
// predicts — the pure power law of Eq. (10b), no residual.
func (m ModelProfile) ModelBatchLatency(fg, fgMax float64) float64 {
	if fg <= 0 || fgMax <= 0 {
		return math.Inf(1)
	}
	return m.EMinBatch * math.Pow(fgMax/fg, m.Gamma)
}

// ModelBatchLatencyAt is the controller-model latency at an arbitrary
// batch size.
func (m ModelProfile) ModelBatchLatencyAt(fg, fgMax float64, batch int) float64 {
	if fg <= 0 || fgMax <= 0 || batch <= 0 {
		return math.Inf(1)
	}
	return m.EMinForBatch(batch) * math.Pow(fgMax/fg, m.Gamma)
}

// FreqForLatency inverts the model law: the minimum GPU frequency at
// which predicted latency meets the target (Eq. 10b,c solved for f_g).
func (m ModelProfile) FreqForLatency(target, fgMax float64) float64 {
	if target <= 0 || m.Gamma <= 0 {
		return fgMax
	}
	if target <= m.EMinBatch {
		return fgMax
	}
	return fgMax * math.Pow(m.EMinBatch/target, 1/m.Gamma)
}

// PipelineConfig describes one GPU's inference pipeline.
type PipelineConfig struct {
	Model ModelProfile
	// Workers is the number of dedicated CPU preprocessing processes.
	Workers int
	// PreLatencyBase is the per-image preprocessing time of one worker
	// at the CPU's maximum frequency (seconds per image).
	PreLatencyBase float64
	// PreLatencyExp is the frequency sensitivity of preprocessing
	// (t = base·(f_max/f)^exp). Torchvision-style transforms are partly
	// memory-bound, so this is below 1.
	PreLatencyExp float64
	// ArrivalRateMax is the pipeline's image arrival capacity (img/s)
	// with the CPU at maximum frequency; it folds in queue handoff and
	// consumer-thread contention, which is why it is not simply
	// Workers/PreLatencyBase.
	ArrivalRateMax float64
	// ArrivalExp is the frequency sensitivity of the arrival capacity.
	ArrivalExp float64
	// QueueCap is the shared queue capacity in images (backpressure
	// stalls the workers when full).
	QueueCap float64
	// ServiceBatchEff is the effective images completed per batch
	// latency; it is below BatchSize when batches run partially filled
	// or per-batch launch overhead bites (Table 1's rig). Defaults to
	// BatchSize.
	ServiceBatchEff float64
	// FcMax and FgMax are the reference maximum frequencies (GHz, MHz).
	FcMax, FgMax float64
	Seed         int64
}

// Pipeline is the discrete-time state of one inference pipeline.
type Pipeline struct {
	cfg   PipelineConfig
	rng   *rand.Rand
	queue float64 // images waiting
	// extLat multiplies the true batch latency; the simulator uses it to
	// impose memory-throttle penalties. Always >= 1 in practice.
	extLat float64
	// batch is the live batch size (defaults to the model's BatchSize;
	// adjustable at run time by batching controllers).
	batch int
	// arrScale multiplies the offered arrival rate (1 = nominal). Load
	// generators use it to impose diurnal/bursty traffic open-loop.
	arrScale float64

	last Stats
}

// Stats reports one step's observable pipeline behavior.
type Stats struct {
	Throughput       float64 // completed inferences, images/second
	GPUBatchLatencyS float64 // observed seconds per batch (with noise)
	QueueDelayS      float64 // seconds an image spends queued (incl. batch fill)
	PreLatencyS      float64 // per-worker preprocessing seconds per image
	GPUUtil          float64 // 0..1
	CPUUtil          float64 // 0..1, utilization of the feeder cores
	QueueLen         float64 // images in queue at end of step
	ArrivalRate      float64 // images/second offered by preprocessing
	ServiceRate      float64 // images/second the GPU could complete

	// LLM-family extensions; all zero for CNN pipelines, so legacy
	// consumers (and the seeded-replay goldens) are untouched.
	LLM            bool    // true when emitted by an LLMPipeline
	PrefillShare   float64 // fraction of busy GPU time spent prefilling, 0..1
	QueueDepth     float64 // requests pending admission at end of step
	FreqPowerExp   float64 // phase-blended power-vs-frequency exponent
	MoEPowerFactor float64 // seeded expert-activation power multiplier (1 = dense)
}

// NewPipeline validates the config and returns a pipeline.
func NewPipeline(cfg PipelineConfig) (*Pipeline, error) {
	if cfg.Model.BatchSize <= 0 {
		return nil, fmt.Errorf("workload: batch size %d must be positive", cfg.Model.BatchSize)
	}
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("workload: worker count %d must be positive", cfg.Workers)
	}
	if cfg.ArrivalRateMax <= 0 || cfg.PreLatencyBase <= 0 {
		return nil, fmt.Errorf("workload: arrival rate and preprocess latency must be positive")
	}
	if cfg.FcMax <= 0 || cfg.FgMax <= 0 {
		return nil, fmt.Errorf("workload: reference frequencies must be positive")
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 4 * float64(cfg.Model.BatchSize)
	}
	if cfg.ServiceBatchEff <= 0 {
		cfg.ServiceBatchEff = float64(cfg.Model.BatchSize)
	}
	return &Pipeline{cfg: cfg, extLat: 1, arrScale: 1, batch: cfg.Model.BatchSize, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Config returns the pipeline configuration.
func (p *Pipeline) Config() PipelineConfig { return p.cfg }

// Last returns the stats of the most recent step.
func (p *Pipeline) Last() Stats { return p.last }

// SetArrivalScale sets the open-loop arrival multiplier (1 = nominal,
// the constructor default). Values <= 0 are clamped to 0 (no traffic).
func (p *Pipeline) SetArrivalScale(f float64) {
	if f < 0 {
		f = 0
	}
	p.arrScale = f
}

// ArrivalScale returns the current open-loop arrival multiplier.
func (p *Pipeline) ArrivalScale() float64 { return p.arrScale }

// MaxThroughput returns the pipeline's best achievable throughput, used
// to normalize per-device throughput for the weight assignment
// algorithm (§3.1, step 2).
func (p *Pipeline) MaxThroughput() float64 {
	service := p.cfg.ServiceBatchEff / p.cfg.Model.TrueBatchLatency(p.cfg.FgMax, p.cfg.FgMax)
	return math.Min(p.cfg.ArrivalRateMax, service)
}

// Step advances the pipeline by dt seconds with the CPU at fc GHz and
// the GPU at fg MHz, returning the step's stats.
func (p *Pipeline) Step(dt, fc, fg float64) Stats {
	c := p.cfg
	if dt <= 0 {
		return p.last
	}
	fc = math.Max(fc, 1e-6)
	fg = math.Max(fg, 1e-6)

	// Offered arrival rate from the preprocessing stage.
	lambda := p.arrScale * c.ArrivalRateMax * math.Pow(fc/c.FcMax, c.ArrivalExp)
	// GPU service capability at the live batch size.
	eTrue := c.Model.TrueBatchLatencyAt(fg, c.FgMax, p.batch)
	if p.extLat > 1 {
		eTrue *= p.extLat
	}
	noise := 1 + c.Model.NoiseStd*p.rng.NormFloat64()
	if noise < 0.5 {
		noise = 0.5
	}
	eObs := eTrue * noise
	// Effective images per batch time scales with the live batch size.
	beff := c.ServiceBatchEff * float64(p.batch) / float64(c.Model.BatchSize)
	mu := beff / eTrue

	// Queue update with backpressure: arrivals beyond capacity are
	// shed by stalling workers (reduces effective CPU utilization).
	room := c.QueueCap - p.queue + mu*dt
	arr := math.Min(lambda*dt, math.Max(room, 0))
	served := math.Min(p.queue+arr, mu*dt)
	p.queue = math.Min(math.Max(p.queue+arr-served, 0), c.QueueCap)

	throughput := served / dt
	rho := math.Min(lambda/mu, 1)
	// Steady-state queueing estimate (M/M/1-like, capped) keeps the
	// reported delay smooth at the control period granularity.
	qSteady := math.Min(rho*rho/math.Max(1-rho, 0.02), c.QueueCap)
	fillDelay := float64(p.batch) / (2 * math.Max(lambda, 1e-9))
	queueDelay := qSteady/math.Max(mu, 1e-9) + fillDelay

	preLat := c.PreLatencyBase * math.Pow(c.FcMax/fc, c.PreLatencyExp)

	p.last = Stats{
		Throughput:       throughput,
		GPUBatchLatencyS: eObs,
		QueueDelayS:      queueDelay,
		PreLatencyS:      preLat,
		GPUUtil:          math.Min(throughput/mu, 1),
		CPUUtil:          math.Min(throughput/math.Max(lambda, 1e-9), 1),
		QueueLen:         p.queue,
		ArrivalRate:      lambda,
		ServiceRate:      mu,
	}
	return p.last
}

// SetBatchSize adjusts the live batch size (≥ 1); batching controllers
// use it to trade throughput efficiency for per-batch latency.
func (p *Pipeline) SetBatchSize(b int) error {
	if b < 1 {
		return fmt.Errorf("workload: batch size %d must be >= 1", b)
	}
	p.batch = b
	return nil
}

// BatchSize returns the live batch size.
func (p *Pipeline) BatchSize() int { return p.batch }

// SetExternalLatencyFactor imposes an external multiplicative latency
// penalty (>= 1), e.g. a memory-clock throttle. Values below 1 are
// clamped to 1.
func (p *Pipeline) SetExternalLatencyFactor(f float64) {
	if f < 1 {
		f = 1
	}
	p.extLat = f
}

// Reset clears queue state and reseeds the noise stream so repeated
// experiment runs are independent of each other but reproducible.
func (p *Pipeline) Reset() {
	p.queue = 0
	p.extLat = 1
	p.batch = p.cfg.Model.BatchSize
	p.rng = rand.New(rand.NewSource(p.cfg.Seed))
	p.last = Stats{}
}

// CPUWorkloadConfig describes the host-CPU batch workload (exhaustive
// feature selection in the paper).
type CPUWorkloadConfig struct {
	// RateAtMax is subsets evaluated per second at the CPU's maximum
	// frequency (calibrate against internal/fsel; see
	// examples/featureselect).
	RateAtMax float64
	// RateExp is the frequency sensitivity (CPU-bound => ~1).
	RateExp float64
	FcMax   float64
	// NoiseStd is multiplicative throughput noise.
	NoiseStd float64
	Seed     int64
}

// CPUWorkload models the feature-selection job's observable behavior.
type CPUWorkload struct {
	cfg  CPUWorkloadConfig
	rng  *rand.Rand
	last CPUStats
}

// CPUStats reports the CPU workload's per-step observables.
type CPUStats struct {
	Throughput float64 // feature subsets per second
	LatencyS   float64 // seconds per subset (cross-validation wall time)
	Util       float64 // utilization of the workload's cores
}

// NewCPUWorkload validates the config and returns a workload.
func NewCPUWorkload(cfg CPUWorkloadConfig) (*CPUWorkload, error) {
	if cfg.RateAtMax <= 0 || cfg.FcMax <= 0 {
		return nil, fmt.Errorf("workload: cpu workload rate and fcmax must be positive")
	}
	if cfg.RateExp == 0 {
		cfg.RateExp = 1
	}
	return &CPUWorkload{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Step advances the CPU workload by dt seconds at frequency fc (GHz).
func (w *CPUWorkload) Step(dt, fc float64) CPUStats {
	fc = math.Max(fc, 1e-6)
	//lint:ignore floatsafety NewCPUWorkload rejects configs with FcMax <= 0
	rate := w.cfg.RateAtMax * math.Pow(fc/w.cfg.FcMax, w.cfg.RateExp)
	rate *= 1 + w.cfg.NoiseStd*w.rng.NormFloat64()
	if rate < 1e-9 {
		rate = 1e-9
	}
	w.last = CPUStats{
		Throughput: rate,
		LatencyS:   1 / rate,
		Util:       1, // batch job: always runnable
	}
	return w.last
}

// Last returns the stats of the most recent step.
func (w *CPUWorkload) Last() CPUStats { return w.last }

// MaxThroughput returns the workload's best achievable rate.
func (w *CPUWorkload) MaxThroughput() float64 { return w.cfg.RateAtMax }

// Reset reseeds the workload's noise stream.
func (w *CPUWorkload) Reset() {
	w.rng = rand.New(rand.NewSource(w.cfg.Seed))
	w.last = CPUStats{}
}
