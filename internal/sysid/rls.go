package sysid

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// RLS performs recursive least-squares identification of the linear
// power model p = Gains·F + C with exponential forgetting, so the model
// tracks workload-induced gain changes online — the situation §4.4
// analyzes ("the estimated model parameters (i.e., entries of A) change
// due to different workloads"). Each control period the controller feeds
// the applied frequency vector and the measured power; the estimate is
// available at any time as a Model.
type RLS struct {
	theta  []float64 // [gains..., offset]
	p      *mat.Mat  // covariance of the estimate
	lambda float64   // forgetting factor in (0, 1]
	n      int       // number of knobs
	count  int       // updates absorbed
	// maxTrace caps the covariance trace: with exponential forgetting
	// and the weak, collinear excitation of closed-loop operation, P
	// otherwise grows without bound along unexcited directions until a
	// noisy sample throws the estimate into garbage (covariance windup).
	maxTrace float64
}

// NewRLS builds an estimator for nKnobs frequency knobs. initial may be
// nil (zero start) or a previously identified Model to warm-start from.
// lambda is the forgetting factor: 1 = infinite memory, 0.98 ≈ a ~50
// period horizon. initCov scales the initial covariance (uncertainty);
// use a large value (1e4) for a cold start, a small one (1e1) when
// warm-starting from a trusted model.
func NewRLS(nKnobs int, initial *Model, lambda, initCov float64) (*RLS, error) {
	if nKnobs <= 0 {
		return nil, fmt.Errorf("sysid: rls needs at least one knob")
	}
	if lambda <= 0 || lambda > 1 {
		return nil, fmt.Errorf("sysid: forgetting factor %g outside (0, 1]", lambda)
	}
	if initCov <= 0 {
		return nil, fmt.Errorf("sysid: initial covariance %g must be positive", initCov)
	}
	r := &RLS{
		theta:    make([]float64, nKnobs+1),
		p:        mat.Identity(nKnobs + 1).Scale(initCov),
		lambda:   lambda,
		n:        nKnobs,
		maxTrace: initCov * float64(nKnobs+1),
	}
	if initial != nil {
		if len(initial.Gains) != nKnobs {
			return nil, fmt.Errorf("sysid: warm start has %d gains, want %d", len(initial.Gains), nKnobs)
		}
		copy(r.theta, initial.Gains)
		r.theta[nKnobs] = initial.Offset
	}
	return r, nil
}

// Update absorbs one observation: the knob vector applied during a
// period and the period's average measured power. It returns the
// prediction error before the update (the innovation), useful for
// monitoring model quality.
func (r *RLS) Update(knobs []float64, powerW float64) (innovation float64, err error) {
	if len(knobs) != r.n {
		return 0, fmt.Errorf("sysid: rls update with %d knobs, want %d", len(knobs), r.n)
	}
	// Regressor x = [F; 1].
	x := make([]float64, r.n+1)
	copy(x, knobs)
	x[r.n] = 1

	pred := mat.Dot(r.theta, x)
	innovation = powerW - pred

	// Standard RLS with forgetting:
	//   k = P x / (λ + xᵀ P x)
	//   θ ← θ + k·innovation
	//   P ← (P − k xᵀ P) / λ
	px := r.p.MulVec(x)
	denom := r.lambda + mat.Dot(x, px)
	if denom <= 0 {
		return innovation, fmt.Errorf("sysid: rls covariance collapsed (denominator %g)", denom)
	}
	k := mat.ScaleVec(1/denom, px)
	mat.Axpy(innovation, k, r.theta)
	// P update: P = (P - k (xᵀP)) / λ; xᵀP = pxᵀ because P is symmetric.
	kxp := mat.OuterProduct(k, px)
	r.p = r.p.SubMat(kxp).Scale(1 / r.lambda)
	// Re-symmetrize against numerical drift.
	r.p = r.p.AddMat(r.p.T()).Scale(0.5)
	// Anti-windup: never let the uncertainty exceed its initial level.
	if tr := r.p.Trace(); tr > r.maxTrace {
		r.p = r.p.Scale(r.maxTrace / tr)
	}
	r.count++
	return innovation, nil
}

// Count returns the number of observations absorbed.
func (r *RLS) Count() int { return r.count }

// Model snapshots the current estimate. Gains that have drifted
// non-positive are floored at a small positive value so downstream
// controllers (which require positive gains) remain usable; a persistent
// floor signals a broken excitation regime.
func (r *RLS) Model() *Model {
	g := make([]float64, r.n)
	for i := 0; i < r.n; i++ {
		g[i] = math.Max(r.theta[i], 1e-6)
	}
	return &Model{Gains: g, Offset: r.theta[r.n], N: r.count}
}

// Uncertainty returns the trace of the covariance, a scalar summary of
// how settled the estimate is.
func (r *RLS) Uncertainty() float64 {
	return r.p.Trace()
}
