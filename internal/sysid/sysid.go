// Package sysid implements the paper's system identification (§4.2):
// the server's power is modeled as a linear function of the CPU and GPU
// frequencies,
//
//	p = Σ_j A_j·f_cj + Σ_i B_i·f_gi + C            (Eq. 3)
//
// and the coefficients are recovered by exciting one knob at a time
// (sweep the GPU clock with the CPU held fixed, then vice versa, exactly
// as in the paper's example) and solving the stacked observations by
// least squares. The fit quality is reported as R² (the paper obtains
// 0.96 on its testbed; the simulator's deliberate nonlinearity yields a
// comparable value).
//
// The package also fits the inference-latency law of Eq. (8)/(10b),
// e = e_min·(f_max/f_g)^γ, by log-log regression (Fig. 2b).
package sysid

import (
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/sim"
)

// Record is one identification observation: the applied frequency vector
// (CPU first, in GHz; then GPUs, in MHz) and the average measured power.
type Record struct {
	//lint:ignore units mixed-unit knob vector by design: knob 0 is CPU GHz, the rest GPU MHz
	Freqs  []float64
	PowerW float64
}

// Model is the identified linear power model p = Gains·F + Offset.
type Model struct {
	Gains  []float64 // one per knob, CPU first
	Offset float64   // the constant C
	R2     float64   // coefficient of determination on the fit data
	N      int       // observations used
	// Cond is the condition number of the column-scaled excitation
	// matrix: how independently the schedule exercised the knobs. Values
	// near 1 mean every gain direction was excited; large values mean
	// some gain combination is poorly determined (e.g. two GPUs swept in
	// lockstep) and the corresponding coefficients should not be
	// trusted individually.
	Cond float64
}

// Predict evaluates the model at a knob-frequency vector (knob 0 in GHz, GPU knobs in MHz).
func (m *Model) Predict(knobs []float64) (float64, error) {
	if len(knobs) != len(m.Gains) {
		return 0, fmt.Errorf("sysid: %d frequencies for %d gains", len(knobs), len(m.Gains))
	}
	return mat.Dot(m.Gains, knobs) + m.Offset, nil
}

// Fit solves for the model coefficients by least squares over the
// records. All records must have the same knob count.
func Fit(records []Record) (*Model, error) {
	if len(records) == 0 {
		return nil, fmt.Errorf("sysid: no records")
	}
	n := len(records[0].Freqs)
	if n == 0 {
		return nil, fmt.Errorf("sysid: records have no knobs")
	}
	if len(records) < n+1 {
		return nil, fmt.Errorf("sysid: %d records cannot identify %d gains + offset", len(records), n)
	}
	a := mat.New(len(records), n+1)
	b := make([]float64, len(records))
	for i, r := range records {
		if len(r.Freqs) != n {
			return nil, fmt.Errorf("sysid: record %d has %d knobs, want %d", i, len(r.Freqs), n)
		}
		for j, f := range r.Freqs {
			a.Set(i, j, f)
		}
		a.Set(i, n, 1)
		b[i] = r.PowerW
	}
	// A touch of ridge keeps the solve robust when an excitation
	// schedule leaves two knobs perfectly collinear.
	x, err := mat.RidgeLeastSquares(a, b, 1e-9)
	if err != nil {
		return nil, fmt.Errorf("sysid: fit: %w", err)
	}
	m := &Model{Gains: x[:n], Offset: x[n], N: len(records)}
	m.Cond = excitationCond(a)
	pred := make([]float64, len(records))
	for i, r := range records {
		p, _ := m.Predict(r.Freqs)
		pred[i] = p
	}
	m.R2 = mat.RSquared(b, pred)
	return m, nil
}

// excitationCond returns the condition number of the design matrix with
// each column scaled to unit max-abs (so GHz and MHz knobs compare
// fairly); NaN if the SVD fails.
func excitationCond(a *mat.Mat) float64 {
	scaled := a.Clone()
	for j := 0; j < scaled.Cols; j++ {
		maxAbs := 0.0
		for i := 0; i < scaled.Rows; i++ {
			if v := math.Abs(scaled.At(i, j)); v > maxAbs {
				maxAbs = v
			}
		}
		if maxAbs == 0 {
			continue
		}
		for i := 0; i < scaled.Rows; i++ {
			scaled.Set(i, j, scaled.At(i, j)/maxAbs)
		}
	}
	svd, err := mat.FactorSVD(scaled)
	if err != nil {
		return math.NaN()
	}
	return svd.Cond()
}

// ExciteConfig tunes the on-server excitation schedule.
type ExciteConfig struct {
	// LevelsPerKnob is how many evenly spaced levels to visit per knob
	// (default 8; the paper visits the discrete levels of each device).
	LevelsPerKnob int
	// DwellSeconds is how long to hold each level, averaging the power
	// samples over the dwell (default 4, one control period).
	DwellSeconds int
	// SettleSeconds discards this many seconds after each change before
	// sampling (default 1).
	SettleSeconds int
}

func (c *ExciteConfig) defaults() ExciteConfig {
	out := *c
	if out.LevelsPerKnob == 0 {
		out.LevelsPerKnob = 8
	}
	if out.DwellSeconds == 0 {
		out.DwellSeconds = 4
	}
	if out.SettleSeconds == 0 {
		out.SettleSeconds = 1
	}
	return out
}

// Identify runs the paper's excitation schedule against a simulated
// server: for each knob in turn, sweep it across its range while the
// other knobs sit at mid-range, recording average power per level. The
// CPU is knob 0; GPUs follow. Workloads should already be attached so
// utilization is representative.
func Identify(s *sim.Server, cfg ExciteConfig) (*Model, []Record, error) {
	c := cfg.defaults()
	nKnobs := 1 + s.NumGPUs()

	mins := make([]float64, nKnobs)
	maxs := make([]float64, nKnobs)
	mins[0] = s.Config().CPU.FreqMinGHz
	maxs[0] = s.Config().CPU.FreqMaxGHz
	for i := 0; i < s.NumGPUs(); i++ {
		mins[1+i] = s.Config().GPUs[i].FreqMinMHz
		maxs[1+i] = s.Config().GPUs[i].FreqMaxMHz
	}

	apply := func(f []float64) error {
		s.SetCPUFreq(f[0])
		for i := 0; i < s.NumGPUs(); i++ {
			if _, err := s.SetGPUFreq(i, f[1+i]); err != nil {
				return err
			}
		}
		return nil
	}

	var records []Record
	point := make([]float64, nKnobs)
	for sweep := 0; sweep < nKnobs; sweep++ {
		// Others at mid-range.
		for j := range point {
			point[j] = (mins[j] + maxs[j]) / 2
		}
		for lvl := 0; lvl < c.LevelsPerKnob; lvl++ {
			frac := float64(lvl) / float64(c.LevelsPerKnob-1)
			point[sweep] = mins[sweep] + frac*(maxs[sweep]-mins[sweep])
			if err := apply(point); err != nil {
				return nil, nil, err
			}
			for k := 0; k < c.SettleSeconds; k++ {
				s.Tick(1)
			}
			sum := 0.0
			for k := 0; k < c.DwellSeconds; k++ {
				sum += s.Tick(1).MeasuredW
			}
			// Record the *applied* (snapped) frequencies, not the
			// commanded ones, as the controller would.
			applied := make([]float64, nKnobs)
			applied[0] = s.CPUFreq()
			for i := 0; i < s.NumGPUs(); i++ {
				applied[1+i] = s.GPUFreq(i)
			}
			records = append(records, Record{Freqs: applied, PowerW: sum / float64(c.DwellSeconds)})
		}
	}
	m, err := Fit(records)
	if err != nil {
		return nil, records, err
	}
	return m, records, nil
}

// LatencyModel is the fitted frequency-latency law of Eq. (10b).
type LatencyModel struct {
	EMin  float64 // latency at f = FMax
	Gamma float64 // fitted exponent
	FMax  float64 // reference frequency
	R2    float64
}

// Predict evaluates the law at frequency f.
func (lm *LatencyModel) Predict(f float64) float64 {
	if f <= 0 {
		return math.Inf(1)
	}
	return lm.EMin * math.Pow(lm.FMax/f, lm.Gamma)
}

// FitLatency fits e = eMin·(fMax/f)^γ to (frequency, latency) samples by
// linear regression of log(e) on log(fMax/f). Frequencies and latencies
// must be positive.
func FitLatency(freqsMHz, latsS []float64, fMax float64) (*LatencyModel, error) {
	if len(freqsMHz) != len(latsS) {
		return nil, fmt.Errorf("sysid: %d freqsMHz but %d latencies", len(freqsMHz), len(latsS))
	}
	if len(freqsMHz) < 3 {
		return nil, fmt.Errorf("sysid: need at least 3 samples, got %d", len(freqsMHz))
	}
	if fMax <= 0 {
		return nil, fmt.Errorf("sysid: reference frequency %g must be positive", fMax)
	}
	a := mat.New(len(freqsMHz), 2)
	b := make([]float64, len(freqsMHz))
	for i := range freqsMHz {
		if freqsMHz[i] <= 0 || latsS[i] <= 0 {
			return nil, fmt.Errorf("sysid: sample %d non-positive (f=%g, e=%g)", i, freqsMHz[i], latsS[i])
		}
		a.Set(i, 0, 1)
		a.Set(i, 1, math.Log(fMax/freqsMHz[i]))
		b[i] = math.Log(latsS[i])
	}
	x, err := mat.LeastSquares(a, b)
	if err != nil {
		return nil, fmt.Errorf("sysid: latency fit: %w", err)
	}
	lm := &LatencyModel{EMin: math.Exp(x[0]), Gamma: x[1], FMax: fMax}
	pred := make([]float64, len(freqsMHz))
	for i := range freqsMHz {
		pred[i] = lm.Predict(freqsMHz[i])
	}
	// R² in the paper is reported on latency (not log-latency).
	lm.R2 = mat.RSquared(latsS, pred)
	return lm, nil
}
