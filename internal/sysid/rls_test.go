package sysid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRLSValidation(t *testing.T) {
	if _, err := NewRLS(0, nil, 0.98, 100); err == nil {
		t.Fatal("expected knob-count error")
	}
	if _, err := NewRLS(2, nil, 0, 100); err == nil {
		t.Fatal("expected lambda error")
	}
	if _, err := NewRLS(2, nil, 1.5, 100); err == nil {
		t.Fatal("expected lambda error")
	}
	if _, err := NewRLS(2, nil, 0.98, 0); err == nil {
		t.Fatal("expected covariance error")
	}
	if _, err := NewRLS(2, &Model{Gains: []float64{1}}, 0.98, 100); err == nil {
		t.Fatal("expected warm-start size error")
	}
}

func TestRLSConvergesToTrueParameters(t *testing.T) {
	// True model: p = 50 fc + 0.2 fg + 300, noise-free.
	r, err := NewRLS(2, nil, 1.0, 1e4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for k := 0; k < 200; k++ {
		fc := 1.0 + 1.4*rng.Float64()
		fg := 435 + 915*rng.Float64()
		p := 50*fc + 0.2*fg + 300
		if _, err := r.Update([]float64{fc, fg}, p); err != nil {
			t.Fatal(err)
		}
	}
	m := r.Model()
	if math.Abs(m.Gains[0]-50) > 0.01 || math.Abs(m.Gains[1]-0.2) > 1e-4 {
		t.Fatalf("gains %v, want [50, 0.2]", m.Gains)
	}
	if math.Abs(m.Offset-300) > 0.5 {
		t.Fatalf("offset %g, want 300", m.Offset)
	}
	if r.Count() != 200 {
		t.Fatalf("count = %d", r.Count())
	}
}

func TestRLSTracksDriftingGains(t *testing.T) {
	// The CPU gain halves at step 300 (a workload change); with
	// forgetting, the estimate must follow.
	r, err := NewRLS(2, nil, 0.97, 1e4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	gainCPU := 50.0
	for k := 0; k < 600; k++ {
		if k == 300 {
			gainCPU = 25
		}
		fc := 1.0 + 1.4*rng.Float64()
		fg := 435 + 915*rng.Float64()
		p := gainCPU*fc + 0.2*fg + 300 + rng.NormFloat64()
		if _, err := r.Update([]float64{fc, fg}, p); err != nil {
			t.Fatal(err)
		}
	}
	m := r.Model()
	if math.Abs(m.Gains[0]-25) > 2 {
		t.Fatalf("post-change CPU gain %g, want ~25", m.Gains[0])
	}
}

func TestRLSWarmStartReducesInitialError(t *testing.T) {
	truth := &Model{Gains: []float64{50, 0.2}, Offset: 300}
	warm, err := NewRLS(2, truth, 0.99, 10)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := NewRLS(2, nil, 0.99, 1e4)
	if err != nil {
		t.Fatal(err)
	}
	innovWarm, err := warm.Update([]float64{1.5, 800}, 50*1.5+0.2*800+300)
	if err != nil {
		t.Fatal(err)
	}
	innovCold, err := cold.Update([]float64{1.5, 800}, 50*1.5+0.2*800+300)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(innovWarm) >= math.Abs(innovCold) {
		t.Fatalf("warm innovation %g should beat cold %g", innovWarm, innovCold)
	}
}

func TestRLSUncertaintyShrinks(t *testing.T) {
	r, err := NewRLS(2, nil, 1.0, 1e4)
	if err != nil {
		t.Fatal(err)
	}
	before := r.Uncertainty()
	rng := rand.New(rand.NewSource(3))
	for k := 0; k < 50; k++ {
		fc := 1.0 + 1.4*rng.Float64()
		fg := 435 + 915*rng.Float64()
		if _, err := r.Update([]float64{fc, fg}, 50*fc+0.2*fg+300); err != nil {
			t.Fatal(err)
		}
	}
	if r.Uncertainty() >= before/100 {
		t.Fatalf("uncertainty %g did not shrink from %g", r.Uncertainty(), before)
	}
}

func TestRLSUpdateValidation(t *testing.T) {
	r, err := NewRLS(2, nil, 0.99, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Update([]float64{1}, 500); err == nil {
		t.Fatal("expected regressor-size error")
	}
}

func TestRLSModelFloorsNonPositiveGains(t *testing.T) {
	r, err := NewRLS(1, &Model{Gains: []float64{-5}, Offset: 0}, 0.99, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g := r.Model().Gains[0]; g <= 0 {
		t.Fatalf("gain floor not applied: %g", g)
	}
}

// Property: with persistent excitation and no noise, the one-step
// prediction error goes to ~0 for any linear plant.
func TestQuickRLSPredictionErrorVanishes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := 10 + 90*rng.Float64()
		b := 0.05 + 0.4*rng.Float64()
		c := 100 + 400*rng.Float64()
		r, err := NewRLS(2, nil, 1.0, 1e4)
		if err != nil {
			return false
		}
		var last float64
		for k := 0; k < 300; k++ {
			fc := 1.0 + 1.4*rng.Float64()
			fg := 435 + 915*rng.Float64()
			last, err = r.Update([]float64{fc, fg}, a*fc+b*fg+c)
			if err != nil {
				return false
			}
		}
		// The regressor scales differ by ~1e3 (GHz vs MHz vs constant),
		// so convergence along the weakly excited directions is slow;
		// 0.05 W on a ~1 kW signal is still an exacting bound.
		return math.Abs(last) < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRLSUpdate(b *testing.B) {
	r, err := NewRLS(4, nil, 0.98, 1e4)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.Update([]float64{1.5, 800, 900, 1000}, 950); err != nil {
			b.Fatal(err)
		}
	}
}
