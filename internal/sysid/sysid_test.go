package sysid

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

func TestFitExactLinearData(t *testing.T) {
	// p = 50*fc + 0.2*fg + 300, noise-free.
	var recs []Record
	for _, fc := range []float64{1.0, 1.5, 2.0} {
		for _, fg := range []float64{435, 900, 1350} {
			recs = append(recs, Record{Freqs: []float64{fc, fg}, PowerW: 50*fc + 0.2*fg + 300})
		}
	}
	m, err := Fit(recs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Gains[0]-50) > 1e-6 || math.Abs(m.Gains[1]-0.2) > 1e-6 {
		t.Fatalf("gains %v, want [50, 0.2]", m.Gains)
	}
	if math.Abs(m.Offset-300) > 1e-4 {
		t.Fatalf("offset %g, want 300", m.Offset)
	}
	if m.R2 < 0.999999 {
		t.Fatalf("R² = %g for exact data", m.R2)
	}
	p, err := m.Predict([]float64{1.2, 600})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-(60+120+300)) > 1e-4 {
		t.Fatalf("predict = %g", p)
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(nil); err == nil {
		t.Fatal("expected empty-records error")
	}
	if _, err := Fit([]Record{{Freqs: nil, PowerW: 1}}); err == nil {
		t.Fatal("expected no-knobs error")
	}
	if _, err := Fit([]Record{{Freqs: []float64{1, 2}, PowerW: 1}}); err == nil {
		t.Fatal("expected too-few-records error")
	}
	recs := []Record{
		{Freqs: []float64{1, 2}, PowerW: 1},
		{Freqs: []float64{2}, PowerW: 2},
		{Freqs: []float64{3, 4}, PowerW: 3},
		{Freqs: []float64{4, 5}, PowerW: 4},
	}
	if _, err := Fit(recs); err == nil {
		t.Fatal("expected ragged-record error")
	}
	m, err := Fit([]Record{
		{Freqs: []float64{1}, PowerW: 10},
		{Freqs: []float64{2}, PowerW: 20},
		{Freqs: []float64{3}, PowerW: 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict([]float64{1, 2}); err == nil {
		t.Fatal("expected predict dimension error")
	}
}

func testbedWithWorkloads(t *testing.T) *sim.Server {
	t.Helper()
	s, err := sim.NewServer(sim.DefaultTestbed(7))
	if err != nil {
		t.Fatal(err)
	}
	zoo := workload.Zoo()
	models := []string{"resnet50", "swin_t", "vgg16"}
	rates := []float64{250, 100, 130}
	for i := 0; i < 3; i++ {
		p, err := workload.NewPipeline(workload.PipelineConfig{
			Model: zoo[models[i]], Workers: 1, PreLatencyBase: 0.005,
			PreLatencyExp: 0.4, ArrivalRateMax: rates[i], ArrivalExp: 0.5,
			QueueCap: 60, FcMax: 2.4, FgMax: 1350, Seed: int64(20 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.AttachPipeline(i, p); err != nil {
			t.Fatal(err)
		}
	}
	w, err := workload.NewCPUWorkload(workload.CPUWorkloadConfig{
		RateAtMax: 40, FcMax: 2.4, NoiseStd: 0.02, Seed: 30})
	if err != nil {
		t.Fatal(err)
	}
	s.AttachCPUWorkload(w)
	return s
}

func TestIdentifyOnTestbed(t *testing.T) {
	s := testbedWithWorkloads(t)
	m, recs, err := Identify(s, ExciteConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Gains) != 4 {
		t.Fatalf("want 4 gains (CPU + 3 GPUs), got %d", len(m.Gains))
	}
	if len(recs) != 4*8 {
		t.Fatalf("want 32 records, got %d", len(recs))
	}
	// Every gain must be positive: more frequency, more power.
	for i, g := range m.Gains {
		if g <= 0 {
			t.Fatalf("gain %d = %g, want positive", i, g)
		}
	}
	// The paper reports R² = 0.96 on its testbed; the simulator's
	// nonlinearity should land in a similar high-but-imperfect band.
	if m.R2 < 0.90 || m.R2 > 0.9999 {
		t.Fatalf("R² = %g outside the plausible [0.90, 0.9999] band", m.R2)
	}
	// CPU gain should be tens of W/GHz; GPU gains fractions of W/MHz.
	if m.Gains[0] < 10 || m.Gains[0] > 120 {
		t.Fatalf("CPU gain %g W/GHz implausible", m.Gains[0])
	}
	for i := 1; i < 4; i++ {
		if m.Gains[i] < 0.03 || m.Gains[i] > 0.6 {
			t.Fatalf("GPU gain %g W/MHz implausible", m.Gains[i])
		}
	}
}

func TestIdentifiedModelPredictsHeldOutPoint(t *testing.T) {
	s := testbedWithWorkloads(t)
	m, _, err := Identify(s, ExciteConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Apply a fresh operating point and compare prediction vs measured.
	s.SetCPUFreq(1.9)
	for i := 0; i < 3; i++ {
		if _, err := s.SetGPUFreq(i, 1100); err != nil {
			t.Fatal(err)
		}
	}
	sum := 0.0
	for k := 0; k < 10; k++ {
		sum += s.Tick(1).MeasuredW
	}
	measured := sum / 10
	pred, err := m.Predict([]float64{s.CPUFreq(), s.GPUFreq(0), s.GPUFreq(1), s.GPUFreq(2)})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(pred-measured) / measured; rel > 0.06 {
		t.Fatalf("held-out prediction off by %.1f%% (pred %g vs measured %g)", rel*100, pred, measured)
	}
}

func TestFitLatencyRecoversGamma(t *testing.T) {
	// Generate data from the pure law with gamma = 0.91.
	m := workload.Zoo()["resnet50"]
	var fs, es []float64
	for f := 435.0; f <= 1350; f += 45 {
		fs = append(fs, f)
		es = append(es, m.ModelBatchLatency(f, 1350))
	}
	lm, err := FitLatency(fs, es, 1350)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lm.Gamma-0.91) > 1e-6 {
		t.Fatalf("gamma = %g, want 0.91", lm.Gamma)
	}
	if math.Abs(lm.EMin-m.EMinBatch) > 1e-9 {
		t.Fatalf("eMin = %g, want %g", lm.EMin, m.EMinBatch)
	}
	if lm.R2 < 0.999999 {
		t.Fatalf("R² = %g for exact data", lm.R2)
	}
}

func TestFitLatencyOnTrueSimulatorLatencies(t *testing.T) {
	// Against the simulator's ground truth (residual + curvature), the
	// pure law should fit imperfectly, in the neighbourhood of the
	// paper's R² ≈ 0.91.
	m := workload.Zoo()["swin_t"]
	var fs, es []float64
	for f := 435.0; f <= 1350; f += 15 {
		fs = append(fs, f)
		es = append(es, m.TrueBatchLatency(f, 1350))
	}
	lm, err := FitLatency(fs, es, 1350)
	if err != nil {
		t.Fatal(err)
	}
	if lm.R2 < 0.85 || lm.R2 > 0.999 {
		t.Fatalf("R² = %g outside the expected imperfect-fit band", lm.R2)
	}
	if lm.Gamma < 0.8 || lm.Gamma > 1.4 {
		t.Fatalf("gamma = %g drifted implausibly", lm.Gamma)
	}
}

func TestFitLatencyValidation(t *testing.T) {
	if _, err := FitLatency([]float64{1}, []float64{1, 2}, 10); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := FitLatency([]float64{1, 2}, []float64{1, 2}, 10); err == nil {
		t.Fatal("expected too-few-samples error")
	}
	if _, err := FitLatency([]float64{1, 2, 3}, []float64{1, 2, 3}, 0); err == nil {
		t.Fatal("expected fmax error")
	}
	if _, err := FitLatency([]float64{1, -2, 3}, []float64{1, 2, 3}, 10); err == nil {
		t.Fatal("expected non-positive sample error")
	}
	lm := &LatencyModel{EMin: 1, Gamma: 1, FMax: 100}
	if !math.IsInf(lm.Predict(0), 1) {
		t.Fatal("zero frequency should predict infinite latency")
	}
}

func BenchmarkIdentify(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := sim.NewServer(sim.DefaultTestbed(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := Identify(s, ExciteConfig{LevelsPerKnob: 6, DwellSeconds: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestFitReportsExcitationConditioning(t *testing.T) {
	// Independent excitation: each knob swept separately -> modest cond.
	var good []Record
	for _, fc := range []float64{1.0, 1.5, 2.0} {
		for _, fg := range []float64{435, 900, 1350} {
			good = append(good, Record{Freqs: []float64{fc, fg}, PowerW: 50*fc + 0.2*fg + 300})
		}
	}
	mGood, err := Fit(good)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(mGood.Cond) || mGood.Cond > 100 {
		t.Fatalf("well-excited cond = %g, want modest", mGood.Cond)
	}
	// Collinear excitation: the two knobs always move together -> the
	// individual gains are not identifiable and cond blows up.
	var bad []Record
	for i := 0; i < 9; i++ {
		fc := 1.0 + 0.15*float64(i)
		fg := 435 + 100*float64(i) // perfectly correlated with fc
		bad = append(bad, Record{Freqs: []float64{fc, fg}, PowerW: 50*fc + 0.2*fg + 300})
	}
	mBad, err := Fit(bad)
	if err != nil {
		t.Fatal(err)
	}
	if !(mBad.Cond > 50*mGood.Cond) {
		t.Fatalf("collinear cond %g should dwarf independent cond %g", mBad.Cond, mGood.Cond)
	}
}

func TestIdentifyConditioningReasonable(t *testing.T) {
	s := testbedWithWorkloads(t)
	m, _, err := Identify(s, ExciteConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(m.Cond) || m.Cond <= 1 || m.Cond > 500 {
		t.Fatalf("testbed excitation cond = %g outside the plausible band", m.Cond)
	}
}
