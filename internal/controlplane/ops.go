package controlplane

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// OpKind names one control-plane mutation.
type OpKind string

// The op taxonomy. Membership ops (join, drain, kill, revive) change
// who is in the rack; policy ops (budget, cap, slo) change what the
// rack is told to do and bump the policy epoch when applied.
const (
	// OpJoin admits a new node (Class selects the workload class; empty
	// cycles through the configured classes).
	OpJoin OpKind = "join"
	// OpDrain starts a graceful drain of Node: its cap ceiling steps
	// down to its floor over DrainBarriers reallocations, then the node
	// is released from the rack with its records archived.
	OpDrain OpKind = "drain"
	// OpKill silences Node's heartbeat permanently (a crash, in the
	// soak harness), until a matching OpRevive.
	OpKill OpKind = "kill"
	// OpRevive clears an OpKill.
	OpRevive OpKind = "revive"
	// OpBudget sets the rack breaker budget to Value watts.
	OpBudget OpKind = "budget"
	// OpCap sets Node's per-node cap ceiling to Value watts (0 clears).
	OpCap OpKind = "cap"
	// OpSLO sets Node's per-GPU inference latency SLO to Value seconds
	// (0 clears).
	OpSLO OpKind = "slo"
)

// Op is one control-plane mutation request. Ops are validated and
// applied only at reallocation barriers, never mid-cycle, so the
// budget invariant Σ(live commanded) ≤ budget − reservations holds at
// every period.
type Op struct {
	Kind  OpKind  `json:"kind"`
	Node  string  `json:"node,omitempty"`  // drain/kill/revive/cap/slo target
	Class string  `json:"class,omitempty"` // join: workload class
	Value float64 `json:"value,omitempty"` // budget/cap watts; slo seconds
}

// String renders the op in schedule-DSL form.
func (o Op) String() string {
	s := string(o.Kind)
	switch {
	case o.Node != "":
		s += ":" + o.Node
	case o.Class != "":
		s += ":" + o.Class
	}
	if o.Value != 0 {
		s += "*" + strconv.FormatFloat(o.Value, 'g', -1, 64)
	}
	return s
}

// TimedOp is an op with the period it becomes due. A due op is
// processed at the first reallocation barrier at or after Period.
type TimedOp struct {
	Period int `json:"period"`
	Op     Op  `json:"op"`
}

// AppliedOp is one processed op in the daemon's op log: the op, the
// barrier period that processed it, and the outcome. The op log is the
// complete record of external inputs to the daemon — replaying it from
// a checkpoint reproduces the run byte for byte.
type AppliedOp struct {
	Period  int    `json:"period"`
	Op      Op     `json:"op"`
	Applied bool   `json:"applied"`
	Reason  string `json:"reason,omitempty"`
}

// ParseSchedule parses the churn/reconfiguration DSL, the control-plane
// sibling of the faults DSL: entries `kind@period[:target][*value]`
// joined by ';'. Examples:
//
//	join@40            admit a node (class cycles) at period 40
//	join@40:heavy      admit a heavy-class node
//	drain@80:n001      gracefully drain and release n001
//	kill@120:n000      n000 stops heartbeating (crash)
//	revive@200:n000    n000 heartbeats again
//	budget@60*2400     set the breaker budget to 2400 W
//	cap@90:n002*700    ceiling n002 at 700 W
//	slo@100:n001*0.35  set n001's latency SLO to 0.35 s
//
// The result is ordered by period (stable for equal periods), so a
// schedule's textual order never matters.
func ParseSchedule(dsl string) ([]TimedOp, error) {
	var out []TimedOp
	for _, entry := range strings.Split(dsl, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		op, err := parseScheduleEntry(entry)
		if err != nil {
			return nil, err
		}
		out = append(out, op)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("controlplane: empty schedule %q", dsl)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Period < out[j].Period })
	return out, nil
}

func parseScheduleEntry(entry string) (TimedOp, error) {
	var t TimedOp
	rest := entry
	// Split off '*value', then ':target', then 'kind@period'.
	if i := strings.LastIndexByte(rest, '*'); i >= 0 {
		v, err := strconv.ParseFloat(rest[i+1:], 64)
		if err != nil {
			return t, fmt.Errorf("controlplane: %q: bad value: %w", entry, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return t, fmt.Errorf("controlplane: %q: value must be finite and non-negative", entry)
		}
		t.Op.Value = v
		rest = rest[:i]
	}
	target := ""
	if i := strings.IndexByte(rest, ':'); i >= 0 {
		target = strings.TrimSpace(rest[i+1:])
		rest = rest[:i]
	}
	at := strings.IndexByte(rest, '@')
	if at < 0 {
		return t, fmt.Errorf("controlplane: %q: want kind@period", entry)
	}
	kind := OpKind(strings.TrimSpace(rest[:at]))
	period, err := strconv.Atoi(rest[at+1:])
	if err != nil || period < 0 {
		return t, fmt.Errorf("controlplane: %q: bad period", entry)
	}
	t.Period = period
	t.Op.Kind = kind
	switch kind {
	case OpJoin:
		t.Op.Class = target // optional; "" cycles
	case OpDrain, OpKill, OpRevive:
		if target == "" {
			return t, fmt.Errorf("controlplane: %q: %s needs a node target", entry, kind)
		}
		t.Op.Node = target
	case OpBudget:
		if target != "" {
			return t, fmt.Errorf("controlplane: %q: budget takes no target", entry)
		}
		if t.Op.Value <= 0 {
			return t, fmt.Errorf("controlplane: %q: budget needs a positive *watts value", entry)
		}
	case OpCap, OpSLO:
		if target == "" {
			return t, fmt.Errorf("controlplane: %q: %s needs a node target", entry, kind)
		}
		t.Op.Node = target
	default:
		return t, fmt.Errorf("controlplane: %q: unknown kind %q (want join, drain, kill, revive, budget, cap, slo)", entry, kind)
	}
	return t, nil
}

// ScheduleString renders a schedule in DSL form (round-trips
// ParseSchedule up to entry ordering).
func ScheduleString(ops []TimedOp) string {
	parts := make([]string, len(ops))
	for i, t := range ops {
		kindTarget := t.Op.String()
		// Reinsert the period after the kind: kind@period[:target][*value].
		kind := string(t.Op.Kind)
		parts[i] = kind + "@" + strconv.Itoa(t.Period) + strings.TrimPrefix(kindTarget, kind)
	}
	return strings.Join(parts, ";")
}
