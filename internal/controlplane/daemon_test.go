package controlplane

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/sysid"
	"repro/internal/workload"
)

// The daemon tests run a cut-down fleet — one inference pipeline per
// node, one shared identification — so membership churn, feasibility
// checks, and resume-by-replay are exercised without the full
// evaluation fleet's cost (internal/experiments carries the
// byte-equivalence and soak tests over the real fleet).

var (
	testModelOnce sync.Once
	testModel     *sysid.Model
	testModelErr  error
)

func testServer(seed int64) (*sim.Server, error) {
	s, err := sim.NewServer(sim.DefaultTestbed(seed))
	if err != nil {
		return nil, err
	}
	zoo := workload.Zoo()
	p, err := workload.NewPipeline(workload.PipelineConfig{
		Model: zoo["resnet50"], Workers: 2, PreLatencyBase: 0.004, PreLatencyExp: 0.4,
		ArrivalRateMax: 250, ArrivalExp: 0.5, QueueCap: 60, FcMax: 2.4, FgMax: 1350, Seed: seed + 1})
	if err != nil {
		return nil, err
	}
	if err := s.AttachPipeline(0, p); err != nil {
		return nil, err
	}
	w, err := workload.NewCPUWorkload(workload.CPUWorkloadConfig{RateAtMax: 40, FcMax: 2.4, Seed: seed + 9})
	if err != nil {
		return nil, err
	}
	s.AttachCPUWorkload(w)
	return s, nil
}

func testDeps() Deps {
	return Deps{
		NewNode: func(name, class string, seed int64, priority int) (*cluster.Node, error) {
			testModelOnce.Do(func() {
				twin, err := testServer(77000)
				if err != nil {
					testModelErr = err
					return
				}
				testModel, _, testModelErr = sysid.Identify(twin, sysid.ExciteConfig{})
			})
			if testModelErr != nil {
				return nil, testModelErr
			}
			s, err := testServer(seed)
			if err != nil {
				return nil, err
			}
			m := *testModel
			m.Gains = append([]float64(nil), m.Gains...)
			ctrl, err := core.NewCapGPU(&m, s, nil, core.Options{})
			if err != nil {
				return nil, err
			}
			return cluster.NewNode(name, s, ctrl, priority)
		},
		Classes: []ClassSpec{{Name: "small", Priority: 0}},
	}
}

// submit queues an op and steps the daemon across the next barrier to
// resolve it.
func submit(t *testing.T, d *Daemon, op Op) AppliedOp {
	t.Helper()
	ch := d.Submit(op)
	for i := 0; i < d.Coordinator().RackPeriods+1; i++ {
		if err := d.Step(); err != nil {
			t.Fatal(err)
		}
		select {
		case res := <-ch:
			return res
		default:
		}
	}
	t.Fatalf("op %v not resolved within a barrier cycle", op)
	return AppliedOp{}
}

func TestDaemonMembershipLifecycle(t *testing.T) {
	spec := Spec{
		Seed: 3, Nodes: 2, BudgetW: 4000, RackPeriods: 2,
		ReservationHold: 4, DrainBarriers: 2,
		Schedule: "join@2;budget@4*3800;kill@6:n000;drain@8:n001",
	}
	d, err := New(spec, testDeps())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RunTo(30); err != nil {
		t.Fatal(err)
	}
	for _, op := range d.OpLog() {
		if !op.Applied {
			t.Fatalf("schedule op rejected: %+v", op)
		}
	}
	if d.Epoch() != 1 {
		t.Fatalf("epoch %d after one applied policy op, want 1", d.Epoch())
	}
	// n001 drained and released; n000 killed; n002 joined.
	rel := d.Released()
	if len(rel) != 1 || rel[0].Name != "n001" || len(rel[0].Records) == 0 {
		t.Fatalf("released = %+v, want n001 with records", rel)
	}
	var names []string
	for _, n := range d.Coordinator().Nodes {
		names = append(names, n.Name)
	}
	if strings.Join(names, ",") != "n000,n002" {
		t.Fatalf("members = %v, want [n000 n002]", names)
	}
	st := d.Status()
	if st.Period != 30 || st.BudgetW != 3800 || st.Epoch != 1 {
		t.Fatalf("status = %+v", st)
	}
	if !st.Members[0].Dead {
		t.Fatalf("n000 not marked dead in status: %+v", st.Members[0])
	}
	if st.Members[1].Dead {
		t.Fatalf("joined n002 marked dead: %+v", st.Members[1])
	}
	// The killed node's reservation was released after the hold, so
	// nothing is reserved any more.
	if r := d.Coordinator().ReservedW(); r != 0 {
		t.Fatalf("reservation %v W still held after ReservationHold elapsed", r)
	}
	if n, detail := d.InvariantViolations(); n != 0 {
		t.Fatalf("%d budget-invariant violations: %s", n, detail)
	}
	// Records archived for everyone, live or not.
	recs := d.MemberRecords()
	for _, name := range []string{"n000", "n001", "n002"} {
		if len(recs[name]) == 0 {
			t.Fatalf("no records for %s", name)
		}
	}
	if len(recs["n001"]) >= len(recs["n000"]) {
		t.Fatalf("released n001 kept accumulating records (%d vs %d)", len(recs["n001"]), len(recs["n000"]))
	}
}

func TestDaemonRejections(t *testing.T) {
	// DrainBarriers is long so the drain started mid-test cannot ramp
	// to release before the cap-on-draining case runs.
	spec := Spec{Seed: 5, Nodes: 2, BudgetW: 4000, RackPeriods: 2, DrainBarriers: 50}
	d, err := New(spec, testDeps())
	if err != nil {
		t.Fatal(err)
	}
	minW, _ := d.Coordinator().Nodes[0].CapRangeW()
	floors := 2 * minW

	cases := []struct {
		name    string
		op      Op
		wantSub string
	}{
		{"budget-below-floors", Op{Kind: OpBudget, Value: floors - 1}, "infeasible"},
		{"budget-negative", Op{Kind: OpBudget, Value: -5}, "positive and finite"},
		{"cap-unknown-node", Op{Kind: OpCap, Node: "n999", Value: 700}, "no member"},
		{"slo-unknown-node", Op{Kind: OpSLO, Node: "n999", Value: 0.3}, "no member"},
		{"drain-unknown-node", Op{Kind: OpDrain, Node: "n999"}, "no member"},
		{"kill-unknown-node", Op{Kind: OpKill, Node: "n999"}, "no member"},
		{"revive-alive-node", Op{Kind: OpRevive, Node: "n000"}, "not down"},
		{"join-unknown-class", Op{Kind: OpJoin, Class: "xl"}, "unknown class"},
	}
	for _, tc := range cases {
		res := submit(t, d, tc.op)
		if res.Applied {
			t.Fatalf("%s: op %v applied, want rejection", tc.name, tc.op)
		}
		if !strings.Contains(res.Reason, tc.wantSub) {
			t.Fatalf("%s: reason %q does not mention %q", tc.name, res.Reason, tc.wantSub)
		}
	}
	if d.Epoch() != 0 {
		t.Fatalf("epoch %d moved on rejected ops", d.Epoch())
	}

	// Draining everything is refused: the last live member stays.
	// (n000 drains from well above its floor, so the long DrainBarriers
	// ramp keeps it a member for the rest of the test.)
	if res := submit(t, d, Op{Kind: OpDrain, Node: "n000"}); !res.Applied {
		t.Fatalf("first drain rejected: %+v", res)
	}
	if res := submit(t, d, Op{Kind: OpDrain, Node: "n001"}); res.Applied || !strings.Contains(res.Reason, "empty") {
		t.Fatalf("draining the last member: %+v, want rejection", res)
	}
	// A draining node's ceiling belongs to the ramp.
	if res := submit(t, d, Op{Kind: OpCap, Node: "n000", Value: 900}); res.Applied || !strings.Contains(res.Reason, "draining") {
		t.Fatalf("cap on draining node: %+v, want rejection", res)
	}

	// Tighten the budget to exactly the current floors: feasible for
	// the standing fleet, but no headroom for a third node.
	if res := submit(t, d, Op{Kind: OpBudget, Value: floors}); !res.Applied {
		t.Fatalf("feasible budget rejected: %+v", res)
	}
	if res := submit(t, d, Op{Kind: OpJoin}); res.Applied || !strings.Contains(res.Reason, "admission") {
		t.Fatalf("join under zero headroom: %+v, want admission rejection", res)
	}
}

func TestDaemonResumeByReplay(t *testing.T) {
	spec := Spec{
		Seed: 9, Nodes: 2, BudgetW: 4000, RackPeriods: 2,
		Schedule:        "join@4;kill@10:n000;budget@14*3600;slo@16:n001*0.5",
		Load:            LoadSpec{DiurnalAmp: 0.3, DiurnalPeriods: 40, BurstProb: 0.2, BurstAmp: 0.8},
		CheckpointEvery: 10,
		ReservationHold: 6,
	}
	d1, err := New(spec, testDeps())
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.RunTo(20); err != nil {
		t.Fatal(err)
	}
	cp := d1.Checkpoint()
	// The checkpoint survives its wire format.
	b, err := cp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	cp, err = DecodeCheckpoint(b)
	if err != nil {
		t.Fatal(err)
	}
	// Kill: d1 continues as the uninterrupted reference…
	if err := d1.RunTo(40); err != nil {
		t.Fatal(err)
	}
	// …and d2 restores from the checkpoint and runs to the same horizon.
	d2, err := Resume(cp, testDeps())
	if err != nil {
		t.Fatal(err)
	}
	if d2.Period() != 20 {
		t.Fatalf("restored daemon at period %d, want 20", d2.Period())
	}
	if err := d2.RunTo(40); err != nil {
		t.Fatal(err)
	}
	if got, want := d2.digest(), d1.digest(); got != want {
		t.Fatalf("post-restore trajectory diverged: digest %s, want %s", got, want)
	}
	log1, log2 := d1.OpLog(), d2.OpLog()
	if len(log1) != len(log2) {
		t.Fatalf("op logs differ in length: %d vs %d", len(log1), len(log2))
	}
	for i := range log1 {
		if log1[i] != log2[i] {
			t.Fatalf("op log %d: %+v vs %+v", i, log1[i], log2[i])
		}
	}
	// Full per-period record equality for every member ever seen.
	recs1, recs2 := d1.MemberRecords(), d2.MemberRecords()
	if len(recs1) != len(recs2) {
		t.Fatalf("member sets differ: %d vs %d", len(recs1), len(recs2))
	}
	for name, r1 := range recs1 {
		r2 := recs2[name]
		if len(r1) != len(r2) {
			t.Fatalf("%s: %d records vs %d", name, len(r1), len(r2))
		}
		for i := range r1 {
			if fmt.Sprintf("%+v", r1[i]) != fmt.Sprintf("%+v", r2[i]) {
				t.Fatalf("%s record %d differs:\n%+v\n%+v", name, i, r1[i], r2[i])
			}
		}
	}
}

func TestResumeRejectsDigestMismatch(t *testing.T) {
	spec := Spec{Seed: 12, Nodes: 2, BudgetW: 4000, RackPeriods: 2}
	d, err := New(spec, testDeps())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RunTo(8); err != nil {
		t.Fatal(err)
	}
	cp := d.Checkpoint()
	cp.StateDigest = "deadbeefdeadbeef"
	if _, err := Resume(cp, testDeps()); err == nil {
		t.Fatal("resume accepted a checkpoint whose digest the replay cannot reproduce")
	}
}
