package controlplane

import (
	"math"
	"testing"
)

func TestLoadSpecFactor(t *testing.T) {
	zero := LoadSpec{}
	if zero.Enabled() {
		t.Fatal("zero spec reports enabled")
	}
	if f := zero.Factor(1, 100, "n000"); f != 1 {
		t.Fatalf("zero spec factor %v, want 1", f)
	}

	l := LoadSpec{DiurnalAmp: 0.4, BurstProb: 0.1, BurstAmp: 1.5}
	if !l.Enabled() {
		t.Fatal("spec not enabled")
	}
	// Deterministic: same (seed, period, node) → same factor; the
	// generator is stateless, so call order cannot matter.
	for _, k := range []int{0, 7, 1234, DayPeriods / 2, DayPeriods - 1} {
		a := l.Factor(42, k, "n003")
		b := l.Factor(42, k, "n003")
		if a != b {
			t.Fatalf("factor(42, %d, n003) unstable: %v vs %v", k, a, b)
		}
		if a < 0.05 || a > 4 || math.IsNaN(a) {
			t.Fatalf("factor(42, %d, n003) = %v outside [0.05, 4]", k, a)
		}
	}
	// Diurnal shape: trough at midnight, peak at midday.
	trough := LoadSpec{DiurnalAmp: 0.4}.Factor(42, 0, "n000")
	peak := LoadSpec{DiurnalAmp: 0.4}.Factor(42, DayPeriods/2, "n000")
	if math.Abs(trough-0.6) > 1e-9 || math.Abs(peak-1.4) > 1e-9 {
		t.Fatalf("diurnal trough/peak = %v/%v, want 0.6/1.4", trough, peak)
	}
	// Bursts are per-node: across many windows, two nodes must disagree
	// somewhere, and hot-window frequency must be near BurstProb.
	bursty := LoadSpec{BurstProb: 0.2, BurstAmp: 1}
	hot, differ := 0, false
	const windows = 2000
	for w := 0; w < windows; w++ {
		k := w * 8
		a := bursty.Factor(42, k, "n000")
		if a > 1.5 {
			hot++
		}
		if a != bursty.Factor(42, k, "n001") {
			differ = true
		}
		// Within one window the factor is constant.
		if a != bursty.Factor(42, k+7, "n000") {
			t.Fatalf("burst state changed inside window at k=%d", k)
		}
	}
	if !differ {
		t.Fatal("two nodes saw identical burst schedules")
	}
	if frac := float64(hot) / windows; frac < 0.1 || frac > 0.3 {
		t.Fatalf("hot-window fraction %v far from BurstProb 0.2", frac)
	}
	// Pathological spec clamps instead of exploding.
	if f := (LoadSpec{DiurnalAmp: 0.9, BurstProb: 1, BurstAmp: 50}).Factor(1, DayPeriods/2, "n000"); f != 4 {
		t.Fatalf("clamp high: %v, want 4", f)
	}
	if f := (LoadSpec{DiurnalAmp: 1}).Factor(1, 0, "n000"); f != 0.05 {
		t.Fatalf("clamp low: %v, want 0.05", f)
	}
}
