package controlplane

import "math"

// LoadSpec is the open-loop arrival-trace generator the soak harness
// drives pipelines with: a diurnal sinusoid shared by the whole rack
// plus per-node bursty windows. Every factor is a pure function of
// (seed, period, node) — stateless splitmix-style hashing, the same
// idiom the fault injector uses — so membership churn and worker count
// cannot perturb the trace and replay is exact.
type LoadSpec struct {
	// DiurnalAmp is the day-cycle amplitude in [0,1): the arrival scale
	// swings between 1−amp (night trough) and 1+amp (midday peak).
	// 0 disables the diurnal component.
	DiurnalAmp float64 `json:"diurnal_amp,omitempty"`
	// DiurnalPeriods is the length of one simulated day in control
	// periods (default DayPeriods).
	DiurnalPeriods int `json:"diurnal_periods,omitempty"`
	// BurstProb is the probability that any given burst window is hot
	// for a node (0 disables bursts).
	BurstProb float64 `json:"burst_prob,omitempty"`
	// BurstAmp is the extra arrival multiplier during a hot window.
	BurstAmp float64 `json:"burst_amp,omitempty"`
	// BurstPeriods is the burst window length in periods (default 8).
	BurstPeriods int `json:"burst_periods,omitempty"`
}

// DayPeriods is one simulated day in control periods at the standard
// T = 4 s period: 86400 / 4.
const DayPeriods = 21600

// Enabled reports whether the spec shapes traffic at all.
func (l LoadSpec) Enabled() bool {
	return l.DiurnalAmp != 0 || (l.BurstProb > 0 && l.BurstAmp != 0)
}

// Factor returns the arrival-scale multiplier for one node at period
// k. The result is clamped to [0.05, 4] so a pathological spec cannot
// zero out or explode the queueing model.
func (l LoadSpec) Factor(seed int64, k int, node string) float64 {
	f := 1.0
	if l.DiurnalAmp != 0 {
		day := l.DiurnalPeriods
		if day <= 0 {
			day = DayPeriods
		}
		// Trough at k=0 (midnight), peak at midday.
		f += l.DiurnalAmp * -math.Cos(2*math.Pi*float64(k%day)/float64(day))
	}
	if l.BurstAt(seed, k, node) {
		f += l.BurstAmp
	}
	if f < 0.05 {
		f = 0.05
	}
	if f > 4 {
		f = 4
	}
	return f
}

// BurstWindow returns the burst window length in periods.
func (l LoadSpec) BurstWindow() int {
	if l.BurstPeriods > 0 {
		return l.BurstPeriods
	}
	return 8
}

// BurstAt reports whether the node's burst window containing period k
// is hot. The daemon emits a load-burst telemetry event at each hot
// window's first period, so the doctor can attribute the transient
// overshoot an arrival step causes to the injected load, the same way
// it attributes fault-coincident violations to the fault schedule.
func (l LoadSpec) BurstAt(seed int64, k int, node string) bool {
	if l.BurstProb <= 0 || l.BurstAmp == 0 {
		return false
	}
	win := l.BurstWindow()
	h := splitmix(uint64(seed) ^ hashString(node) ^ uint64(k/win)*0x9e3779b97f4a7c15)
	return float64(h>>11)/(1<<53) < l.BurstProb
}

// EnergySpec derives the ledger's carbon/price weight curves from the
// daemon schedule: pure diurnal functions of the period index, like
// LoadSpec, so a replayed run attributes identical grams and cost.
// Carbon intensity troughs at midday (solar-heavy grid) while price
// peaks with midday demand — opposite phases of the same day cycle.
type EnergySpec struct {
	// CarbonBase is the day-average grid intensity in gCO2/kWh
	// (0 disables carbon weighting).
	CarbonBase float64 `json:"carbon_base,omitempty"`
	// CarbonAmp is the fractional day-cycle swing in [0,1).
	CarbonAmp float64 `json:"carbon_amp,omitempty"`
	// PriceBase is the day-average energy price in cost units per kWh
	// (0 disables price weighting).
	PriceBase float64 `json:"price_base,omitempty"`
	// PriceAmp is the fractional day-cycle swing in [0,1).
	PriceAmp float64 `json:"price_amp,omitempty"`
	// DiurnalPeriods is the day length in control periods (default
	// DayPeriods).
	DiurnalPeriods int `json:"diurnal_periods,omitempty"`
}

// Enabled reports whether the spec weights energy at all.
func (e EnergySpec) Enabled() bool { return e.CarbonBase > 0 || e.PriceBase > 0 }

func (e EnergySpec) day() int {
	if e.DiurnalPeriods > 0 {
		return e.DiurnalPeriods
	}
	return DayPeriods
}

// CarbonCurve returns gCO2/kWh as a function of the period (nil when
// carbon weighting is disabled). Peak at midnight, trough at midday.
func (e EnergySpec) CarbonCurve() func(k int) float64 {
	if e.CarbonBase <= 0 {
		return nil
	}
	day := e.day()
	return func(k int) float64 {
		return e.CarbonBase * (1 + e.CarbonAmp*math.Cos(2*math.Pi*float64(k%day)/float64(day)))
	}
}

// PriceCurve returns cost units/kWh as a function of the period (nil
// when price weighting is disabled). Trough at midnight, peak at
// midday.
func (e EnergySpec) PriceCurve() func(k int) float64 {
	if e.PriceBase <= 0 {
		return nil
	}
	day := e.day()
	return func(k int) float64 {
		return e.PriceBase * (1 - e.PriceAmp*math.Cos(2*math.Pi*float64(k%day)/float64(day)))
	}
}

// splitmix is the splitmix64 finalizer: a stateless, high-quality
// mixing of a 64-bit key into a 64-bit hash.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashString folds a node name into a 64-bit key (FNV-1a).
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
