package controlplane

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
)

// NodePatch is one member's slice of a policy patch. Pointer fields
// distinguish "leave alone" (absent) from "clear" (explicit 0).
type NodePatch struct {
	// CapW sets the node's cap ceiling in watts (0 clears it).
	CapW *float64 `json:"cap_w,omitempty"`
	// SLOLatencyS sets the node's per-GPU latency SLO in seconds
	// (0 clears it).
	SLOLatencyS *float64 `json:"slo_latency_s,omitempty"`
}

// PolicyPatch is the hot-reconfiguration request body: any subset of
// the global budget and per-node caps/SLOs. The whole patch is queued
// and applied atomically at the next reallocation barrier; infeasible
// pieces are rejected individually with a reason.
type PolicyPatch struct {
	BudgetW *float64             `json:"budget_w,omitempty"`
	Nodes   map[string]NodePatch `json:"nodes,omitempty"`
}

// ParsePatch strictly decodes a policy patch: unknown fields, trailing
// garbage, empty patches, and non-finite or negative watt/second
// values are all rejected before anything reaches the control loop.
// (JSON cannot carry NaN/Inf literals, but the checks also guard the
// programmatic path and any future decoder change.)
func ParsePatch(b []byte) (PolicyPatch, error) {
	var p PolicyPatch
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return PolicyPatch{}, fmt.Errorf("controlplane: policy patch: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return PolicyPatch{}, fmt.Errorf("controlplane: policy patch: trailing data after JSON object")
	}
	if p.BudgetW != nil {
		if v := *p.BudgetW; math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			return PolicyPatch{}, fmt.Errorf("controlplane: policy patch: budget_w %v must be positive and finite", v)
		}
	}
	for name, np := range p.Nodes {
		if name == "" {
			return PolicyPatch{}, fmt.Errorf("controlplane: policy patch: empty node name")
		}
		if np.CapW != nil {
			if v := *np.CapW; math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return PolicyPatch{}, fmt.Errorf("controlplane: policy patch: nodes[%s].cap_w %v must be non-negative and finite", name, v)
			}
		}
		if np.SLOLatencyS != nil {
			if v := *np.SLOLatencyS; math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return PolicyPatch{}, fmt.Errorf("controlplane: policy patch: nodes[%s].slo_latency_s %v must be non-negative and finite", name, v)
			}
		}
		if np.CapW == nil && np.SLOLatencyS == nil {
			return PolicyPatch{}, fmt.Errorf("controlplane: policy patch: nodes[%s] sets nothing", name)
		}
	}
	if p.BudgetW == nil && len(p.Nodes) == 0 {
		return PolicyPatch{}, fmt.Errorf("controlplane: policy patch sets nothing")
	}
	return p, nil
}

// Ops flattens the patch into the op sequence the barrier will
// process: budget first (so node caps are judged against the new
// budget), then per-node changes in name order for determinism.
func (p PolicyPatch) Ops() []Op {
	var ops []Op
	if p.BudgetW != nil {
		ops = append(ops, Op{Kind: OpBudget, Value: *p.BudgetW})
	}
	var names []string
	for name := range p.Nodes {
		//lint:ignore determinism names are sorted immediately below; op order does not depend on map order
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		np := p.Nodes[name]
		if np.CapW != nil {
			ops = append(ops, Op{Kind: OpCap, Node: name, Value: *np.CapW})
		}
		if np.SLOLatencyS != nil {
			ops = append(ops, Op{Kind: OpSLO, Node: name, Value: *np.SLOLatencyS})
		}
	}
	return ops
}

// PatchResult is the policy/membership endpoints' response body: the
// per-op outcomes in submission order. Applied is the conjunction.
type PatchResult struct {
	Applied bool        `json:"applied"`
	Results []AppliedOp `json:"results"`
}

// APIHandler serves the daemon's control API:
//
//	GET  /policy     — current Status snapshot
//	POST /policy     — PolicyPatch body; queued for the next barrier;
//	                   200 all applied, 422 any rejected (with reasons)
//	POST /membership — single Op body, kind join or drain; same contract
//
// Mutations block until the control loop's next reallocation barrier
// resolves them (bounded by the request context), so the response
// carries the authoritative applied/rejected outcome, not a guess.
func APIHandler(d *Daemon) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/policy", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			writeJSON(w, http.StatusOK, d.Status())
		case http.MethodPost:
			body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			patch, err := ParsePatch(body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			resolve(d, w, r, patch.Ops())
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/membership", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var op Op
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&op); err != nil {
			http.Error(w, fmt.Sprintf("membership op: %v", err), http.StatusBadRequest)
			return
		}
		if op.Kind != OpJoin && op.Kind != OpDrain {
			http.Error(w, fmt.Sprintf("membership op: kind %q not allowed (want join or drain)", op.Kind), http.StatusBadRequest)
			return
		}
		if op.Kind == OpDrain && op.Node == "" {
			http.Error(w, "membership op: drain needs a node", http.StatusBadRequest)
			return
		}
		resolve(d, w, r, []Op{op})
	})
	return mux
}

// resolve submits ops to the control loop and waits for the next
// barrier to judge them, translating the outcomes to HTTP.
func resolve(d *Daemon, w http.ResponseWriter, r *http.Request, ops []Op) {
	chans := make([]<-chan AppliedOp, len(ops))
	for i, op := range ops {
		chans[i] = d.Submit(op)
	}
	res := PatchResult{Applied: true}
	for _, ch := range chans {
		select {
		case out := <-ch:
			res.Results = append(res.Results, out)
			if !out.Applied {
				res.Applied = false
			}
		case <-r.Context().Done():
			http.Error(w, "control loop did not reach a barrier before the request deadline", http.StatusServiceUnavailable)
			return
		}
	}
	code := http.StatusOK
	if !res.Applied {
		code = http.StatusUnprocessableEntity
	}
	writeJSON(w, code, res)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}
