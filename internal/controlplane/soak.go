package controlplane

import "fmt"

// SoakSchedule builds the seeded churn/reconfiguration schedule the
// soak harness runs: joins, graceful drains, crash-and-recover plus a
// crash that stays down long enough to exercise dead-node reservation
// release, and a spread of hot policy changes (budget dips and
// restores, per-node caps set and cleared, SLO targets set and
// cleared). Positions are fractions of the run so the same shape
// scales from a short CI soak to a multi-day run. Requires at least
// six initial nodes (targets reference n000..n005) and a budget
// generous enough that the joins' floors stay admissible.
func SoakSchedule(periods, nodes int, budgetW float64) (string, error) {
	if nodes < 6 {
		return "", fmt.Errorf("controlplane: soak schedule needs at least 6 initial nodes, got %d", nodes)
	}
	if periods < 50 {
		return "", fmt.Errorf("controlplane: soak schedule needs at least 50 periods, got %d", periods)
	}
	at := func(pct int) int {
		k := periods * pct / 100
		if k < 1 {
			k = 1
		}
		return k
	}
	share := budgetW / float64(nodes)
	dsl := fmt.Sprintf(
		"cap@%d:n001*%.0f;"+ // per-node ceiling
			"budget@%d*%.0f;"+ // budget dip
			"join@%d;"+ // admit (class cycles)
			"kill@%d:n002;"+ // crash that stays down → reservation release
			"join@%d;"+
			"drain@%d:n003;"+ // graceful drain 1
			"slo@%d:n000*0.5;"+ // SLO target on
			"kill@%d:n004;"+ // crash…
			"revive@%d:n004;"+ // …and recover
			"drain@%d:n005;"+ // graceful drain 2
			"join@%d;"+
			"budget@%d*%.0f;"+ // budget restore
			"cap@%d:n001*0;"+ // ceiling cleared
			"drain@%d:n001;"+ // graceful drain 3
			"slo@%d:n000*0", // SLO cleared
		at(5), share,
		at(10), 0.92*budgetW,
		at(15),
		at(20),
		at(28),
		at(35),
		at(40),
		at(45),
		at(55),
		at(58),
		at(62),
		at(70), budgetW,
		at(75),
		at(82),
		at(90),
	)
	if _, err := ParseSchedule(dsl); err != nil {
		return "", err
	}
	return dsl, nil
}
