package controlplane

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testCheckpoint() *Checkpoint {
	return &Checkpoint{
		Version: CheckpointVersion,
		Spec:    Spec{Seed: 11, Nodes: 3, BudgetW: 2850, Policy: "demand-proportional"},
		Period:  40,
		Epoch:   2,
		Serial:  4,
		BudgetW: 2600,
		Ops: []AppliedOp{
			{Period: 10, Op: Op{Kind: OpBudget, Value: 2600}, Applied: true},
			{Period: 20, Op: Op{Kind: OpJoin, Class: "heavy"}, Applied: true},
			{Period: 30, Op: Op{Kind: OpCap, Node: "n009", Value: 700}, Applied: false, Reason: "no member \"n009\""},
		},
		Members: []MemberState{
			{Name: "n000", Class: "heavy", AssignedW: 900, Periods: 40},
			{Name: "n001", Class: "medium", AssignedW: 850, Periods: 40},
		},
		ReservedW:   0,
		StateDigest: "00decafc0ffee000",
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	cp := testCheckpoint()
	b, err := cp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCheckpoint(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Period != cp.Period || got.Epoch != cp.Epoch || got.Serial != cp.Serial ||
		got.BudgetW != cp.BudgetW || got.StateDigest != cp.StateDigest ||
		got.Spec != cp.Spec || len(got.Ops) != len(cp.Ops) || len(got.Members) != len(cp.Members) {
		t.Fatalf("round trip changed the checkpoint:\n got %+v\nwant %+v", got, cp)
	}
	for i := range cp.Ops {
		if got.Ops[i] != cp.Ops[i] {
			t.Fatalf("op %d: got %+v, want %+v", i, got.Ops[i], cp.Ops[i])
		}
	}

	// Save/Load through a file, atomically.
	dir := t.TempDir()
	path := filepath.Join(dir, "rack.ckpt")
	if err := SaveCheckpoint(path, cp); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
	loaded, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.StateDigest != cp.StateDigest {
		t.Fatalf("loaded digest %q, want %q", loaded.StateDigest, cp.StateDigest)
	}
}

// TestCheckpointCorruption is the crash-recovery safety table: every
// flavor of damage refuses to restore with the right typed error, so
// the daemon can fall back to a cold start instead of resuming from
// garbage.
func TestCheckpointCorruption(t *testing.T) {
	encode := func(mutate func(cp *Checkpoint)) []byte {
		cp := testCheckpoint()
		if mutate != nil {
			mutate(cp)
		}
		b, err := cp.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	good := encode(nil)
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrCorrupt},
		{"no-header-newline", []byte("capgpu-checkpoint v1 00000000 10"), ErrCorrupt},
		{"wrong-magic", bytes.Replace(good, []byte("capgpu-checkpoint"), []byte("capgpu-snapsnot42"), 1), ErrCorrupt},
		{"truncated-payload", good[:len(good)-7], ErrCorrupt},
		{"flipped-payload-byte", func() []byte {
			b := append([]byte(nil), good...)
			b[len(b)-10] ^= 0x20
			return b
		}(), ErrCorrupt},
		{"bad-checksum-field", func() []byte {
			nl := bytes.IndexByte(good, '\n')
			fields := strings.Fields(string(good[:nl]))
			fields[2] = "zzzzzzzz"
			return append([]byte(strings.Join(fields, " ")+"\n"), good[nl+1:]...)
		}(), ErrCorrupt},
		{"header-version-skew", bytes.Replace(good, []byte(" v1 "), []byte(" v2 "), 1), ErrVersionSkew},
		{"future-op", encode(func(cp *Checkpoint) {
			cp.Ops[0].Period = cp.Period // op claims to postdate the checkpoint
		}), ErrFuturePeriod},
		{"negative-period", encode(func(cp *Checkpoint) {
			cp.Period = -1
			cp.Ops = nil
		}), ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeCheckpoint(tc.data)
			if err == nil {
				t.Fatal("damaged checkpoint decoded successfully")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("got error %v, want errors.Is(%v)", err, tc.want)
			}
		})
	}
}

// Payload-level version skew has to survive a *valid* checksum: the
// header is regenerated over the altered payload.
func TestCheckpointPayloadVersionSkew(t *testing.T) {
	cp := testCheckpoint()
	b, err := cp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	nl := bytes.IndexByte(b, '\n')
	payload := bytes.Replace(b[nl+1:], []byte(`"version":1`), []byte(`"version":9`), 1)
	raw := append([]byte(fmt.Sprintf("capgpu-checkpoint v1 %08x %d\n", crc32c(payload), len(payload))), payload...)
	_, err = DecodeCheckpoint(raw)
	if !errors.Is(err, ErrVersionSkew) {
		t.Fatalf("got %v, want ErrVersionSkew", err)
	}
}

func TestValidateHorizon(t *testing.T) {
	cp := testCheckpoint()
	if err := cp.ValidateHorizon(40); err != nil {
		t.Fatalf("period-40 checkpoint rejected for a 40-period run: %v", err)
	}
	if err := cp.ValidateHorizon(0); err != nil {
		t.Fatalf("unbounded horizon rejected: %v", err)
	}
	err := cp.ValidateHorizon(39)
	if !errors.Is(err, ErrFuturePeriod) {
		t.Fatalf("got %v, want ErrFuturePeriod", err)
	}
	if !strings.Contains(err.Error(), "period 40") {
		t.Fatalf("error %q does not name the offending period", err)
	}
}

func crc32c(b []byte) uint32 {
	return crc32.Checksum(b, crc32.MakeTable(crc32.Castagnoli))
}

func TestLoadCheckpointMissingFile(t *testing.T) {
	if _, err := LoadCheckpoint(filepath.Join(t.TempDir(), "nope.ckpt")); err == nil {
		t.Fatal("missing file loaded")
	}
}
