package controlplane

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestParsePatch(t *testing.T) {
	p, err := ParsePatch([]byte(`{"budget_w": 2400, "nodes": {"n001": {"cap_w": 700}, "n000": {"slo_latency_s": 0.35, "cap_w": 0}}}`))
	if err != nil {
		t.Fatal(err)
	}
	ops := p.Ops()
	want := []Op{
		{Kind: OpBudget, Value: 2400},
		{Kind: OpCap, Node: "n000", Value: 0},
		{Kind: OpSLO, Node: "n000", Value: 0.35},
		{Kind: OpCap, Node: "n001", Value: 700},
	}
	if len(ops) != len(want) {
		t.Fatalf("got %d ops, want %d: %v", len(ops), len(want), ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("op %d: got %+v, want %+v (budget must come first, nodes in name order)", i, ops[i], want[i])
		}
	}
}

func TestParsePatchErrors(t *testing.T) {
	cases := []struct{ name, body, wantSub string }{
		{"not-json", `budget=2400`, "policy patch"},
		{"unknown-field", `{"budget_watts": 2400}`, "unknown field"},
		{"unknown-node-field", `{"nodes": {"n000": {"watts": 5}}}`, "unknown field"},
		{"trailing-garbage", `{"budget_w": 2400} {"budget_w": 100}`, "trailing data"},
		{"empty-patch", `{}`, "sets nothing"},
		{"empty-node-patch", `{"nodes": {"n000": {}}}`, "sets nothing"},
		{"empty-node-name", `{"nodes": {"": {"cap_w": 5}}}`, "empty node name"},
		{"zero-budget", `{"budget_w": 0}`, "positive and finite"},
		{"negative-budget", `{"budget_w": -100}`, "positive and finite"},
		{"negative-cap", `{"nodes": {"n000": {"cap_w": -1}}}`, "non-negative and finite"},
		{"negative-slo", `{"nodes": {"n000": {"slo_latency_s": -0.1}}}`, "non-negative and finite"},
		// JSON has no NaN/Inf literals; the encodings people try must
		// die in the decoder, not reach the control loop.
		{"nan-budget", `{"budget_w": NaN}`, "policy patch"},
		{"inf-cap", `{"nodes": {"n000": {"cap_w": 1e999}}}`, "policy patch"},
		{"string-budget", `{"budget_w": "2400"}`, "policy patch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParsePatch([]byte(tc.body))
			if err == nil {
				t.Fatalf("ParsePatch(%s) accepted", tc.body)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("ParsePatch(%s) error %q does not mention %q", tc.body, err, tc.wantSub)
			}
		})
	}
}

// TestAPIHandler drives the policy API against a live daemon: the
// control loop steps in the background while HTTP mutations queue for
// the next barrier and block until it judges them.
func TestAPIHandler(t *testing.T) {
	d, err := New(Spec{Seed: 21, Nodes: 2, BudgetW: 4000, RackPeriods: 2}, testDeps())
	if err != nil {
		t.Fatal(err)
	}
	minW, _ := d.Coordinator().Nodes[0].CapRangeW()
	stop := make(chan struct{})
	stepErr := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				stepErr <- nil
				return
			default:
				if err := d.Step(); err != nil {
					stepErr <- err
					return
				}
			}
		}
	}()
	defer func() {
		close(stop)
		if err := <-stepErr; err != nil {
			t.Fatal(err)
		}
	}()
	srv := httptest.NewServer(APIHandler(d))
	defer srv.Close()

	post := func(path, body string) (int, string) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}

	// Feasible patch: applied at the next barrier, 200, epoch moves.
	code, body := post("/policy", `{"budget_w": 3800, "nodes": {"n001": {"cap_w": 1900, "slo_latency_s": 0.5}}}`)
	if code != http.StatusOK {
		t.Fatalf("feasible patch: %d %s", code, body)
	}
	var res PatchResult
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if !res.Applied || len(res.Results) != 3 {
		t.Fatalf("feasible patch result: %+v", res)
	}

	// Infeasible budget: rejected with a reason, 422.
	code, body = post("/policy", fmt.Sprintf(`{"budget_w": %.0f}`, 2*minW-1))
	if code != http.StatusUnprocessableEntity || !strings.Contains(body, "infeasible") {
		t.Fatalf("infeasible patch: %d %s", code, body)
	}

	// Malformed: never reaches the loop, 400.
	if code, body = post("/policy", `{"budget_watts": 1}`); code != http.StatusBadRequest {
		t.Fatalf("unknown field: %d %s", code, body)
	}

	// Membership: join over the API, then drain it.
	if code, body = post("/membership", `{"kind":"join"}`); code != http.StatusOK {
		t.Fatalf("join: %d %s", code, body)
	}
	if code, body = post("/membership", `{"kind":"drain","node":"n002"}`); code != http.StatusOK {
		t.Fatalf("drain: %d %s", code, body)
	}
	if code, body = post("/membership", `{"kind":"kill","node":"n000"}`); code != http.StatusBadRequest {
		t.Fatalf("kill over membership API: %d %s (crash injection is schedule-only)", code, body)
	}

	// GET /policy reflects the applied state.
	resp, err := http.Get(srv.URL + "/policy")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.BudgetW != 3800 || st.Epoch < 3 {
		t.Fatalf("status after patches: %+v", st)
	}
}
