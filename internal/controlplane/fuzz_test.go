package controlplane

import (
	"math"
	"testing"
)

// FuzzParsePatch hammers the policy-API patch decoder with arbitrary
// request bodies: it must never panic, and everything it accepts must
// be safe to hand the control loop — finite, sign-correct watt and
// second values, budget first and nodes in name order in the flattened
// op sequence.
func FuzzParsePatch(f *testing.F) {
	seeds := []string{
		`{"budget_w": 2400}`,
		`{"budget_w": 2400, "nodes": {"n001": {"cap_w": 700}}}`,
		`{"nodes": {"n000": {"slo_latency_s": 0.35}, "n001": {"cap_w": 0}}}`,
		`{}`,
		`{"budget_w": 0}`,
		`{"budget_w": -100}`,
		`{"budget_w": NaN}`,
		`{"budget_w": 1e999}`,
		`{"budget_w": "2400"}`,
		`{"budget_watts": 2400}`,
		`{"nodes": {"n000": {}}}`,
		`{"nodes": {"": {"cap_w": 5}}}`,
		`{"nodes": {"n000": {"cap_w": -1}}}`,
		`{"budget_w": 2400} trailing`,
		`[1,2,3]`,
		`null`,
		``,
		`{"nodes": {"n000": {"cap_w": 700, "slo_latency_s": 0.2}}}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		p, err := ParsePatch([]byte(body))
		if err != nil {
			return
		}
		if p.BudgetW == nil && len(p.Nodes) == 0 {
			t.Fatalf("accepted a patch that sets nothing: %s", body)
		}
		if p.BudgetW != nil {
			if v := *p.BudgetW; math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
				t.Fatalf("accepted budget %v from %s", v, body)
			}
		}
		for name, np := range p.Nodes {
			if name == "" {
				t.Fatalf("accepted empty node name from %s", body)
			}
			if np.CapW != nil {
				if v := *np.CapW; math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
					t.Fatalf("accepted cap %v from %s", v, body)
				}
			}
			if np.SLOLatencyS != nil {
				if v := *np.SLOLatencyS; math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
					t.Fatalf("accepted SLO %v from %s", v, body)
				}
			}
		}
		// The flattened sequence must be deterministic: budget first,
		// then nodes in name order.
		ops := p.Ops()
		if len(ops) == 0 {
			t.Fatalf("accepted patch flattened to no ops: %s", body)
		}
		start := 0
		if p.BudgetW != nil {
			if ops[0].Kind != OpBudget {
				t.Fatalf("budget not first: %v", ops)
			}
			start = 1
		}
		for i := start + 1; i < len(ops); i++ {
			if ops[i].Node < ops[i-1].Node {
				t.Fatalf("node ops out of order: %v", ops)
			}
		}
	})
}
