package controlplane

import (
	"strings"
	"testing"
)

func TestParseSchedule(t *testing.T) {
	got, err := ParseSchedule("budget@60*2400; join@40:heavy ;drain@80:n001;kill@120:n000;revive@200:n000;cap@90:n002*700;slo@100:n001*0.35;join@41")
	if err != nil {
		t.Fatal(err)
	}
	want := []TimedOp{
		{Period: 40, Op: Op{Kind: OpJoin, Class: "heavy"}},
		{Period: 41, Op: Op{Kind: OpJoin}},
		{Period: 60, Op: Op{Kind: OpBudget, Value: 2400}},
		{Period: 80, Op: Op{Kind: OpDrain, Node: "n001"}},
		{Period: 90, Op: Op{Kind: OpCap, Node: "n002", Value: 700}},
		{Period: 100, Op: Op{Kind: OpSLO, Node: "n001", Value: 0.35}},
		{Period: 120, Op: Op{Kind: OpKill, Node: "n000"}},
		{Period: 200, Op: Op{Kind: OpRevive, Node: "n000"}},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d ops, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("op %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	// Round trip through the canonical rendering.
	back, err := ParseSchedule(ScheduleString(got))
	if err != nil {
		t.Fatalf("canonical form does not re-parse: %v", err)
	}
	for i := range got {
		if back[i] != got[i] {
			t.Fatalf("round trip changed %+v into %+v", got[i], back[i])
		}
	}
}

func TestParseScheduleErrors(t *testing.T) {
	cases := []struct{ name, dsl, wantSub string }{
		{"empty", "", "empty schedule"},
		{"only-separators", " ; ; ", "empty schedule"},
		{"no-at", "budget*100", "want kind@period"},
		{"bad-period", "join@x", "bad period"},
		{"negative-period", "join@-3", "bad period"},
		{"unknown-kind", "reboot@5:n000", "unknown kind"},
		{"drain-no-target", "drain@5", "needs a node target"},
		{"kill-no-target", "kill@5", "needs a node target"},
		{"cap-no-target", "cap@5*100", "needs a node target"},
		{"slo-no-target", "slo@5*0.2", "needs a node target"},
		{"budget-with-target", "budget@5:n000*100", "takes no target"},
		{"budget-no-value", "budget@5", "positive *watts"},
		{"nan-value", "cap@5:n000*NaN", "finite"},
		{"inf-value", "budget@5*+Inf", "finite"},
		{"negative-value", "cap@5:n000*-10", "finite and non-negative"},
		{"garbage-value", "cap@5:n000*watts", "bad value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSchedule(tc.dsl)
			if err == nil {
				t.Fatalf("ParseSchedule(%q) accepted", tc.dsl)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("ParseSchedule(%q) error %q does not mention %q", tc.dsl, err, tc.wantSub)
			}
		})
	}
}

func TestSoakSchedule(t *testing.T) {
	dsl, err := SoakSchedule(1000, 6, 5700)
	if err != nil {
		t.Fatal(err)
	}
	ops, err := ParseSchedule(dsl)
	if err != nil {
		t.Fatalf("soak schedule does not parse: %v", err)
	}
	counts := map[OpKind]int{}
	for _, op := range ops {
		counts[op.Op.Kind]++
		if op.Period < 1 || op.Period >= 1000 {
			t.Fatalf("op %v outside the run", op)
		}
	}
	// The soak acceptance floor: ≥3 joins, ≥3 drains, ≥2 deaths, ≥5
	// hot policy reconfigurations.
	if counts[OpJoin] < 3 || counts[OpDrain] < 3 || counts[OpKill] < 2 {
		t.Fatalf("churn counts too low: %v", counts)
	}
	if counts[OpBudget]+counts[OpCap]+counts[OpSLO] < 5 {
		t.Fatalf("policy reconfig count too low: %v", counts)
	}
	if _, err := SoakSchedule(1000, 3, 5700); err == nil {
		t.Fatal("accepted a fleet too small for the schedule's targets")
	}
	if _, err := SoakSchedule(10, 6, 5700); err == nil {
		t.Fatal("accepted a run too short for distinct positions")
	}
}
