// Package controlplane turns the rack coordinator into a long-running
// control-plane daemon: churn-tolerant membership (join / drain /
// release at reallocation barriers), hot reconfiguration (budget,
// per-node caps, SLO targets — validated, queued, and applied
// atomically at the next barrier without dropping a control period),
// crash recovery (versioned, checksummed checkpoints restored by
// deterministic replay), and a seeded soak harness (open-loop diurnal
// + bursty arrival traces plus a churn/reconfig schedule in the faults
// DSL idiom).
//
// Determinism contract: the package is inside the capgpu-lint
// determinism scope. All external inputs — the churn schedule and
// API-submitted mutations — funnel into a single op log, processed
// only at reallocation barriers; everything else is a pure function of
// the spec and seeds. A daemon killed at any period and restored from
// its checkpoint replays the logged inputs and produces byte-identical
// records, telemetry, flight streams, and Prometheus exposition to an
// uninterrupted run, at any worker count (pinned in
// internal/experiments).
package controlplane

import (
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/provenance"
	"repro/internal/telemetry"
)

// Spec is the daemon's durable configuration: everything needed to
// rebuild the world from scratch. It is embedded verbatim in every
// checkpoint, so restore never depends on out-of-band flags.
type Spec struct {
	Seed int64 `json:"seed"`
	// Nodes is the initial fleet size (classes cycle across it).
	Nodes   int     `json:"nodes"`
	BudgetW float64 `json:"budget_w"`
	// Policy names the allocation policy: uniform,
	// demand-proportional (default), or priority.
	Policy string `json:"policy,omitempty"`
	// RackPeriods is the reallocation cadence (default 2).
	RackPeriods int `json:"rack_periods,omitempty"`
	// Workers is the default node-stepping fan-out; it does not affect
	// output bytes and a restore may override it.
	Workers int `json:"workers,omitempty"`
	// Schedule is the seeded churn/reconfiguration schedule in
	// ParseSchedule DSL form ("" = none).
	Schedule string `json:"schedule,omitempty"`
	// Load shapes open-loop arrival traffic (zero value = steady load).
	Load LoadSpec `json:"load,omitempty"`
	// Energy attaches diurnal carbon/price weight curves to the hub's
	// energy ledger (zero value = unweighted accounting).
	Energy EnergySpec `json:"energy,omitempty"`
	// CheckpointEvery is the checkpoint cadence in periods (0 = none).
	// Checkpoint boundaries are part of the deterministic timeline: the
	// checkpoint telemetry event is emitted whether or not a file sink
	// is attached, so restored runs reproduce the event stream exactly.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// DrainBarriers is how many reallocation barriers a graceful drain
	// ramps across before the node is released (default 4).
	DrainBarriers int `json:"drain_barriers,omitempty"`
	// ReservationHold is how many consecutive missed-heartbeat periods
	// a dead node's power reservation is held before it is released
	// back to the budget (default cluster.DefaultReservationHold;
	// negative holds forever).
	ReservationHold int `json:"reservation_hold,omitempty"`
}

// ClassSpec names one workload class the node factory can build.
type ClassSpec struct {
	Name     string
	Priority int
}

// Deps are the environment-side dependencies injected into the daemon:
// the node factory (internal/experiments provides one that shares
// identified class models across nodes), the class catalogue, and the
// observability sinks. Telemetry and flight attachments are optional.
type Deps struct {
	// NewNode builds one managed node for the named workload class,
	// fully seeded — it must be a pure function of its arguments so
	// replayed joins rebuild identical nodes.
	NewNode func(name, class string, seed int64, priority int) (*cluster.Node, error)
	// Classes is the class catalogue; joins with an empty class cycle
	// through it by node serial.
	Classes []ClassSpec
	// Hub, when non-nil, receives telemetry (per-node sinks labeled
	// with the bare node name; rack-scope events under "rack").
	Hub *telemetry.Hub
	// FlightWriter, when non-nil, opens the JSONL destination for one
	// node's flight stream. It is called once per node construction —
	// including replayed joins, so restore naturally recreates (and
	// thereby truncates) the streams it re-emits.
	FlightWriter func(node string) (io.Writer, error)
	// Tracer, when non-nil, receives the causal-provenance stream: one
	// span per policy op (staged as a cause for the barrier's
	// reallocation), plus the coordinator-side spans (the daemon
	// installs the tracer on its coordinator). Checkpoint restore
	// replays the op log through the same code paths, so a restored
	// daemon re-mints the byte-identical trace into fresh sinks.
	Tracer *provenance.Tracer
}

// ReleasedNode archives a drained-and-released member's history.
type ReleasedNode struct {
	Name    string
	Class   string
	Records []core.PeriodRecord
	Flight  *flight.Recorder
}

// NodeStatus is one member's row in a status snapshot.
type NodeStatus struct {
	Name        string  `json:"name"`
	Class       string  `json:"class"`
	AssignedW   float64 `json:"assigned_w"`
	CapCeilW    float64 `json:"cap_ceil_w,omitempty"`
	SLOLatencyS float64 `json:"slo_latency_s,omitempty"`
	Draining    bool    `json:"draining,omitempty"`
	Dead        bool    `json:"dead,omitempty"`
	Missed      int     `json:"missed_heartbeats,omitempty"`
}

// Status is the daemon's externally visible state, published after
// every period for the policy API's GET endpoints.
type Status struct {
	Period              int          `json:"period"`
	Epoch               int          `json:"epoch"`
	BudgetW             float64      `json:"budget_w"`
	ReservedW           float64      `json:"reserved_w"`
	Members             []NodeStatus `json:"members"`
	Released            []string     `json:"released,omitempty"`
	InvariantViolations int          `json:"invariant_violations"`
}

// member is the control plane's bookkeeping for one managed node.
type member struct {
	name       string
	class      string
	sloLat     float64
	slos       []float64 // handed to the harness SLOs closure
	draining   bool
	drainStepW float64
	causeID    string // drain op span driving the ramp (tracing only)
	rec        *flight.Recorder
}

// pendingOp is an API-submitted mutation awaiting the next barrier.
type pendingOp struct {
	op   Op
	done chan AppliedOp
}

// Daemon is the long-running control plane over one rack coordinator.
// Step/RunTo are single-goroutine (the serve loop); Submit and Status
// are safe to call concurrently from API handlers.
type Daemon struct {
	spec Spec
	deps Deps

	coord  *cluster.Coordinator
	byName map[string]*member

	budgetW float64
	epoch   int
	serial  int
	k       int

	silenced map[string]bool
	schedule []TimedOp
	schedIdx int

	replaying bool
	replay    []AppliedOp
	replayIdx int

	oplog    []AppliedOp
	released []*ReleasedNode
	// curOpID is the provenance span of the op currently inside
	// applyOp, so tryApply's own telemetry (node-join, drain-start)
	// carries the cause; "" outside applyOp or without a tracer.
	curOpID string

	// Allocation snapshot from the last barrier, for the budget
	// invariant Σ(live commanded) ≤ budget − reservations: "live" and
	// "reserved" mean as-of the allocation, so a node recovering
	// mid-cycle stays accounted under its reservation until the next
	// barrier re-admits it.
	allocLive     map[string]bool
	allocBudgetW  float64
	allocReserved float64

	invariantViolations int
	invariantDetail     string

	checkpointPath string
	ckptErr        error

	mu      sync.Mutex
	pending []pendingOp
	status  Status
}

// New builds a daemon from the spec: the initial fleet, the parsed
// churn schedule, and the coordinator wiring.
func New(spec Spec, deps Deps) (*Daemon, error) {
	if spec.Nodes < 1 {
		return nil, fmt.Errorf("controlplane: spec needs at least one initial node")
	}
	if spec.BudgetW <= 0 || math.IsNaN(spec.BudgetW) || math.IsInf(spec.BudgetW, 0) {
		return nil, fmt.Errorf("controlplane: budget %v W must be positive and finite", spec.BudgetW)
	}
	if deps.NewNode == nil || len(deps.Classes) == 0 {
		return nil, fmt.Errorf("controlplane: deps need a node factory and at least one class")
	}
	if spec.RackPeriods < 1 {
		spec.RackPeriods = 2
	}
	if spec.DrainBarriers < 1 {
		spec.DrainBarriers = 4
	}
	policy, err := policyByName(spec.Policy)
	if err != nil {
		return nil, err
	}
	spec.Policy = policy.Name()
	var schedule []TimedOp
	if spec.Schedule != "" {
		schedule, err = ParseSchedule(spec.Schedule)
		if err != nil {
			return nil, err
		}
	}
	d := &Daemon{
		spec:      spec,
		deps:      deps,
		byName:    map[string]*member{},
		budgetW:   spec.BudgetW,
		silenced:  map[string]bool{},
		schedule:  schedule,
		allocLive: map[string]bool{},
	}
	nodes := make([]*cluster.Node, 0, spec.Nodes)
	for i := 0; i < spec.Nodes; i++ {
		cs := deps.Classes[i%len(deps.Classes)]
		node, m, err := d.buildNode(cs.Name)
		if err != nil {
			return nil, err
		}
		d.serial++
		d.byName[m.name] = m
		nodes = append(nodes, node)
	}
	coord, err := cluster.NewCoordinator(nodes, policy, func(int) float64 { return d.budgetW })
	if err != nil {
		return nil, err
	}
	coord.RackPeriods = spec.RackPeriods
	coord.Workers = spec.Workers
	coord.ReservationHoldPeriods = spec.ReservationHold
	coord.Silenced = func(_ int, name string) bool { return d.silenced[name] }
	if deps.Hub != nil {
		coord.Telemetry = deps.Hub.NodeSink("rack")
		if spec.Energy.Enabled() {
			deps.Hub.SetEnergyWeights(spec.Energy.CarbonCurve(), spec.Energy.PriceCurve())
		}
		deps.Hub.SetRackBudget(d.budgetW)
		sinks := make([]telemetry.Sink, len(nodes))
		for i, n := range nodes {
			sinks[i] = deps.Hub.NodeSink(n.Name)
		}
		coord.NodeTelemetry = sinks
	}
	if deps.Tracer != nil {
		// Guarded assignment: a nil *provenance.Tracer stored into the
		// interface field would be a non-nil interface and defeat the
		// coordinator's nil checks.
		coord.Tracer = deps.Tracer
	}
	d.coord = coord
	d.publishStatus()
	return d, nil
}

// Resume rebuilds a daemon from a checkpoint by deterministic replay:
// a fresh world from the embedded spec, periods [0, cp.Period) re-run
// with external inputs fed from the op log, then the state digest
// verified. The replayed prefix re-emits its telemetry and flight
// bytes into the (fresh) deps sinks, so the resumed run's artifacts
// are byte-identical to an uninterrupted run's.
func Resume(cp *Checkpoint, deps Deps) (*Daemon, error) {
	d, err := New(cp.Spec, deps)
	if err != nil {
		return nil, err
	}
	d.replaying = true
	d.replay = cp.Ops
	for d.k < cp.Period {
		if err := d.Step(); err != nil {
			return nil, fmt.Errorf("controlplane: replay period %d: %w", d.k, err)
		}
	}
	d.replaying = false
	d.replay = nil
	if d.replayIdx != len(cp.Ops) {
		return nil, fmt.Errorf("%w: replay consumed %d of %d logged ops", ErrCorrupt, d.replayIdx, len(cp.Ops))
	}
	if got := d.digest(); got != cp.StateDigest {
		return nil, fmt.Errorf("%w: state digest mismatch after replay (got %s, want %s)", ErrCorrupt, got, cp.StateDigest)
	}
	return d, nil
}

// policyByName resolves the allocation policy ("" defaults to
// demand-proportional).
func policyByName(name string) (cluster.Policy, error) {
	switch name {
	case "", "demand-proportional":
		return cluster.DemandProportional{}, nil
	case "uniform":
		return cluster.Uniform{}, nil
	case "priority":
		return cluster.Priority{}, nil
	}
	return nil, fmt.Errorf("controlplane: unknown policy %q (want uniform, demand-proportional, priority)", name)
}

// buildNode constructs and wires one managed node for the next serial.
func (d *Daemon) buildNode(class string) (*cluster.Node, *member, error) {
	cs := d.classByName(class)
	if cs == nil {
		return nil, nil, fmt.Errorf("controlplane: unknown class %q", class)
	}
	name := fmt.Sprintf("n%03d", d.serial)
	node, err := d.deps.NewNode(name, class, d.spec.Seed+int64(d.serial)*37, cs.Priority)
	if err != nil {
		return nil, nil, fmt.Errorf("controlplane: build node %s: %w", name, err)
	}
	m := &member{name: name, class: class}
	node.Harness().WorkloadClass = class
	node.Harness().PolicyEpoch = d.epoch
	if d.deps.Hub != nil {
		node.Harness().SetTelemetry(d.deps.Hub.NodeSink(name), name)
	}
	if d.deps.FlightWriter != nil {
		w, err := d.deps.FlightWriter(name)
		if err != nil {
			return nil, nil, fmt.Errorf("controlplane: flight stream for %s: %w", name, err)
		}
		if w != nil {
			m.rec = flight.NewRecorder(flight.Config{JSONL: w})
			m.rec.SetEpoch(d.epoch)
			node.Harness().SetFlight(m.rec)
		}
	}
	node.Harness().SLOs = func(int) []float64 { return m.slos }
	return node, m, nil
}

func (d *Daemon) classByName(name string) *ClassSpec {
	for i := range d.deps.Classes {
		if d.deps.Classes[i].Name == name {
			return &d.deps.Classes[i]
		}
	}
	return nil
}

// Submit queues one mutation for the next reallocation barrier and
// returns a channel that receives the outcome (applied or rejected
// with a reason) once the barrier processes it. Safe for concurrent
// use from API handlers.
func (d *Daemon) Submit(op Op) <-chan AppliedOp {
	ch := make(chan AppliedOp, 1)
	d.mu.Lock()
	d.pending = append(d.pending, pendingOp{op: op, done: ch})
	d.mu.Unlock()
	return ch
}

// SetCheckpointPath attaches the on-disk checkpoint destination for
// live runs ("" disables writing; the deterministic checkpoint events
// are emitted either way).
func (d *Daemon) SetCheckpointPath(path string) { d.checkpointPath = path }

// Period returns the number of completed control periods.
func (d *Daemon) Period() int { return d.k }

// Epoch returns the current policy epoch.
func (d *Daemon) Epoch() int { return d.epoch }

// Coordinator exposes the underlying rack coordinator (read-only use).
func (d *Daemon) Coordinator() *cluster.Coordinator { return d.coord }

// OpLog returns a copy of the processed-op log.
func (d *Daemon) OpLog() []AppliedOp { return append([]AppliedOp(nil), d.oplog...) }

// Released returns the archive of drained-and-released members.
func (d *Daemon) Released() []*ReleasedNode { return d.released }

// InvariantViolations reports how many periods violated
// Σ(live commanded) ≤ budget − reservations, with the first offender.
func (d *Daemon) InvariantViolations() (int, string) {
	return d.invariantViolations, d.invariantDetail
}

// CheckpointErr returns the sticky checkpoint-write error, if any: a
// failing disk must not take the control loop down, but the failure
// has to surface at shutdown.
func (d *Daemon) CheckpointErr() error { return d.ckptErr }

// FlightErr returns the first sticky flight-stream write error across
// live and released members.
func (d *Daemon) FlightErr() error {
	for _, n := range d.coord.Nodes {
		if m := d.byName[n.Name]; m != nil && m.rec != nil {
			if err := m.rec.Err(); err != nil {
				return fmt.Errorf("node %s: %w", n.Name, err)
			}
		}
	}
	for _, r := range d.released {
		if r.Flight != nil {
			if err := r.Flight.Err(); err != nil {
				return fmt.Errorf("node %s: %w", r.Name, err)
			}
		}
	}
	return nil
}

// MemberRecords returns every member's per-period records, live and
// released alike, keyed by node name.
func (d *Daemon) MemberRecords() map[string][]core.PeriodRecord {
	out := make(map[string][]core.PeriodRecord, len(d.coord.Nodes)+len(d.released))
	for _, n := range d.coord.Nodes {
		out[n.Name] = n.Records()
	}
	for _, r := range d.released {
		out[r.Name] = r.Records
	}
	return out
}

// Status returns the latest published state snapshot.
func (d *Daemon) Status() Status {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.status
}

// RunTo steps the daemon until the given period count is reached.
func (d *Daemon) RunTo(periods int) error {
	for d.k < periods {
		if err := d.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Step advances the daemon by one control period: process mutations at
// the reallocation barrier, drive the load generator, step the rack,
// check the budget invariant, and handle checkpoint boundaries.
func (d *Daemon) Step() error {
	k := d.k
	isBarrier := k%d.coord.RackPeriods == 0
	if isBarrier {
		if err := d.barrier(k); err != nil {
			return err
		}
	}
	if d.spec.Load.Enabled() {
		win := d.spec.Load.BurstWindow()
		for _, n := range d.coord.Nodes {
			n.Server.SetArrivalScale(d.spec.Load.Factor(d.spec.Seed, k, n.Name))
			// Announce each hot burst window at its first period so the
			// doctor can attribute the arrival step's transient overshoot
			// to the injected load. BurstAt is a pure function of
			// (seed, k, name), so replay re-emits identically.
			if d.deps.Hub != nil && k%win == 0 && d.spec.Load.BurstAt(d.spec.Seed, k, n.Name) {
				d.deps.Hub.NodeSink(n.Name).Emit(telemetry.Event{
					TimeS: n.Server.Now(), Period: k, Type: telemetry.EventLoadBurst,
					Value: float64(win),
				})
			}
		}
	}
	if err := d.coord.Step(k); err != nil {
		return err
	}
	if isBarrier {
		d.snapshotAllocation()
	}
	d.k = k + 1
	d.checkInvariant(k)
	if every := d.spec.CheckpointEvery; every > 0 && d.k%every == 0 {
		d.checkpointBoundary(k)
	}
	d.publishStatus()
	return nil
}

// barrier runs the control-plane half of a reallocation barrier:
// advance graceful drains, then process due mutations — from the op
// log when replaying, from the schedule and the API queue when live.
//
//capgpu:barrier
func (d *Daemon) barrier(k int) error {
	if err := d.stepDrains(k); err != nil {
		return err
	}
	if d.replaying {
		// The schedule's effect is already in the op log; keep its
		// consumption pointer in step so live operation resumes at the
		// right entry, but discard the entries themselves.
		for d.schedIdx < len(d.schedule) && d.schedule[d.schedIdx].Period <= k {
			d.schedIdx++
		}
		for d.replayIdx < len(d.replay) && d.replay[d.replayIdx].Period == k {
			logged := d.replay[d.replayIdx]
			d.replayIdx++
			got := d.applyOp(logged.Op, k)
			d.oplog = append(d.oplog, got)
			if got != logged {
				return fmt.Errorf("%w: replay diverged at period %d: %s resolved applied=%v (%s), log says applied=%v (%s)",
					ErrCorrupt, k, logged.Op, got.Applied, got.Reason, logged.Applied, logged.Reason)
			}
		}
		return nil
	}
	for d.schedIdx < len(d.schedule) && d.schedule[d.schedIdx].Period <= k {
		op := d.schedule[d.schedIdx].Op
		d.schedIdx++
		d.oplog = append(d.oplog, d.applyOp(op, k))
	}
	d.mu.Lock()
	pend := d.pending
	d.pending = nil
	d.mu.Unlock()
	for _, p := range pend {
		res := d.applyOp(p.op, k)
		d.oplog = append(d.oplog, res)
		if p.done != nil {
			p.done <- res
		}
	}
	return nil
}

// stepDrains advances every draining member's cap-ceiling ramp one
// barrier and releases members whose ramp reached the floor.
func (d *Daemon) stepDrains(k int) error {
	// Snapshot: releases mutate coord.Nodes.
	nodes := append([]*cluster.Node(nil), d.coord.Nodes...)
	for _, n := range nodes {
		m := d.byName[n.Name]
		if m == nil || !m.draining {
			continue
		}
		if tr := d.deps.Tracer; tr != nil {
			// Each barrier of the ramp is a fresh effect of the drain op:
			// re-stage it so the reallocation that sees the lowered
			// ceiling lists the drain among its causes.
			tr.Stage(m.causeID)
		}
		minW, _ := n.CapRangeW()
		next := n.CapCeilingW() - m.drainStepW
		if next > minW*1.0001 {
			n.SetCapCeilingW(next)
			continue
		}
		if len(d.coord.Nodes) == 1 {
			// Cannot release the last member; hold at the floor until
			// membership allows it (drain admission makes this unreachable
			// in practice).
			n.SetCapCeilingW(minW)
			continue
		}
		removed, err := d.coord.RemoveNode(n.Name)
		if err != nil {
			return err
		}
		d.released = append(d.released, &ReleasedNode{
			Name: n.Name, Class: m.class, Records: removed.Records(), Flight: m.rec,
		})
		delete(d.byName, n.Name)
		delete(d.silenced, n.Name)
		delete(d.allocLive, n.Name)
		releaseCause := ""
		if tr := d.deps.Tracer; tr != nil {
			releaseCause = tr.NodeReleased(n.Name, k, m.causeID)
			tr.Stage(releaseCause)
		}
		if d.deps.Hub != nil {
			d.deps.Hub.NodeSink(n.Name).Emit(telemetry.Event{
				TimeS: n.Server.Now(), Period: k, Type: telemetry.EventNodeReleased,
				Device: -1, Value: n.Assigned(),
				Detail: fmt.Sprintf("class=%s periods=%d", m.class, len(removed.Records())),
				Cause:  releaseCause,
			})
		}
	}
	return nil
}

// applyOp validates and applies one mutation at barrier period k,
// emitting the matching telemetry and returning the op-log entry.
func (d *Daemon) applyOp(op Op, k int) AppliedOp {
	res := AppliedOp{Period: k, Op: op}
	if tr := d.deps.Tracer; tr != nil {
		d.curOpID = tr.BeginPolicyOp(string(op.Kind), k, op.Node, op.String())
	}
	applied, reason, err := d.tryApply(op, k)
	if err != nil {
		// Environment failure (factory, flight sink): surface as a
		// rejection so the log stays deterministic, but remember it.
		applied, reason = false, err.Error()
	}
	res.Applied = applied
	res.Reason = reason
	if tr := d.deps.Tracer; tr != nil {
		tr.EndPolicyOp(d.curOpID, k, applied)
		if applied {
			// Stage the op as a cause for this barrier's reallocation —
			// except kill/revive, whose effect reaches the allocator only
			// through the death/recovery the roll call will observe; they
			// parent those spans instead.
			switch op.Kind {
			case OpKill:
				tr.RegisterKill(op.Node, d.curOpID)
			case OpRevive:
				tr.RegisterRevive(op.Node, d.curOpID)
			default:
				tr.Stage(d.curOpID)
			}
			if op.Kind == OpDrain {
				if m := d.byName[op.Node]; m != nil {
					m.causeID = d.curOpID // the ramp re-stages it each barrier
				}
			}
		}
	}
	cause := d.curOpID
	d.curOpID = ""
	if d.deps.Hub == nil {
		return res
	}
	sink := d.deps.Hub.NodeSink("rack")
	switch {
	case !applied:
		sink.Emit(telemetry.Event{
			TimeS: d.nowS(), Period: k, Type: telemetry.EventPolicyRejected,
			Device: -1, Detail: op.String() + ": " + reason, Cause: cause,
		})
	case op.Kind == OpBudget || op.Kind == OpCap || op.Kind == OpSLO:
		sink.Emit(telemetry.Event{
			TimeS: d.nowS(), Period: k, Type: telemetry.EventPolicyApplied,
			Device: -1, Value: float64(d.epoch), Detail: op.String(), Cause: cause,
		})
	}
	return res
}

// tryApply is the validation and state-mutation core of applyOp. It
// returns applied=false with a human-readable reason for infeasible or
// malformed requests; err is reserved for environment failures.
func (d *Daemon) tryApply(op Op, k int) (applied bool, reason string, err error) {
	switch op.Kind {
	case OpJoin:
		class := op.Class
		if class == "" {
			class = d.deps.Classes[d.serial%len(d.deps.Classes)].Name
		}
		if d.classByName(class) == nil {
			return false, fmt.Sprintf("unknown class %q", class), nil
		}
		node, m, err := d.buildNode(class)
		if err != nil {
			return false, "", err
		}
		// Admission: the rack must keep every member's floor feasible
		// under the current budget net of dead-node reservations.
		newMin, _ := node.CapRangeW()
		floors := newMin
		for _, n := range d.coord.Nodes {
			mw, _ := n.CapRangeW()
			floors += mw
		}
		if headroom := d.budgetW - d.coord.ReservedW(); floors > headroom {
			return false, fmt.Sprintf("admission: member floors %.0f W exceed budget headroom %.0f W", floors, headroom), nil
		}
		var sink telemetry.Sink
		if d.deps.Hub != nil {
			sink = d.deps.Hub.NodeSink(node.Name)
		}
		if err := d.coord.AddNode(node, sink); err != nil {
			return false, "", err
		}
		d.serial++
		d.byName[m.name] = m
		if m.rec != nil {
			m.rec.SetEpoch(d.epoch)
		}
		if sink != nil {
			sink.Emit(telemetry.Event{
				TimeS: node.Server.Now(), Period: k, Type: telemetry.EventNodeJoined,
				Device: -1, Value: newMin, Detail: "class=" + m.class, Cause: d.curOpID,
			})
		}
		return true, "", nil

	case OpDrain:
		m := d.byName[op.Node]
		if m == nil {
			return false, fmt.Sprintf("no member %q", op.Node), nil
		}
		if m.draining {
			return false, fmt.Sprintf("%s is already draining", op.Node), nil
		}
		remaining := 0
		for _, n := range d.coord.Nodes {
			if mm := d.byName[n.Name]; mm != nil && !mm.draining {
				remaining++
			}
		}
		if remaining <= 1 {
			return false, fmt.Sprintf("draining %s would leave the rack empty", op.Node), nil
		}
		node := d.nodeByName(op.Node)
		minW, _ := node.CapRangeW()
		start := node.Assigned()
		if start < minW {
			start = minW
		}
		m.draining = true
		m.drainStepW = (start - minW) / float64(d.spec.DrainBarriers)
		if m.drainStepW <= 0 {
			m.drainStepW = 1 // already at the floor: still ramp to release
		}
		node.SetCapCeilingW(start)
		if d.deps.Hub != nil {
			d.deps.Hub.NodeSink(op.Node).Emit(telemetry.Event{
				TimeS: node.Server.Now(), Period: k, Type: telemetry.EventDrainStart,
				Device: -1, Value: start,
				Detail: fmt.Sprintf("floor=%.0fW barriers=%d", minW, d.spec.DrainBarriers),
				Cause:  d.curOpID,
			})
		}
		return true, "", nil

	case OpKill:
		if d.byName[op.Node] == nil {
			return false, fmt.Sprintf("no member %q", op.Node), nil
		}
		if d.silenced[op.Node] {
			return false, fmt.Sprintf("%s is already down", op.Node), nil
		}
		d.silenced[op.Node] = true
		return true, "", nil

	case OpRevive:
		if !d.silenced[op.Node] {
			return false, fmt.Sprintf("%s is not down", op.Node), nil
		}
		delete(d.silenced, op.Node)
		return true, "", nil

	case OpBudget:
		v := op.Value
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			return false, fmt.Sprintf("budget %v W must be positive and finite", v), nil
		}
		floors := 0.0
		for _, n := range d.coord.Nodes {
			mw, _ := n.CapRangeW()
			floors += mw
		}
		if floors > v {
			return false, fmt.Sprintf("infeasible: member floors %.0f W exceed requested budget %.0f W", floors, v), nil
		}
		d.budgetW = v
		if d.deps.Hub != nil {
			d.deps.Hub.SetRackBudget(v)
		}
		d.bumpEpoch()
		return true, "", nil

	case OpCap:
		m := d.byName[op.Node]
		if m == nil {
			return false, fmt.Sprintf("no member %q", op.Node), nil
		}
		if m.draining {
			return false, fmt.Sprintf("%s is draining; its ceiling belongs to the drain ramp", op.Node), nil
		}
		v := op.Value
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return false, fmt.Sprintf("cap %v W must be non-negative and finite", v), nil
		}
		d.nodeByName(op.Node).SetCapCeilingW(v)
		d.bumpEpoch()
		return true, "", nil

	case OpSLO:
		m := d.byName[op.Node]
		if m == nil {
			return false, fmt.Sprintf("no member %q", op.Node), nil
		}
		v := op.Value
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return false, fmt.Sprintf("SLO %v s must be non-negative and finite", v), nil
		}
		m.sloLat = v
		if v == 0 {
			m.slos = nil
		} else {
			node := d.nodeByName(op.Node)
			slos := make([]float64, node.Server.NumGPUs())
			for i := range slos {
				slos[i] = v
			}
			m.slos = slos
		}
		d.bumpEpoch()
		return true, "", nil
	}
	return false, fmt.Sprintf("unknown op kind %q", op.Kind), nil
}

// bumpEpoch advances the policy epoch and restamps every live flight
// recorder and harness, so subsequent decision records and period
// samples carry the new epoch.
func (d *Daemon) bumpEpoch() {
	d.epoch++
	for _, n := range d.coord.Nodes {
		n.Harness().PolicyEpoch = d.epoch
		if m := d.byName[n.Name]; m != nil && m.rec != nil {
			m.rec.SetEpoch(d.epoch)
		}
	}
}

func (d *Daemon) nodeByName(name string) *cluster.Node {
	for _, n := range d.coord.Nodes {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// nowS is the rack's simulated time (the first member's clock).
func (d *Daemon) nowS() float64 {
	if len(d.coord.Nodes) == 0 {
		return 0
	}
	return d.coord.Nodes[0].Server.Now()
}

// snapshotAllocation records who the barrier allocated to and under
// what budget, for the per-period invariant check.
func (d *Daemon) snapshotAllocation() {
	d.allocLive = make(map[string]bool, len(d.coord.Nodes))
	liv := d.coord.Liveness()
	for i, n := range d.coord.Nodes {
		if liv[i] == 0 {
			d.allocLive[n.Name] = true
		}
	}
	d.allocBudgetW = d.budgetW
	d.allocReserved = d.coord.ReservedW()
}

// checkInvariant verifies Σ(live commanded) ≤ budget − reservations
// for the period just stepped, against the last barrier's allocation.
func (d *Daemon) checkInvariant(k int) {
	sum := 0.0
	for _, n := range d.coord.Nodes {
		if d.allocLive[n.Name] {
			sum += n.Assigned()
		}
	}
	limit := d.allocBudgetW - d.allocReserved
	if sum > limit+1e-6 {
		d.invariantViolations++
		if d.invariantDetail == "" {
			d.invariantDetail = fmt.Sprintf("period %d: Σ live commanded %.3f W > budget %.3f W − reserved %.3f W",
				k, sum, d.allocBudgetW, d.allocReserved)
		}
	}
}

// checkpointBoundary marks a deterministic checkpoint boundary after
// period k: the telemetry event always fires (replay re-emits it), the
// file write only on live runs with a path attached.
func (d *Daemon) checkpointBoundary(k int) {
	if d.deps.Hub != nil {
		d.deps.Hub.NodeSink("rack").Emit(telemetry.Event{
			TimeS: d.nowS(), Period: k, Type: telemetry.EventCheckpoint,
			Device: -1, Value: float64(d.k),
			Detail: fmt.Sprintf("epoch=%d members=%d", d.epoch, len(d.coord.Nodes)),
		})
	}
	if d.replaying || d.checkpointPath == "" {
		return
	}
	if err := SaveCheckpoint(d.checkpointPath, d.Checkpoint()); err != nil && d.ckptErr == nil {
		d.ckptErr = err
	}
}

// Checkpoint captures the daemon's durable state: the spec, the op
// log, the completed-period count, and a digest of the observable
// state for restore verification.
func (d *Daemon) Checkpoint() *Checkpoint {
	cp := &Checkpoint{
		Version:     CheckpointVersion,
		Spec:        d.spec,
		Period:      d.k,
		Epoch:       d.epoch,
		Serial:      d.serial,
		BudgetW:     d.budgetW,
		Ops:         append([]AppliedOp(nil), d.oplog...),
		ReservedW:   d.coord.ReservedW(),
		StateDigest: d.digest(),
	}
	for _, n := range d.coord.Nodes {
		m := d.byName[n.Name]
		cp.Members = append(cp.Members, MemberState{
			Name:        n.Name,
			Class:       m.class,
			AssignedW:   n.Assigned(),
			CapCeilW:    n.CapCeilingW(),
			SLOLatencyS: m.sloLat,
			Draining:    m.draining,
			Silenced:    d.silenced[n.Name],
			Periods:     len(n.Records()),
		})
	}
	return cp
}

// digest folds the observable daemon state into a hex FNV-1a digest:
// enough surface (assignments, ceilings, liveness, trajectory tails)
// that a divergent replay cannot silently pass restore.
func (d *Daemon) digest() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "k=%d budget=%.9g epoch=%d serial=%d reserved=%.9g viol=%d;",
		d.k, d.budgetW, d.epoch, d.serial, d.coord.ReservedW(), d.invariantViolations)
	liv := d.coord.Liveness()
	for i, n := range d.coord.Nodes {
		m := d.byName[n.Name]
		var lastAvg, lastMax, lastSet float64
		recs := n.Records()
		if len(recs) > 0 {
			last := recs[len(recs)-1]
			lastAvg, lastMax, lastSet = last.AvgPowerW, last.MaxPowerW, last.SetpointW
		}
		fmt.Fprintf(&sb, "%s|%s|%.9g|%.9g|%t|%.9g|%d|%d|%.9g|%.9g|%.9g;",
			n.Name, m.class, n.Assigned(), n.CapCeilingW(), m.draining, m.sloLat,
			liv[i], len(recs), lastAvg, lastMax, lastSet)
	}
	for _, r := range d.released {
		fmt.Fprintf(&sb, "rel:%s|%d;", r.Name, len(r.Records))
	}
	var down []string
	for name := range d.silenced {
		//lint:ignore determinism keys are sorted immediately below; output order does not depend on map order
		down = append(down, name)
	}
	sort.Strings(down)
	fmt.Fprintf(&sb, "down:%s", strings.Join(down, ","))
	h := fnv.New64a()
	_, _ = io.WriteString(h, sb.String())
	return fmt.Sprintf("%016x", h.Sum64())
}

// publishStatus refreshes the snapshot the API serves.
func (d *Daemon) publishStatus() {
	st := Status{
		Period:              d.k,
		Epoch:               d.epoch,
		BudgetW:             d.budgetW,
		ReservedW:           d.coord.ReservedW(),
		InvariantViolations: d.invariantViolations,
	}
	liv := d.coord.Liveness()
	for i, n := range d.coord.Nodes {
		m := d.byName[n.Name]
		st.Members = append(st.Members, NodeStatus{
			Name:        n.Name,
			Class:       m.class,
			AssignedW:   n.Assigned(),
			CapCeilW:    n.CapCeilingW(),
			SLOLatencyS: m.sloLat,
			Draining:    m.draining,
			Dead:        d.coord.NodeDead(i),
			Missed:      liv[i],
		})
	}
	for _, r := range d.released {
		st.Released = append(st.Released, r.Name)
	}
	d.mu.Lock()
	d.status = st
	d.mu.Unlock()
}
