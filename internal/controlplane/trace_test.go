package controlplane

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/provenance"
)

// TestDaemonTracerWiring drives every op kind through a traced daemon
// and checks the provenance spans the control plane is responsible
// for: staged policy ops parenting reallocations, kill/revive
// registration reaching the death/recovery spans, the drain ramp
// re-staging its op each barrier, and the node-release span closing
// the chain.
func TestDaemonTracerWiring(t *testing.T) {
	var buf bytes.Buffer
	tracer := provenance.New(provenance.Config{JSONL: &buf})
	deps := testDeps()
	deps.Tracer = tracer
	spec := Spec{
		Seed: 5, Nodes: 2, BudgetW: 4000, RackPeriods: 2,
		Schedule: "budget@2*3800;join@4:small;kill@6:n001;drain@8:n000;revive@12:n001",
	}
	d, err := New(spec, deps)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RunTo(10); err != nil {
		t.Fatal(err)
	}
	// A join that cannot fit is rejected: its span closes rejected and
	// stages nothing.
	res := submit(t, d, Op{Kind: OpBudget, Value: 1})
	if res.Applied {
		t.Fatal("1 W budget accepted")
	}
	if err := d.RunTo(24); err != nil {
		t.Fatal(err)
	}
	if err := tracer.Finish(d.Period() - 1); err != nil {
		t.Fatal(err)
	}

	tr, err := provenance.LoadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	var rejected, drainStaged int
	for _, sp := range tr.Spans {
		kinds[sp.Kind]++
		if sp.Outcome == provenance.OutcomeRejected {
			rejected++
		}
		if sp.Kind == provenance.KindRealloc {
			for _, c := range sp.Causes {
				if strings.HasPrefix(c, "op:drain@") {
					drainStaged++
				}
			}
		}
	}
	for _, want := range []string{
		provenance.KindPolicyOp, provenance.KindRealloc, provenance.KindCapChange,
		provenance.KindNodeDead, provenance.KindNodeRecovered, provenance.KindNodeReleased,
	} {
		if kinds[want] == 0 {
			t.Errorf("no %s span minted (kinds %v)", want, kinds)
		}
	}
	if rejected == 0 {
		t.Error("rejected op minted no rejected span")
	}
	// The drain ramp spans multiple barriers; each must re-stage the op.
	if drainStaged < 2 {
		t.Errorf("drain op staged into %d reallocations, want ≥2 (one per ramp barrier)", drainStaged)
	}
	// The death span is parented to the kill op, the release to the
	// drain op — the chain the explain engine walks.
	for _, sp := range tr.Spans {
		switch sp.Kind {
		case provenance.KindNodeDead:
			if p := tr.Span(sp.Parent); p == nil || p.Kind != provenance.KindPolicyOp || !strings.HasPrefix(p.ID, "op:kill@") {
				t.Errorf("death span parent %q is not the kill op", sp.Parent)
			}
		case provenance.KindNodeRecovered:
			if p := tr.Span(sp.Parent); p == nil || !strings.HasPrefix(p.ID, "op:revive@") {
				t.Errorf("recovery span parent %q is not the revive op", sp.Parent)
			}
		case provenance.KindNodeReleased:
			if p := tr.Span(sp.Parent); p == nil || !strings.HasPrefix(p.ID, "op:drain@") {
				t.Errorf("release span parent %q is not the drain op", sp.Parent)
			}
		}
	}
}

// TestDaemonTracerResumeReplay: restoring from a checkpoint re-mints
// the full trace into fresh sinks — no trace state rides in the
// checkpoint itself.
func TestDaemonTracerResumeReplay(t *testing.T) {
	run := func(restart bool) []byte {
		var buf bytes.Buffer
		tracer := provenance.New(provenance.Config{JSONL: &buf})
		deps := testDeps()
		deps.Tracer = tracer
		spec := Spec{
			Seed: 5, Nodes: 2, BudgetW: 4000, RackPeriods: 2,
			Schedule:        "budget@2*3800;kill@6:n001;revive@12:n001",
			CheckpointEvery: 4,
		}
		d, err := New(spec, deps)
		if err != nil {
			t.Fatal(err)
		}
		if restart {
			if err := d.RunTo(8); err != nil {
				t.Fatal(err)
			}
			raw, err := d.Checkpoint().Encode()
			if err != nil {
				t.Fatal(err)
			}
			cp, err := DecodeCheckpoint(raw)
			if err != nil {
				t.Fatal(err)
			}
			buf.Reset()
			tracer = provenance.New(provenance.Config{JSONL: &buf})
			deps2 := testDeps()
			deps2.Tracer = tracer
			d, err = Resume(cp, deps2)
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := d.RunTo(16); err != nil {
			t.Fatal(err)
		}
		if err := tracer.Finish(d.Period() - 1); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	ref := run(false)
	got := run(true)
	if len(ref) == 0 {
		t.Fatal("reference run produced no trace")
	}
	if !bytes.Equal(ref, got) {
		t.Fatalf("trace diverges across kill/restore (%d vs %d bytes)", len(ref), len(got))
	}
}
