package controlplane

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"strconv"
	"strings"
)

// The daemon checkpoints by deterministic replay: the simulation stack
// is byte-reproducible from its seeds, so the durable state a restart
// needs is not the (deeply nested, RNG-laden) in-memory world but the
// *inputs* that produced it — the spec and the complete op log — plus
// a digest of the resulting state to verify the reconstruction.
// Restore rebuilds a fresh world from the spec, replays every period
// up to the checkpoint with ops fed from the log, verifies the state
// digest, and continues live; the replayed prefix re-emits the same
// telemetry, flight, and record bytes the original run produced, so a
// killed-and-restored daemon's artifacts are byte-identical to an
// uninterrupted run's (pinned by the equivalence test in
// internal/experiments).
//
// On disk a checkpoint is one header line
//
//	capgpu-checkpoint v<version> <crc32c-hex> <payload-bytes>
//
// followed by the JSON payload. The header is what the corruption
// table tests attack: truncation, checksum damage, and version skew
// all refuse to restore with a typed error so the caller can fall back
// to a cold start instead of resuming from garbage.

// Typed restore-refusal errors (errors.Is-matchable).
var (
	// ErrCorrupt marks a checkpoint that is truncated, checksum-damaged,
	// or structurally invalid.
	ErrCorrupt = errors.New("controlplane: checkpoint corrupt")
	// ErrVersionSkew marks a checkpoint written by a different
	// checkpoint-format version.
	ErrVersionSkew = errors.New("controlplane: checkpoint version skew")
	// ErrFuturePeriod marks a checkpoint claiming state from a period
	// this run cannot have reached (internally inconsistent op log, or a
	// period beyond the configured horizon).
	ErrFuturePeriod = errors.New("controlplane: checkpoint from future period")
)

// CheckpointVersion is the current checkpoint-format version.
const CheckpointVersion = 1

const checkpointMagic = "capgpu-checkpoint"

// MemberState is one member's summary in a checkpoint — enough for the
// state digest and for offline inspection, not for direct restoration
// (restore replays instead).
type MemberState struct {
	Name        string  `json:"name"`
	Class       string  `json:"class"`
	AssignedW   float64 `json:"assigned_w"`
	CapCeilW    float64 `json:"cap_ceil_w,omitempty"`
	SLOLatencyS float64 `json:"slo_latency_s,omitempty"`
	Draining    bool    `json:"draining,omitempty"`
	Silenced    bool    `json:"silenced,omitempty"`
	Periods     int     `json:"periods"`
}

// Checkpoint is the versioned crash-recovery record.
type Checkpoint struct {
	Version int  `json:"version"`
	Spec    Spec `json:"spec"`
	// Period is the number of completed periods: the restored daemon
	// replays periods [0, Period) and resumes live at Period.
	Period    int           `json:"period"`
	Epoch     int           `json:"epoch"`
	Serial    int           `json:"serial"`
	BudgetW   float64       `json:"budget_w"`
	Ops       []AppliedOp   `json:"ops,omitempty"`
	Members   []MemberState `json:"members"`
	ReservedW float64       `json:"reserved_w"`
	// StateDigest is an FNV-1a digest over the canonical observable
	// state (membership, assignments, liveness, trajectory tails);
	// restore fails if the replayed world does not reproduce it.
	StateDigest string `json:"state_digest"`
}

// Encode renders the checkpoint in the on-disk format.
func (c *Checkpoint) Encode() ([]byte, error) {
	payload, err := json.Marshal(c)
	if err != nil {
		return nil, fmt.Errorf("controlplane: encode checkpoint: %w", err)
	}
	head := fmt.Sprintf("%s v%d %08x %d\n", checkpointMagic, CheckpointVersion,
		crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)), len(payload))
	return append([]byte(head), payload...), nil
}

// DecodeCheckpoint parses and validates the on-disk format, refusing
// damaged or incompatible checkpoints with a typed error.
func DecodeCheckpoint(b []byte) (*Checkpoint, error) {
	nl := -1
	for i, c := range b {
		if c == '\n' {
			nl = i
			break
		}
	}
	if nl < 0 {
		return nil, fmt.Errorf("%w: missing header line", ErrCorrupt)
	}
	fields := strings.Fields(string(b[:nl]))
	if len(fields) != 4 || fields[0] != checkpointMagic {
		return nil, fmt.Errorf("%w: bad header", ErrCorrupt)
	}
	if !strings.HasPrefix(fields[1], "v") {
		return nil, fmt.Errorf("%w: bad version field %q", ErrCorrupt, fields[1])
	}
	ver, err := strconv.Atoi(fields[1][1:])
	if err != nil {
		return nil, fmt.Errorf("%w: bad version field %q", ErrCorrupt, fields[1])
	}
	if ver != CheckpointVersion {
		return nil, fmt.Errorf("%w: file is v%d, this build reads v%d", ErrVersionSkew, ver, CheckpointVersion)
	}
	wantCRC, err := strconv.ParseUint(fields[2], 16, 32)
	if err != nil {
		return nil, fmt.Errorf("%w: bad checksum field %q", ErrCorrupt, fields[2])
	}
	wantLen, err := strconv.Atoi(fields[3])
	if err != nil || wantLen < 0 {
		return nil, fmt.Errorf("%w: bad length field %q", ErrCorrupt, fields[3])
	}
	payload := b[nl+1:]
	if len(payload) != wantLen {
		return nil, fmt.Errorf("%w: payload is %d bytes, header says %d (truncated?)", ErrCorrupt, len(payload), wantLen)
	}
	if got := crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)); uint32(wantCRC) != got {
		return nil, fmt.Errorf("%w: checksum mismatch (header %08x, payload %08x)", ErrCorrupt, uint32(wantCRC), got)
	}
	var cp Checkpoint
	if err := json.Unmarshal(payload, &cp); err != nil {
		return nil, fmt.Errorf("%w: payload: %v", ErrCorrupt, err)
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("%w: payload is v%d, this build reads v%d", ErrVersionSkew, cp.Version, CheckpointVersion)
	}
	if cp.Period < 0 {
		return nil, fmt.Errorf("%w: negative period %d", ErrCorrupt, cp.Period)
	}
	// An op processed at or after the checkpoint period cannot have
	// happened yet: the log claims inputs from the checkpoint's future.
	for _, op := range cp.Ops {
		if op.Period >= cp.Period {
			return nil, fmt.Errorf("%w: op log records %q at period %d, checkpoint is at period %d",
				ErrFuturePeriod, op.Op.Kind, op.Period, cp.Period)
		}
	}
	return &cp, nil
}

// ValidateHorizon rejects a checkpoint whose period lies beyond the
// run's configured horizon (restoring it could never be reached by the
// run being resumed).
func (c *Checkpoint) ValidateHorizon(periods int) error {
	if periods > 0 && c.Period > periods {
		return fmt.Errorf("%w: checkpoint at period %d, run horizon is %d periods", ErrFuturePeriod, c.Period, periods)
	}
	return nil
}

// SaveCheckpoint writes the checkpoint atomically (temp file + rename)
// so a crash mid-write can never leave a half-written checkpoint in
// place of a good one.
func SaveCheckpoint(path string, c *Checkpoint) error {
	b, err := c.Encode()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("controlplane: write checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("controlplane: write checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads and validates a checkpoint file.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("controlplane: read checkpoint: %w", err)
	}
	return DecodeCheckpoint(b)
}
