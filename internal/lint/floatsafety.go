package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// FloatSafety flags two numeric hazards:
//
//   - ==/!= between float operands. Power and frequency values are
//     products of arithmetic; exact equality on them is almost always a
//     tolerance bug. Comparison against an exact constant zero is
//     exempt — zero is the universal "unset/disabled" sentinel in this
//     codebase's configs and compares exactly. Use metrics.ApproxEqual
//     for value comparison, or //lint:ignore with a reason where exact
//     comparison is the point (e.g. stuck-meter repeat detection).
//   - divisions whose denominator is frequency- or power-flavored
//     (name contains freq/power/watt, carries a W/Hz-family suffix, or
//     is an fmin/fmax-style range bound) with no zero-guard in the
//     enclosing function. A frequency range that collapses to zero
//     turns the normalization x/(fmax-fmin) into ±Inf and the
//     controller's QP into NaN soup.
type FloatSafety struct{}

// NewFloatSafety returns the floatsafety analyzer.
func NewFloatSafety() *FloatSafety { return &FloatSafety{} }

// Name implements Analyzer.
func (*FloatSafety) Name() string { return "floatsafety" }

// isFloat reports whether e's type is (untyped or typed) float.
func isFloat(p *Package, e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isZeroConst reports whether e is a compile-time constant equal to 0.
func isZeroConst(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}

var rangeBoundName = regexp.MustCompile(`^f[a-z]?(min|max)|^(min|max)$`)

// quantityFlavored reports whether an identifier name smells like a
// frequency or power quantity.
func quantityFlavored(name string) bool {
	l := strings.ToLower(name)
	if strings.Contains(l, "freq") || strings.Contains(l, "power") || strings.Contains(l, "watt") {
		return true
	}
	switch unitSuffix(name) {
	case "W", "GHz", "MHz", "KHz", "Hz":
		return true
	}
	if strings.HasPrefix(l, "f") && (strings.Contains(l, "min") || strings.Contains(l, "max")) {
		return true
	}
	return rangeBoundName.MatchString(l)
}

// identNames collects every identifier name mentioned in an expression
// (selector fields included).
func identNames(e ast.Expr, into map[string]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			into[id.Name] = true
		}
		return true
	})
}

// Analyze implements Analyzer.
func (fs *FloatSafety) Analyze(p *Package) []Diagnostic {
	var out []Diagnostic
	diag := func(pos token.Pos, format string, args ...any) {
		out = append(out, Diagnostic{
			Pos:     p.Fset.Position(pos),
			Rule:    "floatsafety",
			Message: fmt.Sprintf(format, args...),
		})
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			guarded := guardedNames(p, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok {
					return true
				}
				switch be.Op {
				case token.EQL, token.NEQ:
					if isFloat(p, be.X) && isFloat(p, be.Y) &&
						!isZeroConst(p, be.X) && !isZeroConst(p, be.Y) {
						diag(be.OpPos, "float %s comparison: use an epsilon (metrics.ApproxEqual) or document exactness with //lint:ignore", be.Op)
					}
				case token.QUO:
					if !isFloat(p, be.Y) || isNonzeroConst(p, be.Y) {
						return true
					}
					denom := make(map[string]bool)
					identNames(be.Y, denom)
					flavored := ""
					for name := range denom {
						if quantityFlavored(name) {
							if flavored == "" || name < flavored {
								flavored = name
							}
						}
					}
					if flavored == "" {
						return true
					}
					for name := range denom {
						if guarded[name] {
							return true
						}
					}
					diag(be.OpPos, "division by frequency/power expression (%s) with no zero-guard in this function; guard the denominator or //lint:ignore with the invariant that makes it nonzero", flavored)
				}
				return true
			})
		}
	}
	return out
}

// isNonzeroConst reports whether e is a compile-time constant that is
// provably nonzero (dividing by a nonzero literal needs no guard).
func isNonzeroConst(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) != 0
	}
	return false
}

// guardedNames collects identifier names that appear in any comparison
// or in a math.Max/math.Min call inside the function body — evidence
// the author thought about the value's range before dividing by it.
func guardedNames(p *Package, body *ast.BlockStmt) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			switch n.Op {
			case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
				identNames(n.X, out)
				identNames(n.Y, out)
			}
		case *ast.CallExpr:
			if path, name, ok := pkgFunc(p, n); ok && path == "math" && (name == "Max" || name == "Min") {
				for _, a := range n.Args {
					identNames(a, out)
				}
			}
		}
		return true
	})
	return out
}
