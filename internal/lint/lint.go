// Package lint is capgpu's domain-aware static-analysis pass. The
// compiler cannot see the invariants this codebase leans on — watts,
// megahertz and normalized-frequency fractions all travel through
// float64, and the fault injector's bit-identical replay guarantee dies
// the moment a wall-clock read or a global RNG call slips into a seeded
// path — so this package checks them on every build instead.
//
// Four analyzers run over every non-test package in the module:
//
//   - units: exported numeric fields, consts and exported-function
//     parameters that carry a physical quantity must end in one of the
//     repo's unit suffixes (W, MHz, GHz, S, Seconds, J, Norm, Frac, …),
//     and +/- arithmetic between identifiers of different unit
//     dimensions is flagged;
//   - determinism: time.Now, global math/rand source calls, and
//     order-dependent map iteration (appends/prints inside a map range)
//     are forbidden in the seeded-replay packages (internal/sim,
//     internal/faults, internal/core, internal/mpc,
//     internal/experiments, internal/telemetry);
//   - floatsafety: ==/!= between non-constant float operands, and
//     divisions by frequency/power-flavored denominators with no
//     zero-guard in the enclosing function;
//   - errcheck: call statements that silently discard an error result.
//
// Intentional exceptions are documented at the use site with
//
//	//lint:ignore <rule> <reason>
//
// on the finding's line or the line directly above it. The reason is
// mandatory; a directive without one is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path within the module
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Analyzer is one lint pass.
type Analyzer interface {
	Name() string
	Analyze(p *Package) []Diagnostic
}

// ignoreKey locates one //lint:ignore directive.
type ignoreKey struct {
	file string
	line int
	rule string
}

// collectIgnores scans a package's comments for //lint:ignore
// directives. Malformed directives (missing rule or reason) are
// returned as diagnostics in their own right.
func collectIgnores(p *Package) (map[ignoreKey]bool, []Diagnostic) {
	ignores := make(map[ignoreKey]bool)
	var bad []Diagnostic
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, "lint:ignore") {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(text, "lint:ignore"))
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:     pos,
						Rule:    "lint",
						Message: "malformed //lint:ignore directive: need `//lint:ignore <rule> <reason>`",
					})
					continue
				}
				ignores[ignoreKey{file: pos.Filename, line: pos.Line, rule: fields[0]}] = true
			}
		}
	}
	return ignores, bad
}

// Run executes the analyzers over the packages and returns the
// unsuppressed findings, sorted by position.
func Run(pkgs []*Package, analyzers []Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, p := range pkgs {
		ignores, bad := collectIgnores(p)
		out = append(out, bad...)
		for _, a := range analyzers {
			for _, d := range a.Analyze(p) {
				suppressed := ignores[ignoreKey{d.Pos.Filename, d.Pos.Line, d.Rule}] ||
					ignores[ignoreKey{d.Pos.Filename, d.Pos.Line - 1, d.Rule}]
				if !suppressed {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}

// DefaultAnalyzers returns the standard suite with the repo's
// determinism scope.
func DefaultAnalyzers() []Analyzer {
	return []Analyzer{
		NewUnits(),
		NewDeterminism(DefaultDeterminismScope()),
		NewFloatSafety(),
		NewErrcheck(),
	}
}
