// Package lint is capgpu's domain-aware static-analysis pass. The
// compiler cannot see the invariants this codebase leans on — watts,
// megahertz and normalized-frequency fractions all travel through
// float64, and the fault injector's bit-identical replay guarantee dies
// the moment a wall-clock read or a global RNG call slips into a seeded
// path — so this package checks them on every build instead.
//
// Eight analyzers run over every non-test package in the module:
//
//   - units: exported numeric fields, consts and exported-function
//     parameters that carry a physical quantity must end in one of the
//     repo's unit suffixes (W, MHz, GHz, S, Seconds, J, Norm, Frac, …),
//     and +/- arithmetic between identifiers of different unit
//     dimensions is flagged;
//   - determinism: time.Now, global math/rand source calls, and
//     order-dependent map iteration (appends/prints inside a map range)
//     are forbidden in the seeded-replay packages (internal/sim,
//     internal/faults, internal/core, internal/mpc,
//     internal/experiments, internal/telemetry);
//   - floatsafety: ==/!= between non-constant float operands, and
//     divisions by frequency/power-flavored denominators with no
//     zero-guard in the enclosing function;
//   - errcheck: call statements that silently discard an error result;
//   - lockorder: the per-package mutex acquisition graph (including
//     locks taken by intra-package callees while another is held) must
//     stay acyclic and must not invert an order declared with
//     `//lint:lockorder before:<Type.field>` on the mutex field;
//   - hotalloc: functions annotated `//capgpu:hotpath` and everything
//     statically reachable from them inside the module must avoid
//     allocation-prone constructs: happy-path fmt.Sprintf/Errorf,
//     appends that grow an unsized local slice, per-call map/slice
//     literals, capturing closures, and interface boxing at call sites;
//   - barrierconfine: the cluster membership/cap mutators (AddNode,
//     RemoveNode, SetCapCeilingW) may only be called from inside
//     internal/cluster itself or from controlplane code reachable from
//     a `//capgpu:barrier` root, so hot reconfig cannot bypass the
//     reallocation barrier;
//   - stickyerr: every struct owning an io.Writer stream must latch its
//     first write error in an error field, guard later writes on it,
//     and surface it through an Err/Close/Flush/Finish method.
//
// Intentional exceptions are documented at the use site with
//
//	//lint:ignore <rule> <reason>
//
// on the finding's line or the line directly above it. The reason is
// mandatory and the rule must be one of the analyzer names above; a
// directive without a reason, or naming an unknown rule, is itself a
// finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path within the module
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Analyzer is one lint pass over a single package.
type Analyzer interface {
	Name() string
	Analyze(p *Package) []Diagnostic
}

// ModuleAnalyzer is a pass that needs every package at once — the
// cross-package call-graph rules (hotalloc, barrierconfine). Run calls
// AnalyzeModule once with the full package list instead of Analyze per
// package.
type ModuleAnalyzer interface {
	Analyzer
	AnalyzeModule(pkgs []*Package) []Diagnostic
}

// AllRuleNames is the canonical rule vocabulary: the only names a
// //lint:ignore directive may target. It is independent of any -rule
// filtering so a partial run never mistakes a valid directive for an
// unknown one.
func AllRuleNames() []string {
	return []string{
		"barrierconfine", "determinism", "errcheck", "floatsafety",
		"hotalloc", "lockorder", "stickyerr", "units",
	}
}

func knownRuleSet() map[string]bool {
	set := make(map[string]bool, 8)
	for _, r := range AllRuleNames() {
		set[r] = true
	}
	return set
}

// ignoreKey locates one //lint:ignore directive.
type ignoreKey struct {
	file string
	line int
	rule string
}

// collectIgnores scans a package's comments for //lint:ignore
// directives. Malformed directives (missing rule or reason) and
// directives naming a rule outside AllRuleNames are returned as
// diagnostics in their own right, and suppress nothing.
func collectIgnores(p *Package, known map[string]bool) (map[ignoreKey]bool, []Diagnostic) {
	ignores := make(map[ignoreKey]bool)
	var bad []Diagnostic
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, "lint:ignore") {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(text, "lint:ignore"))
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:     pos,
						Rule:    "lint",
						Message: "malformed //lint:ignore directive: need `//lint:ignore <rule> <reason>`",
					})
					continue
				}
				if !known[fields[0]] {
					bad = append(bad, Diagnostic{
						Pos:  pos,
						Rule: "lint",
						Message: fmt.Sprintf("//lint:ignore names unknown rule %q (known: %s)",
							fields[0], strings.Join(AllRuleNames(), ", ")),
					})
					continue
				}
				ignores[ignoreKey{file: pos.Filename, line: pos.Line, rule: fields[0]}] = true
			}
		}
	}
	return ignores, bad
}

// Run executes the analyzers over the packages and returns the
// unsuppressed findings, sorted by position. Directives are collected
// module-wide first so a ModuleAnalyzer finding in one package can be
// suppressed at its own use site like any other.
func Run(pkgs []*Package, analyzers []Analyzer) []Diagnostic {
	known := knownRuleSet()
	ignores := make(map[ignoreKey]bool)
	var out []Diagnostic
	for _, p := range pkgs {
		ig, bad := collectIgnores(p, known)
		out = append(out, bad...)
		for k := range ig {
			ignores[k] = true
		}
	}
	for _, a := range analyzers {
		var raw []Diagnostic
		if ma, ok := a.(ModuleAnalyzer); ok {
			raw = ma.AnalyzeModule(pkgs)
		} else {
			for _, p := range pkgs {
				raw = append(raw, a.Analyze(p)...)
			}
		}
		for _, d := range raw {
			suppressed := ignores[ignoreKey{d.Pos.Filename, d.Pos.Line, d.Rule}] ||
				ignores[ignoreKey{d.Pos.Filename, d.Pos.Line - 1, d.Rule}]
			if !suppressed {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}

// DefaultAnalyzers returns the standard suite with the repo's
// determinism scope and barrier confinement contract.
func DefaultAnalyzers() []Analyzer {
	return []Analyzer{
		NewUnits(),
		NewDeterminism(DefaultDeterminismScope()),
		NewFloatSafety(),
		NewErrcheck(),
		NewLockOrder(),
		NewHotAlloc(),
		NewBarrierConfine(),
		NewStickyErr(),
	}
}
