package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds the per-package mutex acquisition graph and flags
// orderings that can deadlock. A lock's identity is Type.field for a
// sync.Mutex/RWMutex struct field and the variable name for a
// package-level mutex; function-local mutexes are invisible to other
// functions and are skipped. An edge a→b is observed when b is
// acquired (Lock or RLock) while a is held — directly, or because an
// intra-package callee may acquire b. Declared edges come from a
//
//	//lint:lockorder before:<Type.field>
//
// directive on the mutex field; observed edges that invert a declared
// edge, and any cycle in the combined graph, are findings.
type LockOrder struct{}

// NewLockOrder returns the lockorder analyzer.
func NewLockOrder() *LockOrder { return &LockOrder{} }

// Name implements Analyzer.
func (a *LockOrder) Name() string { return "lockorder" }

// lockEdge is one ordered pair in the acquisition graph.
type lockEdge struct {
	from, to string
}

// lockState is the per-package working set.
type lockState struct {
	pkg      *Package
	funcs    map[*types.Func]*ast.FuncDecl
	acquired map[*types.Func]map[string]bool // memoized transitive may-acquire
	busy     map[*types.Func]bool
	observed map[lockEdge]token.Pos // first observation site
	declared map[lockEdge]token.Pos // directive site
}

// Analyze implements Analyzer.
func (a *LockOrder) Analyze(p *Package) []Diagnostic {
	st := &lockState{
		pkg:      p,
		funcs:    make(map[*types.Func]*ast.FuncDecl),
		acquired: make(map[*types.Func]map[string]bool),
		busy:     make(map[*types.Func]bool),
		observed: make(map[lockEdge]token.Pos),
		declared: make(map[lockEdge]token.Pos),
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name != nil {
				if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					st.funcs[obj] = fd
				}
			}
		}
	}
	var out []Diagnostic
	out = append(out, st.collectDeclared()...)
	for _, fd := range st.funcs {
		if fd.Body != nil {
			st.walkHeld(fd.Body, nil)
		}
	}
	out = append(out, st.verdicts()...)
	sortDiagnostics(out)
	return out
}

// collectDeclared parses //lint:lockorder directives off mutex struct
// fields, returning diagnostics for malformed or misplaced ones.
func (st *lockState) collectDeclared() []Diagnostic {
	var out []Diagnostic
	for _, f := range st.pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				structType, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range structType.Fields.List {
					out = append(out, st.declaredFromField(ts.Name.Name, field)...)
				}
			}
		}
	}
	return out
}

// declaredFromField records declared edges from one struct field's
// doc/comment directives.
func (st *lockState) declaredFromField(typeName string, field *ast.Field) []Diagnostic {
	var out []Diagnostic
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			rest, ok := strings.CutPrefix(text, "lint:lockorder")
			if !ok {
				continue
			}
			pos := st.pkg.Fset.Position(c.Pos())
			if !st.isMutexField(field) {
				out = append(out, Diagnostic{Pos: pos, Rule: "lockorder",
					Message: "//lint:lockorder directive on a non-mutex field"})
				continue
			}
			target, ok := strings.CutPrefix(strings.TrimSpace(rest), "before:")
			if fields := strings.Fields(target); len(fields) > 0 {
				target = fields[0] // drop any trailing comment text
			} else {
				target = ""
			}
			if !ok || target == "" {
				out = append(out, Diagnostic{Pos: pos, Rule: "lockorder",
					Message: "malformed directive: need `//lint:lockorder before:<Type.field>`"})
				continue
			}
			for _, name := range field.Names {
				edge := lockEdge{from: typeName + "." + name.Name, to: target}
				if _, dup := st.declared[edge]; !dup {
					st.declared[edge] = c.Pos()
				}
			}
		}
	}
	return out
}

// isMutexField reports whether a struct field has type sync.Mutex or
// sync.RWMutex.
func (st *lockState) isMutexField(field *ast.Field) bool {
	tv, ok := st.pkg.Info.Types[field.Type]
	if !ok {
		return false
	}
	return isMutexType(tv.Type)
}

func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// lockCall classifies a call expression as a mutex acquisition or
// release and returns the lock's identity. acquire is true for
// Lock/RLock, false for Unlock/RUnlock; id is "" when the call is not
// a mutex operation or the mutex is function-local.
func (st *lockState) lockCall(call *ast.CallExpr) (id string, acquire, isLock bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	fn, ok := st.pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return "", false, false
	}
	return st.lockID(sel.X), acquire, true
}

// lockID names the mutex a receiver expression denotes: Type.field for
// struct fields, the bare name for package-level vars, "" for locals.
func (st *lockState) lockID(e ast.Expr) string {
	switch e := unparen(e).(type) {
	case *ast.SelectorExpr:
		obj, ok := st.pkg.Info.Uses[e.Sel].(*types.Var)
		if !ok {
			return ""
		}
		if !obj.IsField() {
			if obj.Parent() != nil && obj.Parent().Parent() == types.Universe {
				return obj.Name() // package-level var via pkg selector
			}
			return ""
		}
		tv, ok := st.pkg.Info.Types[e.X]
		if !ok {
			return ""
		}
		t := tv.Type
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + obj.Name()
		}
		return ""
	case *ast.Ident:
		obj, ok := st.pkg.Info.Uses[e].(*types.Var)
		if !ok {
			return ""
		}
		if obj.Parent() == st.pkg.Pkg.Scope() {
			return obj.Name()
		}
		return ""
	}
	return ""
}

// walkHeld scans a statement list in source order, tracking the held
// set. held is the ordered list of lock ids currently held; the walk
// mutates and returns it. Control-flow bodies are walked sequentially
// with the same held set — a deliberate flow-insensitive
// approximation: a lock taken in a branch is assumed held afterwards
// until an unlock is seen.
func (st *lockState) walkHeld(n ast.Node, held []string) []string {
	switch n := n.(type) {
	case nil:
		return held
	case *ast.BlockStmt:
		for _, s := range n.List {
			held = st.walkHeld(s, held)
		}
		return held
	case *ast.ExprStmt:
		return st.scanExpr(n.X, held)
	case *ast.DeferStmt:
		// A deferred unlock keeps the lock held to function end, which
		// the model already assumes; a deferred acquire or call is
		// treated as happening here.
		if id, acquire, isLock := st.lockCall(n.Call); isLock {
			if acquire {
				return st.acquire(held, id, n.Call.Pos())
			}
			return held
		}
		return st.scanExpr(n.Call, held)
	case *ast.IfStmt:
		held = st.walkHeld(n.Init, held)
		held = st.scanExpr(n.Cond, held)
		held = st.walkHeld(n.Body, held)
		return st.walkHeld(n.Else, held)
	case *ast.ForStmt:
		held = st.walkHeld(n.Init, held)
		held = st.scanExpr(n.Cond, held)
		held = st.walkHeld(n.Body, held)
		return st.walkHeld(n.Post, held)
	case *ast.RangeStmt:
		held = st.scanExpr(n.X, held)
		return st.walkHeld(n.Body, held)
	case *ast.SwitchStmt:
		held = st.walkHeld(n.Init, held)
		held = st.scanExpr(n.Tag, held)
		return st.walkHeld(n.Body, held)
	case *ast.TypeSwitchStmt:
		held = st.walkHeld(n.Init, held)
		held = st.walkHeld(n.Assign, held)
		return st.walkHeld(n.Body, held)
	case *ast.CaseClause:
		for _, e := range n.List {
			held = st.scanExpr(e, held)
		}
		for _, s := range n.Body {
			held = st.walkHeld(s, held)
		}
		return held
	case *ast.SelectStmt:
		return st.walkHeld(n.Body, held)
	case *ast.CommClause:
		held = st.walkHeld(n.Comm, held)
		for _, s := range n.Body {
			held = st.walkHeld(s, held)
		}
		return held
	case *ast.LabeledStmt:
		return st.walkHeld(n.Stmt, held)
	case *ast.AssignStmt:
		for _, e := range n.Rhs {
			held = st.scanExpr(e, held)
		}
		return held
	case *ast.ReturnStmt:
		for _, e := range n.Results {
			held = st.scanExpr(e, held)
		}
		return held
	case *ast.GoStmt:
		// The goroutine body runs concurrently with nothing held from
		// this frame; scan it with an empty held set.
		st.scanExpr(n.Call, nil)
		return held
	case ast.Stmt:
		// DeclStmt, Send, IncDec, Branch, Empty: scan any calls inside.
		ast.Inspect(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				held = st.scanExpr(call, held)
				return false
			}
			return true
		})
		return held
	}
	return held
}

// scanExpr handles lock operations and call expansion inside one
// expression, in source order.
func (st *lockState) scanExpr(e ast.Expr, held []string) []string {
	if e == nil {
		return held
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure's body runs at an unknown time; analyze it with
			// an empty held set and do not leak its locks out.
			st.walkHeld(n.Body, nil)
			return false
		case *ast.CallExpr:
			if id, acquire, isLock := st.lockCall(n); isLock {
				if id == "" {
					return false
				}
				if acquire {
					held = st.acquire(held, id, n.Pos())
				} else {
					held = release(held, id)
				}
				return false // receiver expr needs no further scanning
			}
			if fn := staticCallee(st.pkg.Info, n); fn != nil {
				if _, local := st.funcs[fn]; local && len(held) > 0 {
					for l := range st.mayAcquire(fn) {
						for _, h := range held {
							st.observe(h, l, n.Pos())
						}
					}
				}
			}
		}
		return true
	})
	return held
}

// acquire records edges from every held lock to id and pushes it.
func (st *lockState) acquire(held []string, id string, pos token.Pos) []string {
	if id == "" {
		return held
	}
	for _, h := range held {
		st.observe(h, id, pos)
	}
	return append(held, id)
}

// observe records the first site an ordered acquisition is seen at.
func (st *lockState) observe(from, to string, pos token.Pos) {
	edge := lockEdge{from: from, to: to}
	if _, ok := st.observed[edge]; !ok {
		st.observed[edge] = pos
	}
}

func release(held []string, id string) []string {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i] == id {
			return append(held[:i], held[i+1:]...)
		}
	}
	return held
}

// mayAcquire returns the set of lock ids fn may take, directly or via
// intra-package static calls, memoized with a cycle guard.
func (st *lockState) mayAcquire(fn *types.Func) map[string]bool {
	if s, ok := st.acquired[fn]; ok {
		return s
	}
	if st.busy[fn] {
		return nil
	}
	st.busy[fn] = true
	defer delete(st.busy, fn)
	set := make(map[string]bool)
	fd := st.funcs[fn]
	if fd == nil || fd.Body == nil {
		st.acquired[fn] = set
		return set
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, acquire, isLock := st.lockCall(call); isLock {
			if acquire && id != "" {
				set[id] = true
			}
			return false
		}
		if callee := staticCallee(st.pkg.Info, call); callee != nil {
			if _, local := st.funcs[callee]; local {
				for id := range st.mayAcquire(callee) {
					set[id] = true
				}
			}
		}
		return true
	})
	st.acquired[fn] = set
	return set
}

// verdicts turns the observed+declared graph into findings.
func (st *lockState) verdicts() []Diagnostic {
	var out []Diagnostic
	adj := make(map[string][]string)
	addAdj := func(e lockEdge) {
		if e.from != e.to {
			adj[e.from] = append(adj[e.from], e.to)
		}
	}
	for e := range st.observed {
		addAdj(e)
	}
	for e := range st.declared {
		addAdj(e)
	}
	edges := make([]lockEdge, 0, len(st.observed))
	for e := range st.observed {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		return st.observed[edges[i]] < st.observed[edges[j]]
	})
	for _, e := range edges {
		pos := st.pkg.Fset.Position(st.observed[e])
		switch {
		case e.from == e.to:
			out = append(out, Diagnostic{Pos: pos, Rule: "lockorder",
				Message: fmt.Sprintf("%s acquired while already held (self-deadlock)", e.from)})
		case st.declaredBlocks(e):
			out = append(out, Diagnostic{Pos: pos, Rule: "lockorder",
				Message: fmt.Sprintf("acquires %s while holding %s, inverting the declared order %s before %s",
					e.to, e.from, e.to, e.from)})
		case reaches(adj, e.to, e.from):
			out = append(out, Diagnostic{Pos: pos, Rule: "lockorder",
				Message: fmt.Sprintf("lock-order cycle: acquiring %s while holding %s closes a cycle back to %s",
					e.to, e.from, e.from)})
		}
	}
	return out
}

// declaredBlocks reports whether a declared edge (possibly through
// other declared edges) orders e.to before e.from — making the
// observed edge an inversion.
func (st *lockState) declaredBlocks(e lockEdge) bool {
	dAdj := make(map[string][]string)
	for d := range st.declared {
		dAdj[d.from] = append(dAdj[d.from], d.to)
	}
	return reaches(dAdj, e.to, e.from)
}

// reaches reports whether to is reachable from from (path length >= 1).
func reaches(adj map[string][]string, from, to string) bool {
	seen := make(map[string]bool)
	var stack []string
	stack = append(stack, adj[from]...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == to {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, adj[n]...)
	}
	return false
}

// sortDiagnostics orders findings by position for deterministic output.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
}
