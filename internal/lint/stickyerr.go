package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// StickyErr enforces the latched-first-error pattern on stream writer
// types. Any named struct with an io.Writer field and at least one
// method that writes to it (a method call on the field, or the field
// passed to another call) must:
//
//  1. carry an error-typed latch field;
//  2. guard every writing method on the latch (the latch appears in an
//     if condition before the stream is touched);
//  3. latch failures (the method assigns the latch field);
//  4. surface the latch through a method named Err, Close, Flush or
//     Finish that returns error and reads the latch.
//
// This is the contract the flight recorder and telemetry hub already
// follow: after the first write failure the stream goes quiet instead
// of interleaving partial records, and the failure is visible at
// shutdown instead of vanishing.
type StickyErr struct{}

// NewStickyErr returns the stickyerr analyzer.
func NewStickyErr() *StickyErr { return &StickyErr{} }

// Name implements Analyzer.
func (a *StickyErr) Name() string { return "stickyerr" }

// surfacingMethods are the method names accepted as the latch's exit
// point.
var surfacingMethods = map[string]bool{
	"Err": true, "Close": true, "Flush": true, "Finish": true,
}

// writerType is one struct under analysis.
type writerType struct {
	name      string
	spec      *ast.TypeSpec
	writerFs  map[types.Object]bool // io.Writer fields
	errFs     map[types.Object]bool // error fields
	methods   []*ast.FuncDecl
	writing   []*ast.FuncDecl
	surfacing bool
}

// Analyze implements Analyzer.
func (a *StickyErr) Analyze(p *Package) []Diagnostic {
	subjects := collectWriterTypes(p)
	var out []Diagnostic
	for _, wt := range subjects {
		classifyMethods(p, wt)
		if len(wt.writing) == 0 {
			continue
		}
		if len(wt.errFs) == 0 {
			out = append(out, Diagnostic{
				Pos:  p.Fset.Position(wt.spec.Name.Pos()),
				Rule: "stickyerr",
				Message: fmt.Sprintf(
					"writer type %s streams to an io.Writer but has no error field to latch the first failure", wt.name),
			})
			continue
		}
		for _, m := range wt.writing {
			if !referencesInIfCond(p, m, wt.errFs) {
				out = append(out, Diagnostic{
					Pos:  p.Fset.Position(m.Name.Pos()),
					Rule: "stickyerr",
					Message: fmt.Sprintf(
						"%s.%s writes to the stream without guarding on the latched error", wt.name, m.Name.Name),
				})
			}
			if !assignsField(p, m, wt.errFs) {
				out = append(out, Diagnostic{
					Pos:  p.Fset.Position(m.Name.Pos()),
					Rule: "stickyerr",
					Message: fmt.Sprintf(
						"%s.%s writes to the stream but never latches a failure into the error field", wt.name, m.Name.Name),
				})
			}
		}
		if !wt.surfacing {
			out = append(out, Diagnostic{
				Pos:  p.Fset.Position(wt.spec.Name.Pos()),
				Rule: "stickyerr",
				Message: fmt.Sprintf(
					"writer type %s never surfaces its latched error: add an Err/Close/Flush/Finish method returning it", wt.name),
			})
		}
	}
	sortDiagnostics(out)
	return out
}

// collectWriterTypes finds named structs with io.Writer fields.
func collectWriterTypes(p *Package) []*writerType {
	var out []*writerType
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			wt := &writerType{
				name:     ts.Name.Name,
				spec:     ts,
				writerFs: make(map[types.Object]bool),
				errFs:    make(map[types.Object]bool),
			}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					obj := p.Info.Defs[name]
					if obj == nil {
						continue
					}
					if isIOWriter(obj.Type()) {
						wt.writerFs[obj] = true
					}
					if isErrorType(obj.Type()) {
						wt.errFs[obj] = true
					}
				}
			}
			if len(wt.writerFs) > 0 {
				out = append(out, wt)
			}
			return true
		})
	}
	return out
}

func isIOWriter(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "io" && obj.Name() == "Writer"
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// classifyMethods attaches the type's methods and finds the writing
// and surfacing ones.
func classifyMethods(p *Package, wt *writerType) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			recv, _, _ := recvTypeName(fd)
			if recv != wt.name {
				continue
			}
			wt.methods = append(wt.methods, fd)
			if methodWrites(p, fd, wt.writerFs) {
				wt.writing = append(wt.writing, fd)
			}
			if surfacingMethods[fd.Name.Name] && lastResultIsError(fd) && referencesField(p, fd.Body, wt.errFs) {
				wt.surfacing = true
			}
		}
	}
}

// recvTypeName extracts the receiver's type name.
func recvTypeName(fd *ast.FuncDecl) (name string, ptr bool, ok bool) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return "", false, false
	}
	t := fd.Recv.List[0].Type
	if star, isPtr := t.(*ast.StarExpr); isPtr {
		t = star.X
		ptr = true
	}
	if id, isIdent := t.(*ast.Ident); isIdent {
		return id.Name, ptr, true
	}
	return "", false, false
}

// methodWrites reports whether the method touches a writer field as a
// stream: calls a method on it or passes it to another call.
func methodWrites(p *Package, fd *ast.FuncDecl, writers map[types.Object]bool) bool {
	writes := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || writes {
			return !writes
		}
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			if inner, ok := unparen(sel.X).(*ast.SelectorExpr); ok && writers[p.Info.Uses[inner.Sel]] {
				writes = true // h.jsonl.Write(...)
				return false
			}
		}
		for _, arg := range call.Args {
			if sel, ok := unparen(arg).(*ast.SelectorExpr); ok && writers[p.Info.Uses[sel.Sel]] {
				writes = true // fmt.Fprintf(p.w, ...)
				return false
			}
		}
		return true
	})
	return writes
}

// referencesInIfCond reports whether any if condition in the method
// reads one of the fields.
func referencesInIfCond(p *Package, fd *ast.FuncDecl, fields map[types.Object]bool) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || found {
			return !found
		}
		if referencesFieldExpr(p, ifs.Cond, fields) {
			found = true
			return false
		}
		return true
	})
	return found
}

// assignsField reports whether the method assigns one of the fields.
func assignsField(p *Package, fd *ast.FuncDecl, fields map[types.Object]bool) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || found {
			return !found
		}
		for _, lhs := range as.Lhs {
			if sel, ok := unparen(lhs).(*ast.SelectorExpr); ok && fields[p.Info.Uses[sel.Sel]] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// referencesField reports whether the node reads one of the fields.
func referencesField(p *Package, n ast.Node, fields map[types.Object]bool) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if sel, ok := m.(*ast.SelectorExpr); ok && fields[p.Info.Uses[sel.Sel]] {
			found = true
			return false
		}
		return true
	})
	return found
}

// referencesFieldExpr is referencesField on an expression.
func referencesFieldExpr(p *Package, e ast.Expr, fields map[types.Object]bool) bool {
	return e != nil && referencesField(p, e, fields)
}

// lastResultIsError reports whether the method's last result is error.
func lastResultIsError(fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil || len(fd.Type.Results.List) == 0 {
		return false
	}
	last := fd.Type.Results.List[len(fd.Type.Results.List)-1]
	id, ok := last.Type.(*ast.Ident)
	return ok && id.Name == "error"
}
