package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Errcheck flags call statements (including deferred ones) that
// silently discard an error result. An explicit `_ =` assignment is
// allowed — it is a visible, reviewable discard. Exemptions, because
// their errors are documented to be always nil or are best-effort
// terminal output:
//
//   - fmt.Print / fmt.Printf / fmt.Println (stdout CLI output);
//   - fmt.Fprint* writing to os.Stdout or os.Stderr;
//   - writes to *strings.Builder or *bytes.Buffer (fmt.Fprint* with a
//     builder/buffer destination, or their Write* methods).
type Errcheck struct{}

// NewErrcheck returns the errcheck analyzer.
func NewErrcheck() *Errcheck { return &Errcheck{} }

// Name implements Analyzer.
func (*Errcheck) Name() string { return "errcheck" }

// returnsError reports whether the call's last result is an error.
func returnsError(p *Package, call *ast.CallExpr) bool {
	t := p.Info.TypeOf(call.Fun)
	sig, ok := t.(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// exempt reports whether a discarded error from this call is accepted
// without annotation.
func exempt(p *Package, call *ast.CallExpr) bool {
	// fmt.Print*/Fprint* cases.
	if path, name, ok := pkgFunc(p, call); ok && path == "fmt" {
		switch name {
		case "Print", "Printf", "Println":
			return true
		case "Fprint", "Fprintf", "Fprintln":
			if len(call.Args) == 0 {
				return false
			}
			if isStdStream(call.Args[0]) || isBuilderLike(p, call.Args[0]) {
				return true
			}
		}
		return false
	}
	// Methods on strings.Builder / bytes.Buffer.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && isBuilderLike(p, sel.X) {
		return true
	}
	return false
}

// isStdStream matches the expressions os.Stdout and os.Stderr.
func isStdStream(e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != "os" {
		return false
	}
	return sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr"
}

// isBuilderLike reports whether e's type is (a pointer to)
// strings.Builder or bytes.Buffer, whose Write/Fprint errors are
// documented always nil.
func isBuilderLike(p *Package, e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	full := obj.Pkg().Path() + "." + obj.Name()
	return full == "strings.Builder" || full == "bytes.Buffer"
}

// Analyze implements Analyzer.
func (ec *Errcheck) Analyze(p *Package) []Diagnostic {
	var out []Diagnostic
	diag := func(pos token.Pos, format string, args ...any) {
		out = append(out, Diagnostic{
			Pos:     p.Fset.Position(pos),
			Rule:    "errcheck",
			Message: fmt.Sprintf(format, args...),
		})
	}
	check := func(call *ast.CallExpr) {
		if returnsError(p, call) && !exempt(p, call) {
			diag(call.Pos(), "call discards its error result: handle it, assign to _ explicitly, or //lint:ignore with a reason")
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					check(call)
				}
				return false
			case *ast.DeferStmt:
				check(n.Call)
				return false
			case *ast.GoStmt:
				check(n.Call)
				return false
			}
			return true
		})
	}
	return out
}
