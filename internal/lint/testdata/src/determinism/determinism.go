// Package determfix exercises the determinism analyzer. The test loads
// it under an import path containing "internal/sim" so the default
// seeded-replay scope applies.
package determfix

import (
	"fmt"
	"math/rand"
	"time"
)

// Stamp reads the wall clock.
func Stamp() int64 {
	return time.Now().Unix() // want determinism
}

// Draw uses the global rand source.
func Draw() float64 {
	return rand.Float64() // want determinism
}

// Seeded uses the approved seeded-source idiom and is clean.
func Seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Dump leaks map iteration order into a slice and into output.
func Dump(m map[string]float64) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want determinism
	}
	for k, v := range m {
		fmt.Println(k, v) // want determinism
	}
	return keys
}

// Suppressed documents an intentional order-dependent append.
func Suppressed(m map[string]int) []int {
	var out []int
	for _, v := range m {
		//lint:ignore determinism fixture exercises the suppression path
		out = append(out, v)
	}
	return out
}
