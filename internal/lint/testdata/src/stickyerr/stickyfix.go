// Package stickyfix exercises the stickyerr analyzer: a compliant
// writer, a writer with no latch, an unguarded write, a swallowed
// failure, a latch that is never surfaced, and a suppressed exception.
package stickyfix

import (
	"fmt"
	"io"
)

// Good follows the latched-first-error contract end to end.
type Good struct {
	w   io.Writer
	err error
}

// Log writes one line, guarded and latched.
func (g *Good) Log(s string) {
	if g.w == nil || g.err != nil {
		return
	}
	if _, err := fmt.Fprintln(g.w, s); err != nil {
		g.err = err
	}
}

// Err surfaces the latch.
func (g *Good) Err() error { return g.err }

// NoLatch has a writer but nowhere to keep the first failure.
type NoLatch struct { // want stickyerr
	w io.Writer
}

// Log writes with no latch at all.
func (n *NoLatch) Log(s string) {
	_, _ = fmt.Fprintln(n.w, s)
}

// Unguarded latches failures but keeps writing after the first one.
type Unguarded struct {
	w   io.Writer
	err error
}

// Log never checks the latch before writing.
func (u *Unguarded) Log(s string) { // want stickyerr
	_, err := u.w.Write([]byte(s))
	u.err = err
}

// Err surfaces the latch.
func (u *Unguarded) Err() error { return u.err }

// NeverLatches guards but swallows the write error.
type NeverLatches struct {
	w   io.Writer
	err error
}

// Log checks the latch but forgets to set it on failure.
func (v *NeverLatches) Log(s string) { // want stickyerr
	if v.err != nil {
		return
	}
	_, _ = v.w.Write([]byte(s))
}

// Close surfaces the latch.
func (v *NeverLatches) Close() error { return v.err }

// NoSurface guards and latches but never exposes the error.
type NoSurface struct { // want stickyerr
	w   io.Writer
	err error
}

// Log is correct in isolation.
func (n *NoSurface) Log(s string) {
	if n.err != nil {
		return
	}
	if _, err := n.w.Write([]byte(s)); err != nil {
		n.err = err
	}
}

// Suppressed documents an intentional exception to the contract.
//
//lint:ignore stickyerr fixture proves suppression is honored
type Suppressed struct {
	w io.Writer
}

// Log writes with no latch, intentionally.
func (s *Suppressed) Log(t string) {
	_, _ = fmt.Fprintln(s.w, t)
}
