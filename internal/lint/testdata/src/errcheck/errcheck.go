// Package errfix exercises the errcheck analyzer: discarded error
// results and the documented exemptions.
package errfix

import (
	"fmt"
	"os"
	"strings"
)

// Drop discards an error result outright.
func Drop(f *os.File) {
	f.Sync() // want errcheck
}

// Deferred discards an error from a deferred call.
func Deferred(f *os.File) {
	defer f.Close() // want errcheck
}

// Explicit discards visibly and is clean.
func Explicit(f *os.File) {
	_ = f.Sync()
}

// Terminal uses the exempt stdout/stderr printers.
func Terminal() {
	fmt.Println("hello")
	fmt.Fprintf(os.Stderr, "world\n")
}

// Builder writes to a strings.Builder, whose errors are always nil.
func Builder() string {
	var b strings.Builder
	b.WriteString("x")
	fmt.Fprintf(&b, "%d", 1)
	return b.String()
}

// Suppressed documents an intentional discard.
func Suppressed(f *os.File) {
	//lint:ignore errcheck fixture exercises the suppression path
	f.Sync()
}
