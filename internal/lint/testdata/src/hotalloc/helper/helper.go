// Package helper is reached from the hot root across a package
// boundary, proving the traversal is module-wide.
package helper

// Work allocates on a path reached from the hot root.
func Work(n int) []string {
	labels := map[string]int{"n": n} // want hotalloc
	_ = labels
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, "x") // pre-sized: clean
	}
	//lint:ignore hotalloc fixture proves suppression is honored
	tags := []string{"a", "b"}
	return append(tags, out...)
}
