// Package hot exercises the hotalloc analyzer's in-package checks and
// its confinement: the annotated root and its callees are checked, an
// unannotated sibling with the same constructs is not.
package hot

import (
	"fmt"

	"fixture/helper"
)

// Sink consumes boxed values.
type Sink interface {
	Put(v any)
}

// Hot is the annotated per-period entry point.
//
//capgpu:hotpath
func Hot(s Sink, n int) string {
	if n < 0 {
		return fmt.Sprintf("bad n %d", n) // error path: exempt
	}
	name := fmt.Sprintf("n=%d", n) // want hotalloc
	var acc []int
	for i := 0; i < n; i++ {
		acc = append(acc, i) // want hotalloc
	}
	pair := []int{n, len(acc)} // want hotalloc
	_ = pair
	f := func() int { return n } // want hotalloc
	_ = f()
	s.Put(n) // want hotalloc
	helper.Work(n)
	return name
}

// Cold has the same constructs with no annotation: no findings.
func Cold(s Sink, n int) string {
	var acc []int
	for i := 0; i < n; i++ {
		acc = append(acc, i)
	}
	s.Put(len(acc))
	return fmt.Sprintf("n=%d", n)
}
