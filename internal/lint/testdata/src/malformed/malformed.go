// Package malformed holds a //lint:ignore directive with no reason: the
// directive itself must be reported, and it must not suppress anything.
package malformed

import "os"

// Drop carries a reasonless ignore that should not work.
func Drop(f *os.File) {
	//lint:ignore errcheck
	f.Sync()
}

// DropUnknown names a rule that does not exist: the directive is a
// finding and suppresses nothing.
func DropUnknown(f *os.File) {
	//lint:ignore nosuchrule a reason does not save a bad rule name
	f.Sync()
}
