// Package lockfix exercises the lockorder analyzer: declared-order
// compliance, inversion, an undeclared cycle, self-deadlock, callee
// expansion, suppression, and malformed directives. Each scenario uses
// its own lock types so the per-package graphs stay independent.
package lockfix

import "sync"

// Outer declares it is always taken before Inner.mu.
type Outer struct {
	mu sync.Mutex //lint:lockorder before:Inner.mu
}

// Inner is the downstream lock.
type Inner struct {
	mu sync.Mutex
}

// Declared follows the declared order and is clean.
func Declared(o *Outer, i *Inner) {
	o.mu.Lock()
	defer o.mu.Unlock()
	i.mu.Lock()
	i.mu.Unlock()
}

// OuterB declares order over InnerB for the inversion case.
type OuterB struct {
	mu sync.Mutex //lint:lockorder before:InnerB.mu
}

// InnerB is the downstream lock.
type InnerB struct {
	mu sync.Mutex
}

// Inverted acquires against the declared order.
func Inverted(o *OuterB, i *InnerB) {
	i.mu.Lock()
	o.mu.Lock() // want lockorder
	o.mu.Unlock()
	i.mu.Unlock()
}

// Left and Right form an undeclared cycle across two functions.
type Left struct{ mu sync.Mutex }

// Right is the other half of the cycle.
type Right struct{ mu sync.RWMutex }

// LeftThenRight takes Left.mu then Right.mu.
func LeftThenRight(l *Left, r *Right) {
	l.mu.Lock()
	defer l.mu.Unlock()
	r.mu.RLock() // want lockorder
	r.mu.RUnlock()
}

// RightThenLeft closes the cycle.
func RightThenLeft(l *Left, r *Right) {
	r.mu.Lock()
	defer r.mu.Unlock()
	l.mu.Lock() // want lockorder
	l.mu.Unlock()
}

// Relock re-acquires a held lock.
type Relock struct{ mu sync.Mutex }

// Twice deadlocks on its own mutex.
func Twice(x *Relock) {
	x.mu.Lock()
	x.mu.Lock() // want lockorder
	x.mu.Unlock()
	x.mu.Unlock()
}

// Deep and Shallow exercise intra-package callee expansion.
type Deep struct {
	mu sync.Mutex //lint:lockorder before:Shallow.mu
}

// Shallow is the downstream lock.
type Shallow struct{ mu sync.Mutex }

// lockDeep acquires Deep.mu on behalf of its caller.
func lockDeep(d *Deep) {
	d.mu.Lock()
	d.mu.Unlock()
}

// ViaCallee holds Shallow.mu while a callee takes Deep.mu.
func ViaCallee(d *Deep, s *Shallow) {
	s.mu.Lock()
	lockDeep(d) // want lockorder
	s.mu.Unlock()
}

// OuterS and InnerS prove suppression is honored.
type OuterS struct {
	mu sync.Mutex //lint:lockorder before:InnerS.mu
}

// InnerS is the downstream lock.
type InnerS struct{ mu sync.Mutex }

// SuppressedInversion documents an intentional exception.
func SuppressedInversion(o *OuterS, i *InnerS) {
	i.mu.Lock()
	//lint:ignore lockorder fixture proves suppression is honored
	o.mu.Lock()
	o.mu.Unlock()
	i.mu.Unlock()
}

// Bad carries a malformed directive and a misplaced one.
type Bad struct {
	mu sync.Mutex //lint:lockorder after:Inner.mu // want lockorder
	n  int        //lint:lockorder before:Inner.mu // want lockorder
}
