// Package cluster is a miniature of the real coordinator surface: the
// confined mutators live here, and same-package callers are exempt.
package cluster

// Node is one rack member.
type Node struct {
	capW float64
}

// SetCapCeilingW is a confined mutator.
func (n *Node) SetCapCeilingW(w float64) { n.capW = w }

// Coordinator owns rack membership.
type Coordinator struct {
	nodes []*Node
}

// AddNode is a confined mutator.
func (c *Coordinator) AddNode(n *Node) {
	c.nodes = append(c.nodes, n)
}

// RemoveNode is a confined mutator.
func (c *Coordinator) RemoveNode(i int) {
	c.nodes = append(c.nodes[:i], c.nodes[i+1:]...)
}

// Reset mutates from inside the package, which is allowed.
func (c *Coordinator) Reset() {
	for len(c.nodes) > 0 {
		c.RemoveNode(0)
	}
}
