// Package controlplane drives barrier-validated reconfiguration: only
// functions reachable from the //capgpu:barrier root may mutate the
// coordinator.
package controlplane

import "fixture/internal/cluster"

// Daemon owns the coordinator.
type Daemon struct {
	coord *cluster.Coordinator
}

// barrier is the validated apply point.
//
//capgpu:barrier
func (d *Daemon) barrier(n *cluster.Node) {
	d.applyJoin(n)
}

// applyJoin is reachable from the barrier, so its mutations pass.
func (d *Daemon) applyJoin(n *cluster.Node) {
	d.coord.AddNode(n)
	n.SetCapCeilingW(300)
}

// Sidestep is not reachable from the barrier and must not mutate.
func (d *Daemon) Sidestep(n *cluster.Node) {
	d.coord.AddNode(n) // want barrierconfine
	//lint:ignore barrierconfine fixture proves suppression is honored
	n.SetCapCeilingW(250)
}

// Drive keeps the barrier entry point referenced.
func (d *Daemon) Drive(n *cluster.Node) {
	d.barrier(n)
}
