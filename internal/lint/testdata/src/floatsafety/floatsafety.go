// Package floatfix exercises the floatsafety analyzer: float equality
// and unguarded quantity-flavored divisions.
package floatfix

// Equal compares computed floats exactly.
func Equal(a, b float64) bool {
	return a == b // want floatsafety
}

// Unset uses the zero-sentinel idiom, which is exempt.
func Unset(x float64) bool {
	return x == 0
}

// Norm divides by a power-flavored denominator with no guard in sight.
func Norm(powerW, maxPowerW float64) float64 {
	return powerW / maxPowerW // want floatsafety
}

// Guarded checks the denominator's range first and is clean.
func Guarded(powerW, maxPowerW float64) float64 {
	if maxPowerW <= 0 {
		return 0
	}
	return powerW / maxPowerW
}

// ConstDenom divides by a provably nonzero constant and is clean.
func ConstDenom(powerW float64) float64 {
	return powerW / 2.0
}

// Suppressed documents an intentional exact comparison.
func Suppressed(a, b float64) bool {
	//lint:ignore floatsafety fixture exercises the suppression path
	return a == b
}
