// Package gofix exercises the determinism analyzer's goroutine rule.
// The test loads it under an import path containing "internal/cluster"
// so both the seeded-replay scope and the runIndexed carve-out apply.
package gofix

import "sync"

// Leak launches an ad-hoc goroutine: its writes interleave with the
// seeded timeline in scheduler order, so it is flagged.
func Leak(ch chan int) {
	go func() { ch <- 1 }() // want determinism
}

// runIndexed mirrors cluster's approved worker-pool helper: `go` is
// sanctioned only inside this function body.
func runIndexed(workers, n int, fn func(i int)) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Fan uses the approved helper and is clean.
func Fan(n int, fn func(int)) {
	runIndexed(2, n, fn)
}

// Serve shows the escape hatch: a goroutine with a stated reason.
func Serve(start func()) {
	//lint:ignore determinism server goroutine never touches the seeded timeline
	go start()
}

// runIndexedMethod shares the name but is a method, not the helper: a
// method receiver means it is NOT the sanctioned free function.
type pool struct{}

func (pool) runIndexedMethod(fn func()) {
	go fn() // want determinism
}
