// Package unitsfix exercises the units analyzer: unsuffixed quantity
// names on exported surfaces and mixed-dimension arithmetic.
package unitsfix

// PowerBudget is a package-level exported quantity with no suffix.
const PowerBudget = 250.0 // want units

// CapDefaultW carries a suffix and is clean.
const CapDefaultW = 300.0

// Server mixes suffixed and unsuffixed quantity fields.
type Server struct {
	IdlePower float64 // want units
	CapW      float64
	//lint:ignore units legacy name kept for serialized-config compatibility
	PeakPower float64
}

// SetBudget takes an unsuffixed quantity parameter.
func SetBudget(budget float64) float64 { // want units
	return budget
}

// Mix adds watts to megahertz.
func Mix(aW, bMHz float64) float64 {
	return aW + bMHz // want units
}

// SameDim subtracts compatible dimensions and is clean.
func SameDim(aW, bW float64) float64 {
	return aW - bW
}
