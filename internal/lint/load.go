package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadModule parses and type-checks every non-test package under the
// module rooted at dir (skipping testdata, vendor and hidden
// directories) and returns them sorted by import path. Test files are
// excluded: every rule in this suite is scoped to production code.
func LoadModule(dir string) ([]*Package, error) {
	modPath, err := modulePath(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, err
	}
	dirs, err := packageDirs(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	ld := &loader{
		fset: fset,
		std:  importer.ForCompiler(fset, "source", nil),
		mod:  modPath,
		root: dir,
		dirs: dirs,
		pkgs: make(map[string]*Package),
		busy: make(map[string]bool),
	}
	paths := make([]string, 0, len(dirs))
	for p := range dirs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := ld.load(p)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	return out, nil
}

// LoadPackageDir parses and type-checks the single package in dir as
// import path path, resolving imports from the standard library only.
// The lint tests use it to load fixture packages under testdata.
func LoadPackageDir(dir, path string) (*Package, error) {
	fset := token.NewFileSet()
	ld := &loader{
		fset: fset,
		std:  importer.ForCompiler(fset, "source", nil),
		mod:  path,
		root: dir,
		dirs: map[string]string{path: dir},
		pkgs: make(map[string]*Package),
		busy: make(map[string]bool),
	}
	return ld.load(path)
}

// loader type-checks module packages from source, resolving in-module
// imports recursively and everything else through the stdlib source
// importer. It is not safe for concurrent use.
type loader struct {
	fset *token.FileSet
	std  types.Importer
	mod  string
	root string
	dirs map[string]string // import path -> directory
	pkgs map[string]*Package
	busy map[string]bool // import cycle detection
}

// Import implements types.Importer for the type-checker's benefit.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.mod || strings.HasPrefix(path, l.mod+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("lint: no Go files in %s", path)
		}
		return p.Pkg, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks one module package (memoized). It returns
// (nil, nil) for directories with no non-test Go files.
func (l *loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.busy[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	dir, ok := l.dirs[path]
	if !ok {
		return nil, fmt.Errorf("lint: unknown module package %s", path)
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		l.pkgs[path] = nil
		return nil, nil
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tp, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Fset: l.fset, Files: files, Pkg: tp, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// modulePath reads the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// packageDirs maps each module package's import path to its directory.
func packageDirs(root string) (map[string]string, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	dirs := make(map[string]string)
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		dirs[ip] = filepath.Dir(path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return dirs, nil
}
