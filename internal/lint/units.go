package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"unicode"
)

// Units enforces the repo's physical-unit naming convention and flags
// arithmetic that mixes identifiers of different unit dimensions.
//
// Convention: an exported numeric struct field, an exported numeric
// package-level const/var, or a numeric parameter of an exported
// function whose name denotes a physical quantity (its trailing word is
// "power", "freq", "latency", "delay", "energy", "setpoint", "budget",
// "time", …) must carry a unit suffix: W for watts, GHz/MHz/Hz for
// frequencies, S/Sec/Seconds/Ms for times, J for joules, Norm/Frac/Pct
// for dimensionless ratios, Periods for control-period counts.
//
// Mixing: `xW + yMHz` adds watts to megahertz; any +/- whose two
// operands resolve to identifiers with different unit dimensions is
// flagged (GHz vs MHz counts: a scale mismatch is still a bug).
type Units struct{}

// NewUnits returns the units analyzer.
func NewUnits() *Units { return &Units{} }

// Name implements Analyzer.
func (*Units) Name() string { return "units" }

// unitDims maps each recognized suffix to its dimension group. Suffixes
// in the same group are compatible; distinct groups must not be mixed
// by +/-. Scale variants of one dimension (GHz vs MHz) are distinct
// groups on purpose.
var unitDims = map[string]string{
	"W":       "watts",
	"GHz":     "gigahertz",
	"MHz":     "megahertz",
	"KHz":     "kilohertz",
	"Hz":      "hertz",
	"J":       "joules",
	"S":       "seconds",
	"Sec":     "seconds",
	"Secs":    "seconds",
	"Seconds": "seconds",
	"Ms":      "millis",
	"Norm":    "ratio",
	"Frac":    "ratio",
	"Pct":     "ratio",
	"Ratio":   "ratio",
	"Periods": "periods",
}

// unitSuffixes is checked longest-first so "GHz" wins over "Hz".
var unitSuffixes = []string{
	"Seconds", "Ratio", "Periods", "Secs", "Norm", "Frac", "GHz", "MHz", "KHz",
	"Pct", "Sec", "Hz", "Ms", "J", "S", "W",
}

// quantityWords are the trailing name tokens that mark a quantity
// needing a unit suffix. Matched case-insensitively and
// plural-insensitively ("Setpoints" → "setpoint").
var quantityWords = map[string]bool{
	"power": true, "watt": true, "freq": true, "frequency": true,
	"clock": true, "latency": true, "delay": true, "energy": true,
	"setpoint": true, "budget": true, "time": true, "joule": true,
}

// unitSuffix returns the recognized unit suffix of a name ("" if none).
// Single-letter suffixes require a lowercase letter or digit before
// them so "SLOs" or "RMSE" are not read as carrying units.
func unitSuffix(name string) string {
	for _, suf := range unitSuffixes {
		if !strings.HasSuffix(name, suf) {
			continue
		}
		rest := name[:len(name)-len(suf)]
		if rest == "" {
			if len(suf) > 1 {
				return suf
			}
			continue
		}
		prev := rune(rest[len(rest)-1])
		if unicode.IsLower(prev) || unicode.IsDigit(prev) {
			return suf
		}
	}
	return ""
}

// lastWord returns the final camel-case token of a name, lowercased and
// singularized.
func lastWord(name string) string {
	start := 0
	for i, r := range name {
		if unicode.IsUpper(r) {
			start = i
		}
	}
	w := strings.ToLower(name[start:])
	if strings.HasSuffix(w, "ies") {
		return w[:len(w)-3] + "y"
	}
	if strings.HasSuffix(w, "s") && len(w) > 3 {
		return w[:len(w)-1]
	}
	return w
}

// needsSuffix reports whether a numeric identifier's name denotes a
// quantity but carries no unit suffix.
func needsSuffix(name string) bool {
	if unitSuffix(name) != "" {
		return false
	}
	return quantityWords[lastWord(name)]
}

// numericType reports whether t is an integer/float or a slice/array of
// one — the shapes physical quantities travel in.
func numericType(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&(types.IsInteger|types.IsFloat) != 0
	case *types.Slice:
		return numericType(u.Elem())
	case *types.Array:
		return numericType(u.Elem())
	}
	return false
}

// Analyze implements Analyzer.
func (u *Units) Analyze(p *Package) []Diagnostic {
	var out []Diagnostic
	diag := func(pos token.Pos, format string, args ...any) {
		out = append(out, Diagnostic{
			Pos:     p.Fset.Position(pos),
			Rule:    "units",
			Message: fmt.Sprintf(format, args...),
		})
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.TypeSpec:
				if !n.Name.IsExported() {
					return true
				}
				st, ok := n.Type.(*ast.StructType)
				if !ok {
					return true
				}
				for _, fld := range st.Fields.List {
					t := p.Info.TypeOf(fld.Type)
					if t == nil || !numericType(t) {
						continue
					}
					for _, name := range fld.Names {
						if name.IsExported() && needsSuffix(name.Name) {
							diag(name.Pos(), "exported field %s.%s carries a physical quantity but no unit suffix (want W, MHz, GHz, S, Seconds, J, Norm, Frac, …)", n.Name.Name, name.Name)
						}
					}
				}
			case *ast.GenDecl:
				if n.Tok != token.CONST && n.Tok != token.VAR {
					return true
				}
				for _, spec := range n.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						obj := p.Info.Defs[name]
						if obj == nil || obj.Parent() != p.Pkg.Scope() {
							continue
						}
						if name.IsExported() && numericType(obj.Type()) && needsSuffix(name.Name) {
							diag(name.Pos(), "exported %s %s carries a physical quantity but no unit suffix", n.Tok, name.Name)
						}
					}
				}
			case *ast.FuncDecl:
				if !n.Name.IsExported() || n.Type.Params == nil {
					return true
				}
				for _, fld := range n.Type.Params.List {
					t := p.Info.TypeOf(fld.Type)
					if t == nil || !numericType(t) {
						continue
					}
					for _, name := range fld.Names {
						if needsSuffix(name.Name) {
							diag(name.Pos(), "parameter %s of exported %s carries a physical quantity but no unit suffix", name.Name, n.Name.Name)
						}
					}
				}
			case *ast.BinaryExpr:
				if n.Op != token.ADD && n.Op != token.SUB {
					return true
				}
				ld, ln := operandDim(n.X)
				rd, rn := operandDim(n.Y)
				if ld != "" && rd != "" && ld != rd {
					diag(n.OpPos, "arithmetic mixes units: %s (%s) %s %s (%s)", ln, ld, n.Op, rn, rd)
				}
			}
			return true
		})
	}
	return out
}

// operandDim resolves an operand expression to (dimension, name) via
// its identifier's unit suffix; ("", "") when the operand carries no
// recognizable unit.
func operandDim(e ast.Expr) (dim, name string) {
	switch e := e.(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	case *ast.IndexExpr:
		return operandDim(e.X)
	case *ast.ParenExpr:
		return operandDim(e.X)
	default:
		return "", ""
	}
	suf := unitSuffix(name)
	if suf == "" {
		return "", ""
	}
	return unitDims[suf], name
}
