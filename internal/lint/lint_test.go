package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// loadFixture type-checks one fixture package under testdata/src.
func loadFixture(t *testing.T, name, importPath string) *Package {
	t.Helper()
	p, err := LoadPackageDir(filepath.Join("testdata", "src", name), importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	if p == nil {
		t.Fatalf("fixture %s has no files", name)
	}
	return p
}

// wantKey is one expected diagnostic: a rule at a line.
type wantKey struct {
	line int
	rule string
}

// expectations parses the fixture's `// want <rule> [<rule>...]`
// comments into the exact diagnostic set the analyzers must produce.
// A want clause may also trail another directive in the same comment
// (`//lint:lockorder ... // want lockorder`), since one line can hold
// only one // comment.
func expectations(p *Package) map[wantKey]int {
	out := make(map[wantKey]int)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					if i := strings.LastIndex(c.Text, "// want "); i >= 0 {
						rest = c.Text[i+len("// want "):]
					} else {
						continue
					}
				}
				line := p.Fset.Position(c.Pos()).Line
				for _, rule := range strings.Fields(rest) {
					out[wantKey{line, rule}]++
				}
			}
		}
	}
	return out
}

// checkFixture runs the full default suite over one fixture and demands
// an exact match between findings and `// want` comments — so each
// fixture simultaneously proves its analyzer fires at the right lines,
// stays quiet on the clean idioms, honors //lint:ignore, and triggers
// no cross-rule false positives.
func checkFixture(t *testing.T, name, importPath, rule string) {
	t.Helper()
	p := loadFixture(t, name, importPath)
	diffDiagnostics(t, name, rule, expectations(p), Run([]*Package{p}, DefaultAnalyzers()))
}

// checkModuleFixture is checkFixture for multi-package fixtures: a
// testdata/src/<name> directory with its own go.mod, loaded through
// LoadModule so the cross-package analyzers see real package
// boundaries. Expectations are merged across all packages.
func checkModuleFixture(t *testing.T, name, rule string) {
	t.Helper()
	pkgs, err := LoadModule(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("loading fixture module %s: %v", name, err)
	}
	if len(pkgs) < 2 {
		t.Fatalf("fixture module %s has %d packages, want >= 2 (the point is cross-package analysis)", name, len(pkgs))
	}
	want := make(map[wantKey]int)
	for _, p := range pkgs {
		for k, n := range expectations(p) {
			want[k] += n
		}
	}
	diffDiagnostics(t, name, rule, want, Run(pkgs, DefaultAnalyzers()))
}

// diffDiagnostics demands an exact match between findings and want
// comments, and that at least one finding of the named rule survived.
func diffDiagnostics(t *testing.T, name, rule string, want map[wantKey]int, got []Diagnostic) {
	t.Helper()
	if len(want) == 0 {
		t.Fatalf("fixture %s declares no expected diagnostics", name)
	}
	sawRule := false
	for _, d := range got {
		if d.Rule == rule {
			sawRule = true
		}
		k := wantKey{d.Pos.Line, d.Rule}
		if want[k] == 0 {
			t.Errorf("unexpected finding %s", d)
			continue
		}
		want[k]--
		if want[k] == 0 {
			delete(want, k)
		}
	}
	for k, n := range want {
		t.Errorf("missing %d finding(s) of rule %s at %s:%d", n, k.rule, name, k.line)
	}
	if !sawRule {
		t.Errorf("fixture %s produced no %s findings at all", name, rule)
	}
}

func TestUnitsFixture(t *testing.T) {
	checkFixture(t, "units", "fixture/units", "units")
}

func TestDeterminismFixture(t *testing.T) {
	// The import path places the fixture inside the default
	// seeded-replay scope (it contains "internal/sim").
	checkFixture(t, "determinism", "fixture/internal/sim/determfix", "determinism")
}

func TestDeterminismGoroutines(t *testing.T) {
	// The import path contains "internal/cluster", so the scope applies
	// AND the runIndexed worker-pool carve-out is active: the ad-hoc
	// goroutines are flagged, the pool helper's launches are not.
	checkFixture(t, "goroutines", "fixture/internal/cluster/gofix", "determinism")
}

func TestDeterminismGoroutinesNoCarveOutElsewhere(t *testing.T) {
	// Outside internal/cluster even a function named runIndexed gets no
	// carve-out: every go statement in the fixture is flagged.
	p := loadFixture(t, "goroutines", "fixture/internal/sim/gofix")
	got := NewDeterminism(DefaultDeterminismScope()).Analyze(p)
	// Leak, runIndexed's own launch, and the method: 3 raw findings
	// (the //lint:ignore one is filtered later by Run, not Analyze).
	if len(got) != 4 {
		t.Fatalf("want 4 findings without the carve-out, got %d: %v", len(got), got)
	}
}

func TestDeterminismOutOfScope(t *testing.T) {
	p := loadFixture(t, "determinism", "fixture/unscoped/determfix")
	if got := NewDeterminism(DefaultDeterminismScope()).Analyze(p); len(got) != 0 {
		t.Fatalf("determinism fired outside its scope: %v", got)
	}
}

func TestFloatSafetyFixture(t *testing.T) {
	checkFixture(t, "floatsafety", "fixture/floatsafety", "floatsafety")
}

func TestErrcheckFixture(t *testing.T) {
	checkFixture(t, "errcheck", "fixture/errcheck", "errcheck")
}

// TestMalformedIgnore pins down the directive hygiene rules: a bare
// `//lint:ignore errcheck` (no reason) and a `//lint:ignore nosuchrule
// ...` (unknown rule) are each reported, and neither suppresses the
// finding beneath it.
func TestMalformedIgnore(t *testing.T) {
	p := loadFixture(t, "malformed", "fixture/malformed")
	got := Run([]*Package{p}, DefaultAnalyzers())
	if len(got) != 4 {
		t.Fatalf("want 4 findings (2 bad directives + 2 unsuppressed errcheck), got %d: %v", len(got), got)
	}
	if got[0].Rule != "lint" || !strings.Contains(got[0].Message, "malformed") {
		t.Errorf("first finding should be the malformed directive, got %s", got[0])
	}
	if got[1].Rule != "errcheck" || got[1].Pos.Line != got[0].Pos.Line+1 {
		t.Errorf("reasonless directive must not suppress the finding below it, got %s", got[1])
	}
	if got[2].Rule != "lint" || !strings.Contains(got[2].Message, "unknown rule \"nosuchrule\"") {
		t.Errorf("third finding should be the unknown-rule directive, got %s", got[2])
	}
	if got[3].Rule != "errcheck" || got[3].Pos.Line != got[2].Pos.Line+1 {
		t.Errorf("unknown-rule directive must not suppress the finding below it, got %s", got[3])
	}
}

func TestLockOrderFixture(t *testing.T) {
	checkFixture(t, "lockorder", "fixture/lockorder", "lockorder")
}

func TestStickyErrFixture(t *testing.T) {
	checkFixture(t, "stickyerr", "fixture/stickyerr", "stickyerr")
}

func TestHotAllocFixture(t *testing.T) {
	checkModuleFixture(t, "hotalloc", "hotalloc")
}

func TestBarrierConfineFixture(t *testing.T) {
	checkModuleFixture(t, "barrierconfine", "barrierconfine")
}

// TestAllRuleNamesMatchAnalyzers keeps the canonical vocabulary and
// the default suite in lockstep: a new analyzer must register its name
// or its own suppressions would be flagged as unknown.
func TestAllRuleNamesMatchAnalyzers(t *testing.T) {
	names := make(map[string]bool)
	for _, a := range DefaultAnalyzers() {
		names[a.Name()] = true
	}
	for _, r := range AllRuleNames() {
		if !names[r] {
			t.Errorf("AllRuleNames lists %q but no default analyzer has that name", r)
		}
		delete(names, r)
	}
	for n := range names {
		t.Errorf("analyzer %q is not listed in AllRuleNames", n)
	}
}

// TestRepoClean is the zero-findings gate in test form: the whole module
// must lint clean, so `go test ./...` fails the moment a finding lands.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	pkgs, err := LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("only %d packages loaded; module walk is broken", len(pkgs))
	}
	for _, d := range Run(pkgs, DefaultAnalyzers()) {
		t.Errorf("unsuppressed finding: %s", d)
	}
}
