package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism forbids nondeterminism sources inside the seeded-replay
// packages: the fault injector promises that two runs with the same
// seed and schedule are bit-identical, and the golden replay test pins
// it. Three things silently break that promise:
//
//   - time.Now (wall-clock state leaking into a simulated timeline);
//   - package-level math/rand calls (rand.Intn, rand.Float64, …),
//     which draw from the shared global source instead of a seeded
//     *rand.Rand;
//   - appends or prints inside a `for … range someMap` body, whose
//     order changes run to run;
//   - `go` statements anywhere but the one approved worker-pool helper
//     (cluster.runIndexed), because ad-hoc goroutines interleave
//     emission order and race the seeded timeline. Parallel fan-out
//     must go through runIndexed, whose callers commit results behind
//     a barrier in node-index order.
type Determinism struct {
	scope []string
}

// NewDeterminism returns the analyzer restricted to packages whose
// import path contains one of the scope substrings.
func NewDeterminism(scope []string) *Determinism {
	return &Determinism{scope: scope}
}

// DefaultDeterminismScope lists the repo's seeded-replay surfaces.
func DefaultDeterminismScope() []string {
	return []string{
		"internal/sim",
		"internal/faults",
		"internal/core",
		"internal/cluster",
		"internal/controlplane",
		"internal/mpc",
		"internal/experiments",
		"internal/telemetry",
		"internal/flight",
		"internal/provenance",
	}
}

// Name implements Analyzer.
func (*Determinism) Name() string { return "determinism" }

// inScope reports whether the package is a seeded-replay surface.
func (d *Determinism) inScope(path string) bool {
	for _, s := range d.scope {
		if strings.Contains(path, s) {
			return true
		}
	}
	return false
}

// pkgFunc resolves a call to (package path, function name) when the
// callee is a selector on an imported package; ok is false otherwise.
func pkgFunc(p *Package, call *ast.CallExpr) (path, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := p.Info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// Analyze implements Analyzer.
func (d *Determinism) Analyze(p *Package) []Diagnostic {
	if !d.inScope(p.Path) {
		return nil
	}
	var out []Diagnostic
	diag := func(pos token.Pos, format string, args ...any) {
		out = append(out, Diagnostic{
			Pos:     p.Fset.Position(pos),
			Rule:    "determinism",
			Message: fmt.Sprintf(format, args...),
		})
	}
	for _, f := range p.Files {
		approved := approvedGoRanges(p.Path, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				for _, r := range approved {
					if n.Pos() >= r[0] && n.Pos() < r[1] {
						return true
					}
				}
				diag(n.Pos(), "go statement in a seeded-replay package: goroutines interleave emission order; fan out through cluster.runIndexed and commit behind its barrier")
			case *ast.CallExpr:
				path, name, ok := pkgFunc(p, n)
				if !ok {
					return true
				}
				if path == "time" && name == "Now" {
					diag(n.Pos(), "time.Now in a seeded-replay package: wall-clock state breaks bit-identical replay; thread simulated time instead")
				}
				if (path == "math/rand" || path == "math/rand/v2") &&
					name != "New" && name != "NewSource" && name != "NewZipf" && name != "NewPCG" && name != "NewChaCha8" {
					diag(n.Pos(), "rand.%s draws from the global source: use a seeded *rand.Rand so replays are bit-identical", name)
				}
			case *ast.RangeStmt:
				t := p.Info.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				d.checkMapRange(p, n, diag)
			}
			return true
		})
	}
	return out
}

// approvedGoRanges returns the source ranges where a `go` statement is
// sanctioned: the body of cluster's runIndexed worker-pool helper, the
// repo's one approved goroutine-launch site inside the determinism
// scope. Everything else uses //lint:ignore with a stated reason.
func approvedGoRanges(pkgPath string, f *ast.File) [][2]token.Pos {
	if !strings.Contains(pkgPath, "internal/cluster") {
		return nil
	}
	var out [][2]token.Pos
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Recv != nil || fd.Name.Name != "runIndexed" || fd.Body == nil {
			continue
		}
		out = append(out, [2]token.Pos{fd.Body.Pos(), fd.Body.End()})
	}
	return out
}

// checkMapRange flags appends and prints inside a map-range body: both
// make the program's output depend on Go's randomized map iteration
// order. Sorting the keys first (e.g. trace.SortedKeys) and ranging
// over the sorted slice is the deterministic idiom.
func (d *Determinism) checkMapRange(p *Package, rng *ast.RangeStmt, diag func(token.Pos, string, ...any)) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, isIdent := call.Fun.(*ast.Ident); isIdent && id.Name == "append" {
			if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
				diag(call.Pos(), "append inside a map range: element order depends on map iteration; range over sorted keys instead")
			}
			return true
		}
		if path, name, okSel := pkgFunc(p, call); okSel && path == "fmt" &&
			(strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
			diag(call.Pos(), "fmt.%s inside a map range: output order depends on map iteration; range over sorted keys instead", name)
		}
		return true
	})
}
