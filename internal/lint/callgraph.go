package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// funcInfo ties one declared function or method to the package and
// declaration that define it.
type funcInfo struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// buildFuncIndex maps every function and method declared in the loaded
// packages to its body. The loader shares one *types.Func object per
// declaration across packages, so an index lookup on a call's resolved
// object works module-wide.
func buildFuncIndex(pkgs []*Package) map[*types.Func]funcInfo {
	idx := make(map[*types.Func]funcInfo)
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					idx[obj] = funcInfo{pkg: p, decl: fd}
				}
			}
		}
	}
	return idx
}

// unparen strips any number of surrounding parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// staticCallee resolves the function a call expression statically
// invokes: a plain function, a package-qualified function, or a method
// on a concrete receiver. Calls through function values, fields, and
// interface methods resolve to objects with no indexed body, so
// traversals that look the result up in a buildFuncIndex map simply
// stop there.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// funcDisplayName renders a declaration as Recv.Name or Name for
// diagnostics.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// hasDirective reports whether a declaration's doc comment carries the
// given //capgpu:<name> marker.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == directive {
			return true
		}
	}
	return false
}
