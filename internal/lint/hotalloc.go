package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
)

// HotAlloc flags allocation-prone constructs in hot-path functions.
// Roots are declarations annotated //capgpu:hotpath; the rule applies
// to each root and to every function statically reachable from one
// through intra-module calls (interface dispatch and calls through
// function values end the traversal, which is why the per-period entry
// points must carry the annotation themselves). Flagged constructs:
//
//   - fmt.Sprintf / fmt.Errorf outside a branch that terminates in
//     return or panic (error paths may format; the happy path may not);
//   - append that grows a local slice declared with no capacity;
//   - map and slice composite literals (a fresh allocation per call);
//   - closures that capture enclosing variables (except immediately
//     invoked ones);
//   - interface boxing: passing a non-pointer concrete value to an
//     interface parameter (fmt/errors calls and terminating branches
//     excluded — error paths may box, the happy path may not).
//
// The pre-sizing make(T, n) idiom is deliberately not flagged: the
// bench allocs/op ratchet owns total allocation counts; this rule owns
// the shapes that make them unbounded.
type HotAlloc struct{}

// NewHotAlloc returns the hotalloc analyzer.
func NewHotAlloc() *HotAlloc { return &HotAlloc{} }

// Name implements Analyzer.
func (a *HotAlloc) Name() string { return "hotalloc" }

// Analyze implements Analyzer for single-package runs (fixtures).
func (a *HotAlloc) Analyze(p *Package) []Diagnostic {
	return a.AnalyzeModule([]*Package{p})
}

// AnalyzeModule implements ModuleAnalyzer.
func (a *HotAlloc) AnalyzeModule(pkgs []*Package) []Diagnostic {
	idx := buildFuncIndex(pkgs)

	// Roots, sorted by name for deterministic attribution.
	type root struct {
		fn   *types.Func
		name string
	}
	var roots []root
	for fn, info := range idx {
		if hasDirective(info.decl.Doc, "capgpu:hotpath") {
			roots = append(roots, root{fn, funcDisplayName(info.decl)})
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].name < roots[j].name })

	// BFS the static call graph, remembering which root reached each
	// function first.
	via := make(map[*types.Func]string)
	var queue []*types.Func
	for _, r := range roots {
		if _, ok := via[r.fn]; !ok {
			via[r.fn] = r.name
			queue = append(queue, r.fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		info := idx[fn]
		if info.decl.Body == nil {
			continue
		}
		ast.Inspect(info.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := staticCallee(info.pkg.Info, call)
			if callee == nil {
				return true
			}
			if _, inModule := idx[callee]; inModule {
				if _, seen := via[callee]; !seen {
					via[callee] = via[fn]
					queue = append(queue, callee)
				}
			}
			return true
		})
	}

	var out []Diagnostic
	for fn, rootName := range via {
		info := idx[fn]
		if info.decl.Body == nil {
			continue
		}
		out = append(out, checkHotFunc(info.pkg, info.decl, rootName)...)
	}
	sortDiagnostics(out)
	return out
}

// parentMap records each node's parent within a function body.
func parentMap(body *ast.BlockStmt) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// checkHotFunc runs all five allocation checks over one hot function.
func checkHotFunc(p *Package, fd *ast.FuncDecl, rootName string) []Diagnostic {
	parents := parentMap(fd.Body)
	unsized := unsizedLocals(p, fd.Body)
	self := funcDisplayName(fd)
	ctx := fmt.Sprintf("in %s (hot path via //capgpu:hotpath root %s)", self, rootName)
	if self == rootName {
		ctx = fmt.Sprintf("in hot-path function %s", self)
	}
	var out []Diagnostic
	flag := func(n ast.Node, msg string) {
		out = append(out, Diagnostic{
			Pos:     p.Fset.Position(n.Pos()),
			Rule:    "hotalloc",
			Message: fmt.Sprintf("%s %s", msg, ctx),
		})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := staticCallee(p.Info, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
				if (fn.Name() == "Sprintf" || fn.Name() == "Errorf") && !onTerminatingBranch(n, parents) {
					flag(n, "fmt."+fn.Name()+" on the happy path")
				}
				return true
			}
			if isGrowingAppend(p, n, unsized) {
				flag(n, "append grows an unsized local slice")
			}
			if !onTerminatingBranch(n, parents) { // error/panic paths may box
				out = append(out, boxingFindings(p, n, ctx)...)
			}
		case *ast.CompositeLit:
			if isMapOrSliceLit(p, n) && !insideMapOrSliceLit(p, n, parents) {
				flag(n, "map/slice literal allocates per call")
			}
		case *ast.FuncLit:
			if capt := capturedVar(p, fd, n); capt != "" && !immediatelyInvoked(n, parents) {
				flag(n, fmt.Sprintf("closure capturing %q allocates per call", capt))
			}
		}
		return true
	})
	return out
}

// onTerminatingBranch reports whether a node sits inside an if body,
// else block, or switch case whose statement list ends in return or
// panic — the error-path carve-out for formatting.
func onTerminatingBranch(n ast.Node, parents map[ast.Node]ast.Node) bool {
	for cur := n; cur != nil; cur = parents[cur] {
		var list []ast.Stmt
		switch blk := cur.(type) {
		case *ast.BlockStmt:
			switch parents[blk].(type) {
			case *ast.IfStmt:
				list = blk.List
			}
		case *ast.CaseClause:
			list = blk.Body
		}
		if len(list) > 0 && terminates(list[len(list)-1]) {
			return true
		}
	}
	return false
}

// terminates reports whether a statement ends the enclosing function's
// normal flow: return, panic, or a branch that itself terminates.
func terminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.IfStmt:
		// if/else where both arms terminate.
		if s.Else == nil {
			return false
		}
		bodyEnds := len(s.Body.List) > 0 && terminates(s.Body.List[len(s.Body.List)-1])
		var elseEnds bool
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			elseEnds = len(e.List) > 0 && terminates(e.List[len(e.List)-1])
		case *ast.IfStmt:
			elseEnds = terminates(e)
		}
		return bodyEnds && elseEnds
	}
	return false
}

// unsizedLocals collects the local slice variables declared with no
// capacity: `var x []T`, `x := []T{}`, `x := make([]T, 0)`.
func unsizedLocals(p *Package, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	mark := func(name *ast.Ident) {
		if obj := p.Info.Defs[name]; obj != nil {
			out[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ValueSpec:
			if len(n.Values) != 0 {
				return true
			}
			if _, ok := p.Info.TypeOf(n.Type).Underlying().(*types.Slice); ok {
				for _, name := range n.Names {
					mark(name)
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				name, ok := n.Lhs[i].(*ast.Ident)
				if !ok || p.Info.Defs[name] == nil {
					continue
				}
				if unsizedSliceExpr(p, rhs) {
					mark(name)
				}
			}
		}
		return true
	})
	return out
}

// unsizedSliceExpr matches `[]T{}` and `make([]T, 0)` initializers.
func unsizedSliceExpr(p *Package, e ast.Expr) bool {
	switch e := unparen(e).(type) {
	case *ast.CompositeLit:
		if _, ok := p.Info.TypeOf(e).Underlying().(*types.Slice); ok {
			return len(e.Elts) == 0
		}
	case *ast.CallExpr:
		id, ok := unparen(e.Fun).(*ast.Ident)
		if !ok || id.Name != "make" || len(e.Args) != 2 {
			return false
		}
		if _, ok := p.Info.TypeOf(e).Underlying().(*types.Slice); !ok {
			return false
		}
		tv := p.Info.Types[e.Args[1]]
		return tv.Value != nil && tv.Value.String() == "0"
	}
	return false
}

// isGrowingAppend matches append calls whose destination is an unsized
// local slice.
func isGrowingAppend(p *Package, call *ast.CallExpr, unsized map[types.Object]bool) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return false
	}
	if obj := p.Info.Uses[id]; obj == nil || obj.Pkg() != nil {
		return false // shadowed append, not the builtin
	}
	dst, ok := unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return false
	}
	return unsized[p.Info.Uses[dst]]
}

// isMapOrSliceLit reports whether a composite literal allocates a map
// or slice (struct and array literals are stack-friendly and exempt).
func isMapOrSliceLit(p *Package, lit *ast.CompositeLit) bool {
	t := p.Info.TypeOf(lit)
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

// insideMapOrSliceLit suppresses nested implicit literals so one
// two-dimensional literal yields one finding, not one per row.
func insideMapOrSliceLit(p *Package, lit *ast.CompositeLit, parents map[ast.Node]ast.Node) bool {
	for cur := parents[lit]; cur != nil; cur = parents[cur] {
		if outer, ok := cur.(*ast.CompositeLit); ok && isMapOrSliceLit(p, outer) {
			return true
		}
	}
	return false
}

// capturedVar returns the name of a variable the closure captures from
// the enclosing function, or "" if it captures nothing.
func capturedVar(p *Package, fd *ast.FuncDecl, lit *ast.FuncLit) string {
	var capt string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if capt != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := p.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		if obj.Pos() >= fd.Pos() && obj.Pos() < lit.Pos() {
			capt = obj.Name()
			return false
		}
		return true
	})
	return capt
}

// immediatelyInvoked reports whether the closure literal is the callee
// of its parent call expression — run in place, not allocated.
func immediatelyInvoked(lit *ast.FuncLit, parents map[ast.Node]ast.Node) bool {
	call, ok := parents[lit].(*ast.CallExpr)
	return ok && call.Fun == lit
}

// boxingFindings flags concrete non-pointer arguments passed to
// interface parameters.
func boxingFindings(p *Package, call *ast.CallExpr, ctx string) []Diagnostic {
	if fn := staticCallee(p.Info, call); fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "fmt", "errors":
			return nil
		}
	}
	tv, ok := p.Info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return nil
	}
	var out []Diagnostic
	nParams := sig.Params().Len()
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= nParams-1:
			if call.Ellipsis.IsValid() {
				continue // xs... passes the slice through, no boxing
			}
			param = sig.Params().At(nParams - 1).Type().(*types.Slice).Elem()
		case i < nParams:
			param = sig.Params().At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(param) {
			continue
		}
		atv := p.Info.Types[arg]
		if atv.IsNil() || atv.Value != nil || atv.Type == nil {
			continue
		}
		if types.IsInterface(atv.Type) || pointerShaped(atv.Type) {
			continue
		}
		out = append(out, Diagnostic{
			Pos:  p.Fset.Position(arg.Pos()),
			Rule: "hotalloc",
			Message: fmt.Sprintf("passing %s to interface parameter boxes it per call %s",
				atv.Type.String(), ctx),
		})
	}
	return out
}

// pointerShaped reports whether converting a value of type t to an
// interface stores it without allocating.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}
