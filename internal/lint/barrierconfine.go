package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// BarrierConfine enforces that cluster membership and cap-ceiling
// mutations happen only where the reallocation barrier can validate
// them. The confined mutators are Coordinator.AddNode,
// Coordinator.RemoveNode and Node.SetCapCeilingW in any package ending
// in internal/cluster. A call is allowed from inside that package
// itself, or from a function reachable (via static intra-module calls)
// from a declaration annotated //capgpu:barrier — the control plane's
// barrier-apply entry point. Everything else is a finding: hot
// reconfig that bypasses the barrier skips budget validation, drain
// ramps and reservation accounting. Tests are exempt because the
// loader only type-checks production files.
type BarrierConfine struct{}

// NewBarrierConfine returns the barrierconfine analyzer.
func NewBarrierConfine() *BarrierConfine { return &BarrierConfine{} }

// Name implements Analyzer.
func (a *BarrierConfine) Name() string { return "barrierconfine" }

// confinedMutators maps receiver type name to the method names whose
// calls are confined.
var confinedMutators = map[string]map[string]bool{
	"Coordinator": {"AddNode": true, "RemoveNode": true},
	"Node":        {"SetCapCeilingW": true},
}

// Analyze implements Analyzer for single-package runs (fixtures).
func (a *BarrierConfine) Analyze(p *Package) []Diagnostic {
	return a.AnalyzeModule([]*Package{p})
}

// AnalyzeModule implements ModuleAnalyzer.
func (a *BarrierConfine) AnalyzeModule(pkgs []*Package) []Diagnostic {
	idx := buildFuncIndex(pkgs)

	// The confined mutator objects, and the packages that declare them.
	mutators := make(map[*types.Func]string) // object -> display name
	clusterPkgs := make(map[*types.Package]bool)
	for fn, info := range idx {
		if !strings.HasSuffix(info.pkg.Path, "internal/cluster") {
			continue
		}
		fd := info.decl
		if fd.Recv == nil {
			continue
		}
		name := funcDisplayName(fd)
		recv, method, ok := strings.Cut(name, ".")
		if !ok {
			continue
		}
		if confinedMutators[recv][method] {
			mutators[fn] = name
			clusterPkgs[info.pkg.Pkg] = true
		}
	}
	if len(mutators) == 0 {
		return nil
	}

	// Functions reachable from a //capgpu:barrier root.
	allowed := make(map[*types.Func]bool)
	var queue []*types.Func
	for fn, info := range idx {
		if hasDirective(info.decl.Doc, "capgpu:barrier") {
			allowed[fn] = true
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		info := idx[fn]
		if info.decl.Body == nil {
			continue
		}
		ast.Inspect(info.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := staticCallee(info.pkg.Info, call)
			if callee == nil {
				return true
			}
			if _, inModule := idx[callee]; inModule && !allowed[callee] {
				allowed[callee] = true
				queue = append(queue, callee)
			}
			return true
		})
	}

	var out []Diagnostic
	for fn, info := range idx {
		if info.decl.Body == nil {
			continue
		}
		if allowed[fn] || clusterPkgs[info.pkg.Pkg] {
			continue
		}
		caller := funcDisplayName(info.decl)
		p := info.pkg
		ast.Inspect(info.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := staticCallee(p.Info, call)
			if callee == nil {
				return true
			}
			if mName, confined := mutators[callee]; confined {
				out = append(out, Diagnostic{
					Pos:  p.Fset.Position(call.Pos()),
					Rule: "barrierconfine",
					Message: fmt.Sprintf(
						"%s called from %s, which is not reachable from a //capgpu:barrier root: cluster mutations must go through the reallocation barrier",
						mName, caller),
				})
			}
			return true
		})
	}
	sortDiagnostics(out)
	return out
}
