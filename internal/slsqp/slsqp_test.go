package slsqp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUnconstrainedQuadratic(t *testing.T) {
	// min (x-2)^2 + (y+1)^2 -> (2, -1).
	obj := Objective{Func: func(x []float64) float64 {
		return (x[0]-2)*(x[0]-2) + (x[1]+1)*(x[1]+1)
	}}
	res, err := Minimize(obj, nil, nil, nil, []float64{0, 0}, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if math.Abs(res.X[0]-2) > 1e-5 || math.Abs(res.X[1]+1) > 1e-5 {
		t.Fatalf("x = %v, want (2,-1)", res.X)
	}
}

func TestAnalyticGradientMatchesNumeric(t *testing.T) {
	objNum := Objective{Func: func(x []float64) float64 { return x[0]*x[0]*x[0] - 3*x[0] }}
	objAna := Objective{
		Func: objNum.Func,
		Grad: func(x []float64) []float64 { return []float64{3*x[0]*x[0] - 3} },
	}
	rn, err := Minimize(objNum, nil, []float64{0}, []float64{5}, []float64{2}, Params{})
	if err != nil {
		t.Fatal(err)
	}
	ra, err := Minimize(objAna, nil, []float64{0}, []float64{5}, []float64{2}, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rn.X[0]-1) > 1e-4 || math.Abs(ra.X[0]-1) > 1e-4 {
		t.Fatalf("minima %g / %g, want 1", rn.X[0], ra.X[0])
	}
}

func TestBoundsRespected(t *testing.T) {
	// min (x-10)^2 with x <= 3 via bounds.
	obj := Objective{Func: func(x []float64) float64 { return (x[0] - 10) * (x[0] - 10) }}
	res, err := Minimize(obj, nil, []float64{-3}, []float64{3}, []float64{0}, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-3) > 1e-6 {
		t.Fatalf("x = %g, want 3", res.X[0])
	}
}

func TestInequalityConstraint(t *testing.T) {
	// min x^2 + y^2 s.t. x + y >= 1  (c = 1 - x - y <= 0) -> (0.5, 0.5).
	obj := Objective{Func: func(x []float64) float64 { return x[0]*x[0] + x[1]*x[1] }}
	con := Constraint{Func: func(x []float64) float64 { return 1 - x[0] - x[1] }}
	res, err := Minimize(obj, []Constraint{con}, nil, nil, []float64{2, 2}, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-0.5) > 1e-4 || math.Abs(res.X[1]-0.5) > 1e-4 {
		t.Fatalf("x = %v, want (0.5,0.5)", res.X)
	}
}

func TestNonlinearConstraintRosenbrockDisk(t *testing.T) {
	// Classic test: Rosenbrock restricted to the unit disk; the
	// constrained minimum sits on the boundary near (0.786, 0.618).
	obj := Objective{Func: func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}}
	con := Constraint{Func: func(x []float64) float64 {
		return x[0]*x[0] + x[1]*x[1] - 1
	}}
	res, err := Minimize(obj, []Constraint{con},
		[]float64{-2, -2}, []float64{2, 2}, []float64{0, 0},
		Params{MaxIter: 300})
	if err != nil {
		t.Fatal(err)
	}
	r := math.Hypot(res.X[0], res.X[1])
	if r > 1+1e-5 {
		t.Fatalf("solution outside disk: |x| = %g", r)
	}
	if res.Obj > 0.05 {
		t.Fatalf("objective %g too high (want near 0.0457)", res.Obj)
	}
}

func TestStartClampedIntoBounds(t *testing.T) {
	obj := Objective{Func: func(x []float64) float64 { return x[0] * x[0] }}
	res, err := Minimize(obj, nil, []float64{1}, []float64{2}, []float64{100}, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-6 {
		t.Fatalf("x = %g, want 1 (lower bound)", res.X[0])
	}
}

func TestNilObjectiveRejected(t *testing.T) {
	if _, err := Minimize(Objective{}, nil, nil, nil, []float64{0}, Params{}); err == nil {
		t.Fatal("expected error for nil objective")
	}
}

func TestBoundLengthValidation(t *testing.T) {
	obj := Objective{Func: func(x []float64) float64 { return x[0] }}
	if _, err := Minimize(obj, nil, []float64{0, 0}, nil, []float64{0}, Params{}); err == nil {
		t.Fatal("expected lo length error")
	}
	if _, err := Minimize(obj, nil, nil, []float64{0, 0}, []float64{0}, Params{}); err == nil {
		t.Fatal("expected hi length error")
	}
}

// Property: on random convex quadratics with box bounds, SLSQP reaches a
// point where the projected gradient vanishes.
func TestQuickProjectedStationarity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		// Diagonal convex quadratic: f = sum w_i (x_i - c_i)^2.
		w := make([]float64, n)
		c := make([]float64, n)
		lo := make([]float64, n)
		hi := make([]float64, n)
		for i := 0; i < n; i++ {
			w[i] = 0.5 + rng.Float64()
			c[i] = 3 * rng.NormFloat64()
			lo[i] = -1
			hi[i] = 1
		}
		obj := Objective{Func: func(x []float64) float64 {
			s := 0.0
			for i := range x {
				d := x[i] - c[i]
				s += w[i] * d * d
			}
			return s
		}}
		res, err := Minimize(obj, nil, lo, hi, make([]float64, n), Params{MaxIter: 200})
		if err != nil {
			return false
		}
		// The solution of a separable box QP is clamp(c, lo, hi).
		for i := range res.X {
			want := math.Min(math.Max(c[i], lo[i]), hi[i])
			if math.Abs(res.X[i]-want) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSLSQPQuadraticBox8(b *testing.B) {
	obj := Objective{Func: func(x []float64) float64 {
		s := 0.0
		for i := range x {
			d := x[i] - float64(i)
			s += d * d
		}
		return s
	}}
	lo := make([]float64, 8)
	hi := make([]float64, 8)
	for i := range hi {
		lo[i] = -2
		hi[i] = 2
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Minimize(obj, nil, lo, hi, make([]float64, 8), Params{}); err != nil {
			b.Fatal(err)
		}
	}
}
