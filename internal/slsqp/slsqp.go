// Package slsqp implements a sequential least-squares quadratic
// programming method for smooth nonlinear programs of the form
//
//	minimize   f(x)
//	subject to c_i(x) ≤ 0   (i = 1..m)
//	           lo ≤ x ≤ hi
//
// The paper implements its MPC solver "with SLSQP in Python" (§4.3);
// this package provides the equivalent in Go so the controller can be
// run with either the exact active-set QP (internal/qp) or this general
// SQP, and the two are compared in an ablation benchmark. The method is
// the classic damped-BFGS SQP with an ℓ1 merit-function line search
// (Nocedal & Wright, ch. 18), with each subproblem solved by the
// active-set QP solver.
package slsqp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/qp"
)

// Objective is a smooth scalar function with an optional analytic
// gradient; when Grad is nil a central finite difference is used.
type Objective struct {
	Func func(x []float64) float64
	Grad func(x []float64) []float64
}

// Constraint is a smooth scalar inequality c(x) ≤ 0 with an optional
// analytic gradient.
type Constraint struct {
	Func func(x []float64) float64
	Grad func(x []float64) []float64
}

// Params tunes the optimizer; zero values select the defaults noted.
type Params struct {
	MaxIter int     // default 100
	Tol     float64 // KKT/step tolerance, default 1e-8
	FDStep  float64 // finite-difference step, default 1e-6
}

// Result reports the outcome of Minimize.
type Result struct {
	X          []float64
	Obj        float64
	Iterations int
	Converged  bool
}

// ErrLineSearch is returned when the merit line search cannot make
// progress; the current best iterate is still returned in Result.
var ErrLineSearch = errors.New("slsqp: line search failed to make progress")

func (p *Params) defaults() Params {
	out := *p
	if out.MaxIter == 0 {
		out.MaxIter = 100
	}
	if out.Tol == 0 {
		out.Tol = 1e-8
	}
	if out.FDStep == 0 {
		out.FDStep = 1e-6
	}
	return out
}

func gradOf(f func([]float64) float64, g func([]float64) []float64, x []float64, h float64) []float64 {
	if g != nil {
		return g(x)
	}
	n := len(x)
	grad := make([]float64, n)
	xp := append([]float64(nil), x...)
	for i := 0; i < n; i++ {
		step := h * math.Max(1, math.Abs(x[i]))
		xp[i] = x[i] + step
		fp := f(xp)
		xp[i] = x[i] - step
		fm := f(xp)
		xp[i] = x[i]
		grad[i] = (fp - fm) / (2 * step)
	}
	return grad
}

// Minimize runs SLSQP from x0. Bounds lo/hi may be nil for an
// unbounded problem. x0 is clamped into the bounds before starting.
func Minimize(obj Objective, cons []Constraint, lo, hi, x0 []float64, params Params) (*Result, error) {
	if obj.Func == nil {
		return nil, fmt.Errorf("slsqp: nil objective")
	}
	pr := params.defaults()
	n := len(x0)
	if lo != nil && len(lo) != n {
		return nil, fmt.Errorf("slsqp: lo has %d entries, want %d", len(lo), n)
	}
	if hi != nil && len(hi) != n {
		return nil, fmt.Errorf("slsqp: hi has %d entries, want %d", len(hi), n)
	}
	x := append([]float64(nil), x0...)
	clampInto(x, lo, hi)

	b := mat.Identity(n) // BFGS approximation of the Lagrangian Hessian
	grad := gradOf(obj.Func, obj.Grad, x, pr.FDStep)
	mu := 1.0 // merit penalty weight

	for iter := 1; iter <= pr.MaxIter; iter++ {
		// Build the QP subproblem around x:
		//   min ½ dᵀB d + ∇fᵀ d   s.t. ∇c_iᵀ d ≤ −c_i(x),  lo−x ≤ d ≤ hi−x.
		m := len(cons)
		rows := m
		if lo != nil {
			rows += n
		}
		if hi != nil {
			rows += n
		}
		var a *mat.Mat
		var rhs []float64
		if rows > 0 {
			a = mat.New(rows, n)
			rhs = make([]float64, rows)
		}
		r := 0
		cvals := make([]float64, m)
		for i, c := range cons {
			cv := c.Func(x)
			cvals[i] = cv
			cg := gradOf(c.Func, c.Grad, x, pr.FDStep)
			for j := 0; j < n; j++ {
				a.Set(r, j, cg[j])
			}
			rhs[r] = -cv
			r++
		}
		if hi != nil {
			for j := 0; j < n; j++ {
				a.Set(r, j, 1)
				rhs[r] = hi[j] - x[j]
				r++
			}
		}
		if lo != nil {
			for j := 0; j < n; j++ {
				a.Set(r, j, -1)
				rhs[r] = x[j] - lo[j]
				r++
			}
		}
		sub := &qp.Problem{H: b, G: grad, A: a, B: rhs}
		sol, err := qp.Solve(sub, make([]float64, n))
		if err != nil {
			// Infeasible linearization: relax the constraint rows
			// (elastic mode) by allowing the current violation.
			if a != nil {
				for i := 0; i < m; i++ {
					if rhs[i] < 0 {
						rhs[i] = 0
					}
				}
				sol, err = qp.Solve(sub, make([]float64, n))
			}
			if err != nil {
				return &Result{X: x, Obj: obj.Func(x), Iterations: iter}, fmt.Errorf("slsqp: subproblem: %w", err)
			}
		}
		d := sol.X
		if mat.Norm2(d) <= pr.Tol*(1+mat.Norm2(x)) {
			return &Result{X: x, Obj: obj.Func(x), Iterations: iter, Converged: true}, nil
		}

		// Update the penalty weight so the merit function decreases
		// along d (standard rule: mu > max multiplier).
		for i := 0; i < m; i++ {
			if lam := sol.Lambda[i]; lam > mu {
				mu = 2 * lam
			}
		}

		// ℓ1 merit line search.
		//lint:ignore hotalloc one merit closure per SQP outer iteration; mu changes each round so the capture is inherent
		merit := func(y []float64) float64 {
			v := obj.Func(y)
			for _, c := range cons {
				if cv := c.Func(y); cv > 0 {
					v += mu * cv
				}
			}
			return v
		}
		m0 := merit(x)
		// Directional derivative estimate of merit at x along d.
		dd := mat.Dot(grad, d)
		for i, cv := range cvals {
			if cv > 0 {
				cg := gradOf(cons[i].Func, cons[i].Grad, x, pr.FDStep)
				dd += mu * mat.Dot(cg, d)
			}
		}
		alpha := 1.0
		var xNew []float64
		ok := false
		// The absolute term tolerates catastrophic cancellation when the
		// objective is many orders of magnitude larger than the step's
		// effect (common near convergence of the MPC subproblems).
		noise := 1e-12 * (1 + math.Abs(m0))
		for ls := 0; ls < 30; ls++ {
			xNew = append([]float64(nil), x...)
			mat.Axpy(alpha, d, xNew)
			clampInto(xNew, lo, hi)
			if merit(xNew) <= m0+1e-4*alpha*math.Min(dd, 0)+noise {
				ok = true
				break
			}
			alpha *= 0.5
		}
		if !ok {
			// A failed line search on a vanishing step is convergence,
			// not an error: the QP direction has shrunk below what the
			// merit function can resolve.
			if mat.Norm2(d) <= 1e-5*(1+mat.Norm2(x)) {
				return &Result{X: x, Obj: obj.Func(x), Iterations: iter, Converged: true}, nil
			}
			return &Result{X: x, Obj: obj.Func(x), Iterations: iter}, ErrLineSearch
		}

		// Damped BFGS update of B using the Lagrangian gradient change.
		gradNew := gradOf(obj.Func, obj.Grad, xNew, pr.FDStep)
		lgrad := append([]float64(nil), grad...)
		lgradNew := append([]float64(nil), gradNew...)
		for i, c := range cons {
			lam := sol.Lambda[i]
			if lam == 0 {
				continue
			}
			mat.Axpy(lam, gradOf(c.Func, c.Grad, x, pr.FDStep), lgrad)
			mat.Axpy(lam, gradOf(c.Func, c.Grad, xNew, pr.FDStep), lgradNew)
		}
		s := mat.SubVec(xNew, x)
		y := mat.SubVec(lgradNew, lgrad)
		b = dampedBFGS(b, s, y)

		x = xNew
		grad = gradNew
	}
	return &Result{X: x, Obj: obj.Func(x), Iterations: pr.MaxIter}, nil
}

// dampedBFGS applies Powell's damped BFGS update, keeping B positive
// definite even when the curvature condition sᵀy > 0 fails.
func dampedBFGS(b *mat.Mat, s, y []float64) *mat.Mat {
	bs := b.MulVec(s)
	sBs := mat.Dot(s, bs)
	if sBs <= 1e-14 {
		return b
	}
	sy := mat.Dot(s, y)
	theta := 1.0
	if sy < 0.2*sBs {
		theta = 0.8 * sBs / (sBs - sy)
	}
	// r = theta*y + (1-theta)*B s  guarantees sᵀr ≥ 0.2 sᵀBs > 0.
	r := mat.AddVec(mat.ScaleVec(theta, y), mat.ScaleVec(1-theta, bs))
	sr := mat.Dot(s, r)
	if sr <= 1e-14 {
		return b
	}
	// B ← B − (B s sᵀ B)/(sᵀB s) + (r rᵀ)/(sᵀ r).
	upd := b.SubMat(mat.OuterProduct(bs, bs).Scale(1 / sBs)).AddMat(mat.OuterProduct(r, r).Scale(1 / sr))
	// Re-symmetrize against numerical drift.
	return upd.AddMat(upd.T()).Scale(0.5)
}

func clampInto(x, lo, hi []float64) {
	for i := range x {
		if lo != nil && x[i] < lo[i] {
			x[i] = lo[i]
		}
		if hi != nil && x[i] > hi[i] {
			x[i] = hi[i]
		}
	}
}
