// Package fsel implements the paper's CPU workload: exhaustive feature
// selection with k-fold cross-validated linear regression (§6.1,
// following Hastie et al., "The Elements of Statistical Learning").
// Every non-empty subset of candidate features is fitted and scored by
// cross-validation mean squared error; the subset with the lowest CV-MSE
// wins.
//
// In the paper this workload runs on the host CPU's spare cores and its
// throughput — feature subsets evaluated per second — is the CPU-side
// signal fed to the CapGPU weight-assignment algorithm. Here the search
// is real, runnable code (see examples/featureselect); the simulator
// uses a calibrated rate-vs-frequency profile of it.
package fsel

import (
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/mat"
)

// Result describes the outcome of an exhaustive search.
type Result struct {
	BestSubset   []int              // feature indices of the best subset
	BestCVMSE    float64            // cross-validation MSE of the best subset
	Evaluated    int                // number of subsets evaluated
	SubsetScores map[uint64]float64 // bitmask -> CV-MSE (populated when Keep is set)
}

// Options controls the search.
type Options struct {
	Folds    int  // cross-validation folds (default 5)
	Parallel int  // worker goroutines (default GOMAXPROCS)
	Keep     bool // retain per-subset scores in Result.SubsetScores
	// MaxSubsetBits caps subset enumeration; 0 means all 2^d - 1 subsets.
	MaxSubsetBits int
}

func (o *Options) defaults() Options {
	out := *o
	if out.Folds == 0 {
		out.Folds = 5
	}
	if out.Parallel == 0 {
		out.Parallel = runtime.GOMAXPROCS(0)
	}
	return out
}

// Exhaustive evaluates every non-empty subset of the columns of x and
// returns the subset minimizing k-fold cross-validated MSE of a linear
// model (with intercept) predicting y.
func Exhaustive(x [][]float64, y []float64, opts Options) (*Result, error) {
	o := opts.defaults()
	if len(x) == 0 {
		return nil, fmt.Errorf("fsel: empty design matrix")
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("fsel: %d rows but %d targets", len(x), len(y))
	}
	d := len(x[0])
	if d == 0 || d > 20 {
		return nil, fmt.Errorf("fsel: feature count %d out of supported range [1,20]", d)
	}
	if len(x) < 2*o.Folds {
		return nil, fmt.Errorf("fsel: %d rows too few for %d folds", len(x), o.Folds)
	}
	total := (uint64(1) << d) - 1

	type scored struct {
		mask uint64
		mse  float64
	}
	results := make([]scored, 0, total)
	var mu sync.Mutex
	var next uint64 // next mask to claim, atomically
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once

	worker := func() {
		defer wg.Done()
		local := make([]scored, 0, 64)
		for {
			m := atomic.AddUint64(&next, 1)
			if m > total {
				break
			}
			if o.MaxSubsetBits > 0 && bits.OnesCount64(m) > o.MaxSubsetBits {
				continue
			}
			mse, err := CVMSE(x, y, maskToIdx(m, d), o.Folds)
			if err != nil {
				errOnce.Do(func() { firstErr = err })
				return
			}
			local = append(local, scored{mask: m, mse: mse})
		}
		mu.Lock()
		results = append(results, local...)
		mu.Unlock()
	}
	for w := 0; w < o.Parallel; w++ {
		wg.Add(1)
		go worker()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	res := &Result{BestCVMSE: math.Inf(1), Evaluated: len(results)}
	if o.Keep {
		res.SubsetScores = make(map[uint64]float64, len(results))
	}
	for _, s := range results {
		if o.Keep {
			res.SubsetScores[s.mask] = s.mse
		}
		//lint:ignore floatsafety exact CV-MSE ties feed the deterministic betterTie ordering; an epsilon would make selection depend on traversal order
		if s.mse < res.BestCVMSE || (s.mse == res.BestCVMSE && betterTie(s.mask, res.BestSubset, d)) {
			res.BestCVMSE = s.mse
			res.BestSubset = maskToIdx(s.mask, d)
		}
	}
	if res.BestSubset == nil {
		return nil, fmt.Errorf("fsel: no subset evaluated")
	}
	return res, nil
}

// betterTie prefers the smaller subset on exact MSE ties (parsimonious
// model), then the lexicographically smaller mask for determinism.
func betterTie(mask uint64, cur []int, d int) bool {
	if cur == nil {
		return true
	}
	curMask := idxToMask(cur)
	nb, cb := bits.OnesCount64(mask), bits.OnesCount64(curMask)
	if nb != cb {
		return nb < cb
	}
	return mask < curMask
}

func maskToIdx(mask uint64, d int) []int {
	idx := make([]int, 0, bits.OnesCount64(mask))
	for j := 0; j < d; j++ {
		if mask&(1<<uint(j)) != 0 {
			idx = append(idx, j)
		}
	}
	return idx
}

func idxToMask(idx []int) uint64 {
	var m uint64
	for _, j := range idx {
		m |= 1 << uint(j)
	}
	return m
}

// CVMSE returns the k-fold cross-validation mean squared error of an
// ordinary-least-squares fit (with intercept) of y on the given columns
// of x. Folds are contiguous blocks, which is deterministic and
// sufficient for generated data whose rows are exchangeable.
func CVMSE(x [][]float64, y []float64, cols []int, folds int) (float64, error) {
	n := len(x)
	if folds < 2 || folds > n {
		return 0, fmt.Errorf("fsel: invalid fold count %d for %d rows", folds, n)
	}
	p := len(cols) + 1 // + intercept
	sse := 0.0
	count := 0
	for f := 0; f < folds; f++ {
		lo := f * n / folds
		hi := (f + 1) * n / folds
		trainRows := n - (hi - lo)
		if trainRows < p {
			return 0, fmt.Errorf("fsel: fold %d leaves %d train rows for %d parameters", f, trainRows, p)
		}
		a := mat.New(trainRows, p)
		b := make([]float64, trainRows)
		r := 0
		for i := 0; i < n; i++ {
			if i >= lo && i < hi {
				continue
			}
			a.Set(r, 0, 1)
			for j, c := range cols {
				a.Set(r, j+1, x[i][c])
			}
			b[r] = y[i]
			r++
		}
		// Ridge with a whisper of regularization keeps collinear
		// synthetic features (deliberately present in the PAI trace
		// generator) from blowing up the fold fit.
		beta, err := mat.RidgeLeastSquares(a, b, 1e-8)
		if err != nil {
			return 0, fmt.Errorf("fsel: fold %d fit: %w", f, err)
		}
		for i := lo; i < hi; i++ {
			pred := beta[0]
			for j, c := range cols {
				pred += beta[j+1] * x[i][c]
			}
			resid := y[i] - pred
			sse += resid * resid
			count++
		}
	}
	return sse / float64(count), nil
}

// Throughput measures subsets evaluated per second by running the
// exhaustive search once and dividing by elapsed seconds; the caller
// provides the timing. It is used to calibrate the simulator's CPU
// workload profile. See examples/featureselect for usage.
func Throughput(evaluated int, elapsedSeconds float64) float64 {
	if elapsedSeconds <= 0 {
		return 0
	}
	return float64(evaluated) / elapsedSeconds
}
