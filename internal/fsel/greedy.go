package fsel

import (
	"fmt"
	"math"
)

// Forward runs greedy forward stepwise selection: starting from the
// empty model, repeatedly add the feature whose inclusion most improves
// cross-validated MSE, stopping when no addition improves it (or when
// maxFeatures is reached). It evaluates O(d²) subsets instead of the
// exhaustive search's O(2^d) — the standard fallback Hastie et al.
// recommend when exhaustive enumeration is unaffordable, included here
// both as a library feature and as the cheap point of comparison in the
// examples.
func Forward(x [][]float64, y []float64, folds, maxFeatures int) (*Result, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("fsel: empty design matrix")
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("fsel: %d rows but %d targets", len(x), len(y))
	}
	d := len(x[0])
	if d == 0 {
		return nil, fmt.Errorf("fsel: no features")
	}
	if folds == 0 {
		folds = 5
	}
	if maxFeatures <= 0 || maxFeatures > d {
		maxFeatures = d
	}

	chosen := []int{}
	inSet := make([]bool, d)
	best := math.Inf(1)
	evaluated := 0
	for len(chosen) < maxFeatures {
		bestIdx, bestMSE := -1, best
		for j := 0; j < d; j++ {
			if inSet[j] {
				continue
			}
			cand := append(append([]int{}, chosen...), j)
			mse, err := CVMSE(x, y, cand, folds)
			if err != nil {
				return nil, err
			}
			evaluated++
			if mse < bestMSE {
				bestMSE, bestIdx = mse, j
			}
		}
		if bestIdx < 0 {
			break // no addition improves the CV score
		}
		chosen = append(chosen, bestIdx)
		inSet[bestIdx] = true
		best = bestMSE
	}
	if len(chosen) == 0 {
		// Even the best singleton was worse than +Inf never happens, but
		// guard against a pathological CV failure.
		return nil, fmt.Errorf("fsel: forward selection chose no features")
	}
	sortInts(chosen)
	return &Result{BestSubset: chosen, BestCVMSE: best, Evaluated: evaluated}, nil
}

// sortInts is a tiny insertion sort (the subsets are short).
func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}
