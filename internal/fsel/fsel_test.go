package fsel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

func genTrace(t *testing.T, rows, features int, seed int64) *dataset.PAITrace {
	t.Helper()
	tr, err := dataset.GeneratePAI(dataset.PAIConfig{Rows: rows, Features: features, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestExhaustiveRecoversSignalFeatures(t *testing.T) {
	tr := genTrace(t, 600, 6, 42)
	res, err := Exhaustive(tr.X, tr.Y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated != (1<<6)-1 {
		t.Fatalf("evaluated %d subsets, want %d", res.Evaluated, (1<<6)-1)
	}
	// The strong drivers (plan_gpu, inst_num) must be in the best subset.
	need := map[string]bool{"plan_gpu": true, "inst_num": true}
	got := map[string]bool{}
	for _, i := range res.BestSubset {
		got[tr.FeatureNames[i]] = true
	}
	for n := range need {
		if !got[n] {
			t.Fatalf("best subset %v (names %v) missing %q", res.BestSubset, got, n)
		}
	}
}

func TestExhaustiveBestIsGlobalMin(t *testing.T) {
	tr := genTrace(t, 200, 5, 7)
	res, err := Exhaustive(tr.X, tr.Y, Options{Keep: true})
	if err != nil {
		t.Fatal(err)
	}
	for mask, mse := range res.SubsetScores {
		if mse < res.BestCVMSE-1e-12 {
			t.Fatalf("subset %b has MSE %g < best %g", mask, mse, res.BestCVMSE)
		}
	}
	if len(res.SubsetScores) != res.Evaluated {
		t.Fatalf("kept %d scores, evaluated %d", len(res.SubsetScores), res.Evaluated)
	}
}

func TestExhaustiveParallelMatchesSerial(t *testing.T) {
	tr := genTrace(t, 150, 6, 11)
	serial, err := Exhaustive(tr.X, tr.Y, Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Exhaustive(tr.X, tr.Y, Options{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if serial.BestCVMSE != parallel.BestCVMSE {
		t.Fatalf("serial best %g != parallel best %g", serial.BestCVMSE, parallel.BestCVMSE)
	}
	if len(serial.BestSubset) != len(parallel.BestSubset) {
		t.Fatalf("subset size differs: %v vs %v", serial.BestSubset, parallel.BestSubset)
	}
	for i := range serial.BestSubset {
		if serial.BestSubset[i] != parallel.BestSubset[i] {
			t.Fatalf("subsets differ: %v vs %v", serial.BestSubset, parallel.BestSubset)
		}
	}
}

func TestMaxSubsetBitsLimitsSearch(t *testing.T) {
	tr := genTrace(t, 150, 6, 13)
	res, err := Exhaustive(tr.X, tr.Y, Options{MaxSubsetBits: 2, Keep: true})
	if err != nil {
		t.Fatal(err)
	}
	// 6 singletons + 15 pairs = 21 subsets.
	if res.Evaluated != 21 {
		t.Fatalf("evaluated %d, want 21", res.Evaluated)
	}
	if len(res.BestSubset) > 2 {
		t.Fatalf("best subset %v exceeds bit cap", res.BestSubset)
	}
}

func TestCVMSEPerfectLinearData(t *testing.T) {
	// Noise-free y = 1 + 2x: CV-MSE should be ~0 with the right feature.
	n := 60
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := float64(i) / 10
		x[i] = []float64{v, float64(i % 3)} // second feature is junk
		y[i] = 1 + 2*v
	}
	mse, err := CVMSE(x, y, []int{0}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if mse > 1e-18 {
		t.Fatalf("noise-free CV-MSE = %g, want ~0", mse)
	}
	mseJunk, err := CVMSE(x, y, []int{1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if mseJunk < 1 {
		t.Fatalf("junk-feature CV-MSE = %g, expected large", mseJunk)
	}
}

func TestValidationErrors(t *testing.T) {
	x := [][]float64{{1}, {2}}
	y := []float64{1, 2}
	if _, err := Exhaustive(nil, nil, Options{}); err == nil {
		t.Fatal("expected error for empty matrix")
	}
	if _, err := Exhaustive(x, []float64{1}, Options{}); err == nil {
		t.Fatal("expected row/target mismatch error")
	}
	if _, err := Exhaustive(x, y, Options{}); err == nil {
		t.Fatal("expected too-few-rows error for 5 folds")
	}
	if _, err := CVMSE(x, y, []int{0}, 1); err == nil {
		t.Fatal("expected invalid-folds error")
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(100, 2); got != 50 {
		t.Fatalf("Throughput = %g, want 50", got)
	}
	if got := Throughput(100, 0); got != 0 {
		t.Fatalf("Throughput with zero time = %g, want 0", got)
	}
}

// Property: adding pure-noise features never helps the true subset's
// CV-MSE by a large margin (the selected model's CV-MSE is always within
// noise of the oracle subset's CV-MSE, and never dramatically better).
func TestQuickSelectedNeverBeatsOracleByMuch(t *testing.T) {
	f := func(seed int64) bool {
		tr, err := dataset.GeneratePAI(dataset.PAIConfig{Rows: 250, Features: 6, Seed: seed})
		if err != nil {
			return false
		}
		res, err := Exhaustive(tr.X, tr.Y, Options{})
		if err != nil {
			return false
		}
		oracle := dataset.TrueSubset(tr.FeatureNames)
		oracleMSE, err := CVMSE(tr.X, tr.Y, oracle, 5)
		if err != nil {
			return false
		}
		// Best subset can't be worse than the oracle subset (it was in
		// the search space), and must be finite.
		if math.IsNaN(res.BestCVMSE) || res.BestCVMSE > oracleMSE+1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkExhaustive8Features(b *testing.B) {
	tr, err := dataset.GeneratePAI(dataset.PAIConfig{Rows: 256, Features: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Exhaustive(tr.X, tr.Y, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCVMSESingleSubset(b *testing.B) {
	tr, err := dataset.GeneratePAI(dataset.PAIConfig{Rows: 512, Features: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CVMSE(tr.X, tr.Y, []int{0, 2, 5}, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func TestForwardMatchesExhaustiveOnEasyData(t *testing.T) {
	tr := genTrace(t, 400, 6, 77)
	ex, err := Exhaustive(tr.X, tr.Y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fw, err := Forward(tr.X, tr.Y, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Greedy is suboptimal in general but must land within a few percent
	// of the exhaustive optimum on this well-separated signal.
	if fw.BestCVMSE > ex.BestCVMSE*1.05 {
		t.Fatalf("forward CV-MSE %g too far above exhaustive %g", fw.BestCVMSE, ex.BestCVMSE)
	}
	// And evaluate dramatically fewer subsets: O(d^2) vs 2^d - 1.
	if fw.Evaluated >= ex.Evaluated/2 {
		t.Fatalf("forward evaluated %d subsets, exhaustive %d", fw.Evaluated, ex.Evaluated)
	}
	// The strong drivers must still be found.
	names := map[string]bool{}
	for _, i := range fw.BestSubset {
		names[tr.FeatureNames[i]] = true
	}
	if !names["plan_gpu"] || !names["inst_num"] {
		t.Fatalf("forward missed a strong driver: %v", names)
	}
}

func TestForwardMaxFeaturesCap(t *testing.T) {
	tr := genTrace(t, 200, 6, 78)
	fw, err := Forward(tr.X, tr.Y, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(fw.BestSubset) > 2 {
		t.Fatalf("cap violated: %v", fw.BestSubset)
	}
}

func TestForwardValidation(t *testing.T) {
	if _, err := Forward(nil, nil, 5, 0); err == nil {
		t.Fatal("expected empty-matrix error")
	}
	if _, err := Forward([][]float64{{1}}, []float64{1, 2}, 5, 0); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestForwardSubsetSorted(t *testing.T) {
	tr := genTrace(t, 200, 6, 79)
	fw, err := Forward(tr.X, tr.Y, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(fw.BestSubset); i++ {
		if fw.BestSubset[i-1] >= fw.BestSubset[i] {
			t.Fatalf("subset not sorted: %v", fw.BestSubset)
		}
	}
}
