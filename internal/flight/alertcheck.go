package flight

import (
	"fmt"
	"sort"

	"repro/internal/telemetry"
)

// Cross-check between the hub's online alert engine and the doctor's
// offline incident verdicts: the soak gate (and capgpu-doctor's
// -alerts flag) require that every alert the engine fired corresponds
// to an incident the doctor diagnosed on the same node, and that every
// sufficiently-long incident of an alertable kind was caught online.
// The two analyzers look at the same run through different instruments
// — the engine sees period samples with rule thresholds, the doctor
// replays flight records with slack and attribution logic — so the
// correspondence is windowed, not exact: windows match if they overlap
// after widening by a margin.

// alertKindMap pairs each per-node alert rule with the doctor incident
// kind that diagnoses the same pathology. budget-headroom is absent by
// design: it is rack-scoped and has no per-node doctor counterpart.
var alertKindMap = map[string]string{
	telemetry.AlertMeterStale: "meter-blind",
	telemetry.AlertCapSustain: "cap-violation",
	telemetry.AlertSLOBurn:    "slo-pressure",
}

// AlertWindow is one alert's firing interval, reconstructed from the
// event stream ([Start, End] periods; End is the resolution period or
// the last period seen when the run ended mid-fire).
type AlertWindow struct {
	Node  string `json:"node"`
	Rule  string `json:"rule"`
	Start int    `json:"start_period"`
	End   int    `json:"end_period"`
}

// AlertWindows folds alert-firing/alert-resolved pairs in an event
// stream into windows, in firing order. An unresolved fire closes at
// the firing period (Finish normally resolves everything, so this is a
// defensive fallback for truncated streams).
func AlertWindows(events []telemetry.Event) []AlertWindow {
	type key struct{ node, rule string }
	open := map[key]int{} // key → index into out
	var out []AlertWindow
	for _, e := range events {
		switch e.Type {
		case telemetry.EventAlertFiring:
			open[key{e.Node, e.Detail}] = len(out)
			out = append(out, AlertWindow{Node: e.Node, Rule: e.Detail, Start: e.Period, End: e.Period})
		case telemetry.EventAlertResolved:
			k := key{e.Node, e.Detail}
			if idx, ok := open[k]; ok {
				out[idx].End = e.Period
				delete(open, k)
			}
		}
	}
	return out
}

// AlertCheckInput drives one node's correspondence check.
type AlertCheckInput struct {
	// Node is the per-node alert scope: only windows whose Node matches
	// are checked (rack-scoped rules are skipped regardless).
	Node string
	// Alerts are the run's alert windows (from AlertWindows).
	Alerts []AlertWindow
	// Incidents is the node's doctor report.
	Incidents []Incident
	// MarginPeriods widens both sides of every window before the overlap
	// test (default 8): the engine needs its sustain/dwell run-up to
	// fire and resolves on the first clean period, while the doctor
	// reports the full anomaly span.
	MarginPeriods int
	// MinIncidentPeriods is the shortest incident span (End−Start+1)
	// the reverse direction requires an alert for (default 3, matching
	// the default sustain thresholds — a one-period blip legitimately
	// stays below the online rules).
	MinIncidentPeriods int
}

// AlertCheckResult is the verdict: mismatches in either direction.
type AlertCheckResult struct {
	// AlertsMatched counts alerts with a corresponding incident.
	AlertsMatched int `json:"alerts_matched"`
	// IncidentsMatched counts alertable incidents with a corresponding
	// alert.
	IncidentsMatched int `json:"incidents_matched"`
	// OrphanAlerts fired without any overlapping incident of the mapped
	// kind.
	OrphanAlerts []AlertWindow `json:"orphan_alerts,omitempty"`
	// MissedIncidents are alertable incidents (long enough, mapped
	// kind) no alert covered.
	MissedIncidents []Incident `json:"missed_incidents,omitempty"`
}

// Ok reports a clean correspondence.
func (r *AlertCheckResult) Ok() bool {
	return len(r.OrphanAlerts) == 0 && len(r.MissedIncidents) == 0
}

// Err renders the verdict as an error (nil when clean).
func (r *AlertCheckResult) Err() error {
	if r.Ok() {
		return nil
	}
	return fmt.Errorf("alert/doctor mismatch: %d orphan alerts %v, %d missed incidents %v",
		len(r.OrphanAlerts), summarizeAlerts(r.OrphanAlerts), len(r.MissedIncidents), summarizeIncidents(r.MissedIncidents))
}

func summarizeAlerts(ws []AlertWindow) []string {
	out := make([]string, 0, len(ws))
	for _, w := range ws {
		out = append(out, fmt.Sprintf("%s/%s@%d-%d", w.Node, w.Rule, w.Start, w.End))
	}
	return out
}

func summarizeIncidents(incs []Incident) []string {
	out := make([]string, 0, len(incs))
	for _, inc := range incs {
		out = append(out, fmt.Sprintf("%s@%d-%d", inc.Kind, inc.StartPeriod, inc.EndPeriod))
	}
	return out
}

func overlaps(aStart, aEnd, bStart, bEnd, margin int) bool {
	return aStart-margin <= bEnd && bStart <= aEnd+margin
}

// CheckAlerts runs the two-directional correspondence for one node.
func CheckAlerts(in AlertCheckInput) *AlertCheckResult {
	margin := in.MarginPeriods
	if margin <= 0 {
		margin = 8
	}
	minSpan := in.MinIncidentPeriods
	if minSpan <= 0 {
		minSpan = 3
	}
	res := &AlertCheckResult{}

	// Forward: every fired per-node alert must overlap an incident of
	// the mapped kind.
	for _, w := range in.Alerts {
		if w.Node != in.Node {
			continue
		}
		kind, mapped := alertKindMap[w.Rule]
		if !mapped {
			continue // rack-scoped or unmapped rule: out of doctor scope
		}
		found := false
		for _, inc := range in.Incidents {
			if inc.Kind == kind && overlaps(w.Start, w.End, inc.StartPeriod, inc.EndPeriod, margin) {
				found = true
				break
			}
		}
		if found {
			res.AlertsMatched++
		} else {
			res.OrphanAlerts = append(res.OrphanAlerts, w)
		}
	}

	// Reverse: every long-enough incident of an alertable kind must
	// have been caught online.
	alertable := map[string]string{}
	for rule, kind := range alertKindMap {
		//lint:ignore determinism inverted map is only membership-tested; no iteration order escapes
		alertable[kind] = rule
	}
	for _, inc := range in.Incidents {
		rule, mapped := alertable[inc.Kind]
		if !mapped || inc.EndPeriod-inc.StartPeriod+1 < minSpan {
			continue
		}
		found := false
		for _, w := range in.Alerts {
			if w.Node == in.Node && w.Rule == rule && overlaps(w.Start, w.End, inc.StartPeriod, inc.EndPeriod, margin) {
				found = true
				break
			}
		}
		if found {
			res.IncidentsMatched++
		} else {
			res.MissedIncidents = append(res.MissedIncidents, inc)
		}
	}
	sort.Slice(res.MissedIncidents, func(i, j int) bool {
		return res.MissedIncidents[i].StartPeriod < res.MissedIncidents[j].StartPeriod
	})
	return res
}
