package flight

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// healthyRun builds n controlled periods tracking the cap with small
// prediction errors, as a base to graft anomalies onto.
func healthyRun(n int) []DecisionRecord {
	recs := make([]DecisionRecord, n)
	for k := range recs {
		// Deterministic ±3 W wiggle around the cap.
		wiggle := float64(k%7 - 3)
		recs[k] = DecisionRecord{
			Period: k, TimeS: float64(4 * (k + 1)), SetpointW: 900,
			MeasuredW: 900 + wiggle, TruePowerW: 899 + wiggle,
			CommandedCPUGHz: 2.0, CommandedGPUMHz: []float64{1200, 1100, 1000},
			Controller: &ControllerTrace{
				PredictedNextW: 900,
				Knobs:          make([]KnobConstraint, 4),
			},
		}
		if k > 0 {
			recs[k].HaveOneStepErr = true
			recs[k].OneStepErrW = wiggle
			recs[k].TrueOneStepErrW = wiggle - 1
		}
	}
	return recs
}

func TestDiagnoseCleanRun(t *testing.T) {
	rep, err := Diagnose(DoctorInput{Records: healthyRun(50)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Incidents) != 0 || rep.Unexplained != 0 {
		t.Fatalf("clean run produced incidents: %+v", rep.Incidents)
	}
	if rep.ExitCode() != 0 {
		t.Fatalf("exit = %d, want 0", rep.ExitCode())
	}
	h := rep.Health
	if h.Periods != 50 || h.ControlledPeriods != 50 || h.MeasuredViolations != 0 {
		t.Fatalf("health = %+v", h)
	}
	if h.OneStepSamples != 49 || h.OneStepRMSEW <= 0 {
		t.Fatalf("one-step stats = %d samples RMSE %.2f, want 49 samples > 0 RMSE",
			h.OneStepSamples, h.OneStepRMSEW)
	}
	var text bytes.Buffer
	if err := rep.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "verdict: clean — exit 0") {
		t.Fatalf("text report missing clean verdict:\n%s", text.String())
	}
}

func TestDiagnoseStaleModelOvershoot(t *testing.T) {
	// Strawman shape: meter goes blind at k=20 with degradation disabled;
	// the controller flies on a bogus low reading and true power escapes.
	recs := healthyRun(40)
	for k := 20; k <= 26; k++ {
		recs[k].MeterStale = k - 19
		recs[k].MeasuredW = 0 // raw faulted feed
		recs[k].TruePowerW = 900 + 40*float64(k-19)
		recs[k].Faults = []string{"meter-dropout@20+7"}
	}
	// Overshoot decays after the meter returns.
	recs[27].MeasuredW, recs[27].TruePowerW = 1100, 1100
	recs[28].MeasuredW, recs[28].TruePowerW = 980, 980

	rep, err := Diagnose(DoctorInput{Records: recs})
	if err != nil {
		t.Fatal(err)
	}
	var blind *Incident
	for i := range rep.Incidents {
		if rep.Incidents[i].Kind == "meter-blind" {
			blind = &rep.Incidents[i]
		}
	}
	if blind == nil {
		t.Fatalf("no meter-blind incident in %+v", rep.Incidents)
	}
	if blind.RootCause != "stale-model-overshoot" || !blind.Explained {
		t.Fatalf("blind incident = %+v, want explained stale-model-overshoot", blind)
	}
	if blind.StartPeriod != 20 || blind.EndPeriod != 26 {
		t.Fatalf("blind window = k=%d..%d, want 20..26", blind.StartPeriod, blind.EndPeriod)
	}
	if !strings.Contains(blind.Detail, "graceful degradation disabled") {
		t.Fatalf("detail should name the disabled degradation: %s", blind.Detail)
	}
	// The decaying violation tail is attributed to the window, not
	// reported as a fresh unexplained cluster.
	for _, inc := range rep.Incidents {
		if inc.Kind == "cap-violation" && inc.StartPeriod >= 27 && inc.StartPeriod <= 28 {
			t.Fatalf("recovery tail reported as a separate incident: %+v", inc)
		}
	}
	if rep.ExitCode() != 0 {
		t.Fatalf("exit = %d, want 0 (everything attributed)", rep.ExitCode())
	}
}

func TestDiagnoseBlindWindowFailsafe(t *testing.T) {
	// Graceful shape: hold, then fail-safe, true power never escapes.
	recs := healthyRun(40)
	for k := 20; k <= 27; k++ {
		recs[k].MeterStale = k - 19
		recs[k].Degraded = true
		recs[k].Faults = []string{"meter-dropout@20+8"}
		if k >= 23 {
			recs[k].FailSafe = true
			recs[k].Controller = nil
			recs[k].HaveOneStepErr = false
		}
	}
	rep, err := Diagnose(DoctorInput{Records: recs})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Incidents) != 1 {
		t.Fatalf("incidents = %+v, want exactly the blind window", rep.Incidents)
	}
	inc := rep.Incidents[0]
	if inc.RootCause != "blind-window-failsafe" || !inc.Explained {
		t.Fatalf("incident = %+v, want explained blind-window-failsafe", inc)
	}
	if rep.Health.FailSafePeriods != 5 || rep.Health.DegradedPeriods != 8 {
		t.Fatalf("health = %+v, want 5 fail-safe of 8 degraded periods", rep.Health)
	}
	if rep.ExitCode() != 0 {
		t.Fatalf("exit = %d, want 0", rep.ExitCode())
	}
}

func TestDiagnoseSLOPressure(t *testing.T) {
	recs := healthyRun(40)
	for k := range recs {
		// gpu1 (knob 2) pinned to its SLO floor nearly every period, still
		// missing its SLO most of the run.
		recs[k].Controller.Knobs[2].SLOFloor = true
		recs[k].Controller.Knobs[2].AtLower = true
		if k%2 == 0 {
			recs[k].SLOMissGPUs = []int{1}
		}
	}
	rep, err := Diagnose(DoctorInput{Records: recs})
	if err != nil {
		t.Fatal(err)
	}
	var slo *Incident
	for i := range rep.Incidents {
		if rep.Incidents[i].Kind == "slo-pressure" {
			slo = &rep.Incidents[i]
		}
	}
	if slo == nil {
		t.Fatalf("no slo-pressure incident in %+v", rep.Incidents)
	}
	if slo.RootCause != "cap-infeasible-with-slo" || !slo.Explained {
		t.Fatalf("incident = %+v", slo)
	}
	if !strings.Contains(slo.Detail, "gpu1") {
		t.Fatalf("detail should name gpu1: %s", slo.Detail)
	}
}

func TestDiagnoseSLOPressureEventFallback(t *testing.T) {
	// Records without slo_miss_gpus (older stream): misses come from the
	// event stream, Device carrying the GPU index.
	recs := healthyRun(40)
	for k := range recs {
		recs[k].Controller.Knobs[3].SLOFloor = true
		recs[k].Controller.Knobs[3].AtLower = true
	}
	var events []telemetry.Event
	for k := 0; k < 40; k += 2 {
		events = append(events, telemetry.Event{
			Type: telemetry.EventSLOMiss, Period: k, Device: 2,
		})
	}
	rep, err := Diagnose(DoctorInput{Records: recs, Events: events})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, inc := range rep.Incidents {
		if inc.Kind == "slo-pressure" && strings.Contains(inc.Detail, "gpu2") {
			found = true
		}
	}
	if !found {
		t.Fatalf("event-fallback slo-pressure for gpu2 missing: %+v", rep.Incidents)
	}
}

func TestDiagnoseModelMismatchUnexplained(t *testing.T) {
	// A violation with a prediction-error blowout and no fault anywhere:
	// must surface as an anomaly and gate CI via exit 2.
	recs := healthyRun(40)
	recs[30].MeasuredW, recs[30].TruePowerW = 990, 990
	recs[30].OneStepErrW, recs[30].TrueOneStepErrW = 90, 90

	rep, err := Diagnose(DoctorInput{Records: recs})
	if err != nil {
		t.Fatal(err)
	}
	var viol *Incident
	for i := range rep.Incidents {
		if rep.Incidents[i].Kind == "cap-violation" {
			viol = &rep.Incidents[i]
		}
	}
	if viol == nil {
		t.Fatalf("no cap-violation incident in %+v", rep.Incidents)
	}
	if viol.RootCause != "model-mismatch" || viol.Explained {
		t.Fatalf("incident = %+v, want unexplained model-mismatch", viol)
	}
	if !strings.Contains(viol.Detail, "σ") {
		t.Fatalf("detail should quantify the sigma blowout: %s", viol.Detail)
	}
	if rep.Unexplained != 1 || rep.ExitCode() != 2 {
		t.Fatalf("unexplained = %d exit = %d, want 1 / 2", rep.Unexplained, rep.ExitCode())
	}
	var text bytes.Buffer
	if err := rep.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "UNEXPLAINED") {
		t.Fatalf("text report missing UNEXPLAINED marker:\n%s", text.String())
	}
}

func TestDiagnoseMeterNoiseExplained(t *testing.T) {
	// Measured-only excursion, breaker healthy, ordinary prediction
	// error: a meter-noise attribution, not an anomaly.
	recs := healthyRun(40)
	recs[30].MeasuredW = 912 // > 1% slack, true side stays at its base

	rep, err := Diagnose(DoctorInput{Records: recs})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Incidents) != 1 {
		t.Fatalf("incidents = %+v", rep.Incidents)
	}
	if got := rep.Incidents[0].RootCause; got != "meter-noise" || !rep.Incidents[0].Explained {
		t.Fatalf("root cause = %s (explained %v), want explained meter-noise",
			got, rep.Incidents[0].Explained)
	}
	if rep.ExitCode() != 0 {
		t.Fatalf("exit = %d, want 0", rep.ExitCode())
	}
}

func TestDiagnoseActuatorDivergence(t *testing.T) {
	recs := healthyRun(40)
	recs[15].ActuatorDiverged = []int{2}
	recs[15].Faults = []string{"actuator-loss@15+1:gpu1*0.7"}
	recs[33].ActuatorDiverged = []int{1}

	rep, err := Diagnose(DoctorInput{Records: recs})
	if err != nil {
		t.Fatal(err)
	}
	var explained, unexplained *Incident
	for i := range rep.Incidents {
		if rep.Incidents[i].Kind != "actuator-divergence" {
			continue
		}
		if rep.Incidents[i].Explained {
			explained = &rep.Incidents[i]
		} else {
			unexplained = &rep.Incidents[i]
		}
	}
	if explained == nil || explained.RootCause != "actuator-loss-fault" || explained.StartPeriod != 15 {
		t.Fatalf("fault-covered divergence = %+v", explained)
	}
	if unexplained == nil || unexplained.RootCause != "unexplained-divergence" || unexplained.StartPeriod != 33 {
		t.Fatalf("bare divergence = %+v", unexplained)
	}
	if rep.ExitCode() != 2 {
		t.Fatalf("exit = %d, want 2 (one unexplained divergence)", rep.ExitCode())
	}
}

func TestDiagnoseEmptyInput(t *testing.T) {
	if _, err := Diagnose(DoctorInput{}); err == nil {
		t.Fatal("want an error for an empty record set")
	}
}
