package flight

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// ctrlRec builds a controlled record whose one-step prediction is predW.
func ctrlRec(period int, measured, truePower, predW float64) DecisionRecord {
	return DecisionRecord{
		Period: period, SetpointW: 900, MeasuredW: measured, TruePowerW: truePower,
		Controller: &ControllerTrace{PredictedNextW: predW},
	}
}

func TestRecorderRingWrap(t *testing.T) {
	r := NewRecorder(Config{Capacity: 4})
	for k := 0; k < 10; k++ {
		r.Record(DecisionRecord{Period: k})
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
	got := r.Records()
	if len(got) != 4 {
		t.Fatalf("ring holds %d records, want 4", len(got))
	}
	for i, rec := range got {
		if want := 6 + i; rec.Period != want {
			t.Fatalf("Records()[%d].Period = %d, want %d (oldest first)", i, rec.Period, want)
		}
	}
	last := r.Last(2)
	if len(last) != 2 || last[0].Period != 8 || last[1].Period != 9 {
		t.Fatalf("Last(2) = %+v, want periods 8, 9", last)
	}
	if big := r.Last(99); len(big) != 4 {
		t.Fatalf("Last(99) returned %d records, want the whole ring (4)", len(big))
	}
}

func TestRecorderOneStepScoring(t *testing.T) {
	r := NewRecorder(Config{})
	r.Record(ctrlRec(0, 950, 948, 910)) // first record: nothing to score against
	r.Record(ctrlRec(1, 915, 913, 902))
	r.Record(ctrlRec(2, 905, 903, 900))

	recs := r.Records()
	if recs[0].HaveOneStepErr {
		t.Fatal("first record should not be scored")
	}
	if !recs[1].HaveOneStepErr || recs[1].OneStepErrW != 915-910 || recs[1].TrueOneStepErrW != 913-910 {
		t.Fatalf("record 1 scoring = %+v, want errs +5/+3 vs the 910 prediction", recs[1])
	}
	if !recs[2].HaveOneStepErr || recs[2].OneStepErrW != 905-902 {
		t.Fatalf("record 2 scoring = %+v, want err +3 vs the 902 prediction", recs[2])
	}
}

func TestRecorderScoringChainBreaks(t *testing.T) {
	cases := []struct {
		name     string
		breakRec DecisionRecord
	}{
		{"failsafe", DecisionRecord{Period: 1, MeasuredW: 920, FailSafe: true,
			Controller: &ControllerTrace{PredictedNextW: 890}}},
		{"uncontrolled", DecisionRecord{Period: 1, MeasuredW: 920, Uncontrolled: true,
			Controller: &ControllerTrace{PredictedNextW: 890}}},
		{"infeasible", DecisionRecord{Period: 1, MeasuredW: 920,
			Controller: &ControllerTrace{PredictedNextW: 890, Infeasible: true}}},
		{"no-trace", DecisionRecord{Period: 1, MeasuredW: 920}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRecorder(Config{})
			r.Record(ctrlRec(0, 950, 948, 910))
			r.Record(tc.breakRec)
			r.Record(ctrlRec(2, 905, 903, 900))
			recs := r.Records()
			// The breaking record itself is still scored against period 0's
			// prediction (its measurement is real input to the analysis)…
			if !recs[1].HaveOneStepErr {
				t.Fatal("breaking record should still be scored against the prior prediction")
			}
			// …but its own prediction must not score period 2.
			if recs[2].HaveOneStepErr {
				t.Fatalf("%s period must break the one-step scoring chain", tc.name)
			}
		})
	}
}

func TestRecorderJSONLRoundTripDeterministic(t *testing.T) {
	run := func() []byte {
		var buf bytes.Buffer
		r := NewRecorder(Config{Capacity: 2, JSONL: &buf})
		r.Record(DecisionRecord{
			Period: 0, TimeS: 4, SetpointW: 900, MeasuredW: 950, TruePowerW: 948,
			CommandedCPUGHz: 2.1, CommandedGPUMHz: []float64{1200, 1100},
			Controller: &ControllerTrace{
				Gains: []float64{60, 0.2, 0.3}, OffsetW: 300, PredictedNextW: 915,
				Knobs: []KnobConstraint{{WeightR: 3}, {SLOFloor: true, AtLower: true, WeightR: 2, FloorBoost: 1.05}},
			},
		})
		r.Record(DecisionRecord{Period: 1, TimeS: 8, SetpointW: 900, MeasuredW: 912, TruePowerW: 913,
			MeterStale: 2, Degraded: true, Faults: []string{"meter-dropout@1+3"}})
		r.Record(DecisionRecord{Period: 2, TimeS: 12, SetpointW: 900, MeasuredW: 905, TruePowerW: 904})
		if err := r.Err(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("flight JSONL differs between identical runs")
	}
	if len(a) == 0 {
		t.Fatal("empty flight JSONL")
	}

	// The stream is complete even though the ring wrapped at capacity 2.
	recs, err := ReadRecords(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("stream has %d records, want all 3", len(recs))
	}
	if recs[0].Controller == nil || !recs[0].Controller.Knobs[1].SLOFloor {
		t.Fatalf("round trip lost controller trace detail: %+v", recs[0])
	}
	if recs[1].MeterStale != 2 || !recs[1].Degraded || len(recs[1].Faults) != 1 {
		t.Fatalf("round trip lost degradation state: %+v", recs[1])
	}
}

func TestReadRecordsBadLine(t *testing.T) {
	_, err := ReadRecords(strings.NewReader("{\"period\":0}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want a line-2 parse error", err)
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestRecorderStickyWriteError(t *testing.T) {
	r := NewRecorder(Config{JSONL: failWriter{}})
	r.Record(DecisionRecord{Period: 0})
	r.Record(DecisionRecord{Period: 1})
	if r.Err() == nil {
		t.Fatal("write error not reported")
	}
	if r.Total() != 2 {
		t.Fatal("ring recording must survive a broken stream")
	}
}

// recordingSink counts forwarded calls to prove DumpSink is transparent.
type recordingSink struct {
	emits, periods, begins, ends int
}

func (s *recordingSink) Emit(telemetry.Event)          { s.emits++ }
func (s *recordingSink) Period(telemetry.PeriodSample) { s.periods++ }
func (s *recordingSink) BeginPhase(int, string)        { s.begins++ }
func (s *recordingSink) EndPhase(int, string)          { s.ends++ }

func TestDumpSinkTriggersAndForwards(t *testing.T) {
	rec := NewRecorder(Config{})
	for k := 0; k < 8; k++ {
		rec.Record(DecisionRecord{Period: k, SetpointW: 900, MeasuredW: 890})
	}
	var out bytes.Buffer
	inner := &recordingSink{}
	ds := NewDumpSink(inner, rec, &out, DumpConfig{LastN: 4})

	// Healthy sample: no dump.
	ds.Period(telemetry.PeriodSample{Period: 5, SetpointW: 900, AvgPowerW: 905, TruePowerW: 903})
	// Measured violation (>1% over 900): dump fires with the last 4 records.
	ds.Period(telemetry.PeriodSample{Period: 6, SetpointW: 900, AvgPowerW: 915, TruePowerW: 905})
	// Still cooling down: suppressed.
	ds.Period(telemetry.PeriodSample{Period: 7, SetpointW: 900, AvgPowerW: 920, TruePowerW: 905})
	ds.BeginPhase(7, "decide")
	ds.EndPhase(7, "decide")
	ds.Emit(telemetry.Event{Type: telemetry.EventAdaptFrozen, Period: 7})
	// Past the cooldown (4 periods): an incident event triggers again.
	ds.Emit(telemetry.Event{Type: telemetry.EventMPCInfeasible, Period: 11})
	if err := ds.Err(); err != nil {
		t.Fatal(err)
	}

	dumps, err := ReadDumps(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(dumps) != 2 {
		t.Fatalf("got %d dumps, want 2 (violation + post-cooldown infeasibility)", len(dumps))
	}
	if dumps[0].Trigger != string(telemetry.EventCapViolation) || dumps[0].Period != 6 {
		t.Fatalf("dump 0 = %s@%d, want cap-violation@6", dumps[0].Trigger, dumps[0].Period)
	}
	if len(dumps[0].Records) != 4 || dumps[0].Records[3].Period != 7 {
		t.Fatalf("dump 0 carries %d records ending at %d, want the last 4 ending at period 7",
			len(dumps[0].Records), dumps[0].Records[len(dumps[0].Records)-1].Period)
	}
	if dumps[1].Trigger != string(telemetry.EventMPCInfeasible) || dumps[1].Period != 11 {
		t.Fatalf("dump 1 = %s@%d, want mpc-infeasible@11", dumps[1].Trigger, dumps[1].Period)
	}

	// Everything was forwarded to the inner sink regardless of triggers.
	if inner.periods != 3 || inner.emits != 2 || inner.begins != 1 || inner.ends != 1 {
		t.Fatalf("forwarding counts = %+v, want 3 periods, 2 emits, 1 begin, 1 end", *inner)
	}
}

func TestDumpSinkFailSafeEdgeAndTrueViolation(t *testing.T) {
	rec := NewRecorder(Config{})
	rec.Record(DecisionRecord{Period: 0})
	var out bytes.Buffer
	ds := NewDumpSink(nil, rec, &out, DumpConfig{LastN: 2, CooldownPeriods: 1})

	// True violation (>2% over 900) with the measured side in-slack.
	ds.Period(telemetry.PeriodSample{Period: 3, SetpointW: 900, AvgPowerW: 905, TruePowerW: 930})
	// Fail-safe entry edge triggers once; staying in fail-safe does not.
	ds.Period(telemetry.PeriodSample{Period: 5, SetpointW: 900, AvgPowerW: 880, TruePowerW: 880, FailSafe: true})
	ds.Period(telemetry.PeriodSample{Period: 6, SetpointW: 900, AvgPowerW: 875, TruePowerW: 875, FailSafe: true})

	dumps, err := ReadDumps(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(dumps) != 2 {
		t.Fatalf("got %d dumps, want true-violation + failsafe edge", len(dumps))
	}
	if dumps[0].Trigger != "true-cap-violation" {
		t.Fatalf("dump 0 trigger = %s", dumps[0].Trigger)
	}
	if dumps[1].Trigger != string(telemetry.EventFailSafeEnter) || dumps[1].Period != 5 {
		t.Fatalf("dump 1 = %s@%d, want failsafe-enter@5 only", dumps[1].Trigger, dumps[1].Period)
	}
}
