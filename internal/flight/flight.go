// Package flight is the controller flight recorder: the "why" layer on
// top of the telemetry subsystem's "what". Per control period it
// captures a DecisionRecord — the adaptive model's parameter vector and
// innovation, the MPC's horizon predictions and the constraints active
// at its optimum (cap tracking vs deadband, per-device f_min/f_max,
// SLO-derived floors including the adaptive floorBoost), the per-device
// weight assignment with its throughput rationale, infeasibility and
// relaxation flags, and the harness's degradation state — into a
// bounded ring with an optional complete JSONL stream.
//
// A DumpSink wraps a telemetry.Sink and writes a "black-box dump" (the
// last N records) whenever a cap-violation, fail-safe, actuator
// divergence, or MPC infeasibility flows past it, so the decision
// context that led into an incident survives even when nobody was
// exporting the full stream.
//
// Determinism contract: the package is inside the capgpu-lint
// determinism scope. Records carry only simulated time; JSON encoding
// is canonical (encoding/json struct order), so a seeded replay
// produces a byte-identical flight record — pinned by the golden test.
// The recorder is off by default: a nil *Recorder on the harness costs
// one nil check per period and zero allocations.
package flight

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// KnobConstraint is one knob's constraint state at the MPC optimum
// (knob 0 is the CPU, 1.. the GPUs).
type KnobConstraint struct {
	// AtLower / AtUpper report whether the planned first move lands the
	// knob on its effective lower bound or its ceiling.
	AtLower bool `json:"at_lower,omitempty"`
	AtUpper bool `json:"at_upper,omitempty"`
	// SLOFloor is true when the effective lower bound is the SLO-derived
	// frequency floor (Eq. 10b,c), not the hardware minimum.
	SLOFloor bool `json:"slo_floor,omitempty"`
	// Pinned marks a knob eliminated analytically: its SLO floor sat at
	// the ceiling, leaving exactly one feasible trajectory.
	Pinned bool `json:"pinned,omitempty"`
	// LowerBoundNorm is the effective normalized floor in [0,1].
	LowerBoundNorm float64 `json:"lower_norm"`
	// FloorBoost is CapGPU's adaptive multiplicative floor correction
	// (1 = neutral; 0 for the CPU knob, which has no SLO).
	FloorBoost float64 `json:"floor_boost,omitempty"`
	// WeightR is the control penalty R_n the optimizer used; the weight
	// assignment sets R_n = R0/(ŵ+ε) from ThroughputNorm, so a busy
	// device (ŵ→1) gets a small penalty and keeps its headroom.
	WeightR        float64 `json:"weight_r"`
	ThroughputNorm float64 `json:"throughput_norm"`
}

// ControllerTrace is the controller-side half of a DecisionRecord:
// what CapGPU knew and planned when it made the period's decision.
// It is nil on fail-safe, uncontrolled, and non-CapGPU periods.
type ControllerTrace struct {
	// Gains is the power model currently steering the MPC, natural
	// units (W/GHz for the CPU, W/MHz per GPU) — the RLS estimate when
	// adaptive, the offline identification otherwise.
	Gains []float64 `json:"gains"`
	// OffsetW is the model's idle-power intercept.
	OffsetW float64 `json:"offset_w"`
	// InnovationW is the last absorbed RLS one-step prediction error.
	InnovationW float64 `json:"innovation_w"`
	// RLSUpdates counts absorbed RLS updates so far.
	RLSUpdates int `json:"rls_updates,omitempty"`
	// Adaptive is true when an RLS estimator is attached at all;
	// AdaptFrozen when it refused this period's sample (stale meter).
	Adaptive    bool `json:"adaptive,omitempty"`
	AdaptFrozen bool `json:"adapt_frozen,omitempty"`

	// FilteredPowerW is the (EWMA-filtered) power fed to the MPC.
	FilteredPowerW float64 `json:"filtered_power_w"`
	// PredictedNextW is the model's prediction of the next period's
	// power under the applied (move-gain-scaled) decision — the
	// one-step prediction the recorder scores against the next sample.
	PredictedNextW float64 `json:"predicted_next_w"`
	// PredictedEndW is the prediction at the end of the horizon;
	// HorizonW the per-step trajectory (1..P) under all planned moves.
	PredictedEndW float64   `json:"predicted_end_w"`
	HorizonW      []float64 `json:"horizon_w,omitempty"`

	// BiasW is the deadband-adjusted tracking error the QP minimized;
	// DeadbandHold is true when the raw error sat inside the deadband.
	BiasW        float64 `json:"bias_w"`
	DeadbandHold bool    `json:"deadband_hold,omitempty"`

	// Knobs is the per-knob constraint and weight state (0 = CPU).
	Knobs []KnobConstraint `json:"knobs,omitempty"`

	// Infeasible marks a period whose MPC subproblem had no solution
	// (the controller held its operating point); Relaxed one whose
	// start point the solver had to repair (e.g. a freshly tightened
	// SLO floor above the current operating point).
	Infeasible       bool   `json:"infeasible,omitempty"`
	InfeasibleDetail string `json:"infeasible_detail,omitempty"`
	Relaxed          bool   `json:"relaxed,omitempty"`
	Solver           string `json:"solver,omitempty"`
	SolverIterations int    `json:"solver_iterations,omitempty"`

	// Phase-aware capping (LLM workloads): PhaseMix is the fleet-mean
	// prefill share the controller blended its gains from; PhaseGuarded
	// marks a period whose GPU commands the prefill-headroom guard
	// pulled back toward the SLO floors.
	PhaseMix     float64 `json:"phase_mix,omitempty"`
	PhaseGuarded bool    `json:"phase_guarded,omitempty"`
}

// DecisionRecord is one control period's complete decision context.
type DecisionRecord struct {
	Period int     `json:"period"`
	TimeS  float64 `json:"time_s"`
	// PolicyEpoch is the control plane's policy version at record time
	// (0 when no daemon is attached): every applied hot-reconfiguration
	// bumps it, so a record is attributable to the exact policy that
	// produced its decision.
	PolicyEpoch int `json:"policy_epoch,omitempty"`
	// CauseID / ParentID tie the record into the provenance span tree:
	// CauseID is the cap-change span that set the period's setpoint,
	// ParentID that span's parent (the reallocation). Empty when no
	// tracer is attached or while the node still runs its initial cap.
	CauseID  string `json:"cause_id,omitempty"`
	ParentID string `json:"parent_id,omitempty"`

	SetpointW float64 `json:"setpoint_w"`
	// MeasuredW is what the controller was fed — a held/guarded value
	// on degraded periods, not a measurement. TruePowerW is the
	// breaker-side truth.
	MeasuredW  float64 `json:"measured_w"`
	TruePowerW float64 `json:"true_power_w"`

	// Degradation state (see core.DegradeConfig).
	MeterStale   int      `json:"meter_stale,omitempty"`
	Degraded     bool     `json:"degraded,omitempty"`
	FailSafe     bool     `json:"failsafe,omitempty"`
	Uncontrolled bool     `json:"uncontrolled,omitempty"`
	Faults       []string `json:"faults,omitempty"`
	// SLOMissGPUs lists the GPUs whose measured batch latency exceeded
	// their SLO this period.
	SLOMissGPUs []int `json:"slo_miss_gpus,omitempty"`

	// PhasePrefill / QueueDepth are the period-average prefill share
	// and admission-queue depth per GPU; nil (omitted) for CNN runs, so
	// pre-LLM flight artifacts stay byte-identical.
	PhasePrefill []float64 `json:"phase_prefill,omitempty"`
	QueueDepth   []float64 `json:"queue_depth,omitempty"`

	// The commanded decision (pre-modulation) and the actuation outcome.
	CommandedCPUGHz  float64   `json:"commanded_cpu_ghz"`
	CommandedGPUMHz  []float64 `json:"commanded_gpu_mhz"`
	ActuatorRetries  int       `json:"actuator_retries,omitempty"`
	ActuatorDiverged []int     `json:"actuator_diverged,omitempty"` // knob indices off-command after retry

	// Controller carries the CapGPU decision internals; nil on
	// fail-safe/uncontrolled periods and for controllers that do not
	// expose a trace.
	Controller *ControllerTrace `json:"controller,omitempty"`

	// One-step prediction scoring, filled by the Recorder from the
	// previous record's PredictedNextW: OneStepErrW scores against the
	// meter (what the controller saw), TrueOneStepErrW against the
	// breaker-side truth — the two diverge exactly when the meter lies.
	// Valid only when HaveOneStepErr is set.
	OneStepErrW     float64 `json:"one_step_err_w"`
	TrueOneStepErrW float64 `json:"true_one_step_err_w"`
	HaveOneStepErr  bool    `json:"have_one_step_err,omitempty"`
}

// Config tunes a Recorder. The zero value keeps the default ring with
// no stream.
type Config struct {
	// Capacity bounds the in-memory ring (default 256) that black-box
	// dumps and Records() serve from; the JSONL stream is complete
	// regardless.
	Capacity int
	// JSONL, when set, receives every record as one JSON line in period
	// order. Write errors are sticky and reported by Err.
	JSONL io.Writer
}

// Recorder keeps the bounded DecisionRecord ring and scores one-step
// predictions as records arrive. It is owned by a single harness loop
// and is not safe for concurrent use (matching the harness itself).
// Under parallel rack stepping (cluster.Coordinator.Workers > 1) each
// node therefore needs its own Recorder with its own JSONL writer;
// per-node streams stay internally ordered and byte-identical at any
// worker count, where a shared writer would interleave
// nondeterministically.
type Recorder struct {
	ring  []DecisionRecord
	head  int
	capN  int
	total int
	jsonl io.Writer
	jerr  error

	prevPredW float64 // previous record's one-step prediction
	prevOK    bool

	epoch int // stamped onto subsequent records (0 = no control plane)
}

// SetEpoch sets the policy epoch stamped onto subsequent records. The
// control plane calls it at each barrier where a reconfiguration
// applies; standalone runs never do, leaving the field at its zero
// (omitted) value so existing goldens are unchanged.
func (r *Recorder) SetEpoch(epoch int) { r.epoch = epoch }

// NewRecorder builds a recorder from the config.
func NewRecorder(cfg Config) *Recorder {
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = 256
	}
	return &Recorder{capN: capacity, jsonl: cfg.JSONL}
}

// Record appends one period's record, scoring it against the previous
// period's one-step prediction first.
//
//capgpu:hotpath
func (r *Recorder) Record(rec DecisionRecord) {
	rec.PolicyEpoch = r.epoch
	if r.prevOK {
		rec.OneStepErrW = rec.MeasuredW - r.prevPredW
		rec.TrueOneStepErrW = rec.TruePowerW - r.prevPredW
		rec.HaveOneStepErr = true
	}
	// Only a real controller prediction can be scored next period; a
	// fail-safe, uncontrolled, or infeasible period breaks the chain.
	if rec.Controller != nil && !rec.FailSafe && !rec.Uncontrolled && !rec.Controller.Infeasible {
		r.prevPredW = rec.Controller.PredictedNextW
		r.prevOK = true
	} else {
		r.prevOK = false
	}

	r.total++
	if len(r.ring) >= r.capN {
		r.ring[r.head] = rec // circular: overwrite the oldest in place
		r.head = (r.head + 1) % len(r.ring)
	} else {
		r.ring = append(r.ring, rec)
	}
	if r.jsonl != nil && r.jerr == nil {
		//lint:ignore hotalloc Marshal boxes one record per JSONL append; taking &rec instead would heap-escape every record and regress the alloc-free ring-only path
		b, err := json.Marshal(rec)
		if err == nil {
			b = append(b, '\n')
			_, err = r.jsonl.Write(b)
		}
		if err != nil {
			r.jerr = err
		}
	}
}

// Total returns how many records were ever recorded (≥ len(Records())
// once the ring wraps).
func (r *Recorder) Total() int { return r.total }

// Err returns the first JSONL write error, if any.
func (r *Recorder) Err() error { return r.jerr }

// Records returns a copy of the ring, oldest first.
func (r *Recorder) Records() []DecisionRecord {
	out := make([]DecisionRecord, 0, len(r.ring))
	out = append(out, r.ring[r.head:]...)
	return append(out, r.ring[:r.head]...)
}

// Last returns the newest min(n, len) records, oldest first — the
// black-box dump window.
func (r *Recorder) Last(n int) []DecisionRecord {
	all := r.Records()
	if n < len(all) {
		all = all[len(all)-n:]
	}
	return all
}

// ReadRecords parses a flight-record JSONL stream (blank lines are
// skipped), the inverse of the Recorder's stream writer.
func ReadRecords(rd io.Reader) ([]DecisionRecord, error) {
	var out []DecisionRecord
	if err := readJSONLines(rd, func(raw []byte) error {
		var rec DecisionRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return err
		}
		out = append(out, rec)
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// readJSONLines scans a JSONL stream line by line, skipping blanks.
func readJSONLines(rd io.Reader, each func(raw []byte) error) error {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		if err := each(raw); err != nil {
			return fmt.Errorf("flight: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("flight: read: %w", err)
	}
	return nil
}
