package flight

import (
	"encoding/json"
	"io"

	"repro/internal/telemetry"
)

// DumpConfig tunes the black-box trigger. The zero value uses the
// defaults, with the violation slacks matching the telemetry hub's so
// a dump fires exactly when the hub synthesizes the violation event.
type DumpConfig struct {
	// LastN is how many trailing records each dump carries (default 16).
	LastN int
	// CooldownPeriods suppresses further dumps for this many periods
	// after one fires (default LastN), so a violation storm produces
	// one contextual dump instead of one per period.
	CooldownPeriods int
	// MeasuredSlackFrac / TrueSlackFrac are the fractional slacks above
	// the set point before a period triggers (defaults 0.01 and 0.02,
	// the repo-wide violation conventions).
	MeasuredSlackFrac float64
	TrueSlackFrac     float64
}

// Dump is one black-box dump: the trigger and the decision context
// (the recorder's last N records) that led into it. Serialized as one
// JSON line per dump.
type Dump struct {
	Trigger string           `json:"trigger"`
	Period  int              `json:"period"`
	TimeS   float64          `json:"time_s"`
	Node    string           `json:"node,omitempty"`
	Records []DecisionRecord `json:"records"`
}

// DumpSink implements telemetry.Sink by forwarding everything to an
// inner sink (which may be nil) and watching the stream for incident
// signals: a cap violation (measured or breaker-side, judged from the
// period sample by the hub's own rules), entry into fail-safe, actuator
// divergence, or an infeasible MPC subproblem. On a trigger it writes
// the recorder's last N records as one Dump line.
//
// Wire it as the harness's sink (core.Harness.SetTelemetry) with the
// hub as inner: controller- and bank-emitted events flow through Emit,
// and the once-per-period sample through Period. One DumpSink serves
// one harness loop; it keeps per-run trigger state.
type DumpSink struct {
	inner telemetry.Sink
	rec   *Recorder
	w     io.Writer
	cfg   DumpConfig

	inFailSafe bool
	lastDump   int
	haveDump   bool
	werr       error
}

// NewDumpSink builds the sink. rec and w are required; inner may be nil
// (trigger-only operation, no forwarding).
func NewDumpSink(inner telemetry.Sink, rec *Recorder, w io.Writer, cfg DumpConfig) *DumpSink {
	if cfg.LastN <= 0 {
		cfg.LastN = 16
	}
	if cfg.CooldownPeriods <= 0 {
		cfg.CooldownPeriods = cfg.LastN
	}
	if cfg.MeasuredSlackFrac == 0 {
		cfg.MeasuredSlackFrac = 0.01
	}
	if cfg.TrueSlackFrac == 0 {
		cfg.TrueSlackFrac = 0.02
	}
	return &DumpSink{inner: inner, rec: rec, w: w, cfg: cfg}
}

// Err returns the first dump write error, if any.
func (d *DumpSink) Err() error { return d.werr }

// Emit implements telemetry.Sink: forwards, and triggers on the
// controller/bank-emitted incident events.
func (d *DumpSink) Emit(e telemetry.Event) {
	if d.inner != nil {
		d.inner.Emit(e)
	}
	switch e.Type {
	case telemetry.EventMPCInfeasible, telemetry.EventActuatorDiverge:
		d.trigger(string(e.Type), e.Period, e.TimeS, e.Node)
	}
}

// Period implements telemetry.Sink: forwards, and judges the sample by
// the same rules the hub uses to synthesize violation events.
func (d *DumpSink) Period(s telemetry.PeriodSample) {
	if d.inner != nil {
		d.inner.Period(s)
	}
	switch {
	case s.SetpointW > 0 && s.AvgPowerW > s.SetpointW*(1+d.cfg.MeasuredSlackFrac):
		d.trigger(string(telemetry.EventCapViolation), s.Period, s.TimeS, s.Node)
	case s.SetpointW > 0 && s.TruePowerW > s.SetpointW*(1+d.cfg.TrueSlackFrac):
		d.trigger("true-cap-violation", s.Period, s.TimeS, s.Node)
	case s.FailSafe && !d.inFailSafe:
		d.trigger(string(telemetry.EventFailSafeEnter), s.Period, s.TimeS, s.Node)
	}
	d.inFailSafe = s.FailSafe
}

// BeginPhase implements telemetry.Sink.
func (d *DumpSink) BeginPhase(period int, phase string) {
	if d.inner != nil {
		d.inner.BeginPhase(period, phase)
	}
}

// EndPhase implements telemetry.Sink.
func (d *DumpSink) EndPhase(period int, phase string) {
	if d.inner != nil {
		d.inner.EndPhase(period, phase)
	}
}

// trigger writes one dump unless still cooling down from the last.
func (d *DumpSink) trigger(kind string, period int, timeS float64, node string) {
	if d.w == nil || d.rec == nil {
		return
	}
	if d.haveDump && period-d.lastDump < d.cfg.CooldownPeriods {
		return
	}
	d.lastDump = period
	d.haveDump = true
	if d.werr != nil {
		return
	}
	b, err := json.Marshal(Dump{
		Trigger: kind, Period: period, TimeS: timeS, Node: node,
		Records: d.rec.Last(d.cfg.LastN),
	})
	if err == nil {
		b = append(b, '\n')
		_, err = d.w.Write(b)
	}
	if err != nil {
		d.werr = err
	}
}

// ReadDumps parses a black-box dump stream (one Dump JSON line each).
func ReadDumps(rd io.Reader) ([]Dump, error) {
	var out []Dump
	if err := readJSONLines(rd, func(raw []byte) error {
		var dump Dump
		if err := json.Unmarshal(raw, &dump); err != nil {
			return err
		}
		out = append(out, dump)
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}
