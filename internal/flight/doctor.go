package flight

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/telemetry"
)

// DoctorInput is everything the offline diagnosis works from. Records
// is required; Events (the telemetry JSONL stream) is optional and only
// used for cross-checks and SLO-miss fallback when records predate the
// slo_miss_gpus field.
type DoctorInput struct {
	Records []DecisionRecord
	Events  []telemetry.Event
	// MeasuredSlackFrac / TrueSlackFrac are the violation slacks
	// (defaults 0.01 and 0.02, the repo-wide conventions).
	MeasuredSlackFrac float64
	TrueSlackFrac     float64
	// SigmaWindowPeriods is the trailing window for the prediction-error
	// sigma used by the model-mismatch rule (default 20).
	SigmaWindowPeriods int
}

// Incident is one diagnosed anomaly window with its root-cause
// attribution. Explained incidents are understood (a fault window, a
// configuration conflict, a designed degradation response); unexplained
// ones are anomalies the doctor could not attribute and gate CI.
type Incident struct {
	Kind        string `json:"kind"`
	StartPeriod int    `json:"start_period"`
	EndPeriod   int    `json:"end_period"`
	RootCause   string `json:"root_cause"`
	Detail      string `json:"detail"`
	Explained   bool   `json:"explained"`
}

// KnobActivity is one knob's constraint-activity row (knob 0 = CPU),
// fractions over the controlled periods.
type KnobActivity struct {
	Knob         string  `json:"knob"`
	AtLowerFrac  float64 `json:"at_lower_frac"`
	AtUpperFrac  float64 `json:"at_upper_frac"`
	SLOFloorFrac float64 `json:"slo_floor_frac"`
	PinnedFrac   float64 `json:"pinned_frac"`
	MeanWeightR  float64 `json:"mean_weight_r"`
}

// HealthReport is the run-level health summary.
type HealthReport struct {
	Periods             int `json:"periods"`
	ControlledPeriods   int `json:"controlled_periods"`
	DegradedPeriods     int `json:"degraded_periods"`
	FailSafePeriods     int `json:"failsafe_periods"`
	UncontrolledPeriods int `json:"uncontrolled_periods"`
	InfeasiblePeriods   int `json:"infeasible_periods"`
	DeadbandPeriods     int `json:"deadband_periods"`
	MeasuredViolations  int `json:"measured_violations"`
	TrueViolations      int `json:"true_violations"`
	SLOMisses           int `json:"slo_misses"`

	// One-step prediction error over scored fresh-meter periods, with a
	// first-half / second-half split to surface drift.
	OneStepSamples  int     `json:"one_step_samples"`
	OneStepRMSEW    float64 `json:"one_step_rmse_w"`
	FirstHalfRMSEW  float64 `json:"first_half_rmse_w"`
	SecondHalfRMSEW float64 `json:"second_half_rmse_w"`

	// WeightChurn is the mean |ΔR| per knob per controlled period — how
	// restlessly the throughput-aware weight assignment reshuffles.
	WeightChurn float64        `json:"weight_churn"`
	Knobs       []KnobActivity `json:"knobs,omitempty"`
}

// Report is the doctor's full output.
type Report struct {
	Health      HealthReport `json:"health"`
	Incidents   []Incident   `json:"incidents,omitempty"`
	Unexplained int          `json:"unexplained"`
}

// ExitCode is the CI-gating verdict: 0 when the run is clean or every
// incident is explained, 2 when unexplained anomalies remain. (CLI
// usage/parse errors use 1, reserved here.)
func (r *Report) ExitCode() int {
	if r.Unexplained > 0 {
		return 2
	}
	return 0
}

// Diagnose replays the flight record and attributes every anomaly
// window to a root cause.
func Diagnose(in DoctorInput) (*Report, error) {
	recs := in.Records
	if len(recs) == 0 {
		return nil, errors.New("flight: no records to diagnose")
	}
	measSlack := in.MeasuredSlackFrac
	if measSlack == 0 {
		measSlack = 0.01
	}
	trueSlack := in.TrueSlackFrac
	if trueSlack == 0 {
		trueSlack = 0.02
	}
	window := in.SigmaWindowPeriods
	if window <= 0 {
		window = 20
	}

	n := len(recs)
	violMeas := make([]bool, n)
	violTrue := make([]bool, n)
	stale := make([]bool, n)
	covered := make([]bool, n) // attributed to a blind-window incident
	for i, rec := range recs {
		violMeas[i] = rec.SetpointW > 0 && rec.MeasuredW > rec.SetpointW*(1+measSlack)
		violTrue[i] = rec.SetpointW > 0 && rec.TruePowerW > rec.SetpointW*(1+trueSlack)
		stale[i] = rec.MeterStale > 0
	}

	rep := &Report{Health: buildHealth(recs, violMeas, violTrue, in.Events)}

	// Injected load-burst windows, mapped onto record positions. The
	// control-plane load generator announces each hot window at its first
	// period with the window length in Value; the arrival step's settling
	// transient can land a couple of periods past the window's end, so
	// the coverage extends by a small margin.
	burst := make([]bool, n)
	if len(in.Events) > 0 {
		idxByPeriod := map[int]int{}
		for i, rec := range recs {
			idxByPeriod[rec.Period] = i
		}
		for _, e := range in.Events {
			if e.Type != telemetry.EventLoadBurst {
				continue
			}
			win := int(e.Value)
			if win <= 0 {
				win = 1
			}
			for p := e.Period; p <= e.Period+win+2; p++ {
				if i, ok := idxByPeriod[p]; ok {
					burst[i] = true
				}
			}
		}
	}

	// Scored one-step errors on fresh-meter periods, position-tagged,
	// for the trailing-sigma model-mismatch rule.
	type scored struct {
		pos  int
		errW float64
	}
	var errSeq []scored
	for i, rec := range recs {
		if rec.HaveOneStepErr && rec.MeterStale == 0 {
			errSeq = append(errSeq, scored{i, rec.OneStepErrW})
		}
	}
	sigmaBefore := func(pos int) float64 {
		var vals []float64
		for _, s := range errSeq {
			if s.pos < pos {
				vals = append(vals, s.errW)
			}
		}
		if len(vals) > window {
			vals = vals[len(vals)-window:]
		}
		if len(vals) < 5 {
			return 0
		}
		var mean float64
		for _, v := range vals {
			mean += v
		}
		mean /= float64(len(vals))
		var ss float64
		for _, v := range vals {
			ss += (v - mean) * (v - mean)
		}
		return math.Sqrt(ss / float64(len(vals)))
	}

	// --- Meter-blind windows: maximal runs of MeterStale > 0. The
	// decisive question is whether true power escaped the cap while the
	// controller was blind (stale-model overshoot) or the degradation
	// ladder rode the window out.
	for a := 0; a < n; {
		if !stale[a] {
			a++
			continue
		}
		b := a
		for b+1 < n && stale[b+1] {
			b++
		}
		coverEnd := b + 2 // overshoot momentum lands just after recovery
		if coverEnd > n-1 {
			coverEnd = n - 1
		}
		// A deep blind-window overshoot decays over several periods once
		// the meter returns; keep the contiguous violation tail attributed
		// to the window rather than reporting it as a fresh anomaly.
		for coverEnd+1 < n && (violTrue[coverEnd+1] || violMeas[coverEnd+1]) {
			coverEnd++
		}
		trueViol, worstW := 0, 0.0
		for i := a; i <= coverEnd; i++ {
			covered[i] = true
			if violTrue[i] {
				trueViol++
				if ex := recs[i].TruePowerW - recs[i].SetpointW; ex > worstW {
					worstW = ex
				}
			}
		}
		frozen, failSafe, degradeOn := 0, 0, false
		adaptive := false
		for _, rec := range recs {
			if rec.Controller != nil && rec.Controller.Adaptive {
				adaptive = true
				break
			}
		}
		for i := a; i <= b; i++ {
			if recs[i].Controller != nil && recs[i].Controller.AdaptFrozen {
				frozen++
			}
			if recs[i].FailSafe {
				failSafe++
			}
			if recs[i].Degraded || recs[i].FailSafe {
				degradeOn = true
			}
		}
		adaptDesc := "a non-adaptive model"
		if adaptive {
			adaptDesc = fmt.Sprintf("RLS frozen (%d periods)", frozen)
		}
		inc := Incident{
			Kind:        "meter-blind",
			StartPeriod: recs[a].Period,
			EndPeriod:   recs[b].Period,
			Explained:   true,
		}
		feed := "held last-good feedback"
		if !degradeOn {
			feed = "the raw faulted meter feed — graceful degradation disabled"
		}
		switch {
		case trueViol > 0:
			inc.RootCause = "stale-model-overshoot"
			inc.Detail = fmt.Sprintf(
				"meter blind for %d periods (k=%d..%d): controller flying on %s with %s; %d true-power violation(s), worst +%.1f W over the cap — stale-model overshoot",
				b-a+1, recs[a].Period, recs[b].Period, feed, adaptDesc, trueViol, worstW)
		case failSafe > 0:
			inc.RootCause = "blind-window-failsafe"
			inc.Detail = fmt.Sprintf(
				"meter blind for %d periods (k=%d..%d): last-good hold then fail-safe descent (%d periods), %s; no true-power violations — blind window ridden out",
				b-a+1, recs[a].Period, recs[b].Period, failSafe, adaptDesc)
		default:
			inc.RootCause = "blind-window-hold"
			inc.Detail = fmt.Sprintf(
				"meter blind for %d periods (k=%d..%d): last-good hold with %s; no true-power violations",
				b-a+1, recs[a].Period, recs[b].Period, adaptDesc)
		}
		rep.Incidents = append(rep.Incidents, inc)
		a = b + 1
	}

	// --- Cap-violation clusters outside blind windows.
	for a := 0; a < n; {
		if covered[a] || !(violMeas[a] || violTrue[a]) {
			a++
			continue
		}
		b := a
		for b+1 < n && !covered[b+1] && (violMeas[b+1] || violTrue[b+1]) {
			b++
		}
		rep.Incidents = append(rep.Incidents, diagnoseViolation(recs, violMeas, violTrue, burst, a, b, measSlack, trueSlack, sigmaBefore))
		a = b + 1
	}

	// --- Actuator divergence runs.
	for a := 0; a < n; {
		if len(recs[a].ActuatorDiverged) == 0 {
			a++
			continue
		}
		b := a
		for b+1 < n && len(recs[b+1].ActuatorDiverged) > 0 {
			b++
		}
		knobs := map[int]bool{}
		faulted := false
		for i := a; i <= b; i++ {
			for _, k := range recs[i].ActuatorDiverged {
				knobs[k] = true
			}
			for _, f := range recs[i].Faults {
				if hasPrefix(f, "actuator") {
					faulted = true
				}
			}
		}
		var ks []int
		for k := range knobs {
			//lint:ignore determinism keys are sorted immediately below; output order does not depend on map order
			ks = append(ks, k)
		}
		sort.Ints(ks)
		inc := Incident{
			Kind:        "actuator-divergence",
			StartPeriod: recs[a].Period,
			EndPeriod:   recs[b].Period,
		}
		if faulted {
			inc.RootCause = "actuator-loss-fault"
			inc.Explained = true
			inc.Detail = fmt.Sprintf(
				"applied frequency diverged from command on knob(s) %v for %d periods (k=%d..%d) during an active actuator-loss fault",
				ks, b-a+1, recs[a].Period, recs[b].Period)
		} else {
			inc.RootCause = "unexplained-divergence"
			inc.Detail = fmt.Sprintf(
				"applied frequency diverged from command on knob(s) %v for %d periods (k=%d..%d) with no actuator fault active",
				ks, b-a+1, recs[a].Period, recs[b].Period)
		}
		rep.Incidents = append(rep.Incidents, inc)
		a = b + 1
	}

	// --- MPC infeasibility runs (the controller held its point).
	for a := 0; a < n; {
		if recs[a].Controller == nil || !recs[a].Controller.Infeasible {
			a++
			continue
		}
		b := a
		for b+1 < n && recs[b+1].Controller != nil && recs[b+1].Controller.Infeasible {
			b++
		}
		detail := recs[a].Controller.InfeasibleDetail
		if detail == "" {
			detail = "no solution within bounds"
		}
		rep.Incidents = append(rep.Incidents, Incident{
			Kind:        "mpc-infeasible",
			StartPeriod: recs[a].Period,
			EndPeriod:   recs[b].Period,
			RootCause:   "constraint-conflict",
			Explained:   true,
			Detail: fmt.Sprintf(
				"MPC subproblem infeasible for %d period(s) (k=%d..%d), controller held its operating point: %s",
				b-a+1, recs[a].Period, recs[b].Period, detail),
		})
		a = b + 1
	}

	// --- Per-GPU SLO pressure: the floor binding most of the run while
	// the SLO still misses means the cap and the SLO are in conflict.
	rep.Incidents = append(rep.Incidents, diagnoseSLOPressure(recs, in.Events)...)

	sort.SliceStable(rep.Incidents, func(i, j int) bool {
		if rep.Incidents[i].StartPeriod != rep.Incidents[j].StartPeriod {
			return rep.Incidents[i].StartPeriod < rep.Incidents[j].StartPeriod
		}
		return rep.Incidents[i].Kind < rep.Incidents[j].Kind
	})
	for _, inc := range rep.Incidents {
		if !inc.Explained {
			rep.Unexplained++
		}
	}
	return rep, nil
}

// diagnoseViolation attributes one violation cluster [a,b].
func diagnoseViolation(recs []DecisionRecord, violMeas, violTrue, burst []bool, a, b int, measSlack, trueSlack float64, sigmaBefore func(int) float64) Incident {
	worstMeasW, worstTrueW := 0.0, 0.0
	trueAny := false
	for i := a; i <= b; i++ {
		if ex := recs[i].MeasuredW - recs[i].SetpointW; violMeas[i] && ex > worstMeasW {
			worstMeasW = ex
		}
		if ex := recs[i].TruePowerW - recs[i].SetpointW; violTrue[i] && ex > worstTrueW {
			worstTrueW = ex
		}
		trueAny = trueAny || violTrue[i]
	}
	inc := Incident{
		Kind:        "cap-violation",
		StartPeriod: recs[a].Period,
		EndPeriod:   recs[b].Period,
	}
	where := fmt.Sprintf("violation at k=%d..%d (worst +%.1f W measured, +%.1f W true)",
		recs[a].Period, recs[b].Period, worstMeasW, worstTrueW)
	if a == b {
		where = fmt.Sprintf("violation at k=%d (+%.1f W measured, +%.1f W true)",
			recs[a].Period, worstMeasW, worstTrueW)
	}

	// Faults active in or just before the cluster explain it.
	faultSet := map[string]bool{}
	lead := a - 2
	if lead < 0 {
		lead = 0
	}
	for i := lead; i <= b; i++ {
		for _, f := range recs[i].Faults {
			faultSet[f] = true
		}
	}
	if len(faultSet) > 0 {
		var fs []string
		for f := range faultSet {
			//lint:ignore determinism keys are sorted immediately below; output order does not depend on map order
			fs = append(fs, f)
		}
		sort.Strings(fs)
		meterOnly := !trueAny
		for _, f := range fs {
			if !hasPrefix(f, "meter") {
				meterOnly = false
			}
		}
		if meterOnly {
			inc.RootCause = "meter-artifact"
			inc.Detail = fmt.Sprintf("%s: breaker-side power healthy; measured excursion during meter fault(s) %v — meter artifact, not a real violation", where, fs)
		} else {
			inc.RootCause = "fault-coincident"
			inc.Detail = fmt.Sprintf("%s: coincides with active fault(s) %v", where, fs)
		}
		inc.Explained = true
		return inc
	}

	// The cluster overlaps an announced load-burst window: the injected
	// arrival step drives power up faster than one control period can
	// absorb, and the controller pulls it back within the window. Same
	// standing as fault coincidence — a known injected disturbance.
	for i := a; i <= b; i++ {
		if i < len(burst) && burst[i] {
			inc.RootCause = "load-burst-transient"
			inc.Explained = true
			inc.Detail = fmt.Sprintf("%s: coincides with an injected load-burst window — arrival-step transient, controller recovering", where)
			return inc
		}
	}

	// Every period in the cluster uncontrolled: the node was declared
	// dead (heartbeats lost) and is flying open loop at its last
	// operating point. The rack plane holds a guard-band reservation for
	// exactly this excursion, so it is designed behavior, not a control
	// failure.
	allUncontrolled := true
	for i := a; i <= b; i++ {
		if !recs[i].Uncontrolled {
			allUncontrolled = false
			break
		}
	}
	if allUncontrolled {
		inc.RootCause = "node-dead-open-loop"
		inc.Explained = true
		inc.Detail = fmt.Sprintf("%s: node uncontrolled for the whole cluster (declared dead, flying open loop at its last operating point) — covered by the rack guard-band reservation", where)
		return inc
	}

	// The setpoint stepped down into the cluster (a hot budget
	// reconfiguration or reallocation) and power never exceeded the old
	// setpoint: the "violation" is the plant catching down to the new
	// cap, one settling transient, not an escape.
	if a > 0 {
		oldSet := recs[a-1].SetpointW
		if oldSet > recs[a].SetpointW {
			within := true
			for i := a; i <= b; i++ {
				if recs[i].MeasuredW > oldSet || recs[i].TruePowerW > oldSet {
					within = false
					break
				}
			}
			if within {
				inc.RootCause = "setpoint-step-transient"
				inc.Explained = true
				inc.Detail = fmt.Sprintf("%s: setpoint stepped down %.1f W → %.1f W at k=%d and power stayed under the old cap — settling transient after a reallocation or hot reconfiguration", where, oldSet, recs[a].SetpointW, recs[a].Period)
				return inc
			}
		}
	}

	// A reallocation squeezed the cap down under a plant that was
	// legitimately tracking its previous, higher setpoint: power never
	// escaped the envelope the recent caps allowed (trailing setpoint
	// ceiling plus the ordinary slack), the cap moved out from under it.
	// The duration bound keeps this honest — a controller that cannot
	// grind the plant down to a tightened cap within a couple of barrier
	// cycles is a real tracking failure and falls through.
	if b-a+1 <= 8 && a > 0 {
		lo := a - 6
		if lo < 0 {
			lo = 0
		}
		ceilW := 0.0
		for i := lo; i < a; i++ {
			if recs[i].SetpointW > ceilW {
				ceilW = recs[i].SetpointW
			}
		}
		if ceilW > recs[a].SetpointW {
			within := true
			for i := a; i <= b; i++ {
				if recs[i].MeasuredW > ceilW*(1+measSlack) || recs[i].TruePowerW > ceilW*(1+trueSlack) {
					within = false
					break
				}
			}
			if within {
				inc.RootCause = "cap-squeeze-transient"
				inc.Explained = true
				inc.Detail = fmt.Sprintf("%s: cap reallocated down from a %.1f W trailing ceiling the plant was tracking, and power never escaped that ceiling's slack — squeeze transient, controller grinding down to the new cap", where, ceilW)
				return inc
			}
		}
	}

	// A reallocation or hot reconfiguration moved the setpoint at (or one
	// barrier before) the cluster and the controller caught the plant
	// within a few periods: a tracking transient, not an escape. One
	// actuation period of delay means power chases a moving setpoint from
	// behind, so a brief excursion bounded by the step size (plus the
	// ordinary slack) right after a step is the expected cost of
	// rack-level reallocation under shifting load. Sustained or outsized
	// excursions fall through to the real diagnoses below.
	if b-a+1 <= 3 {
		stepAt := -1
		for i := a; i >= 1 && i >= a-2; i-- {
			if math.Abs(recs[i].SetpointW-recs[i-1].SetpointW) > 1e-9 {
				stepAt = i
				break
			}
		}
		if stepAt > 0 {
			dW := math.Abs(recs[stepAt].SetpointW - recs[stepAt-1].SetpointW)
			worst := worstMeasW
			if worstTrueW > worst {
				worst = worstTrueW
			}
			if dW > 0 && worst <= 2*dW+0.02*recs[a].SetpointW {
				inc.RootCause = "reallocation-transient"
				inc.Explained = true
				inc.Detail = fmt.Sprintf("%s: setpoint moved %.1f W → %.1f W at k=%d and the excursion stayed within the step's tracking bound for ≤3 periods — reallocation tracking transient", where, recs[stepAt-1].SetpointW, recs[stepAt].SetpointW, recs[stepAt].Period)
				return inc
			}
		}
	}

	// A violation in the first few records of the stream is the
	// controller pulling the plant down from its initial operating point
	// — cold-start settling, not an anomaly. Position in the stream, not
	// the absolute period, is what matters: a node that joins a running
	// rack starts cold at its join period.
	if a < 5 {
		inc.RootCause = "cold-start-transient"
		inc.Explained = true
		inc.Detail = fmt.Sprintf("%s: within the first periods of the stream, controller still pulling the plant down from its uncapped operating point — cold-start settling", where)
		return inc
	}

	// Every GPU pressed onto its SLO floor while power escaped: the cap
	// is infeasible under the latency constraints.
	for i := a; i <= b; i++ {
		ct := recs[i].Controller
		if ct == nil || len(ct.Knobs) < 2 {
			continue
		}
		allFloor := true
		for k := 1; k < len(ct.Knobs); k++ {
			if !(ct.Knobs[k].SLOFloor && ct.Knobs[k].AtLower) {
				allFloor = false
				break
			}
		}
		if allFloor {
			inc.RootCause = "slo-floor-binding"
			inc.Explained = true
			inc.Detail = fmt.Sprintf("%s: every GPU held at its SLO-derived frequency floor — cap infeasible with this SLO", where)
			return inc
		}
	}

	// Controller holding through an infeasible subproblem.
	for i := a; i <= b; i++ {
		if ct := recs[i].Controller; ct != nil && ct.Infeasible {
			inc.RootCause = "mpc-infeasible-hold"
			inc.Explained = true
			inc.Detail = fmt.Sprintf("%s: MPC subproblem infeasible, controller holding its operating point", where)
			return inc
		}
	}

	// A one-or-two-period excursion whose size matches the one-step
	// prediction error of the same periods, gone immediately after: an
	// unpredicted arrival spike pushed the plant over the cap for one
	// control period and the next correction rejected it. That is the
	// noise floor of an open-loop arrival process, not a control failure.
	// Sustained excursions or ones the model predicted (err ≪ excursion,
	// meaning the controller commanded the violation) fall through.
	if b-a+1 <= 2 && a >= 5 {
		worst := worstMeasW
		if worstTrueW > worst {
			worst = worstTrueW
		}
		spikeErrW := 0.0
		for i := a; i <= b; i++ {
			if recs[i].HaveOneStepErr && recs[i].OneStepErrW > spikeErrW {
				spikeErrW = recs[i].OneStepErrW
			}
		}
		// The noise envelope is what this plant has demonstrated: the
		// largest period-to-period power swing over the trailing window.
		// A spiky arrival process earns a wider envelope than a smooth
		// one; a fixed fraction of the setpoint is the floor.
		envelopeW := 0.05 * recs[a].SetpointW
		lo := a - 20
		if lo < 0 {
			lo = 0
		}
		for i := lo; i < a-1; i++ {
			if s := math.Abs(recs[i+1].TruePowerW - recs[i].TruePowerW); 1.2*s > envelopeW {
				envelopeW = 1.2 * s
			}
		}
		// A cap that stepped down at (or just before) the spike widens the
		// allowance by the step: the excursion then decomposes into one
		// period of tracking lag behind the moved setpoint plus the
		// unpredicted disturbance, each inside its own bound.
		for i := a; i > 0 && i >= a-2; i-- {
			if d := recs[i-1].SetpointW - recs[i].SetpointW; d > 0 {
				envelopeW += d
				break
			}
		}
		if worst <= envelopeW && spikeErrW >= 0.5*worst {
			inc.RootCause = "arrival-noise-transient"
			inc.Explained = true
			inc.Detail = fmt.Sprintf("%s: excursion matches an unpredicted +%.1f W disturbance inside the plant's %.1f W trailing noise envelope and is rejected the next period — stochastic arrival noise at the control loop's noise floor", where, spikeErrW, envelopeW)
			return inc
		}
	}

	// Prediction error blowout against the trailing window.
	maxErrW := 0.0
	for i := a; i <= b; i++ {
		if recs[i].HaveOneStepErr {
			if e := math.Abs(recs[i].TrueOneStepErrW); e > maxErrW {
				maxErrW = e
			}
		}
	}
	if sigma := sigmaBefore(a); sigma > 0 && maxErrW > 3*sigma {
		inc.RootCause = "model-mismatch"
		inc.Detail = fmt.Sprintf("%s: one-step prediction error %.1f W is %.1fσ above the trailing window — model mismatch or unmodeled disturbance", where, maxErrW, maxErrW/sigma)
		return inc
	}

	// Measured-only excursion with no fault, no binding constraint, and
	// ordinary prediction error, while the breaker-side power stayed
	// inside its slack: meter noise, not a control failure.
	if !trueAny {
		inc.RootCause = "meter-noise"
		inc.Explained = true
		inc.Detail = fmt.Sprintf("%s: breaker-side power stayed within slack and prediction error is ordinary — measured-only excursion consistent with meter noise", where)
		return inc
	}

	inc.RootCause = "unexplained"
	inc.Detail = where + ": no active fault, binding SLO floor, infeasibility, or prediction-error anomaly found"
	return inc
}

// diagnoseSLOPressure emits one incident per GPU whose SLO floor binds
// most of the run while the SLO still misses.
func diagnoseSLOPressure(recs []DecisionRecord, events []telemetry.Event) []Incident {
	nGPU := 0
	for _, rec := range recs {
		if len(rec.CommandedGPUMHz) > nGPU {
			nGPU = len(rec.CommandedGPUMHz)
		}
	}
	if nGPU == 0 {
		return nil
	}
	floorActive := make([]int, nGPU)
	ctrlPeriods := make([]int, nGPU)
	misses := make([]int, nGPU)
	haveRecMisses := false
	for _, rec := range recs {
		for _, g := range rec.SLOMissGPUs {
			if g >= 0 && g < nGPU {
				misses[g]++
				haveRecMisses = true
			}
		}
		if ct := rec.Controller; ct != nil {
			for g := 0; g < nGPU && 1+g < len(ct.Knobs); g++ {
				ctrlPeriods[g]++
				if ct.Knobs[1+g].SLOFloor && ct.Knobs[1+g].AtLower {
					floorActive[g]++
				}
			}
		}
	}
	// Older flight records lack slo_miss_gpus; fall back to events.
	if !haveRecMisses {
		for _, e := range events {
			if e.Type == telemetry.EventSLOMiss && e.Device >= 0 && e.Device < nGPU {
				misses[e.Device]++
			}
		}
	}
	var out []Incident
	first, last := recs[0].Period, recs[len(recs)-1].Period
	for g := 0; g < nGPU; g++ {
		if ctrlPeriods[g] < 10 || misses[g] == 0 {
			continue
		}
		frac := float64(floorActive[g]) / float64(ctrlPeriods[g])
		if frac < 0.5 {
			continue
		}
		out = append(out, Incident{
			Kind:        "slo-pressure",
			StartPeriod: first,
			EndPeriod:   last,
			RootCause:   "cap-infeasible-with-slo",
			Explained:   true,
			Detail: fmt.Sprintf("SLO misses on gpu%d (%d periods): floor constraint active %.0f%% of periods — cap infeasible with this SLO",
				g, misses[g], frac*100),
		})
	}
	return out
}

// buildHealth computes the run-level health summary.
func buildHealth(recs []DecisionRecord, violMeas, violTrue []bool, events []telemetry.Event) HealthReport {
	h := HealthReport{Periods: len(recs)}
	nKnobs := 0
	for i, rec := range recs {
		if violMeas[i] {
			h.MeasuredViolations++
		}
		if violTrue[i] {
			h.TrueViolations++
		}
		h.SLOMisses += len(rec.SLOMissGPUs)
		switch {
		case rec.Uncontrolled:
			h.UncontrolledPeriods++
		case rec.FailSafe:
			h.FailSafePeriods++
		}
		if rec.Degraded {
			h.DegradedPeriods++
		}
		if ct := rec.Controller; ct != nil {
			h.ControlledPeriods++
			if ct.Infeasible {
				h.InfeasiblePeriods++
			}
			if ct.DeadbandHold {
				h.DeadbandPeriods++
			}
			if len(ct.Knobs) > nKnobs {
				nKnobs = len(ct.Knobs)
			}
		}
	}
	if h.SLOMisses == 0 {
		for _, e := range events {
			if e.Type == telemetry.EventSLOMiss {
				h.SLOMisses++
			}
		}
	}

	// One-step prediction RMSE over scored fresh-meter periods, split by
	// record position to show trend.
	var errs []float64
	for _, rec := range recs {
		if rec.HaveOneStepErr && rec.MeterStale == 0 {
			errs = append(errs, rec.OneStepErrW)
		}
	}
	h.OneStepSamples = len(errs)
	h.OneStepRMSEW = rmse(errs)
	if len(errs) >= 2 {
		h.FirstHalfRMSEW = rmse(errs[:len(errs)/2])
		h.SecondHalfRMSEW = rmse(errs[len(errs)/2:])
	}

	// Constraint-activity table and weight churn.
	if nKnobs > 0 {
		atLower := make([]int, nKnobs)
		atUpper := make([]int, nKnobs)
		sloFloor := make([]int, nKnobs)
		pinned := make([]int, nKnobs)
		weightSum := make([]float64, nKnobs)
		samples := make([]int, nKnobs)
		var churnSum float64
		var churnN int
		var prev []KnobConstraint
		for _, rec := range recs {
			ct := rec.Controller
			if ct == nil {
				prev = nil
				continue
			}
			for k := 0; k < len(ct.Knobs) && k < nKnobs; k++ {
				samples[k]++
				weightSum[k] += ct.Knobs[k].WeightR
				if ct.Knobs[k].AtLower {
					atLower[k]++
				}
				if ct.Knobs[k].AtUpper {
					atUpper[k]++
				}
				if ct.Knobs[k].SLOFloor {
					sloFloor[k]++
				}
				if ct.Knobs[k].Pinned {
					pinned[k]++
				}
			}
			if prev != nil && len(prev) == len(ct.Knobs) {
				for k := range ct.Knobs {
					churnSum += math.Abs(ct.Knobs[k].WeightR - prev[k].WeightR)
					churnN++
				}
			}
			prev = ct.Knobs
		}
		if churnN > 0 {
			h.WeightChurn = churnSum / float64(churnN)
		}
		for k := 0; k < nKnobs; k++ {
			if samples[k] == 0 {
				continue
			}
			name := "cpu"
			if k > 0 {
				name = fmt.Sprintf("gpu%d", k-1)
			}
			nf := float64(samples[k])
			h.Knobs = append(h.Knobs, KnobActivity{
				Knob:         name,
				AtLowerFrac:  float64(atLower[k]) / nf,
				AtUpperFrac:  float64(atUpper[k]) / nf,
				SLOFloorFrac: float64(sloFloor[k]) / nf,
				PinnedFrac:   float64(pinned[k]) / nf,
				MeanWeightR:  weightSum[k] / nf,
			})
		}
	}
	return h
}

func rmse(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var ss float64
	for _, v := range vals {
		ss += v * v
	}
	return math.Sqrt(ss / float64(len(vals)))
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

// WriteText renders the report for humans, deterministically.
func (r *Report) WriteText(w io.Writer) error {
	p := &printer{w: w}
	h := r.Health
	p.f("capgpu-doctor report\n")
	p.f("====================\n")
	p.f("periods: %d (controlled %d, degraded %d, fail-safe %d, uncontrolled %d, infeasible %d)\n",
		h.Periods, h.ControlledPeriods, h.DegradedPeriods, h.FailSafePeriods, h.UncontrolledPeriods, h.InfeasiblePeriods)
	p.f("cap: %d measured violation(s), %d true violation(s); %d SLO miss(es)\n",
		h.MeasuredViolations, h.TrueViolations, h.SLOMisses)
	if h.OneStepSamples > 0 {
		trend := "stable"
		if h.SecondHalfRMSEW > 2*h.FirstHalfRMSEW && h.SecondHalfRMSEW > 5 {
			trend = "DEGRADING"
		} else if h.FirstHalfRMSEW > 2*h.SecondHalfRMSEW && h.FirstHalfRMSEW > 5 {
			trend = "improving (adaptation converging)"
		}
		p.f("one-step prediction error: RMSE %.2f W over %d samples (first half %.2f, second half %.2f — %s)\n",
			h.OneStepRMSEW, h.OneStepSamples, h.FirstHalfRMSEW, h.SecondHalfRMSEW, trend)
	}
	if h.ControlledPeriods > 0 {
		p.f("weight churn: %.4f |ΔR|/knob/period; deadband hold %.0f%% of controlled periods\n",
			h.WeightChurn, 100*float64(h.DeadbandPeriods)/float64(h.ControlledPeriods))
	}
	if len(h.Knobs) > 0 {
		p.f("\nconstraint activity (%% of controlled periods):\n")
		p.f("  %-6s %9s %9s %10s %7s %8s\n", "knob", "at-lower", "at-upper", "slo-floor", "pinned", "mean-R")
		for _, k := range h.Knobs {
			p.f("  %-6s %8.0f%% %8.0f%% %9.0f%% %6.0f%% %8.3f\n",
				k.Knob, 100*k.AtLowerFrac, 100*k.AtUpperFrac, 100*k.SLOFloorFrac, 100*k.PinnedFrac, k.MeanWeightR)
		}
	}
	if len(r.Incidents) == 0 {
		p.f("\nincidents: none\n")
	} else {
		p.f("\nincidents (%d, unexplained %d):\n", len(r.Incidents), r.Unexplained)
		for _, inc := range r.Incidents {
			tag := "explained"
			if !inc.Explained {
				tag = "UNEXPLAINED"
			}
			p.f("  [%s] %s (%s): %s\n", tag, inc.Kind, inc.RootCause, inc.Detail)
		}
	}
	if r.Unexplained > 0 {
		p.f("\nverdict: %d UNEXPLAINED anomaly(ies) — exit 2\n", r.Unexplained)
	} else {
		p.f("\nverdict: clean — exit 0\n")
	}
	return p.Err()
}

// printer accumulates the first write error across Fprintf calls.
type printer struct {
	w   io.Writer
	err error
}

func (p *printer) f(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// Err surfaces the first write error (the latched-error contract).
func (p *printer) Err() error { return p.err }
