package flight

import (
	"testing"

	"repro/internal/telemetry"
)

func TestAlertWindows(t *testing.T) {
	events := []telemetry.Event{
		{Type: telemetry.EventAlertFiring, Node: "n0", Detail: telemetry.AlertMeterStale, Period: 5},
		{Type: telemetry.EventAlertFiring, Node: "n1", Detail: telemetry.AlertCapSustain, Period: 7},
		{Type: telemetry.EventAlertResolved, Node: "n0", Detail: telemetry.AlertMeterStale, Period: 9},
		{Type: telemetry.EventAlertFiring, Node: "n0", Detail: telemetry.AlertMeterStale, Period: 20},
	}
	ws := AlertWindows(events)
	if len(ws) != 3 {
		t.Fatalf("windows = %+v", ws)
	}
	if ws[0] != (AlertWindow{Node: "n0", Rule: telemetry.AlertMeterStale, Start: 5, End: 9}) {
		t.Errorf("resolved window = %+v", ws[0])
	}
	if ws[1].End != 7 {
		t.Errorf("unresolved n1 window should close at its firing period: %+v", ws[1])
	}
	if ws[2].Start != 20 || ws[2].End != 20 {
		t.Errorf("re-fire window = %+v", ws[2])
	}
}

func TestCheckAlertsCorrespondence(t *testing.T) {
	alerts := []AlertWindow{
		{Node: "n0", Rule: telemetry.AlertMeterStale, Start: 12, End: 18},  // matches meter-blind 10-20
		{Node: "n0", Rule: telemetry.AlertCapSustain, Start: 40, End: 41},  // orphan: no incident nearby
		{Node: "n0", Rule: "budget-headroom", Start: 5, End: 9},            // unmapped: skipped
		{Node: "other", Rule: telemetry.AlertMeterStale, Start: 0, End: 3}, // different node: skipped
	}
	incidents := []Incident{
		{Kind: "meter-blind", StartPeriod: 10, EndPeriod: 20},
		{Kind: "slo-pressure", StartPeriod: 60, EndPeriod: 70},  // long, alertable, no alert → missed
		{Kind: "slo-pressure", StartPeriod: 80, EndPeriod: 81},  // too short for the reverse check
		{Kind: "mpc-infeasible", StartPeriod: 5, EndPeriod: 30}, // not alertable
	}
	res := CheckAlerts(AlertCheckInput{Node: "n0", Alerts: alerts, Incidents: incidents})
	if res.AlertsMatched != 1 {
		t.Errorf("AlertsMatched = %d, want 1", res.AlertsMatched)
	}
	if len(res.OrphanAlerts) != 1 || res.OrphanAlerts[0].Rule != telemetry.AlertCapSustain {
		t.Errorf("OrphanAlerts = %+v", res.OrphanAlerts)
	}
	if res.IncidentsMatched != 1 {
		t.Errorf("IncidentsMatched = %d, want 1 (the meter-blind window)", res.IncidentsMatched)
	}
	if len(res.MissedIncidents) != 1 || res.MissedIncidents[0].Kind != "slo-pressure" {
		t.Errorf("MissedIncidents = %+v", res.MissedIncidents)
	}
	if res.Ok() || res.Err() == nil {
		t.Error("mismatched result reported clean")
	}

	clean := CheckAlerts(AlertCheckInput{
		Node:      "n0",
		Alerts:    []AlertWindow{{Node: "n0", Rule: telemetry.AlertMeterStale, Start: 12, End: 18}},
		Incidents: []Incident{{Kind: "meter-blind", StartPeriod: 10, EndPeriod: 20}},
	})
	if !clean.Ok() || clean.Err() != nil {
		t.Errorf("clean correspondence flagged: %v", clean.Err())
	}

	// The margin widens the overlap: an alert firing 6 periods after the
	// incident closed still matches at the default margin 8.
	margin := CheckAlerts(AlertCheckInput{
		Node:      "n0",
		Alerts:    []AlertWindow{{Node: "n0", Rule: telemetry.AlertCapSustain, Start: 26, End: 27}},
		Incidents: []Incident{{Kind: "cap-violation", StartPeriod: 10, EndPeriod: 20}},
	})
	if !margin.Ok() {
		t.Errorf("margin overlap rejected: %v", margin.Err())
	}
}
