package flight

import (
	"testing"

	"repro/internal/telemetry"
)

func TestAlertWindows(t *testing.T) {
	events := []telemetry.Event{
		{Type: telemetry.EventAlertFiring, Node: "n0", Detail: telemetry.AlertMeterStale, Period: 5},
		{Type: telemetry.EventAlertFiring, Node: "n1", Detail: telemetry.AlertCapSustain, Period: 7},
		{Type: telemetry.EventAlertResolved, Node: "n0", Detail: telemetry.AlertMeterStale, Period: 9},
		{Type: telemetry.EventAlertFiring, Node: "n0", Detail: telemetry.AlertMeterStale, Period: 20},
	}
	ws := AlertWindows(events)
	if len(ws) != 3 {
		t.Fatalf("windows = %+v", ws)
	}
	if ws[0] != (AlertWindow{Node: "n0", Rule: telemetry.AlertMeterStale, Start: 5, End: 9}) {
		t.Errorf("resolved window = %+v", ws[0])
	}
	if ws[1].End != 7 {
		t.Errorf("unresolved n1 window should close at its firing period: %+v", ws[1])
	}
	if ws[2].Start != 20 || ws[2].End != 20 {
		t.Errorf("re-fire window = %+v", ws[2])
	}
}

func TestCheckAlertsCorrespondence(t *testing.T) {
	alerts := []AlertWindow{
		{Node: "n0", Rule: telemetry.AlertMeterStale, Start: 12, End: 18},  // matches meter-blind 10-20
		{Node: "n0", Rule: telemetry.AlertCapSustain, Start: 40, End: 41},  // orphan: no incident nearby
		{Node: "n0", Rule: "budget-headroom", Start: 5, End: 9},            // unmapped: skipped
		{Node: "other", Rule: telemetry.AlertMeterStale, Start: 0, End: 3}, // different node: skipped
	}
	incidents := []Incident{
		{Kind: "meter-blind", StartPeriod: 10, EndPeriod: 20},
		{Kind: "slo-pressure", StartPeriod: 60, EndPeriod: 70},  // long, alertable, no alert → missed
		{Kind: "slo-pressure", StartPeriod: 80, EndPeriod: 81},  // too short for the reverse check
		{Kind: "mpc-infeasible", StartPeriod: 5, EndPeriod: 30}, // not alertable
	}
	res := CheckAlerts(AlertCheckInput{Node: "n0", Alerts: alerts, Incidents: incidents})
	if res.AlertsMatched != 1 {
		t.Errorf("AlertsMatched = %d, want 1", res.AlertsMatched)
	}
	if len(res.OrphanAlerts) != 1 || res.OrphanAlerts[0].Rule != telemetry.AlertCapSustain {
		t.Errorf("OrphanAlerts = %+v", res.OrphanAlerts)
	}
	if res.IncidentsMatched != 1 {
		t.Errorf("IncidentsMatched = %d, want 1 (the meter-blind window)", res.IncidentsMatched)
	}
	if len(res.MissedIncidents) != 1 || res.MissedIncidents[0].Kind != "slo-pressure" {
		t.Errorf("MissedIncidents = %+v", res.MissedIncidents)
	}
	if res.Ok() || res.Err() == nil {
		t.Error("mismatched result reported clean")
	}

	clean := CheckAlerts(AlertCheckInput{
		Node:      "n0",
		Alerts:    []AlertWindow{{Node: "n0", Rule: telemetry.AlertMeterStale, Start: 12, End: 18}},
		Incidents: []Incident{{Kind: "meter-blind", StartPeriod: 10, EndPeriod: 20}},
	})
	if !clean.Ok() || clean.Err() != nil {
		t.Errorf("clean correspondence flagged: %v", clean.Err())
	}

	// The margin widens the overlap: an alert firing 6 periods after the
	// incident closed still matches at the default margin 8.
	margin := CheckAlerts(AlertCheckInput{
		Node:      "n0",
		Alerts:    []AlertWindow{{Node: "n0", Rule: telemetry.AlertCapSustain, Start: 26, End: 27}},
		Incidents: []Incident{{Kind: "cap-violation", StartPeriod: 10, EndPeriod: 20}},
	})
	if !margin.Ok() {
		t.Errorf("margin overlap rejected: %v", margin.Err())
	}
}

// TestCheckAlertsMarginBoundary pins the widened-overlap fencepost:
// a gap of exactly MarginPeriods between alert and incident still
// matches, one period more does not — in both directions.
func TestCheckAlertsMarginBoundary(t *testing.T) {
	const margin = 8
	inc := Incident{Kind: "cap-violation", StartPeriod: 10, EndPeriod: 20}

	at := CheckAlerts(AlertCheckInput{
		Node:          "n0",
		Alerts:        []AlertWindow{{Node: "n0", Rule: telemetry.AlertCapSustain, Start: inc.EndPeriod + margin, End: inc.EndPeriod + margin + 2}},
		Incidents:     []Incident{inc},
		MarginPeriods: margin,
	})
	if !at.Ok() || at.AlertsMatched != 1 || at.IncidentsMatched != 1 {
		t.Errorf("gap == margin rejected: %v", at.Err())
	}

	past := CheckAlerts(AlertCheckInput{
		Node:          "n0",
		Alerts:        []AlertWindow{{Node: "n0", Rule: telemetry.AlertCapSustain, Start: inc.EndPeriod + margin + 1, End: inc.EndPeriod + margin + 3}},
		Incidents:     []Incident{inc},
		MarginPeriods: margin,
	})
	if past.Ok() {
		t.Error("gap == margin+1 matched in both directions")
	}
	if len(past.OrphanAlerts) != 1 || len(past.MissedIncidents) != 1 {
		t.Errorf("gap == margin+1: orphans %+v, missed %+v", past.OrphanAlerts, past.MissedIncidents)
	}

	// The other side of the incident: an alert resolving exactly margin
	// periods before the incident starts still matches.
	before := CheckAlerts(AlertCheckInput{
		Node:          "n0",
		Alerts:        []AlertWindow{{Node: "n0", Rule: telemetry.AlertCapSustain, Start: 0, End: inc.StartPeriod - margin}},
		Incidents:     []Incident{inc},
		MarginPeriods: margin,
	})
	if !before.Ok() {
		t.Errorf("leading gap == margin rejected: %v", before.Err())
	}
}

// TestCheckAlertsZeroLengthRun: a run with no alerts and no incidents
// is vacuously clean, not a mismatch.
func TestCheckAlertsZeroLengthRun(t *testing.T) {
	res := CheckAlerts(AlertCheckInput{Node: "n0"})
	if !res.Ok() || res.Err() != nil {
		t.Fatalf("empty run flagged: %v", res.Err())
	}
	if res.AlertsMatched != 0 || res.IncidentsMatched != 0 {
		t.Fatalf("empty run matched something: %+v", res)
	}
	if ws := AlertWindows(nil); len(ws) != 0 {
		t.Fatalf("AlertWindows(nil) = %+v", ws)
	}
}

// TestCheckAlertsFinalPeriodFiring: an alert that fires in the run's
// last period never sees a resolved event; its window collapses to the
// firing period and must still match an incident that runs to the end.
func TestCheckAlertsFinalPeriodFiring(t *testing.T) {
	const last = 99
	events := []telemetry.Event{
		{Type: telemetry.EventAlertFiring, Node: "n0", Detail: telemetry.AlertSLOBurn, Period: last},
	}
	ws := AlertWindows(events)
	if len(ws) != 1 || ws[0].Start != last || ws[0].End != last {
		t.Fatalf("final-period window = %+v", ws)
	}
	res := CheckAlerts(AlertCheckInput{
		Node:      "n0",
		Alerts:    ws,
		Incidents: []Incident{{Kind: "slo-pressure", StartPeriod: 92, EndPeriod: last}},
	})
	if !res.Ok() || res.AlertsMatched != 1 {
		t.Fatalf("final-period firing not matched: %v", res.Err())
	}
}
