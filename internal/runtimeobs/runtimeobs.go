// Package runtimeobs samples the Go runtime's self-observability
// gauges — live goroutines, heap bytes in use, cumulative GC pause,
// process uptime — into a telemetry registry as capgpu_runtime_*
// series. It is wired at the cmd layer only: runtime state is
// inherently nondeterministic, so nothing inside the seeded-replay
// packages (which the determinism analyzer scopes by import path) may
// touch it. Sampling happens at scrape time via Wrap, so an idle
// process costs nothing between scrapes.
package runtimeobs

import (
	"net/http"
	"runtime"
	"time"

	"repro/internal/telemetry"
)

// Sampler refreshes the capgpu_runtime_* gauges on demand.
type Sampler struct {
	goroutines telemetry.Gauge
	heapBytes  telemetry.Gauge
	gcPauseS   telemetry.Gauge
	uptimeS    telemetry.Gauge
	start      time.Time
}

// Attach registers the runtime gauges on the registry and returns the
// sampler that refreshes them.
func Attach(reg *telemetry.Registry) *Sampler {
	return &Sampler{
		goroutines: reg.Gauge("capgpu_runtime_goroutines", "Goroutines currently live.", nil),
		heapBytes:  reg.Gauge("capgpu_runtime_heap_bytes", "Heap bytes in use (runtime.MemStats.HeapAlloc).", nil),
		gcPauseS:   reg.Gauge("capgpu_runtime_gc_pause_seconds_total", "Cumulative GC stop-the-world pause seconds.", nil),
		uptimeS:    reg.Gauge("capgpu_runtime_uptime_seconds", "Process uptime in seconds.", nil),
		start:      time.Now(),
	}
}

// Sample reads the runtime and updates the gauges.
func (s *Sampler) Sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.goroutines.Set(float64(runtime.NumGoroutine()))
	s.heapBytes.Set(float64(ms.HeapAlloc))
	s.gcPauseS.Set(float64(ms.PauseTotalNs) / 1e9)
	s.uptimeS.Set(time.Since(s.start).Seconds())
}

// Wrap refreshes the gauges before every request to next, so a
// /metrics scrape always exports current runtime state.
func (s *Sampler) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.Sample()
		next.ServeHTTP(w, r)
	})
}
