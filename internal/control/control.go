// Package control provides the classic control-theoretic substrate the
// baselines and the stability analysis build on: proportional control
// with pole placement (the GPU-Only and CPU-Only baselines of §6.1
// follow Lefurgy et al.'s server power controller), and the §4.4
// closed-loop pole analysis that bounds how far the true plant gains may
// drift from the identified model before stability is lost.
package control

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// PolePlacementGain returns the proportional gain K for the first-order
// power plant Δp = g·Δf under the control law d = K·(P_s − p), placing
// the closed-loop pole at the requested location:
//
//	p(k+1) = p(k) + g·K·(P_s − p(k))  ⇒  pole = 1 − g·K.
//
// The paper's baselines choose the pole "that minimizes oscillations";
// pole ∈ (0, 1) gives monotone convergence, with smaller poles settling
// faster but amplifying noise.
func PolePlacementGain(plantGain, pole float64) (float64, error) {
	if plantGain == 0 {
		return 0, fmt.Errorf("control: zero plant gain")
	}
	if pole < 0 || pole >= 1 {
		return 0, fmt.Errorf("control: pole %g outside [0, 1)", pole)
	}
	return (1 - pole) / plantGain, nil
}

// ScalarPole returns the closed-loop pole 1 − Σ A_i·K_i of the
// multi-knob power loop when every knob moves according to
// d_i = K_i·(P_s − p).
func ScalarPole(plantGains, controllerGains []float64) (float64, error) {
	if len(plantGains) != len(controllerGains) {
		return 0, fmt.Errorf("control: %d plant gains vs %d controller gains", len(plantGains), len(controllerGains))
	}
	return 1 - mat.Dot(plantGains, controllerGains), nil
}

// Proportional is a single-knob proportional power controller.
type Proportional struct {
	Gain float64 // frequency units per Watt of error
}

// NewProportional builds a proportional controller by pole placement.
func NewProportional(plantGain, pole float64) (*Proportional, error) {
	k, err := PolePlacementGain(plantGain, pole)
	if err != nil {
		return nil, err
	}
	return &Proportional{Gain: k}, nil
}

// Delta returns the frequency increment for the measured error.
func (p *Proportional) Delta(setpointW, measuredW float64) float64 {
	return p.Gain * (setpointW - measuredW)
}

// StabilityReport summarizes the §4.4 analysis for one uniform or
// per-device gain perturbation.
type StabilityReport struct {
	Pole   float64
	Stable bool
}

// UniformGainRange returns the interval (lo, hi) of uniform plant-gain
// scaling s (true gains A′ = s·A) for which the closed loop
// p(k+1) = p(k) − s·(A·K)·(p(k) − P_s) remains stable. Following §4.4:
// the pole is 1 − s·(A·K), stable iff it lies strictly inside the unit
// circle, i.e. s·(A·K) ∈ (0, 2).
func UniformGainRange(plantGains, controllerGains []float64) (lo, hi float64, err error) {
	if len(plantGains) != len(controllerGains) {
		return 0, 0, fmt.Errorf("control: %d plant gains vs %d controller gains", len(plantGains), len(controllerGains))
	}
	ak := mat.Dot(plantGains, controllerGains)
	if ak <= 0 {
		return 0, 0, fmt.Errorf("control: nominal loop gain %g not positive; controller unstable at nominal gains", ak)
	}
	return 0, 2 / ak, nil
}

// PerDeviceGainBound returns the admissible range (lo, hi) for device
// i's gain factor g_i (true gain g_i·A_i) with every other device at its
// nominal gain. The pole is affine in g_i:
//
//	pole(g_i) = 1 − (Σ_{j≠i} A_j·K_j + g_i·A_i·K_i).
func PerDeviceGainBound(plantGains, controllerGains []float64, i int) (lo, hi float64, err error) {
	if len(plantGains) != len(controllerGains) {
		return 0, 0, fmt.Errorf("control: gain vector lengths differ")
	}
	if i < 0 || i >= len(plantGains) {
		return 0, 0, fmt.Errorf("control: device index %d out of range %d", i, len(plantGains))
	}
	rest := 0.0
	for j := range plantGains {
		if j != i {
			rest += plantGains[j] * controllerGains[j]
		}
	}
	self := plantGains[i] * controllerGains[i]
	if self == 0 {
		// Device i has no influence; stability depends only on the rest.
		if rest > 0 && rest < 2 {
			return math.Inf(-1), math.Inf(1), nil
		}
		return 0, 0, fmt.Errorf("control: loop unstable regardless of device %d", i)
	}
	// Need 0 < rest + g_i·self < 2.
	a := -rest / self
	b := (2 - rest) / self
	if self < 0 {
		a, b = b, a
	}
	return a, b, nil
}

// PoleLocus evaluates the closed-loop pole across a sweep of uniform
// gain scales, mirroring §4.4's "tracking how the poles shift as g_i
// changes".
func PoleLocus(plantGains, controllerGains, scales []float64) ([]StabilityReport, error) {
	ak := mat.Dot(plantGains, controllerGains)
	if len(plantGains) != len(controllerGains) {
		return nil, fmt.Errorf("control: gain vector lengths differ")
	}
	out := make([]StabilityReport, len(scales))
	for i, s := range scales {
		pole := 1 - s*ak
		out[i] = StabilityReport{Pole: pole, Stable: math.Abs(pole) < 1}
	}
	return out, nil
}

// ClosedLoopMatrix builds the state matrix of the full closed loop for a
// linear state-feedback controller with input memory: state
// x = [p − P_s, d(k−1), ..., d(k−M+1)] evolving under true plant gains
// A′ and feedback d(k) = −K_p·(p − P_s) − Σ_m K_m·d(k−m). The matrix's
// eigenvalues are the poles §4.4 inspects; compute them with
// StateSpacePoles.
func ClosedLoopMatrix(truePlant []float64, kp []float64, kmem [][][]float64) (*mat.Mat, error) {
	n := len(truePlant)
	if len(kp) != n {
		return nil, fmt.Errorf("control: kp has %d entries, want %d", len(kp), n)
	}
	m := len(kmem) // memory depth
	dim := 1 + n*m
	cl := mat.New(dim, dim)
	// d(k) = -kp·e - Σ_m Kmem[m]·d(k-1-m), e' = e + A'·d(k).
	// Row 0: e' = e + A'·d(k) = (1 - A'·kp)·e - Σ A'·Kmem[m]·d_mem.
	cl.Set(0, 0, 1-mat.Dot(truePlant, kp))
	for mm := 0; mm < m; mm++ {
		for j := 0; j < n; j++ {
			// coefficient of d(k-1-mm)[j] in e': -Σ_i A'_i·Kmem[mm][i][j]
			c := 0.0
			for i := 0; i < n; i++ {
				c -= truePlant[i] * kmem[mm][i][j]
			}
			cl.Set(0, 1+mm*n+j, c)
		}
	}
	// Rows for the newest memory block: d(k) itself.
	if m > 0 {
		for i := 0; i < n; i++ {
			cl.Set(1+i, 0, -kp[i])
			for mm := 0; mm < m; mm++ {
				for j := 0; j < n; j++ {
					cl.Set(1+i, 1+mm*n+j, -kmem[mm][i][j])
				}
			}
		}
		// Shift older memory blocks.
		for mm := 1; mm < m; mm++ {
			for i := 0; i < n; i++ {
				cl.Set(1+mm*n+i, 1+(mm-1)*n+i, 1)
			}
		}
	}
	return cl, nil
}

// StateSpacePoles returns the eigenvalues of a closed-loop matrix and
// whether all lie strictly inside the unit circle.
func StateSpacePoles(cl *mat.Mat) ([]complex128, bool, error) {
	eig, err := mat.Eigenvalues(cl)
	if err != nil {
		return nil, false, err
	}
	stable := true
	for _, e := range eig {
		if math.Hypot(real(e), imag(e)) >= 1-1e-12 {
			stable = false
			break
		}
	}
	return eig, stable, nil
}

// PI is a proportional-integral power controller with conditional
// anti-windup. The proportional baselines of §6.1 carry a steady-state
// bias whenever the identified gain is off; the integral term removes it
// at the cost of slightly slower transients. PI is provided as library
// substrate (Lefurgy et al.'s production controller is PI); the paper's
// baselines remain pure-P as described.
type PI struct {
	Kp, Ki float64
	// IntegralLimit bounds |integral·Ki| in output units (anti-windup);
	// 0 disables the bound.
	IntegralLimit float64

	integral float64
}

// NewPI places the closed-loop poles of the first-order power plant
// Δp = g·Δf: with control d = Kp·e + Ki·Σe, choosing Kp = (1−p1·p2)/g...
// in practice the standard discrete design Kp = (2−p1−p2)/g − Ki/g is
// over-parameterized; this constructor takes the simpler route of a
// P gain by pole placement plus an integral gain as a fraction of it.
func NewPI(plantGain, pole, integralRatio float64) (*PI, error) {
	if integralRatio < 0 || integralRatio > 1 {
		return nil, fmt.Errorf("control: integral ratio %g outside [0, 1]", integralRatio)
	}
	kp, err := PolePlacementGain(plantGain, pole)
	if err != nil {
		return nil, err
	}
	return &PI{Kp: kp, Ki: kp * integralRatio, IntegralLimit: 2 / plantGain * 100}, nil
}

// Delta returns the frequency increment for the measured error and
// accumulates the integral state with conditional anti-windup: the
// integral freezes while the raw output exceeds the limit.
func (p *PI) Delta(setpointW, measuredW float64) float64 {
	e := setpointW - measuredW
	out := p.Kp*e + p.Ki*(p.integral+e)
	if p.IntegralLimit > 0 && math.Abs(p.Ki*(p.integral+e)) > p.IntegralLimit {
		// Anti-windup: do not accumulate further in this direction.
		return p.Kp*e + clampF(p.Ki*(p.integral+e), -p.IntegralLimit, p.IntegralLimit)
	}
	p.integral += e
	return out
}

// Reset clears the integral state.
func (p *PI) Reset() { p.integral = 0 }

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
