package control

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestPolePlacementGain(t *testing.T) {
	k, err := PolePlacementGain(0.5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// pole = 1 - g*K -> K = (1-0.2)/0.5 = 1.6.
	if math.Abs(k-1.6) > 1e-12 {
		t.Fatalf("K = %g, want 1.6", k)
	}
	if _, err := PolePlacementGain(0, 0.5); err == nil {
		t.Fatal("expected zero-gain error")
	}
	if _, err := PolePlacementGain(1, 1); err == nil {
		t.Fatal("expected invalid-pole error")
	}
	if _, err := PolePlacementGain(1, -0.5); err == nil {
		t.Fatal("expected negative-pole error")
	}
}

func TestProportionalConvergesOnLinearPlant(t *testing.T) {
	// Simulate p(k+1) = p(k) + g*d with the P controller; it must
	// converge to the set point geometrically at the placed pole.
	g := 0.42
	ctrl, err := NewProportional(g, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	p, ps := 700.0, 900.0
	prevErr := math.Abs(ps - p)
	for k := 0; k < 30; k++ {
		p += g * ctrl.Delta(ps, p)
		e := math.Abs(ps - p)
		if e > 1e-9 && e > prevErr*0.31 { // pole 0.3 plus slack
			t.Fatalf("period %d: error %g did not contract (prev %g)", k, e, prevErr)
		}
		prevErr = e
		if prevErr == 0 {
			break
		}
	}
	if prevErr > 1e-6 {
		t.Fatalf("did not converge: residual error %g", prevErr)
	}
}

func TestScalarPole(t *testing.T) {
	pole, err := ScalarPole([]float64{0.5, 0.2}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pole-0.3) > 1e-12 {
		t.Fatalf("pole = %g, want 0.3", pole)
	}
	if _, err := ScalarPole([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("expected length error")
	}
}

func TestUniformGainRange(t *testing.T) {
	// A·K = 0.7 nominal -> stable for s in (0, 2/0.7).
	lo, hi, err := UniformGainRange([]float64{0.5, 0.2}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if lo != 0 || math.Abs(hi-2/0.7) > 1e-12 {
		t.Fatalf("range (%g, %g)", lo, hi)
	}
	// At the boundary the pole hits -1; inside it is stable.
	reports, err := PoleLocus([]float64{0.5, 0.2}, []float64{1, 1}, []float64{hi * 0.99, hi * 1.01})
	if err != nil {
		t.Fatal(err)
	}
	if !reports[0].Stable || reports[1].Stable {
		t.Fatalf("boundary behaviour wrong: %+v", reports)
	}
	if _, _, err := UniformGainRange([]float64{-1}, []float64{1}); err == nil {
		t.Fatal("expected negative-loop-gain error")
	}
}

func TestPerDeviceGainBound(t *testing.T) {
	plant := []float64{0.5, 0.3}
	k := []float64{1.0, 1.0}
	// rest = 0.3, self = 0.5: need 0 < 0.3 + g*0.5 < 2 -> g in (-0.6, 3.4).
	lo, hi, err := PerDeviceGainBound(plant, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lo+0.6) > 1e-12 || math.Abs(hi-3.4) > 1e-12 {
		t.Fatalf("bounds (%g, %g), want (-0.6, 3.4)", lo, hi)
	}
	// Verify the bound by checking the pole at the edges.
	for _, g := range []float64{lo + 1e-6, hi - 1e-6} {
		pole := 1 - (plant[1]*k[1] + g*plant[0]*k[0])
		if math.Abs(pole) >= 1 {
			t.Fatalf("pole %g at admissible gain %g", pole, g)
		}
	}
	if _, _, err := PerDeviceGainBound(plant, k, 5); err == nil {
		t.Fatal("expected index error")
	}
	// Zero-influence device with stable rest: unbounded.
	lo, hi, err = PerDeviceGainBound([]float64{0, 0.5}, []float64{1, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(lo, -1) || !math.IsInf(hi, 1) {
		t.Fatalf("zero-influence bounds (%g, %g)", lo, hi)
	}
}

func TestClosedLoopMatrixNoMemoryMatchesScalar(t *testing.T) {
	plant := []float64{0.5, 0.2}
	kp := []float64{0.8, 1.1}
	cl, err := ClosedLoopMatrix(plant, kp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Rows != 1 {
		t.Fatalf("memoryless loop should be 1x1, got %dx%d", cl.Rows, cl.Cols)
	}
	wantPole, _ := ScalarPole(plant, kp)
	if math.Abs(cl.At(0, 0)-wantPole) > 1e-12 {
		t.Fatalf("pole %g, want %g", cl.At(0, 0), wantPole)
	}
}

func TestClosedLoopWithMemoryPoles(t *testing.T) {
	// One knob with one step of input memory:
	// d(k) = -kp*e(k) - km*d(k-1).
	plant := []float64{0.5}
	kp := []float64{1.0}
	km := [][][]float64{{{0.3}}}
	cl, err := ClosedLoopMatrix(plant, kp, km)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Rows != 2 {
		t.Fatalf("dim %d, want 2", cl.Rows)
	}
	eig, stable, err := StateSpacePoles(cl)
	if err != nil {
		t.Fatal(err)
	}
	if len(eig) != 2 {
		t.Fatalf("%d poles", len(eig))
	}
	// Simulate the same loop and check empirical stability agrees.
	e, d := 100.0, 0.0
	diverged := false
	for k := 0; k < 200; k++ {
		dNew := -kp[0]*e - km[0][0][0]*d
		e += plant[0] * dNew
		d = dNew
		if math.Abs(e) > 1e6 {
			diverged = true
			break
		}
	}
	if stable == diverged {
		t.Fatalf("pole analysis (stable=%v) disagrees with simulation (diverged=%v), poles %v",
			stable, diverged, eig)
	}
	if !stable {
		t.Fatalf("this loop should be stable; poles %v", eig)
	}
	if math.Abs(e) > 1e-3 {
		t.Fatalf("simulated loop did not settle: e = %g", e)
	}
}

func TestClosedLoopMatrixValidation(t *testing.T) {
	if _, err := ClosedLoopMatrix([]float64{1, 2}, []float64{1}, nil); err == nil {
		t.Fatal("expected kp length error")
	}
}

// Property: for any positive plant/controller gains, the pole analysis
// agrees with direct simulation of the scalar loop.
func TestQuickScalarPoleMatchesSimulation(t *testing.T) {
	f := func(gRaw, kRaw uint8) bool {
		g := 0.05 + float64(gRaw)/255*2.0 // (0.05, 2.05)
		k := 0.05 + float64(kRaw)/255*2.0
		pole, err := ScalarPole([]float64{g}, []float64{k})
		if err != nil {
			return false
		}
		stable := math.Abs(pole) < 1
		e := 100.0
		diverged := false
		for i := 0; i < 400; i++ {
			e -= g * k * e
			if math.Abs(e) > 1e9 {
				diverged = true
				break
			}
		}
		settled := math.Abs(e) < 1
		if stable && diverged {
			return false
		}
		// Marginal poles (|pole| within 0.01 of 1) may not settle in 400
		// steps; only require settling when comfortably stable.
		if math.Abs(pole) < 0.99 && !settled {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: PoleLocus stability flags match |pole| < 1 exactly.
func TestQuickPoleLocusConsistency(t *testing.T) {
	f := func(scalesRaw []uint8) bool {
		if len(scalesRaw) == 0 {
			return true
		}
		scales := make([]float64, len(scalesRaw))
		for i, s := range scalesRaw {
			scales[i] = float64(s) / 64
		}
		reports, err := PoleLocus([]float64{0.4, 0.3}, []float64{1, 0.5}, scales)
		if err != nil {
			return false
		}
		for _, r := range reports {
			if r.Stable != (math.Abs(r.Pole) < 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStateSpacePolesMagnitudes(t *testing.T) {
	// A pure delay chain has all poles at 0: stable.
	cl, err := ClosedLoopMatrix([]float64{0.5}, []float64{2.0}, nil) // pole = 0
	if err != nil {
		t.Fatal(err)
	}
	eig, stable, err := StateSpacePoles(cl)
	if err != nil {
		t.Fatal(err)
	}
	if !stable || cmplx.Abs(eig[0]) > 1e-12 {
		t.Fatalf("deadbeat loop: stable=%v eig=%v", stable, eig)
	}
}

func TestPIRemovesSteadyStateBias(t *testing.T) {
	// Plant with a 40% gain error and a constant disturbance: the P
	// controller settles with a bias; PI drives the error to zero.
	gTrue, gModel := 0.3, 0.5
	disturbance := 20.0 // Watts of unmodeled load appearing each period

	runP := func() float64 {
		ctrl, err := NewProportional(gModel, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		p := 700.0
		for k := 0; k < 200; k++ {
			p += gTrue*ctrl.Delta(900, p) + disturbance - disturbance // pure P: no bias without load error
			_ = k
		}
		return p
	}
	_ = runP
	runPI := func(integralRatio float64) float64 {
		pi, err := NewPI(gModel, 0.3, integralRatio)
		if err != nil {
			t.Fatal(err)
		}
		p := 700.0
		f := 0.0
		for k := 0; k < 300; k++ {
			// Plant with actuator leak: applied frequency decays 2% per
			// period (a persistent disturbance a P controller cannot
			// cancel without bias).
			f = 0.98*f + pi.Delta(900, p)
			p = 700 + gTrue*f
		}
		return p
	}
	withI := runPI(0.3)
	withoutI := runPI(0)
	if math.Abs(withI-900) > 1 {
		t.Fatalf("PI residual error %g W", math.Abs(withI-900))
	}
	if math.Abs(withoutI-900) < math.Abs(withI-900) {
		t.Fatalf("pure P (%g) should not beat PI (%g) under the leak", withoutI, withI)
	}
}

func TestPIAntiWindup(t *testing.T) {
	pi, err := NewPI(0.5, 0.3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Saturate hard for many periods: the integral must not wind up
	// beyond its limit.
	for k := 0; k < 1000; k++ {
		pi.Delta(900, 100) // persistent +800 error
	}
	out := pi.Delta(900, 100)
	if math.IsInf(out, 0) || math.IsNaN(out) {
		t.Fatal("output blew up")
	}
	// After the error flips, recovery must be immediate-ish (bounded
	// integral), not delayed by a huge accumulated term.
	rec := pi.Delta(900, 1700) // -800 error
	if rec > out {
		t.Fatalf("sign flip did not reduce output: %g -> %g", out, rec)
	}
	pi.Reset()
	if got := pi.Delta(900, 900); got != 0 {
		t.Fatalf("after reset, zero error should give zero output, got %g", got)
	}
}

func TestNewPIValidation(t *testing.T) {
	if _, err := NewPI(0.5, 0.3, -0.1); err == nil {
		t.Fatal("expected ratio error")
	}
	if _, err := NewPI(0.5, 0.3, 1.5); err == nil {
		t.Fatal("expected ratio error")
	}
	if _, err := NewPI(0, 0.3, 0.2); err == nil {
		t.Fatal("expected plant-gain error")
	}
}
