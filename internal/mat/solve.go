package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization meets an (effectively)
// singular matrix.
var ErrSingular = errors.New("mat: matrix is singular to working precision")

// LU holds an LU factorization with partial pivoting: P*A = L*U.
type LU struct {
	lu   *Mat  // combined L (unit lower) and U factors
	piv  []int // row permutation
	sign int   // determinant sign of the permutation
}

// Factor computes the LU factorization of square a.
func Factor(a *Mat) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("mat: LU of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Partial pivot: largest |entry| in column k at or below the diagonal.
		p := k
		maxAbs := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, k)); a > maxAbs {
				maxAbs, p = a, i
			}
		}
		if maxAbs < 1e-14 {
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu.Data[p*n+j], lu.Data[k*n+j] = lu.Data[k*n+j], lu.Data[p*n+j]
			}
			piv[p], piv[k] = piv[k], piv[p]
			sign = -sign
		}
		inv := 1 / lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) * inv
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.Add(i, j, -m*lu.At(k, j))
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// Solve solves A*x = b using the factorization.
func (f *LU) Solve(b []float64) []float64 {
	n := f.lu.Rows
	if len(b) != n {
		panic(fmt.Sprintf("mat: LU solve length mismatch %d vs %d", len(b), n))
	}
	x := make([]float64, n)
	for i, p := range f.piv {
		x[i] = b[p]
	}
	// Forward substitution with unit lower factor.
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= f.lu.At(i, j) * x[j]
		}
		x[i] = s
	}
	// Back substitution with upper factor.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu.At(i, j) * x[j]
		}
		x[i] = s / f.lu.At(i, i)
	}
	return x
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.lu.Rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Solve solves the square linear system a*x = b.
func Solve(a *Mat, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// Inverse returns a^-1 for square a.
func Inverse(a *Mat) (*Mat, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	inv := New(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col := f.Solve(e)
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}

// QR holds a Householder QR factorization of an m x n matrix with m >= n.
type QR struct {
	qr   *Mat      // Householder vectors below the diagonal; R on and above
	rdia []float64 // diagonal of R
}

// FactorQR computes the QR factorization of a (m >= n required).
func FactorQR(a *Mat) (*QR, error) {
	if a.Rows < a.Cols {
		return nil, fmt.Errorf("mat: QR needs rows >= cols, got %dx%d", a.Rows, a.Cols)
	}
	m, n := a.Rows, a.Cols
	qr := a.Clone()
	rdia := make([]float64, n)
	for k := 0; k < n; k++ {
		// Householder reflection zeroing column k below the diagonal.
		norm := 0.0
		for i := k; i < m; i++ {
			norm = math.Hypot(norm, qr.At(i, k))
		}
		if norm == 0 {
			rdia[k] = 0
			continue
		}
		if qr.At(k, k) < 0 {
			norm = -norm
		}
		for i := k; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/norm)
		}
		qr.Add(k, k, 1)
		for j := k + 1; j < n; j++ {
			s := 0.0
			for i := k; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s = -s / qr.At(k, k)
			for i := k; i < m; i++ {
				qr.Add(i, j, s*qr.At(i, k))
			}
		}
		rdia[k] = -norm
	}
	return &QR{qr: qr, rdia: rdia}, nil
}

// FullRank reports whether R has no (near-)zero diagonal entry.
func (f *QR) FullRank() bool {
	for _, d := range f.rdia {
		if math.Abs(d) < 1e-12 {
			return false
		}
	}
	return true
}

// Solve returns the least-squares solution x minimizing ||A*x - b||2.
func (f *QR) Solve(b []float64) ([]float64, error) {
	m, n := f.qr.Rows, f.qr.Cols
	if len(b) != m {
		return nil, fmt.Errorf("mat: QR solve length mismatch %d vs %d", len(b), m)
	}
	if !f.FullRank() {
		return nil, ErrSingular
	}
	y := make([]float64, m)
	copy(y, b)
	// Apply Householder reflections: y = Q^T b.
	for k := 0; k < n; k++ {
		if f.qr.At(k, k) == 0 {
			continue
		}
		s := 0.0
		for i := k; i < m; i++ {
			s += f.qr.At(i, k) * y[i]
		}
		s = -s / f.qr.At(k, k)
		for i := k; i < m; i++ {
			y[i] += s * f.qr.At(i, k)
		}
	}
	// Back-substitute R*x = y[:n].
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		x[i] = s / f.rdia[i]
	}
	return x, nil
}

// LeastSquares returns argmin_x ||A*x - b||2 via Householder QR.
func LeastSquares(a *Mat, b []float64) ([]float64, error) {
	f, err := FactorQR(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// RidgeLeastSquares returns argmin_x ||A*x - b||2 + lambda*||x||2, a
// Tikhonov-regularized fit used when excitation data are nearly
// collinear (e.g. short system-identification runs).
func RidgeLeastSquares(a *Mat, b []float64, lambda float64) ([]float64, error) {
	if lambda < 0 {
		return nil, fmt.Errorf("mat: negative ridge parameter %g", lambda)
	}
	m, n := a.Rows, a.Cols
	aug := New(m+n, n)
	for i := 0; i < m; i++ {
		copy(aug.Data[i*n:(i+1)*n], a.Data[i*n:(i+1)*n])
	}
	s := math.Sqrt(lambda)
	for j := 0; j < n; j++ {
		aug.Set(m+j, j, s)
	}
	bb := make([]float64, m+n)
	copy(bb, b)
	return LeastSquares(aug, bb)
}

// Cholesky holds the lower-triangular factor of a symmetric
// positive-definite matrix: A = L*L^T.
type Cholesky struct {
	l *Mat
}

// FactorCholesky computes the Cholesky factorization of symmetric
// positive definite a.
func FactorCholesky(a *Mat) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("mat: Cholesky of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	l := New(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 {
			return nil, fmt.Errorf("mat: matrix not positive definite at pivot %d (%g)", j, d)
		}
		l.Set(j, j, math.Sqrt(d))
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/l.At(j, j))
		}
	}
	return &Cholesky{l: l}, nil
}

// Solve solves A*x = b using the Cholesky factors.
func (c *Cholesky) Solve(b []float64) []float64 {
	n := c.l.Rows
	if len(b) != n {
		panic(fmt.Sprintf("mat: Cholesky solve length mismatch %d vs %d", len(b), n))
	}
	// Forward: L*y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= c.l.At(i, j) * y[j]
		}
		y[i] = s / c.l.At(i, i)
	}
	// Back: L^T*x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= c.l.At(j, i) * x[j]
		}
		x[i] = s / c.l.At(i, i)
	}
	return x
}

// L returns a copy of the lower-triangular factor.
func (c *Cholesky) L() *Mat { return c.l.Clone() }

// RSquared returns the coefficient of determination of predictions yhat
// against observations y: 1 - SS_res/SS_tot. It is the figure of merit
// the paper reports for both the power model (Fig. 2a) and the latency
// model (Fig. 2b).
func RSquared(y, yhat []float64) float64 {
	if len(y) != len(yhat) {
		panic(fmt.Sprintf("mat: rsquared length mismatch %d vs %d", len(y), len(yhat)))
	}
	if len(y) == 0 {
		return math.NaN()
	}
	mean := 0.0
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	ssRes, ssTot := 0.0, 0.0
	for i, v := range y {
		r := v - yhat[i]
		ssRes += r * r
		t := v - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return math.Inf(-1)
	}
	return 1 - ssRes/ssTot
}
