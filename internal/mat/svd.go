package mat

import (
	"fmt"
	"math"
)

// SVD holds a thin singular value decomposition A = U·diag(S)·Vᵀ of an
// m×n matrix with m ≥ n, computed by one-sided Jacobi rotations — slow
// asymptotically but simple, accurate, and more than fast enough for the
// small matrices in this repository. Its consumers are the
// pseudo-inverse and the excitation-conditioning diagnostics of system
// identification (a nearly rank-deficient excitation matrix means some
// gain combination was never exercised).
type SVD struct {
	U *Mat      // m×n, orthonormal columns
	S []float64 // n singular values, descending
	V *Mat      // n×n, orthogonal
}

// FactorSVD computes the thin SVD of a (m ≥ n required).
func FactorSVD(a *Mat) (*SVD, error) {
	if a.Rows < a.Cols {
		return nil, fmt.Errorf("mat: SVD needs rows >= cols, got %dx%d", a.Rows, a.Cols)
	}
	m, n := a.Rows, a.Cols
	u := a.Clone()
	v := Identity(n)

	// One-sided Jacobi: orthogonalize column pairs of U, accumulating
	// the rotations into V.
	const maxSweeps = 60
	tol := 1e-14
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				// Gram entries for columns p, q.
				var app, aqq, apq float64
				for i := 0; i < m; i++ {
					up, uq := u.At(i, p), u.At(i, q)
					app += up * up
					aqq += uq * uq
					apq += up * uq
				}
				if math.Abs(apq) <= tol*math.Sqrt(app*aqq)+1e-300 {
					continue
				}
				off += apq * apq
				// Jacobi rotation zeroing the (p,q) Gram entry.
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < m; i++ {
					up, uq := u.At(i, p), u.At(i, q)
					u.Set(i, p, c*up-s*uq)
					u.Set(i, q, s*up+c*uq)
				}
				for i := 0; i < n; i++ {
					vp, vq := v.At(i, p), v.At(i, q)
					v.Set(i, p, c*vp-s*vq)
					v.Set(i, q, s*vp+c*vq)
				}
			}
		}
		if off == 0 {
			break
		}
	}

	// Column norms are the singular values; normalize U's columns.
	sv := make([]float64, n)
	for j := 0; j < n; j++ {
		norm := 0.0
		for i := 0; i < m; i++ {
			norm = math.Hypot(norm, u.At(i, j))
		}
		sv[j] = norm
		if norm > 0 {
			for i := 0; i < m; i++ {
				u.Set(i, j, u.At(i, j)/norm)
			}
		}
	}
	// Sort descending (simple selection: n is tiny).
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if sv[j] > sv[best] {
				best = j
			}
		}
		if best != i {
			sv[i], sv[best] = sv[best], sv[i]
			for r := 0; r < m; r++ {
				ui, ub := u.At(r, i), u.At(r, best)
				u.Set(r, i, ub)
				u.Set(r, best, ui)
			}
			for r := 0; r < n; r++ {
				vi, vb := v.At(r, i), v.At(r, best)
				v.Set(r, i, vb)
				v.Set(r, best, vi)
			}
		}
	}
	return &SVD{U: u, S: sv, V: v}, nil
}

// Cond returns the 2-norm condition number σ_max/σ_min (Inf for a
// rank-deficient matrix).
func (s *SVD) Cond() float64 {
	if len(s.S) == 0 {
		return math.NaN()
	}
	smin := s.S[len(s.S)-1]
	if smin == 0 {
		return math.Inf(1)
	}
	return s.S[0] / smin
}

// Rank returns the numerical rank at the given relative tolerance
// (singular values below tol·σ_max count as zero).
func (s *SVD) Rank(tol float64) int {
	if len(s.S) == 0 {
		return 0
	}
	if tol <= 0 {
		tol = 1e-12
	}
	thresh := tol * s.S[0]
	r := 0
	for _, sv := range s.S {
		if sv > thresh {
			r++
		}
	}
	return r
}

// PseudoInverse returns the Moore–Penrose pseudo-inverse V·diag(1/S)·Uᵀ,
// truncating singular values below tol·σ_max (tol ≤ 0 selects 1e-12).
func (s *SVD) PseudoInverse(tol float64) *Mat {
	n := len(s.S)
	if tol <= 0 {
		tol = 1e-12
	}
	thresh := 0.0
	if n > 0 {
		thresh = tol * s.S[0]
	}
	inv := make([]float64, n)
	for i, sv := range s.S {
		if sv > thresh {
			inv[i] = 1 / sv
		}
	}
	// pinv = V diag(inv) Uᵀ.
	return s.V.Mul(Diag(inv)).Mul(s.U.T())
}

// PseudoInverse returns the Moore–Penrose pseudo-inverse of a (m ≥ n).
func PseudoInverse(a *Mat) (*Mat, error) {
	s, err := FactorSVD(a)
	if err != nil {
		return nil, err
	}
	return s.PseudoInverse(0), nil
}
