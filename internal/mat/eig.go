package mat

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"sort"
)

// ErrNoConvergence is returned when the QR eigenvalue iteration fails to
// converge; with balanced input and the iteration limits used here this
// indicates a pathological matrix.
var ErrNoConvergence = errors.New("mat: eigenvalue iteration did not converge")

// Eigenvalues returns all eigenvalues of the square matrix a, computed by
// Householder reduction to upper Hessenberg form followed by the Francis
// double-shift QR iteration. Complex conjugate pairs are returned as
// complex values. The result is sorted by descending magnitude.
//
// This routine backs the paper's Section 4.4 stability analysis: the
// closed-loop system matrix under perturbed plant gains is formed and its
// poles (these eigenvalues) are checked against the unit circle.
func Eigenvalues(a *Mat) ([]complex128, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("mat: eigenvalues of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	if n == 0 {
		return nil, nil
	}
	if n == 1 {
		return []complex128{complex(a.At(0, 0), 0)}, nil
	}
	h := hessenberg(a)
	eig, err := hqr(h)
	if err != nil {
		return nil, err
	}
	sort.Slice(eig, func(i, j int) bool { return cmplx.Abs(eig[i]) > cmplx.Abs(eig[j]) })
	return eig, nil
}

// SpectralRadius returns the largest eigenvalue magnitude of a.
func SpectralRadius(a *Mat) (float64, error) {
	eig, err := Eigenvalues(a)
	if err != nil {
		return 0, err
	}
	if len(eig) == 0 {
		return 0, nil
	}
	return cmplx.Abs(eig[0]), nil
}

// hessenberg reduces a to upper Hessenberg form by Householder
// similarity transforms (eigenvalues preserved).
func hessenberg(a *Mat) *Mat {
	n := a.Rows
	h := a.Clone()
	for k := 0; k < n-2; k++ {
		// Build the Householder vector that zeroes h[k+2:, k].
		norm := 0.0
		for i := k + 1; i < n; i++ {
			norm = math.Hypot(norm, h.At(i, k))
		}
		if norm == 0 {
			continue
		}
		alpha := -norm
		if h.At(k+1, k) < 0 {
			alpha = norm
		}
		v := make([]float64, n)
		v[k+1] = h.At(k+1, k) - alpha
		for i := k + 2; i < n; i++ {
			v[i] = h.At(i, k)
		}
		vn := Norm2(v)
		if vn == 0 {
			continue
		}
		for i := range v {
			v[i] /= vn
		}
		// H = (I - 2vv^T) H (I - 2vv^T), applied as two rank-1 updates.
		// Left: H -= 2 v (v^T H).
		vth := make([]float64, n)
		for j := 0; j < n; j++ {
			s := 0.0
			for i := k + 1; i < n; i++ {
				s += v[i] * h.At(i, j)
			}
			vth[j] = s
		}
		for i := k + 1; i < n; i++ {
			if v[i] == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				h.Add(i, j, -2*v[i]*vth[j])
			}
		}
		// Right: H -= 2 (H v) v^T.
		hv := make([]float64, n)
		for i := 0; i < n; i++ {
			s := 0.0
			for j := k + 1; j < n; j++ {
				s += h.At(i, j) * v[j]
			}
			hv[i] = s
		}
		for i := 0; i < n; i++ {
			if hv[i] == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				h.Add(i, j, -2*hv[i]*v[j])
			}
		}
		// Enforce exact zeros below the first subdiagonal in column k.
		for i := k + 2; i < n; i++ {
			h.Set(i, k, 0)
		}
	}
	return h
}

// hqr finds the eigenvalues of an upper Hessenberg matrix using the
// Francis double-shift QR iteration (adapted from the classic EISPACK
// HQR routine).
func hqr(hm *Mat) ([]complex128, error) {
	n := hm.Rows
	h := hm.Clone()
	at := func(i, j int) float64 { return h.Data[i*n+j] }
	set := func(i, j int, v float64) { h.Data[i*n+j] = v }

	eig := make([]complex128, 0, n)
	anorm := 0.0
	for i := 0; i < n; i++ {
		for j := maxInt(i-1, 0); j < n; j++ {
			anorm += math.Abs(at(i, j))
		}
	}
	if anorm == 0 {
		for i := 0; i < n; i++ {
			eig = append(eig, 0)
		}
		return eig, nil
	}

	nn := n - 1
	t := 0.0
	var x, y, z, w, v, u, s, r, q, p float64
	for nn >= 0 {
		its := 0
		var l int
		for {
			// Look for a single small subdiagonal element.
			for l = nn; l >= 1; l-- {
				s = math.Abs(at(l-1, l-1)) + math.Abs(at(l, l))
				if s == 0 {
					s = anorm
				}
				if math.Abs(at(l, l-1)) <= 1e-15*s {
					set(l, l-1, 0)
					break
				}
			}
			x = at(nn, nn)
			if l == nn { // one real root found
				eig = append(eig, complex(x+t, 0))
				nn--
				break
			}
			y = at(nn-1, nn-1)
			w = at(nn, nn-1) * at(nn-1, nn)
			if l == nn-1 { // a 2x2 block: one real pair or a complex pair
				p = 0.5 * (y - x)
				q = p*p + w
				z = math.Sqrt(math.Abs(q))
				x += t
				if q >= 0 { // real pair
					if p >= 0 {
						z = p + z
					} else {
						z = p - z
					}
					eig = append(eig, complex(x+z, 0))
					if z != 0 {
						eig = append(eig, complex(x-w/z, 0))
					} else {
						eig = append(eig, complex(x, 0))
					}
				} else { // complex conjugate pair
					eig = append(eig, complex(x+p, z), complex(x+p, -z))
				}
				nn -= 2
				break
			}
			// No root found yet; continue iterating.
			if its == 60 {
				return nil, ErrNoConvergence
			}
			if its == 10 || its == 20 {
				// Exceptional shift.
				t += x
				for i := 0; i <= nn; i++ {
					set(i, i, at(i, i)-x)
				}
				s = math.Abs(at(nn, nn-1)) + math.Abs(at(nn-1, nn-2))
				y = 0.75 * s
				x = y
				w = -0.4375 * s * s
			}
			its++
			// Form shift and look for two consecutive small subdiagonals.
			var m int
			for m = nn - 2; m >= l; m-- {
				z = at(m, m)
				r = x - z
				s = y - z
				p = (r*s-w)/at(m+1, m) + at(m, m+1)
				q = at(m+1, m+1) - z - r - s
				r = at(m+2, m+1)
				s = math.Abs(p) + math.Abs(q) + math.Abs(r)
				p /= s
				q /= s
				r /= s
				if m == l {
					break
				}
				u = math.Abs(at(m, m-1)) * (math.Abs(q) + math.Abs(r))
				v = math.Abs(p) * (math.Abs(at(m-1, m-1)) + math.Abs(z) + math.Abs(at(m+1, m+1)))
				if u <= 1e-15*v {
					break
				}
			}
			for i := m + 2; i <= nn; i++ {
				set(i, i-2, 0)
				if i != m+2 {
					set(i, i-3, 0)
				}
			}
			// Double QR step on rows l..nn, columns m..nn.
			for k := m; k <= nn-1; k++ {
				if k != m {
					p = at(k, k-1)
					q = at(k+1, k-1)
					r = 0
					if k != nn-1 {
						r = at(k+2, k-1)
					}
					x = math.Abs(p) + math.Abs(q) + math.Abs(r)
					if x != 0 {
						p /= x
						q /= x
						r /= x
					}
				}
				s = math.Sqrt(p*p + q*q + r*r)
				if p < 0 {
					s = -s
				}
				if s == 0 {
					continue
				}
				if k == m {
					if l != m {
						set(k, k-1, -at(k, k-1))
					}
				} else {
					set(k, k-1, -s*x)
				}
				p += s
				x = p / s
				y = q / s
				z = r / s
				q /= p
				r /= p
				// Row modification.
				for j := k; j <= nn; j++ {
					p = at(k, j) + q*at(k+1, j)
					if k != nn-1 {
						p += r * at(k+2, j)
						set(k+2, j, at(k+2, j)-p*z)
					}
					set(k+1, j, at(k+1, j)-p*y)
					set(k, j, at(k, j)-p*x)
				}
				// Column modification.
				mmin := nn
				if k+3 < nn {
					mmin = k + 3
				}
				for i := l; i <= mmin; i++ {
					p = x*at(i, k) + y*at(i, k+1)
					if k != nn-1 {
						p += z * at(i, k+2)
						set(i, k+2, at(i, k+2)-p*r)
					}
					set(i, k+1, at(i, k+1)-p*q)
					set(i, k, at(i, k)-p)
				}
			}
		}
	}
	return eig, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
