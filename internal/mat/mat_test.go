package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Fatalf("%s: got %g, want %g (tol %g)", msg, got, want, tol)
	}
}

func randomMat(rng *rand.Rand, rows, cols int) *Mat {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("dims: got %dx%d", m.Rows, m.Cols)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("element (%d,%d) not zero", i, j)
			}
		}
	}
}

func TestFromRowsAndAccessors(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("dims: got %dx%d", m.Rows, m.Cols)
	}
	if m.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %g", m.At(2, 1))
	}
	m.Set(0, 0, 9)
	m.Add(0, 0, 1)
	if m.At(0, 0) != 10 {
		t.Fatalf("Set/Add: got %g", m.At(0, 0))
	}
	r := m.Row(1)
	if r[0] != 3 || r[1] != 4 {
		t.Fatalf("Row(1) = %v", r)
	}
	c := m.Col(1)
	if c[0] != 2 || c[1] != 4 || c[2] != 6 {
		t.Fatalf("Col(1) = %v", c)
	}
	// Row/Col must be copies.
	r[0] = -1
	c[0] = -1
	if m.At(1, 0) != 3 || m.At(0, 1) != 2 {
		t.Fatal("Row/Col returned aliasing slices")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestOutOfRangePanics(t *testing.T) {
	m := New(2, 2)
	for _, f := range []func(){
		func() { m.At(2, 0) },
		func() { m.At(0, -1) },
		func() { m.Set(-1, 0, 1) },
		func() { m.Row(5) },
		func() { m.Col(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected out-of-range panic")
				}
			}()
			f()
		}()
	}
}

func TestIdentityAndDiag(t *testing.T) {
	id := Identity(3)
	d := Diag([]float64{1, 1, 1})
	if !id.Equal(d, 0) {
		t.Fatal("Identity(3) != Diag(ones)")
	}
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if !m.Mul(Identity(2)).Equal(m, 1e-15) {
		t.Fatal("m*I != m")
	}
	if !Identity(2).Mul(m).Equal(m, 1e-15) {
		t.Fatal("I*m != m")
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("T dims: %dx%d", tr.Rows, tr.Cols)
	}
	if tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatalf("T values wrong:\n%v", tr)
	}
	if !tr.T().Equal(m, 0) {
		t.Fatal("(m^T)^T != m")
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !a.Mul(b).Equal(want, 1e-12) {
		t.Fatalf("mul:\n%v", a.Mul(b))
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := a.MulVec([]float64{1, 0, -1})
	if got[0] != -2 || got[1] != -2 {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestAddSubScaleTrace(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{4, 3}, {2, 1}})
	if !a.AddMat(b).Equal(FromRows([][]float64{{5, 5}, {5, 5}}), 0) {
		t.Fatal("AddMat wrong")
	}
	if !a.SubMat(a).Equal(New(2, 2), 0) {
		t.Fatal("SubMat wrong")
	}
	if !a.Scale(2).Equal(FromRows([][]float64{{2, 4}, {6, 8}}), 0) {
		t.Fatal("Scale wrong")
	}
	almostEq(t, a.Trace(), 5, 0, "trace")
	almostEq(t, a.NormFrob(), math.Sqrt(30), 1e-12, "frobenius")
	almostEq(t, a.MaxAbs(), 4, 0, "maxabs")
}

func TestVecOps(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	almostEq(t, Dot(a, b), 32, 0, "dot")
	almostEq(t, Norm2([]float64{3, 4}), 5, 1e-15, "norm2")
	s := AddVec(a, b)
	if s[0] != 5 || s[2] != 9 {
		t.Fatalf("AddVec = %v", s)
	}
	d := SubVec(b, a)
	if d[0] != 3 || d[2] != 3 {
		t.Fatalf("SubVec = %v", d)
	}
	sc := ScaleVec(2, a)
	if sc[1] != 4 {
		t.Fatalf("ScaleVec = %v", sc)
	}
	y := []float64{1, 1, 1}
	Axpy(2, a, y)
	if y[0] != 3 || y[2] != 7 {
		t.Fatalf("Axpy = %v", y)
	}
	op := OuterProduct([]float64{1, 2}, []float64{3, 4, 5})
	if op.Rows != 2 || op.Cols != 3 || op.At(1, 2) != 10 {
		t.Fatalf("OuterProduct:\n%v", op)
	}
}

func TestLUSolveKnown(t *testing.T) {
	a := FromRows([][]float64{{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}})
	b := []float64{8, -11, -3}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		almostEq(t, x[i], want[i], 1e-10, "solve x")
	}
}

func TestLUDet(t *testing.T) {
	a := FromRows([][]float64{{4, 3}, {6, 3}})
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	almostEq(t, f.Det(), -6, 1e-10, "det")
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Fatal("expected ErrSingular for rank-deficient matrix")
	}
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(6)
		a := randomMat(rng, n, n)
		// Diagonal dominance keeps the matrix comfortably nonsingular.
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n)+1)
		}
		inv, err := Inverse(a)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Mul(inv).Equal(Identity(n), 1e-8) {
			t.Fatalf("a*inv(a) != I for n=%d", n)
		}
	}
}

func TestLeastSquaresExactSystem(t *testing.T) {
	// Square full-rank system: least squares must equal the exact solution.
	a := FromRows([][]float64{{1, 1}, {1, 2}, {1, 3}})
	b := []float64{6, 8, 10} // exactly y = 4 + 2x
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	almostEq(t, x[0], 4, 1e-10, "intercept")
	almostEq(t, x[1], 2, 1e-10, "slope")
}

func TestLeastSquaresResidualOrthogonality(t *testing.T) {
	// The least-squares residual must be orthogonal to the column space.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		m := 5 + rng.Intn(10)
		n := 1 + rng.Intn(4)
		a := randomMat(rng, m, n)
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			t.Fatal(err)
		}
		r := SubVec(a.MulVec(x), b)
		atr := a.T().MulVec(r)
		for j, v := range atr {
			if math.Abs(v) > 1e-8 {
				t.Fatalf("trial %d: residual not orthogonal, A^T r[%d] = %g", trial, j, v)
			}
		}
	}
}

func TestRidgeLeastSquaresShrinks(t *testing.T) {
	a := FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	b := []float64{1, 1, 2}
	x0, err := RidgeLeastSquares(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	x1, err := RidgeLeastSquares(a, b, 10)
	if err != nil {
		t.Fatal(err)
	}
	if Norm2(x1) >= Norm2(x0) {
		t.Fatalf("ridge did not shrink: ||x1||=%g ||x0||=%g", Norm2(x1), Norm2(x0))
	}
	if _, err := RidgeLeastSquares(a, b, -1); err == nil {
		t.Fatal("expected error for negative lambda")
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(6)
		g := randomMat(rng, n, n)
		a := g.Mul(g.T())
		for i := 0; i < n; i++ {
			a.Add(i, i, 1) // ensure positive definite
		}
		c, err := FactorCholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		if !c.L().Mul(c.L().T()).Equal(a, 1e-8) {
			t.Fatal("L*L^T != A")
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := c.Solve(b)
		ax := a.MulVec(x)
		for i := range b {
			almostEq(t, ax[i], b[i], 1e-8, "cholesky solve")
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := FactorCholesky(a); err == nil {
		t.Fatal("expected failure for indefinite matrix")
	}
}

func TestEigenvaluesDiagonal(t *testing.T) {
	e, err := Eigenvalues(Diag([]float64{3, -1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, -1} // sorted by |.|
	for i, w := range want {
		almostEq(t, real(e[i]), w, 1e-9, "diag eig real")
		almostEq(t, imag(e[i]), 0, 1e-9, "diag eig imag")
	}
}

func TestEigenvaluesRotation(t *testing.T) {
	// 2D rotation by theta has eigenvalues e^{±i theta}.
	th := 0.7
	a := FromRows([][]float64{{math.Cos(th), -math.Sin(th)}, {math.Sin(th), math.Cos(th)}})
	e, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(e) != 2 {
		t.Fatalf("got %d eigenvalues", len(e))
	}
	for _, ev := range e {
		almostEq(t, real(ev), math.Cos(th), 1e-9, "rotation eig real")
		almostEq(t, math.Abs(imag(ev)), math.Sin(th), 1e-9, "rotation eig imag")
	}
}

func TestEigenvaluesTraceDetInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(6)
		a := randomMat(rng, n, n)
		e, err := Eigenvalues(a)
		if err != nil {
			t.Fatal(err)
		}
		if len(e) != n {
			t.Fatalf("trial %d: got %d eigenvalues, want %d", trial, len(e), n)
		}
		sumRe, sumIm := 0.0, 0.0
		prod := complex(1, 0)
		for _, ev := range e {
			sumRe += real(ev)
			sumIm += imag(ev)
			prod *= ev
		}
		almostEq(t, sumRe, a.Trace(), 1e-6*math.Max(1, math.Abs(a.Trace())), "sum(eig) vs trace")
		almostEq(t, sumIm, 0, 1e-6, "imag parts must cancel")
		f, err := Factor(a)
		if err == nil {
			det := f.Det()
			almostEq(t, real(prod), det, 1e-5*math.Max(1, math.Abs(det)), "prod(eig) vs det")
		}
	}
}

func TestSpectralRadiusStableMatrix(t *testing.T) {
	a := FromRows([][]float64{{0.5, 0.1}, {0, 0.3}})
	r, err := SpectralRadius(a)
	if err != nil {
		t.Fatal(err)
	}
	almostEq(t, r, 0.5, 1e-9, "spectral radius")
}

func TestRSquared(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	almostEq(t, RSquared(y, y), 1, 0, "perfect fit")
	mean := []float64{2.5, 2.5, 2.5, 2.5}
	almostEq(t, RSquared(y, mean), 0, 1e-15, "mean predictor")
	if RSquared(y, []float64{4, 3, 2, 1}) >= 0 {
		t.Fatal("reversed predictor should have negative R^2")
	}
	if !math.IsNaN(RSquared(nil, nil)) {
		t.Fatal("empty input should be NaN")
	}
	almostEq(t, RSquared([]float64{5, 5}, []float64{5, 5}), 1, 0, "constant exact")
}

// Property: (A*B)^T == B^T * A^T for random matrices.
func TestQuickTransposeOfProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		a := randomMat(r, m, k)
		b := randomMat(r, k, n)
		return a.Mul(b).T().Equal(b.T().Mul(a.T()), 1e-10)
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Solve returns x with A*x == b for well-conditioned A.
func TestQuickSolveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		a := randomMat(r, n, n)
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n)+2)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		ax := a.MulVec(x)
		for i := range b {
			if math.Abs(ax[i]-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: dot product is symmetric and bilinear.
func TestQuickDotSymmetricBilinear(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		a, b, c := make([]float64, n), make([]float64, n), make([]float64, n)
		for i := 0; i < n; i++ {
			a[i], b[i], c[i] = r.NormFloat64(), r.NormFloat64(), r.NormFloat64()
		}
		s := 0.5 + r.Float64()
		sym := math.Abs(Dot(a, b)-Dot(b, a)) < 1e-12
		lin := math.Abs(Dot(AddVec(a, ScaleVec(s, c)), b)-(Dot(a, b)+s*Dot(c, b))) < 1e-9
		return sym && lin
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: eigenvalues of A lie within the Gershgorin disks.
func TestQuickGershgorin(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		a := randomMat(r, n, n)
		eig, err := Eigenvalues(a)
		if err != nil {
			return false
		}
		for _, ev := range eig {
			inside := false
			for i := 0; i < n; i++ {
				radius := 0.0
				for j := 0; j < n; j++ {
					if j != i {
						radius += math.Abs(a.At(i, j))
					}
				}
				d := math.Hypot(real(ev)-a.At(i, i), imag(ev))
				if d <= radius+1e-6 {
					inside = true
					break
				}
			}
			if !inside {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestStringRendering(t *testing.T) {
	s := FromRows([][]float64{{1, 2}}).String()
	if s == "" {
		t.Fatal("empty String()")
	}
}

func BenchmarkMul8x8(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randomMat(rng, 8, 8)
	c := randomMat(rng, 8, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.Mul(c)
	}
}

func BenchmarkEigenvalues8x8(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a := randomMat(rng, 8, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Eigenvalues(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLeastSquares40x5(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a := randomMat(rng, 40, 5)
	y := make([]float64, 40)
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := LeastSquares(a, y); err != nil {
			b.Fatal(err)
		}
	}
}
