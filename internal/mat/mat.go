// Package mat provides the dense linear algebra needed by the CapGPU
// control stack: matrices and vectors, factorizations (LU, QR,
// Cholesky), least-squares solvers, and eigenvalue computation for
// closed-loop pole analysis.
//
// The package is self-contained (standard library only) and favors
// clarity and numerical robustness over raw speed; the matrices that
// arise in server power control are tiny (tens of rows), so all
// algorithms here are textbook dense methods with partial pivoting or
// Householder orthogonalization.
package mat

import (
	"fmt"
	"math"
	"strings"
)

// Mat is a dense, row-major matrix.
type Mat struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// New returns a zeroed Rows x Cols matrix.
func New(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Mat {
	if len(rows) == 0 {
		return New(0, 0)
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("mat: ragged row %d: got %d cols, want %d", i, len(r), cols))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Mat {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Diag returns a square matrix with d on the diagonal.
func Diag(d []float64) *Mat {
	m := New(len(d), len(d))
	for i, v := range d {
		m.Set(i, i, v)
	}
	return m
}

// At returns the element at (i, j).
func (m *Mat) At(i, j int) float64 {
	m.check(i, j)
	return m.Data[i*m.Cols+j]
}

// Set assigns the element at (i, j).
func (m *Mat) Set(i, j int, v float64) {
	m.check(i, j)
	m.Data[i*m.Cols+j] = v
}

// Add accumulates v into the element at (i, j).
func (m *Mat) Add(i, j int, v float64) {
	m.check(i, j)
	m.Data[i*m.Cols+j] += v
}

func (m *Mat) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Row returns a copy of row i.
func (m *Mat) Row(i int) []float64 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("mat: row %d out of range %d", i, m.Rows))
	}
	r := make([]float64, m.Cols)
	copy(r, m.Data[i*m.Cols:(i+1)*m.Cols])
	return r
}

// Col returns a copy of column j.
func (m *Mat) Col(j int) []float64 {
	if j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("mat: col %d out of range %d", j, m.Cols))
	}
	c := make([]float64, m.Rows)
	for i := range c {
		c[i] = m.Data[i*m.Cols+j]
	}
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Mat) T() *Mat {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// Scale returns s*m as a new matrix.
func (m *Mat) Scale(s float64) *Mat {
	c := m.Clone()
	for i := range c.Data {
		c.Data[i] *= s
	}
	return c
}

// AddMat returns m + other as a new matrix.
func (m *Mat) AddMat(other *Mat) *Mat {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic(fmt.Sprintf("mat: add dimension mismatch %dx%d vs %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	c := m.Clone()
	for i, v := range other.Data {
		c.Data[i] += v
	}
	return c
}

// SubMat returns m - other as a new matrix.
func (m *Mat) SubMat(other *Mat) *Mat {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic(fmt.Sprintf("mat: sub dimension mismatch %dx%d vs %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	c := m.Clone()
	for i, v := range other.Data {
		c.Data[i] -= v
	}
	return c
}

// Mul returns m * other as a new matrix.
func (m *Mat) Mul(other *Mat) *Mat {
	if m.Cols != other.Rows {
		panic(fmt.Sprintf("mat: mul dimension mismatch %dx%d * %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	p := New(m.Rows, other.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.Data[i*m.Cols+k]
			if a == 0 {
				continue
			}
			rowOther := other.Data[k*other.Cols : (k+1)*other.Cols]
			rowP := p.Data[i*p.Cols : (i+1)*p.Cols]
			for j, b := range rowOther {
				rowP[j] += a * b
			}
		}
	}
	return p
}

// MulVec returns m * v as a new vector.
func (m *Mat) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("mat: mulvec dimension mismatch %dx%d * %d", m.Rows, m.Cols, len(v)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, a := range row {
			s += a * v[j]
		}
		out[i] = s
	}
	return out
}

// Trace returns the sum of the diagonal of a square matrix.
func (m *Mat) Trace() float64 {
	if m.Rows != m.Cols {
		panic("mat: trace of non-square matrix")
	}
	s := 0.0
	for i := 0; i < m.Rows; i++ {
		s += m.Data[i*m.Cols+i]
	}
	return s
}

// NormFrob returns the Frobenius norm of m.
func (m *Mat) NormFrob() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute entry of m (0 for empty matrices).
func (m *Mat) MaxAbs() float64 {
	mx := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Equal reports whether m and other agree elementwise within tol.
func (m *Mat) Equal(other *Mat, tol float64) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-other.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders m for debugging.
func (m *Mat) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		b.WriteString("[")
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%9.4g", m.At(i, j))
		}
		b.WriteString("]\n")
	}
	return b.String()
}

// Vector helpers. Vectors are plain []float64 throughout the repo; the
// functions below supply the handful of operations the controllers need.

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: dot length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	return math.Sqrt(Dot(v, v))
}

// AddVec returns a + b as a new vector.
func AddVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: addvec length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// SubVec returns a - b as a new vector.
func SubVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: subvec length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// ScaleVec returns s*v as a new vector.
func ScaleVec(s float64, v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = s * x
	}
	return out
}

// Axpy accumulates a*x into y in place (y += a*x).
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// OuterProduct returns a*b^T.
func OuterProduct(a, b []float64) *Mat {
	m := New(len(a), len(b))
	for i, av := range a {
		for j, bv := range b {
			m.Data[i*m.Cols+j] = av * bv
		}
	}
	return m
}
