package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSVDReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		m := 2 + rng.Intn(8)
		n := 1 + rng.Intn(m)
		a := randomMat(rng, m, n)
		s, err := FactorSVD(a)
		if err != nil {
			t.Fatal(err)
		}
		// A == U diag(S) V^T.
		recon := s.U.Mul(Diag(s.S)).Mul(s.V.T())
		if !recon.Equal(a, 1e-9) {
			t.Fatalf("trial %d: reconstruction failed", trial)
		}
		// Singular values descending and non-negative.
		for i := 1; i < len(s.S); i++ {
			if s.S[i] > s.S[i-1]+1e-12 || s.S[i] < 0 {
				t.Fatalf("trial %d: singular values not sorted: %v", trial, s.S)
			}
		}
		// U^T U == I, V^T V == I.
		if !s.U.T().Mul(s.U).Equal(Identity(n), 1e-9) {
			t.Fatalf("trial %d: U columns not orthonormal", trial)
		}
		if !s.V.T().Mul(s.V).Equal(Identity(n), 1e-9) {
			t.Fatalf("trial %d: V not orthogonal", trial)
		}
	}
}

func TestSVDKnownValues(t *testing.T) {
	// diag(3, 2) embedded in a tall matrix.
	a := FromRows([][]float64{{3, 0}, {0, 2}, {0, 0}})
	s, err := FactorSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.S[0]-3) > 1e-12 || math.Abs(s.S[1]-2) > 1e-12 {
		t.Fatalf("singular values %v, want [3 2]", s.S)
	}
	if math.Abs(s.Cond()-1.5) > 1e-12 {
		t.Fatalf("cond = %g, want 1.5", s.Cond())
	}
	if s.Rank(1e-12) != 2 {
		t.Fatalf("rank = %d", s.Rank(1e-12))
	}
}

func TestSVDRankDeficient(t *testing.T) {
	// Second column is a multiple of the first.
	a := FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	s, err := FactorSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if s.Rank(1e-10) != 1 {
		t.Fatalf("rank = %d, want 1 (S = %v)", s.Rank(1e-10), s.S)
	}
	if !math.IsInf(s.Cond(), 1) && s.Cond() < 1e10 {
		t.Fatalf("cond = %g, want huge", s.Cond())
	}
}

func TestSVDRejectsWide(t *testing.T) {
	if _, err := FactorSVD(New(2, 3)); err == nil {
		t.Fatal("expected rows >= cols error")
	}
}

func TestPseudoInverseFullRank(t *testing.T) {
	// For full-column-rank A, pinv(A)·A == I.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		m := 3 + rng.Intn(6)
		n := 1 + rng.Intn(3)
		a := randomMat(rng, m, n)
		pinv, err := PseudoInverse(a)
		if err != nil {
			t.Fatal(err)
		}
		if pinv.Rows != n || pinv.Cols != m {
			t.Fatalf("pinv dims %dx%d", pinv.Rows, pinv.Cols)
		}
		if !pinv.Mul(a).Equal(Identity(n), 1e-8) {
			t.Fatalf("trial %d: pinv(A) A != I", trial)
		}
	}
}

func TestPseudoInverseLeastSquaresAgreement(t *testing.T) {
	// pinv(A)·b equals the QR least-squares solution for full-rank A.
	rng := rand.New(rand.NewSource(5))
	a := randomMat(rng, 12, 4)
	b := make([]float64, 12)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	pinv, err := PseudoInverse(a)
	if err != nil {
		t.Fatal(err)
	}
	xPinv := pinv.MulVec(b)
	xQR, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xQR {
		if math.Abs(xPinv[i]-xQR[i]) > 1e-8 {
			t.Fatalf("solutions disagree at %d: %g vs %g", i, xPinv[i], xQR[i])
		}
	}
}

func TestPseudoInverseRankDeficientMinNorm(t *testing.T) {
	// For rank-deficient A, pinv picks the minimum-norm solution; it
	// must still satisfy the normal equations A^T A x = A^T b.
	a := FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	b := []float64{1, 2, 3}
	pinv, err := PseudoInverse(a)
	if err != nil {
		t.Fatal(err)
	}
	x := pinv.MulVec(b)
	lhs := a.T().Mul(a).MulVec(x)
	rhs := a.T().MulVec(b)
	for i := range rhs {
		if math.Abs(lhs[i]-rhs[i]) > 1e-8 {
			t.Fatalf("normal equations violated at %d: %g vs %g", i, lhs[i], rhs[i])
		}
	}
}

// Property: the Frobenius norm equals the root-sum-square of the
// singular values.
func TestQuickSVDFrobeniusIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(6)
		n := 1 + rng.Intn(m)
		a := randomMat(rng, m, n)
		s, err := FactorSVD(a)
		if err != nil {
			return false
		}
		ss := 0.0
		for _, sv := range s.S {
			ss += sv * sv
		}
		return math.Abs(math.Sqrt(ss)-a.NormFrob()) < 1e-9*(1+a.NormFrob())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSVD32x5(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	a := randomMat(rng, 32, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FactorSVD(a); err != nil {
			b.Fatal(err)
		}
	}
}
