package baselines

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/sysid"
	"repro/internal/workload"
)

func testServer(t *testing.T, seed int64) *sim.Server {
	t.Helper()
	s, err := sim.NewServer(sim.DefaultTestbed(seed))
	if err != nil {
		t.Fatal(err)
	}
	zoo := workload.Zoo()
	names := []string{"resnet50", "swin_t", "vgg16"}
	rates := []float64{250, 100, 130}
	for i := 0; i < 3; i++ {
		p, err := workload.NewPipeline(workload.PipelineConfig{
			Model: zoo[names[i]], Workers: 2, PreLatencyBase: 0.005,
			PreLatencyExp: 0.4, ArrivalRateMax: rates[i], ArrivalExp: 0.5,
			QueueCap: 60, FcMax: 2.4, FgMax: 1350, Seed: seed + int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.AttachPipeline(i, p); err != nil {
			t.Fatal(err)
		}
	}
	w, err := workload.NewCPUWorkload(workload.CPUWorkloadConfig{RateAtMax: 40, FcMax: 2.4, Seed: seed + 9})
	if err != nil {
		t.Fatal(err)
	}
	s.AttachCPUWorkload(w)
	return s
}

func testModel(t *testing.T) (*sim.Server, *sysid.Model) {
	t.Helper()
	twin := testServer(t, 900)
	model, _, err := sysid.Identify(twin, sysid.ExciteConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return testServer(t, 7), model
}

func obsAt(s *sim.Server, avgPower, setpoint float64) core.Observation {
	last := s.Last()
	obs := core.Observation{
		AvgPowerW:  avgPower,
		SetpointW:  setpoint,
		CPUFreqGHz: s.CPUFreq(),
		GPUFreqMHz: make([]float64, s.NumGPUs()),
		GPUUtil:    make([]float64, s.NumGPUs()),
		CPUUtil:    last.CPUUtil,
		CPUPowerW:  last.CPUPowerW,
		GPUPowerW:  append([]float64(nil), last.GPUPowerW...),
	}
	for i := range obs.GPUFreqMHz {
		obs.GPUFreqMHz[i] = s.GPUFreq(i)
		if len(last.GPUUtil) == s.NumGPUs() {
			obs.GPUUtil[i] = last.GPUUtil[i]
		}
	}
	return obs
}

func TestFixedStepValidation(t *testing.T) {
	s, _ := testModel(t)
	if _, err := NewFixedStep(s, 0, 0); err == nil {
		t.Fatal("expected step-mult error")
	}
	if _, err := NewFixedStep(s, 1, -1); err == nil {
		t.Fatal("expected margin error")
	}
	fs, err := NewFixedStep(s, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Name() != "Fixed-Step" {
		t.Fatalf("name = %q", fs.Name())
	}
	safe, err := NewFixedStep(s, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	if safe.Name() != "Safe Fixed-Step" {
		t.Fatalf("safe name = %q", safe.Name())
	}
}

func TestFixedStepMovesOneDeviceOneStep(t *testing.T) {
	s, _ := testModel(t)
	fs, err := NewFixedStep(s, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Tick(1)
	obs := obsAt(s, 700, 900) // below target: raise one device
	dec := fs.Decide(obs)
	changed := 0
	if dec.CPUFreqGHz != obs.CPUFreqGHz {
		changed++
		if math.Abs(dec.CPUFreqGHz-obs.CPUFreqGHz) > 0.1+1e-9 {
			t.Fatalf("CPU moved more than one step: %g -> %g", obs.CPUFreqGHz, dec.CPUFreqGHz)
		}
	}
	for i := range dec.GPUFreqMHz {
		if dec.GPUFreqMHz[i] != obs.GPUFreqMHz[i] {
			changed++
			if math.Abs(dec.GPUFreqMHz[i]-obs.GPUFreqMHz[i]) > 90+1e-9 {
				t.Fatalf("GPU %d moved more than one step", i)
			}
			if dec.GPUFreqMHz[i] < obs.GPUFreqMHz[i] {
				t.Fatal("below target should raise, not lower")
			}
		}
	}
	if changed != 1 {
		t.Fatalf("exactly one device should move, got %d", changed)
	}
}

func TestFixedStepDirectionFollowsError(t *testing.T) {
	s, _ := testModel(t)
	fs, err := NewFixedStep(s, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.SetCPUFreq(1.7)
	for i := 0; i < 3; i++ {
		if _, err := s.SetGPUFreq(i, 900); err != nil {
			t.Fatal(err)
		}
	}
	s.Tick(1)
	// Above target: one device must go down.
	dec := fs.Decide(obsAt(s, 1100, 900))
	sumBefore := s.CPUFreq()*100 + s.GPUFreq(0) + s.GPUFreq(1) + s.GPUFreq(2)
	sumAfter := dec.CPUFreqGHz*100 + dec.GPUFreqMHz[0] + dec.GPUFreqMHz[1] + dec.GPUFreqMHz[2]
	if sumAfter >= sumBefore {
		t.Fatal("over target: expected a downward move")
	}
}

func TestFixedStepRespectsRails(t *testing.T) {
	s, _ := testModel(t)
	fs, err := NewFixedStep(s, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Everything at min and still over target: no move possible down.
	s.Tick(1)
	dec := fs.Decide(obsAt(s, 1200, 700))
	if dec.CPUFreqGHz != s.CPUFreq() {
		t.Fatal("CPU at min must not go lower")
	}
	for i := range dec.GPUFreqMHz {
		if dec.GPUFreqMHz[i] != s.GPUFreq(i) {
			t.Fatal("GPU at min must not go lower")
		}
	}
}

func TestFixedStepMarginShiftsTarget(t *testing.T) {
	s, _ := testModel(t)
	safe, err := NewFixedStep(s, 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	s.SetCPUFreq(1.7)
	s.Tick(1)
	// Measured 880 with set point 900: plain Fixed-Step would raise, but
	// with a 50 W margin the effective target is 850, so it lowers.
	dec := safe.Decide(obsAt(s, 880, 900))
	sumBefore := s.CPUFreq()*1000 + s.GPUFreq(0) + s.GPUFreq(1) + s.GPUFreq(2)
	sumAfter := dec.CPUFreqGHz*1000 + dec.GPUFreqMHz[0] + dec.GPUFreqMHz[1] + dec.GPUFreqMHz[2]
	if sumAfter >= sumBefore {
		t.Fatal("within margin: expected a downward move")
	}
}

func TestGPUOnlyPinsCPUAndSharesClock(t *testing.T) {
	s, model := testModel(t)
	g, err := NewGPUOnly(model, s, 0.45)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "GPU-Only" {
		t.Fatalf("name = %q", g.Name())
	}
	s.Tick(1)
	dec := g.Decide(obsAt(s, 800, 900))
	if dec.CPUFreqGHz != s.Config().CPU.FreqMaxGHz {
		t.Fatalf("CPU should be pinned at max, got %g", dec.CPUFreqGHz)
	}
	for i := 1; i < len(dec.GPUFreqMHz); i++ {
		if dec.GPUFreqMHz[i] != dec.GPUFreqMHz[0] {
			t.Fatalf("GPUs must share one clock: %v", dec.GPUFreqMHz)
		}
	}
	// Under cap: clock must rise.
	if dec.GPUFreqMHz[0] <= s.GPUFreq(0) {
		t.Fatal("under cap: GPU clock should rise")
	}
	// Over cap (from a mid clock, so there is room to fall).
	for i := 0; i < 3; i++ {
		if _, err := s.SetGPUFreq(i, 900); err != nil {
			t.Fatal(err)
		}
	}
	s.Tick(1)
	dec2 := g.Decide(obsAt(s, 1000, 900))
	if dec2.GPUFreqMHz[0] >= s.GPUFreq(0) {
		t.Fatal("over cap: GPU clock should fall")
	}
}

func TestGPUOnlyValidation(t *testing.T) {
	s, _ := testModel(t)
	bad := &sysid.Model{Gains: []float64{1}}
	if _, err := NewGPUOnly(bad, s, 0.45); err == nil {
		t.Fatal("expected gain-count error")
	}
	good := &sysid.Model{Gains: []float64{50, 0.15, 0.15, 0.15}}
	if _, err := NewGPUOnly(good, s, 1.5); err == nil {
		t.Fatal("expected pole error")
	}
}

func TestCPUOnlyPinsGPUs(t *testing.T) {
	s, model := testModel(t)
	c, err := NewCPUOnly(model, s, 0.45)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "CPU-Only" {
		t.Fatalf("name = %q", c.Name())
	}
	s.Tick(1)
	dec := c.Decide(obsAt(s, 800, 900))
	for i, f := range dec.GPUFreqMHz {
		if f != s.Config().GPUs[i].FreqMaxMHz {
			t.Fatalf("GPU %d should be pinned at max, got %g", i, f)
		}
	}
	if dec.CPUFreqGHz <= s.CPUFreq() {
		t.Fatal("under cap: CPU clock should rise")
	}
	bad := &sysid.Model{Gains: []float64{1}}
	if _, err := NewCPUOnly(bad, s, 0.45); err == nil {
		t.Fatal("expected gain-count error")
	}
}

func TestCPUPlusGPUSplitsIndependently(t *testing.T) {
	s, model := testModel(t)
	c, err := NewCPUPlusGPU(model, s, 0.6, s.Config().OtherW, 0.45)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "CPU+GPU (60% GPU)" {
		t.Fatalf("name = %q", c.Name())
	}
	s.SetCPUFreq(1.7)
	for i := 0; i < 3; i++ {
		if _, err := s.SetGPUFreq(i, 900); err != nil {
			t.Fatal(err)
		}
	}
	s.Tick(1)
	obs := obsAt(s, 900, 900)
	// Force the GPU group far over ITS budget while the CPU is under its
	// own: the loops must move in opposite directions (no coordination).
	obs.GPUPowerW = []float64{300, 300, 300} // 900 W >> 0.6*(900-250)
	obs.CPUPowerW = 50                       // << 0.4*(900-250)
	dec := c.Decide(obs)
	if dec.GPUFreqMHz[0] >= s.GPUFreq(0) {
		t.Fatal("GPU group over budget: shared clock should fall")
	}
	if dec.CPUFreqGHz <= s.CPUFreq() {
		t.Fatal("CPU under budget: CPU clock should rise")
	}
}

func TestCPUPlusGPUValidation(t *testing.T) {
	s, model := testModel(t)
	if _, err := NewCPUPlusGPU(model, s, 0, 250, 0.45); err == nil {
		t.Fatal("expected share error")
	}
	if _, err := NewCPUPlusGPU(model, s, 1, 250, 0.45); err == nil {
		t.Fatal("expected share error")
	}
	bad := &sysid.Model{Gains: []float64{1}}
	if _, err := NewCPUPlusGPU(bad, s, 0.5, 250, 0.45); err == nil {
		t.Fatal("expected gain-count error")
	}
}

// Closed-loop integration: each baseline behaves per its §6 description.
func TestClosedLoopBehaviors(t *testing.T) {
	runCtl := func(build func(s *sim.Server, m *sysid.Model) core.PowerController, periods int) []core.PeriodRecord {
		twin := testServer(t, 900)
		model, _, err := sysid.Identify(twin, sysid.ExciteConfig{})
		if err != nil {
			t.Fatal(err)
		}
		s := testServer(t, 7)
		h, err := core.NewHarness(s, build(s, model), func(int) float64 { return 900 })
		if err != nil {
			t.Fatal(err)
		}
		recs, err := h.Run(periods)
		if err != nil {
			t.Fatal(err)
		}
		return recs
	}
	mean := func(recs []core.PeriodRecord, from int) float64 {
		sum := 0.0
		for _, r := range recs[from:] {
			sum += r.AvgPowerW
		}
		return sum / float64(len(recs)-from)
	}

	// GPU-Only converges to the cap.
	recs := runCtl(func(s *sim.Server, m *sysid.Model) core.PowerController {
		g, err := NewGPUOnly(m, s, 0.45)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}, 60)
	if m := mean(recs, 30); math.Abs(m-900) > 15 {
		t.Fatalf("GPU-Only steady mean %g, want ~900", m)
	}

	// CPU-Only cannot reach 900 W with the GPUs pinned at max: its
	// actuation range is far too small (the paper's Fig. 3 finding).
	recs = runCtl(func(s *sim.Server, m *sysid.Model) core.PowerController {
		c, err := NewCPUOnly(m, s, 0.45)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}, 60)
	if m := mean(recs, 30); m < 1000 {
		t.Fatalf("CPU-Only should be stuck far above the cap, got %g", m)
	}

	// CPU+GPU with a fixed split settles away from the cap.
	recs = runCtl(func(s *sim.Server, m *sysid.Model) core.PowerController {
		c, err := NewCPUPlusGPU(m, s, 0.5, s.Config().OtherW, 0.45)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}, 60)
	if m := mean(recs, 30); math.Abs(m-900) < 30 {
		t.Fatalf("CPU+GPU 50/50 should miss the cap by a margin, got %g", m)
	}

	// Safe Fixed-Step stays below the cap.
	recs = runCtl(func(s *sim.Server, m *sysid.Model) core.PowerController {
		f, err := NewFixedStep(s, 1, 25)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}, 100)
	if m := mean(recs, 50); m >= 900 {
		t.Fatalf("Safe Fixed-Step mean %g should sit below the cap", m)
	}
}
