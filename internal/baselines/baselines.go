// Package baselines implements the four state-of-the-art power-capping
// schemes CapGPU is evaluated against (§6.1):
//
//   - Fixed-Step: a model-free heuristic that nudges the busiest (or
//     idlest) device one frequency level per period, after the power
//     control scheme of Nabavinejad et al.; Safe Fixed-Step adds a
//     safety margin below the cap.
//   - GPU-Only: a proportional controller with pole placement that
//     drives all GPUs with one shared clock, after OptimML; the CPU is
//     pinned at its maximum frequency.
//   - CPU-Only: the traditional server power capper (Lefurgy et al.)
//     actuating only CPU DVFS; the GPUs are pinned at maximum.
//   - CPU+GPU: two independent loops with a fixed split of the power
//     budget, after PowerCoord; each loop regulates its own device
//     group's power to its share.
//
// All implement core.PowerController, so the harness treats them exactly
// like CapGPU.
package baselines

import (
	"fmt"

	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/sysid"
)

// FixedStep is the §6.1 heuristic controller. StepMult scales the base
// step sizes (the paper's "stepsize 1" is 100 MHz CPU / 90 MHz GPU,
// "stepsize 5" is 500/450). MarginW > 0 yields Safe Fixed-Step.
type FixedStep struct {
	CPUStepGHz float64
	GPUStepMHz float64
	MarginW    float64

	fminC, fmaxC float64
	fminG, fmaxG []float64
	rr           int // round-robin cursor for utilization ties
}

// NewFixedStep builds the controller for a server. stepMult ≥ 1 scales
// the base 0.1 GHz / 90 MHz steps. marginW subtracts a safety margin
// from the set point (0 for plain Fixed-Step).
func NewFixedStep(server *sim.Server, stepMult int, marginW float64) (*FixedStep, error) {
	if stepMult < 1 {
		return nil, fmt.Errorf("baselines: step multiplier %d must be >= 1", stepMult)
	}
	if marginW < 0 {
		return nil, fmt.Errorf("baselines: negative margin %g", marginW)
	}
	cfg := server.Config()
	fs := &FixedStep{
		CPUStepGHz: 0.1 * float64(stepMult),
		GPUStepMHz: 90 * float64(stepMult),
		MarginW:    marginW,
		fminC:      cfg.CPU.FreqMinGHz,
		fmaxC:      cfg.CPU.FreqMaxGHz,
		fminG:      make([]float64, server.NumGPUs()),
		fmaxG:      make([]float64, server.NumGPUs()),
	}
	for i, g := range cfg.GPUs {
		fs.fminG[i] = g.FreqMinMHz
		fs.fmaxG[i] = g.FreqMaxMHz
	}
	return fs, nil
}

// Name implements core.PowerController.
func (f *FixedStep) Name() string {
	if f.MarginW > 0 {
		return "Safe Fixed-Step"
	}
	return "Fixed-Step"
}

// Decide implements the heuristic: below the (margin-adjusted) target,
// raise the highest-utilization device one step; above it, lower the
// lowest-utilization device one step. Devices pinned at a rail in the
// needed direction are skipped (the paper "alternates adjustments" when
// a device saturates); exact utilization ties rotate round-robin.
func (f *FixedStep) Decide(obs core.Observation) core.Decision {
	ng := len(obs.GPUFreqMHz)
	dec := core.Decision{
		CPUFreqGHz: obs.CPUFreqGHz,
		GPUFreqMHz: append([]float64(nil), obs.GPUFreqMHz...),
	}
	target := obs.SetpointW - f.MarginW
	raise := obs.AvgPowerW < target

	// Candidate devices: 0 = CPU, 1.. = GPUs. Skip devices already at
	// the rail in the direction of travel.
	type cand struct {
		idx  int
		util float64
	}
	var cands []cand
	if raise {
		if obs.CPUFreqGHz < f.fmaxC-1e-9 {
			cands = append(cands, cand{0, obs.CPUUtil})
		}
		for i := 0; i < ng; i++ {
			if obs.GPUFreqMHz[i] < f.fmaxG[i]-1e-9 {
				cands = append(cands, cand{1 + i, obs.GPUUtil[i]})
			}
		}
	} else {
		if obs.CPUFreqGHz > f.fminC+1e-9 {
			cands = append(cands, cand{0, obs.CPUUtil})
		}
		for i := 0; i < ng; i++ {
			if obs.GPUFreqMHz[i] > f.fminG[i]+1e-9 {
				cands = append(cands, cand{1 + i, obs.GPUUtil[i]})
			}
		}
	}
	if len(cands) == 0 {
		return dec
	}
	// Pick extreme utilization; break exact ties round-robin.
	best := cands[0]
	tied := 1
	for _, c := range cands[1:] {
		better := false
		if raise {
			better = c.util > best.util
		} else {
			better = c.util < best.util
		}
		if better {
			best = c
			tied = 1
		} else if metrics.ApproxEqual(c.util, best.util, 1e-12) {
			tied++
		}
	}
	if tied == len(cands) && tied > 1 {
		best = cands[f.rr%len(cands)]
		f.rr++
	}

	dir := -1.0
	if raise {
		dir = 1.0
	}
	if best.idx == 0 {
		dec.CPUFreqGHz = clamp(obs.CPUFreqGHz+dir*f.CPUStepGHz, f.fminC, f.fmaxC)
	} else {
		g := best.idx - 1
		dec.GPUFreqMHz[g] = clamp(obs.GPUFreqMHz[g]+dir*f.GPUStepMHz, f.fminG[g], f.fmaxG[g])
	}
	return dec
}

// GPUOnly is the OptimML-style proportional controller: one shared GPU
// clock actuates total power; the CPU stays at maximum.
type GPUOnly struct {
	prop         *control.Proportional
	fcMax        float64
	fminG, fmaxG []float64
}

// NewGPUOnly derives the controller gain by pole placement on the summed
// GPU gains of the identified model (all GPUs share one frequency, so
// the effective plant gain is ΣB_i).
func NewGPUOnly(model *sysid.Model, server *sim.Server, pole float64) (*GPUOnly, error) {
	ng := server.NumGPUs()
	if len(model.Gains) != 1+ng {
		return nil, fmt.Errorf("baselines: model has %d gains for %d knobs", len(model.Gains), 1+ng)
	}
	sum := 0.0
	for _, g := range model.Gains[1:] {
		sum += g
	}
	prop, err := control.NewProportional(sum, pole)
	if err != nil {
		return nil, err
	}
	cfg := server.Config()
	g := &GPUOnly{prop: prop, fcMax: cfg.CPU.FreqMaxGHz,
		fminG: make([]float64, ng), fmaxG: make([]float64, ng)}
	for i, spec := range cfg.GPUs {
		g.fminG[i] = spec.FreqMinMHz
		g.fmaxG[i] = spec.FreqMaxMHz
	}
	return g, nil
}

// Name implements core.PowerController.
func (g *GPUOnly) Name() string { return "GPU-Only" }

// Decide implements core.PowerController.
func (g *GPUOnly) Decide(obs core.Observation) core.Decision {
	delta := g.prop.Delta(obs.SetpointW, obs.AvgPowerW)
	dec := core.Decision{CPUFreqGHz: g.fcMax, GPUFreqMHz: make([]float64, len(obs.GPUFreqMHz))}
	// Single frequency applied to all GPUs (§6.1): track from GPU 0.
	shared := obs.GPUFreqMHz[0] + delta
	for i := range dec.GPUFreqMHz {
		dec.GPUFreqMHz[i] = clamp(shared, g.fminG[i], g.fmaxG[i])
	}
	return dec
}

// CPUOnly is the traditional server power capper: CPU DVFS only, GPUs
// pinned at maximum.
type CPUOnly struct {
	prop         *control.Proportional
	fminC, fmaxC float64
	fmaxG        []float64
}

// NewCPUOnly derives the gain from the model's CPU coefficient.
func NewCPUOnly(model *sysid.Model, server *sim.Server, pole float64) (*CPUOnly, error) {
	if len(model.Gains) != 1+server.NumGPUs() {
		return nil, fmt.Errorf("baselines: model has %d gains for %d knobs", len(model.Gains), 1+server.NumGPUs())
	}
	prop, err := control.NewProportional(model.Gains[0], pole)
	if err != nil {
		return nil, err
	}
	cfg := server.Config()
	c := &CPUOnly{prop: prop, fminC: cfg.CPU.FreqMinGHz, fmaxC: cfg.CPU.FreqMaxGHz,
		fmaxG: make([]float64, server.NumGPUs())}
	for i, spec := range cfg.GPUs {
		c.fmaxG[i] = spec.FreqMaxMHz
	}
	return c, nil
}

// Name implements core.PowerController.
func (c *CPUOnly) Name() string { return "CPU-Only" }

// Decide implements core.PowerController.
func (c *CPUOnly) Decide(obs core.Observation) core.Decision {
	delta := c.prop.Delta(obs.SetpointW, obs.AvgPowerW)
	dec := core.Decision{
		CPUFreqGHz: clamp(obs.CPUFreqGHz+delta, c.fminC, c.fmaxC),
		GPUFreqMHz: append([]float64(nil), c.fmaxG...),
	}
	return dec
}

// CPUPlusGPU is the PowerCoord-style split controller: the server budget
// is divided by a fixed ratio between the GPU group and the CPU, and two
// independent proportional loops regulate each group's own measured
// power to its share. The structural weakness the paper demonstrates —
// no coordination, no accounting for the non-actuated base power, and a
// CPU share that may be physically unreachable — is reproduced
// deliberately.
type CPUPlusGPU struct {
	GPUShare float64 // fraction of the budget assigned to the GPUs
	BaseW    float64 // assumed non-actuated power subtracted from the cap

	cpuProp      *control.Proportional
	gpuProp      *control.Proportional
	fminC, fmaxC float64
	fminG, fmaxG []float64
}

// NewCPUPlusGPU builds the split controller. gpuShare is the fraction of
// the (base-adjusted) cap assigned to the GPU group, e.g. 0.5 or 0.6
// (§6.2); baseW is the operator's estimate of non-actuated power.
func NewCPUPlusGPU(model *sysid.Model, server *sim.Server, gpuShare, baseW, pole float64) (*CPUPlusGPU, error) {
	if gpuShare <= 0 || gpuShare >= 1 {
		return nil, fmt.Errorf("baselines: GPU share %g outside (0, 1)", gpuShare)
	}
	ng := server.NumGPUs()
	if len(model.Gains) != 1+ng {
		return nil, fmt.Errorf("baselines: model has %d gains for %d knobs", len(model.Gains), 1+ng)
	}
	gpuGain := 0.0
	for _, g := range model.Gains[1:] {
		gpuGain += g
	}
	cpuProp, err := control.NewProportional(model.Gains[0], pole)
	if err != nil {
		return nil, err
	}
	gpuProp, err := control.NewProportional(gpuGain, pole)
	if err != nil {
		return nil, err
	}
	cfg := server.Config()
	c := &CPUPlusGPU{
		GPUShare: gpuShare, BaseW: baseW,
		cpuProp: cpuProp, gpuProp: gpuProp,
		fminC: cfg.CPU.FreqMinGHz, fmaxC: cfg.CPU.FreqMaxGHz,
		fminG: make([]float64, ng), fmaxG: make([]float64, ng),
	}
	for i, spec := range cfg.GPUs {
		c.fminG[i] = spec.FreqMinMHz
		c.fmaxG[i] = spec.FreqMaxMHz
	}
	return c, nil
}

// Name implements core.PowerController.
func (c *CPUPlusGPU) Name() string {
	return fmt.Sprintf("CPU+GPU (%.0f%% GPU)", c.GPUShare*100)
}

// Decide implements core.PowerController: two uncoordinated loops.
func (c *CPUPlusGPU) Decide(obs core.Observation) core.Decision {
	budget := obs.SetpointW - c.BaseW
	if budget < 0 {
		budget = 0
	}
	gpuTarget := c.GPUShare * budget
	cpuTarget := (1 - c.GPUShare) * budget

	gpuPower := 0.0
	for _, p := range obs.GPUPowerW {
		gpuPower += p
	}
	dGPU := c.gpuProp.Delta(gpuTarget, gpuPower)
	dCPU := c.cpuProp.Delta(cpuTarget, obs.CPUPowerW)

	dec := core.Decision{
		CPUFreqGHz: clamp(obs.CPUFreqGHz+dCPU, c.fminC, c.fmaxC),
		GPUFreqMHz: make([]float64, len(obs.GPUFreqMHz)),
	}
	shared := obs.GPUFreqMHz[0] + dGPU
	for i := range dec.GPUFreqMHz {
		dec.GPUFreqMHz[i] = clamp(shared, c.fminG[i], c.fmaxG[i])
	}
	return dec
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
