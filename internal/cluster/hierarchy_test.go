package cluster

import (
	"testing"
)

// buildRack assembles a 2-node rack for hierarchy tests.
func buildRack(t *testing.T, name string, seed int64, loads [2]int, priority int) *Rack {
	t.Helper()
	nodes := []*Node{
		buildNode(t, name+"-a", seed, loads[0], 0),
		buildNode(t, name+"-b", seed+100, loads[1], 0),
	}
	coord, err := NewCoordinator(nodes, DemandProportional{}, func(int) float64 { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRack(name, coord, priority)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewHierarchyValidation(t *testing.T) {
	if _, err := NewHierarchy(nil, Uniform{}, func(int) float64 { return 1 }); err == nil {
		t.Fatal("expected no-racks error")
	}
	if _, err := NewRack("r", nil, 0); err == nil {
		t.Fatal("expected nil-coordinator error")
	}
	r := buildRack(t, "r0", 201, [2]int{3, 1}, 1)
	if _, err := NewHierarchy([]*Rack{r}, nil, func(int) float64 { return 1 }); err == nil {
		t.Fatal("expected nil-policy error")
	}
	if _, err := NewHierarchy([]*Rack{r}, Uniform{}, nil); err == nil {
		t.Fatal("expected nil-budget error")
	}
}

func TestHierarchyHoldsFacilityBudget(t *testing.T) {
	busy := buildRack(t, "busy", 211, [2]int{3, 3}, 1)
	quiet := buildRack(t, "quiet", 231, [2]int{1, 1}, 0)
	const facility = 3700.0
	h, err := NewHierarchy([]*Rack{busy, quiet}, DemandProportional{}, func(int) float64 { return facility })
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Run(48); err != nil {
		t.Fatal(err)
	}
	total := h.TotalPowerSeries()
	if len(total) != 48 {
		t.Fatalf("series length %d", len(total))
	}
	over := 0
	for _, p := range total[20:] {
		if p > facility*1.015 {
			over++
		}
	}
	if over > 2 {
		t.Fatalf("facility budget exceeded in %d steady periods", over)
	}
	// The busy rack should hold the larger share.
	if busy.Assigned() <= quiet.Assigned() {
		t.Fatalf("busy rack got %g W, quiet rack %g W", busy.Assigned(), quiet.Assigned())
	}
	// Per-node assignments inside each rack stay within the rack share.
	for _, r := range []*Rack{busy, quiet} {
		sum := 0.0
		for _, n := range r.Coordinator.Nodes {
			sum += n.Assigned()
		}
		if sum > r.Assigned()+1e-6 {
			t.Fatalf("rack %s over-allocated its share: %g > %g", r.Name, sum, r.Assigned())
		}
	}
}

func TestHierarchyTimeScaleSeparation(t *testing.T) {
	r := buildRack(t, "solo", 251, [2]int{2, 2}, 0)
	h, err := NewHierarchy([]*Rack{r}, Uniform{}, func(int) float64 { return 2400 })
	if err != nil {
		t.Fatal(err)
	}
	h.FacilityPeriods = 0 // must be repaired to >= 1
	if err := h.Run(6); err != nil {
		t.Fatal(err)
	}
	if h.FacilityPeriods < 1 {
		t.Fatalf("facility period not repaired: %d", h.FacilityPeriods)
	}
}
