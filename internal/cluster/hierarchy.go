package cluster

import "fmt"

// Rack is one coordinator-managed group of servers inside a facility
// hierarchy.
type Rack struct {
	Name     string
	Priority int

	Coordinator *Coordinator
	assigned    float64
}

// NewRack wraps a coordinator as one rack of a facility. The
// coordinator's own BudgetW schedule is replaced: its budget is whatever
// the facility assigns.
func NewRack(name string, coord *Coordinator, priority int) (*Rack, error) {
	if coord == nil {
		return nil, fmt.Errorf("cluster: rack %q needs a coordinator", name)
	}
	r := &Rack{Name: name, Priority: priority, Coordinator: coord}
	// Start at the rack's feasible floor.
	for _, n := range coord.Nodes {
		r.assigned += n.minW
	}
	coord.BudgetW = func(int) float64 { return r.assigned }
	return r, nil
}

// Assigned returns the rack's current facility share.
func (r *Rack) Assigned() float64 { return r.assigned }

// observation aggregates the rack's nodes into one facility-level
// allocation input (SHIP-style: each level sees only its children's
// aggregates).
func (r *Rack) observation() Observation {
	o := Observation{Name: r.Name, Priority: r.Priority, AssignedW: r.assigned}
	demand, n := 0.0, 0.0
	for _, node := range r.Coordinator.Nodes {
		o.MinW += node.minW
		o.MaxW += node.maxW
		if len(node.records) > 0 {
			o.PowerW += node.records[len(node.records)-1].AvgPowerW
		}
		s := node.Server.Last()
		sum := 0.0
		for _, u := range s.GPUUtil {
			sum += u
		}
		if len(s.GPUUtil) > 0 {
			demand += sum / float64(len(s.GPUUtil))
			n++
		}
	}
	if n > 0 {
		o.Demand = demand / n
	} else {
		o.Demand = 1
	}
	return o
}

// Hierarchy is the two-level facility controller of the SHIP lineage
// (Wang et al., TPDS 2011, cited by the paper): a facility budget is
// divided across racks on a slow schedule; each rack's coordinator
// divides its share across servers on a faster one; each server's
// CapGPU loop enforces its cap every control period. The same Policy
// interface serves both levels.
type Hierarchy struct {
	Racks  []*Rack
	Policy Policy
	// BudgetW is the facility budget at server period k.
	BudgetW func(k int) float64
	// FacilityPeriods is how many server control periods pass between
	// facility-level reallocations; it must exceed the racks'
	// RackPeriods for the loops to separate in time scale (default 6).
	FacilityPeriods int
}

// NewHierarchy assembles the facility controller.
func NewHierarchy(racks []*Rack, policy Policy, budget func(int) float64) (*Hierarchy, error) {
	if len(racks) == 0 {
		return nil, fmt.Errorf("cluster: no racks")
	}
	if policy == nil || budget == nil {
		return nil, fmt.Errorf("cluster: nil policy or budget schedule")
	}
	return &Hierarchy{Racks: racks, Policy: policy, BudgetW: budget, FacilityPeriods: 6}, nil
}

// Run advances the whole facility through the given number of server
// control periods.
func (h *Hierarchy) Run(periods int) error {
	if h.FacilityPeriods < 1 {
		h.FacilityPeriods = 1
	}
	for k := 0; k < periods; k++ {
		if k%h.FacilityPeriods == 0 {
			obs := make([]Observation, len(h.Racks))
			for i, r := range h.Racks {
				obs[i] = r.observation()
			}
			caps := h.Policy.Allocate(h.BudgetW(k), obs)
			if len(caps) != len(h.Racks) {
				return fmt.Errorf("cluster: facility policy %s returned %d caps for %d racks",
					h.Policy.Name(), len(caps), len(h.Racks))
			}
			for i, r := range h.Racks {
				r.assigned = caps[i]
			}
		}
		for _, r := range h.Racks {
			if err := r.Coordinator.Step(k); err != nil {
				return fmt.Errorf("cluster: rack %s: %w", r.Name, err)
			}
		}
	}
	return nil
}

// TotalPowerSeries returns the facility's per-period total power.
func (h *Hierarchy) TotalPowerSeries() []float64 {
	var out []float64
	for _, r := range h.Racks {
		series := r.Coordinator.TotalPowerSeries()
		if out == nil {
			out = make([]float64, len(series))
		}
		for i := 0; i < len(out) && i < len(series); i++ {
			out[i] += series[i]
		}
	}
	return out
}
