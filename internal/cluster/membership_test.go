package cluster

import (
	"math"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// captureSink records emitted events; everything else is discarded.
type captureSink struct {
	telemetry.NopSink
	events []telemetry.Event
}

func (s *captureSink) Emit(e telemetry.Event) { s.events = append(s.events, e) }

func TestNodeCapCeiling(t *testing.T) {
	n := buildNode(t, "a", 1, 2, 0)
	minW, maxW := n.CapRangeW()
	if minW <= 0 || maxW <= minW {
		t.Fatalf("implausible cap range [%.1f, %.1f]", minW, maxW)
	}
	if n.CapCeilingW() != 0 {
		t.Fatalf("fresh node has ceiling %.1f, want none", n.CapCeilingW())
	}

	// A mid-range ceiling lowers the allocator-visible max.
	mid := (minW + maxW) / 2
	n.SetCapCeilingW(mid)
	if _, gotMax := n.CapRangeW(); gotMax != mid {
		t.Fatalf("ceiling %.1f: CapRangeW max = %.1f", mid, gotMax)
	}
	if n.CapCeilingW() != mid {
		t.Fatalf("CapCeilingW = %.1f, want %.1f", n.CapCeilingW(), mid)
	}

	// Ceilings below the achievable floor clamp to the floor.
	n.SetCapCeilingW(minW / 2)
	if n.CapCeilingW() != minW {
		t.Fatalf("sub-floor ceiling stored as %.1f, want floor %.1f", n.CapCeilingW(), minW)
	}

	// Ceilings above the hardware max are inert.
	n.SetCapCeilingW(maxW * 2)
	if _, gotMax := n.CapRangeW(); gotMax != maxW {
		t.Fatalf("above-max ceiling: CapRangeW max = %.1f, want %.1f", gotMax, maxW)
	}

	// Zero clears the clamp entirely.
	n.SetCapCeilingW(0)
	if gotMin, gotMax := n.CapRangeW(); gotMin != minW || gotMax != maxW {
		t.Fatalf("cleared ceiling: CapRangeW = [%.1f, %.1f], want [%.1f, %.1f]",
			gotMin, gotMax, minW, maxW)
	}
}

// TestMembershipChurn exercises AddNode/RemoveNode against a live rack,
// including the telemetry-sink and staging-buffer splices used by the
// control-plane daemon, on a coordinator built as a struct literal (so
// ensureState must size all the liveness bookkeeping itself).
func TestMembershipChurn(t *testing.T) {
	a := buildNode(t, "a", 11, 2, 0)
	b := buildNode(t, "b", 22, 2, 0)
	c := &Coordinator{
		Nodes:   []*Node{a, b},
		Policy:  Uniform{},
		BudgetW: func(int) float64 { return 900 },
		Workers: 2, // force staged telemetry so AddNode must splice a buffer
	}
	sink := &captureSink{}
	a.Harness().SetTelemetry(sink, "a")

	if err := c.Run(4); err != nil {
		t.Fatal(err)
	}

	if err := c.AddNode(nil, nil); err == nil {
		t.Fatal("expected nil-node error")
	}
	dup := buildNode(t, "a", 33, 2, 0)
	if err := c.AddNode(dup, nil); err == nil || !strings.Contains(err.Error(), "already a member") {
		t.Fatalf("duplicate add: %v", err)
	}

	d := buildNode(t, "d", 44, 2, 0)
	d.Harness().SetTelemetry(sink, "d")
	if err := c.AddNode(d, telemetry.NopSink{}); err != nil {
		t.Fatal(err)
	}
	if len(c.Nodes) != 3 || len(c.Liveness()) != 3 {
		t.Fatalf("after add: %d nodes, %d liveness slots", len(c.Nodes), len(c.Liveness()))
	}
	// Sinks for the incumbents must be padded so indices stay aligned.
	if len(c.NodeTelemetry) != 3 || c.NodeTelemetry[0] != nil || c.NodeTelemetry[2] == nil {
		t.Fatalf("NodeTelemetry splice misaligned: %v", c.NodeTelemetry)
	}
	if len(c.buffers) != 3 || c.buffers[2] == nil {
		t.Fatalf("instrumented joiner did not get a staging buffer")
	}
	if err := c.Run(4); err != nil {
		t.Fatal(err)
	}
	if got := len(d.Records()); got != 4 {
		t.Fatalf("joiner stepped %d periods, want 4", got)
	}

	if _, err := c.RemoveNode("ghost"); err == nil {
		t.Fatal("expected unknown-member error")
	}
	removed, err := c.RemoveNode("b")
	if err != nil {
		t.Fatal(err)
	}
	if removed.Name != "b" || len(removed.Records()) != 8 {
		t.Fatalf("removed %q with %d records, want b with 8", removed.Name, len(removed.Records()))
	}
	if len(c.Nodes) != 2 || len(c.buffers) != 2 || len(c.NodeTelemetry) != 2 {
		t.Fatalf("bookkeeping not spliced: nodes=%d buffers=%d sinks=%d",
			len(c.Nodes), len(c.buffers), len(c.NodeTelemetry))
	}
	if err := c.Run(2); err != nil {
		t.Fatal(err)
	}

	if _, err := c.RemoveNode("d"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RemoveNode("a"); err == nil || !strings.Contains(err.Error(), "last member") {
		t.Fatalf("last-member removal: %v", err)
	}
}

// TestReservationReleaseAfterHold drives one node silent past the
// reservation hold and checks the lifecycle: a guard-banded reservation
// while the hold runs, then exactly one reservation-released event and
// the budget returned to the live nodes.
func TestReservationReleaseAfterHold(t *testing.T) {
	nodes := []*Node{
		buildNode(t, "a", 11, 2, 0),
		buildNode(t, "b", 22, 2, 0),
	}
	co, err := NewCoordinator(nodes, Uniform{}, func(int) float64 { return 900 })
	if err != nil {
		t.Fatal(err)
	}
	co.ReservationHoldPeriods = 4
	co.Silenced = func(k int, name string) bool { return name == "b" && k >= 3 }
	sink := &captureSink{}
	co.Telemetry = sink
	co.resReleased = nil // pre-hold coordinator shape: ensureState must resize

	heldW := 0.0
	for k := 0; k < 12; k++ {
		if err := co.Step(k); err != nil {
			t.Fatal(err)
		}
		if k == 4 { // dead (missed >= 2) but hold (4 misses) not yet expired
			heldW = co.ReservedW()
		}
	}

	if !co.NodeDead(1) || co.NodeDead(0) {
		t.Fatalf("liveness wrong: %v", co.Liveness())
	}
	if heldW <= 0 {
		t.Fatal("no budget reserved for the dead node during the hold")
	}
	if got := co.ReservedW(); got != 0 {
		t.Fatalf("reservation still held after the hold expired: %.1f W", got)
	}

	var released []telemetry.Event
	for _, e := range sink.events {
		if e.Type == telemetry.EventReservationReleased {
			released = append(released, e)
		}
	}
	if len(released) != 1 {
		t.Fatalf("got %d reservation-released events, want exactly 1", len(released))
	}
	if math.Abs(released[0].Value-heldW) > 1e-9 {
		t.Fatalf("released %.2f W but the hold reserved %.2f W", released[0].Value, heldW)
	}
	if released[0].Node != "b" || !strings.Contains(released[0].Detail, "hold=4") {
		t.Fatalf("release event mislabeled: %+v", released[0])
	}
}

func TestRunPropagatesStepError(t *testing.T) {
	n := buildNode(t, "a", 1, 2, 0)
	co, err := NewCoordinator([]*Node{n}, badPolicy{}, func(int) float64 { return 900 })
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Run(3); err == nil || !strings.Contains(err.Error(), "returned") {
		t.Fatalf("Run swallowed the policy error: %v", err)
	}
}
