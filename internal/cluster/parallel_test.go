package cluster

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/telemetry"
)

func TestRunIndexedCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8, 100} {
		const n = 23
		var hits [n]int64
		runIndexed(workers, n, func(i int) { atomic.AddInt64(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
	runIndexed(4, 0, func(int) { t.Fatal("fn called for n=0") })
	runIndexed(4, -1, func(int) { t.Fatal("fn called for n<0") })
}

// dropoutSchedule exercises every rack-visible fault layer: a node
// death long enough to cross the heartbeat threshold, a transient
// single-miss, and meter faults inside the surviving loops.
const dropoutSchedule = "server-dropout@6+8:node1;server-dropout@16+1:node2;meter-dropout@4+3;meter-spike@12+3*250"

// parallelRack builds a 5-node rack with full fault + telemetry wiring
// for the given worker count, all from one seed, so racks built with
// different worker counts are replicas.
func parallelRack(t *testing.T, seed int64, workers int, jsonl io.Writer) (*Coordinator, *telemetry.Hub) {
	t.Helper()
	sched, err := faults.Parse(dropoutSchedule, seed)
	if err != nil {
		t.Fatal(err)
	}
	hub := telemetry.New(telemetry.Config{JSONL: jsonl})
	nodes := make([]*Node, 5)
	for i := range nodes {
		nodes[i] = cheapNode(t, fmt.Sprintf("n%d", i), seed+int64(i)*11)
		nodes[i].SetFaults(sched)
		nodes[i].Harness().SetTelemetry(hub, nodes[i].Name)
	}
	c, err := NewCoordinator(nodes, DemandProportional{}, func(int) float64 { return 1800 })
	if err != nil {
		t.Fatal(err)
	}
	c.Faults = sched
	c.Workers = workers
	c.Telemetry = hub.NodeSink("rack")
	sinks := make([]telemetry.Sink, len(nodes))
	for i, n := range nodes {
		sinks[i] = hub.NodeSink(n.Name)
	}
	c.NodeTelemetry = sinks
	return c, hub
}

// TestParallelStepEquivalence is the cluster-layer half of the
// sequential≡parallel contract: under node death and meter faults, any
// worker count must reproduce the sequential run byte-for-byte on the
// records, the JSONL event stream, and the Prometheus exposition.
func TestParallelStepEquivalence(t *testing.T) {
	const seed, periods = 41, 30
	run := func(workers int) ([][]core.PeriodRecord, []byte, []byte, *Coordinator) {
		var jsonl bytes.Buffer
		c, hub := parallelRack(t, seed, workers, &jsonl)
		if err := c.Run(periods); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := hub.Finish(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var prom bytes.Buffer
		if err := hub.Registry().WritePrometheus(&prom); err != nil {
			t.Fatal(err)
		}
		recs := make([][]core.PeriodRecord, len(c.Nodes))
		for i, n := range c.Nodes {
			recs[i] = append([]core.PeriodRecord(nil), n.Records()...)
		}
		return recs, jsonl.Bytes(), prom.Bytes(), c
	}
	refRecs, refJSONL, refProm, refC := run(1)
	for _, workers := range []int{2, 8} {
		recs, jsonl, prom, c := run(workers)
		if !reflect.DeepEqual(recs, refRecs) {
			t.Errorf("workers=%d: records diverge from sequential", workers)
		}
		if !bytes.Equal(jsonl, refJSONL) {
			t.Errorf("workers=%d: JSONL event stream diverges (%d vs %d bytes)",
				workers, len(jsonl), len(refJSONL))
		}
		if !bytes.Equal(prom, refProm) {
			t.Errorf("workers=%d: Prometheus exposition diverges", workers)
		}
		if !reflect.DeepEqual(c.Liveness(), refC.Liveness()) {
			t.Errorf("workers=%d: liveness diverges", workers)
		}
		for i := range c.Nodes {
			if c.Nodes[i].Assigned() != refC.Nodes[i].Assigned() {
				t.Errorf("workers=%d: node %d assigned %v vs %v",
					workers, i, c.Nodes[i].Assigned(), refC.Nodes[i].Assigned())
			}
		}
	}
}

// TestParallelEquivalenceProperty drives the contract over random
// fault schedules, policies, and worker counts: for every drawn
// configuration the parallel run must reproduce the sequential one's
// records exactly.
func TestParallelEquivalenceProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	kinds := []string{"meter-dropout", "meter-stuck", "meter-spike", "server-dropout", "actuator-loss", "gpu-derate"}
	policies := []Policy{Uniform{}, DemandProportional{}, Priority{}}
	prop := func(seed int64, cfg uint64) bool {
		rng := rand.New(rand.NewSource(int64(cfg)))
		const nodes = 3
		periods := 8 + rng.Intn(10)
		workers := 2 + rng.Intn(7)
		policy := policies[rng.Intn(len(policies))]
		entries := make([]string, 1+rng.Intn(3))
		for i := range entries {
			kind := kinds[rng.Intn(len(kinds))]
			entry := fmt.Sprintf("%s@%d+%d", kind, rng.Intn(periods), 1+rng.Intn(6))
			switch kind {
			case "server-dropout":
				entry += fmt.Sprintf(":node%d", rng.Intn(nodes))
			case "actuator-loss", "gpu-derate":
				entry += fmt.Sprintf(":gpu%d", rng.Intn(3))
			}
			entries[i] = entry
		}
		dsl := ""
		for i, e := range entries {
			if i > 0 {
				dsl += ";"
			}
			dsl += e
		}
		run := func(w int) [][]core.PeriodRecord {
			sched, err := faults.Parse(dsl, seed)
			if err != nil {
				t.Fatalf("generated DSL %q: %v", dsl, err)
			}
			ns := make([]*Node, nodes)
			for i := range ns {
				ns[i] = cheapNode(t, fmt.Sprintf("n%d", i), seed+int64(i)*7)
				ns[i].SetFaults(sched)
			}
			c, err := NewCoordinator(ns, policy, func(int) float64 { return 1500 })
			if err != nil {
				t.Fatal(err)
			}
			c.Faults = sched
			c.Workers = w
			if err := c.Run(periods); err != nil {
				t.Fatalf("dsl=%q workers=%d: %v", dsl, w, err)
			}
			recs := make([][]core.PeriodRecord, len(ns))
			for i, n := range ns {
				recs[i] = append([]core.PeriodRecord(nil), n.Records()...)
			}
			return recs
		}
		if !reflect.DeepEqual(run(1), run(workers)) {
			t.Logf("diverged: dsl=%q policy=%s workers=%d periods=%d seed=%d",
				dsl, policy.Name(), workers, periods, seed)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestScrapeDuringParallelStep pins the shared-state audit under the
// race detector: concurrent /metrics-style scrapes and event-ring
// reads while the worker pool is mid-fan-out must be race-free.
func TestScrapeDuringParallelStep(t *testing.T) {
	c, hub := parallelRack(t, 43, 4, nil)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := hub.Registry().WritePrometheus(io.Discard); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			hub.EventsSnapshot()
		}
	}()
	if err := c.Run(24); err != nil {
		t.Fatal(err)
	}
	close(done)
	wg.Wait()
	if err := hub.Finish(); err != nil {
		t.Fatal(err)
	}
}
