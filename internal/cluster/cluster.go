// Package cluster scales CapGPU from one server to a rack: a slow
// coordinator divides a rack-level power budget among servers, each of
// which runs its own CapGPU loop against its assigned share. This is the
// deployment context the paper's introduction describes — power
// oversubscription behind a shared breaker, in the style of Facebook's
// Dynamo and Google's medium-voltage priority capping [Wu et al. 2016;
// Sakalkar et al. 2020], with CapGPU as the per-server enforcement layer.
//
// The coordinator runs every RackPeriods server control periods (the
// hierarchy's standard fast-inner/slow-outer split [Wang & Chen 2008]).
// Allocation policies:
//
//   - Uniform: equal shares — the strawman.
//   - DemandProportional: each server gets its feasible floor, and the
//     remaining budget is split in proportion to measured demand (GPU
//     utilization), so starved servers bid power away from idle ones.
//   - Priority: strict priority classes; higher classes are filled to
//     their ceilings before lower ones see any discretionary budget.
package cluster

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Node is one managed server with its local control loop.
type Node struct {
	Name     string
	Priority int // larger = more important (Priority policy only)

	Server     *sim.Server
	Controller core.PowerController

	harness  *core.Harness
	assigned float64
	records  []core.PeriodRecord
	minW     float64
	maxW     float64
	// capCeilW is an operator-imposed ceiling on the node's share
	// (0 = none): the control plane uses it for per-node cap policy and
	// for stepping a draining node down before release.
	capCeilW float64
}

// NewNode wires a server and its local controller into a managed node.
func NewNode(name string, s *sim.Server, ctrl core.PowerController, priority int) (*Node, error) {
	if s == nil || ctrl == nil {
		return nil, fmt.Errorf("cluster: node %q needs a server and a controller", name)
	}
	n := &Node{Name: name, Priority: priority, Server: s, Controller: ctrl}
	h, err := core.NewHarness(s, ctrl, func(int) float64 { return n.assigned })
	if err != nil {
		return nil, err
	}
	n.harness = h
	n.minW, n.maxW = s.PowerRange()
	// Achievable floors/ceilings include headroom for noise and the
	// non-unit utilization the range estimate assumes.
	n.minW *= 0.97
	n.assigned = n.minW
	return n, nil
}

// Records returns the node's per-period log.
func (n *Node) Records() []core.PeriodRecord { return n.records }

// Assigned returns the node's current power share.
func (n *Node) Assigned() float64 { return n.assigned }

// CapRangeW returns the node's feasible cap range as the allocator sees
// it: the achievable floor and the ceiling after any operator clamp.
func (n *Node) CapRangeW() (min, max float64) { return n.minW, n.effectiveMaxW() }

// SetCapCeilingW imposes (or, with 0, clears) an operator ceiling on
// the node's allocatable share. Ceilings below the node's floor clamp
// to the floor — a node cannot be driven below its achievable minimum;
// callers wanting less power than that must drain and release the node.
func (n *Node) SetCapCeilingW(w float64) {
	if w != 0 && w < n.minW {
		w = n.minW
	}
	n.capCeilW = w
}

// CapCeilingW returns the operator ceiling (0 = none).
func (n *Node) CapCeilingW() float64 { return n.capCeilW }

// effectiveMaxW is the allocation ceiling after the operator clamp.
func (n *Node) effectiveMaxW() float64 {
	if n.capCeilW > 0 && n.capCeilW < n.maxW {
		return n.capCeilW
	}
	return n.maxW
}

// SetFaults attaches a node-local fault schedule (meter, actuator and
// GPU faults) to the node's control loop. Rack-plane server-dropout
// faults live on the Coordinator instead, which owns the heartbeats.
func (n *Node) SetFaults(s *faults.Schedule) { n.harness.Faults = s }

// Harness exposes the node's control loop for configuration
// (degradation policy, retry budget).
func (n *Node) Harness() *core.Harness { return n.harness }

// Observation is the per-node state the coordinator allocates on.
type Observation struct {
	Name       string
	Priority   int
	PowerW     float64 // last period average
	AssignedW  float64
	MinW, MaxW float64 // feasible power range
	Demand     float64 // 0..1: how much the node would use extra power
}

// Policy decides the per-node budget split.
type Policy interface {
	Name() string
	// Allocate returns one cap per observation; implementations must
	// keep the sum at or below totalW and each cap within [MinW, MaxW]
	// when totalW permits.
	Allocate(totalW float64, obs []Observation) []float64
}

// Uniform splits the budget equally, clamped to each node's range.
type Uniform struct{}

// Name implements Policy.
func (Uniform) Name() string { return "uniform" }

// Allocate implements Policy.
func (Uniform) Allocate(totalW float64, obs []Observation) []float64 {
	out := make([]float64, len(obs))
	if len(obs) == 0 {
		return out
	}
	share := totalW / float64(len(obs))
	spare := 0.0
	for i, o := range obs {
		c := clamp(share, o.MinW, o.MaxW)
		out[i] = c
		spare += share - c
	}
	// Redistribute clamping spillover greedily.
	distributeSpare(out, obs, spare)
	return out
}

// DemandProportional gives every node its floor and splits the remainder
// in proportion to demand.
type DemandProportional struct{}

// Name implements Policy.
func (DemandProportional) Name() string { return "demand-proportional" }

// Allocate implements Policy.
func (DemandProportional) Allocate(totalW float64, obs []Observation) []float64 {
	out := make([]float64, len(obs))
	remaining := totalW
	demandSum := 0.0
	for i, o := range obs {
		out[i] = o.MinW
		remaining -= o.MinW
		demandSum += o.Demand
	}
	if remaining <= 0 {
		return out // budget below the floors: best effort
	}
	if demandSum <= 0 {
		distributeSpare(out, obs, remaining)
		return out
	}
	spare := 0.0
	for i, o := range obs {
		want := remaining * o.Demand / demandSum
		c := clamp(out[i]+want, o.MinW, o.MaxW)
		spare += out[i] + want - c
		out[i] = c
	}
	distributeSpare(out, obs, spare)
	return out
}

// Priority fills nodes in strictly descending priority order, each to
// its ceiling, after granting every node its floor.
type Priority struct{}

// Name implements Policy.
func (Priority) Name() string { return "priority" }

// Allocate implements Policy.
func (Priority) Allocate(totalW float64, obs []Observation) []float64 {
	out := make([]float64, len(obs))
	remaining := totalW
	for i, o := range obs {
		out[i] = o.MinW
		remaining -= o.MinW
	}
	if remaining <= 0 {
		return out
	}
	idx := make([]int, len(obs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return obs[idx[a]].Priority > obs[idx[b]].Priority })
	for _, i := range idx {
		grant := clamp(remaining, 0, obs[i].MaxW-out[i])
		out[i] += grant
		remaining -= grant
		if remaining <= 0 {
			break
		}
	}
	return out
}

// distributeSpare hands leftover budget to nodes with ceiling headroom.
func distributeSpare(out []float64, obs []Observation, spare float64) {
	for i := range out {
		if spare <= 0 {
			return
		}
		room := obs[i].MaxW - out[i]
		if room <= 0 {
			continue
		}
		g := spare
		if g > room {
			g = room
		}
		out[i] += g
		spare -= g
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Coordinator runs the rack.
type Coordinator struct {
	Nodes  []*Node
	Policy Policy
	// BudgetW returns the rack budget at server period k (time-varying
	// budgets model oversubscription events).
	BudgetW func(k int) float64
	// RackPeriods is how many server control periods pass between
	// reallocations (default 2: the outer loop must be slower than the
	// inner ones it commands).
	RackPeriods int
	// Workers bounds the goroutines used to fan per-node stepping out
	// between the coordinator barriers (0 = GOMAXPROCS, 1 = fully
	// sequential on the coordinator goroutine). Node loops are
	// independent between reallocations — each harness owns its own
	// seeded RNGs, simulator, and controller — so any worker count
	// produces the byte-identical record stream, telemetry, and flight
	// log; see the determinism contract in DESIGN.md.
	Workers int

	// Faults carries the rack-plane fault schedule; ServerDropout
	// entries (target = node index) make that node miss heartbeats.
	Faults *faults.Schedule
	// Silenced, when non-nil, is an additional name-keyed heartbeat
	// override: a node for which it reports true misses period k's roll
	// call exactly as a ServerDropout fault would. The control-plane
	// daemon drives churn deaths through it, because names — unlike the
	// fault DSL's node indices — stay stable as membership changes.
	Silenced func(k int, name string) bool
	// HeartbeatMisses is how many consecutive missed heartbeats declare
	// a node dead and release its budget for redistribution (default 2:
	// one miss is a transient, not a failure).
	HeartbeatMisses int
	// ReservationHoldPeriods bounds how long a dead node's guard-banded
	// budget reservation is held: after this many consecutive missed
	// heartbeats the reservation is released (with a
	// reservation-released telemetry event) and the budget returns to
	// the live nodes, so a permanently dead node cannot strand breaker
	// budget forever. Default 16 periods; negative = hold forever (the
	// pre-daemon behavior).
	ReservationHoldPeriods int
	// GuardBandFrac inflates a dead node's last reported power when
	// reserving breaker budget for it (default 0.05), since a node
	// running open-loop can drift above its last report.
	GuardBandFrac float64
	// Telemetry, when non-nil, receives the rack-scope lifecycle events:
	// each reallocation round (with the reserved breaker budget as the
	// value) and — absent NodeTelemetry — node death/recovery stamped
	// with the bare node name. Per-node loop telemetry is attached on
	// the node harnesses, not here.
	Telemetry telemetry.Sink
	// NodeTelemetry optionally carries one sink per node (index-aligned
	// with Nodes) for the node-scoped rack events: death and recovery.
	// Events go through it with an empty Node field, so a labeled
	// NodeSink stamps the same label the node's harness telemetry uses
	// and the death/recovery counters join that node's loop metrics
	// (without it, racks that run one hub across several coordinator
	// passes would collide on bare node names).
	NodeTelemetry []telemetry.Sink
	// Tracer, when non-nil, receives the causal-provenance callbacks:
	// death/recovery spans at the roll call, reservation releases, one
	// reallocation span per barrier (consuming whatever causes the
	// control plane staged), a cap-change span per node whose cap
	// moved, and the per-period observation that settles open cap
	// spans. Nil (the default) costs one nil check per site; the
	// interface is defined here (implemented by *provenance.Tracer) so
	// this package stays free of the provenance import and the hot-path
	// analyzer's walk ends at the dispatch.
	Tracer Tracer

	missed      []int     // consecutive missed heartbeats per node
	lastReport  []float64 // last power heard from each node
	haveReport  []bool
	deadPrev    []bool  // death state at the previous roll call
	resReleased []bool  // dead node's reservation released (hold expired)
	reservedW   float64 // breaker budget held back at the last realloc
	// buffers holds the per-node telemetry staging installed for
	// parallel stepping (nil entries for nodes without telemetry);
	// flushed in node-index order at the merge barrier.
	buffers []*telemetry.Buffer
	// detailBuf is the reusable scratch for the per-realloc telemetry
	// detail string (reallocate runs every rack period; fmt would box
	// three operands per call).
	detailBuf []byte
}

// Tracer is the coordinator's view of the provenance layer (see
// internal/provenance, whose *Tracer implements it). String results
// are span IDs; empty means "no span minted" (e.g. a cap move below
// the tracer's epsilon).
type Tracer interface {
	// NodeDead / NodeRecovered open and close a heartbeat-loss window.
	NodeDead(node string, k, missed int) string
	NodeRecovered(node string, k int) string
	// ReservationReleased marks a dead node's budget reservation lapsing.
	ReservationReleased(node string, k int) string
	// BeginRealloc mints the barrier's reallocation span, consuming the
	// staged causes.
	BeginRealloc(k int) string
	// CapChange mints a cap-change span under the current reallocation
	// and returns (span, parent) for the flight-record stamp.
	CapChange(node string, k int, fromW, toW float64) (id, parent string)
	// ObserveNode folds one realized period into the open windows.
	ObserveNode(node string, k int, trueW float64, failSafe, degraded bool, faults []string)
	// EndStep flushes the period's trace lines at the merge barrier.
	EndStep(k int)
}

// NewCoordinator assembles a rack controller.
func NewCoordinator(nodes []*Node, policy Policy, budget func(int) float64) (*Coordinator, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	if policy == nil || budget == nil {
		return nil, fmt.Errorf("cluster: nil policy or budget schedule")
	}
	return &Coordinator{
		Nodes: nodes, Policy: policy, BudgetW: budget, RackPeriods: 2,
		HeartbeatMisses: 2, GuardBandFrac: 0.05, ReservationHoldPeriods: DefaultReservationHold,
		missed:      make([]int, len(nodes)),
		lastReport:  make([]float64, len(nodes)),
		haveReport:  make([]bool, len(nodes)),
		deadPrev:    make([]bool, len(nodes)),
		resReleased: make([]bool, len(nodes)),
	}, nil
}

// DefaultReservationHold is the default ReservationHoldPeriods: how many
// consecutive missed heartbeats a dead node's budget reservation
// survives before it is released back to the live nodes.
const DefaultReservationHold = 16

// AddNode admits a node into the rack at the next Step, splicing fresh
// liveness bookkeeping (and, when wired, the node's telemetry sink and
// staging buffer) alongside the existing members. The sink may be nil
// when the rack runs uninstrumented.
func (c *Coordinator) AddNode(n *Node, sink telemetry.Sink) error {
	if n == nil {
		return fmt.Errorf("cluster: AddNode: nil node")
	}
	for _, m := range c.Nodes {
		if m.Name == n.Name {
			return fmt.Errorf("cluster: AddNode: node %q already a member", n.Name)
		}
	}
	c.ensureState()
	c.Nodes = append(c.Nodes, n)
	c.missed = append(c.missed, 0)
	c.lastReport = append(c.lastReport, 0)
	c.haveReport = append(c.haveReport, false)
	c.deadPrev = append(c.deadPrev, false)
	c.resReleased = append(c.resReleased, false)
	if c.NodeTelemetry != nil || sink != nil {
		for len(c.NodeTelemetry) < len(c.Nodes)-1 {
			c.NodeTelemetry = append(c.NodeTelemetry, nil)
		}
		c.NodeTelemetry = append(c.NodeTelemetry, sink)
	}
	if c.buffers != nil {
		var b *telemetry.Buffer
		if h := n.harness; h.Telemetry != nil {
			b = telemetry.NewBuffer(h.Telemetry)
			h.SetTelemetry(b, h.TelemetryNode)
		}
		c.buffers = append(c.buffers, b)
	}
	return nil
}

// RemoveNode releases the named node from the rack, splicing its
// bookkeeping out, and returns it (records intact) so the caller can
// archive its history. The last member cannot be removed — a rack with
// no nodes has nothing to coordinate.
func (c *Coordinator) RemoveNode(name string) (*Node, error) {
	i := -1
	for j, n := range c.Nodes {
		if n.Name == name {
			i = j
			break
		}
	}
	if i < 0 {
		return nil, fmt.Errorf("cluster: RemoveNode: no member %q", name)
	}
	if len(c.Nodes) == 1 {
		return nil, fmt.Errorf("cluster: RemoveNode: %q is the last member", name)
	}
	c.ensureState()
	n := c.Nodes[i]
	c.Nodes = append(c.Nodes[:i], c.Nodes[i+1:]...)
	c.missed = append(c.missed[:i], c.missed[i+1:]...)
	c.lastReport = append(c.lastReport[:i], c.lastReport[i+1:]...)
	c.haveReport = append(c.haveReport[:i], c.haveReport[i+1:]...)
	c.deadPrev = append(c.deadPrev[:i], c.deadPrev[i+1:]...)
	c.resReleased = append(c.resReleased[:i], c.resReleased[i+1:]...)
	if i < len(c.NodeTelemetry) {
		c.NodeTelemetry = append(c.NodeTelemetry[:i], c.NodeTelemetry[i+1:]...)
	}
	if i < len(c.buffers) {
		c.buffers = append(c.buffers[:i], c.buffers[i+1:]...)
	}
	return n, nil
}

// NodeDead reports whether node i has exceeded the heartbeat-miss
// threshold and had its budget redistributed.
func (c *Coordinator) NodeDead(i int) bool {
	return i >= 0 && i < len(c.missed) && c.missed[i] >= c.heartbeatMisses()
}

// Liveness returns a copy of the per-node consecutive-miss counters
// (0 = heartbeating).
func (c *Coordinator) Liveness() []int {
	return append([]int(nil), c.missed...)
}

// ReservedW returns the breaker budget held back for silent nodes at
// the most recent reallocation.
func (c *Coordinator) ReservedW() float64 { return c.reservedW }

func (c *Coordinator) heartbeatMisses() int {
	if c.HeartbeatMisses <= 0 {
		return 2
	}
	return c.HeartbeatMisses
}

// observe builds the per-node allocation inputs from the latest records
// for the given node indices.
func (c *Coordinator) observe(idx []int) []Observation {
	obs := make([]Observation, len(idx))
	for j, i := range idx {
		n := c.Nodes[i]
		o := Observation{
			Name:      n.Name,
			Priority:  n.Priority,
			AssignedW: n.assigned,
			MinW:      n.minW,
			MaxW:      n.effectiveMaxW(),
		}
		if len(n.records) > 0 {
			last := n.records[len(n.records)-1]
			o.PowerW = last.AvgPowerW
			// Demand: mean GPU utilization — saturated pipelines (util 1)
			// would convert extra power into throughput.
			s := n.Server.Last()
			sum := 0.0
			for _, u := range s.GPUUtil {
				sum += u
			}
			if len(s.GPUUtil) > 0 {
				o.Demand = sum / float64(len(s.GPUUtil))
			}
		} else {
			o.Demand = 1 // unknown: assume hungry
		}
		obs[j] = o
	}
	return obs
}

// Step advances every node through one server control period with the
// given index, reallocating the rack budget on the RackPeriods schedule.
// Nodes whose heartbeat is missing run open-loop (frequencies frozen,
// power still drawn); nodes missing HeartbeatMisses consecutive beats
// are declared dead, a guard-banded reservation of their last reported
// power is held back from the breaker budget, and the remainder is
// redistributed among the heartbeating nodes. Hierarchical
// coordinators drive racks through this entry point.
//
// The roll call, death/recovery events, and reallocation run on the
// calling goroutine as barriers; the per-node control loops then fan
// out across the Workers pool and their results merge back in
// node-index order, so records, telemetry, and flight output are
// byte-identical at every worker count.
//
//capgpu:hotpath
func (c *Coordinator) Step(k int) error {
	if c.RackPeriods < 1 {
		c.RackPeriods = 1
	}
	c.ensureState()
	// Heartbeat roll call for this period.
	for i, n := range c.Nodes {
		if c.Faults.ServerDownAt(k, i) || (c.Silenced != nil && c.Silenced(k, n.Name)) {
			c.missed[i]++
		} else {
			c.missed[i] = 0
			c.resReleased[i] = false
		}
	}
	for i, n := range c.Nodes {
		dead := c.missed[i] >= c.heartbeatMisses()
		if dead != c.deadPrev[i] {
			cause := ""
			if c.Tracer != nil {
				if dead {
					cause = c.Tracer.NodeDead(n.Name, k, c.missed[i])
				} else {
					cause = c.Tracer.NodeRecovered(n.Name, k)
				}
			}
			c.emitNodeEvent(i, n, k, dead, cause)
		}
		c.deadPrev[i] = dead
	}
	if k%c.RackPeriods == 0 {
		if err := c.reallocate(k); err != nil {
			return err
		}
	}
	// Fan the independent node loops out across the worker pool, then
	// merge in node-index order. Results are staged in pre-sized
	// per-node slots and committed only after every node succeeds, so a
	// mid-period failure appends no partial-period records and flushes
	// no partial-period telemetry.
	w := c.workers()
	if w > 1 {
		c.installBuffers()
	}
	recs := make([]core.PeriodRecord, len(c.Nodes))
	errs := make([]error, len(c.Nodes))
	//lint:ignore hotalloc one fan-out closure per rack step hands work to the fixed pool; the per-node loop inside it is allocation-free
	runIndexed(w, len(c.Nodes), func(i int) {
		if c.missed[i] > 0 {
			// Out of contact: the node's loop is not reachable, but its
			// hardware keeps drawing power at the last applied clocks.
			recs[i], errs[i] = c.Nodes[i].harness.StepUncontrolled(k)
			return
		}
		recs[i], errs[i] = c.Nodes[i].harness.StepPeriod(k)
	})
	for i, n := range c.Nodes {
		if errs[i] != nil {
			for _, b := range c.buffers {
				if b != nil {
					b.Discard()
				}
			}
			return fmt.Errorf("cluster: node %s: %w", n.Name, errs[i])
		}
	}
	for i, n := range c.Nodes {
		if i < len(c.buffers) && c.buffers[i] != nil {
			c.buffers[i].Flush()
		}
		n.records = append(n.records, recs[i])
		if c.missed[i] == 0 {
			c.lastReport[i] = recs[i].AvgPowerW
			c.haveReport[i] = true
		}
		if c.Tracer != nil {
			c.Tracer.ObserveNode(n.Name, k, recs[i].TrueAvgPowerW,
				recs[i].FailSafe, recs[i].Degraded, recs[i].Faults)
		}
	}
	if c.Tracer != nil {
		c.Tracer.EndStep(k)
	}
	return nil
}

// workers resolves the effective fan-out width for this rack.
func (c *Coordinator) workers() int {
	w := c.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(c.Nodes) {
		w = len(c.Nodes)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// installBuffers rewires each instrumented node's telemetry through an
// ordered-replay Buffer so parallel stepping emits events and period
// samples in node-index order at the merge barrier, byte-identical to
// the sequential path. Phase spans pass through unbuffered (the hub
// serializes them; the zero clock used in seeded contexts makes every
// span 0 s, so the exposition is unchanged too). Installation is
// one-shot and sticky: once a rack has stepped with Workers > 1, its
// telemetry stays staged-and-flushed even if Workers later drops to 1
// — the output bytes are the same either way.
func (c *Coordinator) installBuffers() {
	if c.buffers != nil {
		return
	}
	c.buffers = make([]*telemetry.Buffer, len(c.Nodes))
	for i, n := range c.Nodes {
		h := n.harness
		if h.Telemetry == nil {
			continue
		}
		b := telemetry.NewBuffer(h.Telemetry)
		h.SetTelemetry(b, h.TelemetryNode)
		c.buffers[i] = b
	}
}

// emitNodeEvent reports node i's death or recovery. The per-node sink
// is preferred when wired: the event leaves Node empty so the sink
// stamps its own label, matching the node's harness telemetry; without
// one, the rack sink gets the event with the bare node name.
func (c *Coordinator) emitNodeEvent(i int, n *Node, k int, dead bool, cause string) {
	sink, name := c.Telemetry, n.Name
	if i < len(c.NodeTelemetry) && c.NodeTelemetry[i] != nil {
		sink, name = c.NodeTelemetry[i], ""
	}
	if sink == nil {
		return
	}
	e := telemetry.Event{TimeS: n.Server.Now(), Period: k, Node: name, Device: -1, Cause: cause}
	if dead {
		e.Type = telemetry.EventNodeDead
		e.Value = float64(c.missed[i])
	} else {
		e.Type = telemetry.EventNodeRecovered
	}
	sink.Emit(e)
}

// emitReservationReleased reports that node i's dead-node budget
// reservation lapsed after the hold, preferring the per-node sink so
// the event joins that node's loop metrics.
func (c *Coordinator) emitReservationReleased(i int, n *Node, k, hold int, cause string) {
	sink, name := c.Telemetry, n.Name
	if i < len(c.NodeTelemetry) && c.NodeTelemetry[i] != nil {
		sink, name = c.NodeTelemetry[i], ""
	}
	if sink == nil {
		return
	}
	last := n.maxW
	if c.haveReport[i] {
		last = c.lastReport[i]
	}
	sink.Emit(telemetry.Event{
		TimeS: n.Server.Now(), Period: k, Type: telemetry.EventReservationReleased,
		Node: name, Device: -1, Value: last * (1 + c.GuardBandFrac), Cause: cause,
		//lint:ignore hotalloc fires once per dead-node hold expiry, not per period; formatting cost is acceptable for the event trail
		Detail: fmt.Sprintf("missed=%d hold=%d", c.missed[i], hold),
	})
}

// ensureState sizes the liveness bookkeeping (for coordinators built
// with a struct literal rather than NewCoordinator).
func (c *Coordinator) ensureState() {
	if len(c.missed) != len(c.Nodes) {
		c.missed = make([]int, len(c.Nodes))
		c.lastReport = make([]float64, len(c.Nodes))
		c.haveReport = make([]bool, len(c.Nodes))
		c.deadPrev = make([]bool, len(c.Nodes))
		c.resReleased = make([]bool, len(c.Nodes))
		c.buffers = nil // re-install for the new node set
	}
	if len(c.resReleased) != len(c.Nodes) { // coordinators predating the hold
		c.resReleased = make([]bool, len(c.Nodes))
	}
}

// reallocate splits the breaker budget at period k among the
// heartbeating nodes, reserving guard-banded budget for silent ones.
func (c *Coordinator) reallocate(k int) error {
	live := make([]int, 0, len(c.Nodes))
	reserved := 0.0
	guard := c.GuardBandFrac
	if guard < 0 {
		guard = 0
	}
	hold := c.ReservationHoldPeriods
	if hold == 0 {
		hold = DefaultReservationHold
	}
	for i, n := range c.Nodes {
		switch {
		case c.missed[i] == 0:
			live = append(live, i)
		case c.missed[i] < c.heartbeatMisses():
			// Possibly a transient: assume the node still enforces the
			// cap it was last assigned, and hold that budget for it.
			reserved += n.assigned
		case hold > 0 && c.missed[i] >= hold:
			// The hold expired: a node silent this long is not coming
			// back on its own, and pinning its guard-banded reservation
			// forever would strand breaker budget. Release it — once,
			// with a telemetry event — and let the live nodes have it.
			// (The open-loop node's residual draw is the operator's
			// problem now: the release event is the page.)
			if !c.resReleased[i] {
				c.resReleased[i] = true
				cause := ""
				if c.Tracer != nil {
					cause = c.Tracer.ReservationReleased(n.Name, k)
				}
				c.emitReservationReleased(i, n, k, hold, cause)
			}
		default:
			// Dead: it runs open-loop at its last reported draw; reserve
			// that plus the guard band and redistribute the rest.
			last := n.maxW // never heard from: assume the worst
			if c.haveReport[i] {
				last = c.lastReport[i]
			}
			reserved += last * (1 + guard)
		}
	}
	c.reservedW = reserved
	// The reallocation span consumes every cause staged so far this
	// barrier — policy ops from the control plane, deaths/recoveries
	// from the roll call, the reservation releases just above.
	reallocID := ""
	if c.Tracer != nil {
		reallocID = c.Tracer.BeginRealloc(k)
	}
	if c.Telemetry != nil {
		b := append(c.detailBuf[:0], "policy="...)
		b = append(b, c.Policy.Name()...)
		b = append(b, " live="...)
		b = strconv.AppendInt(b, int64(len(live)), 10)
		b = append(b, '/')
		b = strconv.AppendInt(b, int64(len(c.Nodes)), 10)
		c.detailBuf = b
		c.Telemetry.Emit(telemetry.Event{
			TimeS: c.Nodes[0].Server.Now(), Period: k, Type: telemetry.EventReallocation,
			Device: -1, Value: reserved,
			Detail: string(b), Cause: reallocID,
		})
	}
	if len(live) == 0 {
		return nil
	}
	budget := c.BudgetW(k) - reserved
	if budget < 0 {
		budget = 0
	}
	caps := c.Policy.Allocate(budget, c.observe(live))
	if len(caps) != len(live) {
		return fmt.Errorf("cluster: policy %s returned %d caps for %d nodes",
			c.Policy.Name(), len(caps), len(live))
	}
	// The breaker trumps policy floors: if clamping to feasible ranges
	// pushed the sum above the live budget, scale everything back.
	sum := 0.0
	for _, v := range caps {
		sum += v
	}
	if sum > budget && sum > 0 {
		scale := budget / sum
		for i := range caps {
			caps[i] *= scale
		}
	}
	for j, i := range live {
		if c.Tracer != nil {
			if id, parent := c.Tracer.CapChange(c.Nodes[i].Name, k, c.Nodes[i].assigned, caps[j]); id != "" {
				c.Nodes[i].harness.CauseID = id
				c.Nodes[i].harness.CauseParent = parent
			}
		}
		c.Nodes[i].assigned = caps[j]
	}
	return nil
}

// Run advances every node through the given number of server control
// periods, reallocating the rack budget every RackPeriods periods.
func (c *Coordinator) Run(periods int) error {
	for k := 0; k < periods; k++ {
		if err := c.Step(k); err != nil {
			return err
		}
	}
	return nil
}

// TotalPowerSeries returns the rack's per-period total power.
func (c *Coordinator) TotalPowerSeries() []float64 {
	if len(c.Nodes) == 0 {
		return nil
	}
	n := len(c.Nodes[0].records)
	out := make([]float64, n)
	for _, node := range c.Nodes {
		for i := 0; i < n && i < len(node.records); i++ {
			out[i] += node.records[i].AvgPowerW
		}
	}
	return out
}

// AggregateThroughput returns the rack's steady-state GPU throughput
// (img/s summed over all nodes and GPUs, averaged over the last
// len-steadyFrom periods).
func (c *Coordinator) AggregateThroughput(steadyFrom int) float64 {
	total, n := 0.0, 0.0
	for _, node := range c.Nodes {
		if steadyFrom >= len(node.records) {
			continue
		}
		for _, r := range node.records[steadyFrom:] {
			for _, tp := range r.GPUThroughput {
				total += tp
			}
			n++
		}
	}
	if n == 0 {
		return 0
	}
	// Per-period rack throughput: sum over nodes, mean over periods.
	return total / n * float64(len(c.Nodes))
}
