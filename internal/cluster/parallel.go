package cluster

import (
	"sync"
	"sync/atomic"
)

// runIndexed runs fn(i) for every i in [0, n), fanning the calls out
// across at most workers goroutines. workers <= 1 degenerates to a
// plain index-order loop on the calling goroutine, so the sequential
// path stays exactly what it was before parallel stepping existed.
//
// This is the repo's one approved goroutine-launch site inside the
// determinism lint scope (the determinism analyzer flags `go`
// statements anywhere else): callers get parallelism only between
// barriers, must stage any ordered output in pre-sized per-index
// slots, and merge in index order after runIndexed returns. The
// WaitGroup provides the happens-before edge that makes the staged
// slots safe to read without further synchronization.
func runIndexed(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
