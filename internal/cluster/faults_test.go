package cluster

import (
	"testing"
	"testing/quick"

	"repro/internal/baselines"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// cheapNode builds a node around a Safe Fixed-Step controller — no
// system identification, so fault/property tests stay fast.
func cheapNode(t *testing.T, name string, seed int64) *Node {
	t.Helper()
	s, err := sim.NewServer(sim.DefaultTestbed(seed))
	if err != nil {
		t.Fatal(err)
	}
	zoo := workload.Zoo()
	p, err := workload.NewPipeline(workload.PipelineConfig{
		Model: zoo["resnet50"], Workers: 2, PreLatencyBase: 0.004, PreLatencyExp: 0.4,
		ArrivalRateMax: 250, ArrivalExp: 0.5, QueueCap: 60, FcMax: 2.4, FgMax: 1350, Seed: seed + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AttachPipeline(0, p); err != nil {
		t.Fatal(err)
	}
	ctrl, err := baselines.NewFixedStep(s, 3, 30)
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNode(name, s, ctrl, 0)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// liveCommandedW returns the sum of caps commanded to heartbeating
// nodes. The coordinator's safety contract is that this never exceeds
// the breaker budget minus its reservations for silent nodes — silent
// nodes draw power the coordinator cannot command away, so it must
// only ever hand out what is left. (When every node is silent the
// reservation alone can exceed the breaker; nothing is commanded then,
// and the excess is physics, not allocation.)
func liveCommandedW(c *Coordinator) float64 {
	total := 0.0
	for i, m := range c.Liveness() {
		if m == 0 {
			total += c.Nodes[i].Assigned()
		}
	}
	return total
}

// commandedBudgetW is the allocation ceiling the contract compares
// against: the breaker minus reservations, floored at zero.
func commandedBudgetW(c *Coordinator, budget float64) float64 {
	b := budget - c.ReservedW()
	if b < 0 {
		b = 0
	}
	return b
}

// TestCoordinatorServerDropoutRedistributes: a dropped server runs
// open-loop, gets declared dead after HeartbeatMisses, its budget is
// redistributed with a guard band, and the commanded total never
// exceeds the breaker.
func TestCoordinatorServerDropoutRedistributes(t *testing.T) {
	nodes := []*Node{
		cheapNode(t, "a", 301),
		cheapNode(t, "b", 302),
		cheapNode(t, "c", 303),
	}
	const budget = 2700.0
	co, err := NewCoordinator(nodes, DemandProportional{}, func(int) float64 { return budget })
	if err != nil {
		t.Fatal(err)
	}
	sched, err := faults.Parse("server-dropout@8+8:node0", 13)
	if err != nil {
		t.Fatal(err)
	}
	co.Faults = sched
	var beforeB, duringB float64
	for k := 0; k < 24; k++ {
		if k == 8 {
			beforeB = nodes[1].Assigned()
		}
		if err := co.Step(k); err != nil {
			t.Fatal(err)
		}
		if co.NodeDead(0) && nodes[1].Assigned() > duringB {
			duringB = nodes[1].Assigned()
		}
		if k%co.RackPeriods == 0 {
			if got, lim := liveCommandedW(co), commandedBudgetW(co, budget); got > lim+1e-6 {
				t.Fatalf("period %d: commanded %g W exceeds remaining budget %g W", k, got, lim)
			}
		}
		switch {
		case k >= 8 && k < 16:
			last := nodes[0].Records()[len(nodes[0].Records())-1]
			if !last.Uncontrolled {
				t.Fatalf("period %d: dropped node still ran its control loop", k)
			}
			if k >= 9 && !co.NodeDead(0) {
				t.Fatalf("period %d: node0 not declared dead after 2 misses", k)
			}
		case k >= 16:
			if co.NodeDead(0) {
				t.Fatalf("period %d: node0 still dead after heartbeat returned", k)
			}
		}
	}
	// The survivors inherited the dead node's budget (minus the guard
	// band) at some reallocation during the outage.
	if duringB <= beforeB {
		t.Fatalf("redistribution never raised a survivor's share (b: %g -> %g)",
			beforeB, duringB)
	}
	// Recovery: the returned node rejoins allocation with a real share.
	if nodes[0].Assigned() <= 0 {
		t.Fatal("recovered node got no budget")
	}
}

// TestCoordinatorNodeEventLabels: death/recovery events go through the
// per-node sinks when wired, so they carry the same label the node's
// harness telemetry uses ("<policy>/<node>" in the rack rig) and the
// death/recovery counters join that node's loop metrics; without
// per-node sinks, the rack sink gets the bare node name.
func TestCoordinatorNodeEventLabels(t *testing.T) {
	run := func(wire func(co *Coordinator, hub *telemetry.Hub)) (*telemetry.Hub, []telemetry.Event) {
		nodes := []*Node{cheapNode(t, "a", 321), cheapNode(t, "b", 322)}
		co, err := NewCoordinator(nodes, Uniform{}, func(int) float64 { return 1900 })
		if err != nil {
			t.Fatal(err)
		}
		sched, err := faults.Parse("server-dropout@2+4:node0", 5)
		if err != nil {
			t.Fatal(err)
		}
		co.Faults = sched
		hub := telemetry.New(telemetry.Config{})
		wire(co, hub)
		if err := co.Run(12); err != nil {
			t.Fatal(err)
		}
		var out []telemetry.Event
		for _, e := range hub.Events() {
			if e.Type == telemetry.EventNodeDead || e.Type == telemetry.EventNodeRecovered {
				out = append(out, e)
			}
		}
		return hub, out
	}

	hub, labeled := run(func(co *Coordinator, hub *telemetry.Hub) {
		co.Telemetry = hub.NodeSink("uniform")
		co.NodeTelemetry = []telemetry.Sink{
			hub.NodeSink("uniform/a"), hub.NodeSink("uniform/b"),
		}
	})
	if len(labeled) != 2 {
		t.Fatalf("got %d death/recovery events, want death + recovery", len(labeled))
	}
	for _, e := range labeled {
		if e.Node != "uniform/a" {
			t.Fatalf("event %s labeled %q, want harness label %q", e.Type, e.Node, "uniform/a")
		}
	}
	if got := hub.CounterValue("capgpu_node_deaths_total", telemetry.L("node", "uniform/a")); got != 1 {
		t.Fatalf("death counter under harness label = %g, want 1", got)
	}

	_, bare := run(func(co *Coordinator, hub *telemetry.Hub) {
		co.Telemetry = hub
	})
	if len(bare) != 2 {
		t.Fatalf("fallback: got %d death/recovery events, want 2", len(bare))
	}
	for _, e := range bare {
		if e.Node != "a" {
			t.Fatalf("fallback event %s labeled %q, want bare %q", e.Type, e.Node, "a")
		}
	}
}

// TestCoordinatorCommandedPowerProperty is the rack-plane safety
// property: under ANY fault schedule, the coordinator's commanded
// allocation (live caps plus reservations for silent nodes) never
// exceeds the breaker budget at any reallocation.
func TestCoordinatorCommandedPowerProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	nodes := []*Node{
		cheapNode(t, "a", 311),
		cheapNode(t, "b", 312),
	}
	const budget = 1900.0
	run := func(seed int64, s0, d0, s1, d1, kindSel uint8) bool {
		co, err := NewCoordinator(nodes, Uniform{}, func(int) float64 { return budget })
		if err != nil {
			t.Fatal(err)
		}
		kinds := []faults.Kind{faults.ServerDropout, faults.MeterDropout, faults.ActuatorLoss}
		co.Faults = faults.New(seed,
			faults.Fault{Kind: faults.ServerDropout, Start: int(s0 % 10), Duration: 1 + int(d0%8), Target: 0},
			faults.Fault{Kind: kinds[int(kindSel)%len(kinds)], Start: int(s1 % 10), Duration: 1 + int(d1%8), Target: faults.TargetAll},
		)
		// Node-local planes (meter, actuator) see the same schedule.
		for _, n := range nodes {
			n.SetFaults(co.Faults)
		}
		for k := 0; k < 14; k++ {
			if err := co.Step(k); err != nil {
				t.Fatal(err)
			}
			if k%co.RackPeriods == 0 && liveCommandedW(co) > commandedBudgetW(co, budget)+1e-6 {
				t.Logf("seed %d faults %s: period %d commanded %g > remaining %g",
					seed, co.Faults, k, liveCommandedW(co), commandedBudgetW(co, budget))
				return false
			}
		}
		return true
	}
	if err := quick.Check(run, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
