package cluster

import (
	"math"
	"testing"
)

// near compares within an absolute tolerance loose enough for the
// policies' float arithmetic.
func near(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDistributeSpare(t *testing.T) {
	obs3 := []Observation{
		{MinW: 100, MaxW: 300},
		{MinW: 100, MaxW: 400},
		{MinW: 100, MaxW: 500},
	}
	cases := []struct {
		name  string
		out   []float64
		obs   []Observation
		spare float64
		want  []float64
	}{
		{"absorbed by first node's headroom", []float64{200, 200, 200}, obs3, 50, []float64{250, 200, 200}},
		{"overflows across nodes in order", []float64{250, 350, 200}, obs3, 150, []float64{300, 400, 250}},
		{"excess beyond all ceilings is dropped", []float64{300, 400, 450}, obs3, 500, []float64{300, 400, 500}},
		{"zero spare is a no-op", []float64{200, 200, 200}, obs3, 0, []float64{200, 200, 200}},
		{"negative spare is a no-op", []float64{200, 200, 200}, obs3, -10, []float64{200, 200, 200}},
		{"empty observation set", nil, nil, 100, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := append([]float64(nil), tc.out...)
			distributeSpare(out, tc.obs, tc.spare)
			if len(out) != len(tc.want) {
				t.Fatalf("len %d, want %d", len(out), len(tc.want))
			}
			for i := range out {
				if !near(out[i], tc.want[i]) {
					t.Errorf("out[%d] = %v, want %v", i, out[i], tc.want[i])
				}
			}
		})
	}
}

// policyCase is one table entry shared across the three Allocate
// implementations; want is keyed by policy name.
type policyCase struct {
	name   string
	totalW float64
	obs    []Observation
	want   map[string][]float64
}

func TestPolicyAllocateTables(t *testing.T) {
	policies := []Policy{Uniform{}, DemandProportional{}, Priority{}}
	cases := []policyCase{
		{
			// All nodes dead: reallocate never calls Allocate with an
			// empty live set, but the policies must still be total.
			name: "all-dead empty observation set", totalW: 900,
			obs: nil,
			want: map[string][]float64{
				"uniform": {}, "demand-proportional": {}, "priority": {},
			},
		},
		{
			name: "single live node clamps to its ceiling", totalW: 900,
			obs: []Observation{{MinW: 100, MaxW: 400, Demand: 0.5, Priority: 1}},
			want: map[string][]float64{
				"uniform": {400}, "demand-proportional": {400}, "priority": {400},
			},
		},
		{
			name: "single live node under-budget floors", totalW: 50,
			obs: []Observation{{MinW: 100, MaxW: 400, Demand: 1}},
			want: map[string][]float64{
				"uniform": {100}, "demand-proportional": {100}, "priority": {100},
			},
		},
		{
			// Zero demand everywhere: demand-proportional falls back to
			// greedy spare distribution above the floors.
			name: "zero demand", totalW: 600,
			obs: []Observation{
				{MinW: 100, MaxW: 500, Demand: 0, Priority: 0},
				{MinW: 100, MaxW: 150, Demand: 0, Priority: 2},
			},
			want: map[string][]float64{
				"uniform":             {450, 150}, // clamp spillover refills node 0
				"demand-proportional": {500, 100},
				"priority":            {450, 150}, // class 2 to its ceiling, rest to class 0
			},
		},
		{
			name: "demand splits the remainder", totalW: 500,
			obs: []Observation{
				{MinW: 100, MaxW: 500, Demand: 0.75, Priority: 0},
				{MinW: 100, MaxW: 500, Demand: 0.25, Priority: 1},
			},
			want: map[string][]float64{
				"uniform":             {250, 250},
				"demand-proportional": {325, 175}, // floors + 300 split 3:1
				"priority":            {100, 400}, // priority 1 takes the whole remainder
			},
		},
	}
	for _, tc := range cases {
		for _, pol := range policies {
			want, ok := tc.want[pol.Name()]
			if !ok {
				t.Fatalf("case %q missing expectation for %s", tc.name, pol.Name())
			}
			t.Run(tc.name+"/"+pol.Name(), func(t *testing.T) {
				got := pol.Allocate(tc.totalW, tc.obs)
				if len(got) != len(want) {
					t.Fatalf("%d caps, want %d", len(got), len(want))
				}
				sum := 0.0
				for i := range got {
					if !near(got[i], want[i]) {
						t.Errorf("cap[%d] = %v, want %v", i, got[i], want[i])
					}
					sum += got[i]
				}
				// The policy contract: caps sum to at most the budget
				// whenever the budget covers the floors.
				floors := 0.0
				for _, o := range tc.obs {
					floors += o.MinW
				}
				if tc.totalW >= floors && sum > tc.totalW+1e-9 {
					t.Errorf("caps sum %v exceeds budget %v", sum, tc.totalW)
				}
			})
		}
	}
}
