package cluster

import (
	"strings"
	"testing"
)

// badPolicy returns the wrong number of caps, violating the Allocate
// contract the coordinator checks.
type badPolicy struct{}

func (badPolicy) Name() string { return "bad" }
func (badPolicy) Allocate(totalW float64, obs []Observation) []float64 {
	return make([]float64, len(obs)+1)
}

// TestStepWrongCapCount: a policy violating the one-cap-per-node
// contract fails the reallocation barrier before any node steps, so no
// period records are appended anywhere.
func TestStepWrongCapCount(t *testing.T) {
	nodes := []*Node{cheapNode(t, "a", 1), cheapNode(t, "b", 2)}
	c, err := NewCoordinator(nodes, badPolicy{}, func(int) float64 { return 1200 })
	if err != nil {
		t.Fatal(err)
	}
	err = c.Step(0)
	if err == nil || !strings.Contains(err.Error(), "returned 3 caps for 2 nodes") {
		t.Fatalf("want cap-count contract error, got %v", err)
	}
	for _, n := range nodes {
		if len(n.Records()) != 0 {
			t.Errorf("node %s has %d records after a failed reallocation", n.Name, len(n.Records()))
		}
	}
}

// TestStepNodeFailureNoPartialRecords: when one node's loop fails
// mid-period, the staged commit must drop the whole period — no node,
// failing or healthy, may keep a record for it — at every worker
// count, and the failing node must be named deterministically.
func TestStepNodeFailureNoPartialRecords(t *testing.T) {
	for _, workers := range []int{1, 3} {
		nodes := []*Node{cheapNode(t, "a", 1), cheapNode(t, "b", 2), cheapNode(t, "c", 3)}
		c, err := NewCoordinator(nodes, Uniform{}, func(int) float64 { return 1800 })
		if err != nil {
			t.Fatal(err)
		}
		c.Workers = workers
		if err := c.Step(0); err != nil {
			t.Fatal(err)
		}
		// Break node b for the next period only.
		nodes[1].Harness().PeriodSeconds = -1
		err = c.Step(1)
		if err == nil || !strings.Contains(err.Error(), "node b") {
			t.Fatalf("workers=%d: want node b's failure, got %v", workers, err)
		}
		for _, n := range nodes {
			if len(n.Records()) != 1 {
				t.Errorf("workers=%d: node %s has %d records, want only the first period",
					workers, n.Name, len(n.Records()))
			}
		}
		// Recovery: fixing the node resumes clean stepping.
		nodes[1].Harness().PeriodSeconds = 4
		if err := c.Step(2); err != nil {
			t.Fatalf("workers=%d: step after repair: %v", workers, err)
		}
		for _, n := range nodes {
			if len(n.Records()) != 2 {
				t.Errorf("workers=%d: node %s has %d records after repair, want 2",
					workers, n.Name, len(n.Records()))
			}
		}
	}
}

// TestStepFailureDiscardsStagedTelemetry: in parallel mode the failed
// period's staged telemetry is discarded along with the records, so
// the next successful period starts from a clean stage.
func TestStepFailureDiscardsStagedTelemetry(t *testing.T) {
	c, hub := parallelRack(t, 47, 4, nil)
	if err := c.Step(0); err != nil {
		t.Fatal(err)
	}
	before := hub.EventsTotal()
	c.Nodes[2].Harness().PeriodSeconds = -1
	if err := c.Step(1); err == nil {
		t.Fatal("want step failure")
	}
	// Only barrier-side events (reallocation, death/recovery) may have
	// landed for the failed period; node-loop events must not.
	for _, e := range hub.Events() {
		if e.Period == 1 && e.Type != "reallocation" && e.Type != "node-dead" && e.Type != "node-recovered" {
			t.Errorf("node-loop event %q leaked from the failed period", e.Type)
		}
	}
	c.Nodes[2].Harness().PeriodSeconds = 4
	if err := c.Step(2); err != nil {
		t.Fatal(err)
	}
	if hub.EventsTotal() <= before {
		t.Error("no events recorded after the repaired period")
	}
}
