package cluster

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/sysid"
	"repro/internal/workload"
)

// buildNode assembles a server with nPipelines inference pipelines (0-3)
// and a CapGPU controller identified on a twin.
func buildNode(t *testing.T, name string, seed int64, nPipelines, priority int) *Node {
	t.Helper()
	build := func(sd int64) *sim.Server {
		s, err := sim.NewServer(sim.DefaultTestbed(sd))
		if err != nil {
			t.Fatal(err)
		}
		zoo := workload.Zoo()
		cfgs := []workload.PipelineConfig{
			{Model: zoo["resnet50"], Workers: 2, PreLatencyBase: 0.004, PreLatencyExp: 0.4,
				ArrivalRateMax: 250, ArrivalExp: 0.5, QueueCap: 60, FcMax: 2.4, FgMax: 1350, Seed: sd + 1},
			{Model: zoo["swin_t"], Workers: 2, PreLatencyBase: 0.010, PreLatencyExp: 0.4,
				ArrivalRateMax: 100, ArrivalExp: 0.5, QueueCap: 60, FcMax: 2.4, FgMax: 1350, Seed: sd + 2},
			{Model: zoo["vgg16"], Workers: 2, PreLatencyBase: 0.008, PreLatencyExp: 0.4,
				ArrivalRateMax: 130, ArrivalExp: 0.5, QueueCap: 60, FcMax: 2.4, FgMax: 1350, Seed: sd + 3},
		}
		for i := 0; i < nPipelines && i < 3; i++ {
			p, err := workload.NewPipeline(cfgs[i])
			if err != nil {
				t.Fatal(err)
			}
			if err := s.AttachPipeline(i, p); err != nil {
				t.Fatal(err)
			}
		}
		w, err := workload.NewCPUWorkload(workload.CPUWorkloadConfig{RateAtMax: 40, FcMax: 2.4, Seed: sd + 9})
		if err != nil {
			t.Fatal(err)
		}
		s.AttachCPUWorkload(w)
		return s
	}
	twin := build(seed + 5000)
	model, _, err := sysid.Identify(twin, sysid.ExciteConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s := build(seed)
	ctrl, err := core.NewCapGPU(model, s, nil, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNode(name, s, ctrl, priority)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewNodeValidation(t *testing.T) {
	if _, err := NewNode("x", nil, nil, 0); err == nil {
		t.Fatal("expected nil-server error")
	}
}

func TestNewCoordinatorValidation(t *testing.T) {
	if _, err := NewCoordinator(nil, Uniform{}, func(int) float64 { return 100 }); err == nil {
		t.Fatal("expected no-nodes error")
	}
	n := buildNode(t, "a", 1, 3, 0)
	if _, err := NewCoordinator([]*Node{n}, nil, func(int) float64 { return 100 }); err == nil {
		t.Fatal("expected nil-policy error")
	}
	if _, err := NewCoordinator([]*Node{n}, Uniform{}, nil); err == nil {
		t.Fatal("expected nil-budget error")
	}
}

func TestPoliciesRespectBudgetAndRanges(t *testing.T) {
	obs := []Observation{
		{Name: "a", MinW: 700, MaxW: 1250, Demand: 1.0, Priority: 2},
		{Name: "b", MinW: 700, MaxW: 1250, Demand: 0.5, Priority: 1},
		{Name: "c", MinW: 700, MaxW: 1250, Demand: 0.1, Priority: 0},
	}
	for _, pol := range []Policy{Uniform{}, DemandProportional{}, Priority{}} {
		for _, budget := range []float64{2100, 2700, 3300, 4000} {
			caps := pol.Allocate(budget, obs)
			if len(caps) != 3 {
				t.Fatalf("%s: %d caps", pol.Name(), len(caps))
			}
			sum := 0.0
			for i, c := range caps {
				sum += c
				if c < obs[i].MinW-1e-9 || c > obs[i].MaxW+1e-9 {
					t.Fatalf("%s@%g: node %d cap %g outside [%g, %g]",
						pol.Name(), budget, i, c, obs[i].MinW, obs[i].MaxW)
				}
			}
			// Allocations never exceed the budget (when the budget covers
			// the floors).
			if budget >= 2100 && sum > budget+1e-6 {
				t.Fatalf("%s@%g: allocated %g over budget", pol.Name(), budget, sum)
			}
		}
	}
}

func TestDemandProportionalFavorsHungryNodes(t *testing.T) {
	obs := []Observation{
		{Name: "hungry", MinW: 700, MaxW: 1600, Demand: 1.0},
		{Name: "idle", MinW: 700, MaxW: 1600, Demand: 0.1},
	}
	caps := DemandProportional{}.Allocate(2200, obs)
	if caps[0] <= caps[1] {
		t.Fatalf("hungry node got %g, idle got %g", caps[0], caps[1])
	}
	// Extra above the floors: 800 split 10:1 (no ceiling in the way).
	if math.Abs((caps[0]-700)-10*(caps[1]-700)) > 1e-6 {
		t.Fatalf("split not demand-proportional: %v", caps)
	}
}

func TestPriorityFillsHighClassFirst(t *testing.T) {
	obs := []Observation{
		{Name: "low", MinW: 700, MaxW: 1250, Priority: 0},
		{Name: "high", MinW: 700, MaxW: 1250, Priority: 5},
	}
	caps := Priority{}.Allocate(2100, obs)
	// 700 W discretionary: the high class fills to its 1250 ceiling
	// (+550) before the low class sees the remaining 150.
	if math.Abs(caps[1]-1250) > 1e-9 {
		t.Fatalf("high-priority node got %g, want its 1250 ceiling", caps[1])
	}
	if math.Abs(caps[0]-850) > 1e-9 {
		t.Fatalf("low-priority node got %g, want floor+leftover 850", caps[0])
	}
}

func TestUniformRedistributesClampSpill(t *testing.T) {
	obs := []Observation{
		{Name: "small", MinW: 400, MaxW: 600},
		{Name: "big", MinW: 700, MaxW: 1400},
	}
	caps := Uniform{}.Allocate(2000, obs)
	// Equal share would be 1000 each; the small node clamps at 600 and
	// the spill flows to the big one.
	if caps[0] != 600 {
		t.Fatalf("small node cap %g, want 600", caps[0])
	}
	if math.Abs(caps[0]+caps[1]-2000) > 1e-9 {
		t.Fatalf("spill lost: total %g", caps[0]+caps[1])
	}
}

func TestCoordinatorRackBudgetHeld(t *testing.T) {
	nodes := []*Node{
		buildNode(t, "heavy", 11, 3, 2),
		buildNode(t, "medium", 22, 2, 1),
		buildNode(t, "light", 33, 1, 0),
	}
	coord, err := NewCoordinator(nodes, DemandProportional{}, func(int) float64 { return 2850 })
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Run(50); err != nil {
		t.Fatal(err)
	}
	total := coord.TotalPowerSeries()
	if len(total) != 50 {
		t.Fatalf("series length %d", len(total))
	}
	// Steady state: rack total at or under budget (small noise grace).
	over := 0
	for _, p := range total[20:] {
		if p > 2850*1.015 {
			over++
		}
	}
	if over > 2 {
		t.Fatalf("rack budget exceeded in %d/30 steady periods", over)
	}
	for _, n := range nodes {
		if len(n.Records()) != 50 {
			t.Fatalf("node %s has %d records", n.Name, len(n.Records()))
		}
		if n.Assigned() <= 0 {
			t.Fatalf("node %s has no assignment", n.Name)
		}
	}
}

func TestDemandProportionalBeatsUniformThroughput(t *testing.T) {
	run := func(pol Policy) float64 {
		nodes := []*Node{
			buildNode(t, "heavy", 11, 3, 2),
			buildNode(t, "medium", 22, 2, 1),
			buildNode(t, "light", 33, 1, 0),
		}
		coord, err := NewCoordinator(nodes, pol, func(int) float64 { return 2850 })
		if err != nil {
			t.Fatal(err)
		}
		if err := coord.Run(60); err != nil {
			t.Fatal(err)
		}
		return coord.AggregateThroughput(30)
	}
	uniform := run(Uniform{})
	demand := run(DemandProportional{})
	if demand <= uniform {
		t.Fatalf("demand-proportional throughput %g should beat uniform %g", demand, uniform)
	}
}
