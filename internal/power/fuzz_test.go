package power

import (
	"math"
	"strings"
	"testing"
)

// FuzzParseReadingsLenient hammers the lenient meter-file parser with
// arbitrary bytes: it must never panic, never fail (lenient mode skips
// garbage rather than erroring on it), and every reading it does accept
// must carry a finite timestamp and a power value that the strict
// parser would also have accepted on its own.
func FuzzParseReadingsLenient(f *testing.F) {
	seeds := []string{
		"0.000 285000\n1.000 291500\n",
		"# comment\n\n  2.5 300000  \n",
		"1.0 285000\ngarbage line\n2.0 290000\n",
		"1.0\n",
		"1.0 2.0 3.0\n",
		"NaN 285000\n",
		"Inf 285000\n",
		"1e308 285000\n",
		"1.0 99999999999999999999\n",
		"1.0 -285000\n",
		"-1.5 0\n",
		"",
		"\n\n\n",
		"#\n# only comments\n",
		"0x10 285000\n",
		"1.0 285000", // no trailing newline
		strings.Repeat("1.0 285000\n", 100),
		strings.Repeat("x", 200) + " 1\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		rs, skipped, err := ParseReadingsLenient(strings.NewReader(in))
		if err != nil {
			// Only the underlying reader can error; a strings.Reader
			// fails solely on pathological line lengths (bufio limit).
			if !strings.Contains(err.Error(), "token too long") {
				t.Fatalf("lenient parse errored on in-memory input: %v", err)
			}
			return
		}
		if skipped < 0 {
			t.Fatalf("negative skip count %d", skipped)
		}
		for i, r := range rs {
			if math.IsNaN(r.TimeS) || math.IsInf(r.TimeS, 0) {
				t.Fatalf("reading %d has non-finite time: %+v", i, r)
			}
			if math.IsNaN(r.PowerW) || math.IsInf(r.PowerW, 0) {
				t.Fatalf("reading %d has non-finite power: %+v", i, r)
			}
		}
		// Lenient and strict parses must agree whenever strict succeeds.
		strict, serr := ParseReadings(strings.NewReader(in))
		if serr == nil {
			if skipped != 0 {
				t.Fatalf("strict parse succeeded but lenient skipped %d lines", skipped)
			}
			if len(strict) != len(rs) {
				t.Fatalf("strict kept %d readings, lenient %d", len(strict), len(rs))
			}
		}
	})
}
