package power

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestNewMeterValidation(t *testing.T) {
	if _, err := NewMeter(0); err == nil {
		t.Fatal("expected interval error")
	}
	m, err := NewMeter(1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Interval() != 1 {
		t.Fatalf("interval = %g", m.Interval())
	}
}

func TestRecordAndLatest(t *testing.T) {
	m, _ := NewMeter(1)
	if _, ok := m.Latest(); ok {
		t.Fatal("empty meter should have no latest reading")
	}
	m.Record(1, 900.1234567)
	r, ok := m.Latest()
	if !ok {
		t.Fatal("no reading after Record")
	}
	// Milliwatt quantization.
	if math.Abs(r.PowerW-900.123) > 1e-9 {
		t.Fatalf("quantized power = %v, want 900.123", r.PowerW)
	}
}

func TestAverageSince(t *testing.T) {
	m, _ := NewMeter(1)
	for i := 1; i <= 8; i++ {
		m.Record(float64(i), float64(100*i))
	}
	avg, n, ok := m.AverageSince(4)
	if !ok || n != 4 {
		t.Fatalf("n = %d ok = %v, want 4 readings after t=4", n, ok)
	}
	// Readings at t=5..8: 500..800 -> mean 650.
	if math.Abs(avg-650) > 1e-9 {
		t.Fatalf("avg = %g, want 650", avg)
	}
	// An empty window must say so explicitly, not report 0 W.
	if _, n, ok := m.AverageSince(100); ok || n != 0 {
		t.Fatalf("future window: n = %d ok = %v, want empty/false", n, ok)
	}
	rs := m.ReadingsSince(6)
	if len(rs) != 2 || rs[0].TimeS != 7 || rs[1].TimeS != 8 {
		t.Fatalf("ReadingsSince(6) = %+v", rs)
	}
}

func TestRobustAverage(t *testing.T) {
	if _, ok := RobustAverage(nil); ok {
		t.Fatal("empty window should not be ok")
	}
	// Below 4 samples: plain mean.
	rs := []Reading{{1, 100}, {2, 200}}
	if avg, ok := RobustAverage(rs); !ok || avg != 150 {
		t.Fatalf("short-window avg = %g", avg)
	}
	// One spiked sample among 4 is trimmed out entirely.
	rs = []Reading{{1, 900}, {2, 902}, {3, 1500}, {4, 898}}
	avg, ok := RobustAverage(rs)
	if !ok || math.Abs(avg-901) > 1e-9 {
		t.Fatalf("trimmed avg = %g, want 901 (spike excised)", avg)
	}
}

func TestHistoryBounded(t *testing.T) {
	m, _ := NewMeter(1)
	for i := 0; i < 10000; i++ {
		m.Record(float64(i), 1)
	}
	if _, n, _ := m.AverageSince(-1); n > 4096 {
		t.Fatalf("history grew unbounded: %d", n)
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	m, _ := NewMeter(1)
	m.Record(1, 901.5)
	m.Record(2, 902.25)
	m.Record(3, 899.75)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseReadings(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d readings", len(got))
	}
	want := []Reading{{1, 901.5}, {2, 902.25}, {3, 899.75}}
	for i := range want {
		if math.Abs(got[i].PowerW-want[i].PowerW) > 1e-9 || got[i].TimeS != want[i].TimeS {
			t.Fatalf("reading %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestParseReadingsErrors(t *testing.T) {
	for _, bad := range []string{
		"1.0",          // missing field
		"x 900",        // bad time
		"1.0 not-a-mw", // bad power
		"1 2 3",        // too many fields
	} {
		if _, err := ParseReadings(strings.NewReader(bad)); err == nil {
			t.Fatalf("expected parse error for %q", bad)
		}
	}
	// Errors name the offending line number.
	_, err := ParseReadings(strings.NewReader("1.0 900000\n2.0 901000\ngarbage\n"))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error %v does not name line 3", err)
	}
	// NaN/Inf timestamps are rejected, not silently accepted.
	if _, err := ParseReadings(strings.NewReader("NaN 900000\n")); err == nil {
		t.Fatal("NaN time accepted")
	}
	// Comments and blanks are fine.
	got, err := ParseReadings(strings.NewReader("# header\n\n1.0 900000\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].PowerW != 900 {
		t.Fatalf("got %+v", got)
	}
}

func TestParseReadingsLenient(t *testing.T) {
	in := "1.0 900000\ngarbage\n2.0 901000\nx y\n3.0 1 2\n4.0 902000\n"
	got, skipped, err := ParseReadingsLenient(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 3 {
		t.Fatalf("skipped = %d, want 3", skipped)
	}
	if len(got) != 3 || got[2].PowerW != 902 {
		t.Fatalf("kept %+v", got)
	}
}

func TestSampleAndReadDevices(t *testing.T) {
	s, err := sim.NewServer(sim.DefaultTestbed(1))
	if err != nil {
		t.Fatal(err)
	}
	s.SetCPUFreq(2.0)
	s.Tick(1)
	m, _ := NewMeter(1)
	m.Sample(s)
	r, ok := m.Latest()
	if !ok {
		t.Fatal("sample not recorded")
	}
	if math.Abs(r.PowerW-s.Last().MeasuredW) > 0.001 {
		t.Fatalf("meter %g vs server %g", r.PowerW, s.Last().MeasuredW)
	}
	dev := ReadDevices(s)
	if len(dev.GPUPowerW) != 3 {
		t.Fatalf("want 3 GPU readings, got %d", len(dev.GPUPowerW))
	}
	sum := dev.CPUPowerW + dev.OtherW
	for _, g := range dev.GPUPowerW {
		sum += g
	}
	if math.Abs(sum-dev.TotalW) > 1e-9 {
		t.Fatalf("device readings sum %g != total %g", sum, dev.TotalW)
	}
}
