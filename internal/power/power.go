// Package power emulates the measurement plane of the paper's testbed
// (§5): an ACPI-compliant server-level power meter exposed through the
// lm-sensors `power_meter-acpi-0` interface (1-second sampling, readings
// appended to a sysfs-style file the controller polls), plus the
// per-device readings (RAPL-like for the CPU, NVML/nvidia-smi-like for
// the GPUs) that the CPU+GPU baseline's split control loops rely on.
package power

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"sync"

	"repro/internal/sim"
)

// Meter is the ACPI-style server power meter. It samples the simulated
// server at a fixed interval, quantizes to the device's milliwatt
// resolution, and keeps a bounded history so a control period's average
// can be computed the way the paper's controller does (it averages the
// power-meter file's readings over the 4-second control period, §6.1).
type Meter struct {
	mu       sync.Mutex
	interval float64 // seconds between samples
	readings []Reading
	maxKeep  int
}

// Reading is one sampled power value.
type Reading struct {
	TimeS  float64 // simulated seconds
	PowerW float64
}

// NewMeter returns a meter with the given sampling interval in seconds
// (the paper's meter samples at 1 s minimum).
func NewMeter(intervalSeconds float64) (*Meter, error) {
	if intervalSeconds <= 0 {
		return nil, fmt.Errorf("power: sampling interval %g must be positive", intervalSeconds)
	}
	return &Meter{interval: intervalSeconds, maxKeep: 4096}, nil
}

// Interval returns the sampling interval in seconds.
func (m *Meter) Interval() float64 {
	return m.interval
}

// Record appends a sample taken from the server. ACPI meters report in
// milliwatts; the quantization is reproduced here.
func (m *Meter) Record(t float64, powerW float64) {
	q := math.Round(powerW*1000) / 1000
	m.mu.Lock()
	defer m.mu.Unlock()
	m.readings = append(m.readings, Reading{TimeS: t, PowerW: q})
	if len(m.readings) > m.maxKeep {
		m.readings = m.readings[len(m.readings)-m.maxKeep:]
	}
}

// Sample records the server's current measured power.
func (m *Meter) Sample(s *sim.Server) {
	last := s.Last()
	m.Record(last.TimeS, last.MeasuredW)
}

// Latest returns the most recent reading.
func (m *Meter) Latest() (Reading, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.readings) == 0 {
		return Reading{}, false
	}
	return m.readings[len(m.readings)-1], true
}

// AverageSince returns the mean power of all readings with TimeS > since,
// which is how the controller condenses a control period's samples. The
// third return is false when the window holds no readings at all — a
// meter outage — so callers cannot mistake an empty window for a 0 W
// average (which would slam every clock to its maximum).
func (m *Meter) AverageSince(since float64) (avg float64, n int, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	sum := 0.0
	for i := len(m.readings) - 1; i >= 0; i-- {
		r := m.readings[i]
		if r.TimeS <= since {
			break
		}
		sum += r.PowerW
		n++
	}
	if n == 0 {
		return 0, 0, false
	}
	return sum / float64(n), n, true
}

// ReadingsSince returns a copy of every reading with TimeS > since, in
// chronological order — the raw window robust estimators (trimmed mean,
// stuck-value detection) work from.
func (m *Meter) ReadingsSince(since float64) []Reading {
	m.mu.Lock()
	defer m.mu.Unlock()
	i := len(m.readings)
	for i > 0 && m.readings[i-1].TimeS > since {
		i--
	}
	return append([]Reading(nil), m.readings[i:]...)
}

// WriteTo renders the reading history in the sysfs-like line format the
// paper's controller tails (`<time_s> <power_mW>` per line), so cmd
// tools can expose an authentic file interface.
func (m *Meter) WriteTo(w io.Writer) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total int64
	for _, r := range m.readings {
		n, err := fmt.Fprintf(w, "%.3f %d\n", r.TimeS, int64(math.Round(r.PowerW*1000)))
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ParseReadings parses the line format produced by WriteTo, as the
// controller's file-polling path does. The first malformed line aborts
// the parse with an error naming the line number; a meter file that a
// crashing firmware half-wrote should be handled with
// ParseReadingsLenient instead.
func ParseReadings(r io.Reader) ([]Reading, error) {
	out, _, err := parseReadings(r, false)
	return out, err
}

// ParseReadingsLenient parses like ParseReadings but skips malformed
// lines (truncated writes, firmware garbage) instead of failing,
// returning how many were dropped so callers can alarm on a corrupt
// meter without going blind.
func ParseReadingsLenient(r io.Reader) ([]Reading, int, error) {
	return parseReadings(r, true)
}

func parseReadings(r io.Reader, lenient bool) ([]Reading, int, error) {
	var out []Reading
	sc := bufio.NewScanner(r)
	line, skipped := 0, 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		rd, err := parseLine(line, text)
		if err != nil {
			if lenient {
				skipped++
				continue
			}
			return nil, 0, err
		}
		out = append(out, rd)
	}
	if err := sc.Err(); err != nil {
		return nil, skipped, err
	}
	return out, skipped, nil
}

func parseLine(line int, text string) (Reading, error) {
	fields := strings.Fields(text)
	if len(fields) != 2 {
		return Reading{}, fmt.Errorf("power: line %d: want `time mW`, got %q", line, text)
	}
	t, err := strconv.ParseFloat(fields[0], 64)
	if err != nil || math.IsNaN(t) || math.IsInf(t, 0) {
		return Reading{}, fmt.Errorf("power: line %d: bad time %q", line, fields[0])
	}
	mw, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Reading{}, fmt.Errorf("power: line %d: bad power %q", line, fields[1])
	}
	return Reading{TimeS: t, PowerW: float64(mw) / 1000}, nil
}

// RobustAverage condenses a period's readings into an average that one
// corrupted sample cannot steer: with four or more readings the single
// highest and lowest are dropped (a 1-sample trimmed mean — an ACPI
// glitch or injected spike lands in the trimmed tail), otherwise it
// degrades to the plain mean. ok is false for an empty window.
func RobustAverage(rs []Reading) (avg float64, ok bool) {
	if len(rs) == 0 {
		return 0, false
	}
	if len(rs) < 4 {
		sum := 0.0
		for _, r := range rs {
			sum += r.PowerW
		}
		return sum / float64(len(rs)), true
	}
	sum, lo, hi := 0.0, rs[0].PowerW, rs[0].PowerW
	for _, r := range rs {
		sum += r.PowerW
		if r.PowerW < lo {
			lo = r.PowerW
		}
		if r.PowerW > hi {
			hi = r.PowerW
		}
	}
	return (sum - lo - hi) / float64(len(rs)-2), true
}

// DeviceReadings exposes per-device power the way `nvidia-smi -q -d
// POWER` and RAPL do; the CPU+GPU baseline controls against these
// instead of the server meter.
type DeviceReadings struct {
	CPUPowerW  float64
	GPUPowerW  []float64
	OtherW     float64
	TotalW     float64
	NoiseModel string
}

// ReadDevices captures the server's per-device power at the last tick.
func ReadDevices(s *sim.Server) DeviceReadings {
	last := s.Last()
	return DeviceReadings{
		CPUPowerW: last.CPUPowerW,
		GPUPowerW: append([]float64(nil), last.GPUPowerW...),
		// RAPL/NVML do not observe chassis-level thermal drift; it lands
		// in the unattributed remainder alongside the fixed floor.
		OtherW:     s.Config().OtherW + last.DriftW,
		TotalW:     last.TruePowerW,
		NoiseModel: "per-device readings are noise-free as on RAPL/NVML",
	}
}
