// Package power emulates the measurement plane of the paper's testbed
// (§5): an ACPI-compliant server-level power meter exposed through the
// lm-sensors `power_meter-acpi-0` interface (1-second sampling, readings
// appended to a sysfs-style file the controller polls), plus the
// per-device readings (RAPL-like for the CPU, NVML/nvidia-smi-like for
// the GPUs) that the CPU+GPU baseline's split control loops rely on.
package power

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"sync"

	"repro/internal/sim"
)

// Meter is the ACPI-style server power meter. It samples the simulated
// server at a fixed interval, quantizes to the device's milliwatt
// resolution, and keeps a bounded history so a control period's average
// can be computed the way the paper's controller does (it averages the
// power-meter file's readings over the 4-second control period, §6.1).
type Meter struct {
	mu       sync.Mutex
	interval float64 // seconds between samples
	readings []Reading
	maxKeep  int
}

// Reading is one sampled power value.
type Reading struct {
	Time   float64 // simulated seconds
	PowerW float64
}

// NewMeter returns a meter with the given sampling interval in seconds
// (the paper's meter samples at 1 s minimum).
func NewMeter(intervalSeconds float64) (*Meter, error) {
	if intervalSeconds <= 0 {
		return nil, fmt.Errorf("power: sampling interval %g must be positive", intervalSeconds)
	}
	return &Meter{interval: intervalSeconds, maxKeep: 4096}, nil
}

// Interval returns the sampling interval in seconds.
func (m *Meter) Interval() float64 {
	return m.interval
}

// Record appends a sample taken from the server. ACPI meters report in
// milliwatts; the quantization is reproduced here.
func (m *Meter) Record(t float64, powerW float64) {
	q := math.Round(powerW*1000) / 1000
	m.mu.Lock()
	defer m.mu.Unlock()
	m.readings = append(m.readings, Reading{Time: t, PowerW: q})
	if len(m.readings) > m.maxKeep {
		m.readings = m.readings[len(m.readings)-m.maxKeep:]
	}
}

// Sample records the server's current measured power.
func (m *Meter) Sample(s *sim.Server) {
	last := s.Last()
	m.Record(last.Time, last.MeasuredW)
}

// Latest returns the most recent reading.
func (m *Meter) Latest() (Reading, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.readings) == 0 {
		return Reading{}, false
	}
	return m.readings[len(m.readings)-1], true
}

// AverageSince returns the mean power of all readings with Time > since,
// which is how the controller condenses a control period's samples.
func (m *Meter) AverageSince(since float64) (float64, int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	sum, n := 0.0, 0
	for i := len(m.readings) - 1; i >= 0; i-- {
		r := m.readings[i]
		if r.Time <= since {
			break
		}
		sum += r.PowerW
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}

// WriteTo renders the reading history in the sysfs-like line format the
// paper's controller tails (`<time_s> <power_mW>` per line), so cmd
// tools can expose an authentic file interface.
func (m *Meter) WriteTo(w io.Writer) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total int64
	for _, r := range m.readings {
		n, err := fmt.Fprintf(w, "%.3f %d\n", r.Time, int64(math.Round(r.PowerW*1000)))
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ParseReadings parses the line format produced by WriteTo, as the
// controller's file-polling path does.
func ParseReadings(r io.Reader) ([]Reading, error) {
	var out []Reading
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("power: line %d: want `time mW`, got %q", line, text)
		}
		t, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("power: line %d time: %w", line, err)
		}
		mw, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("power: line %d power: %w", line, err)
		}
		out = append(out, Reading{Time: t, PowerW: float64(mw) / 1000})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// DeviceReadings exposes per-device power the way `nvidia-smi -q -d
// POWER` and RAPL do; the CPU+GPU baseline controls against these
// instead of the server meter.
type DeviceReadings struct {
	CPUPowerW  float64
	GPUPowerW  []float64
	OtherW     float64
	TotalW     float64
	NoiseModel string
}

// ReadDevices captures the server's per-device power at the last tick.
func ReadDevices(s *sim.Server) DeviceReadings {
	last := s.Last()
	return DeviceReadings{
		CPUPowerW: last.CPUPowerW,
		GPUPowerW: append([]float64(nil), last.GPUPowerW...),
		// RAPL/NVML do not observe chassis-level thermal drift; it lands
		// in the unattributed remainder alongside the fixed floor.
		OtherW:     s.Config().OtherW + last.DriftW,
		TotalW:     last.TruePowerW,
		NoiseModel: "per-device readings are noise-free as on RAPL/NVML",
	}
}
