package actuator

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeltaSigmaValidation(t *testing.T) {
	if _, err := NewDeltaSigma(2, 2, 1); err == nil {
		t.Fatal("expected range error")
	}
	if _, err := NewDeltaSigma(0, 1, -1); err == nil {
		t.Fatal("expected negative-step error")
	}
	if _, err := NewDeltaSigma(0, 1, 5); err == nil {
		t.Fatal("expected step-too-large error")
	}
}

func TestPaperExampleTwoToThree(t *testing.T) {
	// §5: approximating 2.25 on a {2, 3} grid by toggling 2,2,2,3.
	d, err := NewDeltaSigma(2, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[float64]int{}
	sum := 0.0
	n := 400
	for i := 0; i < n; i++ {
		v := d.Next(2.25)
		counts[v]++
		sum += v
	}
	if len(counts) != 2 {
		t.Fatalf("expected toggling between exactly 2 levels, got %v", counts)
	}
	if avg := sum / float64(n); math.Abs(avg-2.25) > 0.01 {
		t.Fatalf("time-average %g, want 2.25", avg)
	}
	// Roughly 3:1 ratio of 2s to 3s.
	if r := float64(counts[2]) / float64(counts[3]); r < 2.6 || r > 3.4 {
		t.Fatalf("level ratio %g, want ~3", r)
	}
}

func TestOnGridTargetIsExact(t *testing.T) {
	d, _ := NewDeltaSigma(435, 1350, 15)
	for i := 0; i < 50; i++ {
		if v := d.Next(600); v != 600 {
			t.Fatalf("on-grid target produced %g", v)
		}
	}
}

func TestClampingAtRails(t *testing.T) {
	d, _ := NewDeltaSigma(1.0, 2.4, 0.1)
	for i := 0; i < 20; i++ {
		if v := d.Next(99); v != 2.4 {
			t.Fatalf("above-max target produced %g", v)
		}
	}
	for i := 0; i < 20; i++ {
		if v := d.Next(-5); v != 1.0 {
			t.Fatalf("below-min target produced %g", v)
		}
	}
	// After sitting at a rail, tracking must resume promptly (no windup).
	sum := 0.0
	for i := 0; i < 200; i++ {
		sum += d.Next(1.75)
	}
	if avg := sum / 200; math.Abs(avg-1.75) > 0.02 {
		t.Fatalf("post-rail average %g, want 1.75", avg)
	}
}

func TestDisabledFallsBackToRounding(t *testing.T) {
	d, _ := NewDeltaSigma(0, 10, 1)
	d.SetEnabled(false)
	if d.Enabled() {
		t.Fatal("SetEnabled(false) ignored")
	}
	for i := 0; i < 10; i++ {
		if v := d.Next(4.4); v != 4 {
			t.Fatalf("disabled modulator returned %g, want plain rounding to 4", v)
		}
	}
	d.SetEnabled(true)
	sum := 0.0
	for i := 0; i < 300; i++ {
		sum += d.Next(4.4)
	}
	if avg := sum / 300; math.Abs(avg-4.4) > 0.02 {
		t.Fatalf("re-enabled average %g, want 4.4", avg)
	}
}

func TestContinuousGridPassThrough(t *testing.T) {
	d, err := NewDeltaSigma(0, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v := d.Next(3.14159); v != 3.14159 {
		t.Fatalf("continuous grid altered value: %g", v)
	}
	if d.Levels() != nil {
		t.Fatal("continuous grid should have no levels")
	}
}

func TestLevels(t *testing.T) {
	d, _ := NewDeltaSigma(1.0, 2.4, 0.1)
	levels := d.Levels()
	if len(levels) != 15 {
		t.Fatalf("got %d levels, want 15", len(levels))
	}
	if levels[0] != 1.0 || math.Abs(levels[14]-2.4) > 1e-9 {
		t.Fatalf("level endpoints: %g .. %g", levels[0], levels[14])
	}
}

// Property: the running mean of the modulator output converges to any
// in-range target within half a step after enough periods.
func TestQuickTimeAverageConvergence(t *testing.T) {
	f := func(numer uint8) bool {
		target := 435 + (1350-435)*float64(numer)/255
		d, err := NewDeltaSigma(435, 1350, 15)
		if err != nil {
			return false
		}
		sum := 0.0
		n := 600
		for i := 0; i < n; i++ {
			v := d.Next(target)
			if v < 435 || v > 1350 {
				return false
			}
			sum += v
		}
		return math.Abs(sum/float64(n)-target) < 1.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: output is always a valid grid level.
func TestQuickOutputOnGrid(t *testing.T) {
	d, _ := NewDeltaSigma(435, 1350, 15)
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		v := d.Next(raw)
		steps := (v - 435) / 15
		return v >= 435 && v <= 1350 && math.Abs(steps-math.Round(steps)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBank(t *testing.T) {
	b, err := NewBank(
		[]float64{1.0, 435, 435},
		[]float64{2.4, 1350, 1350},
		[]float64{0.1, 15, 15},
	)
	if err != nil {
		t.Fatal(err)
	}
	if b.Size() != 3 {
		t.Fatalf("size %d", b.Size())
	}
	out, err := b.Next([]float64{1.77, 700, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("output length %d", len(out))
	}
	if _, err := b.Next([]float64{1}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	b.SetEnabled(false)
	if b.Mod(0).Enabled() {
		t.Fatal("bank disable did not propagate")
	}
	b.SetEnabled(true)
	b.Reset()
}

func TestBankValidation(t *testing.T) {
	if _, err := NewBank([]float64{0}, []float64{1, 2}, []float64{0.1}); err == nil {
		t.Fatal("expected slice-length error")
	}
	if _, err := NewBank(nil, nil, nil); err == nil {
		t.Fatal("expected empty-bank error")
	}
	if _, err := NewBank([]float64{5}, []float64{1}, []float64{0.1}); err == nil {
		t.Fatal("expected inverted-range error")
	}
}

func TestResetClearsResidual(t *testing.T) {
	d, _ := NewDeltaSigma(0, 10, 1)
	seq1 := []float64{d.Next(0.5), d.Next(0.5), d.Next(0.5)}
	d.Reset()
	seq2 := []float64{d.Next(0.5), d.Next(0.5), d.Next(0.5)}
	for i := range seq1 {
		if seq1[i] != seq2[i] {
			t.Fatalf("sequence differs after reset: %v vs %v", seq1, seq2)
		}
	}
}

func BenchmarkDeltaSigmaNext(b *testing.B) {
	d, _ := NewDeltaSigma(435, 1350, 15)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Next(987.6)
	}
}

func TestApplyVerifiedHappyPath(t *testing.T) {
	b, _ := NewBank([]float64{1.0, 435}, []float64{2.4, 1350}, []float64{0.1, 15})
	rep, err := b.ApplyVerified([]float64{1.73, 900}, func(dev, attempt int, level float64) float64 {
		return level // hardware honors every command
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retries != 0 || rep.AnyDiverged() {
		t.Fatalf("clean apply reported retries=%d diverged=%v", rep.Retries, rep.Diverged)
	}
	for i := range rep.Commanded {
		if rep.Applied[i] != rep.Commanded[i] {
			t.Fatalf("device %d applied %g != commanded %g", i, rep.Applied[i], rep.Commanded[i])
		}
	}
}

func TestApplyVerifiedRetryRecovers(t *testing.T) {
	b, _ := NewBank([]float64{435}, []float64{1350}, []float64{15})
	calls := 0
	rep, err := b.ApplyVerified([]float64{900}, func(dev, attempt int, level float64) float64 {
		calls++
		if attempt == 0 {
			return 435 // first delivery lost: clock still at the old level
		}
		return level
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 || rep.Retries != 1 {
		t.Fatalf("calls=%d retries=%d, want one retry that succeeds", calls, rep.Retries)
	}
	if rep.AnyDiverged() {
		t.Fatalf("recovered apply still flagged diverged: %v", rep.Diverged)
	}
}

func TestApplyVerifiedBoundedAndFlagged(t *testing.T) {
	b, _ := NewBank([]float64{435}, []float64{1350}, []float64{15})
	calls := 0
	rep, err := b.ApplyVerified([]float64{900}, func(dev, attempt int, level float64) float64 {
		calls++
		return 435 // every delivery lost
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 4 {
		t.Fatalf("made %d attempts, want 1 + 3 retries", calls)
	}
	if !rep.AnyDiverged() || !rep.Diverged[0] {
		t.Fatal("persistent loss not flagged as divergence")
	}
	if rep.Applied[0] != 435 {
		t.Fatalf("applied = %g, want the stale 435", rep.Applied[0])
	}
}

func TestApplyVerifiedValidation(t *testing.T) {
	b, _ := NewBank([]float64{435}, []float64{1350}, []float64{15})
	if _, err := b.ApplyVerified([]float64{900, 900}, func(int, int, float64) float64 { return 0 }, 1); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	if _, err := b.ApplyVerified([]float64{900}, nil, 1); err == nil {
		t.Fatal("expected nil-applier error")
	}
}
