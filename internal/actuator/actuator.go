// Package actuator implements the frequency modulators of §5: the
// controller emits fractional (floating-point) frequency commands, but
// cpupower and nvidia-smi accept only discrete levels, so each device's
// modulator resolves the command into a sequence of discrete steps whose
// time average converges to the target — a first-order delta-sigma
// modulator, exactly as the paper describes ("by toggling between the
// values 2, 2, 2, and 3, the time-averaged frequency converges to the
// desired value").
package actuator

import (
	"fmt"
	"math"

	"repro/internal/telemetry"
)

// DeltaSigma is a first-order delta-sigma modulator over a discrete
// frequency grid {min, min+step, ..., max}.
type DeltaSigma struct {
	min, max, step float64
	residual       float64 // accumulated quantization error
	enabled        bool
}

// NewDeltaSigma builds a modulator for the given grid. If step is 0 the
// grid is continuous and the modulator passes values through.
func NewDeltaSigma(min, max, step float64) (*DeltaSigma, error) {
	if min >= max {
		return nil, fmt.Errorf("actuator: invalid range [%g, %g]", min, max)
	}
	if step < 0 {
		return nil, fmt.Errorf("actuator: negative step %g", step)
	}
	if step > max-min {
		return nil, fmt.Errorf("actuator: step %g exceeds range width %g", step, max-min)
	}
	return &DeltaSigma{min: min, max: max, step: step, enabled: true}, nil
}

// SetEnabled toggles delta-sigma modulation. When disabled the modulator
// degenerates to plain rounding onto the grid (the A2 ablation).
func (d *DeltaSigma) SetEnabled(on bool) {
	d.enabled = on
	if !on {
		d.residual = 0
	}
}

// Enabled reports whether modulation is active.
func (d *DeltaSigma) Enabled() bool { return d.enabled }

// Reset clears the accumulated quantization error.
func (d *DeltaSigma) Reset() { d.residual = 0 }

// Next resolves one period's command: given a fractional target, it
// returns the discrete level to apply this period. Over successive
// periods with a constant target, the mean of the returned levels
// converges to the target (clamped to the grid's range).
func (d *DeltaSigma) Next(target float64) float64 {
	t := math.Min(math.Max(target, d.min), d.max)
	if d.step == 0 {
		return t
	}
	if !d.enabled {
		return d.quantize(t)
	}
	// First-order delta-sigma: quantize (target + error), carry the
	// new error forward.
	want := t + d.residual
	level := d.quantize(want)
	d.residual = want - level
	// Keep the residual bounded (clamping at the rails stops error
	// accumulation from winding up).
	if d.residual > d.step {
		d.residual = d.step
	} else if d.residual < -d.step {
		d.residual = -d.step
	}
	return level
}

// quantize rounds onto the grid and clamps.
func (d *DeltaSigma) quantize(v float64) float64 {
	n := math.Round((v - d.min) / d.step)
	level := d.min + n*d.step
	if level < d.min {
		level = d.min
	}
	if level > d.max {
		level = d.max
	}
	return level
}

// Range returns the modulator's [min, max] frequency window.
func (d *DeltaSigma) Range() (min, max float64) { return d.min, d.max }

// Step returns the grid step (0 = continuous).
func (d *DeltaSigma) Step() float64 { return d.step }

// Levels returns the discrete grid (useful for the Fixed-Step baseline,
// which moves exactly one level at a time).
func (d *DeltaSigma) Levels() []float64 {
	if d.step == 0 {
		return nil
	}
	n := int(math.Floor((d.max-d.min)/d.step + 1e-9))
	out := make([]float64, 0, n+1)
	for i := 0; i <= n; i++ {
		out = append(out, d.min+float64(i)*d.step)
	}
	return out
}

// Bank is the set of modulators for one server: index 0 is the CPU, the
// rest are the GPUs, matching the frequency-vector layout used by the
// controllers (F = [f_c, f_g1, ..., f_gNg], §4.2).
type Bank struct {
	mods []*DeltaSigma

	sink    telemetry.Sink // nil = telemetry disabled
	node    string
	period  int
	periodS float64 // simulated seconds at the stamped period
}

// SetTelemetry attaches a telemetry sink; divergence events are labeled
// with the given node name. A nil sink disables emission.
func (b *Bank) SetTelemetry(sink telemetry.Sink, node string) {
	b.sink = sink
	b.node = node
}

// StampPeriod records the control-period index and simulated time the
// next ApplyVerified cycle's events carry. The harness calls this each
// period; standalone users of the bank may ignore it.
func (b *Bank) StampPeriod(period int, nowS float64) {
	b.period = period
	b.periodS = nowS
}

// NewBank builds modulators from parallel min/max/step slices.
func NewBank(min, max, step []float64) (*Bank, error) {
	if len(min) != len(max) || len(min) != len(step) {
		return nil, fmt.Errorf("actuator: bank slice lengths %d/%d/%d differ", len(min), len(max), len(step))
	}
	if len(min) == 0 {
		return nil, fmt.Errorf("actuator: empty bank")
	}
	b := &Bank{mods: make([]*DeltaSigma, len(min))}
	for i := range min {
		m, err := NewDeltaSigma(min[i], max[i], step[i])
		if err != nil {
			return nil, fmt.Errorf("actuator: modulator %d: %w", i, err)
		}
		b.mods[i] = m
	}
	return b, nil
}

// Size returns the number of modulators.
func (b *Bank) Size() int { return len(b.mods) }

// Mod returns the i-th modulator.
func (b *Bank) Mod(i int) *DeltaSigma { return b.mods[i] }

// Next resolves a full command vector for one period.
func (b *Bank) Next(targets []float64) ([]float64, error) {
	if len(targets) != len(b.mods) {
		return nil, fmt.Errorf("actuator: %d targets for %d modulators", len(targets), len(b.mods))
	}
	out := make([]float64, len(targets))
	for i, t := range targets {
		out[i] = b.mods[i].Next(t)
	}
	return out, nil
}

// ApplyFunc delivers one discrete level to device dev (0 = CPU, 1.. =
// GPUs) and returns the frequency the hardware reports afterwards —
// the sysfs/nvidia-smi read-back a production agent performs after
// every write. attempt numbers the delivery try (0 = first), so fault
// injectors can decide each retry independently and deterministically.
type ApplyFunc func(dev, attempt int, level float64) float64

// ApplyReport is the outcome of one verified command cycle.
type ApplyReport struct {
	Commanded []float64 // modulator outputs, one per device
	Applied   []float64 // hardware read-back after the final attempt
	Diverged  []bool    // applied differs from commanded beyond tolerance
	Retries   int       // total re-deliveries across all devices
}

// AnyDiverged reports whether any device ended the cycle off its
// commanded level.
func (r *ApplyReport) AnyDiverged() bool {
	for _, d := range r.Diverged {
		if d {
			return true
		}
	}
	return false
}

// ApplyVerified resolves the fractional targets through the modulators
// and delivers each resulting level with applied-vs-commanded
// verification: after every delivery the read-back is compared against
// the command (tolerance: half a grid step, or 1e-9 on continuous
// grids), and a mismatched device is retried up to maxRetries times.
// Devices still diverged after the retry budget are flagged in the
// report rather than failing the cycle — a capping loop must keep
// running on the devices it can still steer.
func (b *Bank) ApplyVerified(targets []float64, apply ApplyFunc, maxRetries int) (*ApplyReport, error) {
	if len(targets) != len(b.mods) {
		return nil, fmt.Errorf("actuator: %d targets for %d modulators", len(targets), len(b.mods))
	}
	if apply == nil {
		return nil, fmt.Errorf("actuator: nil apply function")
	}
	if maxRetries < 0 {
		maxRetries = 0
	}
	rep := &ApplyReport{
		Commanded: make([]float64, len(targets)),
		Applied:   make([]float64, len(targets)),
		Diverged:  make([]bool, len(targets)),
	}
	for i, t := range targets {
		cmd := b.mods[i].Next(t)
		rep.Commanded[i] = cmd
		tol := b.mods[i].Step() / 2
		if tol <= 0 {
			tol = 1e-9
		}
		got := apply(i, 0, cmd)
		for attempt := 1; math.Abs(got-cmd) > tol && attempt <= maxRetries; attempt++ {
			rep.Retries++
			got = apply(i, attempt, cmd)
		}
		rep.Applied[i] = got
		rep.Diverged[i] = math.Abs(got-cmd) > tol
		if b.sink != nil && rep.Diverged[i] {
			b.sink.Emit(telemetry.Event{
				TimeS: b.periodS, Period: b.period, Type: telemetry.EventActuatorDiverge,
				Node: b.node, Device: i, Value: got - cmd,
				//lint:ignore hotalloc formats only when a read-back diverges, a rare fault event worth the allocation
				Detail: fmt.Sprintf("commanded %.4g applied %.4g after %d retries", cmd, got, maxRetries),
			})
		}
	}
	return rep, nil
}

// SetEnabled toggles modulation for the whole bank.
func (b *Bank) SetEnabled(on bool) {
	for _, m := range b.mods {
		m.SetEnabled(on)
	}
}

// Reset clears every modulator's residual.
func (b *Bank) Reset() {
	for _, m := range b.mods {
		m.Reset()
	}
}
