// Package actuator implements the frequency modulators of §5: the
// controller emits fractional (floating-point) frequency commands, but
// cpupower and nvidia-smi accept only discrete levels, so each device's
// modulator resolves the command into a sequence of discrete steps whose
// time average converges to the target — a first-order delta-sigma
// modulator, exactly as the paper describes ("by toggling between the
// values 2, 2, 2, and 3, the time-averaged frequency converges to the
// desired value").
package actuator

import (
	"fmt"
	"math"
)

// DeltaSigma is a first-order delta-sigma modulator over a discrete
// frequency grid {min, min+step, ..., max}.
type DeltaSigma struct {
	min, max, step float64
	residual       float64 // accumulated quantization error
	enabled        bool
}

// NewDeltaSigma builds a modulator for the given grid. If step is 0 the
// grid is continuous and the modulator passes values through.
func NewDeltaSigma(min, max, step float64) (*DeltaSigma, error) {
	if min >= max {
		return nil, fmt.Errorf("actuator: invalid range [%g, %g]", min, max)
	}
	if step < 0 {
		return nil, fmt.Errorf("actuator: negative step %g", step)
	}
	if step > max-min {
		return nil, fmt.Errorf("actuator: step %g exceeds range width %g", step, max-min)
	}
	return &DeltaSigma{min: min, max: max, step: step, enabled: true}, nil
}

// SetEnabled toggles delta-sigma modulation. When disabled the modulator
// degenerates to plain rounding onto the grid (the A2 ablation).
func (d *DeltaSigma) SetEnabled(on bool) {
	d.enabled = on
	if !on {
		d.residual = 0
	}
}

// Enabled reports whether modulation is active.
func (d *DeltaSigma) Enabled() bool { return d.enabled }

// Reset clears the accumulated quantization error.
func (d *DeltaSigma) Reset() { d.residual = 0 }

// Next resolves one period's command: given a fractional target, it
// returns the discrete level to apply this period. Over successive
// periods with a constant target, the mean of the returned levels
// converges to the target (clamped to the grid's range).
func (d *DeltaSigma) Next(target float64) float64 {
	t := math.Min(math.Max(target, d.min), d.max)
	if d.step == 0 {
		return t
	}
	if !d.enabled {
		return d.quantize(t)
	}
	// First-order delta-sigma: quantize (target + error), carry the
	// new error forward.
	want := t + d.residual
	level := d.quantize(want)
	d.residual = want - level
	// Keep the residual bounded (clamping at the rails stops error
	// accumulation from winding up).
	if d.residual > d.step {
		d.residual = d.step
	} else if d.residual < -d.step {
		d.residual = -d.step
	}
	return level
}

// quantize rounds onto the grid and clamps.
func (d *DeltaSigma) quantize(v float64) float64 {
	n := math.Round((v - d.min) / d.step)
	level := d.min + n*d.step
	if level < d.min {
		level = d.min
	}
	if level > d.max {
		level = d.max
	}
	return level
}

// Levels returns the discrete grid (useful for the Fixed-Step baseline,
// which moves exactly one level at a time).
func (d *DeltaSigma) Levels() []float64 {
	if d.step == 0 {
		return nil
	}
	n := int(math.Floor((d.max-d.min)/d.step + 1e-9))
	out := make([]float64, 0, n+1)
	for i := 0; i <= n; i++ {
		out = append(out, d.min+float64(i)*d.step)
	}
	return out
}

// Bank is the set of modulators for one server: index 0 is the CPU, the
// rest are the GPUs, matching the frequency-vector layout used by the
// controllers (F = [f_c, f_g1, ..., f_gNg], §4.2).
type Bank struct {
	mods []*DeltaSigma
}

// NewBank builds modulators from parallel min/max/step slices.
func NewBank(min, max, step []float64) (*Bank, error) {
	if len(min) != len(max) || len(min) != len(step) {
		return nil, fmt.Errorf("actuator: bank slice lengths %d/%d/%d differ", len(min), len(max), len(step))
	}
	if len(min) == 0 {
		return nil, fmt.Errorf("actuator: empty bank")
	}
	b := &Bank{mods: make([]*DeltaSigma, len(min))}
	for i := range min {
		m, err := NewDeltaSigma(min[i], max[i], step[i])
		if err != nil {
			return nil, fmt.Errorf("actuator: modulator %d: %w", i, err)
		}
		b.mods[i] = m
	}
	return b, nil
}

// Size returns the number of modulators.
func (b *Bank) Size() int { return len(b.mods) }

// Mod returns the i-th modulator.
func (b *Bank) Mod(i int) *DeltaSigma { return b.mods[i] }

// Next resolves a full command vector for one period.
func (b *Bank) Next(targets []float64) ([]float64, error) {
	if len(targets) != len(b.mods) {
		return nil, fmt.Errorf("actuator: %d targets for %d modulators", len(targets), len(b.mods))
	}
	out := make([]float64, len(targets))
	for i, t := range targets {
		out[i] = b.mods[i].Next(t)
	}
	return out, nil
}

// SetEnabled toggles modulation for the whole bank.
func (b *Bank) SetEnabled(on bool) {
	for _, m := range b.mods {
		m.SetEnabled(on)
	}
}

// Reset clears every modulator's residual.
func (b *Bank) Reset() {
	for _, m := range b.mods {
		m.Reset()
	}
}
