package mpc

import (
	"math"
	"testing"
)

// TestDetailedDiagnosticsOffByDefault pins the zero-overhead contract:
// without SetDetailedDiagnostics the detail slices stay nil, so the
// uninstrumented control loop pays nothing for the flight recorder.
func TestDetailedDiagnosticsOffByDefault(t *testing.T) {
	c := testController(t, Config{})
	_, diag, err := c.Compute(950, 900, []float64{2.0, 1200, 1100, 1000}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if diag.PredictedStepW != nil || diag.ActiveLower != nil || diag.ActiveUpper != nil ||
		diag.PinnedKnobs != nil || diag.LowerBoundsNorm != nil {
		t.Fatalf("detail fields populated with detail off: %+v", diag)
	}
}

func TestDetailedDiagnosticsHorizonAndBounds(t *testing.T) {
	c := testController(t, Config{})
	c.SetDetailedDiagnostics(true)
	f := []float64{2.0, 1200, 1100, 1000}
	d, diag, err := c.Compute(950, 900, f, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := len(f)
	if len(diag.ActiveLower) != n || len(diag.ActiveUpper) != n ||
		len(diag.PinnedKnobs) != n || len(diag.LowerBoundsNorm) != n {
		t.Fatalf("detail slice lengths = %d/%d/%d/%d, want %d each",
			len(diag.ActiveLower), len(diag.ActiveUpper), len(diag.PinnedKnobs), len(diag.LowerBoundsNorm), n)
	}
	if len(diag.PredictedStepW) != c.Config().P {
		t.Fatalf("horizon trajectory has %d steps, want P=%d", len(diag.PredictedStepW), c.Config().P)
	}
	// Step 1 of the trajectory is the model's one-step prediction under
	// the full first move.
	want := 950.0
	for i, di := range d {
		want += c.gains[i] * di
	}
	if math.Abs(diag.PredictedStepW[0]-want) > 1e-9 {
		t.Fatalf("PredictedStepW[0] = %.6f, want %.6f", diag.PredictedStepW[0], want)
	}
	// Step 1 agrees with the one-step prediction the default diagnostics
	// already report; the trajectory then converges onto the set point
	// under the remaining planned moves.
	if math.Abs(diag.PredictedStepW[0]-diag.PredictedEndPowerW) > 1e-9 {
		t.Fatalf("PredictedStepW[0] %.3f != PredictedEndPowerW %.3f",
			diag.PredictedStepW[0], diag.PredictedEndPowerW)
	}
	if end := diag.PredictedStepW[c.Config().P-1]; math.Abs(end-900) > 5 {
		t.Fatalf("horizon end %.3f W, want near the 900 W set point", end)
	}
	// Interior optimum from a mild error: no box constraint active.
	for i := 0; i < n; i++ {
		if diag.ActiveLower[i] || diag.ActiveUpper[i] || diag.PinnedKnobs[i] {
			t.Fatalf("knob %d flagged active/pinned on an interior optimum: %+v", i, diag)
		}
		if diag.LowerBoundsNorm[i] != 0 {
			t.Fatalf("knob %d lower bound %.3f, want 0 (hardware minimum)", i, diag.LowerBoundsNorm[i])
		}
	}
}

func TestDetailedDiagnosticsActiveUpper(t *testing.T) {
	c := testController(t, Config{})
	c.SetDetailedDiagnostics(true)
	// Far under an unreachable cap from the ceiling's doorstep: every
	// knob slams into its upper bound.
	f := []float64{2.35, 1340, 1340, 1340}
	_, diag, err := c.Compute(500, 5000, f, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f {
		if !diag.ActiveUpper[i] {
			t.Fatalf("knob %d not at its ceiling chasing an unreachable cap: %+v", i, diag)
		}
		if diag.ActiveLower[i] {
			t.Fatalf("knob %d flagged at lower while at the ceiling", i)
		}
	}
}

func TestDetailedDiagnosticsSLOFloorActiveLower(t *testing.T) {
	c := testController(t, Config{})
	c.SetDetailedDiagnostics(true)
	// A deep over-cap error drives the GPUs down; GPU 1 carries a raised
	// SLO floor at 1000 MHz, so it stops there with its lower bound
	// active and the floor visible in normalized coordinates.
	f := []float64{2.0, 1050, 1200, 1200}
	lower := []float64{1.0, 1000, 435, 435}
	_, diag, err := c.Compute(1400, 700, f, nil, lower)
	if err != nil {
		t.Fatal(err)
	}
	if !diag.ActiveLower[1] {
		t.Fatalf("GPU 1 should sit on its SLO floor: %+v", diag)
	}
	wantNorm := (1000.0 - 435.0) / (1350.0 - 435.0)
	if math.Abs(diag.LowerBoundsNorm[1]-wantNorm) > 1e-9 {
		t.Fatalf("GPU 1 normalized floor = %.4f, want %.4f", diag.LowerBoundsNorm[1], wantNorm)
	}
	if diag.LowerBoundsNorm[2] != 0 {
		t.Fatalf("GPU 2 floor = %.4f, want the hardware minimum (0)", diag.LowerBoundsNorm[2])
	}
}

func TestDetailedDiagnosticsPinned(t *testing.T) {
	c := testController(t, Config{})
	c.SetDetailedDiagnostics(true)
	// GPU 1's SLO floor at the ceiling leaves exactly one feasible
	// trajectory for it: analytic pinning.
	f := []float64{2.0, 1200, 1200, 1200}
	lower := []float64{1.0, 1350, 435, 435}
	_, diag, err := c.Compute(1100, 900, f, nil, lower)
	if err != nil {
		t.Fatal(err)
	}
	if !diag.PinnedKnobs[1] {
		t.Fatalf("GPU 1 should be pinned with its floor at the ceiling: %+v", diag)
	}
	if diag.PinnedKnobs[0] || diag.PinnedKnobs[2] || diag.PinnedKnobs[3] {
		t.Fatalf("only GPU 1 should be pinned: %+v", diag.PinnedKnobs)
	}
}

// TestComputeNoDetailAllocsStable compares allocations with detail off
// vs on: the delta is what the flight recorder costs, and the off path
// must not pay it.
func TestComputeNoDetailAllocsStable(t *testing.T) {
	c := testController(t, Config{})
	f := []float64{2.0, 1200, 1100, 1000}
	compute := func() {
		if _, _, err := c.Compute(950, 900, f, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	compute() // warm the warm-start buffer
	off := testing.AllocsPerRun(200, compute)
	c.SetDetailedDiagnostics(true)
	on := testing.AllocsPerRun(200, compute)
	if off >= on {
		return // detail costs nothing here — fine, nothing leaked either
	}
	if on-off < 4 {
		t.Logf("detail adds %.0f allocs/op (off %.0f, on %.0f)", on-off, off, on)
	}
	// The real assertion: toggling detail back off returns to the lean
	// path.
	c.SetDetailedDiagnostics(false)
	offAgain := testing.AllocsPerRun(200, compute)
	if offAgain > off {
		t.Fatalf("detail-off path got slower after toggling: %.0f vs %.0f allocs/op", offAgain, off)
	}
}
