package mpc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/qp"
)

// eq9Cost evaluates the paper's Eq. (9) cost literally, by simulation of
// the prediction model over the horizon — an independent check of the
// condensed QP. D is the normalized decision vector (M moves of n
// knobs), x the normalized operating point, bias = p(k) − P_s.
func eq9Cost(c *Controller, D []float64, bias float64, x, r []float64) float64 {
	n := len(c.gains)
	cost := 0.0
	// Tracking term: predicted error after j periods.
	for j := 1; j <= c.cfg.P; j++ {
		moves := j
		if moves > c.cfg.M {
			moves = c.cfg.M
		}
		err := bias
		for b := 0; b < moves; b++ {
			for p := 0; p < n; p++ {
				err += c.gtil[p] * D[b*n+p]
			}
		}
		cost += c.cfg.Q * err * err
	}
	// Control penalty: position above f_min after each move.
	for i := 0; i < c.cfg.M; i++ {
		for p := 0; p < n; p++ {
			pos := x[p]
			for b := 0; b <= i; b++ {
				pos += D[b*n+p]
			}
			cost += r[p] * pos * pos
		}
	}
	return cost
}

// TestCondensedQPMatchesEq9 checks that ½DᵀHD + gᵀD differs from the
// literal Eq. (9) cost only by a D-independent constant, for random
// decisions and operating points.
func TestCondensedQPMatchesEq9(t *testing.T) {
	c := testController(t, Config{})
	n := 4
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bias := 200 * rng.NormFloat64()
		x := make([]float64, n)
		r := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()
			r[i] = 0.5 + 3*rng.Float64()
		}
		h, g := c.condense(bias, x, r, c.gtil)
		// Constant offset = cost at D = 0.
		zero := make([]float64, c.cfg.M*n)
		c0 := eq9Cost(c, zero, bias, x, r)
		for trial := 0; trial < 5; trial++ {
			D := make([]float64, c.cfg.M*n)
			for i := range D {
				D[i] = 0.3 * rng.NormFloat64()
			}
			// Quadratic form value.
			hd := h.MulVec(D)
			quad := 0.0
			for i := range D {
				quad += 0.5*D[i]*hd[i] + g[i]*D[i]
			}
			lit := eq9Cost(c, D, bias, x, r)
			if math.Abs((quad+c0)-lit) > 1e-6*(1+math.Abs(lit)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestComputeBeatsRandomFeasiblePoints: the QP solution's Eq. (9) cost
// is no worse than any random feasible decision's.
func TestComputeBeatsRandomFeasiblePoints(t *testing.T) {
	c := testController(t, Config{DeadbandW: -1})
	n := 4
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 25; trial++ {
		bias := 150 * rng.NormFloat64()
		x := make([]float64, n)
		r := make([]float64, n)
		for i := range x {
			x[i] = 0.2 + 0.6*rng.Float64()
			r[i] = 0.5 + 3*rng.Float64()
		}
		h, g := c.condense(bias, x, r, c.gtil)
		a, b := c.constraints(x, make([]float64, n))
		res, err := qp.Solve(&qp.Problem{H: h, G: g, A: a, B: b}, make([]float64, c.cfg.M*n))
		if err != nil {
			t.Fatal(err)
		}
		best := eq9Cost(c, res.X, bias, x, r)
		// Random feasible candidates: independent per-knob cumulative
		// moves within the box, decomposed back into per-step moves.
		for cand := 0; cand < 30; cand++ {
			D := make([]float64, c.cfg.M*n)
			for p := 0; p < n; p++ {
				c1 := -x[p] + rng.Float64()*1.0 // cumulative after move 1 in [-x, 1-x]
				c2 := -x[p] + rng.Float64()*1.0
				D[p] = c1
				D[n+p] = c2 - c1
			}
			if eq9Cost(c, D, bias, x, r) < best-1e-6*(1+math.Abs(best)) {
				t.Fatalf("trial %d: random feasible point beats the QP solution", trial)
			}
		}
	}
}

func TestWarmStartReducesIterations(t *testing.T) {
	run := func(cold bool) (totalIters int) {
		c := testController(t, Config{ColdStart: cold})
		f := []float64{1.4, 700, 700, 700}
		p := 800.0
		gains := []float64{55, 0.16, 0.16, 0.16}
		for k := 0; k < 40; k++ {
			d, diag, err := c.Compute(p, 950, f, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			totalIters += diag.SolverIterations
			for i := range f {
				f[i] += d[i]
				p += gains[i] * d[i]
			}
		}
		return totalIters
	}
	warm := run(false)
	cold := run(true)
	if warm > cold {
		t.Fatalf("warm-started iterations %d exceed cold %d", warm, cold)
	}
}

func TestWarmStartSameTrajectoryAsCold(t *testing.T) {
	// Warm starting must not change the solution, only the effort.
	runFreqs := func(cold bool) []float64 {
		c := testController(t, Config{ColdStart: cold})
		f := []float64{1.4, 700, 700, 700}
		p := 800.0
		gains := []float64{55, 0.16, 0.16, 0.16}
		for k := 0; k < 30; k++ {
			d, _, err := c.Compute(p, 950, f, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i := range f {
				f[i] += d[i]
				p += gains[i] * d[i]
			}
		}
		return f
	}
	warm := runFreqs(false)
	cold := runFreqs(true)
	for i := range warm {
		if math.Abs(warm[i]-cold[i]) > 1e-6*(1+math.Abs(cold[i])) {
			t.Fatalf("knob %d trajectory differs: warm %g vs cold %g", i, warm[i], cold[i])
		}
	}
}
