// Package mpc implements CapGPU's MIMO model-predictive power controller
// (§4.3). At each control period it minimizes the finite-horizon cost of
// Eq. (9),
//
//	V(k) = Σ_{i=1..P} ‖p(k+i|k) − P_s‖²_Q + Σ_{i=0..M-1} ‖d(k+i|k) + f(k+i|k) − f_min‖²_R(i),
//
// over the next M frequency moves, subject to the Eq. (10) constraints:
// per-device frequency bounds and the SLO-derived GPU frequency lower
// bounds obtained by inverting the latency law (10b,c). Predictions use
// the incremental power model p(k+i) = p(k) + A·ΔF (Eq. 7).
//
// The controller works internally in normalized coordinates
// x_n = (f_n − f_min,n)/(f_max,n − f_min,n) ∈ [0, 1] so CPU GHz and GPU
// MHz knobs condition the problem equally. The condensed problem is a
// strictly convex QP solved exactly by internal/qp's active-set method;
// an SLSQP path (internal/slsqp) is retained for parity with the paper's
// named solver and for the A4 ablation.
//
// The weight-assignment algorithm (the paper's §4.3 "normalize and
// invert their throughput") enters through R(i): each device's control
// penalty is R_n = R0/(ŵ_n + ε) where ŵ_n is its throughput normalized
// by its own maximum. Busy devices get small penalties for running above
// f_min, so the optimizer grants them the frequency headroom.
package mpc

import (
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/qp"
	"repro/internal/slsqp"
)

// Config tunes the controller. Zero values select the paper's settings.
type Config struct {
	P  int     // prediction horizon (paper: 8)
	M  int     // control horizon (paper: 2)
	Q  float64 // tracking weight (default 1)
	R0 float64 // base control penalty (default 2)
	// Eps regularizes the throughput inversion in the weight assignment
	// (default 0.1).
	Eps float64
	// UseSLSQP selects the sequential least-squares solver instead of
	// the active-set QP (ablation A4).
	UseSLSQP bool
	// UniformWeights disables the weight-assignment algorithm, using
	// R_n = R0 for every device (ablation A1).
	UniformWeights bool
	// DeadbandW suppresses tracking corrections when the power error is
	// within this band (Watts), so the controller does not chase power
	// meter noise; the weight-driven reallocation still runs. Default 5.
	// Set negative to disable entirely.
	DeadbandW float64
	// ColdStart disables warm-starting the active-set solver from the
	// previous period's (shifted) solution. Warm starting is the
	// practical core of the multi-parametric overhead reduction §4.3
	// cites: in steady state the active set rarely changes, so the
	// solver terminates in one or two iterations. (A full explicit-MPC
	// region cache is not applicable here because the weight assignment
	// makes the Hessian time-varying.)
	ColdStart bool
}

func (c *Config) defaults() Config {
	out := *c
	if out.P == 0 {
		out.P = 8
	}
	if out.M == 0 {
		out.M = 2
	}
	if out.Q == 0 {
		out.Q = 1
	}
	if out.R0 == 0 {
		out.R0 = 2
	}
	if out.Eps == 0 {
		out.Eps = 0.1
	}
	if out.DeadbandW == 0 {
		out.DeadbandW = 5
	}
	if out.DeadbandW < 0 {
		out.DeadbandW = 0
	}
	return out
}

// Controller is the CapGPU MPC.
type Controller struct {
	cfg    Config
	gains  []float64 // identified plant gains, natural units (W/GHz, W/MHz)
	fmin   []float64
	fmax   []float64
	scale  []float64 // fmax - fmin
	gtil   []float64 // gains in W per normalized unit
	lastD  []float64 // previous period's solution (normalized), for warm starts
	detail bool      // populate the Diagnostics detail fields (flight recorder)
}

// Diagnostics reports solver internals for one control period.
//
// The fields below Clamped are the flight recorder's view of the
// optimum and are populated only when SetDetailedDiagnostics(true) has
// been called: the default path leaves them nil so an uninstrumented
// control loop allocates nothing extra.
type Diagnostics struct {
	PredictedEndPowerW float64 // model-predicted power after the horizon
	SolverIterations   int
	Solver             string
	Weights            []float64 // the R_n actually used
	Clamped            bool      // true if SLO bounds forced repair of the start point

	// BiasW is the deadband-adjusted tracking error fed to the QP, after
	// pinned-knob power effects were folded in.
	BiasW float64
	// DeadbandHold is true when |measured − setpoint| sat inside the
	// deadband: no tracking correction this period, only the
	// weight-driven reallocation term acts.
	DeadbandHold bool
	// PredictedStepW is the model-predicted power after each horizon
	// step 1..P, using all M planned moves (not just the applied first
	// one) — the full-horizon trajectory the optimizer committed to.
	PredictedStepW []float64
	// ActiveLower / ActiveUpper report, per knob, whether the first
	// move lands the knob on its effective lower bound (hardware f_min
	// or SLO floor) or its ceiling — the active box constraints at the
	// optimum.
	ActiveLower []bool
	ActiveUpper []bool
	// PinnedKnobs marks knobs eliminated analytically because their SLO
	// floor sat at (or numerically at) the ceiling.
	PinnedKnobs []bool
	// LowerBoundsNorm is the effective normalized lower bound per knob
	// (0 = hardware minimum; >0 = an SLO floor raised it).
	LowerBoundsNorm []float64
}

// SetDetailedDiagnostics toggles the Diagnostics detail fields
// (constraint activity, horizon trajectory). Off by default: the extra
// slices cost allocations per period, so only the flight recorder turns
// them on.
func (c *Controller) SetDetailedDiagnostics(on bool) { c.detail = on }

// New builds a controller from the identified gains and the per-knob
// frequency ranges (knob 0 is the CPU). Gains must be positive: a knob
// whose frequency increase lowered power would indicate a broken
// identification run.
func New(gains, fmin, fmax []float64, cfg Config) (*Controller, error) {
	n := len(gains)
	if n == 0 {
		return nil, fmt.Errorf("mpc: no knobs")
	}
	if len(fmin) != n || len(fmax) != n {
		return nil, fmt.Errorf("mpc: bounds lengths (%d, %d) vs %d gains", len(fmin), len(fmax), n)
	}
	c := cfg.defaults()
	if c.P < c.M {
		return nil, fmt.Errorf("mpc: prediction horizon %d shorter than control horizon %d", c.P, c.M)
	}
	if c.M < 1 {
		return nil, fmt.Errorf("mpc: control horizon %d must be >= 1", c.M)
	}
	ctrl := &Controller{
		cfg:   c,
		gains: append([]float64(nil), gains...),
		fmin:  append([]float64(nil), fmin...),
		fmax:  append([]float64(nil), fmax...),
		scale: make([]float64, n),
		gtil:  make([]float64, n),
	}
	for i := 0; i < n; i++ {
		if fmax[i] <= fmin[i] {
			return nil, fmt.Errorf("mpc: knob %d range [%g, %g] invalid", i, fmin[i], fmax[i])
		}
		if gains[i] <= 0 {
			return nil, fmt.Errorf("mpc: knob %d gain %g must be positive", i, gains[i])
		}
		ctrl.scale[i] = fmax[i] - fmin[i]
		ctrl.gtil[i] = gains[i] * ctrl.scale[i]
	}
	return ctrl, nil
}

// NumKnobs returns the controlled knob count.
func (c *Controller) NumKnobs() int { return len(c.gains) }

// SetGains replaces the plant gains at run time — the hook used by
// adaptive (RLS-updated) controllers when the identified model drifts
// with the workload (§4.4's scenario). Gains must stay positive.
func (c *Controller) SetGains(gains []float64) error {
	if len(gains) != len(c.gains) {
		return fmt.Errorf("mpc: %d gains for %d knobs", len(gains), len(c.gains))
	}
	for i, g := range gains {
		if g <= 0 {
			return fmt.Errorf("mpc: knob %d gain %g must be positive", i, g)
		}
	}
	copy(c.gains, gains)
	for i := range c.gains {
		c.gtil[i] = c.gains[i] * c.scale[i]
	}
	return nil
}

// Gains returns a copy of the current plant gains.
func (c *Controller) Gains() []float64 {
	return append([]float64(nil), c.gains...)
}

// Config returns the effective configuration.
func (c *Controller) Config() Config { return c.cfg }

// penaltyWeights implements the weight assignment: normalized, inverted
// throughput. weights may be nil (uniform).
func (c *Controller) penaltyWeights(throughput []float64) []float64 {
	n := len(c.gains)
	r := make([]float64, n)
	for i := 0; i < n; i++ {
		if c.cfg.UniformWeights || throughput == nil {
			r[i] = c.cfg.R0
			continue
		}
		w := throughput[i]
		if w < 0 {
			w = 0
		}
		if w > 1 {
			w = 1
		}
		r[i] = c.cfg.R0 / (w + c.cfg.Eps)
	}
	return r
}

// Compute returns the frequency increments d(k) (natural units, knob 0
// first) for one control period.
//
//	measuredW: average power over the previous period (the feedback).
//	setpointW: the power cap P_s.
//	knobs:     currently applied frequencies.
//	throughput: per-knob normalized throughput in [0,1] for the weight
//	           assignment (nil => uniform weights).
//	lower:     per-knob effective minimum frequencies; for GPUs these are
//	           the SLO-derived bounds from Eq. (10b,c) (nil => hardware
//	           minimums).
func (c *Controller) Compute(measuredW, setpointW float64, knobs, throughput, lower []float64) ([]float64, *Diagnostics, error) {
	n := len(c.gains)
	if len(knobs) != n {
		return nil, nil, fmt.Errorf("mpc: %d knobs for %d knobs", len(knobs), n)
	}
	if throughput != nil && len(throughput) != n {
		return nil, nil, fmt.Errorf("mpc: %d throughputs for %d knobs", len(throughput), n)
	}
	if lower != nil && len(lower) != n {
		return nil, nil, fmt.Errorf("mpc: %d lower bounds for %d knobs", len(lower), n)
	}

	// Normalized current position and lower bounds.
	x := make([]float64, n)
	lo := make([]float64, n)
	clamped := false
	for i := 0; i < n; i++ {
		x[i] = (knobs[i] - c.fmin[i]) / c.scale[i]
		if x[i] < 0 {
			x[i] = 0
		}
		if x[i] > 1 {
			x[i] = 1
		}
		lo[i] = 0
		if lower != nil {
			l := (lower[i] - c.fmin[i]) / c.scale[i]
			if l > 1 {
				l = 1
				clamped = true
			}
			if l > 0 {
				lo[i] = l
			}
		}
		if x[i] < lo[i] {
			clamped = true
		}
	}

	bias := measuredW - setpointW
	deadbandHold := false
	if math.Abs(bias) <= c.cfg.DeadbandW {
		bias = 0
		deadbandHold = true
	}
	r := c.penaltyWeights(throughput)

	// Pinned knobs — an SLO floor at (or numerically at) the ceiling —
	// have exactly one feasible trajectory: jump to the ceiling and
	// stay. Handling them inside the QP creates a degenerate equality
	// face that active-set methods dislike, so they are eliminated
	// analytically: their move is fixed and its power effect folded into
	// the tracking bias; the QP runs over the free knobs only.
	const pinTol = 1e-9
	free := make([]int, 0, n)
	d0full := make([]float64, n)
	var pinned []bool
	if c.detail {
		pinned = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		if lo[i] >= 1-pinTol {
			d0full[i] = 1 - x[i]
			bias += c.gtil[i] * (1 - x[i])
			if pinned != nil {
				pinned[i] = true
			}
		} else {
			free = append(free, i)
		}
	}
	diag := &Diagnostics{Weights: r, Clamped: clamped}
	var fullSol []float64 // all M move blocks over the free knobs

	if len(free) > 0 {
		nf := len(free)
		xf := make([]float64, nf)
		lof := make([]float64, nf)
		rf := make([]float64, nf)
		gtf := make([]float64, nf)
		for k, i := range free {
			xf[k], lof[k], rf[k], gtf[k] = x[i], lo[i], r[i], c.gtil[i]
		}
		hmat, gvec := c.condense(bias, xf, rf, gtf)
		amat, bvec := c.constraints(xf, lof)

		var d0 []float64
		if c.cfg.UseSLSQP {
			sol, err := c.solveSLSQP(hmat, gvec, amat, bvec)
			if err != nil {
				return nil, nil, err
			}
			d0 = sol.X[:nf]
			fullSol = sol.X
			diag.SolverIterations = sol.Iterations
			diag.Solver = "slsqp"
		} else {
			sol, err := qp.Solve(&qp.Problem{H: hmat, G: gvec, A: amat, B: bvec}, c.warmStart(nf))
			if err != nil {
				return nil, nil, err
			}
			c.lastD = append(c.lastD[:0], sol.X...)
			d0 = sol.X[:nf]
			fullSol = sol.X
			diag.SolverIterations = sol.Iterations
			diag.Solver = "active-set"
		}
		for k, i := range free {
			d0full[i] = d0[k]
		}
	}

	// Convert the first move back to natural units. (Receding horizon:
	// later moves are discarded and recomputed next period, §4.3.)
	out := make([]float64, n)
	predicted := measuredW
	for i := 0; i < n; i++ {
		out[i] = d0full[i] * c.scale[i]
		predicted += c.gtil[i] * d0full[i]
	}
	diag.PredictedEndPowerW = predicted
	if c.detail {
		diag.BiasW = bias
		diag.DeadbandHold = deadbandHold
		diag.PinnedKnobs = pinned
		diag.LowerBoundsNorm = append([]float64(nil), lo...)
		diag.ActiveLower = make([]bool, n)
		diag.ActiveUpper = make([]bool, n)
		const boundTol = 1e-6
		for i := 0; i < n; i++ {
			pos := x[i] + d0full[i]
			diag.ActiveLower[i] = pos <= lo[i]+boundTol
			diag.ActiveUpper[i] = pos >= 1-boundTol
		}
		diag.PredictedStepW = c.predictHorizon(measuredW, d0full, free, fullSol)
	}
	return out, diag, nil
}

// predictHorizon rolls the incremental model (Eq. 7) over the full
// prediction horizon using all M planned moves: step j's power is
// measured + Σ_{b < min(j,M)} Σ_p gtil_p · d_{b,p}. Pinned knobs move
// once (their whole deficit) and then hold.
func (c *Controller) predictHorizon(measuredW float64, d0full []float64, free []int, fullSol []float64) []float64 {
	out := make([]float64, c.cfg.P)
	nf := len(free)
	pred := measuredW
	for j := 1; j <= c.cfg.P; j++ {
		if j == 1 {
			for i, d := range d0full {
				pred += c.gtil[i] * d
			}
		} else if j <= c.cfg.M && nf > 0 && len(fullSol) >= j*nf {
			for k, i := range free {
				pred += c.gtil[i] * fullSol[(j-1)*nf+k]
			}
		}
		out[j-1] = pred
	}
	return out
}

// warmStart builds the solver's starting point: the previous period's
// solution shifted by one move block (the receding-horizon tail), zero
// on a cold start. Infeasible starts are repaired by the solver's
// phase-1, so stale bounds are harmless.
func (c *Controller) warmStart(n int) []float64 {
	dim := c.cfg.M * n
	x0 := make([]float64, dim)
	// A dimension change (knobs pinned/unpinned between periods)
	// invalidates the stored solution; fall back to a cold start.
	if c.cfg.ColdStart || len(c.lastD) != dim {
		return x0
	}
	copy(x0, c.lastD[n:]) // drop the applied move, shift the rest forward
	return x0
}

// condense builds the QP matrices for decision vector
// D = [d(k); d(k+1|k); ...; d(k+M-1|k)] (normalized units).
func (c *Controller) condense(bias float64, x, r, gtil []float64) (*mat.Mat, []float64) {
	n := len(gtil)
	dim := c.cfg.M * n
	h := mat.New(dim, dim)
	g := make([]float64, dim)

	// Tracking term: for each prediction step j, the predicted error is
	// bias + Σ_{i < min(j,M)} gtil·d_i.
	for j := 1; j <= c.cfg.P; j++ {
		moves := j
		if moves > c.cfg.M {
			moves = c.cfg.M
		}
		// S_j has gtil in each included move block.
		for bi := 0; bi < moves; bi++ {
			for p := 0; p < n; p++ {
				g[bi*n+p] += 2 * c.cfg.Q * bias * gtil[p]
				for bj := 0; bj < moves; bj++ {
					for q := 0; q < n; q++ {
						h.Add(bi*n+p, bj*n+q, 2*c.cfg.Q*gtil[p]*gtil[q])
					}
				}
			}
		}
	}
	// Control penalty: for each move step i, (x + c_{i+1})ᵀ R (x + c_{i+1})
	// with c_{i+1} = Σ_{b<=i} d_b (the "distance above f_min" of Eq. 9's
	// second term, in normalized units).
	for i := 0; i < c.cfg.M; i++ {
		for bi := 0; bi <= i; bi++ {
			for p := 0; p < n; p++ {
				g[bi*n+p] += 2 * r[p] * x[p]
				for bj := 0; bj <= i; bj++ {
					h.Add(bi*n+p, bj*n+p, 2*r[p])
				}
			}
		}
	}
	return h, g
}

// constraints builds the inequality system for Eq. (10a) plus SLO lower
// bounds: for every move step i and knob p,
//
//	lo_p − x_p ≤ Σ_{b<=i} d_b,p ≤ 1 − x_p.
func (c *Controller) constraints(x, lo []float64) (*mat.Mat, []float64) {
	n := len(x)
	dim := c.cfg.M * n
	rows := 2 * c.cfg.M * n
	a := mat.New(rows, dim)
	b := make([]float64, rows)
	row := 0
	for i := 0; i < c.cfg.M; i++ {
		for p := 0; p < n; p++ {
			// Upper: Σ_{b<=i} d_b,p ≤ 1 − x_p.
			for bi := 0; bi <= i; bi++ {
				a.Set(row, bi*n+p, 1)
			}
			b[row] = 1 - x[p]
			row++
			// Lower: −Σ_{b<=i} d_b,p ≤ x_p − lo_p.
			for bi := 0; bi <= i; bi++ {
				a.Set(row, bi*n+p, -1)
			}
			// When a freshly tightened SLO bound puts the current
			// operating point below lo, this right-hand side is negative:
			// the cumulative move is forced to recover the full deficit,
			// and the solver repairs the (now infeasible) zero start.
			b[row] = x[p] - lo[p]
			row++
		}
	}
	return a, b
}

// solveSLSQP runs the same condensed problem through the SQP solver.
func (c *Controller) solveSLSQP(h *mat.Mat, g []float64, a *mat.Mat, b []float64) (*slsqp.Result, error) {
	obj := slsqp.Objective{
		//lint:ignore hotalloc one objective pair per QP solve, amortized over the whole SQP iteration; workspace reuse is tracked on the roadmap
		Func: func(d []float64) float64 {
			hd := h.MulVec(d)
			return 0.5*mat.Dot(d, hd) + mat.Dot(g, d)
		},
		//lint:ignore hotalloc see Func above: per-solve, not per-iteration
		Grad: func(d []float64) []float64 {
			grad := h.MulVec(d)
			mat.Axpy(1, g, grad)
			return grad
		},
	}
	cons := make([]slsqp.Constraint, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		bi := b[i]
		cons[i] = slsqp.Constraint{
			//lint:ignore hotalloc one closure per constraint row per solve; the rows must be captured for the solver's callback API
			Func: func(d []float64) float64 { return mat.Dot(row, d) - bi },
			//lint:ignore hotalloc same per-row capture as Func
			Grad: func(d []float64) []float64 { return append([]float64(nil), row...) },
		}
	}
	res, err := slsqp.Minimize(obj, cons, nil, nil, make([]float64, h.Rows), slsqp.Params{MaxIter: 150})
	if err != nil {
		return nil, fmt.Errorf("mpc: slsqp: %w", err)
	}
	return res, nil
}

// FeedbackGains returns the unconstrained linear feedback law of the
// controller at the given operating point and weights: the first move is
//
//	d(k) = −K·(p(k) − P_s) − (affine terms in x),
//
// and K (natural units per Watt) is what §4.4's pole analysis needs.
// It is computed by differencing the unconstrained QP solution in the
// power error.
func (c *Controller) FeedbackGains(throughput []float64) ([]float64, error) {
	n := len(c.gains)
	x := make([]float64, n) // evaluate at f_min; K is independent of x
	r := c.penaltyWeights(throughput)

	solve := func(bias float64) ([]float64, error) {
		h, g := c.condense(bias, x, r, c.gtil)
		sol, err := mat.Solve(h, mat.ScaleVec(-1, g))
		if err != nil {
			return nil, fmt.Errorf("mpc: feedback gain solve: %w", err)
		}
		return sol[:n], nil
	}
	d0, err := solve(0)
	if err != nil {
		return nil, err
	}
	d1, err := solve(1)
	if err != nil {
		return nil, err
	}
	k := make([]float64, n)
	for i := 0; i < n; i++ {
		// d = d0 − K·bias  =>  K = d0 − d1 per unit bias, then convert
		// the normalized move to natural units.
		k[i] = (d0[i] - d1[i]) * c.scale[i]
	}
	return k, nil
}

// ScalarClosedLoopPole returns the §4.4 pole 1 − Σ A′_n·K_n of the
// unconstrained loop when the true plant gains are gainScale·A.
func (c *Controller) ScalarClosedLoopPole(throughput []float64, gainScale float64) (float64, error) {
	k, err := c.FeedbackGains(throughput)
	if err != nil {
		return 0, err
	}
	s := 0.0
	for i := range k {
		s += gainScale * c.gains[i] * k[i]
	}
	return 1 - s, nil
}

// SLOFrequencyBound inverts the latency law (10b,c): the minimum GPU
// frequency that keeps predicted latency within the SLO.
func SLOFrequencyBound(eMin, gamma, fgMax, slo float64) (float64, error) {
	if eMin <= 0 || gamma <= 0 || fgMax <= 0 {
		return 0, fmt.Errorf("mpc: invalid latency law (eMin=%g, gamma=%g, fgMax=%g)", eMin, gamma, fgMax)
	}
	if slo <= 0 {
		return fgMax, nil // degenerate SLO: pin at max
	}
	if slo <= eMin {
		return fgMax, nil // unreachable: best effort is f_max
	}
	return fgMax * math.Pow(eMin/slo, 1/gamma), nil
}
