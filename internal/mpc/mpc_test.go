package mpc

import (
	"math"
	"testing"
	"testing/quick"
)

// testController builds a 1-CPU + 3-GPU controller with testbed-like
// gains: 55 W/GHz over [1.0, 2.4] GHz and 0.16 W/MHz over [435, 1350] MHz.
func testController(t *testing.T, cfg Config) *Controller {
	t.Helper()
	gains := []float64{55, 0.16, 0.16, 0.16}
	fmin := []float64{1.0, 435, 435, 435}
	fmax := []float64{2.4, 1350, 1350, 1350}
	c, err := New(gains, fmin, fmax, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, nil, Config{}); err == nil {
		t.Fatal("expected no-knobs error")
	}
	if _, err := New([]float64{1}, []float64{0}, []float64{1, 2}, Config{}); err == nil {
		t.Fatal("expected bounds-length error")
	}
	if _, err := New([]float64{1}, []float64{2}, []float64{1}, Config{}); err == nil {
		t.Fatal("expected inverted-range error")
	}
	if _, err := New([]float64{-1}, []float64{0}, []float64{1}, Config{}); err == nil {
		t.Fatal("expected non-positive gain error")
	}
	if _, err := New([]float64{1}, []float64{0}, []float64{1}, Config{P: 1, M: 2}); err == nil {
		t.Fatal("expected P < M error")
	}
}

func TestDefaultsMatchPaper(t *testing.T) {
	c := testController(t, Config{})
	if c.Config().P != 8 || c.Config().M != 2 {
		t.Fatalf("default horizons (%d, %d), want (8, 2)", c.Config().P, c.Config().M)
	}
}

func TestComputeRaisesFrequencyWhenUnderCap(t *testing.T) {
	c := testController(t, Config{})
	f := []float64{1.2, 600, 600, 600}
	d, diag, err := c.Compute(800, 1000, f, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	up := 0.0
	for i, di := range d {
		up += c.gains[i] * di
	}
	if up <= 0 {
		t.Fatalf("under cap: expected net power-raising move, got %v", d)
	}
	if diag.PredictedEndPowerW <= 800 {
		t.Fatalf("predicted power %g should rise above 800", diag.PredictedEndPowerW)
	}
	if diag.Solver != "active-set" {
		t.Fatalf("unexpected solver %q", diag.Solver)
	}
}

func TestComputeLowersFrequencyWhenOverCap(t *testing.T) {
	c := testController(t, Config{})
	f := []float64{2.0, 1200, 1200, 1200}
	d, diag, err := c.Compute(1100, 900, f, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	down := 0.0
	for i, di := range d {
		down += c.gains[i] * di
	}
	if down >= 0 {
		t.Fatalf("over cap: expected net power-lowering move, got %v", d)
	}
	if diag.PredictedEndPowerW >= 1100 {
		t.Fatalf("predicted power %g should fall below 1100", diag.PredictedEndPowerW)
	}
}

func TestComputeRespectsBounds(t *testing.T) {
	c := testController(t, Config{})
	// At max frequencies with demand to rise: no move may exceed bounds.
	f := []float64{2.4, 1350, 1350, 1350}
	d, _, err := c.Compute(900, 2000, f, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, di := range d {
		if f[i]+di > []float64{2.4, 1350, 1350, 1350}[i]+1e-6 {
			t.Fatalf("knob %d pushed above max: %g + %g", i, f[i], di)
		}
	}
	// At min frequencies with demand to fall: no move below min.
	f = []float64{1.0, 435, 435, 435}
	d, _, err = c.Compute(1500, 100, f, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, di := range d {
		if f[i]+di < []float64{1.0, 435, 435, 435}[i]-1e-6 {
			t.Fatalf("knob %d pushed below min: %g + %g", i, f[i], di)
		}
	}
}

func TestClosedLoopConvergesOnNominalPlant(t *testing.T) {
	c := testController(t, Config{})
	gains := []float64{55, 0.16, 0.16, 0.16}
	f := []float64{1.0, 435, 435, 435}
	base := 500.0 // offset C
	p := base
	for i := range f {
		p += gains[i] * f[i]
	}
	ps := 1000.0
	for k := 0; k < 60; k++ {
		d, _, err := c.Compute(p, ps, f, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range f {
			f[i] += d[i]
		}
		p = base
		for i := range f {
			p += gains[i] * f[i]
		}
	}
	// With the control penalty active there is a small steady-state
	// bias below the set point; it must be modest.
	if math.Abs(p-ps) > 0.03*ps {
		t.Fatalf("closed loop settled at %g, want near %g", p, ps)
	}
	for i, fi := range f {
		lo := []float64{1.0, 435, 435, 435}[i]
		hi := []float64{2.4, 1350, 1350, 1350}[i]
		if fi < lo-1e-9 || fi > hi+1e-9 {
			t.Fatalf("knob %d settled out of range: %g", i, fi)
		}
	}
}

func TestWeightAssignmentFavorsBusyDevices(t *testing.T) {
	c := testController(t, Config{})
	f := []float64{1.7, 900, 900, 900}
	// GPU 1 (knob 1) is busy, GPU 3 (knob 3) is idle.
	tp := []float64{0.5, 1.0, 0.5, 0.05}
	d, diag, err := c.Compute(950, 1000, f, tp, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Penalty weights: busier => smaller R.
	if diag.Weights[1] >= diag.Weights[3] {
		t.Fatalf("busy device weight %g should be below idle device weight %g",
			diag.Weights[1], diag.Weights[3])
	}
	// The busy GPU should be granted at least as much frequency increase
	// as the idle one.
	if d[1] < d[3] {
		t.Fatalf("busy GPU got %g MHz, idle GPU got %g MHz", d[1], d[3])
	}
}

func TestUniformWeightsAblation(t *testing.T) {
	c := testController(t, Config{UniformWeights: true})
	tp := []float64{0.1, 1.0, 0.5, 0.05}
	_, diag, err := c.Compute(900, 1000, []float64{1.7, 900, 900, 900}, tp, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(diag.Weights); i++ {
		if diag.Weights[i] != diag.Weights[0] {
			t.Fatalf("uniform ablation produced non-uniform weights %v", diag.Weights)
		}
	}
}

func TestSLOLowerBoundEnforced(t *testing.T) {
	c := testController(t, Config{})
	f := []float64{2.0, 1100, 1100, 1100}
	// Force power down hard, but GPU 1 has an SLO floor at 1200 MHz
	// (above its current frequency: the bound just tightened).
	lower := []float64{1.0, 1200, 435, 435}
	d, _, err := c.Compute(1300, 700, f, nil, lower)
	if err != nil {
		t.Fatal(err)
	}
	if f[1]+d[1] < 1200-1e-6 {
		t.Fatalf("GPU 1 moved to %g, below its SLO floor 1200", f[1]+d[1])
	}
	// The other devices must absorb the power cut.
	if d[0] >= 0 && d[2] >= 0 && d[3] >= 0 {
		t.Fatalf("no device absorbed the cut: %v", d)
	}
}

func TestSLSQPSolverAgreesWithQP(t *testing.T) {
	cQP := testController(t, Config{})
	cSQ := testController(t, Config{UseSLSQP: true})
	f := []float64{1.5, 800, 700, 900}
	tp := []float64{0.5, 0.9, 0.6, 0.3}
	dQP, _, err := cQP.Compute(880, 1000, f, tp, nil)
	if err != nil {
		t.Fatal(err)
	}
	dSQ, diag, err := cSQ.Compute(880, 1000, f, tp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if diag.Solver != "slsqp" {
		t.Fatalf("solver %q", diag.Solver)
	}
	for i := range dQP {
		scale := cQP.scale[i]
		if math.Abs(dQP[i]-dSQ[i]) > 0.02*scale {
			t.Fatalf("knob %d: qp %g vs slsqp %g (scale %g)", i, dQP[i], dSQ[i], scale)
		}
	}
}

func TestComputeValidation(t *testing.T) {
	c := testController(t, Config{})
	if _, _, err := c.Compute(900, 1000, []float64{1}, nil, nil); err == nil {
		t.Fatal("expected freqs length error")
	}
	if _, _, err := c.Compute(900, 1000, []float64{1, 500, 500, 500}, []float64{1}, nil); err == nil {
		t.Fatal("expected throughput length error")
	}
	if _, _, err := c.Compute(900, 1000, []float64{1, 500, 500, 500}, nil, []float64{1}); err == nil {
		t.Fatal("expected lower-bound length error")
	}
}

func TestFeedbackGainsPositive(t *testing.T) {
	c := testController(t, Config{})
	k, err := c.FeedbackGains(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(k) != 4 {
		t.Fatalf("gain count %d", len(k))
	}
	// Positive error (p > Ps) must push every knob down: K_i > 0 in
	// d = -K (p - Ps).
	for i, ki := range k {
		if ki <= 0 {
			t.Fatalf("feedback gain %d = %g, want positive", i, ki)
		}
	}
}

func TestScalarClosedLoopPoleStableNominal(t *testing.T) {
	c := testController(t, Config{})
	pole, err := c.ScalarClosedLoopPole(nil, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pole) >= 1 {
		t.Fatalf("nominal pole %g unstable", pole)
	}
	// §4.4: stability must hold over a range of gain errors.
	for _, s := range []float64{0.5, 0.75, 1.25, 1.5} {
		pole, err := c.ScalarClosedLoopPole(nil, s)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(pole) >= 1 {
			t.Fatalf("pole %g unstable at gain scale %g", pole, s)
		}
	}
}

func TestSLOFrequencyBound(t *testing.T) {
	// eMin 0.09 s at 1350 MHz, gamma 0.91: SLO of 0.09 needs fmax.
	f, err := SLOFrequencyBound(0.09, 0.91, 1350, 0.09)
	if err != nil {
		t.Fatal(err)
	}
	if f != 1350 {
		t.Fatalf("tight SLO bound %g, want 1350", f)
	}
	// Loose SLO: bound well below fmax, and consistent with the law.
	f, err = SLOFrequencyBound(0.09, 0.91, 1350, 0.18)
	if err != nil {
		t.Fatal(err)
	}
	lat := 0.09 * math.Pow(1350/f, 0.91)
	if math.Abs(lat-0.18) > 1e-9 {
		t.Fatalf("bound %g gives latency %g, want 0.18", f, lat)
	}
	if _, err := SLOFrequencyBound(0, 0.91, 1350, 1); err == nil {
		t.Fatal("expected invalid-law error")
	}
	if f, _ := SLOFrequencyBound(0.09, 0.91, 1350, 0); f != 1350 {
		t.Fatal("degenerate SLO should pin at fmax")
	}
}

// Property: the first move never violates the box constraints, for any
// power error and any operating point.
func TestQuickMoveAlwaysInBounds(t *testing.T) {
	c := testController(t, Config{})
	fmin := []float64{1.0, 435, 435, 435}
	fmax := []float64{2.4, 1350, 1350, 1350}
	f := func(pRaw, fRaw uint8, tRaw uint8) bool {
		p := 500 + 1000*float64(pRaw)/255
		frac := float64(fRaw) / 255
		freqs := make([]float64, 4)
		for i := range freqs {
			freqs[i] = fmin[i] + frac*(fmax[i]-fmin[i])
		}
		tp := []float64{float64(tRaw) / 255, 0.5, 1 - float64(tRaw)/255, 0.2}
		d, _, err := c.Compute(p, 950, freqs, tp, nil)
		if err != nil {
			return false
		}
		for i := range d {
			nf := freqs[i] + d[i]
			if nf < fmin[i]-1e-6 || nf > fmax[i]+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: the predicted power after the move is never further from the
// set point than doing nothing (the controller never makes things worse
// under its own model).
func TestQuickMoveNeverWorsensPredictedError(t *testing.T) {
	c := testController(t, Config{R0: 0.1}) // light penalty isolates tracking
	f := func(pRaw uint8) bool {
		p := 600 + 700*float64(pRaw)/255
		freqs := []float64{1.7, 890, 890, 890}
		d, diag, err := c.Compute(p, 950, freqs, nil, nil)
		if err != nil {
			return false
		}
		_ = d
		// Slack covers solver tolerance: inside the deadband the QP
		// reallocates at constant predicted power, exact only to the
		// active-set method's convergence threshold.
		return math.Abs(diag.PredictedEndPowerW-950) <= math.Abs(p-950)+1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkComputeQP(b *testing.B) {
	c, err := New(
		[]float64{55, 0.16, 0.16, 0.16},
		[]float64{1.0, 435, 435, 435},
		[]float64{2.4, 1350, 1350, 1350},
		Config{})
	if err != nil {
		b.Fatal(err)
	}
	f := []float64{1.6, 850, 900, 800}
	tp := []float64{0.6, 0.9, 0.7, 0.4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Compute(930, 1000, f, tp, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComputeSLSQP(b *testing.B) {
	c, err := New(
		[]float64{55, 0.16, 0.16, 0.16},
		[]float64{1.0, 435, 435, 435},
		[]float64{2.4, 1350, 1350, 1350},
		Config{UseSLSQP: true})
	if err != nil {
		b.Fatal(err)
	}
	f := []float64{1.6, 850, 900, 800}
	tp := []float64{0.6, 0.9, 0.7, 0.4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Compute(930, 1000, f, tp, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompute8GPUServer(b *testing.B) {
	// The paper cites "a few milliseconds when a server has about 4 to 8
	// GPUs"; this measures our solver at that scale.
	n := 9
	gains := make([]float64, n)
	fmin := make([]float64, n)
	fmax := make([]float64, n)
	gains[0], fmin[0], fmax[0] = 55, 1.0, 2.4
	for i := 1; i < n; i++ {
		gains[i], fmin[i], fmax[i] = 0.16, 435, 1350
	}
	c, err := New(gains, fmin, fmax, Config{})
	if err != nil {
		b.Fatal(err)
	}
	f := make([]float64, n)
	for i := range f {
		f[i] = (fmin[i] + fmax[i]) / 2
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Compute(1500, 1600, f, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPinnedKnobEliminated(t *testing.T) {
	// An SLO floor at the ceiling pins a knob: the returned move must
	// jump it to max in one step while the rest keep tracking.
	c := testController(t, Config{})
	f := []float64{1.5, 700, 800, 900}
	lower := []float64{1.0, 1350, 435, 435} // GPU 0 pinned at its ceiling
	d, diag, err := c.Compute(950, 1000, f, nil, lower)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs((f[1]+d[1])-1350) > 1e-6 {
		t.Fatalf("pinned knob moved to %g, want 1350", f[1]+d[1])
	}
	if diag.PredictedEndPowerW <= 950 {
		t.Fatalf("predicted power %g should account for the pinned jump", diag.PredictedEndPowerW)
	}
	// All pinned: every knob jumps, no QP is solved.
	lowerAll := []float64{2.4, 1350, 1350, 1350}
	d, _, err = c.Compute(900, 1000, f, nil, lowerAll)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2.4 - 1.5, 650, 550, 450}
	for i := range d {
		if math.Abs(d[i]-want[i]) > 1e-6 {
			t.Fatalf("all-pinned move %d = %g, want %g", i, d[i], want[i])
		}
	}
}
