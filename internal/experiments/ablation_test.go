package experiments

import (
	"math"
	"testing"
)

func TestAblationWeightsShape(t *testing.T) {
	rows, err := AblationWeights(21, 80)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	weighted, uniform := rows[0], rows[1]
	if weighted.Config == uniform.Config {
		t.Fatal("configs not distinguished")
	}
	// The weight assignment should buy busy-device throughput at the
	// same power cap.
	if weighted.GPUTput <= uniform.GPUTput {
		t.Fatalf("weighted GPU throughput %g should beat uniform %g",
			weighted.GPUTput, uniform.GPUTput)
	}
	// Both still track the cap.
	for _, r := range rows {
		if math.Abs(r.Summary.Mean-850) > 15 {
			t.Fatalf("%s mean %g off the cap", r.Config, r.Summary.Mean)
		}
	}
}

func TestAblationDeltaSigmaShape(t *testing.T) {
	rows, err := AblationDeltaSigma(22, 100)
	if err != nil {
		t.Fatal(err)
	}
	on, off := rows[0], rows[1]
	// On a coarse actuation grid, delta-sigma's time-averaged frequency
	// hits the fractional command, so its steady-state *bias* is far
	// smaller than plain rounding's persistent quantization offset; the
	// price is period-level variance (the dithering), which is the
	// documented trade-off.
	biasOn := math.Abs(on.Summary.Mean - 905)
	biasOff := math.Abs(off.Summary.Mean - 905)
	if biasOn > biasOff/2 {
		t.Fatalf("delta-sigma bias %g W should be well below rounding bias %g W", biasOn, biasOff)
	}
}

func TestAblationHorizonsShape(t *testing.T) {
	rows, err := AblationHorizons(23, 80)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Every horizon configuration must remain stable and track the cap;
	// the differences are in transient quality, not correctness.
	for _, r := range rows {
		if math.Abs(r.Summary.Mean-950) > 20 {
			t.Fatalf("%s mean %g off the cap", r.Config, r.Summary.Mean)
		}
	}
}

func TestAblationSolverAgreement(t *testing.T) {
	rows, err := AblationSolver(24, 60)
	if err != nil {
		t.Fatal(err)
	}
	qp, sq := rows[0], rows[1]
	// The two solvers optimize the same program: control quality must
	// agree closely.
	if math.Abs(qp.Summary.Mean-sq.Summary.Mean) > 10 {
		t.Fatalf("solver means diverge: %g vs %g", qp.Summary.Mean, sq.Summary.Mean)
	}
	if math.Abs(qp.GPUTput-sq.GPUTput) > 0.1*qp.GPUTput {
		t.Fatalf("solver throughputs diverge: %g vs %g", qp.GPUTput, sq.GPUTput)
	}
}
