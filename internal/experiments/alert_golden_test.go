package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/telemetry"
)

// alertArtifacts runs the rack golden scenario with the online alert
// engine enabled (tight thresholds so the fault schedule actually
// trips rules) and returns the events JSONL plus the energy-ledger
// attribution table.
func alertArtifacts(t *testing.T, workers int) (events []byte, ledger []telemetry.LedgerRow) {
	t.Helper()
	const seed, nodes, periods = 7, 6, 40
	sched, err := faults.Parse(rackGoldenSchedule, seed)
	if err != nil {
		t.Fatal(err)
	}
	var eventsBuf bytes.Buffer
	hub := telemetry.New(telemetry.Config{
		JSONL: &eventsBuf,
		Alerts: &telemetry.AlertConfig{
			SLOBurnWindow: 8, SLOBurnFire: 0.2, SLOBurnClear: 0.05,
			CapSustain: 2, StaleDwell: 2,
			BudgetW: DefaultNodeBudgetW * nodes, BudgetFrac: 0.5, BudgetSustain: 3,
		},
	})
	coord, err := NewScaleCoordinator(seed, nodes, cluster.DemandProportional{}, 0,
		ClusterOptions{Telemetry: hub, Faults: sched, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Run(periods); err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	if err := hub.Finish(); err != nil {
		t.Fatal(err)
	}
	return eventsBuf.Bytes(), hub.LedgerTable()
}

// TestAlertEngineGoldenEquivalence: the alert engine's firing/resolved
// stream is part of the byte-identity contract — Workers=8 reproduces
// the sequential run's events JSONL (alerts interleaved) exactly, the
// stream balances including the alert pairs, and the energy ledger
// attributes identical Wh.
func TestAlertEngineGoldenEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	refEvents, refLedger := alertArtifacts(t, 1)

	parsed, err := telemetry.ReadEvents(bytes.NewReader(refEvents))
	if err != nil {
		t.Fatal(err)
	}
	if fired := telemetry.FiredAlerts(parsed); len(fired) == 0 {
		t.Fatal("golden scenario fired no alerts; thresholds too loose to pin anything")
	}
	if err := telemetry.CheckBalance(parsed); err != nil {
		t.Fatalf("alert-bearing stream unbalanced: %v", err)
	}
	if len(refLedger) == 0 {
		t.Fatal("ledger empty after an instrumented run")
	}

	events8, ledger8 := alertArtifacts(t, 8)
	if !bytes.Equal(events8, refEvents) {
		t.Errorf("events JSONL with alerts diverges at Workers=8 (%d vs %d bytes)", len(events8), len(refEvents))
	}
	if fmt.Sprintf("%+v", ledger8) != fmt.Sprintf("%+v", refLedger) {
		t.Errorf("ledger diverges at Workers=8:\n%+v\nvs\n%+v", ledger8, refLedger)
	}
}
