package experiments

import (
	"math"
	"testing"
	"testing/quick"
)

// TestQuickLoopInvariants is the whole-stack soak property: for any
// controller and any feasible set point, a full control session keeps
// its invariants — finite, positive power; frequencies on their grids
// and within range; consistent record shapes; non-negative throughput
// and latency.
func TestQuickLoopInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("soak property skipped in -short mode")
	}
	names := []string{"capgpu", "gpu-only", "fixed-step-1", "safe-fixed-step-1", "cpu+gpu-50"}
	f := func(ctlIdx uint8, spRaw uint8, seed int64) bool {
		name := names[int(ctlIdx)%len(names)]
		sp := 820 + 380*float64(spRaw)/255 // [820, 1200]
		res, err := RunSession(name, seed%100, 40, FixedSetpoint(sp), nil)
		if err != nil {
			return false
		}
		if len(res.Records) != 40 {
			return false
		}
		for _, r := range res.Records {
			if !(r.AvgPowerW > 0) || math.IsNaN(r.AvgPowerW) || math.IsInf(r.AvgPowerW, 0) {
				return false
			}
			if r.CPUFreqGHz < 1.0-1e-9 || r.CPUFreqGHz > 2.4+1e-9 {
				return false
			}
			// On the 0.1 GHz grid.
			steps := (r.CPUFreqGHz - 1.0) / 0.1
			if math.Abs(steps-math.Round(steps)) > 1e-6 {
				return false
			}
			if len(r.GPUFreqMHz) != 3 || len(r.GPUThroughput) != 3 || len(r.GPULatencyS) != 3 {
				return false
			}
			for i, fg := range r.GPUFreqMHz {
				if fg < 435-1e-9 || fg > 1350+1e-9 {
					return false
				}
				gsteps := (fg - 435) / 15
				if math.Abs(gsteps-math.Round(gsteps)) > 1e-6 {
					return false
				}
				if r.GPUThroughput[i] < 0 || r.GPULatencyS[i] < 0 {
					return false
				}
			}
			if r.CPUThroughput < 0 || r.CPULatencyS < 0 || r.EnergyJ <= 0 {
				return false
			}
			if r.MaxPowerW < r.AvgPowerW-60 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSetpointMonotonicity: for the convergent controllers, a
// higher cap never yields lower steady-state power (within noise).
func TestQuickSetpointMonotonicity(t *testing.T) {
	if testing.Short() {
		t.Skip("soak property skipped in -short mode")
	}
	f := func(aRaw, bRaw uint8) bool {
		a := 850 + 300*float64(aRaw)/255
		b := 850 + 300*float64(bRaw)/255
		lo, hi := math.Min(a, b), math.Max(a, b)
		if hi-lo < 40 {
			return true // too close to resolve over noise
		}
		run := func(sp float64) float64 {
			r, err := RunSession("capgpu", 3, 50, FixedSetpoint(sp), nil)
			if err != nil {
				return math.NaN()
			}
			return r.Summary.Mean
		}
		mLo, mHi := run(lo), run(hi)
		if math.IsNaN(mLo) || math.IsNaN(mHi) {
			return false
		}
		return mHi > mLo-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
