package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// replayTrace renders a session's records as the CSV a user would
// export, touching every channel that could smuggle nondeterminism in:
// measured and true power, both knob groups, latency, energy, and the
// degradation flags driven by the fault injector.
func replayTrace(t *testing.T, recs []core.PeriodRecord) []byte {
	t.Helper()
	n := len(recs)
	col := func(f func(core.PeriodRecord) float64) []float64 {
		out := make([]float64, n)
		for i, r := range recs {
			out[i] = f(r)
		}
		return out
	}
	set := &trace.Set{}
	set.Add("avg_w", col(func(r core.PeriodRecord) float64 { return r.AvgPowerW }))
	set.Add("true_w", col(func(r core.PeriodRecord) float64 { return r.TrueAvgPowerW }))
	set.Add("setpoint_w", col(func(r core.PeriodRecord) float64 { return r.SetpointW }))
	set.Add("cpu_ghz", col(func(r core.PeriodRecord) float64 { return r.CPUFreqGHz }))
	set.Add("energy_j", col(func(r core.PeriodRecord) float64 { return r.EnergyJ }))
	for g := range recs[0].GPUFreqMHz {
		g := g
		set.Add(fmt.Sprintf("gpu%d_mhz", g), col(func(r core.PeriodRecord) float64 { return r.GPUFreqMHz[g] }))
		set.Add(fmt.Sprintf("gpu%d_lat_s", g), col(func(r core.PeriodRecord) float64 { return r.GPULatencyS[g] }))
	}
	set.AddFlags("degraded", flags(recs, func(r core.PeriodRecord) bool { return r.Degraded }))
	set.AddFlags("failsafe", flags(recs, func(r core.PeriodRecord) bool { return r.FailSafe }))
	var buf bytes.Buffer
	if err := set.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func flags(recs []core.PeriodRecord, f func(core.PeriodRecord) bool) []bool {
	out := make([]bool, len(recs))
	for i, r := range recs {
		out[i] = f(r)
	}
	return out
}

// TestSeededReplayGolden pins the determinism contract the lint rule
// polices: the full control loop — evaluation rig, CapGPU controller,
// fault injection, graceful degradation, and (since the telemetry
// subsystem landed) the JSONL event stream and Prometheus exposition —
// run twice from the same seed and schedule must produce byte-identical
// output on every channel. Telemetry runs with the zero clock, exactly
// as seeded contexts must use it.
func TestSeededReplayGolden(t *testing.T) {
	run := func() (csv, jsonl, prom []byte) {
		sched, err := faults.Parse(RobustnessScenario, 7)
		if err != nil {
			t.Fatal(err)
		}
		var events bytes.Buffer
		hub := telemetry.New(telemetry.Config{JSONL: &events})
		res, err := RunInstrumentedSession("capgpu", 7, 60, FixedSetpoint(900), nil, sched, false, hub)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Records) != 60 {
			t.Fatalf("got %d periods, want 60", len(res.Records))
		}
		if err := hub.Finish(); err != nil {
			t.Fatal(err)
		}
		var metricsOut bytes.Buffer
		if err := hub.Registry().WritePrometheus(&metricsOut); err != nil {
			t.Fatal(err)
		}
		return replayTrace(t, res.Records), events.Bytes(), metricsOut.Bytes()
	}
	csvA, jsonlA, promA := run()
	csvB, jsonlB, promB := run()
	for _, ch := range []struct {
		name string
		a, b []byte
	}{
		{"csv", csvA, csvB}, {"jsonl", jsonlA, jsonlB}, {"prometheus", promA, promB},
	} {
		if !bytes.Equal(ch.a, ch.b) {
			for i := range ch.a {
				if i >= len(ch.b) || ch.a[i] != ch.b[i] {
					t.Fatalf("%s replay diverged at byte %d of %d/%d", ch.name, i, len(ch.a), len(ch.b))
				}
			}
			t.Fatalf("%s replay traces differ in length: %d vs %d", ch.name, len(ch.a), len(ch.b))
		}
		if len(ch.a) == 0 {
			t.Fatalf("empty %s trace", ch.name)
		}
	}

	// Telemetry must not perturb the control loop: the uninstrumented
	// session stays byte-identical to the instrumented one.
	res, err := RunFaultSession("capgpu", 7, 60, FixedSetpoint(900), nil, mustParse(t), false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(replayTrace(t, res.Records), csvA) {
		t.Fatal("attaching telemetry changed the control trajectory")
	}

	// The fault-heavy scenario exercises degraded and fail-safe states;
	// the recorded stream must close every one of them.
	events, err := telemetry.ReadEvents(bytes.NewReader(jsonlA))
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.CheckBalance(events); err != nil {
		t.Fatalf("golden event stream unbalanced: %v", err)
	}
}

func mustParse(t *testing.T) *faults.Schedule {
	t.Helper()
	sched, err := faults.Parse(RobustnessScenario, 7)
	if err != nil {
		t.Fatal(err)
	}
	return sched
}
