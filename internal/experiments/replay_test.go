package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/trace"
)

// replayTrace renders a session's records as the CSV a user would
// export, touching every channel that could smuggle nondeterminism in:
// measured and true power, both knob groups, latency, energy, and the
// degradation flags driven by the fault injector.
func replayTrace(t *testing.T, recs []core.PeriodRecord) []byte {
	t.Helper()
	n := len(recs)
	col := func(f func(core.PeriodRecord) float64) []float64 {
		out := make([]float64, n)
		for i, r := range recs {
			out[i] = f(r)
		}
		return out
	}
	set := &trace.Set{}
	set.Add("avg_w", col(func(r core.PeriodRecord) float64 { return r.AvgPowerW }))
	set.Add("true_w", col(func(r core.PeriodRecord) float64 { return r.TrueAvgPowerW }))
	set.Add("setpoint_w", col(func(r core.PeriodRecord) float64 { return r.SetpointW }))
	set.Add("cpu_ghz", col(func(r core.PeriodRecord) float64 { return r.CPUFreqGHz }))
	set.Add("energy_j", col(func(r core.PeriodRecord) float64 { return r.EnergyJ }))
	for g := range recs[0].GPUFreqMHz {
		g := g
		set.Add(fmt.Sprintf("gpu%d_mhz", g), col(func(r core.PeriodRecord) float64 { return r.GPUFreqMHz[g] }))
		set.Add(fmt.Sprintf("gpu%d_lat_s", g), col(func(r core.PeriodRecord) float64 { return r.GPULatencyS[g] }))
	}
	set.AddFlags("degraded", flags(recs, func(r core.PeriodRecord) bool { return r.Degraded }))
	set.AddFlags("failsafe", flags(recs, func(r core.PeriodRecord) bool { return r.FailSafe }))
	var buf bytes.Buffer
	if err := set.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func flags(recs []core.PeriodRecord, f func(core.PeriodRecord) bool) []bool {
	out := make([]bool, len(recs))
	for i, r := range recs {
		out[i] = f(r)
	}
	return out
}

// TestSeededReplayGolden pins the determinism contract the lint rule
// polices: the full control loop — evaluation rig, CapGPU controller,
// fault injection, graceful degradation — run twice from the same seed
// and schedule must produce byte-identical CSV traces.
func TestSeededReplayGolden(t *testing.T) {
	run := func() []byte {
		sched, err := faults.Parse(RobustnessScenario, 7)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunFaultSession("capgpu", 7, 60, FixedSetpoint(900), nil, sched, false)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Records) != 60 {
			t.Fatalf("got %d periods, want 60", len(res.Records))
		}
		return replayTrace(t, res.Records)
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		for i := range a {
			if i >= len(b) || a[i] != b[i] {
				t.Fatalf("replay diverged at byte %d of %d/%d", i, len(a), len(b))
			}
		}
		t.Fatalf("replay traces differ in length: %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
}
