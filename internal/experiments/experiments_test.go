package experiments

import (
	"math"
	"testing"

	"repro/internal/metrics"
)

// The tests below are the repository's acceptance criteria: each asserts
// the qualitative shape the paper reports for the corresponding table or
// figure (who wins, by roughly what factor, where the failures lie) —
// not the absolute numbers, which are testbed-specific.

func TestRigConstruction(t *testing.T) {
	rig, err := NewEvaluationRig(1)
	if err != nil {
		t.Fatal(err)
	}
	if rig.Server.NumGPUs() != 3 {
		t.Fatalf("rig has %d GPUs", rig.Server.NumGPUs())
	}
	if len(rig.Model.Gains) != 4 {
		t.Fatalf("model has %d gains", len(rig.Model.Gains))
	}
	for i, g := range rig.Model.Gains {
		if g <= 0 {
			t.Fatalf("gain %d = %g", i, g)
		}
	}
	if len(rig.LatencyModels) != 3 {
		t.Fatalf("latency models: %d", len(rig.LatencyModels))
	}
}

func TestBuildControllerAllNames(t *testing.T) {
	rig, err := NewEvaluationRig(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range ControllerNames() {
		c, err := BuildController(n, rig)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if c.Name() == "" {
			t.Fatalf("%s: empty display name", n)
		}
	}
	if _, err := BuildController("nope", rig); err == nil {
		t.Fatal("expected unknown-controller error")
	}
}

func TestTable1Shape(t *testing.T) {
	res, err := Table1Motivation(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range res.Rows {
		byName[r.Config] = r
	}
	cpu, gpu, cap := byName["CPU-only"], byName["GPU-only"], byName["CapGPU"]
	// The paper's Table 1 ordering: CapGPU > GPU-only > CPU-only in
	// throughput, with CapGPU's queue delay the lowest.
	if !(cap.ThroughputIPS > gpu.ThroughputIPS && gpu.ThroughputIPS > cpu.ThroughputIPS) {
		t.Fatalf("throughput ordering broken: %g / %g / %g",
			cpu.ThroughputIPS, gpu.ThroughputIPS, cap.ThroughputIPS)
	}
	// Magnitudes near the paper's 5.3 / 5.9 / 6.4 img/s.
	for name, want := range map[string]float64{"CPU-only": 5.3, "GPU-only": 5.9, "CapGPU": 6.4} {
		got := byName[name].ThroughputIPS
		if math.Abs(got-want) > 0.6 {
			t.Fatalf("%s throughput %g too far from paper's %g", name, got, want)
		}
	}
	if !(cap.QueueDelayS < gpu.QueueDelayS) {
		t.Fatalf("CapGPU queue delay %g should beat GPU-only %g", cap.QueueDelayS, gpu.QueueDelayS)
	}
	// GPU-only's slow clock gives the longest batch latency (paper: 2.0 s).
	if !(gpu.GPULatencyS > cap.GPULatencyS && gpu.GPULatencyS > cpu.GPULatencyS) {
		t.Fatalf("GPU-only should have the worst batch latency: %g / %g / %g",
			cpu.GPULatencyS, gpu.GPULatencyS, cap.GPULatencyS)
	}
	// Powers are within a similar band (the experiment's premise).
	for _, r := range res.Rows {
		if r.AvgPowerW < 350 || r.AvgPowerW > 480 {
			t.Fatalf("%s power %g outside the motivation band", r.Config, r.AvgPowerW)
		}
	}
}

func TestFig2aShape(t *testing.T) {
	res, err := Fig2aSystemID(2)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: R² = 0.96; accept a high-but-imperfect band.
	if res.Model.R2 < 0.90 || res.Model.R2 > 0.995 {
		t.Fatalf("R² = %g outside [0.90, 0.995]", res.Model.R2)
	}
	if len(res.Measured) != len(res.Predicted) || len(res.Measured) < 15 {
		t.Fatalf("sweep sizes: %d vs %d", len(res.Measured), len(res.Predicted))
	}
	if res.Model.Gains[0] <= 0 || res.Model.Gains[1] <= 0 {
		t.Fatalf("gains not positive: %v", res.Model.Gains)
	}
}

func TestFig2bShape(t *testing.T) {
	res, err := Fig2bLatencyModel("swin_t", 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model.Gamma != 0.91 {
		t.Fatalf("fixed gamma = %g", res.Model.Gamma)
	}
	// Paper: R² ≈ 0.91 for the fixed law.
	if res.Model.R2 < 0.80 || res.Model.R2 > 0.97 {
		t.Fatalf("fixed-law R² = %g outside [0.80, 0.97]", res.Model.R2)
	}
	// The free fit should do better than the fixed law (it absorbs part
	// of the residual into gamma).
	if res.FreeFit.R2 <= res.Model.R2 {
		t.Fatalf("free fit R² %g should beat fixed %g", res.FreeFit.R2, res.Model.R2)
	}
	// Unknown workload falls back gracefully.
	fb, err := Fig2bLatencyModel("not-a-model", 3)
	if err != nil {
		t.Fatal(err)
	}
	if fb.Workload != "resnet50" {
		t.Fatalf("fallback workload = %q", fb.Workload)
	}
}

func TestFig3Shape(t *testing.T) {
	res, err := Fig3PowerControl(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	get := func(n string) metrics.Summary { return res.Runs[n].Summary }

	// CPU-Only cannot reach the cap (GPUs pinned at max).
	if get("cpu-only").Mean < 1000 {
		t.Fatalf("CPU-Only mean %g should be stuck far above 900", get("cpu-only").Mean)
	}
	// Both CPU+GPU splits settle off target.
	for _, n := range []string{"cpu+gpu-50", "cpu+gpu-60"} {
		if math.Abs(get(n).Mean-900) < 30 {
			t.Fatalf("%s mean %g should miss the cap", n, get(n).Mean)
		}
	}
	// GPU-Only and CapGPU converge.
	for _, n := range []string{"gpu-only", "capgpu"} {
		if math.Abs(get(n).Mean-900) > 10 {
			t.Fatalf("%s mean %g should track 900", n, get(n).Mean)
		}
		if get(n).Settling < 0 {
			t.Fatalf("%s never settled", n)
		}
	}
	// Fixed-Step oscillates more than the control-theoretic designs.
	if get("fixed-step-1").Std <= get("capgpu").Std {
		t.Fatalf("Fixed-Step std %g should exceed CapGPU %g",
			get("fixed-step-1").Std, get("capgpu").Std)
	}
	// CapGPU is at least as accurate as GPU-Only.
	if get("capgpu").RMSE > get("gpu-only").RMSE*1.1 {
		t.Fatalf("CapGPU RMSE %g should not exceed GPU-Only %g by >10%%",
			get("capgpu").RMSE, get("gpu-only").RMSE)
	}
}

func TestFig4Fig5Shape(t *testing.T) {
	f4, err := Fig4FixedStep(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	small := f4.Runs["fixed-step-1"].Summary
	large := f4.Runs["fixed-step-5"].Summary
	// Small steps settle slowly; both oscillate; the larger step's
	// oscillation amplitude is bigger.
	if small.Settling >= 0 && small.Settling < 10 {
		t.Fatalf("step-1 settled suspiciously fast: %d", small.Settling)
	}
	if large.Std <= small.Std {
		t.Fatalf("step-5 std %g should exceed step-1 std %g", large.Std, small.Std)
	}
	// Plain Fixed-Step violates the cap; Safe Fixed-Step (Fig. 5) stays
	// essentially below it.
	if small.Violations == 0 && large.Violations == 0 {
		t.Fatal("plain Fixed-Step should violate the cap sometimes")
	}
	f5, err := Fig5SafeFixedStep(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range f5.Order {
		s := f5.Runs[n].Summary
		if s.Mean >= 900 {
			t.Fatalf("%s mean %g should sit below the cap", n, s.Mean)
		}
		if s.Violations > 5 {
			t.Fatalf("%s violations = %d; the margin should mostly prevent them", n, s.Violations)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	res, err := Fig6SetpointSweep(5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SetpointsW) != 7 {
		t.Fatalf("setpoints = %v", res.SetpointsW)
	}
	byCtl := map[string][]Fig6Point{}
	for _, p := range res.Points {
		byCtl[p.Controller] = append(byCtl[p.Controller], p)
	}
	avgErr := func(n string) float64 {
		s := 0.0
		for _, p := range byCtl[n] {
			s += p.AbsErrW
		}
		return s / float64(len(byCtl[n]))
	}
	// Accuracy ordering: CapGPU ≈ GPU-Only (tight) << Safe Fixed-Step
	// << the CPU+GPU splits.
	if avgErr("capgpu") > 5 {
		t.Fatalf("CapGPU mean error %g too large", avgErr("capgpu"))
	}
	if avgErr("gpu-only") > 5 {
		t.Fatalf("GPU-Only mean error %g too large", avgErr("gpu-only"))
	}
	if avgErr("safe-fixed-step-1") < 15 {
		t.Fatalf("Safe Fixed-Step error %g suspiciously small (its margin should show)", avgErr("safe-fixed-step-1"))
	}
	if avgErr("cpu+gpu-50") < 60 || avgErr("cpu+gpu-60") < 40 {
		t.Fatalf("CPU+GPU splits should fail to converge: %g / %g",
			avgErr("cpu+gpu-50"), avgErr("cpu+gpu-60"))
	}
	// Safe Fixed-Step has the worst oscillation among the convergent
	// designs (paper: "most significant oscillation and deviation").
	for _, p := range byCtl["safe-fixed-step-1"] {
		var cap6 Fig6Point
		for _, q := range byCtl["capgpu"] {
			if q.SetpointW == p.SetpointW {
				cap6 = q
			}
		}
		if p.StdW < cap6.StdW*0.8 {
			t.Fatalf("at %g W Safe Fixed-Step std %g unexpectedly beats CapGPU %g",
				p.SetpointW, p.StdW, cap6.StdW)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	res, err := Fig7Performance(6, 100)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig7Row{}
	for _, r := range res.Rows {
		byName[r.Controller] = r
	}
	capr, gpu, sfs := byName["CapGPU"], byName["GPU-Only"], byName["Safe Fixed-Step"]
	sum := func(v []float64) float64 {
		s := 0.0
		for _, x := range v {
			s += x
		}
		return s
	}
	// Fig. 7a/7c: CapGPU delivers the highest aggregate GPU throughput
	// and the lowest mean latency.
	if sum(capr.GPUThroughput) <= sum(gpu.GPUThroughput) {
		t.Fatalf("CapGPU aggregate tput %g should beat GPU-Only %g",
			sum(capr.GPUThroughput), sum(gpu.GPUThroughput))
	}
	if sum(capr.GPUThroughput) <= sum(sfs.GPUThroughput)*0.98 {
		t.Fatalf("CapGPU aggregate tput %g should at least match Safe Fixed-Step %g",
			sum(capr.GPUThroughput), sum(sfs.GPUThroughput))
	}
	if sum(capr.GPULatencyS) >= sum(gpu.GPULatencyS) {
		t.Fatalf("CapGPU aggregate latency %g should beat GPU-Only %g",
			sum(capr.GPULatencyS), sum(gpu.GPULatencyS))
	}
	// Fig. 7b/7d: GPU-Only has the best CPU-side numbers (CPU pinned at
	// max); CapGPU's CPU latency is slightly higher — acceptable, as the
	// preprocessing work has no SLO.
	if gpu.CPUThroughput <= capr.CPUThroughput {
		t.Fatalf("GPU-Only CPU tput %g should exceed CapGPU %g",
			gpu.CPUThroughput, capr.CPUThroughput)
	}
	if capr.CPULatencyS <= gpu.CPULatencyS {
		t.Fatalf("CapGPU CPU latency %g should exceed GPU-Only %g",
			capr.CPULatencyS, gpu.CPULatencyS)
	}
}

func TestFig8Fig9Shape(t *testing.T) {
	res, err := Fig8Fig9SLOAdaptation(7, 60)
	if err != nil {
		t.Fatal(err)
	}
	capr := res.Runs["capgpu"]
	// Fig. 9: CapGPU meets every SLO after the change (grace excluded).
	for g, miss := range capr.PostChangeMissRate {
		if miss > 0.05 {
			t.Fatalf("CapGPU GPU %d post-change miss rate %g", g, miss)
		}
	}
	// Fig. 8: the baselines miss the tightened SLOs on GPUs 1 and 2
	// (shared clock / no SLO mechanism).
	for _, n := range []string{"safe-fixed-step-1", "gpu-only"} {
		r := res.Runs[n]
		if r.PostChangeMissRate[1] < 0.5 && r.PostChangeMissRate[2] < 0.5 {
			t.Fatalf("%s should miss the tightened SLOs: %v", n, r.PostChangeMissRate)
		}
	}
}

func TestSLOLevelsMonotone(t *testing.T) {
	rig, err := NewEvaluationRig(3)
	if err != nil {
		t.Fatal(err)
	}
	levels, err := SLOLevels(rig)
	if err != nil {
		t.Fatal(err)
	}
	for name, l := range levels {
		// Higher tail percentage = tighter (smaller) latency bound.
		if !(l[80] < l[50] && l[50] < l[30]) {
			t.Fatalf("%s levels not ordered: %v", name, l)
		}
	}
	sched, err := SLOSchedule(rig, 14)
	if err != nil {
		t.Fatal(err)
	}
	before, after := sched(13), sched(14)
	if after[0] <= before[0] {
		t.Fatal("GPU 0's SLO should relax at the change")
	}
	for g := 1; g <= 2; g++ {
		if after[g] >= before[g] {
			t.Fatalf("GPU %d's SLO should tighten at the change", g)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	res, err := Fig10Adaptation(8, 120)
	if err != nil {
		t.Fatal(err)
	}
	capSeries := res.Runs["capgpu"].PowerSeries()
	// CapGPU tracks each phase of the schedule.
	phase := func(from, to int) float64 {
		return metrics.Mean(capSeries[from:to])
	}
	if math.Abs(phase(20, 40)-800) > 12 {
		t.Fatalf("phase-1 mean %g, want ~800", phase(20, 40))
	}
	if math.Abs(phase(60, 80)-900) > 12 {
		t.Fatalf("phase-2 mean %g, want ~900", phase(60, 80))
	}
	if math.Abs(phase(100, 120)-800) > 12 {
		t.Fatalf("phase-3 mean %g, want ~800", phase(100, 120))
	}
	// CapGPU settles on both steps; its settling is no slower than
	// GPU-Only's.
	for _, step := range []map[string]int{res.SettlingAfterRaise, res.SettlingAfterDrop} {
		if step["capgpu"] < 0 {
			t.Fatal("CapGPU failed to settle after a step")
		}
		if g := step["gpu-only"]; g >= 0 && step["capgpu"] > g+2 {
			t.Fatalf("CapGPU settling %d much slower than GPU-Only %d", step["capgpu"], g)
		}
	}
}

func TestStabilityAnalysisShape(t *testing.T) {
	res, err := StabilityAnalysis(9)
	if err != nil {
		t.Fatal(err)
	}
	// Damped closed loop: pole = 1 − β with β = 0.7.
	if math.Abs(res.NominalPole-0.3) > 0.02 {
		t.Fatalf("nominal pole %g, want ~0.3", res.NominalPole)
	}
	if res.UniformLo != 0 || res.UniformHi < 2 {
		t.Fatalf("uniform gain range (%g, %g) implausible", res.UniformLo, res.UniformHi)
	}
	// Nominal gains (scale 1) must be comfortably inside the range.
	if res.UniformHi < 1.5 {
		t.Fatalf("stability margin %g too thin", res.UniformHi)
	}
	// The pole locus agrees with stability flags.
	for i, s := range res.LocusScales {
		wantStable := s > res.UniformLo && s < res.UniformHi
		if res.LocusStable[i] != wantStable {
			t.Fatalf("scale %g: locus stability %v disagrees with range", s, res.LocusStable[i])
		}
	}
	// Per-device bounds include the nominal gain factor 1.
	for i := range res.PerDeviceLo {
		if !(res.PerDeviceLo[i] < 1 && 1 < res.PerDeviceHi[i]) {
			t.Fatalf("device %d bound (%g, %g) excludes nominal", i, res.PerDeviceLo[i], res.PerDeviceHi[i])
		}
	}
}

func TestSafeMarginGrowsWithStep(t *testing.T) {
	rig, err := NewEvaluationRig(10)
	if err != nil {
		t.Fatal(err)
	}
	m1 := SafeMarginW(rig.Model, 1)
	m5 := SafeMarginW(rig.Model, 5)
	if m5 <= m1 {
		t.Fatalf("margin should grow with step size: %g vs %g", m1, m5)
	}
	if m1 < 8 {
		t.Fatalf("margin %g below the noise floor", m1)
	}
}

func TestRunSessionValidation(t *testing.T) {
	if _, err := RunSession("bogus", 1, 10, FixedSetpoint(900), nil); err == nil {
		t.Fatal("expected unknown-controller error")
	}
}
