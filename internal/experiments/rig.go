// Package experiments reproduces every table and figure of the paper's
// evaluation (§3.2, §4.2, §6) as a callable function, shared by the
// benchmark harness (bench_test.go), the cmd tools, and EXPERIMENTS.md.
// Each function builds its own seeded rig so results are deterministic
// and controller runs are compared against identical workload noise.
package experiments

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/flight"
	"repro/internal/metrics"
	"repro/internal/mpc"
	"repro/internal/sim"
	"repro/internal/sysid"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// TelemetryNode is the node label single-server sessions stamp on their
// telemetry (rack sessions use real node names instead).
const TelemetryNode = "server0"

// Rig is the assembled evaluation testbed: server, workloads, identified
// power model, and per-GPU latency models.
type Rig struct {
	Server        *sim.Server
	Model         *sysid.Model
	LatencyModels []*sysid.LatencyModel
	ModelNames    []string // per-GPU workload names (t1..t3)
	// PhaseLaw is the phase-dependent power law derived for LLM rigs
	// (nil on CNN rigs); the capgpu-phase controller consumes it.
	PhaseLaw *core.PhasePowerLaw
}

// evalPipelineConfigs returns the §6.1 workload assignment: t1 ResNet50
// on GPU 0, t2 Swin-T on GPU 1, t3 VGG16 on GPU 2, parameters scaled to
// the V100 window.
func evalPipelineConfigs(seed int64) []workload.PipelineConfig {
	zoo := workload.Zoo()
	return []workload.PipelineConfig{
		{Model: zoo["resnet50"], Workers: 2, PreLatencyBase: 0.004, PreLatencyExp: 0.4,
			ArrivalRateMax: 250, ArrivalExp: 0.5, QueueCap: 60, FcMax: 2.4, FgMax: 1350, Seed: seed + 1},
		{Model: zoo["swin_t"], Workers: 2, PreLatencyBase: 0.010, PreLatencyExp: 0.4,
			ArrivalRateMax: 100, ArrivalExp: 0.5, QueueCap: 60, FcMax: 2.4, FgMax: 1350, Seed: seed + 2},
		{Model: zoo["vgg16"], Workers: 2, PreLatencyBase: 0.008, PreLatencyExp: 0.4,
			ArrivalRateMax: 130, ArrivalExp: 0.5, QueueCap: 60, FcMax: 2.4, FgMax: 1350, Seed: seed + 3},
	}
}

// attachEvalWorkloads wires the standard workloads onto a server.
func attachEvalWorkloads(s *sim.Server, seed int64) error {
	for i, cfg := range evalPipelineConfigs(seed) {
		p, err := workload.NewPipeline(cfg)
		if err != nil {
			return err
		}
		if err := s.AttachPipeline(i, p); err != nil {
			return err
		}
	}
	w, err := workload.NewCPUWorkload(workload.CPUWorkloadConfig{
		RateAtMax: 40, RateExp: 1, FcMax: 2.4, NoiseStd: 0.02, Seed: seed + 4})
	if err != nil {
		return err
	}
	s.AttachCPUWorkload(w)
	return nil
}

// NewEvaluationRig builds the paper's evaluation testbed (Xeon + 3×V100,
// §5) with the §6.1 workloads, runs system identification on a twin
// server (so the evaluation run starts from pristine state), and fits
// the per-GPU latency models used for SLO inversion.
func NewEvaluationRig(seed int64) (*Rig, error) {
	// Identification twin.
	twin, err := sim.NewServer(sim.DefaultTestbed(seed + 100))
	if err != nil {
		return nil, err
	}
	if err := attachEvalWorkloads(twin, seed+100); err != nil {
		return nil, err
	}
	model, _, err := sysid.Identify(twin, sysid.ExciteConfig{})
	if err != nil {
		return nil, fmt.Errorf("experiments: identification: %w", err)
	}

	// Evaluation server.
	s, err := sim.NewServer(sim.DefaultTestbed(seed))
	if err != nil {
		return nil, err
	}
	if err := attachEvalWorkloads(s, seed); err != nil {
		return nil, err
	}

	// Latency models: the controller knows each workload's e_min and the
	// paper's γ = 0.91 from profiling (Fig. 2b's fit is reproduced
	// separately in Fig2bLatencyModel; here the law parameters are used
	// directly, as the paper does in Eq. 10b).
	names := []string{"resnet50", "swin_t", "vgg16"}
	zoo := workload.Zoo()
	lms := make([]*sysid.LatencyModel, 3)
	for i, n := range names {
		lms[i] = &sysid.LatencyModel{
			EMin:  zoo[n].EMinBatch,
			Gamma: zoo[n].Gamma,
			FMax:  1350,
		}
	}
	return &Rig{Server: s, Model: model, LatencyModels: lms, ModelNames: names}, nil
}

// ControllerNames lists the controllers BuildController accepts, in the
// order the comparison figures present them.
func ControllerNames() []string {
	return []string{
		"cpu-only", "gpu-only", "cpu+gpu-50", "cpu+gpu-60",
		"fixed-step-1", "fixed-step-5", "safe-fixed-step-1", "safe-fixed-step-3", "safe-fixed-step-5",
		"capgpu", "capgpu-slsqp", "capgpu-uniform", "capgpu-phase",
	}
}

// baselinePole is the closed-loop pole used for the proportional
// baselines ("chosen to minimize oscillations", §6.1).
const baselinePole = 0.45

// SafeMarginW estimates Safe Fixed-Step's safety margin from the
// identified model: the steady-state oscillation amplitude is one step's
// power impact, so the margin keeps peaks under the cap (§6.2 notes the
// margin comes from measured steady-state errors).
func SafeMarginW(model *sysid.Model, stepMult int) float64 {
	cpuSwing := model.Gains[0] * 0.1 * float64(stepMult)
	maxGPU := 0.0
	for _, g := range model.Gains[1:] {
		if sw := g * 90 * float64(stepMult); sw > maxGPU {
			maxGPU = sw
		}
	}
	m := cpuSwing
	if maxGPU > m {
		m = maxGPU
	}
	return m + 8 // measurement-noise headroom
}

// BuildController instantiates a controller by name for a rig.
func BuildController(name string, rig *Rig) (core.PowerController, error) {
	switch name {
	case "cpu-only":
		return baselines.NewCPUOnly(rig.Model, rig.Server, baselinePole)
	case "gpu-only":
		return baselines.NewGPUOnly(rig.Model, rig.Server, baselinePole)
	case "cpu+gpu-50":
		return baselines.NewCPUPlusGPU(rig.Model, rig.Server, 0.5, rig.Server.Config().OtherW, baselinePole)
	case "cpu+gpu-60":
		return baselines.NewCPUPlusGPU(rig.Model, rig.Server, 0.6, rig.Server.Config().OtherW, baselinePole)
	case "fixed-step-1":
		return baselines.NewFixedStep(rig.Server, 1, 0)
	case "fixed-step-5":
		return baselines.NewFixedStep(rig.Server, 5, 0)
	case "safe-fixed-step-1":
		return baselines.NewFixedStep(rig.Server, 1, SafeMarginW(rig.Model, 1))
	case "safe-fixed-step-3":
		return baselines.NewFixedStep(rig.Server, 3, SafeMarginW(rig.Model, 3))
	case "safe-fixed-step-5":
		return baselines.NewFixedStep(rig.Server, 5, SafeMarginW(rig.Model, 5))
	case "capgpu":
		return core.NewCapGPU(rig.Model, rig.Server, rig.LatencyModels, core.Options{})
	case "capgpu-slsqp":
		return core.NewCapGPU(rig.Model, rig.Server, rig.LatencyModels, core.Options{MPC: mpc.Config{UseSLSQP: true}})
	case "capgpu-uniform":
		return core.NewCapGPU(rig.Model, rig.Server, rig.LatencyModels, core.Options{MPC: mpc.Config{UniformWeights: true}})
	case "capgpu-phase":
		// Phase-aware capping: gain scheduling on the observed prefill
		// mix plus the prefill-headroom guard. On a CNN rig (no phase
		// observations, nil PhaseLaw → default law) it decides exactly
		// like plain capgpu.
		return core.NewCapGPU(rig.Model, rig.Server, rig.LatencyModels, core.Options{PhaseAware: true, PhaseLaw: rig.PhaseLaw})
	default:
		return nil, fmt.Errorf("experiments: unknown controller %q (want one of %v)", name, ControllerNames())
	}
}

// RunResult is one controller's capping session.
type RunResult struct {
	Controller string
	Records    []core.PeriodRecord
	Summary    metrics.Summary
}

// PowerSeries extracts the per-period average power.
func (r *RunResult) PowerSeries() []float64 {
	out := make([]float64, len(r.Records))
	for i, rec := range r.Records {
		out[i] = rec.AvgPowerW
	}
	return out
}

// RunSession runs one controller (by name) on a fresh rig for the given
// schedule. Using a fresh rig per controller gives every controller the
// identical workload noise stream.
func RunSession(name string, seed int64, periods int, setpoint func(int) float64, slos func(int) []float64) (*RunResult, error) {
	return RunFaultSession(name, seed, periods, setpoint, slos, nil, false)
}

// RunFaultSession is RunSession with a fault schedule attached to the
// harness; noDegrade disables the graceful-degradation fallback (the
// R1 strawman).
func RunFaultSession(name string, seed int64, periods int, setpoint func(int) float64, slos func(int) []float64, sched *faults.Schedule, noDegrade bool) (*RunResult, error) {
	return RunInstrumentedSession(name, seed, periods, setpoint, slos, sched, noDegrade, nil)
}

// RunInstrumentedSession is RunFaultSession with a telemetry sink
// attached to the harness (and, through it, to the actuator bank and a
// TelemetryAware controller), labeled TelemetryNode. A nil sink runs
// uninstrumented and is byte-identical to RunFaultSession.
func RunInstrumentedSession(name string, seed int64, periods int, setpoint func(int) float64, slos func(int) []float64, sched *faults.Schedule, noDegrade bool, sink telemetry.Sink) (*RunResult, error) {
	return RunSessionWith(name, seed, periods, setpoint, slos, SessionOptions{
		Faults: sched, NoDegrade: noDegrade, Telemetry: sink,
	})
}

// SessionOptions bundles the optional attachments of a capping session.
type SessionOptions struct {
	// Faults injects a fault schedule; NoDegrade disables the
	// graceful-degradation fallback (the R1 strawman).
	Faults    *faults.Schedule
	NoDegrade bool
	// Telemetry, when non-nil, instruments the harness (labeled
	// TelemetryNode).
	Telemetry telemetry.Sink
	// Flight, when non-nil, attaches the flight recorder (and switches a
	// FlightAware controller into trace-building mode).
	Flight *flight.Recorder
	// Stop, when non-nil, is polled between periods; returning true ends
	// the run early with the records produced so far. The in-flight
	// period always completes, and period 0 always runs, so a stopped
	// session still yields a well-formed (if short) record stream.
	Stop func() bool
	// Workload selects the workload family: "" or "cnn" runs the §6.1
	// CNN rig, "llm" the LLM serving rig (with the cyclic regime
	// switch attached via OnPeriodStart).
	Workload string
	// LLMSpec is the serving-mix DSL for Workload "llm"
	// ("model@rate:prompt+output[*experts];..."); empty uses
	// DefaultLLMSpecDSL.
	LLMSpec string
}

// RunSessionWith runs one controller (by name) on a fresh rig with the
// given optional attachments. The zero options value is byte-identical
// to RunSession.
func RunSessionWith(name string, seed int64, periods int, setpoint func(int) float64, slos func(int) []float64, opts SessionOptions) (*RunResult, error) {
	var rig *Rig
	var err error
	switch opts.Workload {
	case "", "cnn":
		rig, err = NewEvaluationRig(seed)
	case "llm":
		rig, err = NewLLMRig(seed, opts.LLMSpec)
	default:
		return nil, fmt.Errorf("experiments: unknown workload family %q (want cnn or llm)", opts.Workload)
	}
	if err != nil {
		return nil, err
	}
	ctrl, err := BuildController(name, rig)
	if err != nil {
		return nil, err
	}
	h, err := core.NewHarness(rig.Server, ctrl, setpoint)
	if err != nil {
		return nil, err
	}
	h.SLOs = slos
	if opts.Workload == "llm" {
		h.OnPeriodStart = LLMRegimeOnPeriod
	}
	h.Faults = opts.Faults
	h.Degrade.Disable = opts.NoDegrade
	if opts.Telemetry != nil {
		h.SetTelemetry(opts.Telemetry, TelemetryNode)
	}
	if opts.Flight != nil {
		h.SetFlight(opts.Flight)
	}
	var recs []core.PeriodRecord
	if opts.Stop == nil {
		recs, err = h.Run(periods)
	} else {
		for k := 0; k < periods; k++ {
			if k > 0 && opts.Stop() {
				break
			}
			var rec core.PeriodRecord
			rec, err = h.StepPeriod(k)
			if err != nil {
				break
			}
			recs = append(recs, rec)
		}
	}
	if err != nil {
		return nil, err
	}
	res := &RunResult{Controller: ctrl.Name(), Records: recs}
	// Fixed set-point summaries use the paper's final-80%-of-run
	// convention (last 80 of 100 periods in §6.3), over the periods that
	// actually ran when the session was stopped early.
	n := len(recs)
	sp := setpoint(n - 1)
	res.Summary = metrics.Summarize(res.PowerSeries(), sp, n*8/10, 0.02*sp, 0.01*sp)
	return res, nil
}

// FixedSetpoint is a constant set-point schedule.
func FixedSetpoint(capW float64) func(int) float64 {
	return func(int) float64 { return capW }
}
