package experiments

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/flight"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/sysid"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// The experiments in this file go beyond the paper's evaluation, along
// directions its text explicitly opens:
//
//   - E1x adaptive identification: §4.4 proves stability under bounded
//     gain error; the adaptive extension *removes* the error online with
//     recursive least squares.
//   - E2x infeasible caps: §4.4's closing paragraph — "additional system
//     mechanisms (e.g., memory throttling) must be integrated. Exploring
//     such multi-layer adaptations is part of our future work."
//   - E3x rack-level capping: the introduction's oversubscription story
//     (Dynamo, priority-aware capping) with CapGPU as the per-server
//     enforcement layer.

// AdaptiveRow is one configuration of the adaptive-identification study.
type AdaptiveRow struct {
	Config string
	// PredRMSEPost is the RMSE of the controller model's one-period
	// power prediction after the workload change.
	PredRMSEPost float64
	// PowerRMSEPost is the control tracking RMSE after the change.
	PowerRMSEPost float64
	// CPUGainEnd / GPUGainEnd record where the (possibly adapted) model
	// ended up, for inspection.
	GainsEnd []float64
}

// ExtensionAdaptive runs CapGPU with a static vs an RLS-adapted model
// through a mid-run workload change (two GPUs' inference jobs complete
// at period 40, collapsing their utilization and with it the true
// power-frequency slope). The adaptive model re-identifies online.
func ExtensionAdaptive(seed int64, periods int) ([]AdaptiveRow, error) {
	if periods <= 0 {
		periods = 100
	}
	const changeAt = 40
	run := func(adaptive bool) (*AdaptiveRow, error) {
		rig, err := NewEvaluationRig(seed)
		if err != nil {
			return nil, err
		}
		ctrl, err := core.NewCapGPU(rig.Model, rig.Server, rig.LatencyModels, core.Options{Adaptive: adaptive})
		if err != nil {
			return nil, err
		}
		h, err := core.NewHarness(rig.Server, ctrl, FixedSetpoint(900))
		if err != nil {
			return nil, err
		}
		h.OnPeriodStart = func(k int, s *sim.Server) {
			if k == changeAt {
				_ = s.AttachPipeline(1, nil)
				_ = s.AttachPipeline(2, nil)
			}
		}
		recs, err := h.Run(periods)
		if err != nil {
			return nil, err
		}
		// One-period-ahead prediction error of the controller's model
		// after the change: predict p(k) from F(k) applied and compare.
		var predSE, powSE, n float64
		for _, r := range recs {
			if r.Period < changeAt+5 {
				continue
			}
			m := ctrl.CurrentModel()
			pred := m.Gains[0]*r.CPUFreqGHz + m.Offset
			for i, f := range r.GPUFreqMHz {
				pred += m.Gains[1+i] * f
			}
			d := pred - r.AvgPowerW
			predSE += d * d
			e := r.AvgPowerW - 900
			powSE += e * e
			n++
		}
		name := "static model"
		if adaptive {
			name = "adaptive (RLS)"
		}
		return &AdaptiveRow{
			Config:        name,
			PredRMSEPost:  math.Sqrt(predSE / n),
			PowerRMSEPost: math.Sqrt(powSE / n),
			GainsEnd:      ctrl.CurrentGains(),
		}, nil
	}
	static, err := run(false)
	if err != nil {
		return nil, err
	}
	adaptive, err := run(true)
	if err != nil {
		return nil, err
	}
	return []AdaptiveRow{*static, *adaptive}, nil
}

// InfeasibleRow is one controller's behavior at a cap below the
// frequency-only power floor.
type InfeasibleRow struct {
	Config       string
	CapW         float64
	SteadyMeanW  float64
	SteadyErrW   float64
	ThrottlesEnd int
}

// ExtensionInfeasibleCap compares frequency-only CapGPU against the
// multi-layer (memory-throttling) extension at a set point 30 W below
// the server's frequency-only floor.
func ExtensionInfeasibleCap(seed int64, periods int) ([]InfeasibleRow, error) {
	if periods <= 0 {
		periods = 60
	}
	// Measure the true frequency-only floor empirically on a twin (the
	// analytic PowerRange assumes full utilization, which overestimates
	// the floor by the CPU's idle-fraction power).
	floorRig, err := NewEvaluationRig(seed)
	if err != nil {
		return nil, err
	}
	fs := floorRig.Server
	fs.SetCPUFreq(fs.Config().CPU.FreqMinGHz)
	for i := 0; i < fs.NumGPUs(); i++ {
		if _, err := fs.SetGPUFreq(i, fs.Config().GPUs[i].FreqMinMHz); err != nil {
			return nil, err
		}
	}
	// Average long enough for the AR(1) thermal drift (±14 W std) to
	// wash out of the estimate.
	floor := 0.0
	const floorTicks = 400
	for k := 0; k < floorTicks; k++ {
		floor += fs.Tick(1).TruePowerW
	}
	floor /= floorTicks

	run := func(multilayer bool) (*InfeasibleRow, error) {
		rig, err := NewEvaluationRig(seed)
		if err != nil {
			return nil, err
		}
		capW := floor - 30
		inner, err := core.NewCapGPU(rig.Model, rig.Server, rig.LatencyModels, core.Options{})
		if err != nil {
			return nil, err
		}
		var ctrl core.PowerController = inner
		var ml *core.MultiLayer
		if multilayer {
			ml, err = core.NewMultiLayer(inner, rig.Server, rig.Model.Gains)
			if err != nil {
				return nil, err
			}
			ctrl = ml
		}
		h, err := core.NewHarness(rig.Server, ctrl, FixedSetpoint(capW))
		if err != nil {
			return nil, err
		}
		recs, err := h.Run(periods)
		if err != nil {
			return nil, err
		}
		var tail []float64
		for _, r := range recs[periods/2:] {
			tail = append(tail, r.AvgPowerW)
		}
		row := &InfeasibleRow{
			Config:      "frequency-only CapGPU",
			CapW:        capW,
			SteadyMeanW: metrics.Mean(tail),
		}
		row.SteadyErrW = row.SteadyMeanW - capW
		if multilayer {
			row.Config = "CapGPU + mem-throttle"
			row.ThrottlesEnd = len(ml.ThrottledGPUs())
		}
		return row, nil
	}
	freq, err := run(false)
	if err != nil {
		return nil, err
	}
	multi, err := run(true)
	if err != nil {
		return nil, err
	}
	return []InfeasibleRow{*freq, *multi}, nil
}

// ClusterRow is one allocation policy's rack-level outcome.
type ClusterRow struct {
	Policy            string
	BudgetW           float64
	SteadyTotalW      float64
	OverBudgetPeriods int     // periods above budget (steady state)
	AggThroughput     float64 // rack img/s
	PerNodeCapW       []float64
	// Nodes holds the per-node end-of-run telemetry summary, in node
	// order (capgpu-rack renders it as a table).
	Nodes []NodeSummary
}

// NodeSummary condenses one node's control-loop health for the rack's
// end-of-run telemetry table.
type NodeSummary struct {
	Name                string
	Periods             int
	CapViolations       int // periods with AvgPowerW above cap + 1% slack
	SLOMisses           int // GPU-periods over the latency SLO
	DegradedPeriods     int // periods on the last-good-value fallback
	FailSafeEntries     int // transitions into the blind descent
	UncontrolledPeriods int // open-loop periods (out of rack contact)
}

// SummarizeNode builds a NodeSummary from a node's period records,
// using the same 1% violation slack as the telemetry hub and the
// metrics summary so all three agree.
func SummarizeNode(name string, recs []core.PeriodRecord) NodeSummary {
	out := NodeSummary{Name: name, Periods: len(recs)}
	prevFailSafe := false
	for _, r := range recs {
		if r.SetpointW > 0 && r.AvgPowerW > r.SetpointW*1.01 {
			out.CapViolations++
		}
		for _, m := range r.SLOMiss {
			if m {
				out.SLOMisses++
			}
		}
		if r.Degraded {
			out.DegradedPeriods++
		}
		if r.FailSafe && !prevFailSafe {
			out.FailSafeEntries++
		}
		prevFailSafe = r.FailSafe
		if r.Uncontrolled {
			out.UncontrolledPeriods++
		}
	}
	return out
}

// ClusterOptions tunes ExtensionClusterOpts beyond the defaults.
type ClusterOptions struct {
	// Telemetry, when non-nil, instruments every node's loop and the
	// coordinator. Node-scoped telemetry — the harness loops and the
	// coordinator's death/recovery events — is labeled "<policy>/<node>"
	// so the three policy passes do not collide inside one hub and the
	// rack events join the per-node loop metrics.
	Telemetry *telemetry.Hub
	// Faults carries the rack-plane fault schedule (server-dropout
	// entries, target = node index, drive heartbeat misses).
	Faults *faults.Schedule
	// Workers sets cluster.Coordinator.Workers: the fan-out width for
	// per-node stepping (0 = GOMAXPROCS, 1 = sequential). Any value
	// yields the byte-identical run.
	Workers int
	// Workload selects the fleet workload family for the scale rack:
	// "" or "cnn" builds the CNN pipelines, "llm" the continuous-
	// batching LLM serving pipelines (heavy/medium/light = 3/2/1 busy
	// GPUs either way). Only NewScaleCoordinator consumes this; the
	// 3-server showcase rack is CNN-only.
	Workload string
	// Flight, when non-nil, is called once per node with the node's
	// telemetry label ("<policy>/<node>") and may return a flight
	// recorder to attach to that node's harness (nil = leave the node
	// unrecorded). One recorder per node: recorders are single-loop
	// objects and must not be shared across nodes.
	Flight func(label string) *flight.Recorder
}

// clusterNode builds one managed server with the given pipeline count.
func clusterNode(name string, seed int64, nPipelines, priority int) (*cluster.Node, error) {
	build := func(sd int64) (*sim.Server, error) {
		s, err := sim.NewServer(sim.DefaultTestbed(sd))
		if err != nil {
			return nil, err
		}
		cfgs := evalPipelineConfigs(sd)
		for i := 0; i < nPipelines && i < len(cfgs); i++ {
			p, err := workload.NewPipeline(cfgs[i])
			if err != nil {
				return nil, err
			}
			if err := s.AttachPipeline(i, p); err != nil {
				return nil, err
			}
		}
		w, err := workload.NewCPUWorkload(workload.CPUWorkloadConfig{
			RateAtMax: 40, FcMax: 2.4, NoiseStd: 0.02, Seed: sd + 9})
		if err != nil {
			return nil, err
		}
		s.AttachCPUWorkload(w)
		return s, nil
	}
	twin, err := build(seed + 5000)
	if err != nil {
		return nil, err
	}
	model, _, err := sysid.Identify(twin, sysid.ExciteConfig{})
	if err != nil {
		return nil, err
	}
	s, err := build(seed)
	if err != nil {
		return nil, err
	}
	ctrl, err := core.NewCapGPU(model, s, nil, core.Options{})
	if err != nil {
		return nil, err
	}
	return cluster.NewNode(name, s, ctrl, priority)
}

// ExtensionCluster runs a 3-server rack (heavy / medium / light load)
// under a shared budget with each allocation policy.
func ExtensionCluster(seed int64, periods int, budgetW float64) ([]ClusterRow, error) {
	return ExtensionClusterOpts(seed, periods, budgetW, ClusterOptions{})
}

// ExtensionClusterOpts is ExtensionCluster with telemetry and a
// rack-plane fault schedule attached.
func ExtensionClusterOpts(seed int64, periods int, budgetW float64, opts ClusterOptions) ([]ClusterRow, error) {
	if periods <= 0 {
		periods = 60
	}
	if budgetW <= 0 {
		budgetW = 2850
	}
	policies := []cluster.Policy{cluster.Uniform{}, cluster.DemandProportional{}, cluster.Priority{}}
	var rows []ClusterRow
	for _, pol := range policies {
		nodes := make([]*cluster.Node, 0, 3)
		for i, spec := range []struct {
			name      string
			pipelines int
			priority  int
		}{
			{"heavy", 3, 2}, {"medium", 2, 1}, {"light", 1, 0},
		} {
			n, err := clusterNode(spec.name, seed+int64(10*i), spec.pipelines, spec.priority)
			if err != nil {
				return nil, err
			}
			if opts.Telemetry != nil {
				// A per-node sink (not the bare hub) so concurrent phase
				// spans from parallel node stepping key by node.
				label := pol.Name() + "/" + spec.name
				n.Harness().SetTelemetry(opts.Telemetry.NodeSink(label), label)
			}
			if opts.Flight != nil {
				if rec := opts.Flight(pol.Name() + "/" + spec.name); rec != nil {
					n.Harness().SetFlight(rec)
				}
			}
			nodes = append(nodes, n)
		}
		coord, err := cluster.NewCoordinator(nodes, pol, func(int) float64 { return budgetW })
		if err != nil {
			return nil, err
		}
		coord.Faults = opts.Faults
		coord.Workers = opts.Workers
		if opts.Telemetry != nil {
			coord.Telemetry = opts.Telemetry.NodeSink(pol.Name())
			sinks := make([]telemetry.Sink, len(nodes))
			for i, n := range nodes {
				sinks[i] = opts.Telemetry.NodeSink(pol.Name() + "/" + n.Name)
			}
			coord.NodeTelemetry = sinks
		}
		if err := coord.Run(periods); err != nil {
			return nil, fmt.Errorf("experiments: cluster %s: %w", pol.Name(), err)
		}
		total := coord.TotalPowerSeries()
		steady := total[periods/2:]
		over := 0
		for _, p := range steady {
			if p > budgetW*1.015 {
				over++
			}
		}
		caps := make([]float64, len(nodes))
		sums := make([]NodeSummary, len(nodes))
		for i, n := range nodes {
			caps[i] = n.Assigned()
			sums[i] = SummarizeNode(n.Name, n.Records())
		}
		rows = append(rows, ClusterRow{
			Policy:            pol.Name(),
			BudgetW:           budgetW,
			SteadyTotalW:      metrics.Mean(steady),
			OverBudgetPeriods: over,
			AggThroughput:     coord.AggregateThroughput(periods / 2),
			PerNodeCapW:       caps,
			Nodes:             sums,
		})
	}
	return rows, nil
}

// BatchRow is one configuration of the dynamic-batching study.
type BatchRow struct {
	Config     string
	SLOMs      float64 // the unreachable SLO, milliseconds
	MissRate   float64 // steady-state miss rate on the constrained GPU
	Throughput float64 // that GPU's steady-state throughput (img/s)
	FinalBatch int
}

// ExtensionBatchSLO evaluates the dynamic-batching knob (coordinated
// batching + DVFS, after the paper's cited Nabavinejad et al.): GPU 0's
// SLO is set below its full-batch latency floor — no clock can reach it
// — and the BatchAdapter shrinks the batch until it can, trading
// throughput efficiency for feasibility.
func ExtensionBatchSLO(seed int64, periods int) ([]BatchRow, error) {
	if periods <= 0 {
		periods = 60
	}
	zoo := workload.Zoo()
	profs := []workload.ModelProfile{zoo["resnet50"], zoo["swin_t"], zoo["vgg16"]}
	slos := []float64{0.6 * profs[0].EMinBatch, 4 * profs[1].EMinBatch, 4 * profs[2].EMinBatch}

	run := func(withBatching bool) (*BatchRow, error) {
		rig, err := NewEvaluationRig(seed)
		if err != nil {
			return nil, err
		}
		inner, err := core.NewCapGPU(rig.Model, rig.Server, rig.LatencyModels, core.Options{})
		if err != nil {
			return nil, err
		}
		var ctrl core.PowerController = inner
		var ba *core.BatchAdapter
		if withBatching {
			ba, err = core.NewBatchAdapter(inner, rig.Server, rig.LatencyModels, profs)
			if err != nil {
				return nil, err
			}
			ctrl = ba
		}
		h, err := core.NewHarness(rig.Server, ctrl, FixedSetpoint(1000))
		if err != nil {
			return nil, err
		}
		h.SLOs = func(int) []float64 { return slos }
		recs, err := h.Run(periods)
		if err != nil {
			return nil, err
		}
		var misses []bool
		tput, n := 0.0, 0.0
		for _, r := range recs[periods/3:] {
			misses = append(misses, r.SLOMiss[0])
			tput += r.GPUThroughput[0]
			n++
		}
		row := &BatchRow{
			Config:     "fixed batch (CapGPU)",
			SLOMs:      slos[0] * 1000,
			MissRate:   metrics.MissRate(misses),
			Throughput: tput / n,
			FinalBatch: profs[0].BatchSize,
		}
		if withBatching {
			row.Config = "CapGPU + batching"
			row.FinalBatch = ba.BatchSizes()[0]
		}
		return row, nil
	}
	fixed, err := run(false)
	if err != nil {
		return nil, err
	}
	adaptive, err := run(true)
	if err != nil {
		return nil, err
	}
	return []BatchRow{*fixed, *adaptive}, nil
}
