package experiments

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
)

// BenchmarkRackStep measures one coordinator period over synthetic
// fleets at several sizes and worker counts. The workers=1 row is the
// sequential baseline; the speedup of workers=8 over it is the
// parallel-stepping payoff and scales with available cores (a
// single-CPU runner shows ~1×; the equivalence suite guarantees the
// bytes are identical either way, so the speedup is free).
func BenchmarkRackStep(b *testing.B) {
	for _, nodes := range []int{16, 128} {
		for _, workers := range []int{1, 2, 8} {
			b.Run(fmt.Sprintf("nodes=%d/workers=%d", nodes, workers), func(b *testing.B) {
				coord, err := NewScaleCoordinator(4, nodes, cluster.DemandProportional{}, 0,
					ClusterOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := coord.Step(i); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
