package experiments

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/flight"
	"repro/internal/telemetry"
)

// rackGoldenSchedule is the fault scenario the rack equivalence
// contract is proven under: a node death crossing the heartbeat
// threshold plus meter faults inside the surviving control loops, so
// the StepUncontrolled path, the reallocation reserve, and the
// degradation machinery all run.
const rackGoldenSchedule = "server-dropout@8+10:node1;meter-dropout@5+4;meter-spike@20+4*250;actuator-loss@30+4:gpu1*0.7"

// rackArtifacts runs the seeded synthetic fleet at the given worker
// count and returns every observable output channel: per-node CSV,
// the JSONL event stream, the per-node flight JSONL (concatenated in
// node order), and the final Prometheus exposition.
func rackArtifacts(t *testing.T, workers int) (csv, events, flightLog, prom []byte) {
	t.Helper()
	const seed, nodes, periods = 7, 6, 40
	sched, err := faults.Parse(rackGoldenSchedule, seed)
	if err != nil {
		t.Fatal(err)
	}
	var eventsBuf bytes.Buffer
	hub := telemetry.New(telemetry.Config{JSONL: &eventsBuf})
	flights := map[string]*bytes.Buffer{}
	opts := ClusterOptions{
		Telemetry: hub,
		Faults:    sched,
		Workers:   workers,
		Flight: func(label string) *flight.Recorder {
			buf := &bytes.Buffer{}
			flights[label] = buf
			return flight.NewRecorder(flight.Config{JSONL: buf})
		},
	}
	coord, err := NewScaleCoordinator(seed, nodes, cluster.DemandProportional{}, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Run(periods); err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	if err := hub.Finish(); err != nil {
		t.Fatal(err)
	}

	var csvBuf bytes.Buffer
	for _, n := range coord.Nodes {
		fmt.Fprintf(&csvBuf, "# node %s\n", n.Name)
		csvBuf.Write(replayTrace(t, n.Records()))
	}
	labels := make([]string, 0, len(flights))
	for l := range flights {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	var flightBuf bytes.Buffer
	for _, l := range labels {
		fmt.Fprintf(&flightBuf, "# %s\n", l)
		flightBuf.Write(flights[l].Bytes())
	}
	var promBuf bytes.Buffer
	if err := hub.Registry().WritePrometheus(&promBuf); err != nil {
		t.Fatal(err)
	}
	return csvBuf.Bytes(), eventsBuf.Bytes(), flightBuf.Bytes(), promBuf.Bytes()
}

// TestRackParallelGoldenEquivalence extends TestSeededReplayGolden's
// byte-identity contract from one server to the rack: with faults and
// a node death in play, Workers=2 and Workers=8 must reproduce the
// sequential (Workers=1) run byte-for-byte on all four channels —
// per-node CSV, events JSONL, per-node flight JSONL, and the
// Prometheus exposition.
func TestRackParallelGoldenEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	refCSV, refEvents, refFlight, refProm := rackArtifacts(t, 1)
	if len(refFlight) == 0 || len(refEvents) == 0 {
		t.Fatal("reference run produced empty artifacts")
	}
	for _, workers := range []int{2, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			csv, events, flightLog, prom := rackArtifacts(t, workers)
			if !bytes.Equal(csv, refCSV) {
				t.Error("per-node CSV diverges from the sequential run")
			}
			if !bytes.Equal(events, refEvents) {
				t.Errorf("events JSONL diverges (%d vs %d bytes)", len(events), len(refEvents))
			}
			if !bytes.Equal(flightLog, refFlight) {
				t.Errorf("flight JSONL diverges (%d vs %d bytes)", len(flightLog), len(refFlight))
			}
			if !bytes.Equal(prom, refProm) {
				t.Error("Prometheus exposition diverges")
			}
		})
	}
}

// TestScaleFleetDeterministicConstruction: two fleets from one seed
// are replicas (same names, classes, and power ranges), and fleet
// construction rejects a non-positive size.
func TestScaleFleetDeterministicConstruction(t *testing.T) {
	a, err := NewScaleFleet(11, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewScaleFleet(11, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Priority != b[i].Priority {
			t.Fatalf("node %d: %s/%d vs %s/%d", i, a[i].Name, a[i].Priority, b[i].Name, b[i].Priority)
		}
		loA, hiA := a[i].Server.PowerRange()
		loB, hiB := b[i].Server.PowerRange()
		if loA != loB || hiA != hiB {
			t.Fatalf("node %d power range diverges: [%v,%v] vs [%v,%v]", i, loA, hiA, loB, hiB)
		}
	}
	if _, err := NewScaleFleet(11, 0); err == nil {
		t.Fatal("want error for empty fleet")
	}
}

// TestRunScaleRack smoke-tests the fleet summary used by capgpu-rack
// -nodes mode: the rack holds its default budget and reports the
// injected node death.
func TestRunScaleRack(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sched, err := faults.Parse("server-dropout@4+40:node2", 9)
	if err != nil {
		t.Fatal(err)
	}
	row, err := RunScaleRack(9, 24, 4, nil, 0, ClusterOptions{Faults: sched, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if row.Nodes != 4 || row.Policy != "demand-proportional" {
		t.Fatalf("unexpected row identity: %+v", row)
	}
	if row.BudgetW != DefaultNodeBudgetW*4 {
		t.Fatalf("default budget = %v", row.BudgetW)
	}
	if row.DeadNodes != 1 {
		t.Fatalf("dead nodes = %d, want 1", row.DeadNodes)
	}
	if row.Uncontrolled == 0 {
		t.Fatal("dropout produced no open-loop periods")
	}
	if row.SteadyTotalW <= 0 || row.AggThroughput <= 0 {
		t.Fatalf("degenerate aggregates: %+v", row)
	}
}
