package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
)

// This file is the R1 robustness experiment: the fault-injection study
// the paper's evaluation does not run but a production deployment
// lives or dies by. A seeded fault schedule blinds the power meter for
// ten consecutive control periods (plus a later spike burst and a
// lossy actuator window), and the study compares CapGPU with graceful
// degradation, CapGPU with the fallback disabled (the strawman every
// naive file-polling controller implements), and Safe Fixed-Step under
// the identical fault stream.

// RobustnessScenario is the R1 fault schedule in DSL form: a 10-period
// total meter dropout starting at period 30 (the acceptance scenario),
// a ±300 W spike burst at period 55, and a lossy GPU-1 actuator window
// at period 70.
const RobustnessScenario = "meter-dropout@30+10;meter-spike@55+6*300;actuator-loss@70+5:gpu1*0.7"

// RobustnessDropoutEnd is the first period after the meter dropout
// clears; recovery time is measured from here.
const RobustnessDropoutEnd = 40

// RobustnessRow is one controller configuration's outcome under the R1
// fault schedule.
type RobustnessRow struct {
	Config string
	// CapViolations counts periods whose true (breaker-side) average
	// power exceeded the cap by more than 2%.
	CapViolations int
	// WorstExcessW is the largest true-power excess over the cap (0 if
	// the cap was never exceeded).
	WorstExcessW float64
	// SLOMissRate is the fraction of (period, GPU) pairs that missed
	// their latency SLO.
	SLOMissRate float64
	// DegradedPeriods and FailSafePeriods count the periods spent in
	// last-good-value fallback and fail-safe descent respectively.
	DegradedPeriods int
	FailSafePeriods int
	// RecoveryPeriods is how many periods after the dropout cleared the
	// controller needed to re-enter ±2%-of-cap around its own
	// steady-state operating point (-1 = never). Measuring against the
	// controller's own equilibrium keeps the metric meaningful for
	// margin-based controllers, whose steady state sits below the cap
	// by design.
	RecoveryPeriods int
	// SteadyRMSE is the tracking RMSE over the final 20 periods, after
	// all faults have cleared.
	SteadyRMSE float64
}

// RobustnessResult bundles the R1 rows with the scenario they ran.
type RobustnessResult struct {
	SetpointW float64
	Schedule  string
	Periods   int
	Rows      []RobustnessRow
}

// ExtensionRobustness runs the R1 study at a 900 W cap. Every
// configuration sees the identical workload noise and fault stream.
func ExtensionRobustness(seed int64, periods int) (*RobustnessResult, error) {
	if periods <= 0 {
		periods = 100
	}
	const cap = 900.0
	res := &RobustnessResult{SetpointW: cap, Schedule: RobustnessScenario, Periods: periods}
	configs := []struct {
		label     string
		ctrl      string
		noDegrade bool
	}{
		{"CapGPU + graceful degradation", "capgpu", false},
		{"CapGPU, fallback disabled", "capgpu", true},
		{"Safe Fixed-Step 3 + graceful degradation", "safe-fixed-step-3", false},
	}
	for _, cfg := range configs {
		rig, err := NewEvaluationRig(seed)
		if err != nil {
			return nil, err
		}
		sched, err := faults.Parse(RobustnessScenario, seed)
		if err != nil {
			return nil, err
		}
		// Reference (lax, 30% tail) SLOs: used to SCORE latency misses,
		// not to constrain the controllers — SLO-constrained CapGPU
		// exceeds the cap by design when the constraint binds (§6.4),
		// which would conflate deliberate excursions with fault-induced
		// violations. The 30% tails are met with margin at the healthy
		// 900 W operating point, so every miss in the table is
		// attributable to the faults and the fail-safe descent.
		levels, err := SLOLevels(rig)
		if err != nil {
			return nil, err
		}
		refSLOs := make([]float64, len(rig.ModelNames))
		for i, name := range rig.ModelNames {
			refSLOs[i] = levels[name][30]
		}
		ctrl, err := BuildController(cfg.ctrl, rig)
		if err != nil {
			return nil, err
		}
		h, err := core.NewHarness(rig.Server, ctrl, FixedSetpoint(cap))
		if err != nil {
			return nil, err
		}
		h.Faults = sched
		h.Degrade.Disable = cfg.noDegrade
		recs, err := h.Run(periods)
		if err != nil {
			return nil, fmt.Errorf("experiments: robustness %s: %w", cfg.label, err)
		}
		res.Rows = append(res.Rows, summarizeRobustness(cfg.label, cap, refSLOs, recs))
	}
	return res, nil
}

// summarizeRobustness condenses one run's records into an R1 row,
// scoring latency against the reference SLOs.
func summarizeRobustness(label string, cap float64, refSLOs []float64, recs []core.PeriodRecord) RobustnessRow {
	row := RobustnessRow{Config: label, RecoveryPeriods: -1}
	trueW := make([]float64, len(recs))
	avgW := make([]float64, len(recs))
	misses, pairs := 0, 0
	for i, r := range recs {
		trueW[i] = r.TrueAvgPowerW
		avgW[i] = r.AvgPowerW
		if r.Degraded {
			row.DegradedPeriods++
		}
		if r.FailSafe {
			row.FailSafePeriods++
		}
		if d := r.TrueAvgPowerW - cap; d > row.WorstExcessW {
			row.WorstExcessW = d
		}
		for g, slo := range refSLOs {
			if g >= len(r.GPULatencyS) {
				break
			}
			pairs++
			if r.GPULatencyS[g] > slo {
				misses++
			}
		}
	}
	row.CapViolations = metrics.Violations(trueW, cap, 0.02*cap)
	if pairs > 0 {
		row.SLOMissRate = float64(misses) / float64(pairs)
	}
	if n := len(recs); n > RobustnessDropoutEnd && n >= 20 {
		steady := metrics.Mean(avgW[n-20:])
		row.RecoveryPeriods = metrics.RecoveryTime(avgW, RobustnessDropoutEnd, steady, 0.02*cap)
	}
	if n := len(recs); n >= 20 {
		row.SteadyRMSE = metrics.RMSE(trueW[n-20:], cap)
	}
	return row
}
