package experiments

import (
	"fmt"

	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/mpc"
	"repro/internal/workload"
)

// TailLatency returns the "q% tail" latency of a sample set: the latency
// exceeded by q% of requests, i.e. the (100−q)th percentile. The paper's
// §6.4 wording mixes percentile and tail phrasing ("the 30th percentile
// (80% tail) latency"); this definition keeps "80% tail" tighter than
// "50% tail" tighter than "30% tail", which matches the experiment's
// intent of tightening two workloads' SLOs while relaxing the third.
func TailLatency(samples []float64, q float64) (float64, error) {
	return metrics.Percentile(samples, 100-q)
}

// SLOLevels computes, for each GPU workload, the 30%/50%/80% tail
// latencies over the GPU's frequency window using the latency law — the
// paper's procedure of deriving SLO levels and their frequencies from
// Eq. (8).
func SLOLevels(rig *Rig) (map[string]map[float64]float64, error) {
	zoo := workload.Zoo()
	out := map[string]map[float64]float64{}
	for i, name := range rig.ModelNames {
		prof, ok := zoo[name]
		if !ok {
			return nil, fmt.Errorf("experiments: unknown workload %q", name)
		}
		spec := rig.Server.Config().GPUs[i]
		var lats []float64
		for f := spec.FreqMinMHz; f <= spec.FreqMaxMHz; f += spec.FreqStepMHz {
			lats = append(lats, prof.TrueBatchLatency(f, spec.FreqMaxMHz))
		}
		levels := map[float64]float64{}
		for _, q := range []float64{30, 50, 80} {
			l, err := TailLatency(lats, q)
			if err != nil {
				return nil, err
			}
			levels[q] = l
		}
		out[name] = levels
	}
	return out, nil
}

// SLOSchedule builds the §6.4 schedule: every workload starts at its 50%
// tail SLO; at changePeriod, GPU 0 relaxes to its 30% tail while GPUs 1
// and 2 tighten to their 80% tails.
func SLOSchedule(rig *Rig, changePeriod int) (func(int) []float64, error) {
	levels, err := SLOLevels(rig)
	if err != nil {
		return nil, err
	}
	ng := rig.Server.NumGPUs()
	initial := make([]float64, ng)
	changed := make([]float64, ng)
	for i, name := range rig.ModelNames {
		initial[i] = levels[name][50]
		if i == 0 {
			changed[i] = levels[name][30]
		} else {
			changed[i] = levels[name][80]
		}
	}
	return func(k int) []float64 {
		if k < changePeriod {
			return initial
		}
		return changed
	}, nil
}

// SLORunResult is one controller's SLO-adaptation session.
type SLORunResult struct {
	Controller string
	Records    []core.PeriodRecord
	// MissRate is the per-GPU fraction of periods whose average latency
	// exceeded the then-active SLO (the paper's deadline miss rate).
	MissRate []float64
	// PostChangeMissRate restricts the miss rate to periods after the
	// SLO change.
	PostChangeMissRate []float64
}

// SLOResult bundles Fig. 8 (baselines) and Fig. 9 (CapGPU).
type SLOResult struct {
	SetpointW    float64
	ChangePeriod int
	Runs         map[string]*SLORunResult
	Order        []string
}

// Fig8Fig9SLOAdaptation runs the §6.4 SLO experiment: set point 1000 W,
// SLOs change at period 14; Safe Fixed-Step and GPU-Only (Fig. 8) vs
// CapGPU (Fig. 9).
func Fig8Fig9SLOAdaptation(seed int64, periods int) (*SLOResult, error) {
	if periods <= 0 {
		periods = 60
	}
	const changeAt = 14
	names := []string{"safe-fixed-step-1", "gpu-only", "capgpu"}
	res := &SLOResult{SetpointW: 1000, ChangePeriod: changeAt, Runs: map[string]*SLORunResult{}, Order: names}
	for _, n := range names {
		rig, err := NewEvaluationRig(seed)
		if err != nil {
			return nil, err
		}
		sched, err := SLOSchedule(rig, changeAt)
		if err != nil {
			return nil, err
		}
		ctrl, err := BuildController(n, rig)
		if err != nil {
			return nil, err
		}
		h, err := core.NewHarness(rig.Server, ctrl, FixedSetpoint(1000))
		if err != nil {
			return nil, err
		}
		h.SLOs = sched
		recs, err := h.Run(periods)
		if err != nil {
			return nil, err
		}
		ng := rig.Server.NumGPUs()
		run := &SLORunResult{
			Controller:         ctrl.Name(),
			Records:            recs,
			MissRate:           make([]float64, ng),
			PostChangeMissRate: make([]float64, ng),
		}
		for g := 0; g < ng; g++ {
			var all, post []bool
			for _, rec := range recs {
				all = append(all, rec.SLOMiss[g])
				if rec.Period >= changeAt+2 { // grace for the transition
					post = append(post, rec.SLOMiss[g])
				}
			}
			run.MissRate[g] = metrics.MissRate(all)
			run.PostChangeMissRate[g] = metrics.MissRate(post)
		}
		res.Runs[n] = run
	}
	return res, nil
}

// Fig10Result is the set-point adaptation study.
type Fig10Result struct {
	Schedule func(int) float64
	Runs     map[string]*RunResult
	Order    []string
	// Settling times (periods after each step change until the power
	// stays within ±2% of the new set point), per controller, for the
	// steps at periods 40 and 80.
	SettlingAfterRaise map[string]int
	SettlingAfterDrop  map[string]int
}

// Fig10Adaptation reproduces §6.4's set-point steps: 800 W, raised to
// 900 W at period 40, dropped back to 800 W at period 80, for 120
// periods.
func Fig10Adaptation(seed int64, periods int) (*Fig10Result, error) {
	if periods <= 0 {
		periods = 120
	}
	sched := func(k int) float64 {
		switch {
		case k < 40:
			return 800
		case k < 80:
			return 900
		default:
			return 800
		}
	}
	names := []string{"safe-fixed-step-1", "gpu-only", "capgpu"}
	res := &Fig10Result{
		Schedule:           sched,
		Runs:               map[string]*RunResult{},
		Order:              names,
		SettlingAfterRaise: map[string]int{},
		SettlingAfterDrop:  map[string]int{},
	}
	for _, n := range names {
		r, err := RunSession(n, seed, periods, sched, nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig10 %s: %w", n, err)
		}
		res.Runs[n] = r
		p := r.PowerSeries()
		if len(p) >= 80 {
			res.SettlingAfterRaise[n] = metrics.SettlingTimeWindow(p[40:80], 900, 0.025*900, 5)
		}
		if len(p) > 80 {
			res.SettlingAfterDrop[n] = metrics.SettlingTimeWindow(p[80:], 800, 0.025*800, 5)
		}
	}
	return res, nil
}

// StabilityResult is the §4.4 analysis applied to the identified model.
type StabilityResult struct {
	FeedbackGains []float64 // K of the unconstrained MPC law
	NominalPole   float64
	// UniformRange is the interval of uniform plant-gain scaling with a
	// stable closed loop.
	UniformLo, UniformHi float64
	// PerDevice bounds g_i with other devices nominal.
	PerDeviceLo, PerDeviceHi []float64
	// Locus samples pole vs uniform gain scale.
	LocusScales []float64
	LocusPoles  []float64
	LocusStable []bool
}

// StabilityAnalysis performs the §4.4 procedure on the evaluation rig's
// identified model and the CapGPU controller's unconstrained feedback
// law.
func StabilityAnalysis(seed int64) (*StabilityResult, error) {
	rig, err := NewEvaluationRig(seed)
	if err != nil {
		return nil, err
	}
	cap, err := core.NewCapGPU(rig.Model, rig.Server, rig.LatencyModels, core.Options{})
	if err != nil {
		return nil, err
	}
	var ctrl *mpc.Controller = cap.MPC()
	k, err := ctrl.FeedbackGains(nil)
	if err != nil {
		return nil, err
	}
	// The harness applies MoveGain·d(k) (core.Options.MoveGain, default
	// 0.7), so the effective feedback law is βK.
	const beta = 0.7
	for i := range k {
		k[i] *= beta
	}
	res := &StabilityResult{FeedbackGains: k}
	res.NominalPole, err = control.ScalarPole(rig.Model.Gains, k)
	if err != nil {
		return nil, err
	}
	res.UniformLo, res.UniformHi, err = control.UniformGainRange(rig.Model.Gains, k)
	if err != nil {
		return nil, err
	}
	n := len(rig.Model.Gains)
	res.PerDeviceLo = make([]float64, n)
	res.PerDeviceHi = make([]float64, n)
	for i := 0; i < n; i++ {
		lo, hi, err := control.PerDeviceGainBound(rig.Model.Gains, k, i)
		if err != nil {
			return nil, err
		}
		res.PerDeviceLo[i], res.PerDeviceHi[i] = lo, hi
	}
	for s := 0.25; s <= 3.0+1e-9; s += 0.25 {
		res.LocusScales = append(res.LocusScales, s)
	}
	reports, err := control.PoleLocus(rig.Model.Gains, k, res.LocusScales)
	if err != nil {
		return nil, err
	}
	for _, r := range reports {
		res.LocusPoles = append(res.LocusPoles, r.Pole)
		res.LocusStable = append(res.LocusStable, r.Stable)
	}
	return res, nil
}
