package experiments

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/telemetry"
)

// TestLLMRigConstruction: the LLM rig is well-formed and seeded-
// deterministic — two rigs from one seed identify the same power model
// and derive the same phase law, and the law orders the phases the way
// the workload family does (prefill steep, decode flat).
func TestLLMRigConstruction(t *testing.T) {
	a, err := NewLLMRig(5, "")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewLLMRig(5, "")
	if err != nil {
		t.Fatal(err)
	}
	ng := a.Server.NumGPUs()
	if len(a.LatencyModels) != ng || len(a.ModelNames) != ng {
		t.Fatalf("rig shape: %d latency models, %d names for %d GPUs", len(a.LatencyModels), len(a.ModelNames), ng)
	}
	if a.PhaseLaw == nil || a.PhaseLaw.PrefillExp <= a.PhaseLaw.DecodeExp {
		t.Fatalf("phase law does not separate regimes: %+v", a.PhaseLaw)
	}
	if a.PhaseLaw.IdentExp <= a.PhaseLaw.DecodeExp || a.PhaseLaw.IdentExp >= a.PhaseLaw.PrefillExp {
		t.Fatalf("identification exponent outside the phase range: %+v", a.PhaseLaw)
	}
	for i, g := range a.Model.Gains {
		if g <= 0 {
			t.Fatalf("identified gain %d = %g not positive", i, g)
		}
		if g != b.Model.Gains[i] {
			t.Fatalf("gain %d differs across same-seed rigs: %g vs %g", i, g, b.Model.Gains[i])
		}
	}
	if *a.PhaseLaw != *b.PhaseLaw {
		t.Fatalf("phase law differs across same-seed rigs: %+v vs %+v", a.PhaseLaw, b.PhaseLaw)
	}

	if _, err := NewLLMRig(5, "nosuchmodel@1:1+1"); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := RunSessionWith("capgpu", 5, 4, FixedSetpoint(900), nil,
		SessionOptions{Workload: "quantum"}); err == nil {
		t.Fatal("unknown workload family accepted")
	}
}

// TestExtensionLLMPhase is the R2 acceptance criterion: under the
// cyclic prefill↔decode regime switch, the phase-aware controller must
// beat the phase-blind one on cap violations AND TPOT SLO misses at
// equal token throughput, with generic RLS adaptation failing to close
// the violation gap.
func TestExtensionLLMPhase(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := ExtensionLLMPhase(42, 96)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || res.SetpointW != 900 || len(res.SLOs) == 0 {
		t.Fatalf("result shape: %+v", res)
	}
	byName := map[string]LLMPhaseRow{}
	for _, r := range res.Rows {
		byName[r.Config] = r
	}
	blind, ok1 := byName["CapGPU phase-blind"]
	adaptive, ok2 := byName["CapGPU phase-blind adaptive (RLS)"]
	aware, ok3 := byName["CapGPU phase-aware"]
	if !ok1 || !ok2 || !ok3 {
		t.Fatalf("missing configs: %+v", res.Rows)
	}
	if aware.CapViolations >= blind.CapViolations {
		t.Errorf("phase-aware violations %d not below phase-blind %d", aware.CapViolations, blind.CapViolations)
	}
	if aware.SLOMissRate >= blind.SLOMissRate {
		t.Errorf("phase-aware SLO miss rate %.4f not below phase-blind %.4f", aware.SLOMissRate, blind.SLOMissRate)
	}
	if aware.WorstExcessW >= blind.WorstExcessW {
		t.Errorf("phase-aware worst excess %.1f W not below phase-blind %.1f W", aware.WorstExcessW, blind.WorstExcessW)
	}
	if aware.CapViolations >= adaptive.CapViolations {
		t.Errorf("phase-aware violations %d not below RLS-adaptive %d", aware.CapViolations, adaptive.CapViolations)
	}
	// The win must not be bought with throughput: token rates within 2%.
	if blind.MeanTokPerS <= 0 || math.Abs(aware.MeanTokPerS-blind.MeanTokPerS) > 0.02*blind.MeanTokPerS {
		t.Errorf("throughput diverged: aware %.0f vs blind %.0f tok/s", aware.MeanTokPerS, blind.MeanTokPerS)
	}
}

// TestLLMSeededReplayGolden extends the seeded-replay byte-identity
// contract to the LLM workload family under the phase-aware
// controller: CSV trace, telemetry JSONL, Prometheus exposition, and
// the flight record must replay byte-identically, the phase series
// must be populated, and the flight stream must expose the phase-aware
// decisions (blended mix, guard engagements).
func TestLLMSeededReplayGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func() (csv, jsonl, prom, flightLog []byte) {
		var events, flightBuf bytes.Buffer
		hub := telemetry.New(telemetry.Config{JSONL: &events})
		rec := flight.NewRecorder(flight.Config{JSONL: &flightBuf})
		res, err := RunSessionWith("capgpu-phase", 11, 48, FixedSetpoint(900), nil,
			SessionOptions{Workload: "llm", Telemetry: hub, Flight: rec})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Records) != 48 {
			t.Fatalf("got %d periods", len(res.Records))
		}
		if err := hub.Finish(); err != nil {
			t.Fatal(err)
		}
		var metricsOut bytes.Buffer
		if err := hub.Registry().WritePrometheus(&metricsOut); err != nil {
			t.Fatal(err)
		}
		return replayTrace(t, res.Records), events.Bytes(), metricsOut.Bytes(), flightBuf.Bytes()
	}
	csvA, jsonlA, promA, flightA := run()
	csvB, jsonlB, promB, flightB := run()
	for _, ch := range []struct {
		name string
		a, b []byte
	}{
		{"csv", csvA, csvB}, {"jsonl", jsonlA, jsonlB},
		{"prometheus", promA, promB}, {"flight", flightA, flightB},
	} {
		if len(ch.a) == 0 {
			t.Fatalf("empty %s trace", ch.name)
		}
		if !bytes.Equal(ch.a, ch.b) {
			t.Fatalf("%s replay diverged (%d vs %d bytes)", ch.name, len(ch.a), len(ch.b))
		}
	}
	if !strings.Contains(string(promA), "capgpu_phase_prefill_ratio") ||
		!strings.Contains(string(promA), "capgpu_queue_depth_requests") {
		t.Error("phase-mix / queue-depth series missing from the exposition")
	}

	recs, err := flight.ReadRecords(bytes.NewReader(flightA))
	if err != nil {
		t.Fatal(err)
	}
	sawMix, sawGuard := false, false
	for _, r := range recs {
		if len(r.PhasePrefill) == 0 {
			t.Fatalf("period %d flight record has no phase observables", r.Period)
		}
		if r.Controller != nil && r.Controller.PhaseMix > 0 {
			sawMix = true
			if r.Controller.PhaseGuarded {
				sawGuard = true
			}
		}
	}
	if !sawMix || !sawGuard {
		t.Errorf("phase-aware decisions invisible in flight: mix=%v guard=%v", sawMix, sawGuard)
	}
}

// TestLLMAdaptiveRegimeSwitchObservable: with the phase-blind RLS
// controller on the LLM workload, the regime switch itself must be
// visible in the flight stream — the workload observables flip between
// prefill- and decode-heavy windows, and the estimator reacts (updates
// absorbed, innovation nonzero after a switch, gains moved off the
// offline identification).
func TestLLMAdaptiveRegimeSwitchObservable(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rig, err := NewLLMRig(23, "")
	if err != nil {
		t.Fatal(err)
	}
	ident := append([]float64(nil), rig.Model.Gains...)
	ctrl, err := core.NewCapGPU(rig.Model, rig.Server, rig.LatencyModels, core.Options{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	var flightBuf bytes.Buffer
	rec := flight.NewRecorder(flight.Config{JSONL: &flightBuf})
	h, err := core.NewHarness(rig.Server, ctrl, FixedSetpoint(900))
	if err != nil {
		t.Fatal(err)
	}
	h.OnPeriodStart = LLMRegimeOnPeriod
	h.SetFlight(rec)
	if _, err := h.Run(2 * llmCycleLen); err != nil {
		t.Fatal(err)
	}
	recs, err := flight.ReadRecords(bytes.NewReader(flightBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2*llmCycleLen {
		t.Fatalf("got %d flight records", len(recs))
	}

	meanMix := func(prefill bool) float64 {
		sum, n := 0.0, 0
		for _, r := range recs {
			if r.Period < 2 || (r.Period%llmCycleLen < llmPrefillLen) != prefill {
				continue
			}
			for _, m := range r.PhasePrefill {
				sum += m
				n++
			}
		}
		return sum / float64(n)
	}
	if pre, dec := meanMix(true), meanMix(false); pre < dec+0.2 {
		t.Errorf("regime switch invisible in phase observables: prefill-window mix %.3f vs decode-window %.3f", pre, dec)
	}

	last := recs[len(recs)-1]
	if last.Controller == nil || !last.Controller.Adaptive {
		t.Fatal("adaptive trace missing")
	}
	if last.Controller.RLSUpdates == 0 {
		t.Error("RLS absorbed no updates")
	}
	// Innovation right after a regime switch: the just-switched period's
	// prediction was made under the old regime's gains.
	sawInnovation := false
	for _, r := range recs {
		if r.Period >= llmCycleLen && r.Period%llmCycleLen == 1 && r.Controller != nil &&
			math.Abs(r.Controller.InnovationW) > 1 {
			sawInnovation = true
		}
	}
	if !sawInnovation {
		t.Error("no post-switch innovation above 1 W in any cycle")
	}
	moved := false
	for i, g := range last.Controller.Gains {
		if math.Abs(g-ident[i]) > 1e-6 {
			moved = true
		}
	}
	if !moved {
		t.Error("gains never moved off the offline identification")
	}
}

// llmRackArtifacts runs the seeded LLM fleet at the given worker count
// and returns the per-node CSV, events JSONL, per-node flight JSONL,
// and Prometheus exposition (the rackArtifacts contract, LLM family).
func llmRackArtifacts(t *testing.T, workers int) (csv, events, flightLog, prom []byte) {
	t.Helper()
	const seed, nodes, periods = 13, 6, 24
	var eventsBuf bytes.Buffer
	hub := telemetry.New(telemetry.Config{JSONL: &eventsBuf})
	flights := map[string]*bytes.Buffer{}
	opts := ClusterOptions{
		Telemetry: hub,
		Workers:   workers,
		Workload:  "llm",
		Flight: func(label string) *flight.Recorder {
			buf := &bytes.Buffer{}
			flights[label] = buf
			return flight.NewRecorder(flight.Config{JSONL: buf})
		},
	}
	coord, err := NewScaleCoordinator(seed, nodes, cluster.DemandProportional{}, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Run(periods); err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	if err := hub.Finish(); err != nil {
		t.Fatal(err)
	}
	var csvBuf bytes.Buffer
	for _, n := range coord.Nodes {
		fmt.Fprintf(&csvBuf, "# node %s\n", n.Name)
		csvBuf.Write(replayTrace(t, n.Records()))
	}
	labels := make([]string, 0, len(flights))
	for l := range flights {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	var flightBuf bytes.Buffer
	for _, l := range labels {
		fmt.Fprintf(&flightBuf, "# %s\n", l)
		flightBuf.Write(flights[l].Bytes())
	}
	var promBuf bytes.Buffer
	if err := hub.Registry().WritePrometheus(&promBuf); err != nil {
		t.Fatal(err)
	}
	return csvBuf.Bytes(), eventsBuf.Bytes(), flightBuf.Bytes(), promBuf.Bytes()
}

// TestLLMParallelGoldenEquivalence extends the Workers=1 vs Workers=8
// byte-identity contract to the LLM fleet: sharded stepping must not
// perturb the serving pipelines' seeded streams.
func TestLLMParallelGoldenEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	refCSV, refEvents, refFlight, refProm := llmRackArtifacts(t, 1)
	if len(refFlight) == 0 || len(refEvents) == 0 {
		t.Fatal("reference run produced empty artifacts")
	}
	csv, events, flightLog, prom := llmRackArtifacts(t, 8)
	if !bytes.Equal(csv, refCSV) {
		t.Error("per-node CSV diverges from the sequential run")
	}
	if !bytes.Equal(events, refEvents) {
		t.Errorf("events JSONL diverges (%d vs %d bytes)", len(events), len(refEvents))
	}
	if !bytes.Equal(flightLog, refFlight) {
		t.Errorf("flight JSONL diverges (%d vs %d bytes)", len(flightLog), len(refFlight))
	}
	if !bytes.Equal(prom, refProm) {
		t.Error("Prometheus exposition diverges")
	}
}

// TestLLMFleetWorkloadValidation pins the fleet workload dispatch.
func TestLLMFleetWorkloadValidation(t *testing.T) {
	if _, err := NewScaleFleetWorkload(3, 2, "quantum"); err == nil {
		t.Fatal("unknown fleet workload accepted")
	}
}
