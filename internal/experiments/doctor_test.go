package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/flight"
)

// runWithFlight runs one R1-shaped session with a flight recorder
// attached and returns the doctor's report over it.
func runWithFlight(t *testing.T, faultsDSL string, noDegrade bool) (*flight.Report, []flight.DecisionRecord) {
	t.Helper()
	var sched *faults.Schedule
	if faultsDSL != "" {
		var err error
		sched, err = faults.Parse(faultsDSL, 7)
		if err != nil {
			t.Fatal(err)
		}
	}
	var jsonl bytes.Buffer
	rec := flight.NewRecorder(flight.Config{JSONL: &jsonl})
	if _, err := RunSessionWith("capgpu", 7, 100, FixedSetpoint(900), nil, SessionOptions{
		Faults: sched, NoDegrade: noDegrade, Flight: rec,
	}); err != nil {
		t.Fatal(err)
	}
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
	// Diagnose from the stream, exactly as capgpu-doctor does.
	records, err := flight.ReadRecords(bytes.NewReader(jsonl.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 100 {
		t.Fatalf("flight stream has %d records, want 100", len(records))
	}
	rep, err := flight.Diagnose(flight.DoctorInput{Records: records})
	if err != nil {
		t.Fatal(err)
	}
	return rep, records
}

// TestDoctorCleanRun pins the unfaulted acceptance criterion: a healthy
// CapGPU session diagnoses clean (exit 0, nothing unexplained).
func TestDoctorCleanRun(t *testing.T) {
	rep, _ := runWithFlight(t, "", false)
	if rep.ExitCode() != 0 {
		t.Fatalf("clean run exit = %d, report: %+v", rep.ExitCode(), rep.Incidents)
	}
	if rep.Health.FailSafePeriods != 0 || rep.Health.DegradedPeriods != 0 {
		t.Fatalf("clean run shows degradation: %+v", rep.Health)
	}
	if rep.Health.TrueViolations != 0 {
		t.Fatalf("clean run has %d true violations", rep.Health.TrueViolations)
	}
}

// TestDoctorR1Graceful pins the R1 meter-blackout criterion: the doctor
// identifies the blind window, attributes it to the degradation ladder
// (not an anomaly), and exits 0.
func TestDoctorR1Graceful(t *testing.T) {
	rep, _ := runWithFlight(t, RobustnessScenario, false)
	var blind *flight.Incident
	for i := range rep.Incidents {
		if rep.Incidents[i].Kind == "meter-blind" && rep.Incidents[i].StartPeriod == 30 {
			blind = &rep.Incidents[i]
		}
	}
	if blind == nil {
		t.Fatalf("no meter-blind incident at k=30 in %+v", rep.Incidents)
	}
	if !blind.Explained {
		t.Fatalf("graceful blind window flagged unexplained: %+v", blind)
	}
	if blind.RootCause != "blind-window-failsafe" && blind.RootCause != "blind-window-hold" {
		t.Fatalf("graceful blind window root cause = %s", blind.RootCause)
	}
	if rep.ExitCode() != 0 {
		t.Fatalf("graceful R1 exit = %d, incidents: %+v", rep.ExitCode(), rep.Incidents)
	}
}

// TestDoctorR1Strawman pins the root-cause criterion: with degradation
// disabled, the doctor calls the blind window a stale-model overshoot
// and reports the true-power escape.
func TestDoctorR1Strawman(t *testing.T) {
	rep, records := runWithFlight(t, RobustnessScenario, true)
	var blind *flight.Incident
	for i := range rep.Incidents {
		if rep.Incidents[i].Kind == "meter-blind" && rep.Incidents[i].StartPeriod == 30 {
			blind = &rep.Incidents[i]
		}
	}
	if blind == nil {
		t.Fatalf("no meter-blind incident at k=30 in %+v", rep.Incidents)
	}
	if blind.RootCause != "stale-model-overshoot" {
		t.Fatalf("strawman blind window root cause = %s, want stale-model-overshoot", blind.RootCause)
	}
	if !strings.Contains(blind.Detail, "graceful degradation disabled") {
		t.Fatalf("detail should call out the disabled degradation: %s", blind.Detail)
	}
	// Sanity: the records really show the controller fed a bogus reading
	// while the breaker-side power escaped.
	escaped := false
	for _, r := range records[30:40] {
		if r.MeterStale > 0 && r.TruePowerW > 900*1.02 {
			escaped = true
		}
	}
	if !escaped {
		t.Fatal("strawman blind window shows no true-power escape in the flight record")
	}
}

// TestFlightReplayByteIdentical extends the seeded-replay golden
// contract to the flight record: two identical seeded runs produce
// byte-identical JSONL, and attaching the recorder does not perturb the
// control trajectory.
func TestFlightReplayByteIdentical(t *testing.T) {
	run := func(withFlight bool) (flightBytes, csv []byte) {
		sched, err := faults.Parse(RobustnessScenario, 7)
		if err != nil {
			t.Fatal(err)
		}
		opts := SessionOptions{Faults: sched}
		var jsonl bytes.Buffer
		if withFlight {
			opts.Flight = flight.NewRecorder(flight.Config{JSONL: &jsonl})
		}
		res, err := RunSessionWith("capgpu", 7, 60, FixedSetpoint(900), nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		return jsonl.Bytes(), replayTrace(t, res.Records)
	}
	flightA, csvA := run(true)
	flightB, csvB := run(true)
	if len(flightA) == 0 {
		t.Fatal("empty flight record")
	}
	if !bytes.Equal(flightA, flightB) {
		t.Fatal("flight record differs between identical seeded runs")
	}
	if !bytes.Equal(csvA, csvB) {
		t.Fatal("control trajectory differs between identical seeded runs")
	}
	_, csvBare := run(false)
	if !bytes.Equal(csvBare, csvA) {
		t.Fatal("attaching the flight recorder changed the control trajectory")
	}
}
